// Fault-tolerant messaging: keep routing between two nodes while random
// nodes fail, using the disjoint-path container as the fail-over set.
//
//   ./fault_tolerant_messaging [--m 3] [--faults 3] [--rounds 20] [--seed 1]
//
// Each round injects a fresh random fault pattern and reports which of the
// m+1 paths survive and which path the router selects. With faults <= m the
// router never fails — the paper's guarantee in action.
#include <cstdio>
#include <exception>

#include "core/fault_routing.hpp"
#include "core/metrics.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) try {
  using namespace hhc;

  util::Options opts{argc, argv};
  opts.describe("m", "cluster dimension m in [1,5] (default 3)")
      .describe("faults", "faulty nodes per round (default m)")
      .describe("rounds", "number of fault rounds (default 20)")
      .describe("seed", "RNG seed (default 1)");
  if (opts.help_requested(
          "Route around random node faults via the disjoint-path container."))
    return 0;
  opts.reject_unknown();

  const auto m = static_cast<unsigned>(opts.get_int("m", 3));
  const core::HhcTopology net{m};
  const auto faults_per_round =
      static_cast<std::size_t>(opts.get_int("faults", m));
  const auto rounds = static_cast<std::size_t>(opts.get_int("rounds", 20));
  util::Xoshiro256 rng{static_cast<std::uint64_t>(opts.get_int("seed", 1))};

  const core::Node s = net.encode(0, 0);
  const core::Node t =
      net.encode(net.cluster_count() - 1, net.cluster_size() - 1);

  std::printf("HHC(%u): routing %llu -> %llu with %zu random faults/round\n",
              net.address_bits(), static_cast<unsigned long long>(s),
              static_cast<unsigned long long>(t), faults_per_round);
  std::printf("container: %u node-disjoint paths; guarantee holds for "
              "faults <= %u\n\n",
              net.degree(), m);

  std::size_t delivered = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    const auto faults =
        core::FaultSet::random(net, faults_per_round, s, t, rng);
    const auto result = core::route_avoiding(net, s, t, faults);
    if (result.ok()) {
      ++delivered;
      std::printf("round %2zu: %zu/%u paths blocked -> delivered over %zu "
                  "hops\n",
                  round, result.paths_blocked, net.degree(),
                  result.path.size() - 1);
    } else {
      std::printf("round %2zu: all %u paths blocked -> FAILED (faults > m "
                  "can cut every path)\n",
                  round, net.degree());
    }
  }
  std::printf("\ndelivered %zu/%zu rounds", delivered, rounds);
  if (faults_per_round <= m) std::printf(" (guaranteed: faults <= m)");
  std::printf("\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
