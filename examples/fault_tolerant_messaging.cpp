// Fault-tolerant messaging: keep routing between two nodes while random
// nodes fail, using the disjoint-path container as the fail-over set and
// the adaptive router's BFS fallback beyond it. Routing goes through the
// unified query::PathService, so every round is a fault-aware PairQuery and
// the run ends with the service's own telemetry (cache hit rate, latency
// percentiles) — the same snapshot a production deployment would export.
//
//   ./fault_tolerant_messaging [--m 3] [--faults 3] [--rounds 20] [--seed 1]
//
// Each round injects a fresh random fault pattern and reports which of the
// m+1 paths survive and how the message got through:
//   guaranteed   — a container path survived (certain for faults <= m)
//   best-effort  — all m+1 paths were cut but the BFS fallback found a
//                  detour through the survivor subgraph
//   disconnected — no fault-free path exists at all; nothing could deliver
#include <cstdio>
#include <exception>
#include <iostream>

#include "core/fault_routing.hpp"
#include "core/metrics.hpp"
#include "query/path_service.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) try {
  using namespace hhc;

  util::Options opts{argc, argv};
  opts.describe("m", "cluster dimension m in [1,5] (default 3)")
      .describe("faults", "faulty nodes per round (default m)")
      .describe("rounds", "number of fault rounds (default 20)")
      .describe("seed", "RNG seed (default 1)");
  if (opts.help_requested(
          "Route around random node faults via the disjoint-path container."))
    return 0;
  opts.reject_unknown();

  const auto m = static_cast<unsigned>(opts.get_int("m", 3));
  const core::HhcTopology net{m};
  const auto faults_per_round =
      static_cast<std::size_t>(opts.get_int("faults", m));
  const auto rounds = static_cast<std::size_t>(opts.get_int("rounds", 20));
  util::Xoshiro256 rng{static_cast<std::uint64_t>(opts.get_int("seed", 1))};

  const core::Node s = net.encode(0, 0);
  const core::Node t =
      net.encode(net.cluster_count() - 1, net.cluster_size() - 1);
  query::PathService service{net};

  std::printf("HHC(%u): routing %llu -> %llu with %zu random faults/round\n",
              net.address_bits(), static_cast<unsigned long long>(s),
              static_cast<unsigned long long>(t), faults_per_round);
  std::printf("container: %u node-disjoint paths; guarantee holds for "
              "faults <= %u\n\n",
              net.degree(), m);

  std::size_t delivered = 0;
  std::size_t fallbacks = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    const core::FaultModel faults{
        core::FaultSet::random(net, faults_per_round, s, t, rng)};
    const auto result = service.answer(
        query::PairQuery{.s = s, .t = t, .faults = &faults});
    if (result.ok()) {
      ++delivered;
      if (result.used_fallback) ++fallbacks;
      std::printf("round %2zu: %zu/%u paths blocked -> delivered over %zu "
                  "hops (%s)\n",
                  round, result.container_paths_blocked, net.degree(),
                  result.primary().size() - 1, to_string(result.level));
    } else {
      std::printf("round %2zu: all %u paths blocked and no detour exists "
                  "-> %s\n",
                  round, net.degree(), to_string(result.level));
    }
  }
  std::printf("\ndelivered %zu/%zu rounds (%zu via BFS fallback)", delivered,
              rounds, fallbacks);
  if (faults_per_round <= m) std::printf(" (guaranteed: faults <= m)");
  std::printf("\n\n");

  // The rounds all query the same (s, t): one construction, then cache hits.
  service.stats().print(std::cout);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
