// Fault-injection campaign CLI: sweep fault budgets over random trials and
// report delivery guarantees, fallback rates, and degradation.
//
//   ./fault_campaign [--m 3] [--trials 200] [--max-faults 0]
//                    [--link-frac 0.0] [--ext-frac 0.5] [--seed 1]
//                    [--threads 1] [--format table|csv|json]
//
// `--max-faults 0` sweeps to degree + 2 = m + 3, past the m+1 bound, so
// the output shows both the guaranteed regime and graceful degradation.
// CSV and JSON go to stdout for piping into files or plotting scripts.
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>

#include "fault/campaign.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) try {
  using namespace hhc;

  util::Options opts{argc, argv};
  opts.describe("m", "cluster dimension m in [1,4] (default 3)")
      .describe("trials", "random s-t pairs per fault budget (default 200)")
      .describe("max-faults", "sweep 0..max; 0 means degree+2 (default 0)")
      .describe("link-frac", "fraction of each budget as link faults "
                             "(default 0.0)")
      .describe("ext-frac", "fraction of link faults on external edges "
                            "(default 0.5)")
      .describe("seed", "campaign seed; results are deterministic in it "
                        "(default 1)")
      .describe("threads", "worker threads; 0 = hardware (default 1)")
      .describe("format", "table, csv, or json (default table)");
  if (opts.help_requested(
          "Monte-Carlo fault-injection campaign over the adaptive router."))
    return 0;
  opts.reject_unknown();

  fault::CampaignConfig config;
  config.m = static_cast<unsigned>(opts.get_int("m", 3));
  config.trials = static_cast<std::size_t>(opts.get_int("trials", 200));
  config.max_faults =
      static_cast<std::size_t>(opts.get_int("max-faults", 0));
  config.link_fault_fraction = opts.get_double("link-frac", 0.0);
  config.external_fraction = opts.get_double("ext-frac", 0.5);
  config.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  config.threads = static_cast<std::size_t>(opts.get_int("threads", 1));

  const std::string format = opts.get("format", "table");
  if (format != "table" && format != "csv" && format != "json") {
    throw std::invalid_argument("--format must be table, csv, or json");
  }

  const auto report = fault::CampaignRunner{config}.run();
  if (format == "csv") {
    std::cout << report.to_csv();
  } else if (format == "json") {
    std::cout << report.to_json() << '\n';
  } else {
    report.print(std::cout);
    std::size_t first_degraded = 0;
    bool saw_degraded = false;
    for (const auto& row : report.rows) {
      if (row.guaranteed < row.trials) {
        first_degraded = row.faults;
        saw_degraded = true;
        break;
      }
    }
    if (saw_degraded) {
      std::printf("\nguarantee held through f = %zu; degradation starts at "
                  "f = %zu (m = %u)\n",
                  first_degraded - 1, first_degraded, config.m);
    } else {
      std::printf("\nevery sweep row delivered 100%% over the container "
                  "(m = %u)\n",
                  config.m);
    }
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
