// Quickstart: build an HHC, construct the m+1 node-disjoint paths between
// two nodes, verify them, and print the container.
//
//   ./quickstart [--m 3] [--s <node>] [--t <node>]
#include <cstdio>
#include <exception>
#include <string>

#include "core/disjoint.hpp"
#include "core/metrics.hpp"
#include "core/routing.hpp"
#include "util/options.hpp"

namespace {

std::string node_to_string(const hhc::core::HhcTopology& net,
                           hhc::core::Node v) {
  std::string x;
  for (unsigned i = net.cluster_dimensions(); i-- > 0;) {
    x += ((net.cluster_of(v) >> i) & 1) != 0 ? '1' : '0';
  }
  std::string y;
  for (unsigned i = net.m(); i-- > 0;) {
    y += ((net.position_of(v) >> i) & 1) != 0 ? '1' : '0';
  }
  return "(" + x + "," + y + ")";
}

}  // namespace

int main(int argc, char** argv) try {
  hhc::util::Options opts{argc, argv};
  opts.describe("m", "cluster dimension m in [1,5] (default 3)")
      .describe("s", "source node id (default 0)")
      .describe("t", "destination node id (default last node)");
  if (opts.help_requested("Construct m+1 node-disjoint paths in HHC(2^m+m)."))
    return 0;
  opts.reject_unknown();

  const auto m = static_cast<unsigned>(opts.get_int("m", 3));
  const hhc::core::HhcTopology net{m};
  const auto s = static_cast<hhc::core::Node>(opts.get_int("s", 0));
  const auto t = static_cast<hhc::core::Node>(
      opts.get_int("t", static_cast<std::int64_t>(net.node_count() - 1)));

  std::printf("HHC(%u): m=%u, %llu nodes, degree %u, clusters of size %llu\n",
              net.address_bits(), m,
              static_cast<unsigned long long>(net.node_count()), net.degree(),
              static_cast<unsigned long long>(net.cluster_size()));
  std::printf("source      s = %s\n", node_to_string(net, s).c_str());
  std::printf("destination t = %s\n\n", node_to_string(net, t).c_str());

  const auto container = hhc::core::node_disjoint_paths(net, s, t);
  std::string why;
  if (!hhc::core::verify_disjoint_path_set(net, container, s, t, &why)) {
    std::fprintf(stderr, "verification FAILED: %s\n", why.c_str());
    return 1;
  }

  std::printf("constructed %zu node-disjoint paths (verified):\n",
              container.paths.size());
  for (std::size_t i = 0; i < container.paths.size(); ++i) {
    const auto& path = container.paths[i];
    std::printf("  path %zu (length %zu): ", i, path.size() - 1);
    for (std::size_t j = 0; j < path.size(); ++j) {
      std::printf("%s%s", j == 0 ? "" : " -> ",
                  node_to_string(net, path[j]).c_str());
    }
    std::printf("\n");
  }
  std::printf("\nlongest path: %zu edges (theoretical diameter: %u)\n",
              container.max_length(), net.theoretical_diameter());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
