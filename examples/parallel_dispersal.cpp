// Parallel information dispersal: split a message into m+1 erasure-coded
// fragments, push them through the flit simulator over the node-disjoint
// container — optionally cutting one path — and reassemble at the sink.
//
//   ./parallel_dispersal [--m 3] [--bytes 4096] [--cut-path 1]
#include <cstdio>
#include <exception>
#include <numeric>
#include <vector>

#include "core/dispersal.hpp"
#include "sim/network.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) try {
  using namespace hhc;

  util::Options opts{argc, argv};
  opts.describe("m", "cluster dimension m in [1,5] (default 3)")
      .describe("bytes", "message size in bytes (default 4096)")
      .describe("cut-path", "index of a path to cut, or -1 for none (default -1)");
  if (opts.help_requested(
          "Erasure-coded parallel transmission over node-disjoint paths."))
    return 0;
  opts.reject_unknown();

  const auto m = static_cast<unsigned>(opts.get_int("m", 3));
  const core::HhcTopology net{m};
  const auto bytes = static_cast<std::size_t>(opts.get_int("bytes", 4096));
  const auto cut = opts.get_int("cut-path", -1);

  const core::Node s = net.encode(1, 1 % net.cluster_size());
  const core::Node t = net.encode(net.cluster_count() / 2 + 3, 0);

  std::vector<std::uint8_t> message(bytes);
  std::iota(message.begin(), message.end(), std::uint8_t{0});

  const auto plan = core::disperse(net, s, t, message);
  std::printf("message: %zu bytes -> %zu fragments of %zu bytes "
              "(%u data + 1 parity)\n",
              bytes, plan.fragments.size(), plan.block_size, m);
  for (const auto& f : plan.fragments) {
    std::printf("  fragment %zu rides a %zu-hop path%s\n", f.index,
                f.path.size() - 1, f.index == m ? " (parity)" : "");
  }

  sim::NetworkSimulator simulator{net};
  if (cut >= 0 && static_cast<std::size_t>(cut) < plan.fragments.size()) {
    core::FaultSet faults;
    faults.mark_faulty(plan.fragments[static_cast<std::size_t>(cut)].path[1]);
    simulator.set_faults(faults);
    std::printf("cutting path %lld at its second node\n",
                static_cast<long long>(cut));
  }
  for (const auto& f : plan.fragments) simulator.inject(f.path, 0);
  const auto report = simulator.run();
  std::printf("\nsimulated %llu cycles: %zu delivered, %zu lost "
              "(p50 latency %llu, max %llu)\n",
              static_cast<unsigned long long>(report.cycles), report.delivered,
              report.lost, static_cast<unsigned long long>(report.latency.p50),
              static_cast<unsigned long long>(report.latency.max));

  std::vector<core::Fragment> received;
  for (std::size_t i = 0; i < plan.fragments.size(); ++i) {
    if (simulator.packets()[i].delivered) received.push_back(plan.fragments[i]);
  }
  if (received.size() < m) {
    std::printf("FAILED: only %zu fragments arrived, need %u\n",
                received.size(), m);
    return 1;
  }
  const auto out =
      core::reassemble(m, plan.block_size, plan.message_size, received);
  std::printf("reassembled %zu bytes from %zu fragments: %s\n", out.size(),
              received.size(), out == message ? "INTACT" : "CORRUPT");
  std::printf("serial transfer would need ~%zu fragment-cycles; parallel "
              "completion took %zu\n",
              (plan.fragments.size() - 1) * plan.parallel_completion_steps(),
              plan.parallel_completion_steps());
  return out == message ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
