// Topology explorer: interactive-grade dump of HHC structure — a node's
// address decomposition, its neighborhood, distances, and the cluster-level
// routes the disjoint-path construction would select.
//
//   ./topology_explorer [--m 2] [--node 5] [--to 42]
#include <cstdio>
#include <exception>
#include <string>

#include "core/disjoint.hpp"
#include "core/metrics.hpp"
#include "core/routing.hpp"
#include "util/options.hpp"

namespace {

std::string bits_of(std::uint64_t v, unsigned width) {
  std::string s;
  for (unsigned i = width; i-- > 0;) s += ((v >> i) & 1) != 0 ? '1' : '0';
  return s;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace hhc;

  util::Options opts{argc, argv};
  opts.describe("m", "cluster dimension m in [1,5] (default 2)")
      .describe("node", "node to inspect (default 5)")
      .describe("to", "destination for route analysis (default last node)");
  if (opts.help_requested("Explore the hierarchical hypercube structure."))
    return 0;
  opts.reject_unknown();

  const auto m = static_cast<unsigned>(opts.get_int("m", 2));
  const core::HhcTopology net{m};
  const auto v = static_cast<core::Node>(opts.get_int("node", 5));
  const auto to = static_cast<core::Node>(
      opts.get_int("to", static_cast<std::int64_t>(net.node_count() - 1)));

  std::printf("HHC(%u): N = %llu nodes = %llu clusters x %llu, degree %u, "
              "diameter %u\n\n",
              net.address_bits(), static_cast<unsigned long long>(net.node_count()),
              static_cast<unsigned long long>(net.cluster_count()),
              static_cast<unsigned long long>(net.cluster_size()), net.degree(),
              net.theoretical_diameter());

  std::printf("node %llu = (X=%s, Y=%s); gateway for X-dimension %u\n",
              static_cast<unsigned long long>(v),
              bits_of(net.cluster_of(v), net.cluster_dimensions()).c_str(),
              bits_of(net.position_of(v), net.m()).c_str(),
              net.gateway_dimension(v));
  std::printf("neighbors:\n");
  for (unsigned i = 0; i < net.m(); ++i) {
    const auto u = net.internal_neighbor(v, i);
    std::printf("  internal dim %u -> node %llu (X=%s, Y=%s)\n", i,
                static_cast<unsigned long long>(u),
                bits_of(net.cluster_of(u), net.cluster_dimensions()).c_str(),
                bits_of(net.position_of(u), net.m()).c_str());
  }
  const auto ext = net.external_neighbor(v);
  std::printf("  external      -> node %llu (X=%s, Y=%s)\n\n",
              static_cast<unsigned long long>(ext),
              bits_of(net.cluster_of(ext), net.cluster_dimensions()).c_str(),
              bits_of(net.position_of(ext), net.m()).c_str());

  std::printf("route analysis %llu -> %llu:\n",
              static_cast<unsigned long long>(v),
              static_cast<unsigned long long>(to));
  const auto single = core::route(net, v, to);
  std::printf("  constructive route: %zu hops\n", single.size() - 1);
  if (net.m() <= 4) {
    const auto exact = core::bfs_shortest_path(net, v, to);
    std::printf("  exact shortest:     %zu hops\n", exact.size() - 1);
  }

  const auto routes = core::select_cluster_routes(net, v, to);
  if (routes.empty()) {
    std::printf("  same cluster: container = %u intra-cluster paths + 1 "
                "external detour\n",
                net.m());
  } else {
    std::printf("  cluster-level routes of the container (X-dimension "
                "sequences):\n");
    for (std::size_t i = 0; i < routes.size(); ++i) {
      std::printf("    route %zu:", i);
      for (const unsigned d : routes[i]) std::printf(" %u", d);
      std::printf("\n");
    }
  }
  const auto container = core::node_disjoint_paths(net, v, to);
  std::printf("  container lengths: min %zu, avg %.2f, max %zu\n",
              container.min_length(), container.average_length(),
              container.max_length());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
