// One-to-all broadcast demo: build the two-level binomial schedule, verify
// it, and print the round-by-round wavefront.
//
//   ./broadcast_demo [--m 2] [--root 0] [--show-rounds 6]
#include <cstdio>
#include <exception>

#include "core/broadcast.hpp"
#include "core/io.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) try {
  using namespace hhc;

  util::Options opts{argc, argv};
  opts.describe("m", "cluster dimension m in [1,4] (default 2)")
      .describe("root", "broadcast root node (default 0)")
      .describe("show-rounds", "rounds to print in detail (default 6)");
  if (opts.help_requested("Two-level binomial one-to-all broadcast on HHC."))
    return 0;
  opts.reject_unknown();

  const auto m = static_cast<unsigned>(opts.get_int("m", 2));
  const core::HhcTopology net{m};
  const auto root = static_cast<core::Node>(opts.get_int("root", 0));
  const auto show =
      static_cast<std::size_t>(opts.get_int("show-rounds", 6));

  const auto schedule = core::broadcast_schedule(net, root);
  if (!core::verify_broadcast_schedule(net, schedule, root)) {
    std::fprintf(stderr, "schedule verification FAILED\n");
    return 1;
  }

  std::printf("HHC(%u): broadcasting from %s to all %llu nodes\n",
              net.address_bits(), core::format_node(net, root).c_str(),
              static_cast<unsigned long long>(net.node_count()));
  std::printf("schedule: %zu rounds (lower bound %u), %zu transmissions "
              "(= N-1), verified\n\n",
              schedule.round_count(), core::broadcast_lower_bound(net),
              schedule.message_count());

  std::size_t informed = 1;
  for (std::size_t r = 0; r < schedule.rounds.size(); ++r) {
    informed += schedule.rounds[r].size();
    if (r < show) {
      std::printf("round %2zu (%3zu sends, %llu informed):", r,
                  schedule.rounds[r].size(),
                  static_cast<unsigned long long>(informed));
      const std::size_t preview = std::min<std::size_t>(
          schedule.rounds[r].size(), 4);
      for (std::size_t i = 0; i < preview; ++i) {
        const auto& [from, to] = schedule.rounds[r][i];
        std::printf(" %s=>%s", core::format_node(net, from).c_str(),
                    core::format_node(net, to).c_str());
      }
      if (schedule.rounds[r].size() > preview) std::printf(" ...");
      std::printf("\n");
    } else if (r == show) {
      std::printf("... (%zu more rounds)\n", schedule.rounds.size() - show);
    }
  }
  std::printf("\nall %llu nodes informed after %zu rounds\n",
              static_cast<unsigned long long>(net.node_count()),
              schedule.round_count());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
