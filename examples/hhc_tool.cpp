// hhc_tool — a multi-command CLI over the whole library.
//
//   hhc_tool info      --m 3
//   hhc_tool route     --m 3 --s 0 --t 2047
//   hhc_tool paths     --m 3 --s 0 --t 2047 [--dot]
//   hhc_tool faults    --m 3 --s 0 --t 2047 --count 3 --seed 1
//   hhc_tool broadcast --m 2 --root 0
//   hhc_tool dot       --m 2
//   hhc_tool trace     --m 3 --queries 200 --fault-queries 50 --out trace.json
//   hhc_tool soak      --m 2 --epochs 8 --load 256 --fault-rate 0.5 --seed 1
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "core/broadcast.hpp"
#include "core/disjoint.hpp"
#include "core/fault_model.hpp"
#include "core/fault_routing.hpp"
#include "core/io.hpp"
#include "core/local_routing.hpp"
#include "core/metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "query/path_service.hpp"
#include "sim/soak.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace hhc;

int cmd_info(const util::Options& opts) {
  const auto m = static_cast<unsigned>(opts.get_int("m", 3));
  const core::HhcTopology net{m};
  std::printf("HHC(%u)\n", net.address_bits());
  std::printf("  m                     %u\n", net.m());
  std::printf("  nodes                 %llu\n",
              static_cast<unsigned long long>(net.node_count()));
  std::printf("  clusters              %llu x Q_%u\n",
              static_cast<unsigned long long>(net.cluster_count()), net.m());
  std::printf("  degree / connectivity %u\n", net.degree());
  std::printf("  diameter              %u%s\n", net.theoretical_diameter(),
              m <= 4 ? " (BFS-verified in tests)" : " (closed form)");
  std::printf("  disjoint paths/pair   %u\n", net.degree());
  return 0;
}

int cmd_route(const util::Options& opts) {
  const auto m = static_cast<unsigned>(opts.get_int("m", 3));
  const core::HhcTopology net{m};
  const auto s = static_cast<core::Node>(opts.get_int("s", 0));
  const auto t = static_cast<core::Node>(
      opts.get_int("t", static_cast<std::int64_t>(net.node_count() - 1)));
  const auto path = core::route(net, s, t);
  std::printf("route (%zu hops): %s\n", path.size() - 1,
              core::format_path(net, path).c_str());
  if (m <= 4) {
    std::printf("exact shortest: %zu hops\n",
                core::bfs_shortest_path(net, s, t).size() - 1);
  }
  return 0;
}

int cmd_paths(const util::Options& opts) {
  const auto m = static_cast<unsigned>(opts.get_int("m", 3));
  const core::HhcTopology net{m};
  const auto s = static_cast<core::Node>(opts.get_int("s", 0));
  const auto t = static_cast<core::Node>(
      opts.get_int("t", static_cast<std::int64_t>(net.node_count() - 1)));
  const auto container = core::node_disjoint_paths(net, s, t);
  std::string why;
  if (!core::verify_disjoint_path_set(net, container, s, t, &why)) {
    std::fprintf(stderr, "internal verification failed: %s\n", why.c_str());
    return 1;
  }
  if (opts.get_bool("dot", false)) {
    std::fputs(core::container_to_dot(net, container, s, t).c_str(), stdout);
    return 0;
  }
  std::printf("%zu node-disjoint paths (verified):\n", container.paths.size());
  for (std::size_t i = 0; i < container.paths.size(); ++i) {
    std::printf("  [%zu] len %-3zu %s\n", i, container.paths[i].size() - 1,
                core::format_path(net, container.paths[i]).c_str());
  }
  return 0;
}

int cmd_faults(const util::Options& opts) {
  const auto m = static_cast<unsigned>(opts.get_int("m", 3));
  const core::HhcTopology net{m};
  const auto s = static_cast<core::Node>(opts.get_int("s", 0));
  const auto t = static_cast<core::Node>(
      opts.get_int("t", static_cast<std::int64_t>(net.node_count() - 1)));
  const auto count = static_cast<std::size_t>(opts.get_int("count", m));
  util::Xoshiro256 rng{static_cast<std::uint64_t>(opts.get_int("seed", 1))};
  const auto faults = core::FaultSet::random(net, count, s, t, rng);

  const auto global = core::route_avoiding(net, s, t, faults);
  std::printf("global container router: %s", global.ok() ? "ok" : "FAILED");
  if (global.ok()) std::printf(" (%zu hops)", global.path.size() - 1);
  std::printf(", %zu/%u paths blocked\n", global.paths_blocked, net.degree());

  const auto local = core::local_fault_route(net, s, t, faults);
  std::printf("local DFS router:        %s", local.ok() ? "ok" : "FAILED");
  if (local.ok()) std::printf(" (%zu hops)", local.path.size() - 1);
  std::printf(", %zu backtracks\n", local.backtracks);
  return 0;
}

int cmd_broadcast(const util::Options& opts) {
  const auto m = static_cast<unsigned>(opts.get_int("m", 2));
  const core::HhcTopology net{m};
  const auto root = static_cast<core::Node>(opts.get_int("root", 0));
  const auto schedule = core::broadcast_schedule(net, root);
  if (!core::verify_broadcast_schedule(net, schedule, root)) {
    std::fprintf(stderr, "schedule verification failed\n");
    return 1;
  }
  std::printf("broadcast from %s: %zu rounds (lower bound %u), %zu messages\n",
              core::format_node(net, root).c_str(), schedule.round_count(),
              core::broadcast_lower_bound(net), schedule.message_count());
  return 0;
}

int cmd_dot(const util::Options& opts) {
  const auto m = static_cast<unsigned>(opts.get_int("m", 2));
  std::fputs(core::to_dot(core::HhcTopology{m}).c_str(), stdout);
  return 0;
}

// Runs a seeded query batch (pristine + fault-aware, so both the cache and
// the adaptive-router stages light up) with tracing enabled and writes the
// spans as Chrome trace_event JSON — load into chrome://tracing or
// https://ui.perfetto.dev. Also prints the per-stage latency histograms
// accumulated in the metric registry.
int cmd_trace(const util::Options& opts) {
  const auto m = static_cast<unsigned>(opts.get_int("m", 3));
  const core::HhcTopology net{m};
  const auto queries = static_cast<std::size_t>(opts.get_int("queries", 200));
  const auto fault_queries =
      static_cast<std::size_t>(opts.get_int("fault-queries", 50));
  const auto fault_count = static_cast<std::size_t>(opts.get_int("count", m));
  const std::string out_path = opts.get("out", "trace.json");
  const std::string csv_path = opts.get("csv", "");
  util::Xoshiro256 rng{static_cast<std::uint64_t>(opts.get_int("seed", 1))};

  query::PathService service{net};
  obs::MetricRegistry::global().reset();
  obs::Tracer::enable(
      static_cast<std::size_t>(opts.get_int("ring", std::int64_t{1} << 13)));

  // Pristine queries: cache lookups + cold-miss constructions.
  for (std::size_t i = 0; i < queries; ++i) {
    const core::Node s = rng.below(net.node_count());
    const core::Node t = rng.below(net.node_count());
    (void)service.answer(query::PairQuery{.s = s, .t = t});
  }
  // Fault-aware queries: container scans, with BFS fallbacks when the
  // fault set blocks every container path.
  for (std::size_t i = 0; i < fault_queries; ++i) {
    const core::Node s = rng.below(net.node_count());
    core::Node t = rng.below(net.node_count());
    while (t == s) t = rng.below(net.node_count());
    const core::FaultModel faults{
        core::FaultSet::random(net, fault_count, s, t, rng)};
    (void)service.answer(query::PairQuery{.s = s, .t = t, .faults = &faults});
  }
  obs::Tracer::disable();

  const auto events = obs::Tracer::drain();
  {
    std::ofstream file{out_path};
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    file << obs::to_chrome_trace_json(events) << '\n';
  }
  if (!csv_path.empty()) {
    std::ofstream file{csv_path};
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 1;
    }
    file << obs::to_trace_csv(events);
  }

  std::printf("%zu spans -> %s", events.size(), out_path.c_str());
  if (!csv_path.empty()) std::printf(" and %s", csv_path.c_str());
  if (const auto dropped = obs::Tracer::dropped(); dropped != 0) {
    std::printf(" (%llu dropped; raise --ring)",
                static_cast<unsigned long long>(dropped));
  }
  std::printf("\n\n");

  util::Table table{{"stage", "count", "p50 us", "p99 us", "max us"}};
  // One snapshot via the unified stats surface: the per-stage histograms
  // arrive as distribution rows of ServiceStats::rows().
  for (const core::StatRow& row : service.stats().rows()) {
    if (row.kind != core::StatRow::Kind::kDist || row.section != "histogram" ||
        row.count == 0) {
      continue;
    }
    table.row()
        .add(row.name)
        .add(row.count)
        .add(row.p50, 1)
        .add(row.p99, 1)
        .add(row.max, 1);
  }
  table.print(std::cout,
              "per-stage latency (m=" + std::to_string(m) + ", " +
                  std::to_string(queries) + " pristine + " +
                  std::to_string(fault_queries) + " fault-aware queries)");
  return 0;
}

// Replays the chaos/soak harness: open-loop (default) or closed-loop
// traffic with deadlines and admission control over an evolving fault
// schedule, reported per epoch.
int cmd_soak(const util::Options& opts) {
  sim::SoakConfig config;
  config.m = static_cast<unsigned>(opts.get_int("m", 2));
  config.epochs = static_cast<std::size_t>(opts.get_int("epochs", 8));
  config.queries_per_epoch =
      static_cast<std::size_t>(opts.get_int("load", 256));
  config.hostile_per_epoch =
      static_cast<std::size_t>(opts.get_int("hostile", 4));
  config.workers = static_cast<std::size_t>(opts.get_int("workers", 4));
  config.max_queued = static_cast<std::size_t>(opts.get_int("max-queued", 64));
  config.closed_loop = opts.get_bool("closed-loop", false);
  config.deadline_us = opts.get_double("deadline-us", 2000.0);
  config.fault_rate = opts.get_double("fault-rate", 0.5);
  config.faults_per_burst =
      static_cast<std::size_t>(opts.get_int("burst", 2));
  config.repair_after =
      static_cast<std::uint64_t>(opts.get_int("repair-after", 1));
  config.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  config.admission.max_in_flight =
      static_cast<std::size_t>(opts.get_int("max-in-flight", 8));
  config.admission.breaker_threshold =
      static_cast<std::size_t>(opts.get_int("breaker", 3));
  const std::string policy = opts.get("policy", "queue");
  if (policy == "reject") {
    config.admission.policy = query::AdmissionPolicy::kReject;
  } else if (policy == "queue") {
    config.admission.policy = query::AdmissionPolicy::kQueue;
  } else if (policy == "degrade") {
    config.admission.policy = query::AdmissionPolicy::kDegrade;
  } else {
    std::fprintf(stderr, "unknown --policy %s (reject|queue|degrade)\n",
                 policy.c_str());
    return 1;
  }

  const sim::SoakReport report = sim::run_soak(config);
  const std::string format = opts.get("format", "table");
  if (format == "csv") {
    std::cout << report.to_csv() << '\n';
  } else if (format == "json") {
    std::cout << report.to_json() << '\n';
  } else if (format == "table") {
    report.print(std::cout);
  } else {
    std::fprintf(stderr, "unknown --format %s (table|csv|json)\n",
                 format.c_str());
    return 1;
  }
  return report.stuck == 0 ? 0 : 1;
}

void usage() {
  std::puts(
      "hhc_tool <command> [--option value]...\n"
      "commands:\n"
      "  info       network parameters        (--m)\n"
      "  route      constructive single path  (--m --s --t)\n"
      "  paths      m+1 disjoint paths        (--m --s --t [--dot])\n"
      "  faults     route under random faults (--m --s --t --count --seed)\n"
      "  broadcast  one-to-all schedule       (--m --root)\n"
      "  dot        whole network as Graphviz (--m, m <= 2)\n"
      "  trace      Chrome trace of a query batch\n"
      "             (--m --queries --fault-queries --count --seed --out\n"
      "              [--csv file] [--ring events-per-thread])\n"
      "  soak       chaos/soak run: deadlines + admission over evolving "
      "faults\n"
      "             (--m --epochs --load --hostile --workers --max-queued\n"
      "              --closed-loop true|false (issue-on-completion streams)\n"
      "              --deadline-us --fault-rate --burst --repair-after --seed\n"
      "              --max-in-flight --breaker --policy reject|queue|degrade\n"
      "              --format table|csv|json)");
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0) {
    usage();
    return argc < 2 ? 1 : 0;
  }
  const std::string command = argv[1];
  const util::Options opts{argc - 1, argv + 1};

  if (command == "info") return cmd_info(opts);
  if (command == "route") return cmd_route(opts);
  if (command == "paths") return cmd_paths(opts);
  if (command == "faults") return cmd_faults(opts);
  if (command == "broadcast") return cmd_broadcast(opts);
  if (command == "dot") return cmd_dot(opts);
  if (command == "trace") return cmd_trace(opts);
  if (command == "soak") return cmd_soak(opts);
  std::fprintf(stderr, "unknown command: %s\n\n", command.c_str());
  usage();
  return 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
