#include "util/options.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace hhc::util {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

Options::Options(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--key value` unless the next token is another option or absent.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

Options& Options::describe(const std::string& key, const std::string& help) {
  described_.emplace_back(key, help);
  return *this;
}

bool Options::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Options::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key +
                                " expects an integer, got: " + it->second);
  }
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key +
                                " expects a number, got: " + it->second);
  }
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool Options::help_requested(const std::string& program_summary) const {
  if (!has("help")) return false;
  std::printf("%s\n\nusage: %s [--option value]...\n", program_summary.c_str(),
              program_.c_str());
  for (const auto& [key, help] : described_) {
    std::printf("  --%-24s %s\n", key.c_str(), help.c_str());
  }
  return true;
}

void Options::reject_unknown() const {
  for (const auto& [key, value] : values_) {
    (void)value;
    if (key == "help") continue;
    const bool known =
        std::any_of(described_.begin(), described_.end(),
                    [&](const auto& d) { return d.first == key; });
    if (!known) throw std::invalid_argument("unknown option --" + key);
  }
}

}  // namespace hhc::util
