#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace hhc::util {

Table::Table(std::vector<std::string> headers) : headers_{std::move(headers)} {}

Table& Table::row() {
  cells_.emplace_back();
  cells_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(const std::string& cell) {
  cells_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string{cell}); }

Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }
Table& Table::add(std::uint64_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

Table& Table::add(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return add(os.str());
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : cells_) {
    for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }

  if (!title.empty()) os << title << '\n';
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      os << "  " << std::left << std::setw(static_cast<int>(width[c])) << cell;
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 2 * headers_.size();
  for (auto w : width) total += w;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& r : cells_) emit_row(r);
}

}  // namespace hhc::util
