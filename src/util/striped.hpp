// Per-thread striped counters: the write side of "move the shared atomics
// off the hot path".
//
// A StripedCounter gives every thread its own cache-line-aligned cell, so
// the hot increment is one relaxed fetch_add on memory no other thread
// writes — no shared-counter cache-line ping-pong, which is what made the
// ContainerCache hit counters a scalability ceiling once the lookup itself
// went lock-free. Reads fold every cell at the moment of the read
// (ContainerCache::stats() is the canonical consumer), so totals are exact
// for quiescent periods and at-most-one-increment racy under load — the
// same consistency the old single atomic gave concurrent readers.
//
// Lifetime/identity scheme: every counter instance draws a process-unique
// id (never reused), and each thread keeps a flat id -> cell* cache in TLS.
// Cells are OWNED by the counter (so counts from exited threads survive in
// fold()); the TLS cache may hold stale pointers for destroyed counters,
// but those ids are never looked up again — only the owning counter's own
// methods consult its slot — so the stale entries are inert.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace hhc::util {

class StripedCounter {
 public:
  StripedCounter() : id_{next_id().fetch_add(1, std::memory_order_relaxed)} {}

  StripedCounter(const StripedCounter&) = delete;
  StripedCounter& operator=(const StripedCounter&) = delete;

  /// Wait-free on the fast path (one relaxed fetch_add on a thread-private
  /// cell); first use per (thread, counter) registers a cell under a mutex.
  void add(std::uint64_t n = 1) noexcept {
    local_cell().fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum of every thread's cell at the time of the call (exact when
  /// writers are quiescent; otherwise may miss increments racing the fold,
  /// exactly like a relaxed load of a shared atomic would).
  [[nodiscard]] std::uint64_t fold() const {
    std::uint64_t total = 0;
    std::lock_guard lock{mutex_};
    for (const auto& cell : cells_) {
      total += cell->value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes every cell. Increments racing the reset may land before or
  /// after their cell is zeroed; callers quiesce writers when they need
  /// an exact cut (ContainerCache::clear() holds every writer mutex).
  void reset() noexcept {
    std::lock_guard lock{mutex_};
    for (const auto& cell : cells_) {
      cell->value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };

  [[nodiscard]] static std::atomic<std::uint64_t>& next_id() noexcept {
    static std::atomic<std::uint64_t> id{0};
    return id;
  }

  [[nodiscard]] std::atomic<std::uint64_t>& local_cell() {
    thread_local std::vector<std::atomic<std::uint64_t>*> tls_cells;
    if (id_ >= tls_cells.size()) tls_cells.resize(id_ + 1, nullptr);
    std::atomic<std::uint64_t>*& slot = tls_cells[id_];
    if (slot == nullptr) {
      std::lock_guard lock{mutex_};
      cells_.push_back(std::make_unique<Cell>());
      slot = &cells_.back()->value;
    }
    return *slot;
  }

  const std::uint64_t id_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Cell>> cells_;
};

}  // namespace hhc::util
