// Wall-clock timing helpers for the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace hhc::util {

/// Monotonic stopwatch. Started on construction; restart with reset().
class Stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  Stopwatch() noexcept : start_{clock::now()} {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }
  [[nodiscard]] double micros() const noexcept { return seconds() * 1e6; }
  [[nodiscard]] std::uint64_t nanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  clock::time_point start_;
};

}  // namespace hhc::util
