// Aligned-column plain-text table printer.
//
// The benchmark binaries regenerate the paper's tables as text; this class
// collects rows of heterogeneous cells and prints them with aligned columns
// so the output is directly comparable across runs and pasteable into
// EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace hhc::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent add() calls fill it left to right.
  Table& row();

  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(std::int64_t value);
  Table& add(std::uint64_t value);
  Table& add(int value);
  /// Doubles are rendered with `precision` digits after the decimal point.
  Table& add(double value, int precision = 3);

  [[nodiscard]] std::size_t rows() const noexcept { return cells_.size(); }

  /// Render with a header line, a rule, and one line per row.
  void print(std::ostream& os, const std::string& title = {}) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace hhc::util
