// Bit-manipulation primitives shared by the topology and routing layers.
//
// Every address computation in the hierarchical hypercube reduces to a
// handful of mask/extract/flip operations on 64-bit words, so these helpers
// are kept branch-free and constexpr wherever possible.
#pragma once

#include <bit>
#include <cstdint>
#include <cassert>

namespace hhc::bits {

/// Number of set bits in `v`.
[[nodiscard]] constexpr int popcount(std::uint64_t v) noexcept {
  return std::popcount(v);
}

/// True iff bit `i` of `v` is set. `i` must be < 64.
[[nodiscard]] constexpr bool test(std::uint64_t v, unsigned i) noexcept {
  return ((v >> i) & 1u) != 0;
}

/// `v` with bit `i` set.
[[nodiscard]] constexpr std::uint64_t set(std::uint64_t v, unsigned i) noexcept {
  return v | (std::uint64_t{1} << i);
}

/// `v` with bit `i` cleared.
[[nodiscard]] constexpr std::uint64_t clear(std::uint64_t v, unsigned i) noexcept {
  return v & ~(std::uint64_t{1} << i);
}

/// `v` with bit `i` flipped.
[[nodiscard]] constexpr std::uint64_t flip(std::uint64_t v, unsigned i) noexcept {
  return v ^ (std::uint64_t{1} << i);
}

/// Mask with the low `n` bits set. `n` must be <= 64.
[[nodiscard]] constexpr std::uint64_t low_mask(unsigned n) noexcept {
  return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

/// Extract `len` bits of `v` starting at bit `pos`.
[[nodiscard]] constexpr std::uint64_t extract(std::uint64_t v, unsigned pos,
                                              unsigned len) noexcept {
  return (v >> pos) & low_mask(len);
}

/// Index of the lowest set bit; `v` must be nonzero.
[[nodiscard]] constexpr unsigned lowest_set(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::countr_zero(v));
}

/// Index of the highest set bit; `v` must be nonzero.
[[nodiscard]] constexpr unsigned highest_set(std::uint64_t v) noexcept {
  return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/// Hamming distance between two words.
[[nodiscard]] constexpr int hamming(std::uint64_t a, std::uint64_t b) noexcept {
  return std::popcount(a ^ b);
}

/// True iff `v` is a power of two (exactly one set bit).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t v) noexcept {
  return std::has_single_bit(v);
}

/// 2^e as a 64-bit word; `e` must be < 64.
[[nodiscard]] constexpr std::uint64_t pow2(unsigned e) noexcept {
  return std::uint64_t{1} << e;
}

}  // namespace hhc::bits
