// Minimal work-stealing-free thread pool for embarrassingly parallel sweeps.
//
// The experiment harnesses construct disjoint paths for thousands of node
// pairs; `parallel_for` partitions an index range into contiguous blocks and
// runs one block per worker. Exceptions thrown by tasks are captured and
// rethrown on the caller's thread (first one wins).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hhc::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; fire-and-forget (use wait_idle() to synchronize).
  void submit(std::function<void()> task);

  /// Bounded enqueue: refuses (returns false, task not queued) when more
  /// than `max_queued` tasks are already waiting to start. This is the
  /// building block for open-loop load shedding — an overloaded consumer
  /// drops new arrivals at the door instead of growing an unbounded queue.
  /// Tasks already RUNNING don't count against the bound, only waiting
  /// ones; `max_queued` of 0 admits a task only when the queue is empty.
  [[nodiscard]] bool try_submit(std::function<void()> task,
                                std::size_t max_queued);

  /// Block until every submitted task has finished.
  /// Rethrows the first task exception, if any.
  void wait_idle();

  /// Run `body(i)` for every i in [begin, end), split into contiguous
  /// blocks across the pool. Blocks until complete; rethrows task errors.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace hhc::util
