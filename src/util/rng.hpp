// Deterministic pseudo-random number generation for experiments.
//
// Benchmarks and property tests must be reproducible across runs and
// machines, so the library carries its own xoshiro256** implementation
// instead of relying on the unspecified std::default_random_engine.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace hhc::util {

/// SplitMix64: used to seed the main generator from a single 64-bit seed.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_{seed} {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x1d2e3f4a5b6c7d8eULL) noexcept {
    SplitMix64 sm{seed};
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be nonzero.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // Fast path for power-of-two bounds.
    if ((bound & (bound - 1)) == 0) return (*this)() & (bound - 1);
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  constexpr bool chance(double p) noexcept { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Zipf-distributed ranks over [0, n): rank i is drawn with probability
/// proportional to (i+1)^-skew. skew = 0 degenerates to uniform; the higher
/// the skew, the hotter the head of the distribution — the standard model
/// for repeated-pair query workloads (and what makes a canonical-container
/// cache earn its keep). Sampling is inverse-CDF over a precomputed table,
/// so draws are O(log n) and exactly reproducible for a given generator.
class ZipfianSampler {
 public:
  ZipfianSampler(std::size_t n, double skew) : cdf_(n) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

  /// Draws one rank; requires size() > 0.
  template <typename Rng>
  [[nodiscard]] std::size_t operator()(Rng& rng) const {
    const double u = static_cast<double>(rng() >> 11) * 0x1.0p-53;
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i), cdf_.back() == 1
};

}  // namespace hhc::util
