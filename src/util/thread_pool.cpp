#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace hhc::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{mutex_};
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock{mutex_};
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

bool ThreadPool::try_submit(std::function<void()> task,
                            std::size_t max_queued) {
  {
    std::lock_guard lock{mutex_};
    if (tasks_.size() > max_queued) return false;
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock{mutex_};
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  // Clear the captured error *before* rethrowing so the pool is immediately
  // reusable for the next batch — campaign sweeps run many batches through
  // one pool, and a stale exception must never leak into a later batch.
  if (auto err = std::exchange(first_error_, nullptr)) {
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t blocks = std::min(n, workers_.size() * 4);
  const std::size_t chunk = (n + blocks - 1) / blocks;
  for (std::size_t b = begin; b < end; b += chunk) {
    const std::size_t hi = std::min(end, b + chunk);
    submit([&body, b, hi] {
      for (std::size_t i = b; i < hi; ++i) body(i);
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock{mutex_};
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ with an empty queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock{mutex_};
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock{mutex_};
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace hhc::util
