// Tiny command-line option parser for the examples and benchmark binaries.
//
// Supports `--key value`, `--key=value`, and boolean `--flag` forms. Unknown
// options are an error so that typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hhc::util {

class Options {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  Options(int argc, const char* const* argv);

  /// Declare an option (for --help text and unknown-option detection).
  /// Returns *this so declarations can be chained.
  Options& describe(const std::string& key, const std::string& help);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// True if --help was passed; prints usage to stdout when called.
  [[nodiscard]] bool help_requested(const std::string& program_summary) const;

  /// Throws std::invalid_argument if any parsed key was never described.
  void reject_unknown() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::pair<std::string, std::string>> described_;
  std::string program_;
};

}  // namespace hhc::util
