// Cooperative time budgets and cancellation for the query engine.
//
// The service must degrade gracefully under overload instead of stalling,
// which means long-running stages (construction, cache fill, the adaptive
// router's survivor-subgraph BFS) need a way to notice "this answer is no
// longer worth computing" and bail out. Two small primitives carry that:
//
//   Deadline          an absolute steady_clock instant with a "none" state.
//                     Copyable and cheap; a PairQuery carries one by value.
//   CancellationToken a sticky atomic flag an owner trips to abandon work
//                     in flight (shutdown, client disconnect). Shared by
//                     pointer; queries hold `const CancellationToken*`.
//
// Both are COOPERATIVE: nothing is preempted. Stages check at their
// boundaries, and the BFS expansion loop checks every kStopCheckStride
// expansions, so the worst-case overrun past a deadline is one stage-check
// interval — that bound is part of the service's overload contract (see
// DESIGN.md §8) and what the soak harness asserts.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <limits>

namespace hhc::util {

/// How many BFS expansions (or similar loop iterations) may pass between
/// two cooperative stop checks. Small enough that a parked worker notices
/// an expired deadline within microseconds, large enough that the check is
/// amortized to noise on the hot path.
inline constexpr std::size_t kStopCheckStride = 64;

/// An absolute wall-deadline on the steady clock. Default-constructed
/// deadlines are "none" — never expired, infinite remaining budget — so a
/// plain PairQuery behaves exactly as before deadlines existed.
class Deadline {
 public:
  using clock = std::chrono::steady_clock;

  /// No deadline (never expires).
  constexpr Deadline() noexcept = default;

  /// Expires at the absolute instant `at`.
  explicit Deadline(clock::time_point at) noexcept : at_{at}, armed_{true} {}

  /// Expires `micros` microseconds from now (0 = already expired: useful
  /// for "answer from cache or not at all" queries and for tests).
  [[nodiscard]] static Deadline after_micros(double micros) noexcept {
    return Deadline{clock::now() +
                    std::chrono::duration_cast<clock::duration>(
                        std::chrono::duration<double, std::micro>{micros})};
  }

  [[nodiscard]] constexpr bool armed() const noexcept { return armed_; }

  [[nodiscard]] bool expired() const noexcept {
    return armed_ && clock::now() >= at_;
  }

  /// Microseconds left before expiry; negative once expired, +infinity when
  /// unarmed. The soak harness uses the negative side to measure overrun.
  [[nodiscard]] double remaining_micros() const noexcept {
    if (!armed_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::micro>(at_ - clock::now())
        .count();
  }

  [[nodiscard]] clock::time_point instant() const noexcept { return at_; }

 private:
  clock::time_point at_{};
  bool armed_ = false;
};

/// A sticky one-way cancellation flag. cancel() is idempotent and
/// thread-safe; cancelled() is one relaxed load, cheap enough to sit inside
/// a BFS expansion loop.
class CancellationToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// The stage-boundary check every cooperative stage performs: stop when the
/// deadline has passed or the token (if any) was tripped.
[[nodiscard]] inline bool should_stop(const Deadline& deadline,
                                      const CancellationToken* token) noexcept {
  return (token != nullptr && token->cancelled()) || deadline.expired();
}

}  // namespace hhc::util
