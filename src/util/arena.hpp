// Bump-allocated storage for path construction hot loops.
//
// The disjoint-path construction used to heap-allocate a fresh std::vector
// per path, per query. PathArena replaces that with chunked bump allocation
// of 64-bit words (node ids): a query bumps a pointer, reset() rewinds it,
// and the chunks themselves are reused forever — after a short warm-up the
// steady state performs ZERO heap allocations per query (asserted by
// tests/test_allocation.cpp via the heap_allocations() counting hook).
//
// Lifetime rules (see DESIGN.md §7):
//   * Spans handed out by a builder stay valid until the owning arena is
//     reset() or destroyed — chunks never move or shrink.
//   * reset() invalidates every span previously carved from the arena; the
//     typical pattern is one reset() at the start of each query.
//   * At most one Builder may be growing at a time (builders bump the top
//     of the arena in place); finish one path before starting the next.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace hhc::util {

class PathArena {
 public:
  /// `initial_words` pre-reserves the first chunk (0 = allocate lazily).
  explicit PathArena(std::size_t initial_words = 0);

  PathArena(const PathArena&) = delete;
  PathArena& operator=(const PathArena&) = delete;

  /// Rewinds the arena to empty, KEEPING all chunks for reuse. O(#chunks).
  /// Invalidates every span previously allocated from this arena.
  void reset() noexcept;

  /// Uninitialized storage for `words` 64-bit words; stable until reset().
  [[nodiscard]] std::uint64_t* allocate(std::size_t words);

  /// Incremental writer for one path. Grows geometrically; the final span
  /// is trimmed to size, so sequential builders pack densely.
  class Builder {
   public:
    void push(std::uint64_t v) {
      if (len_ == cap_) grow();
      data_[len_++] = v;
    }
    [[nodiscard]] std::size_t size() const noexcept { return len_; }
    /// Trims the reservation to the written length and returns the span
    /// (valid until the arena is reset). The builder becomes empty.
    [[nodiscard]] std::span<const std::uint64_t> finish();

   private:
    friend class PathArena;
    explicit Builder(PathArena& arena) noexcept : arena_{&arena} {}
    void grow();

    PathArena* arena_;
    std::uint64_t* data_ = nullptr;
    std::size_t len_ = 0;
    std::size_t cap_ = 0;
  };

  [[nodiscard]] Builder builder() noexcept { return Builder{*this}; }

  /// Counting hook: heap allocations (new chunks) performed since
  /// construction. Constant across queries once the arena is warm.
  [[nodiscard]] std::size_t heap_allocations() const noexcept {
    return heap_allocations_;
  }
  /// Total words across all chunks.
  [[nodiscard]] std::size_t reserved_words() const noexcept;
  /// Words handed out since the last reset() (including builder slack).
  [[nodiscard]] std::size_t used_words() const noexcept;

 private:
  struct Chunk {
    std::unique_ptr<std::uint64_t[]> words;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  /// Appends a chunk of at least `min_words`; becomes the current chunk.
  void add_chunk(std::size_t min_words);
  /// Extends the region [data, data+old_cap) to new_cap words, in place
  /// when it is the top of the current chunk, otherwise by relocating the
  /// first `len` words. Returns the (possibly moved) region start.
  std::uint64_t* extend(std::uint64_t* data, std::size_t old_cap,
                        std::size_t len, std::size_t new_cap);
  /// Returns the unused tail of a top region to the arena.
  void trim(std::uint64_t* data, std::size_t cap, std::size_t len) noexcept;
  [[nodiscard]] bool is_top(const std::uint64_t* end) const noexcept;

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // chunks_[current_] is being bumped
  std::size_t heap_allocations_ = 0;
};

}  // namespace hhc::util
