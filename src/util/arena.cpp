#include "util/arena.hpp"

#include <algorithm>
#include <cstring>

namespace hhc::util {

namespace {
constexpr std::size_t kMinChunkWords = 1024;
}

PathArena::PathArena(std::size_t initial_words) {
  if (initial_words > 0) add_chunk(initial_words);
}

void PathArena::reset() noexcept {
  for (Chunk& chunk : chunks_) chunk.used = 0;
  current_ = 0;
}

void PathArena::add_chunk(std::size_t min_words) {
  const std::size_t last = chunks_.empty() ? 0 : chunks_.back().size;
  const std::size_t size = std::max({min_words, 2 * last, kMinChunkWords});
  Chunk chunk;
  chunk.words = std::make_unique<std::uint64_t[]>(size);
  chunk.size = size;
  ++heap_allocations_;  // the word block; the vector slot is amortized noise
  chunks_.push_back(std::move(chunk));
  current_ = chunks_.size() - 1;
}

std::uint64_t* PathArena::allocate(std::size_t words) {
  // Walk forward through the retained chunks before minting a new one;
  // chunks behind current_ keep whatever the running query already wrote.
  while (current_ < chunks_.size()) {
    Chunk& chunk = chunks_[current_];
    if (chunk.size - chunk.used >= words) {
      std::uint64_t* region = chunk.words.get() + chunk.used;
      chunk.used += words;
      return region;
    }
    if (current_ + 1 == chunks_.size()) break;
    ++current_;
  }
  add_chunk(words);
  Chunk& chunk = chunks_[current_];
  chunk.used = words;
  return chunk.words.get();
}

bool PathArena::is_top(const std::uint64_t* end) const noexcept {
  if (current_ >= chunks_.size()) return false;
  const Chunk& chunk = chunks_[current_];
  return chunk.words.get() + chunk.used == end;
}

std::uint64_t* PathArena::extend(std::uint64_t* data, std::size_t old_cap,
                                 std::size_t len, std::size_t new_cap) {
  if (data != nullptr && is_top(data + old_cap)) {
    Chunk& chunk = chunks_[current_];
    if (chunk.size - chunk.used + old_cap >= new_cap) {
      chunk.used += new_cap - old_cap;
      return data;
    }
    // Doesn't fit in place: give back the old region before relocating so
    // a fresh chunk sized for new_cap doesn't strand the old top.
    chunk.used -= old_cap;
  }
  std::uint64_t* moved = allocate(new_cap);
  if (len > 0) std::memcpy(moved, data, len * sizeof(std::uint64_t));
  return moved;
}

void PathArena::trim(std::uint64_t* data, std::size_t cap,
                     std::size_t len) noexcept {
  if (data != nullptr && is_top(data + cap)) {
    chunks_[current_].used -= cap - len;
  }
}

std::span<const std::uint64_t> PathArena::Builder::finish() {
  arena_->trim(data_, cap_, len_);
  const std::span<const std::uint64_t> view{data_, len_};
  data_ = nullptr;
  len_ = 0;
  cap_ = 0;
  return view;
}

void PathArena::Builder::grow() {
  const std::size_t new_cap = cap_ == 0 ? 32 : 2 * cap_;
  data_ = arena_->extend(data_, cap_, len_, new_cap);
  cap_ = new_cap;
}

std::size_t PathArena::reserved_words() const noexcept {
  std::size_t total = 0;
  for (const Chunk& chunk : chunks_) total += chunk.size;
  return total;
}

std::size_t PathArena::used_words() const noexcept {
  std::size_t total = 0;
  for (const Chunk& chunk : chunks_) total += chunk.used;
  return total;
}

}  // namespace hhc::util
