#include "cube/cube_disjoint.hpp"

#include <stdexcept>

#include "util/bitops.hpp"

namespace hhc::cube {

std::vector<DimensionSequence> disjoint_route_sequences(const Hypercube& q,
                                                        CubeNode s, CubeNode t,
                                                        std::size_t count) {
  if (!q.contains(s) || !q.contains(t)) {
    throw std::invalid_argument("disjoint_route_sequences: node out of range");
  }
  if (s == t) throw std::invalid_argument("disjoint_route_sequences: s == t");
  if (count > q.dimension()) {
    throw std::invalid_argument(
        "disjoint_route_sequences: at most n disjoint paths exist");
  }

  std::vector<unsigned> differing;
  for (unsigned i = 0; i < q.dimension(); ++i) {
    if (bits::test(s ^ t, i)) differing.push_back(i);
  }
  const std::size_t k = differing.size();

  std::vector<DimensionSequence> routes;
  routes.reserve(count);

  // Rotations: flip the differing dimensions starting at cyclic offset r.
  for (std::size_t r = 0; r < k && routes.size() < count; ++r) {
    DimensionSequence seq;
    seq.reserve(k);
    for (std::size_t j = 0; j < k; ++j) seq.push_back(differing[(r + j) % k]);
    routes.push_back(std::move(seq));
  }

  // Detours: step out across an agreeing dimension e, flip all differing
  // dimensions, and step back across e.
  for (unsigned e = 0; e < q.dimension() && routes.size() < count; ++e) {
    if (bits::test(s ^ t, e)) continue;
    DimensionSequence seq;
    seq.reserve(k + 2);
    seq.push_back(e);
    seq.insert(seq.end(), differing.begin(), differing.end());
    seq.push_back(e);
    routes.push_back(std::move(seq));
  }
  return routes;
}

CubePath realize_route(const Hypercube& q, CubeNode s,
                       const DimensionSequence& route) {
  CubePath path{s};
  CubeNode cur = s;
  for (const unsigned d : route) {
    cur = q.neighbor(cur, d);
    path.push_back(cur);
  }
  return path;
}

std::vector<CubePath> disjoint_paths(const Hypercube& q, CubeNode s, CubeNode t,
                                     std::size_t count) {
  const auto routes = disjoint_route_sequences(q, s, t, count);
  std::vector<CubePath> paths;
  paths.reserve(routes.size());
  for (const auto& route : routes) {
    paths.push_back(realize_route(q, s, route));
  }
  return paths;
}

std::span<const std::span<const CubeNode>> disjoint_paths(
    const Hypercube& q, CubeNode s, CubeNode t, std::size_t count,
    CubeDisjointScratch& scratch) {
  if (!q.contains(s) || !q.contains(t)) {
    throw std::invalid_argument("disjoint_route_sequences: node out of range");
  }
  if (s == t) throw std::invalid_argument("disjoint_route_sequences: s == t");
  if (count > q.dimension()) {
    throw std::invalid_argument(
        "disjoint_route_sequences: at most n disjoint paths exist");
  }

  scratch.arena.reset();
  scratch.refs.clear();
  scratch.differing.clear();
  for (unsigned i = 0; i < q.dimension(); ++i) {
    if (bits::test(s ^ t, i)) scratch.differing.push_back(i);
  }
  const std::vector<unsigned>& differing = scratch.differing;
  const std::size_t k = differing.size();

  // Rotations realized directly: flip the differing dimensions starting at
  // cyclic offset r, appending each visited node.
  for (std::size_t r = 0; r < k && scratch.refs.size() < count; ++r) {
    auto builder = scratch.arena.builder();
    CubeNode cur = s;
    builder.push(cur);
    for (std::size_t j = 0; j < k; ++j) {
      cur = bits::flip(cur, differing[(r + j) % k]);
      builder.push(cur);
    }
    scratch.refs.push_back(builder.finish());
  }

  // Detours: step out across an agreeing dimension e, flip all differing
  // dimensions, and step back across e.
  for (unsigned e = 0; e < q.dimension() && scratch.refs.size() < count; ++e) {
    if (bits::test(s ^ t, e)) continue;
    auto builder = scratch.arena.builder();
    CubeNode cur = s;
    builder.push(cur);
    cur = bits::flip(cur, e);
    builder.push(cur);
    for (std::size_t j = 0; j < k; ++j) {
      cur = bits::flip(cur, differing[j]);
      builder.push(cur);
    }
    cur = bits::flip(cur, e);
    builder.push(cur);
    scratch.refs.push_back(builder.finish());
  }
  return {scratch.refs.data(), scratch.refs.size()};
}

}  // namespace hhc::cube
