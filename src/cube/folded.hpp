// The folded hypercube FQ_n: Q_n plus a complement edge at every node.
//
// FQ_n is the classic "add one link, halve the diameter" enhancement of the
// hypercube and the standard comparison point for hierarchical topologies:
// degree n+1 (same as HHC(2^n'+n') at matching connectivity), diameter
// ceil(n/2), connectivity n+1. The module provides the topology, shortest
// routing, and a complete constructive system of n+1 internally
// vertex-disjoint paths between any two nodes — used by the
// network-comparison experiment (T5).
#pragma once

#include <cstdint>
#include <vector>

#include "cube/hypercube.hpp"
#include "graph/adjacency_list.hpp"

namespace hhc::cube {

class FoldedHypercube {
 public:
  /// FQ_n with 2^n nodes; requires 2 <= n <= 63 (FQ_1 degenerates to a
  /// multigraph: the cube edge and the complement edge coincide).
  explicit FoldedHypercube(unsigned dimension);

  [[nodiscard]] unsigned dimension() const noexcept { return n_; }
  [[nodiscard]] unsigned degree() const noexcept { return n_ + 1; }
  [[nodiscard]] std::uint64_t node_count() const noexcept {
    return std::uint64_t{1} << n_;
  }
  [[nodiscard]] bool contains(CubeNode v) const noexcept {
    return v < node_count();
  }

  /// The node's complement partner (all n bits flipped).
  [[nodiscard]] CubeNode complement(CubeNode v) const;

  /// n cube neighbors (ascending dimension), then the complement neighbor.
  [[nodiscard]] std::vector<CubeNode> neighbors(CubeNode v) const;

  [[nodiscard]] bool is_edge(CubeNode u, CubeNode v) const noexcept;

  /// Shortest-path distance: min(H, n + 1 - H) where H is the Hamming
  /// distance (the complement edge is worth using at most once).
  [[nodiscard]] unsigned distance(CubeNode u, CubeNode v) const;

  /// One shortest path (uses the complement edge first when profitable).
  [[nodiscard]] CubePath shortest_path(CubeNode u, CubeNode v) const;

  /// The exact diameter of FQ_n: ceil(n/2) (verified by BFS in tests).
  [[nodiscard]] unsigned theoretical_diameter() const noexcept {
    return (n_ + 1) / 2;
  }

  /// n+1 internally vertex-disjoint s-t paths (s != t):
  ///   k rotations of the differing dimensions,
  ///   a detour e.D.e per agreeing dimension e,
  ///   one path through the complement edges (shape depends on n - k).
  [[nodiscard]] std::vector<CubePath> disjoint_paths(CubeNode s,
                                                     CubeNode t) const;

  /// Explicit adjacency list (n <= 16).
  [[nodiscard]] graph::AdjacencyList explicit_graph() const;

 private:
  unsigned n_;
};

}  // namespace hhc::cube
