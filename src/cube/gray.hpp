// Binary reflected Gray codes.
//
// The HHC disjoint-path construction orders the X-dimensions it must flip
// along the Gray cycle of the 2^m gateway positions: consecutive gateways
// then stay close inside a cluster, which is what bounds the total
// intra-cluster walking by 2^m instead of m * 2^m. (This mirrors the length
// analysis used for the HHC diameter.)
#pragma once

#include <cstdint>
#include <vector>

namespace hhc::cube {

/// i-th codeword of the reflected Gray code.
[[nodiscard]] constexpr std::uint64_t gray(std::uint64_t i) noexcept {
  return i ^ (i >> 1);
}

/// Rank of codeword `g` in the reflected Gray sequence (inverse of gray()).
[[nodiscard]] constexpr std::uint64_t gray_rank(std::uint64_t g) noexcept {
  std::uint64_t i = g;
  for (std::uint64_t shift = 1; shift < 64; shift <<= 1) i ^= i >> shift;
  return i;
}

/// The full Gray cycle of m-bit codewords: 2^m values, cyclically adjacent
/// words differ in exactly one bit. Requires m <= 20.
[[nodiscard]] std::vector<std::uint64_t> gray_cycle(unsigned m);

/// Sorts `values` (distinct m-bit words) into their cyclic order along the
/// Gray cycle. The sum of Hamming distances between cyclically consecutive
/// outputs is then at most 2^m.
[[nodiscard]] std::vector<std::uint64_t> order_along_gray_cycle(
    std::vector<std::uint64_t> values);

}  // namespace hhc::cube
