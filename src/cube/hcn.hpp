// The hierarchical cubic network HCN(n) (Ghose & Desai, 1995) — the other
// classic "hypercube of hypercubes" and the natural sibling comparison for
// the HHC: 2^n clusters, each a Q_n, with node (X, Y) owning one external
// link — a *swap* link to (Y, X) when X != Y, or a *diameter* link to
// (~X, ~X) when X == Y. Degree n+1 on N = 2^(2n) nodes.
//
// Unlike the HHC, every node can leave its cluster (no gateway bottleneck),
// at the price of n-bit cluster labels (N = 2^(2n) instead of 2^(2^m + m)).
// The library provides the topology, a constructive swap route, and the
// explicit graph for exact verification; disjoint-path construction for
// HCN is out of scope (its own line of papers) — the max-flow machinery
// certifies its connectivity instead.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/adjacency_list.hpp"

namespace hhc::cube {

class HierarchicalCubic {
 public:
  /// HCN(n) with 2^(2n) nodes; requires 1 <= n <= 31.
  explicit HierarchicalCubic(unsigned n);

  [[nodiscard]] unsigned n() const noexcept { return n_; }
  [[nodiscard]] unsigned degree() const noexcept { return n_ + 1; }
  [[nodiscard]] std::uint64_t node_count() const noexcept {
    return std::uint64_t{1} << (2 * n_);
  }
  [[nodiscard]] bool contains(std::uint64_t v) const noexcept {
    return v < node_count();
  }

  [[nodiscard]] std::uint64_t encode(std::uint64_t cluster,
                                     std::uint64_t position) const;
  [[nodiscard]] std::uint64_t cluster_of(std::uint64_t v) const noexcept {
    return v >> n_;
  }
  [[nodiscard]] std::uint64_t position_of(std::uint64_t v) const noexcept {
    return v & ((std::uint64_t{1} << n_) - 1);
  }

  /// The single external neighbor: swap link (Y, X) when X != Y, diameter
  /// link (~X, ~X) when X == Y.
  [[nodiscard]] std::uint64_t external_neighbor(std::uint64_t v) const;

  /// n internal neighbors (ascending dimension), then the external one.
  [[nodiscard]] std::vector<std::uint64_t> neighbors(std::uint64_t v) const;

  [[nodiscard]] bool is_edge(std::uint64_t u, std::uint64_t v) const noexcept;

  /// Constructive route via the swap links: walk to (Xs, Xt), swap to
  /// (Xt, Xs), walk to Yt — length H(Ys, Xt) + 1 + H(Xs, Yt) for distinct
  /// clusters. Not always optimal (diameter links can shortcut); compared
  /// against BFS in tests.
  [[nodiscard]] std::vector<std::uint64_t> route(std::uint64_t s,
                                                 std::uint64_t t) const;

  /// Explicit adjacency list (n <= 8 keeps it under 64k nodes).
  [[nodiscard]] graph::AdjacencyList explicit_graph() const;

 private:
  unsigned n_;
};

}  // namespace hhc::cube
