// The binary n-cube Q_n.
//
// Clusters of the hierarchical hypercube are copies of Q_m, and the
// cluster-level structure is a subgraph of Q_(2^m), so this module is the
// substrate both levels of the HHC construction stand on. Nodes are n-bit
// labels in a 64-bit word; edges connect labels at Hamming distance 1.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/adjacency_list.hpp"
#include "util/bitops.hpp"

namespace hhc::cube {

using CubeNode = std::uint64_t;
using CubePath = std::vector<CubeNode>;

class Hypercube {
 public:
  /// Q_n with 2^n nodes; requires 1 <= n <= 63.
  explicit Hypercube(unsigned dimension);

  [[nodiscard]] unsigned dimension() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t node_count() const noexcept {
    return bits::pow2(n_);
  }
  [[nodiscard]] bool contains(CubeNode v) const noexcept {
    return v < node_count();
  }

  /// Neighbor across dimension i (0 <= i < n).
  [[nodiscard]] CubeNode neighbor(CubeNode v, unsigned i) const;

  [[nodiscard]] std::vector<CubeNode> neighbors(CubeNode v) const;

  [[nodiscard]] bool is_edge(CubeNode u, CubeNode v) const noexcept {
    return contains(u) && contains(v) && bits::hamming(u, v) == 1;
  }

  /// Shortest-path distance = Hamming distance.
  [[nodiscard]] int distance(CubeNode u, CubeNode v) const noexcept {
    return bits::hamming(u, v);
  }

  /// Shortest u -> v path correcting differing dimensions in ascending order.
  [[nodiscard]] CubePath shortest_path(CubeNode u, CubeNode v) const;

  /// Shortest u -> v path correcting dimensions in the order given by
  /// `dimension_order` (must contain each differing dimension exactly once;
  /// extra dimensions are ignored).
  [[nodiscard]] CubePath shortest_path_ordered(
      CubeNode u, CubeNode v, const std::vector<unsigned>& dimension_order) const;

  /// Explicit adjacency list (intended for n <= ~16; throws beyond 20).
  [[nodiscard]] graph::AdjacencyList explicit_graph() const;

 private:
  unsigned n_;
};

}  // namespace hhc::cube
