// Classic constructive node-disjoint paths in the hypercube Q_n.
//
// For any distinct s, t with Hamming distance k, Q_n contains n internally
// vertex-disjoint s-t paths: k "rotation" paths of length k obtained by
// flipping the differing dimensions starting at each cyclic offset, plus
// n-k "detour" paths of length k+2 that first step out along an agreeing
// dimension e, flip all differing dimensions, and step back across e.
//
// This is both a reference implementation for Q_n itself and the template
// the HHC cluster-level construction generalizes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cube/hypercube.hpp"
#include "util/arena.hpp"

namespace hhc::cube {

/// A route written as the sequence of dimensions to flip.
using DimensionSequence = std::vector<unsigned>;

/// Reusable storage for the allocation-free disjoint_paths overload: the
/// arena holds the node sequences, `refs` the per-path spans. Results stay
/// valid until the next call on the same scratch.
struct CubeDisjointScratch {
  util::PathArena arena;
  std::vector<std::span<const CubeNode>> refs;
  std::vector<unsigned> differing;
};

/// The rotation/detour dimension sequences for s -> t (s != t), in a fixed
/// deterministic order: all k rotations (by cyclic offset), then detours by
/// ascending detour dimension. `count` <= n sequences are produced.
[[nodiscard]] std::vector<DimensionSequence> disjoint_route_sequences(
    const Hypercube& q, CubeNode s, CubeNode t, std::size_t count);

/// `count` internally vertex-disjoint s-t paths (count <= n), each given as
/// the full node sequence including both endpoints.
[[nodiscard]] std::vector<CubePath> disjoint_paths(const Hypercube& q,
                                                   CubeNode s, CubeNode t,
                                                   std::size_t count);

/// Materializes a dimension sequence into the node path it traces from `s`.
[[nodiscard]] CubePath realize_route(const Hypercube& q, CubeNode s,
                                     const DimensionSequence& route);

/// Allocation-free variant of disjoint_paths: realizes the identical paths
/// (same routes, same order) straight into `scratch` without materializing
/// the dimension sequences. With a warm scratch, zero heap allocations.
[[nodiscard]] std::span<const std::span<const CubeNode>> disjoint_paths(
    const Hypercube& q, CubeNode s, CubeNode t, std::size_t count,
    CubeDisjointScratch& scratch);

}  // namespace hhc::cube
