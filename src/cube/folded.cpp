#include "cube/folded.hpp"

#include <stdexcept>

#include "util/bitops.hpp"

namespace hhc::cube {

FoldedHypercube::FoldedHypercube(unsigned dimension) : n_{dimension} {
  if (dimension < 2 || dimension > 63) {
    throw std::invalid_argument("FoldedHypercube: dimension must be in [2,63]");
  }
}

CubeNode FoldedHypercube::complement(CubeNode v) const {
  if (!contains(v)) throw std::invalid_argument("FoldedHypercube: bad node");
  return v ^ bits::low_mask(n_);
}

std::vector<CubeNode> FoldedHypercube::neighbors(CubeNode v) const {
  if (!contains(v)) throw std::invalid_argument("FoldedHypercube: bad node");
  std::vector<CubeNode> result;
  result.reserve(n_ + 1);
  for (unsigned i = 0; i < n_; ++i) result.push_back(bits::flip(v, i));
  result.push_back(v ^ bits::low_mask(n_));
  return result;
}

bool FoldedHypercube::is_edge(CubeNode u, CubeNode v) const noexcept {
  if (!contains(u) || !contains(v)) return false;
  const int h = bits::hamming(u, v);
  return h == 1 || h == static_cast<int>(n_);
}

unsigned FoldedHypercube::distance(CubeNode u, CubeNode v) const {
  if (!contains(u) || !contains(v)) {
    throw std::invalid_argument("FoldedHypercube: bad node");
  }
  const auto h = static_cast<unsigned>(bits::hamming(u, v));
  return std::min(h, n_ + 1 - h);
}

CubePath FoldedHypercube::shortest_path(CubeNode u, CubeNode v) const {
  if (!contains(u) || !contains(v)) {
    throw std::invalid_argument("FoldedHypercube: bad node");
  }
  const Hypercube q{n_};
  const auto h = static_cast<unsigned>(bits::hamming(u, v));
  if (h <= n_ + 1 - h) return q.shortest_path(u, v);
  // Cross the complement edge first, then correct the remaining n-h bits.
  CubePath path{u};
  const CubeNode w = u ^ bits::low_mask(n_);
  const auto rest = q.shortest_path(w, v);
  path.insert(path.end(), rest.begin(), rest.end());
  return path;
}

std::vector<CubePath> FoldedHypercube::disjoint_paths(CubeNode s,
                                                      CubeNode t) const {
  if (!contains(s) || !contains(t)) {
    throw std::invalid_argument("FoldedHypercube: bad node");
  }
  if (s == t) throw std::invalid_argument("FoldedHypercube: s == t");

  const Hypercube q{n_};
  const std::uint64_t mask = bits::low_mask(n_);
  std::vector<unsigned> differing;
  for (unsigned i = 0; i < n_; ++i) {
    if (bits::test(s ^ t, i)) differing.push_back(i);
  }
  const std::size_t k = differing.size();

  std::vector<CubePath> paths;
  paths.reserve(n_ + 1);

  // k rotation paths inside the cube (disjoint: distinct cyclic intervals).
  for (std::size_t r = 0; r < k; ++r) {
    CubePath path{s};
    CubeNode cur = s;
    for (std::size_t j = 0; j < k; ++j) {
      cur = bits::flip(cur, differing[(r + j) % k]);
      path.push_back(cur);
    }
    paths.push_back(std::move(path));
  }

  if (k == n_) {
    // s and t are complements: the complement edge is a direct path.
    paths.push_back(CubePath{s, t});
    return paths;
  }

  if (k == n_ - 1) {
    // One agreeing dimension e. Structurally, s^complement = t + 2^e and
    // s + 2^e = t^complement, so the two remaining paths each combine one
    // complement edge with one e-edge (both of length 2).
    unsigned e = 0;
    for (unsigned i = 0; i < n_; ++i) {
      if (!bits::test(s ^ t, i)) e = i;
    }
    paths.push_back(CubePath{s, s ^ mask, t});           // comp, then e
    paths.push_back(CubePath{s, bits::flip(s, e), t});   // e, then comp
    return paths;
  }

  // k <= n-2: one detour per agreeing dimension (e, D..., e) ...
  for (unsigned e = 0; e < n_; ++e) {
    if (bits::test(s ^ t, e)) continue;
    CubePath path{s};
    CubeNode cur = bits::flip(s, e);
    path.push_back(cur);
    for (const unsigned d : differing) {
      cur = bits::flip(cur, d);
      path.push_back(cur);
    }
    path.push_back(bits::flip(cur, e));  // == t
    paths.push_back(std::move(path));
  }
  // ... plus the complement route s -> s~ ->(flip D)-> t~ -> t. Its
  // intermediate nodes carry all >= 2 agreeing-dimension flips, so they
  // cannot meet any rotation (0 such flips) or detour (exactly 1).
  {
    CubePath path{s};
    CubeNode cur = s ^ mask;
    path.push_back(cur);
    for (const unsigned d : differing) {
      cur = bits::flip(cur, d);
      path.push_back(cur);
    }
    path.push_back(cur ^ mask);  // == t
    paths.push_back(std::move(path));
  }
  return paths;
}

graph::AdjacencyList FoldedHypercube::explicit_graph() const {
  if (n_ > 16) {
    throw std::invalid_argument("FoldedHypercube: explicit graph too large");
  }
  graph::AdjacencyList g{static_cast<std::size_t>(node_count())};
  for (CubeNode v = 0; v < node_count(); ++v) {
    for (const CubeNode u : neighbors(v)) {
      if (u > v) {
        g.add_edge(static_cast<graph::Vertex>(v), static_cast<graph::Vertex>(u));
      }
    }
  }
  return g;
}

}  // namespace hhc::cube
