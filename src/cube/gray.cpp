#include "cube/gray.hpp"

#include <algorithm>
#include <stdexcept>

namespace hhc::cube {

std::vector<std::uint64_t> gray_cycle(unsigned m) {
  if (m == 0 || m > 20) throw std::invalid_argument("gray_cycle: bad m");
  std::vector<std::uint64_t> cycle;
  cycle.reserve(std::size_t{1} << m);
  for (std::uint64_t i = 0; i < (std::uint64_t{1} << m); ++i) {
    cycle.push_back(gray(i));
  }
  return cycle;
}

std::vector<std::uint64_t> order_along_gray_cycle(
    std::vector<std::uint64_t> values) {
  std::sort(values.begin(), values.end(),
            [](std::uint64_t a, std::uint64_t b) {
              return gray_rank(a) < gray_rank(b);
            });
  return values;
}

}  // namespace hhc::cube
