#include "cube/hypercube.hpp"

#include <stdexcept>

namespace hhc::cube {

Hypercube::Hypercube(unsigned dimension) : n_{dimension} {
  if (dimension == 0 || dimension > 63) {
    throw std::invalid_argument("Hypercube: dimension must be in [1, 63]");
  }
}

CubeNode Hypercube::neighbor(CubeNode v, unsigned i) const {
  if (!contains(v)) throw std::invalid_argument("Hypercube: node out of range");
  if (i >= n_) throw std::invalid_argument("Hypercube: dimension out of range");
  return bits::flip(v, i);
}

std::vector<CubeNode> Hypercube::neighbors(CubeNode v) const {
  if (!contains(v)) throw std::invalid_argument("Hypercube: node out of range");
  std::vector<CubeNode> result;
  result.reserve(n_);
  for (unsigned i = 0; i < n_; ++i) result.push_back(bits::flip(v, i));
  return result;
}

CubePath Hypercube::shortest_path(CubeNode u, CubeNode v) const {
  if (!contains(u) || !contains(v)) {
    throw std::invalid_argument("Hypercube: node out of range");
  }
  CubePath path{u};
  std::uint64_t diff = u ^ v;
  CubeNode cur = u;
  while (diff != 0) {
    const unsigned i = bits::lowest_set(diff);
    cur = bits::flip(cur, i);
    diff = bits::clear(diff, i);
    path.push_back(cur);
  }
  return path;
}

CubePath Hypercube::shortest_path_ordered(
    CubeNode u, CubeNode v, const std::vector<unsigned>& dimension_order) const {
  if (!contains(u) || !contains(v)) {
    throw std::invalid_argument("Hypercube: node out of range");
  }
  CubePath path{u};
  std::uint64_t diff = u ^ v;
  CubeNode cur = u;
  for (const unsigned i : dimension_order) {
    if (i >= n_) throw std::invalid_argument("Hypercube: bad dimension order");
    if (!bits::test(diff, i)) continue;
    cur = bits::flip(cur, i);
    diff = bits::clear(diff, i);
    path.push_back(cur);
  }
  if (diff != 0) {
    throw std::invalid_argument(
        "Hypercube: dimension order does not cover all differing dimensions");
  }
  return path;
}

graph::AdjacencyList Hypercube::explicit_graph() const {
  if (n_ > 20) {
    throw std::invalid_argument("Hypercube: explicit graph too large");
  }
  graph::AdjacencyList g{static_cast<std::size_t>(node_count())};
  for (CubeNode v = 0; v < node_count(); ++v) {
    for (unsigned i = 0; i < n_; ++i) {
      const CubeNode u = bits::flip(v, i);
      if (u > v) {
        g.add_edge(static_cast<graph::Vertex>(v), static_cast<graph::Vertex>(u));
      }
    }
  }
  return g;
}

}  // namespace hhc::cube
