#include "cube/hcn.hpp"

#include <stdexcept>

#include "util/bitops.hpp"

namespace hhc::cube {

HierarchicalCubic::HierarchicalCubic(unsigned n) : n_{n} {
  if (n == 0 || n > 31) {
    throw std::invalid_argument("HierarchicalCubic: n must be in [1, 31]");
  }
}

std::uint64_t HierarchicalCubic::encode(std::uint64_t cluster,
                                        std::uint64_t position) const {
  const std::uint64_t limit = std::uint64_t{1} << n_;
  if (cluster >= limit || position >= limit) {
    throw std::invalid_argument("HierarchicalCubic::encode: out of range");
  }
  return (cluster << n_) | position;
}

std::uint64_t HierarchicalCubic::external_neighbor(std::uint64_t v) const {
  if (!contains(v)) throw std::invalid_argument("HierarchicalCubic: bad node");
  const std::uint64_t x = cluster_of(v);
  const std::uint64_t y = position_of(v);
  if (x != y) return encode(y, x);  // swap link
  const std::uint64_t xc = x ^ bits::low_mask(n_);
  return encode(xc, xc);  // diameter link
}

std::vector<std::uint64_t> HierarchicalCubic::neighbors(std::uint64_t v) const {
  if (!contains(v)) throw std::invalid_argument("HierarchicalCubic: bad node");
  std::vector<std::uint64_t> result;
  result.reserve(n_ + 1);
  for (unsigned i = 0; i < n_; ++i) result.push_back(bits::flip(v, i));
  result.push_back(external_neighbor(v));
  return result;
}

bool HierarchicalCubic::is_edge(std::uint64_t u, std::uint64_t v) const noexcept {
  if (!contains(u) || !contains(v) || u == v) return false;
  if (cluster_of(u) == cluster_of(v)) {
    return bits::hamming(position_of(u), position_of(v)) == 1;
  }
  return external_neighbor(u) == v;
}

std::vector<std::uint64_t> HierarchicalCubic::route(std::uint64_t s,
                                                    std::uint64_t t) const {
  if (!contains(s) || !contains(t)) {
    throw std::invalid_argument("HierarchicalCubic: bad node");
  }
  std::vector<std::uint64_t> path{s};
  const auto walk_to = [&](std::uint64_t target_position) {
    std::uint64_t cur = path.back();
    std::uint64_t diff = position_of(cur) ^ target_position;
    while (diff != 0) {
      const unsigned i = bits::lowest_set(diff);
      cur = bits::flip(cur, i);
      diff = bits::clear(diff, i);
      path.push_back(cur);
    }
  };
  if (cluster_of(s) == cluster_of(t)) {
    walk_to(position_of(t));
    return path;
  }
  // Walk to the swap gateway for the destination cluster, swap, correct.
  walk_to(cluster_of(t));  // now at (Xs, Xt)
  // At (Xs, Xt) with Xs != Xt the external link is the swap to (Xt, Xs).
  path.push_back(external_neighbor(path.back()));
  walk_to(position_of(t));
  return path;
}

graph::AdjacencyList HierarchicalCubic::explicit_graph() const {
  if (n_ > 8) {
    throw std::invalid_argument("HierarchicalCubic: explicit graph too large");
  }
  graph::AdjacencyList g{static_cast<std::size_t>(node_count())};
  for (std::uint64_t v = 0; v < node_count(); ++v) {
    for (const std::uint64_t u : neighbors(v)) {
      if (u > v) {
        g.add_edge(static_cast<graph::Vertex>(v), static_cast<graph::Vertex>(u));
      }
    }
  }
  return g;
}

}  // namespace hhc::cube
