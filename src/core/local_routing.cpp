#include "core/local_routing.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "core/routing.hpp"

namespace hhc::core {

std::size_t distance_heuristic(const HhcTopology& net, Node v, Node t) {
  const auto crossings = static_cast<std::size_t>(
      bits::popcount(net.cluster_of(v) ^ net.cluster_of(t)));
  const auto internal = static_cast<std::size_t>(
      bits::hamming(net.position_of(v), net.position_of(t)));
  return crossings + internal;
}

LocalRouteResult local_fault_route(const HhcTopology& net, Node s, Node t,
                                   const FaultSet& faults,
                                   std::size_t max_steps) {
  if (!net.contains(s) || !net.contains(t)) {
    throw std::invalid_argument("local_fault_route: node out of range");
  }
  if (faults.is_faulty(s) || faults.is_faulty(t)) {
    throw std::invalid_argument("local_fault_route: endpoint is faulty");
  }

  LocalRouteResult result;
  if (s == t) {
    result.path = {s};
    return result;
  }

  // DFS frame: the node plus its not-yet-tried neighbors (best last, so
  // pop_back yields the greedy choice).
  struct Frame {
    Node node;
    std::vector<Node> untried;
  };

  // Greedy order by the constructive route-length estimate — a quantity
  // any switch can compute from the (deterministic) topology alone, no
  // global fault knowledge involved.
  const auto make_frame = [&](Node v) {
    Frame frame{v, net.neighbors(v)};
    std::sort(frame.untried.begin(), frame.untried.end(),
              [&](Node lhs, Node rhs) {
                const auto hl = route_length(net, lhs, t);
                const auto hr = route_length(net, rhs, t);
                return hl != hr ? hl > hr : lhs > rhs;  // best last
              });
    return frame;
  };

  std::unordered_set<Node> visited{s};
  std::vector<Frame> stack{make_frame(s)};

  while (!stack.empty()) {
    if (max_steps != 0 && result.steps >= max_steps) break;
    Frame& top = stack.back();
    if (top.untried.empty()) {
      // Dead end: backtrack. The node stays visited (a switch would mark
      // the packet's header), so the walk cannot cycle.
      stack.pop_back();
      if (!stack.empty()) ++result.backtracks;
      continue;
    }
    const Node next = top.untried.back();
    top.untried.pop_back();
    if (visited.count(next) > 0 || faults.is_faulty(next)) continue;
    ++result.steps;
    visited.insert(next);
    if (next == t) {
      result.path.reserve(stack.size() + 1);
      for (const Frame& frame : stack) result.path.push_back(frame.node);
      result.path.push_back(t);
      return result;
    }
    stack.push_back(make_frame(next));
  }
  return result;  // failure: path stays empty
}

}  // namespace hhc::core
