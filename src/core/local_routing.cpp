#include "core/local_routing.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/routing.hpp"

namespace hhc::core {

std::size_t distance_heuristic(const HhcTopology& net, Node v, Node t) {
  const auto crossings = static_cast<std::size_t>(
      bits::popcount(net.cluster_of(v) ^ net.cluster_of(t)));
  const auto internal = static_cast<std::size_t>(
      bits::hamming(net.position_of(v), net.position_of(t)));
  return crossings + internal;
}

// ---------------------------------------------------------------------------
// Generation-stamped visited set
// ---------------------------------------------------------------------------

namespace {

// Fibonacci-style mix; node ids are <= 2^37 (m <= 5) so the sentinel-free
// stamp scheme below needs no reserved key.
std::size_t hash_node(Node v) noexcept {
  return static_cast<std::size_t>(v * 0x9E3779B97F4A7C15ull);
}

}  // namespace

void LocalRouteScratch::visited_clear() {
  if (visited_keys_.empty()) {
    visited_keys_.assign(64, 0);
    visited_stamp_.assign(64, 0);
  }
  if (visited_gen_ == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(visited_stamp_.begin(), visited_stamp_.end(), 0u);
    visited_gen_ = 0;
  }
  ++visited_gen_;
  visited_count_ = 0;
}

bool LocalRouteScratch::visited_contains(Node v) const noexcept {
  const std::size_t mask = visited_keys_.size() - 1;
  std::size_t i = hash_node(v) & mask;
  while (visited_stamp_[i] == visited_gen_) {
    if (visited_keys_[i] == v) return true;
    i = (i + 1) & mask;
  }
  return false;
}

void LocalRouteScratch::visited_insert(Node v) {
  if (2 * (visited_count_ + 1) > visited_keys_.size()) visited_grow();
  const std::size_t mask = visited_keys_.size() - 1;
  std::size_t i = hash_node(v) & mask;
  while (visited_stamp_[i] == visited_gen_) {
    if (visited_keys_[i] == v) return;
    i = (i + 1) & mask;
  }
  visited_keys_[i] = v;
  visited_stamp_[i] = visited_gen_;
  ++visited_count_;
}

void LocalRouteScratch::visited_grow() {
  std::vector<Node> old_keys = std::move(visited_keys_);
  std::vector<std::uint32_t> old_stamp = std::move(visited_stamp_);
  visited_keys_.assign(2 * old_keys.size(), 0);
  visited_stamp_.assign(2 * old_stamp.size(), 0);
  const std::size_t mask = visited_keys_.size() - 1;
  for (std::size_t j = 0; j < old_keys.size(); ++j) {
    if (old_stamp[j] != visited_gen_) continue;
    std::size_t i = hash_node(old_keys[j]) & mask;
    while (visited_stamp_[i] == visited_gen_) i = (i + 1) & mask;
    visited_keys_[i] = old_keys[j];
    visited_stamp_[i] = visited_gen_;
  }
}

// ---------------------------------------------------------------------------
// DFS routing
// ---------------------------------------------------------------------------

LocalRouteView local_fault_route(const HhcTopology& net, Node s, Node t,
                                 const FaultSet& faults, std::size_t max_steps,
                                 LocalRouteScratch& scratch) {
  if (!net.contains(s) || !net.contains(t)) {
    throw std::invalid_argument("local_fault_route: node out of range");
  }
  if (faults.is_faulty(s) || faults.is_faulty(t)) {
    throw std::invalid_argument("local_fault_route: endpoint is faulty");
  }

  LocalRouteView result;
  scratch.path_.clear();
  if (s == t) {
    scratch.path_.push_back(s);
    result.path = {scratch.path_.data(), 1};
    return result;
  }

  auto& frames = scratch.frames_;
  auto& untried = scratch.untried_;
  frames.clear();
  untried.clear();
  scratch.visited_clear();
  scratch.visited_insert(s);

  // Greedy order by the constructive route-length estimate — a quantity
  // any switch can compute from the (deterministic) topology alone, no
  // global fault knowledge involved. Keys are computed once per neighbor
  // (degree <= 6) and sorted best-LAST so consuming from the end pops the
  // greedy choice, exactly like the historical sorted `untried` vector.
  const auto push_frame = [&](Node v) {
    std::array<std::pair<std::size_t, Node>, 8> order;
    const unsigned degree = net.degree();
    for (unsigned i = 0; i < degree - 1; ++i) {
      const Node u = net.internal_neighbor(v, i);
      order[i] = {route_length(net, u, t), u};
    }
    order[degree - 1] = {route_length(net, net.external_neighbor(v), t),
                         net.external_neighbor(v)};
    std::sort(order.begin(), order.begin() + degree,
              [](const auto& lhs, const auto& rhs) {
                return lhs.first != rhs.first ? lhs.first > rhs.first
                                              : lhs.second > rhs.second;
              });
    const auto begin = static_cast<std::uint32_t>(untried.size());
    for (unsigned i = 0; i < degree; ++i) untried.push_back(order[i].second);
    frames.push_back(LocalRouteScratch::Frame{
        v, begin, static_cast<std::uint32_t>(untried.size())});
  };

  push_frame(s);

  while (!frames.empty()) {
    if (max_steps != 0 && result.steps >= max_steps) break;
    LocalRouteScratch::Frame& top = frames.back();
    if (top.begin == top.end) {
      // Dead end: backtrack. The node stays visited (a switch would mark
      // the packet's header), so the walk cannot cycle.
      untried.resize(top.begin);
      frames.pop_back();
      if (!frames.empty()) ++result.backtracks;
      continue;
    }
    const Node next = untried[--top.end];
    if (scratch.visited_contains(next) || faults.is_faulty(next)) continue;
    ++result.steps;
    scratch.visited_insert(next);
    if (next == t) {
      scratch.path_.reserve(frames.size() + 1);
      for (const auto& frame : frames) scratch.path_.push_back(frame.node);
      scratch.path_.push_back(t);
      result.path = {scratch.path_.data(), scratch.path_.size()};
      return result;
    }
    untried.resize(top.end);  // drop the consumed tail before the child frame
    push_frame(next);
  }
  return result;  // failure: path stays empty
}

LocalRouteResult local_fault_route(const HhcTopology& net, Node s, Node t,
                                   const FaultSet& faults,
                                   std::size_t max_steps) {
  thread_local LocalRouteScratch scratch;
  const LocalRouteView view =
      local_fault_route(net, s, t, faults, max_steps, scratch);
  LocalRouteResult result;
  result.path.assign(view.path.begin(), view.path.end());
  result.backtracks = view.backtracks;
  result.steps = view.steps;
  return result;
}

}  // namespace hhc::core
