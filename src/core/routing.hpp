// Single-path routing in the hierarchical hypercube.
//
// Moving between clusters is only possible through gateway positions, so a
// route is determined by (1) which X-dimensions to flip and in what order,
// and (2) the intra-cluster walks between consecutive gateways. Ordering
// the X-dimensions along the Gray cycle of gateway positions keeps
// consecutive gateways close, which bounds the route length by
// 2^m + k + O(m) — the same argument that yields the HHC diameter bound.
#pragma once

#include <span>
#include <vector>

#include "core/topology.hpp"

namespace hhc::core {

/// A cluster-level route: the sequence of X-dimensions to flip in order.
using ClusterRoute = std::vector<unsigned>;

/// How the differing X-dimensions are cyclically ordered before building
/// routes. kGrayCycle is the algorithm's choice (consecutive gateways stay
/// close inside clusters, bounding total intra-cluster walking by 2^m);
/// kAscending is the naive order kept for the ablation study, where the
/// walking between gateways can reach O(m * 2^m).
enum class DimensionOrdering {
  kGrayCycle,
  kAscending,
};

/// Materializes a cluster-level route into the full node path it traces.
///
/// `exit_walk` is the position walk inside the start cluster, beginning at
/// the source position and ending at the gateway of xdims.front();
/// `entry_walk` is the position walk inside the final cluster, beginning at
/// the gateway of xdims.back() and ending at the destination position.
/// Intermediate clusters are traversed gateway-to-gateway with shortest
/// walks (ascending dimension order). Throws std::invalid_argument on
/// inconsistent inputs. `xdims` must be nonempty.
[[nodiscard]] Path realize_cluster_route(const HhcTopology& net,
                                         std::uint64_t start_cluster,
                                         std::span<const std::uint64_t> exit_walk,
                                         std::span<const unsigned> xdims,
                                         std::span<const std::uint64_t> entry_walk);

/// Constructive s -> t path. Not always a global shortest path (HHC
/// shortest routing embeds a gateway-ordering optimization), but within the
/// 2^m + k + O(m) bound; compared against exact BFS in tests/benchmarks.
[[nodiscard]] Path route(const HhcTopology& net, Node s, Node t);

/// Length (in edges) of the path route() would build, without materializing
/// it. Exact for route(); an upper bound on the true distance. Used as the
/// topology-aware greedy guide by the local-knowledge router.
[[nodiscard]] std::size_t route_length(const HhcTopology& net, Node s, Node t);

/// The set of X-dimensions where the clusters of s and t differ, in the
/// requested cyclic order.
[[nodiscard]] std::vector<unsigned> differing_x_dimensions(
    const HhcTopology& net, Node s, Node t,
    DimensionOrdering ordering = DimensionOrdering::kGrayCycle);

/// Allocation-free variant: fills `out` (cleared first) instead of
/// returning a fresh vector. Produces the identical sequence. The hot
/// construction path calls this with a scratch vector that keeps its
/// capacity across queries.
void differing_x_dimensions_into(const HhcTopology& net, Node s, Node t,
                                 DimensionOrdering ordering,
                                 std::vector<unsigned>& out);

/// Backwards-compatible alias for the Gray ordering.
[[nodiscard]] std::vector<unsigned> differing_x_dimensions_gray_ordered(
    const HhcTopology& net, Node s, Node t);

/// Checks that `path` is a simple path from s to t along HHC edges.
[[nodiscard]] bool is_valid_path(const HhcTopology& net, const Path& path,
                                 Node s, Node t);

}  // namespace hhc::core
