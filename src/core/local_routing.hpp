// Distributed fault-tolerant routing with local knowledge only.
//
// The container router (fault_routing.hpp) assumes the source knows the
// whole fault set. This module models what a deployed switch can actually
// do: at each node the packet sees which of the m+1 neighbors are faulty
// and nothing else, and carries a visited set to avoid cycles. Routing is
// greedy by a distance heuristic with depth-first backtracking.
//
// Guarantee inherited from the paper's connectivity result: with at most
// m faulty nodes the network stays connected (connectivity m+1), so the
// DFS always reaches t when given enough budget — at the price of a
// possibly longer path. Experiment F7 quantifies that price against the
// global-knowledge container router.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/fault_routing.hpp"
#include "core/topology.hpp"

namespace hhc::core {

struct LocalRouteResult {
  Path path;                  // empty on failure
  std::size_t backtracks = 0; // hops undone by dead ends
  std::size_t steps = 0;      // total node expansions
  [[nodiscard]] bool ok() const noexcept { return !path.empty(); }
};

/// Borrowed result of the scratch-backed router: `path` points into the
/// scratch and stays valid until its next use.
struct LocalRouteView {
  std::span<const Node> path;  // empty on failure
  std::size_t backtracks = 0;
  std::size_t steps = 0;
  [[nodiscard]] bool ok() const noexcept { return !path.empty(); }
};

/// Reusable DFS state for local_fault_route: the frame stack and untried
/// neighbors live in flat vectors (one allocation amortized over all
/// queries), and the visited set is an open-addressing table whose entries
/// are invalidated wholesale by a generation bump — no per-query clearing,
/// no per-node rehash. Warm scratch => zero heap allocations per route.
class LocalRouteScratch {
 public:
  LocalRouteScratch() = default;
  LocalRouteScratch(const LocalRouteScratch&) = delete;
  LocalRouteScratch& operator=(const LocalRouteScratch&) = delete;

 private:
  friend LocalRouteView local_fault_route(const HhcTopology&, Node, Node,
                                          const FaultSet&, std::size_t,
                                          LocalRouteScratch&);

  struct Frame {
    Node node;
    std::uint32_t begin;  // untried neighbors live in untried_[begin, end)
    std::uint32_t end;    // sorted best-last; consumed by decrementing end
  };

  // Generation-stamped open-addressing visited set (linear probing).
  void visited_clear();
  [[nodiscard]] bool visited_contains(Node v) const noexcept;
  void visited_insert(Node v);
  void visited_grow();

  std::vector<Frame> frames_;
  std::vector<Node> untried_;
  std::vector<Node> path_;
  std::vector<Node> visited_keys_;
  std::vector<std::uint32_t> visited_stamp_;
  std::uint32_t visited_gen_ = 0;
  std::size_t visited_count_ = 0;
};

/// Lower-bound distance heuristic used by the greedy order:
/// popcount(Xv ^ Xt) external crossings + H(Yv, Yt) internal corrections.
[[nodiscard]] std::size_t distance_heuristic(const HhcTopology& net, Node v,
                                             Node t);

/// Greedy DFS routing from s to t avoiding `faults`, expanding at most
/// `max_steps` nodes (0 = unlimited). Neighbors are tried in increasing
/// heuristic order; visited nodes are never re-entered, so the walk
/// terminates and, when the fault-free graph is connected and the budget
/// suffices, succeeds.
[[nodiscard]] LocalRouteResult local_fault_route(const HhcTopology& net,
                                                 Node s, Node t,
                                                 const FaultSet& faults,
                                                 std::size_t max_steps = 0);

/// Allocation-free variant: identical walk (same expansion order, same
/// step/backtrack counts, same path) built in `scratch`. The copying
/// overload above is exactly this on a thread-local scratch plus one copy.
[[nodiscard]] LocalRouteView local_fault_route(const HhcTopology& net, Node s,
                                               Node t, const FaultSet& faults,
                                               std::size_t max_steps,
                                               LocalRouteScratch& scratch);

}  // namespace hhc::core
