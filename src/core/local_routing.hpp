// Distributed fault-tolerant routing with local knowledge only.
//
// The container router (fault_routing.hpp) assumes the source knows the
// whole fault set. This module models what a deployed switch can actually
// do: at each node the packet sees which of the m+1 neighbors are faulty
// and nothing else, and carries a visited set to avoid cycles. Routing is
// greedy by a distance heuristic with depth-first backtracking.
//
// Guarantee inherited from the paper's connectivity result: with at most
// m faulty nodes the network stays connected (connectivity m+1), so the
// DFS always reaches t when given enough budget — at the price of a
// possibly longer path. Experiment F7 quantifies that price against the
// global-knowledge container router.
#pragma once

#include <cstddef>

#include "core/fault_routing.hpp"
#include "core/topology.hpp"

namespace hhc::core {

struct LocalRouteResult {
  Path path;                  // empty on failure
  std::size_t backtracks = 0; // hops undone by dead ends
  std::size_t steps = 0;      // total node expansions
  [[nodiscard]] bool ok() const noexcept { return !path.empty(); }
};

/// Lower-bound distance heuristic used by the greedy order:
/// popcount(Xv ^ Xt) external crossings + H(Yv, Yt) internal corrections.
[[nodiscard]] std::size_t distance_heuristic(const HhcTopology& net, Node v,
                                             Node t);

/// Greedy DFS routing from s to t avoiding `faults`, expanding at most
/// `max_steps` nodes (0 = unlimited). Neighbors are tried in increasing
/// heuristic order; visited nodes are never re-entered, so the walk
/// terminates and, when the fault-free graph is connected and the budget
/// suffices, succeeds.
[[nodiscard]] LocalRouteResult local_fault_route(const HhcTopology& net,
                                                 Node s, Node t,
                                                 const FaultSet& faults,
                                                 std::size_t max_steps = 0);

}  // namespace hhc::core
