#include "core/routing.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "cube/gray.hpp"
#include "cube/hypercube.hpp"

namespace hhc::core {

namespace {

// Appends the intra-cluster walk from `from` to `to` (positions), skipping
// the first position (assumed already emitted), as nodes of `cluster`.
void append_walk(const HhcTopology& net, const cube::Hypercube& qm,
                 std::uint64_t cluster, std::uint64_t from, std::uint64_t to,
                 Path& out) {
  const auto walk = qm.shortest_path(from, to);
  for (std::size_t i = 1; i < walk.size(); ++i) {
    out.push_back(net.encode(cluster, walk[i]));
  }
}

}  // namespace

Path realize_cluster_route(const HhcTopology& net, std::uint64_t start_cluster,
                           std::span<const std::uint64_t> exit_walk,
                           std::span<const unsigned> xdims,
                           std::span<const std::uint64_t> entry_walk) {
  if (xdims.empty()) {
    throw std::invalid_argument("realize_cluster_route: empty route");
  }
  if (exit_walk.empty() || entry_walk.empty()) {
    throw std::invalid_argument("realize_cluster_route: empty end walk");
  }
  if (exit_walk.back() != xdims.front()) {
    throw std::invalid_argument(
        "realize_cluster_route: exit walk does not reach the first gateway");
  }
  if (entry_walk.front() != xdims.back()) {
    throw std::invalid_argument(
        "realize_cluster_route: entry walk does not start at the last gateway");
  }

  const cube::Hypercube qm{net.m()};
  Path path;
  std::uint64_t cluster = start_cluster;

  // Walk inside the start cluster to the first gateway.
  for (const std::uint64_t pos : exit_walk) path.push_back(net.encode(cluster, pos));

  for (std::size_t i = 0; i < xdims.size(); ++i) {
    const unsigned d = xdims[i];
    if (d >= net.cluster_dimensions()) {
      throw std::invalid_argument("realize_cluster_route: bad X-dimension");
    }
    // Cross the external edge at gateway position d.
    cluster ^= bits::pow2(d);
    path.push_back(net.encode(cluster, d));
    if (i + 1 < xdims.size()) {
      // Walk to the next gateway inside this intermediate cluster.
      append_walk(net, qm, cluster, d, xdims[i + 1], path);
    }
  }

  // Walk inside the final cluster to the destination position.
  for (std::size_t i = 1; i < entry_walk.size(); ++i) {
    path.push_back(net.encode(cluster, entry_walk[i]));
  }
  return path;
}

std::vector<unsigned> differing_x_dimensions(const HhcTopology& net, Node s,
                                             Node t,
                                             DimensionOrdering ordering) {
  const std::uint64_t xdiff = net.cluster_of(s) ^ net.cluster_of(t);
  std::vector<std::uint64_t> dims;
  for (unsigned d = 0; d < net.cluster_dimensions(); ++d) {
    if (bits::test(xdiff, d)) dims.push_back(d);
  }
  if (ordering == DimensionOrdering::kGrayCycle) {
    dims = cube::order_along_gray_cycle(std::move(dims));
  }  // kAscending: the scan above already produced ascending order.
  std::vector<unsigned> result;
  result.reserve(dims.size());
  for (const std::uint64_t d : dims) result.push_back(static_cast<unsigned>(d));
  return result;
}

std::vector<unsigned> differing_x_dimensions_gray_ordered(
    const HhcTopology& net, Node s, Node t) {
  return differing_x_dimensions(net, s, t, DimensionOrdering::kGrayCycle);
}

namespace {

// The cheapest rotation (either direction) of the Gray-ordered differing
// dimensions, with its realized length: endpoint walks + one crossing per
// dimension + gateway-to-gateway walks.
struct BestSequence {
  std::vector<unsigned> dims;
  std::size_t cost = 0;
};

BestSequence best_cluster_sequence(const HhcTopology& net, Node s, Node t) {
  const std::uint64_t Ys = net.position_of(s);
  const std::uint64_t Yt = net.position_of(t);
  const auto gray_dims = differing_x_dimensions_gray_ordered(net, s, t);
  const std::size_t k = gray_dims.size();

  const auto cost_of = [&](const std::vector<unsigned>& seq) {
    std::size_t cost =
        static_cast<std::size_t>(bits::hamming(Ys, seq.front()));
    cost += seq.size();  // one external crossing per dimension
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      cost += static_cast<std::size_t>(bits::hamming(seq[i], seq[i + 1]));
    }
    cost += static_cast<std::size_t>(bits::hamming(seq.back(), Yt));
    return cost;
  };

  BestSequence best;
  best.cost = std::numeric_limits<std::size_t>::max();
  for (int dir = 0; dir < 2; ++dir) {
    for (std::size_t r = 0; r < k; ++r) {
      std::vector<unsigned> seq;
      seq.reserve(k);
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t idx = dir == 0 ? (r + j) % k : (r + k - j) % k;
        seq.push_back(gray_dims[idx]);
      }
      const std::size_t cost = cost_of(seq);
      if (cost < best.cost) {
        best.cost = cost;
        best.dims = std::move(seq);
      }
    }
  }
  return best;
}

}  // namespace

Path route(const HhcTopology& net, Node s, Node t) {
  if (!net.contains(s) || !net.contains(t)) {
    throw std::invalid_argument("route: node out of range");
  }
  if (s == t) return {s};

  const cube::Hypercube qm{net.m()};
  const std::uint64_t Ys = net.position_of(s);
  const std::uint64_t Yt = net.position_of(t);

  if (net.cluster_of(s) == net.cluster_of(t)) {
    Path path;
    path.push_back(s);
    append_walk(net, qm, net.cluster_of(s), Ys, Yt, path);
    return path;
  }

  const auto best = best_cluster_sequence(net, s, t);
  const auto exit_walk = qm.shortest_path(Ys, best.dims.front());
  const auto entry_walk = qm.shortest_path(best.dims.back(), Yt);
  return realize_cluster_route(net, net.cluster_of(s), exit_walk, best.dims,
                               entry_walk);
}

std::size_t route_length(const HhcTopology& net, Node s, Node t) {
  if (!net.contains(s) || !net.contains(t)) {
    throw std::invalid_argument("route_length: node out of range");
  }
  if (s == t) return 0;
  if (net.cluster_of(s) == net.cluster_of(t)) {
    return static_cast<std::size_t>(
        bits::hamming(net.position_of(s), net.position_of(t)));
  }
  return best_cluster_sequence(net, s, t).cost;
}

bool is_valid_path(const HhcTopology& net, const Path& path, Node s, Node t) {
  if (path.empty() || path.front() != s || path.back() != t) return false;
  std::unordered_set<Node> seen;
  for (const Node v : path) {
    if (!net.contains(v)) return false;
    if (!seen.insert(v).second) return false;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!net.is_edge(path[i], path[i + 1])) return false;
  }
  return true;
}

}  // namespace hhc::core
