#include "core/routing.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "cube/gray.hpp"
#include "cube/hypercube.hpp"

namespace hhc::core {

namespace {

// Appends the intra-cluster walk from `from` to `to` (positions), skipping
// the first position (assumed already emitted), as nodes of `cluster`.
void append_walk(const HhcTopology& net, const cube::Hypercube& qm,
                 std::uint64_t cluster, std::uint64_t from, std::uint64_t to,
                 Path& out) {
  const auto walk = qm.shortest_path(from, to);
  for (std::size_t i = 1; i < walk.size(); ++i) {
    out.push_back(net.encode(cluster, walk[i]));
  }
}

}  // namespace

Path realize_cluster_route(const HhcTopology& net, std::uint64_t start_cluster,
                           std::span<const std::uint64_t> exit_walk,
                           std::span<const unsigned> xdims,
                           std::span<const std::uint64_t> entry_walk) {
  if (xdims.empty()) {
    throw std::invalid_argument("realize_cluster_route: empty route");
  }
  if (exit_walk.empty() || entry_walk.empty()) {
    throw std::invalid_argument("realize_cluster_route: empty end walk");
  }
  if (exit_walk.back() != xdims.front()) {
    throw std::invalid_argument(
        "realize_cluster_route: exit walk does not reach the first gateway");
  }
  if (entry_walk.front() != xdims.back()) {
    throw std::invalid_argument(
        "realize_cluster_route: entry walk does not start at the last gateway");
  }

  const cube::Hypercube qm{net.m()};
  Path path;
  std::uint64_t cluster = start_cluster;

  // Walk inside the start cluster to the first gateway.
  for (const std::uint64_t pos : exit_walk) path.push_back(net.encode(cluster, pos));

  for (std::size_t i = 0; i < xdims.size(); ++i) {
    const unsigned d = xdims[i];
    if (d >= net.cluster_dimensions()) {
      throw std::invalid_argument("realize_cluster_route: bad X-dimension");
    }
    // Cross the external edge at gateway position d.
    cluster ^= bits::pow2(d);
    path.push_back(net.encode(cluster, d));
    if (i + 1 < xdims.size()) {
      // Walk to the next gateway inside this intermediate cluster.
      append_walk(net, qm, cluster, d, xdims[i + 1], path);
    }
  }

  // Walk inside the final cluster to the destination position.
  for (std::size_t i = 1; i < entry_walk.size(); ++i) {
    path.push_back(net.encode(cluster, entry_walk[i]));
  }
  return path;
}

void differing_x_dimensions_into(const HhcTopology& net, Node s, Node t,
                                 DimensionOrdering ordering,
                                 std::vector<unsigned>& out) {
  out.clear();
  const std::uint64_t xdiff = net.cluster_of(s) ^ net.cluster_of(t);
  for (unsigned d = 0; d < net.cluster_dimensions(); ++d) {
    if (bits::test(xdiff, d)) out.push_back(d);
  }
  if (ordering == DimensionOrdering::kGrayCycle) {
    // Same comparator as cube::order_along_gray_cycle.
    std::sort(out.begin(), out.end(), [](unsigned a, unsigned b) {
      return cube::gray_rank(a) < cube::gray_rank(b);
    });
  }  // kAscending: the scan above already produced ascending order.
}

std::vector<unsigned> differing_x_dimensions(const HhcTopology& net, Node s,
                                             Node t,
                                             DimensionOrdering ordering) {
  std::vector<unsigned> result;
  differing_x_dimensions_into(net, s, t, ordering, result);
  return result;
}

std::vector<unsigned> differing_x_dimensions_gray_ordered(
    const HhcTopology& net, Node s, Node t) {
  return differing_x_dimensions(net, s, t, DimensionOrdering::kGrayCycle);
}

namespace {

// Gray-ordered differing dimensions on the stack (cluster_dimensions() is
// 2^m <= 32), so the rotation search below never touches the heap — this is
// the hot heuristic of the local-knowledge router.
struct GrayDims {
  std::array<unsigned, 32> dims{};
  std::size_t k = 0;
};

GrayDims gray_dims_of(const HhcTopology& net, Node s, Node t) {
  GrayDims gd;
  const std::uint64_t xdiff = net.cluster_of(s) ^ net.cluster_of(t);
  for (unsigned d = 0; d < net.cluster_dimensions(); ++d) {
    if (bits::test(xdiff, d)) gd.dims[gd.k++] = d;
  }
  std::sort(gd.dims.begin(), gd.dims.begin() + static_cast<std::ptrdiff_t>(gd.k),
            [](unsigned a, unsigned b) {
              return cube::gray_rank(a) < cube::gray_rank(b);
            });
  return gd;
}

// Element j of rotation (r, dir) of the Gray cycle, by index arithmetic.
unsigned rotation_at(const GrayDims& gd, std::size_t r, int dir,
                     std::size_t j) {
  const std::size_t idx =
      dir == 0 ? (r + j) % gd.k : (r + gd.k - j) % gd.k;
  return gd.dims[idx];
}

// Realized length of rotation (r, dir): endpoint walks + one crossing per
// dimension + gateway-to-gateway walks.
std::size_t rotation_cost(const GrayDims& gd, std::size_t r, int dir,
                          std::uint64_t Ys, std::uint64_t Yt) {
  std::size_t cost =
      static_cast<std::size_t>(bits::hamming(Ys, rotation_at(gd, r, dir, 0)));
  cost += gd.k;
  for (std::size_t j = 0; j + 1 < gd.k; ++j) {
    cost += static_cast<std::size_t>(
        bits::hamming(rotation_at(gd, r, dir, j), rotation_at(gd, r, dir, j + 1)));
  }
  cost += static_cast<std::size_t>(
      bits::hamming(rotation_at(gd, r, dir, gd.k - 1), Yt));
  return cost;
}

// The cheapest rotation (either direction) of the Gray-ordered differing
// dimensions. Same scan order (dir major, offset minor, strict improvement)
// as the historical vector-based search, so ties resolve identically.
struct BestRotation {
  std::size_t r = 0;
  int dir = 0;
  std::size_t cost = std::numeric_limits<std::size_t>::max();
};

BestRotation best_cluster_rotation(const GrayDims& gd, std::uint64_t Ys,
                                   std::uint64_t Yt) {
  BestRotation best;
  for (int dir = 0; dir < 2; ++dir) {
    for (std::size_t r = 0; r < gd.k; ++r) {
      const std::size_t cost = rotation_cost(gd, r, dir, Ys, Yt);
      if (cost < best.cost) {
        best.cost = cost;
        best.r = r;
        best.dir = dir;
      }
    }
  }
  return best;
}

}  // namespace

Path route(const HhcTopology& net, Node s, Node t) {
  if (!net.contains(s) || !net.contains(t)) {
    throw std::invalid_argument("route: node out of range");
  }
  if (s == t) return {s};

  const cube::Hypercube qm{net.m()};
  const std::uint64_t Ys = net.position_of(s);
  const std::uint64_t Yt = net.position_of(t);

  if (net.cluster_of(s) == net.cluster_of(t)) {
    Path path;
    path.push_back(s);
    append_walk(net, qm, net.cluster_of(s), Ys, Yt, path);
    return path;
  }

  const GrayDims gd = gray_dims_of(net, s, t);
  const BestRotation best = best_cluster_rotation(gd, Ys, Yt);
  std::vector<unsigned> seq;
  seq.reserve(gd.k);
  for (std::size_t j = 0; j < gd.k; ++j) {
    seq.push_back(rotation_at(gd, best.r, best.dir, j));
  }
  const auto exit_walk = qm.shortest_path(Ys, seq.front());
  const auto entry_walk = qm.shortest_path(seq.back(), Yt);
  return realize_cluster_route(net, net.cluster_of(s), exit_walk, seq,
                               entry_walk);
}

std::size_t route_length(const HhcTopology& net, Node s, Node t) {
  if (!net.contains(s) || !net.contains(t)) {
    throw std::invalid_argument("route_length: node out of range");
  }
  if (s == t) return 0;
  if (net.cluster_of(s) == net.cluster_of(t)) {
    return static_cast<std::size_t>(
        bits::hamming(net.position_of(s), net.position_of(t)));
  }
  const GrayDims gd = gray_dims_of(net, s, t);
  return best_cluster_rotation(gd, net.position_of(s), net.position_of(t))
      .cost;
}

bool is_valid_path(const HhcTopology& net, const Path& path, Node s, Node t) {
  if (path.empty() || path.front() != s || path.back() != t) return false;
  std::unordered_set<Node> seen;
  for (const Node v : path) {
    if (!net.contains(v)) return false;
    if (!seen.insert(v).second) return false;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!net.is_edge(path[i], path[i + 1])) return false;
  }
  return true;
}

}  // namespace hhc::core
