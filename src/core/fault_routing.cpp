#include "core/fault_routing.hpp"

#include <algorithm>
#include <stdexcept>

namespace hhc::core {

FaultSet FaultSet::random(const HhcTopology& net, std::size_t count, Node s,
                          Node t, util::Xoshiro256& rng) {
  const std::uint64_t excluded = s == t ? 1 : 2;
  if (count + excluded > net.node_count()) {
    throw std::invalid_argument("FaultSet::random: too many faults requested");
  }
  FaultSet set;
  while (set.size() < count) {
    const Node v = rng.below(net.node_count());
    if (v == s || v == t) continue;
    set.mark_faulty(v);
  }
  return set;
}

FaultRouteResult route_avoiding(const HhcTopology& net, Node s, Node t,
                                const FaultSet& faults) {
  if (faults.is_faulty(s) || faults.is_faulty(t)) {
    throw std::invalid_argument("route_avoiding: endpoint is faulty");
  }
  const auto container = node_disjoint_paths(net, s, t);

  FaultRouteResult result;
  for (const Path& path : container.paths) {
    const bool blocked = std::any_of(path.begin(), path.end(), [&](Node v) {
      return faults.is_faulty(v);
    });
    if (blocked) {
      ++result.paths_blocked;
      continue;
    }
    if (result.path.empty() || path.size() < result.path.size()) {
      result.path = path;
    }
  }
  return result;
}

}  // namespace hhc::core
