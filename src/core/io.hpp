// Human-readable and Graphviz renderings of HHC nodes, paths, and
// disjoint-path containers — used by the examples, debugging, and anyone
// who wants to *see* the construction — plus minimal machine-readable
// emitters (CSV rows, a streaming JSON writer) shared by the experiment
// harnesses so their outputs stay mutually consistent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/disjoint.hpp"
#include "core/topology.hpp"

namespace hhc::core {

/// "(X,Y)" with both fields in binary, e.g. "(0110,01)".
[[nodiscard]] std::string format_node(const HhcTopology& net, Node v);

/// "(X,Y) -> (X,Y) -> ..." with one entry per hop.
[[nodiscard]] std::string format_path(const HhcTopology& net, const Path& path);

/// The whole network as a Graphviz `graph` (requires m <= 2 to stay
/// readable/tractable). Clusters are rendered as subgraph clusters;
/// external edges are drawn dashed.
[[nodiscard]] std::string to_dot(const HhcTopology& net);

/// Only the container: the union of the given disjoint paths, one color
/// class per path (edge attribute "color=<i>"), endpoints double-circled.
/// Works for any m since only the container's nodes are emitted.
[[nodiscard]] std::string container_to_dot(const HhcTopology& net,
                                           const DisjointPathSet& set, Node s,
                                           Node t);

/// One RFC 4180 CSV line (no trailing newline): cells joined by commas,
/// quoted and escaped whenever a cell contains a comma, quote, or newline.
[[nodiscard]] std::string csv_row(const std::vector<std::string>& cells);

/// Streaming JSON emitter — enough for flat campaign reports without
/// pulling in a JSON library. Keys/values must alternate correctly inside
/// objects; misuse (e.g. a bare value where a key is due) throws
/// std::logic_error rather than emitting malformed output.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Object key; must be followed by exactly one value or container.
  JsonWriter& key(const std::string& name);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// The document; throws std::logic_error if containers remain open.
  [[nodiscard]] std::string str() const;

 private:
  enum class Scope { kObject, kArray };
  void comma_for_value();
  void open(Scope scope, char bracket);
  void close(Scope scope, char bracket);

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool key_pending_ = false;
};

/// One row of the unified stats schema shared by every telemetry surface
/// (core::CacheStats, query::ServiceStats, the obs::MetricRegistry export).
/// A row is either a scalar (one number) or a distribution (count +
/// percentile summary); `section` groups related rows ("cache",
/// "cache.shard3", "counter", "latency", ...) so one flat table can carry a
/// whole snapshot without per-producer schemas drifting apart.
struct StatRow {
  enum class Kind { kScalar, kDist };

  std::string section;
  std::string name;
  Kind kind = Kind::kScalar;

  // kScalar: the value; `integral` selects whole-number rendering.
  double value = 0.0;
  bool integral = true;

  // kDist: sample count and the percentile summary (percentiles are
  // meaningless — and rendered empty/omitted — when count == 0).
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

[[nodiscard]] StatRow stat_scalar(std::string section, std::string name,
                                  std::uint64_t value);
[[nodiscard]] StatRow stat_scalar(std::string section, std::string name,
                                  double value);
[[nodiscard]] StatRow stat_dist(std::string section, std::string name,
                                std::uint64_t count, double p50, double p90,
                                double p99, double max);

/// The canonical CSV rendering: header
/// `section,name,value,count,p50,p90,p99,max`, one line per row, cells that
/// don't apply to the row's kind left empty.
[[nodiscard]] std::string stat_rows_csv(const std::vector<StatRow>& rows);

/// The canonical JSON rendering: a top-level array of row objects. Scalars
/// carry {"section","name","value"}; distributions carry
/// {"section","name","count","p50","p90","p99","max"} with the percentile
/// keys omitted when count == 0.
[[nodiscard]] std::string stat_rows_json(const std::vector<StatRow>& rows);

/// Emits the same array into an in-progress document (after a key or as an
/// array element) so callers can embed the rows in a larger report.
void append_stat_rows(JsonWriter& json, const std::vector<StatRow>& rows);

}  // namespace hhc::core
