// Human-readable and Graphviz renderings of HHC nodes, paths, and
// disjoint-path containers — used by the examples, debugging, and anyone
// who wants to *see* the construction.
#pragma once

#include <string>

#include "core/disjoint.hpp"
#include "core/topology.hpp"

namespace hhc::core {

/// "(X,Y)" with both fields in binary, e.g. "(0110,01)".
[[nodiscard]] std::string format_node(const HhcTopology& net, Node v);

/// "(X,Y) -> (X,Y) -> ..." with one entry per hop.
[[nodiscard]] std::string format_path(const HhcTopology& net, const Path& path);

/// The whole network as a Graphviz `graph` (requires m <= 2 to stay
/// readable/tractable). Clusters are rendered as subgraph clusters;
/// external edges are drawn dashed.
[[nodiscard]] std::string to_dot(const HhcTopology& net);

/// Only the container: the union of the given disjoint paths, one color
/// class per path (edge attribute "color=<i>"), endpoints double-circled.
/// Works for any m since only the container's nodes are emitted.
[[nodiscard]] std::string container_to_dot(const HhcTopology& net,
                                           const DisjointPathSet& set, Node s,
                                           Node t);

}  // namespace hhc::core
