#include "core/dispersal.hpp"

#include <algorithm>
#include <stdexcept>

namespace hhc::core {

std::size_t DispersalPlan::parallel_completion_steps() const {
  // Completion requires the m fastest fragments; sort path lengths and take
  // the m-th smallest (index m-1), since one straggler may be dropped.
  std::vector<std::size_t> lengths;
  lengths.reserve(fragments.size());
  for (const auto& f : fragments) lengths.push_back(f.path.size() - 1);
  std::sort(lengths.begin(), lengths.end());
  if (lengths.empty()) return 0;
  const std::size_t needed = lengths.size() - 1;  // m of m+1
  return lengths[needed == 0 ? 0 : needed - 1];
}

DispersalPlan disperse(const HhcTopology& net, Node s, Node t,
                       std::span<const std::uint8_t> message) {
  const unsigned m = net.m();
  const auto container = node_disjoint_paths(net, s, t);

  DispersalPlan plan;
  plan.message_size = message.size();
  plan.block_size = (message.size() + m - 1) / m;
  if (plan.block_size == 0) plan.block_size = 1;  // keep parity well-defined

  std::vector<std::uint8_t> parity(plan.block_size, 0);
  plan.fragments.reserve(m + 1);
  for (unsigned i = 0; i < m; ++i) {
    Fragment f;
    f.index = i;
    f.block.assign(plan.block_size, 0);
    const std::size_t begin = i * plan.block_size;
    const std::size_t end = std::min(message.size(), begin + plan.block_size);
    for (std::size_t j = begin; j < end; ++j) {
      f.block[j - begin] = message[j];
    }
    for (std::size_t j = 0; j < plan.block_size; ++j) parity[j] ^= f.block[j];
    f.path = container.paths[i];
    plan.fragments.push_back(std::move(f));
  }
  Fragment p;
  p.index = m;
  p.block = std::move(parity);
  p.path = container.paths[m];
  plan.fragments.push_back(std::move(p));
  return plan;
}

std::vector<std::uint8_t> reassemble(unsigned m, std::size_t block_size,
                                     std::size_t message_size,
                                     std::span<const Fragment> received) {
  std::vector<const Fragment*> by_index(m + 1, nullptr);
  std::size_t distinct = 0;
  for (const Fragment& f : received) {
    if (f.index > m) throw std::invalid_argument("reassemble: bad index");
    if (f.block.size() != block_size) {
      throw std::invalid_argument("reassemble: block size mismatch");
    }
    if (by_index[f.index] == nullptr) {
      by_index[f.index] = &f;
      ++distinct;
    }
  }
  if (distinct < m) {
    throw std::invalid_argument("reassemble: need at least m fragments");
  }

  // Recover at most one missing data block from the parity.
  std::vector<std::uint8_t> recovered;
  std::size_t missing = m;  // sentinel: nothing missing
  for (unsigned i = 0; i < m; ++i) {
    if (by_index[i] == nullptr) {
      missing = i;
      break;
    }
  }
  if (missing < m) {
    if (by_index[m] == nullptr) {
      throw std::invalid_argument(
          "reassemble: data block missing and no parity available");
    }
    recovered.assign(block_size, 0);
    for (unsigned i = 0; i <= m; ++i) {
      if (i == missing || by_index[i] == nullptr) continue;
      for (std::size_t j = 0; j < block_size; ++j) {
        recovered[j] ^= by_index[i]->block[j];
      }
    }
  }

  std::vector<std::uint8_t> message;
  message.reserve(message_size);
  for (unsigned i = 0; i < m && message.size() < message_size; ++i) {
    const std::vector<std::uint8_t>& block =
        i == missing ? recovered : by_index[i]->block;
    const std::size_t take =
        std::min(block_size, message_size - message.size());
    message.insert(message.end(), block.begin(),
                   block.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return message;
}

}  // namespace hhc::core
