// Construction of m+1 node-disjoint paths between any two nodes of the
// hierarchical hypercube — the paper's primary contribution.
//
// Overview of the algorithm (full derivation in DESIGN.md §2):
//
//   Let s = (Xs, Ys), t = (Xt, Yt), a = dec(Ys), b = dec(Yt), and let D be
//   the set of X-dimensions where Xs and Xt differ (k = |D|).
//
//   * Crossing X-dimension j requires standing at gateway position j, so
//     exactly one of the m+1 paths leaves s over its external edge (the path
//     whose first X-dimension is a) and exactly one enters t over its
//     external edge (last X-dimension b).
//   * Candidate cluster-level routes: the k *rotations* of D in a fixed
//     cyclic (Gray) order, and *detours* e·D·e for e outside D. Any two
//     such routes visit disjoint sets of intermediate clusters, so selected
//     routes can only meet inside the endpoint clusters.
//   * Select m+1 routes with pairwise-distinct first and last dimensions,
//     including the mandatory first = a and last = b routes; realize the
//     endpoint-cluster segments as exact vertex-disjoint fans (max flow on
//     the <= 32-node cluster), and intermediate clusters as private
//     gateway-to-gateway walks.
//
//   When Xs = Xt the m+1 paths are the m disjoint Ys-Yt paths inside the
//   cluster plus one external detour through three neighboring clusters.
//
// The result is exactly m+1 = connectivity paths; tests verify the claim
// exhaustively for m <= 2 and against a max-flow baseline for m <= 4.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/routing.hpp"
#include "core/scratch.hpp"
#include "core/topology.hpp"

namespace hhc::core {

/// A complete system of node-disjoint s-t paths.
struct DisjointPathSet {
  std::vector<Path> paths;  // each path runs s .. t inclusive

  /// Length (in edges) of the longest path — the container length; its
  /// maximum over all node pairs upper-bounds the (m+1)-wide diameter.
  [[nodiscard]] std::size_t max_length() const noexcept;
  [[nodiscard]] std::size_t min_length() const noexcept;
  [[nodiscard]] double average_length() const noexcept;
};

/// A borrowed view of a disjoint-path system: spans into scratch-owned
/// storage, valid until the next query on (or destruction of) the scratch
/// that produced it. materialize() deep-copies into an owning set.
struct DisjointPathSetRef {
  std::span<const PathRef> paths;

  [[nodiscard]] std::size_t max_length() const noexcept;
  [[nodiscard]] std::size_t min_length() const noexcept;
  [[nodiscard]] double average_length() const noexcept;
  [[nodiscard]] DisjointPathSet materialize() const;
};

/// How the non-mandatory cluster routes are chosen. kCanonical keeps the
/// paper-style deterministic fill (rotations in offset order, then detours
/// ascending); kBalanced ranks all remaining candidates by their estimated
/// realized length and takes the shortest — same disjointness guarantee,
/// shorter containers (ablation A2 quantifies the gap).
enum class RouteSelectionPolicy {
  kCanonical,
  kBalanced,
};

/// Knobs of the construction; the defaults are the published algorithm.
/// This is THE options surface: node_disjoint_paths, ContainerCache,
/// fault::AdaptiveRouter, and query::PathService all take this one struct
/// (designated initializers cover the "override one knob" case the removed
/// positional overloads used to serve).
struct ConstructionOptions {
  DimensionOrdering ordering = DimensionOrdering::kGrayCycle;
  RouteSelectionPolicy selection = RouteSelectionPolicy::kCanonical;

  bool operator==(const ConstructionOptions&) const = default;
};

/// Constructs m+1 node-disjoint paths from s to t (s != t).
/// Deterministic; O(m+1) paths of length <= 2^m + k + O(m) each, built in
/// time linear in the total output size (the endpoint fans run max flow on
/// a 2^m-node cluster, a constant for fixed m).
[[nodiscard]] DisjointPathSet node_disjoint_paths(
    const HhcTopology& net, Node s, Node t, ConstructionOptions options = {});

/// Allocation-free variant: builds the identical m+1 paths (bit-for-bit —
/// asserted by the differential suite) into `scratch`, returning borrowed
/// spans. Resets the scratch arena, so at most one live result per scratch;
/// with a warm scratch the steady state performs zero heap allocations.
/// The copying overload above is exactly this on the thread-local scratch
/// followed by materialize().
[[nodiscard]] DisjointPathSetRef node_disjoint_paths(
    const HhcTopology& net, Node s, Node t, ConstructionOptions options,
    ConstructionScratch& scratch);

/// The cluster-level routes (X-dimension sequences) the construction picks;
/// exposed for tests, ablations, and the routing-structure example.
/// Empty when s and t share a cluster (no external route is required,
/// except the implicit detour added during realization).
[[nodiscard]] std::vector<ClusterRoute> select_cluster_routes(
    const HhcTopology& net, Node s, Node t);

/// Full verification: exactly m+1 paths, each a simple s-t path along HHC
/// edges, pairwise vertex-disjoint except at s and t. On failure `why`
/// (if non-null) receives a human-readable reason.
[[nodiscard]] bool verify_disjoint_path_set(const HhcTopology& net,
                                            const DisjointPathSet& set, Node s,
                                            Node t, std::string* why = nullptr);

}  // namespace hhc::core
