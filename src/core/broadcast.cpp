#include "core/broadcast.hpp"

#include <stdexcept>
#include <unordered_set>

namespace hhc::core {

namespace {

// One binomial round: every informed node of every cluster in `clusters`
// sends across internal dimension i (when the receiver is new).
void internal_round(const HhcTopology& net, const std::vector<bool>& informed,
                    const std::vector<std::uint64_t>& clusters, unsigned i,
                    std::vector<std::pair<Node, Node>>& round,
                    std::vector<bool>& informed_next) {
  for (const std::uint64_t x : clusters) {
    for (std::uint64_t y = 0; y < net.cluster_size(); ++y) {
      const Node v = net.encode(x, y);
      if (!informed[v]) continue;
      const Node u = net.internal_neighbor(v, i);
      if (!informed[u] && !informed_next[u]) {
        round.emplace_back(v, u);
        informed_next[u] = true;
      }
    }
  }
}

}  // namespace

std::size_t BroadcastSchedule::message_count() const noexcept {
  std::size_t total = 0;
  for (const auto& r : rounds) total += r.size();
  return total;
}

BroadcastSchedule broadcast_schedule(const HhcTopology& net, Node root) {
  if (net.m() > 4) {
    throw std::invalid_argument("broadcast_schedule: requires m <= 4");
  }
  if (!net.contains(root)) {
    throw std::invalid_argument("broadcast_schedule: bad root");
  }

  BroadcastSchedule schedule;
  std::vector<bool> informed(net.node_count(), false);
  informed[root] = true;

  const auto commit = [&](std::vector<std::pair<Node, Node>> round) {
    for (const auto& [from, to] : round) {
      (void)from;
      informed[to] = true;
    }
    if (!round.empty()) schedule.rounds.push_back(std::move(round));
  };

  // Phase A: binomial broadcast inside the root cluster.
  std::vector<std::uint64_t> informed_clusters{net.cluster_of(root)};
  for (unsigned i = 0; i < net.m(); ++i) {
    std::vector<std::pair<Node, Node>> round;
    std::vector<bool> fresh(net.node_count(), false);
    internal_round(net, informed, informed_clusters, i, round, fresh);
    commit(std::move(round));
  }

  // Phase B: binomial broadcast over the cluster hypercube. For each
  // X-dimension j: informed clusters cross via gateway j, then the new
  // clusters run their own m-round internal binomial broadcast.
  for (unsigned j = 0; j < net.cluster_dimensions(); ++j) {
    std::vector<std::pair<Node, Node>> crossing;
    std::vector<std::uint64_t> fresh_clusters;
    for (const std::uint64_t x : informed_clusters) {
      const Node gateway = net.encode(x, j);
      const Node peer = net.external_neighbor(gateway);
      if (!informed[peer]) {
        crossing.emplace_back(gateway, peer);
        fresh_clusters.push_back(net.cluster_of(peer));
      }
    }
    commit(std::move(crossing));

    for (unsigned i = 0; i < net.m(); ++i) {
      std::vector<std::pair<Node, Node>> round;
      std::vector<bool> fresh(net.node_count(), false);
      internal_round(net, informed, fresh_clusters, i, round, fresh);
      commit(std::move(round));
    }
    informed_clusters.insert(informed_clusters.end(), fresh_clusters.begin(),
                             fresh_clusters.end());
  }
  return schedule;
}

bool verify_broadcast_schedule(const HhcTopology& net,
                               const BroadcastSchedule& schedule, Node root) {
  std::vector<bool> informed(net.node_count(), false);
  if (!net.contains(root)) return false;
  informed[root] = true;
  std::size_t informed_count = 1;

  for (const auto& round : schedule.rounds) {
    std::unordered_set<Node> senders;
    std::vector<Node> receivers;
    for (const auto& [from, to] : round) {
      if (!net.is_edge(from, to)) return false;      // must use real links
      if (!informed[from]) return false;             // sender knows the message
      if (informed[to]) return false;                // no duplicate delivery
      if (!senders.insert(from).second) return false;  // single-port send
      receivers.push_back(to);
    }
    // Two sends in one round must not target the same receiver.
    const std::unordered_set<Node> distinct(receivers.begin(), receivers.end());
    if (distinct.size() != receivers.size()) return false;
    for (const Node to : receivers) {
      informed[to] = true;
      ++informed_count;
    }
  }
  return informed_count == net.node_count();
}

unsigned broadcast_lower_bound(const HhcTopology& net) {
  return net.address_bits();  // ceil(log2 N) rounds: doubling at best
}

BroadcastSchedule reduction_schedule(const HhcTopology& net, Node root) {
  const auto broadcast = broadcast_schedule(net, root);
  BroadcastSchedule reduction;
  reduction.rounds.reserve(broadcast.rounds.size());
  for (auto it = broadcast.rounds.rbegin(); it != broadcast.rounds.rend();
       ++it) {
    std::vector<std::pair<Node, Node>> round;
    round.reserve(it->size());
    for (const auto& [from, to] : *it) round.emplace_back(to, from);
    reduction.rounds.push_back(std::move(round));
  }
  return reduction;
}

bool verify_reduction_schedule(const HhcTopology& net,
                               const BroadcastSchedule& schedule, Node root) {
  if (!net.contains(root)) return false;
  std::vector<std::uint64_t> accumulated(net.node_count(), 1);
  std::vector<bool> sent(net.node_count(), false);
  for (const auto& round : schedule.rounds) {
    std::unordered_set<Node> round_receivers;
    for (const auto& [from, to] : round) {
      if (!net.is_edge(from, to)) return false;
      if (sent[from]) return false;  // single contribution per node
      if (sent[to]) return false;    // receiver must still be active
      sent[from] = true;
      accumulated[to] += accumulated[from];
      round_receivers.insert(to);
    }
    // A node must not both send and receive within one round (single-port).
    for (const auto& [from, to] : round) {
      (void)to;
      if (round_receivers.count(from) > 0) return false;
    }
  }
  if (sent[root]) return false;
  for (Node v = 0; v < net.node_count(); ++v) {
    if (v != root && !sent[v]) return false;
  }
  return accumulated[root] == net.node_count();
}

}  // namespace hhc::core
