// The hierarchical hypercube network HHC(n), n = 2^m + m
// (Malluhi & Bayoumi, IEEE TPDS 1994).
//
// A node is a pair (X, Y): X is a 2^m-bit cluster label, Y an m-bit position
// inside the cluster. Each cluster is a copy of Q_m (internal edges flip one
// bit of Y); in addition, the node at position Y is its cluster's *gateway*
// for X-dimension dec(Y): its single external edge flips bit dec(Y) of X.
// Every node therefore has degree m + 1, and the network has 2^(2^m + m)
// nodes while keeping the node degree logarithmic in the cluster size.
//
// Node ids pack the address as (X << m) | Y into a 64-bit word, which caps
// the supported range at m <= 5 (2^37 nodes) - already far beyond what any
// explicit algorithm can touch; all algorithms in this library work on the
// implicit representation.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/adjacency_list.hpp"
#include "util/bitops.hpp"

namespace hhc::core {

using Node = std::uint64_t;
using Path = std::vector<Node>;

class HhcTopology {
 public:
  /// HHC with cluster dimension m; requires 1 <= m <= 5.
  explicit HhcTopology(unsigned m);

  [[nodiscard]] unsigned m() const noexcept { return m_; }
  /// Number of X bits = number of clusters' dimensions = 2^m.
  [[nodiscard]] unsigned cluster_dimensions() const noexcept { return xbits_; }
  /// Total address width n = 2^m + m.
  [[nodiscard]] unsigned address_bits() const noexcept { return xbits_ + m_; }
  /// Node degree = connectivity = m + 1.
  [[nodiscard]] unsigned degree() const noexcept { return m_ + 1; }
  [[nodiscard]] std::uint64_t node_count() const noexcept {
    return bits::pow2(address_bits());
  }
  [[nodiscard]] std::uint64_t cluster_count() const noexcept {
    return bits::pow2(xbits_);
  }
  [[nodiscard]] std::uint64_t cluster_size() const noexcept {
    return bits::pow2(m_);
  }

  [[nodiscard]] bool contains(Node v) const noexcept {
    return v < node_count();
  }

  /// Packs (X, Y) into a node id.
  [[nodiscard]] Node encode(std::uint64_t cluster, std::uint64_t position) const;
  /// Cluster label X of a node.
  [[nodiscard]] std::uint64_t cluster_of(Node v) const noexcept {
    return v >> m_;
  }
  /// Position Y of a node within its cluster.
  [[nodiscard]] std::uint64_t position_of(Node v) const noexcept {
    return v & bits::low_mask(m_);
  }

  /// Internal neighbor flipping bit i of Y (0 <= i < m).
  [[nodiscard]] Node internal_neighbor(Node v, unsigned i) const;
  /// External neighbor flipping bit dec(Y) of X.
  [[nodiscard]] Node external_neighbor(Node v) const;
  /// X-dimension this node is the gateway for (= dec(Y)).
  [[nodiscard]] unsigned gateway_dimension(Node v) const noexcept {
    return static_cast<unsigned>(position_of(v));
  }

  /// All m+1 neighbors: internal (ascending dimension), then external.
  [[nodiscard]] std::vector<Node> neighbors(Node v) const;

  [[nodiscard]] bool is_edge(Node u, Node v) const noexcept;
  [[nodiscard]] bool is_internal_edge(Node u, Node v) const noexcept;
  [[nodiscard]] bool is_external_edge(Node u, Node v) const noexcept;

  /// The diameter 2^(m+1): a worst-case pair differs in all 2^m cluster
  /// dimensions, requiring 2^m external crossings plus a full Gray tour of
  /// the 2^m gateway positions. Verified exactly by BFS for m <= 4.
  [[nodiscard]] unsigned theoretical_diameter() const noexcept {
    return 2 * xbits_;
  }

  /// Explicit adjacency list of the whole network, with vertex ids equal to
  /// node ids. Intended for exhaustive verification; requires m <= 4.
  [[nodiscard]] graph::AdjacencyList explicit_graph() const;

 private:
  unsigned m_;
  unsigned xbits_;
};

}  // namespace hhc::core
