#include "core/fault_model.hpp"

#include <stdexcept>

namespace hhc::core {

namespace {

// SplitMix64-style finalizer: good avalanche for hash mixing.
std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::size_t FaultModel::LinkKeyHash::operator()(
    const LinkKey& k) const noexcept {
  return static_cast<std::size_t>(mix64(k.a * 0x9e3779b97f4a7c15ULL ^ k.b));
}

FaultModel::FaultModel(const FaultSet& nodes) {
  for (const Node v : nodes.nodes()) fail_node(v);
}

void FaultModel::fail_node(Node v, std::uint64_t fail_time,
                           std::uint64_t repair_time) {
  if (fail_time >= repair_time) {
    throw std::invalid_argument("FaultModel::fail_node: empty fault window");
  }
  node_faults_[v].push_back({fail_time, repair_time});
  has_transient_ |= repair_time != kNeverRepaired;
}

void FaultModel::fail_link(Node u, Node v, std::uint64_t fail_time,
                           std::uint64_t repair_time) {
  if (u == v) {
    throw std::invalid_argument("FaultModel::fail_link: self-loop");
  }
  if (fail_time >= repair_time) {
    throw std::invalid_argument("FaultModel::fail_link: empty fault window");
  }
  link_faults_[normalize(u, v)].push_back({fail_time, repair_time});
  has_transient_ |= repair_time != kNeverRepaired;
}

bool FaultModel::any_active(const std::vector<FaultWindow>& windows,
                            std::uint64_t time) {
  for (const FaultWindow& w : windows) {
    if (w.active_at(time)) return true;
  }
  return false;
}

bool FaultModel::node_faulty_at(Node v, std::uint64_t time) const {
  const auto it = node_faults_.find(v);
  return it != node_faults_.end() && any_active(it->second, time);
}

bool FaultModel::link_faulty_at(Node u, Node v, std::uint64_t time) const {
  const auto it = link_faults_.find(normalize(u, v));
  return it != link_faults_.end() && any_active(it->second, time);
}

std::size_t FaultModel::node_fault_count(std::uint64_t time) const {
  std::size_t n = 0;
  for (const auto& [v, windows] : node_faults_) {
    if (any_active(windows, time)) ++n;
  }
  return n;
}

std::size_t FaultModel::link_fault_count(std::uint64_t time) const {
  std::size_t n = 0;
  for (const auto& [key, windows] : link_faults_) {
    if (any_active(windows, time)) ++n;
  }
  return n;
}

FaultSet FaultModel::node_view(std::uint64_t time) const {
  FaultSet view;
  for (const auto& [v, windows] : node_faults_) {
    if (any_active(windows, time)) view.mark_faulty(v);
  }
  return view;
}

FaultModel FaultModel::random(const HhcTopology& net, const RandomSpec& spec,
                              Node s, Node t, util::Xoshiro256& rng) {
  const std::uint64_t nodes = net.node_count();
  const std::uint64_t excluded = s == t ? 1 : 2;
  if (spec.node_faults + excluded > nodes) {
    throw std::invalid_argument(
        "FaultModel::random: more node faults than non-endpoint nodes");
  }
  // Every node has m internal edges (each shared by two nodes) and one
  // external edge (also shared): N*m/2 internal and N/2 external links.
  const std::uint64_t internal_links = nodes * net.m() / 2;
  const std::uint64_t external_links = nodes / 2;
  if (spec.internal_link_faults > internal_links) {
    throw std::invalid_argument(
        "FaultModel::random: more internal link faults than internal links");
  }
  if (spec.external_link_faults > external_links) {
    throw std::invalid_argument(
        "FaultModel::random: more external link faults than external links");
  }

  FaultModel model;
  std::size_t placed = 0;
  while (placed < spec.node_faults) {
    const Node v = rng.below(nodes);
    if (v == s || v == t || model.node_faulty_at(v, spec.fail_time)) continue;
    model.fail_node(v, spec.fail_time, spec.repair_time);
    ++placed;
  }
  placed = 0;
  while (placed < spec.internal_link_faults) {
    const Node u = rng.below(nodes);
    const Node v = net.internal_neighbor(
        u, static_cast<unsigned>(rng.below(net.m())));
    if (model.link_faulty_at(u, v, spec.fail_time)) continue;
    model.fail_link(u, v, spec.fail_time, spec.repair_time);
    ++placed;
  }
  placed = 0;
  while (placed < spec.external_link_faults) {
    const Node u = rng.below(nodes);
    const Node v = net.external_neighbor(u);
    if (model.link_faulty_at(u, v, spec.fail_time)) continue;
    model.fail_link(u, v, spec.fail_time, spec.repair_time);
    ++placed;
  }
  return model;
}

}  // namespace hhc::core
