// Exact and sampled structural metrics of the hierarchical hypercube.
//
// Exact BFS-based quantities (distances, diameter) are feasible up to m = 4
// (2^20 nodes); beyond that the implicit constructions are the only option,
// which is precisely the regime the paper's constructive algorithm targets.
#pragma once

#include <cstdint>
#include <vector>

#include "core/disjoint.hpp"
#include "core/topology.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hhc::core {

/// BFS distances from `source` to every node, indexed by node id.
/// Requires m <= 4 (dense distance array).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const HhcTopology& net,
                                                       Node source);

/// Exact shortest path via BFS with early exit; requires m <= 4.
[[nodiscard]] Path bfs_shortest_path(const HhcTopology& net, Node s, Node t);

/// Exact diameter. Cluster labels act on the HHC by XOR translation
/// (an automorphism), so eccentricities only depend on the position Y of
/// the source: 2^m BFS runs suffice. Requires m <= 4.
[[nodiscard]] unsigned exact_diameter(const HhcTopology& net);

/// A sampled s-t pair for the experiment harnesses.
struct PairSample {
  Node s = 0;
  Node t = 0;
};

/// Uniformly sampled distinct node pairs (deterministic in `seed`).
[[nodiscard]] std::vector<PairSample> sample_pairs(const HhcTopology& net,
                                                   std::size_t count,
                                                   std::uint64_t seed);

/// Per-pair measurements of one constructed disjoint-path container.
struct ContainerMeasurement {
  std::size_t longest = 0;   // edges on the longest of the m+1 paths
  std::size_t shortest = 0;  // edges on the shortest path of the container
  double average = 0.0;      // mean edges over the m+1 paths
};

/// Builds the disjoint-path container for every sampled pair and records
/// its length statistics. Runs on `pool` when provided (one task per
/// block of pairs), sequentially otherwise.
[[nodiscard]] std::vector<ContainerMeasurement> measure_containers(
    const HhcTopology& net, const std::vector<PairSample>& pairs,
    util::ThreadPool* pool = nullptr);

}  // namespace hhc::core
