// Translation-canonical memoization of disjoint-path containers.
//
// The construction commutes with cluster translation (tested metamorphically
// in test_hhc_disjoint.cpp): the container for (Xs, Ys) -> (Xt, Yt) is the
// container for (0, Ys) -> (Xs ^ Xt, Yt) with every cluster label XOR-ed by
// Xs. A cache keyed on the canonical triple (Xs ^ Xt, Ys, Yt) therefore
// serves ALL translated copies of a pair — turning repeated-workload
// simulations (hotspot traffic, permutation re-runs, retransmissions) into
// cache hits followed by an O(container size) relabel.
#pragma once

#include <cstddef>
#include <unordered_map>

#include "core/disjoint.hpp"
#include "core/topology.hpp"

namespace hhc::core {

class ContainerCache {
 public:
  explicit ContainerCache(const HhcTopology& net) : net_{net} {}

  /// The m+1 node-disjoint paths for s -> t, served from the canonical
  /// cache when possible. Results are bit-identical to
  /// node_disjoint_paths(net, s, t) (asserted by tests).
  [[nodiscard]] DisjointPathSet paths(Node s, Node t);

  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::size_t size() const noexcept { return cache_.size(); }
  void clear() { cache_.clear(); }

 private:
  struct Key {
    std::uint64_t xdiff;
    std::uint64_t ys;
    std::uint64_t yt;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = k.xdiff * 0x9e3779b97f4a7c15ULL;
      h ^= (k.ys << 17) ^ (k.yt << 3) ^ (h >> 31);
      return static_cast<std::size_t>(h * 0xbf58476d1ce4e5b9ULL);
    }
  };

  HhcTopology net_;
  std::unordered_map<Key, DisjointPathSet, KeyHash> cache_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace hhc::core
