// Sharded, thread-safe, translation-canonical memoization of disjoint-path
// containers.
//
// The construction commutes with cluster translation (tested metamorphically
// in test_hhc_disjoint.cpp): the container for (Xs, Ys) -> (Xt, Yt) is the
// container for (0, Ys) -> (Xs ^ Xt, Yt) with every cluster label XOR-ed by
// Xs. A cache keyed on the canonical triple (Xs ^ Xt, Ys, Yt) — plus the
// ConstructionOptions, since different option sets build different
// containers — therefore serves ALL translated copies of a pair, turning
// repeated-workload simulations (hotspot traffic, permutation re-runs,
// retransmissions) into cache hits followed by an O(container size) relabel.
//
// Concurrency: the key space is split into `shards` independent
// unordered_maps, each behind its own mutex, with the canonical key hash
// selecting the shard. Counters are lock-free atomics so the hot hit path
// pays one short critical section (find + relabel) and no shared-counter
// contention. Misses run the construction OUTSIDE any lock; two threads
// missing the same key may both construct, but the construction is
// deterministic so the loser's duplicate is simply discarded — results stay
// bit-identical to node_disjoint_paths(net, s, t, options) either way.
//
// clear() takes every shard lock and must not race with concurrent paths()
// callers that still want their results counted; it resets BOTH the stored
// containers and the hit/miss/eviction counters, so a cleared cache is
// indistinguishable from a fresh one (the previous behavior — counters
// surviving clear() — made post-clear hit rates unintelligible).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/disjoint.hpp"
#include "core/topology.hpp"
#include "util/rng.hpp"

namespace hhc::core {

/// A disjoint-path container flattened into two arrays: `nodes` holds every
/// path back to back, `offsets` (path_count + 1 entries) delimits them.
/// Immutable once published; the cache shares one FlatContainer between the
/// resident entry and every outstanding ContainerHandle.
struct FlatContainer {
  std::vector<Node> nodes;
  std::vector<std::uint32_t> offsets;  // paths[i] = nodes[offsets[i], offsets[i+1])
};

/// A zero-copy view of a cached container, relabeled lazily.
///
/// The construction commutes with cluster translation, and in the packed
/// node encoding (X << m | Y) that translation is a single XOR:
///   encode(cluster_of(v) ^ Xs, position_of(v)) == v ^ (Xs << m).
/// So a handle is just {shared FlatContainer, XOR mask}: a cache hit copies
/// one shared_ptr (no allocation, no node copying) and node() applies the
/// mask on the fly. The handle keeps its container alive even if the cache
/// entry is evicted afterwards (shared ownership), so holding one is always
/// safe. materialize() produces the same owning DisjointPathSet the legacy
/// copying API returns, bit for bit.
class ContainerHandle {
 public:
  ContainerHandle() = default;
  ContainerHandle(std::shared_ptr<const FlatContainer> flat,
                  Node xor_mask) noexcept
      : flat_{std::move(flat)}, mask_{xor_mask} {}

  [[nodiscard]] bool valid() const noexcept { return flat_ != nullptr; }
  [[nodiscard]] std::size_t path_count() const noexcept {
    return flat_ == nullptr ? 0 : flat_->offsets.size() - 1;
  }
  /// Number of nodes on path i (its length in edges + 1).
  [[nodiscard]] std::size_t path_size(std::size_t i) const noexcept {
    return flat_->offsets[i + 1] - flat_->offsets[i];
  }
  /// Node j of path i, relabeled into the handle's translation.
  [[nodiscard]] Node node(std::size_t i, std::size_t j) const noexcept {
    return flat_->nodes[flat_->offsets[i] + j] ^ mask_;
  }
  [[nodiscard]] Node source() const noexcept { return node(0, 0); }
  [[nodiscard]] Node target() const noexcept {
    return node(0, path_size(0) - 1);
  }

  /// Length (in edges) of the longest path.
  [[nodiscard]] std::size_t max_length() const noexcept;
  /// Deep copy of path i as an owning Path.
  [[nodiscard]] Path materialize_path(std::size_t i) const;
  /// Deep copy of the whole container as an owning DisjointPathSet.
  [[nodiscard]] DisjointPathSet materialize() const;

 private:
  std::shared_ptr<const FlatContainer> flat_;
  Node mask_ = 0;
};

/// Point-in-time counters for one shard of the cache.
struct CacheShardStats {
  std::size_t entries = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
};

/// Aggregate + per-shard snapshot, as returned by ContainerCache::stats().
struct CacheStats {
  std::size_t entries = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::vector<CacheShardStats> shards;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class ContainerCache {
 public:
  struct Config {
    /// Default construction knobs; per-call overrides key separate entries.
    ConstructionOptions options{};
    /// Number of independent shards (rounded up to a power of two, >= 1).
    std::size_t shards = 16;
    /// Per-shard entry cap; 0 = unbounded. When full, one UNIFORMLY RANDOM
    /// resident entry is displaced per insert (drawn from a per-shard
    /// seeded util::Xoshiro256, so runs are reproducible) and counted as an
    /// eviction. Random replacement is cheap and good enough for the
    /// skewed workloads the cache exists for; the O(capacity) victim walk
    /// is dominated by the construction the miss just paid for.
    std::size_t max_entries_per_shard = 0;
    /// Seed for the per-shard eviction RNGs (each shard derives its own
    /// stream, so eviction choices are deterministic per configuration).
    std::uint64_t eviction_seed = 0x9d1f2c3b4a596877ULL;
  };

  /// The topology is held by reference (like sim::NetworkSimulator and every
  /// other consumer): the caller keeps it alive for the cache's lifetime.
  /// Copying it per cache was both wasteful and a trap — a cache built from
  /// a temporary silently outlived its network.
  /// (Two overloads rather than `Config config = {}`: gcc rejects a nested
  /// class's default member initializers in a default argument while the
  /// enclosing class is still open.)
  explicit ContainerCache(const HhcTopology& net);
  ContainerCache(const HhcTopology& net, Config config);

  ContainerCache(const ContainerCache&) = delete;
  ContainerCache& operator=(const ContainerCache&) = delete;

  /// The m+1 node-disjoint paths for s -> t under the cache's default
  /// options. Thread-safe; results are bit-identical to
  /// node_disjoint_paths(net, s, t, options) (asserted by tests).
  [[nodiscard]] DisjointPathSet paths(Node s, Node t);

  /// Same, with per-call options (kept as a distinct cache entry). If
  /// `cache_hit` is non-null it receives whether this call was served
  /// without running the construction.
  [[nodiscard]] DisjointPathSet paths(Node s, Node t,
                                      const ConstructionOptions& options,
                                      bool* cache_hit = nullptr);

  /// Zero-copy lookup: the borrowed-view fast path. A hit performs no
  /// construction, no node copying, and no heap allocation — it copies one
  /// shared_ptr under the shard lock and XORs lazily through the handle.
  /// paths() above is exactly lookup() + materialize().
  [[nodiscard]] ContainerHandle lookup(Node s, Node t,
                                       const ConstructionOptions& options,
                                       bool* cache_hit = nullptr);
  [[nodiscard]] ContainerHandle lookup(Node s, Node t);

  [[nodiscard]] std::size_t hits() const noexcept;
  [[nodiscard]] std::size_t misses() const noexcept;
  [[nodiscard]] std::size_t evictions() const noexcept;
  /// Total resident entries across shards (takes each shard lock briefly).
  [[nodiscard]] std::size_t size() const;
  /// Consistent per-shard + aggregate snapshot.
  [[nodiscard]] CacheStats stats() const;

  /// Drops every entry AND resets all counters (see header comment).
  void clear();

  [[nodiscard]] const ConstructionOptions& options() const noexcept {
    return config_.options;
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const HhcTopology& net() const noexcept { return net_; }

 private:
  struct Key {
    std::uint64_t xdiff;
    std::uint64_t ys;
    std::uint64_t yt;
    std::uint8_t ordering;
    std::uint8_t selection;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = k.xdiff * 0x9e3779b97f4a7c15ULL;
      h ^= (k.ys << 17) ^ (k.yt << 3) ^ (h >> 31);
      h ^= (std::uint64_t{k.ordering} << 11) ^ (std::uint64_t{k.selection} << 7);
      return static_cast<std::size_t>(h * 0xbf58476d1ce4e5b9ULL);
    }
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, std::shared_ptr<const FlatContainer>, KeyHash> map;
    util::Xoshiro256 eviction_rng;  // guarded by mutex (evictions hold it)
    std::atomic<std::size_t> hits{0};
    std::atomic<std::size_t> misses{0};
    std::atomic<std::size_t> evictions{0};
  };

  const HhcTopology& net_;
  Config config_;
  // unique_ptr because Shard (mutex + atomics) is neither movable nor
  // copyable; the vector itself is immutable after construction.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hhc::core
