// Sharded, translation-canonical memoization of disjoint-path containers
// with a LOCK-FREE read path.
//
// The construction commutes with cluster translation (tested metamorphically
// in test_hhc_disjoint.cpp): the container for (Xs, Ys) -> (Xt, Yt) is the
// container for (0, Ys) -> (Xs ^ Xt, Yt) with every cluster label XOR-ed by
// Xs. A cache keyed on the canonical triple (Xs ^ Xt, Ys, Yt) — plus the
// ConstructionOptions, since different option sets build different
// containers — therefore serves ALL translated copies of a pair, turning
// repeated-workload simulations (hotspot traffic, permutation re-runs,
// retransmissions) into cache hits followed by an O(container size) relabel.
//
// Concurrency model (RCU-style published snapshots; DESIGN.md §9):
//
//   * Each shard PUBLISHES an immutable ShardIndex — an open-addressing
//     table of (key, shared FlatContainer) slots. A publication bumps the
//     shard's atomic version counter; every thread keeps a version-stamped
//     shared_ptr to its last-seen snapshot in TLS (keyed by a never-reused
//     shard id, the util::StripedCounter identity scheme). The steady-state
//     hit path is ONE acquire load of the version — a read of a line no
//     reader ever writes — plus a linear probe of the thread's pinned
//     snapshot: no mutex, no shared write, no allocation. Readers of one
//     snapshot never observe a concurrent writer's mutation, because
//     writers never mutate a published index.
//     (Why not std::atomic<std::shared_ptr>? libstdc++'s _Sp_atomic takes
//     an internal spin lock — a CAS, i.e. a shared WRITE, on every load —
//     and unlocks reads with a relaxed RMW, which is a formal data race on
//     its pointer field that ThreadSanitizer rightly reports. The version
//     + TLS-pin scheme is wait-free on hits and TSan-clean.)
//   * Writers (cache misses) run the construction OUTSIDE any lock, then
//     take the shard mutex, clone the current index into a new table
//     (applying eviction if the shard is at capacity), insert, swap the
//     published pointer, and bump the version. A reader whose TLS stamp is
//     stale refreshes by taking that mutex just long enough to copy the
//     new shared_ptr — once per publication per thread, never on a
//     steady-state hit. Two threads missing the same key may both
//     construct, but the construction is deterministic, so the loser's
//     duplicate is discarded — results stay bit-identical to
//     node_disjoint_paths(net, s, t, options) either way.
//   * Reclamation is the shared_ptr refcount: a swapped-out index stays
//     alive until the last TLS pin moves on (next refresh or thread exit);
//     the FlatContainers inside are themselves shared with every
//     outstanding ContainerHandle, so an entry outlives both its index AND
//     its eviction for as long as any handle pins it.
//   * Hit/miss counters are per-thread striped cells (util::StripedCounter)
//     folded on stats()/hits()/misses() — the read path writes only
//     thread-private memory. Evictions are counted under the shard mutex.
//
// clear() takes every shard mutex, swaps every shard to an empty index,
// and resets ALL counters, so a cleared cache is indistinguishable from a
// fresh one. Outstanding handles and in-flight snapshot readers are
// unaffected (their shared_ptrs keep the old state alive).
//
// API contract (PR 7 redesign): lookup() is THE read path — it returns a
// borrowed ContainerHandle off the published snapshot. The legacy
// materializing paths() accessor is gone; call lookup(...).materialize()
// where an owning DisjointPathSet is genuinely needed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/disjoint.hpp"
#include "core/topology.hpp"
#include "util/rng.hpp"
#include "util/striped.hpp"

namespace hhc::core {

/// A disjoint-path container flattened into two arrays: `nodes` holds every
/// path back to back, `offsets` (path_count + 1 entries) delimits them.
/// Immutable once published; the cache shares one FlatContainer between the
/// resident entry and every outstanding ContainerHandle.
struct FlatContainer {
  std::vector<Node> nodes;
  std::vector<std::uint32_t> offsets;  // paths[i] = nodes[offsets[i], offsets[i+1])
};

/// A zero-copy view of a cached container, relabeled lazily.
///
/// The construction commutes with cluster translation, and in the packed
/// node encoding (X << m | Y) that translation is a single XOR:
///   encode(cluster_of(v) ^ Xs, position_of(v)) == v ^ (Xs << m).
/// So a handle is just {shared FlatContainer, XOR mask}: a cache hit copies
/// one shared_ptr (no allocation, no node copying) and node() applies the
/// mask on the fly.
///
/// Lifetime contract: the handle SHARES OWNERSHIP of its container. It
/// remains valid — and keeps answering the same bits — after the source
/// entry is evicted, after the shard republishes its index any number of
/// times, after clear(), and after the ContainerCache itself is destroyed.
/// Holding a handle is therefore always safe; what it pins is the one
/// FlatContainer (nodes + offsets), not the cache. materialize() produces
/// the same owning DisjointPathSet the construction returns, bit for bit.
class ContainerHandle {
 public:
  ContainerHandle() = default;
  ContainerHandle(std::shared_ptr<const FlatContainer> flat,
                  Node xor_mask) noexcept
      : flat_{std::move(flat)}, mask_{xor_mask} {}

  [[nodiscard]] bool valid() const noexcept { return flat_ != nullptr; }
  [[nodiscard]] std::size_t path_count() const noexcept {
    return flat_ == nullptr ? 0 : flat_->offsets.size() - 1;
  }
  /// Number of nodes on path i (its length in edges + 1).
  [[nodiscard]] std::size_t path_size(std::size_t i) const noexcept {
    return flat_->offsets[i + 1] - flat_->offsets[i];
  }
  /// Node j of path i, relabeled into the handle's translation.
  [[nodiscard]] Node node(std::size_t i, std::size_t j) const noexcept {
    return flat_->nodes[flat_->offsets[i] + j] ^ mask_;
  }
  [[nodiscard]] Node source() const noexcept { return node(0, 0); }
  [[nodiscard]] Node target() const noexcept {
    return node(0, path_size(0) - 1);
  }

  /// Length (in edges) of the longest path.
  [[nodiscard]] std::size_t max_length() const noexcept;
  /// Deep copy of path i as an owning Path.
  [[nodiscard]] Path materialize_path(std::size_t i) const;
  /// Deep copy of the whole container as an owning DisjointPathSet.
  [[nodiscard]] DisjointPathSet materialize() const;

 private:
  std::shared_ptr<const FlatContainer> flat_;
  Node mask_ = 0;
};

struct StatRow;  // core/io.hpp

/// Point-in-time per-shard state. Hit/miss counters are cache-global (the
/// striped cells are not shard-attributed — see stats() doc); what a shard
/// owns is its resident entries and its eviction count.
struct CacheShardStats {
  std::size_t entries = 0;
  std::size_t evictions = 0;
};

/// Aggregate + per-shard snapshot, as returned by ContainerCache::stats().
/// All counters are folded/read at one point in time (one clock).
struct CacheStats {
  std::size_t entries = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::vector<CacheShardStats> shards;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }

  /// The snapshot as unified core::StatRow rows (section "cache" for the
  /// aggregate, "cache.shard<i>" per shard) so cache telemetry renders with
  /// the same core::io schema as service stats and the metrics registry.
  [[nodiscard]] std::vector<StatRow> rows() const;
};

class ContainerCache {
 public:
  struct Config {
    /// Default construction knobs; per-call overrides key separate entries.
    ConstructionOptions options{};
    /// Number of independent shards (rounded up to a power of two, >= 1).
    std::size_t shards = 16;
    /// Per-shard entry cap; 0 = unbounded. When full, one UNIFORMLY RANDOM
    /// resident entry is displaced per insert (drawn from a per-shard
    /// seeded util::Xoshiro256, so runs are reproducible) and counted as an
    /// eviction. Random replacement is cheap and good enough for the
    /// skewed workloads the cache exists for; the O(capacity) clone the
    /// publication pays is dominated by the construction the miss just ran.
    std::size_t max_entries_per_shard = 0;
    /// Seed for the per-shard eviction RNGs (each shard derives its own
    /// stream, so eviction choices are deterministic per configuration).
    std::uint64_t eviction_seed = 0x9d1f2c3b4a596877ULL;
    /// Publication knob: slots pre-sized into each shard's FIRST published
    /// index (rounded up to a power of two). A good guess (≈ 2x the
    /// expected resident entries) avoids the first few grow-republish
    /// cycles; 0 picks a small default. Capped shards size themselves off
    /// max_entries_per_shard regardless.
    std::size_t initial_index_capacity = 0;
    /// Publication knob: per-index load-factor ceiling in percent (the
    /// probe-length / memory trade). An insert that would push occupancy
    /// past this grows the cloned table to the next power of two.
    std::size_t max_load_percent = 50;
  };

  /// The topology is held by reference (like sim::NetworkSimulator and every
  /// other consumer): the caller keeps it alive for the cache's lifetime.
  /// (Two overloads rather than `Config config = {}`: gcc rejects a nested
  /// class's default member initializers in a default argument while the
  /// enclosing class is still open.)
  explicit ContainerCache(const HhcTopology& net);
  ContainerCache(const HhcTopology& net, Config config);

  ContainerCache(const ContainerCache&) = delete;
  ContainerCache& operator=(const ContainerCache&) = delete;

  /// THE read path. A steady-state hit performs no construction, no node
  /// copying, no heap allocation, and takes NO lock: one acquire load of
  /// the shard version, a probe of the thread's pinned immutable snapshot,
  /// one shared_ptr copy, and a per-thread counter bump. A miss runs the
  /// construction outside any lock, then publishes a new index under the
  /// shard mutex (which hits never touch).
  /// If `cache_hit` is non-null it receives whether this call was served
  /// without running the construction. Results materialize bit-identically
  /// to node_disjoint_paths(net, s, t, options) (asserted by tests).
  /// Throws std::invalid_argument for out-of-range nodes or s == t.
  [[nodiscard]] ContainerHandle lookup(Node s, Node t,
                                       const ConstructionOptions& options,
                                       bool* cache_hit = nullptr);
  /// Same, under the cache's default options.
  [[nodiscard]] ContainerHandle lookup(Node s, Node t);

  [[nodiscard]] std::size_t hits() const { return hits_.fold(); }
  [[nodiscard]] std::size_t misses() const { return misses_.fold(); }
  [[nodiscard]] std::size_t evictions() const noexcept;
  /// Total resident entries across shards (reads each shard's published
  /// snapshot under its mutex — observability path, not the hot path).
  [[nodiscard]] std::size_t size() const;
  /// Per-shard + aggregate snapshot, folded at one point in time.
  [[nodiscard]] CacheStats stats() const;

  /// Drops every entry AND resets all counters (see header comment).
  void clear();

  [[nodiscard]] const ConstructionOptions& options() const noexcept {
    return config_.options;
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const HhcTopology& net() const noexcept { return net_; }

 private:
  struct Key {
    std::uint64_t xdiff;
    std::uint64_t ys;
    std::uint64_t yt;
    std::uint8_t ordering;
    std::uint8_t selection;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = k.xdiff * 0x9e3779b97f4a7c15ULL;
      h ^= (k.ys << 17) ^ (k.yt << 3) ^ (h >> 31);
      h ^= (std::uint64_t{k.ordering} << 11) ^ (std::uint64_t{k.selection} << 7);
      return static_cast<std::size_t>(h * 0xbf58476d1ce4e5b9ULL);
    }
  };

  /// One published, immutable generation of a shard: an open-addressing
  /// (linear-probe) table over power-of-two slots. value == nullptr marks
  /// an empty slot. Never mutated after publication; writers clone.
  struct ShardIndex {
    struct Slot {
      Key key{};
      std::shared_ptr<const FlatContainer> value;
    };
    std::vector<Slot> slots;
    std::size_t size = 0;

    [[nodiscard]] const std::shared_ptr<const FlatContainer>* find(
        const Key& key) const noexcept {
      if (slots.empty()) return nullptr;
      const std::size_t mask = slots.size() - 1;
      for (std::size_t i = KeyHash{}(key) & mask;; i = (i + 1) & mask) {
        const Slot& slot = slots[i];
        if (slot.value == nullptr) return nullptr;
        if (slot.key == key) return &slot.value;
      }
    }
    /// Build-side insert (pre-publication only; capacity is guaranteed by
    /// the builder, which keeps occupancy under the load ceiling).
    void insert(const Key& key, std::shared_ptr<const FlatContainer> value);
  };

  struct Shard {
    /// Process-unique, never reused: keys each thread's TLS snapshot cache
    /// (see snapshot()). Stale TLS entries for destroyed caches are inert
    /// because their ids are never issued again.
    const std::uint64_t id = next_shard_id();
    /// Bumped (release) on every publication. The acquire load validating
    /// a thread's TLS stamp against this counter is the entire
    /// shared-memory footprint of a steady-state hit.
    std::atomic<std::uint64_t> version{0};
    /// Guards `index`, the eviction RNG, and publication. Taken by writers
    /// (build-then-swap) and by a reader's one-shared_ptr-copy refresh
    /// after a publication; never by a steady-state hit.
    std::mutex mutex;
    std::shared_ptr<const ShardIndex> index;  // current published snapshot
    util::Xoshiro256 eviction_rng;            // guarded by mutex
    std::atomic<std::size_t> evictions{0};    // bumped under mutex
  };

  [[nodiscard]] static std::uint64_t next_shard_id() noexcept;

  /// This thread's pinned snapshot of `shard`, refreshed (under the shard
  /// mutex) only when the version stamp says a publication happened. The
  /// returned pointer stays valid until this thread's next lookup on the
  /// same shard; it may be one publication stale, which is fine: the miss
  /// path re-probes the live index under the mutex before constructing.
  [[nodiscard]] static const ShardIndex* snapshot(Shard& shard);

  /// Clones `old` (skipping `victim`, if any), inserts (key, value), and
  /// returns the new index. Pure build; caller publishes under the writer
  /// mutex.
  [[nodiscard]] std::shared_ptr<const ShardIndex> rebuild_index(
      const ShardIndex* old, std::size_t victim, const Key& key,
      std::shared_ptr<const FlatContainer> value) const;

  const HhcTopology& net_;
  Config config_;
  // unique_ptr because Shard (atomics + mutex) is neither movable nor
  // copyable; the vector itself is immutable after construction.
  std::vector<std::unique_ptr<Shard>> shards_;
  // Cache-global striped hit/miss cells: the lock-free read path's only
  // telemetry writes, folded on stats().
  util::StripedCounter hits_;
  util::StripedCounter misses_;
};

}  // namespace hhc::core
