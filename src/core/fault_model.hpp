// Rich fault model for the fault-injection subsystem.
//
// The original `FaultSet` models permanent node faults only — exactly what
// the paper's m+1 disjoint-path guarantee covers. Real campaigns need more:
// *link* faults (an edge dies while both endpoints stay up, which the
// node-disjoint argument does not cover) and *transient* faults that fail
// at one time and are repaired at another. `FaultModel` carries all three;
// `FaultSet` remains the thin node-only compatibility view and converts in
// both directions, so every existing caller keeps compiling.
//
// Times are simulator cycles. A fault is active during the half-open window
// [fail_time, repair_time); `kNeverRepaired` makes it permanent. Queries
// default to time 0, which for permanent faults reproduces FaultSet
// semantics exactly.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/fault_routing.hpp"
#include "core/topology.hpp"
#include "util/rng.hpp"

namespace hhc::core {

inline constexpr std::uint64_t kNeverRepaired =
    std::numeric_limits<std::uint64_t>::max();

/// One outage: active during [fail_time, repair_time).
struct FaultWindow {
  std::uint64_t fail_time = 0;
  std::uint64_t repair_time = kNeverRepaired;

  [[nodiscard]] bool active_at(std::uint64_t time) const noexcept {
    return fail_time <= time && time < repair_time;
  }
};

class FaultModel {
 public:
  FaultModel() = default;

  /// Imports a node-only fault set as permanent faults (compatibility).
  explicit FaultModel(const FaultSet& nodes);

  /// Fails node `v` during [fail_time, repair_time).
  void fail_node(Node v, std::uint64_t fail_time = 0,
                 std::uint64_t repair_time = kNeverRepaired);

  /// Fails the undirected link {u, v} during [fail_time, repair_time).
  /// The pair is normalized internally; u != v is required.
  void fail_link(Node u, Node v, std::uint64_t fail_time = 0,
                 std::uint64_t repair_time = kNeverRepaired);

  [[nodiscard]] bool node_faulty_at(Node v, std::uint64_t time = 0) const;
  [[nodiscard]] bool link_faulty_at(Node u, Node v,
                                    std::uint64_t time = 0) const;

  /// Edge {u, v} traversable at `time`: both endpoints healthy and the link
  /// itself healthy. Does not check that the edge exists in any topology.
  [[nodiscard]] bool edge_usable_at(Node u, Node v,
                                    std::uint64_t time = 0) const {
    return !node_faulty_at(u, time) && !node_faulty_at(v, time) &&
           !link_faulty_at(u, v, time);
  }

  /// Number of distinct nodes / links with an active fault at `time`.
  [[nodiscard]] std::size_t node_fault_count(std::uint64_t time = 0) const;
  [[nodiscard]] std::size_t link_fault_count(std::uint64_t time = 0) const;
  [[nodiscard]] std::size_t fault_count(std::uint64_t time = 0) const {
    return node_fault_count(time) + link_fault_count(time);
  }

  /// True when no fault was ever registered.
  [[nodiscard]] bool empty() const noexcept {
    return node_faults_.empty() && link_faults_.empty();
  }

  /// True when some registered fault has a finite repair time.
  [[nodiscard]] bool has_transient() const noexcept { return has_transient_; }

  /// Node-only snapshot at `time` — the FaultSet view existing code takes.
  [[nodiscard]] FaultSet node_view(std::uint64_t time = 0) const;

  /// What FaultModel::random injects. Counts are distinct elements; all
  /// sampled faults share the same [fail_time, repair_time) window.
  struct RandomSpec {
    std::size_t node_faults = 0;
    std::size_t internal_link_faults = 0;  // edges inside a cluster
    std::size_t external_link_faults = 0;  // gateway edges between clusters
    std::uint64_t fail_time = 0;
    std::uint64_t repair_time = kNeverRepaired;
  };

  /// Uniform distinct faults per the spec; node faults never hit s or t
  /// (link faults may touch them — surviving that is the adaptive router's
  /// job, not the container's). Deterministic in `rng`. Throws
  /// std::invalid_argument when a requested count exceeds its population.
  static FaultModel random(const HhcTopology& net, const RandomSpec& spec,
                           Node s, Node t, util::Xoshiro256& rng);

 private:
  struct LinkKey {
    Node a = 0;  // min endpoint
    Node b = 0;  // max endpoint
    bool operator==(const LinkKey&) const = default;
  };
  struct LinkKeyHash {
    std::size_t operator()(const LinkKey& k) const noexcept;
  };

  static LinkKey normalize(Node u, Node v) {
    return u < v ? LinkKey{u, v} : LinkKey{v, u};
  }

  static bool any_active(const std::vector<FaultWindow>& windows,
                         std::uint64_t time);

  std::unordered_map<Node, std::vector<FaultWindow>> node_faults_;
  std::unordered_map<LinkKey, std::vector<FaultWindow>, LinkKeyHash>
      link_faults_;
  bool has_transient_ = false;
};

}  // namespace hhc::core
