#include "core/scratch.hpp"

#include <stdexcept>

#include "cube/hypercube.hpp"

namespace hhc::core {

const graph::AdjacencyList& ConstructionScratch::cluster_graph(unsigned m) {
  if (m >= cluster_graphs_.size()) {
    throw std::invalid_argument("ConstructionScratch: m out of range");
  }
  auto& slot = cluster_graphs_[m];
  if (!slot.has_value()) slot.emplace(cube::Hypercube{m}.explicit_graph());
  return *slot;
}

ConstructionScratch& tls_construction_scratch() {
  thread_local ConstructionScratch scratch;
  return scratch;
}

}  // namespace hhc::core
