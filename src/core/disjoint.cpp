#include "core/disjoint.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "cube/hypercube.hpp"
#include "graph/vertex_disjoint.hpp"
#include "util/bitops.hpp"

namespace hhc::core {

namespace {

// ---------------------------------------------------------------------------
// Route selection (cluster level)
// ---------------------------------------------------------------------------

// Builds the rotation of the Gray-ordered differing dimensions starting at
// cyclic offset r.
ClusterRoute rotation_route(const std::vector<unsigned>& dims, std::size_t r) {
  ClusterRoute route;
  route.reserve(dims.size());
  for (std::size_t j = 0; j < dims.size(); ++j) {
    route.push_back(dims[(r + j) % dims.size()]);
  }
  return route;
}

// Builds the detour route e, d_0, ..., d_(k-1), e for e outside D.
ClusterRoute detour_route(const std::vector<unsigned>& dims, unsigned e) {
  ClusterRoute route;
  route.reserve(dims.size() + 2);
  route.push_back(e);
  route.insert(route.end(), dims.begin(), dims.end());
  route.push_back(e);
  return route;
}

// Estimated realized length of a cluster route: endpoint walks, one
// crossing per dimension, and the gateway-to-gateway walks in between.
std::size_t estimate_route_length(const ClusterRoute& route, std::uint64_t Ys,
                                  std::uint64_t Yt) {
  std::size_t length = static_cast<std::size_t>(
      bits::hamming(Ys, route.front()));
  length += route.size();
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    length += static_cast<std::size_t>(bits::hamming(route[i], route[i + 1]));
  }
  length += static_cast<std::size_t>(bits::hamming(route.back(), Yt));
  return length;
}

std::vector<ClusterRoute> select_routes_different_clusters(
    const HhcTopology& net, const std::vector<unsigned>& dims, unsigned a,
    unsigned b, RouteSelectionPolicy policy, std::uint64_t Ys,
    std::uint64_t Yt) {
  const std::size_t k = dims.size();
  const std::size_t wanted = net.degree();  // m + 1

  std::unordered_map<unsigned, std::size_t> index_of;
  for (std::size_t i = 0; i < k; ++i) index_of.emplace(dims[i], i);
  const bool a_in_d = index_of.count(a) > 0;
  const bool b_in_d = index_of.count(b) > 0;

  std::vector<ClusterRoute> selected;
  selected.reserve(wanted);
  std::vector<bool> rotation_used(k, false);
  std::unordered_set<unsigned> detour_used;

  const auto push_rotation = [&](std::size_t r) {
    rotation_used[r] = true;
    selected.push_back(rotation_route(dims, r));
  };
  const auto push_detour = [&](unsigned e) {
    detour_used.insert(e);
    selected.push_back(detour_route(dims, e));
  };

  // Mandatory route leaving s over its external edge (first dimension = a).
  if (a_in_d) {
    push_rotation(index_of.at(a));
  } else {
    push_detour(a);
  }

  // Mandatory route entering t over its external edge (last dimension = b).
  if (b_in_d) {
    // The rotation starting at the cyclic successor of b ends at b.
    const std::size_t r_b = (index_of.at(b) + 1) % k;
    if (!rotation_used[r_b]) push_rotation(r_b);
  } else if (detour_used.count(b) == 0) {
    push_detour(b);
  }

  if (policy == RouteSelectionPolicy::kCanonical) {
    // Fill with remaining rotations, then detours over agreeing dimensions.
    for (std::size_t r = 0; r < k && selected.size() < wanted; ++r) {
      if (!rotation_used[r]) push_rotation(r);
    }
    for (unsigned e = 0;
         e < net.cluster_dimensions() && selected.size() < wanted; ++e) {
      if (index_of.count(e) > 0 || detour_used.count(e) > 0) continue;
      push_detour(e);
    }
  } else {
    // Balanced fill: rank every remaining candidate by its estimated
    // realized length and take the shortest. Disjointness is unaffected —
    // any subset with distinct firsts/lasts works — only lengths improve.
    struct Candidate {
      std::size_t estimate;
      bool is_rotation;
      std::size_t index;  // rotation offset or detour dimension
    };
    std::vector<Candidate> candidates;
    for (std::size_t r = 0; r < k; ++r) {
      if (rotation_used[r]) continue;
      candidates.push_back(
          {estimate_route_length(rotation_route(dims, r), Ys, Yt), true, r});
    }
    for (unsigned e = 0; e < net.cluster_dimensions(); ++e) {
      if (index_of.count(e) > 0 || detour_used.count(e) > 0) continue;
      candidates.push_back(
          {estimate_route_length(detour_route(dims, e), Ys, Yt), false, e});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& lhs, const Candidate& rhs) {
                return std::tie(lhs.estimate, lhs.is_rotation, lhs.index) <
                       std::tie(rhs.estimate, rhs.is_rotation, rhs.index);
              });
    for (const Candidate& c : candidates) {
      if (selected.size() >= wanted) break;
      if (c.is_rotation) {
        push_rotation(c.index);
      } else {
        push_detour(static_cast<unsigned>(c.index));
      }
    }
  }

  if (selected.size() != wanted) {
    throw std::logic_error("route selection produced the wrong count");
  }
  return selected;
}

// ---------------------------------------------------------------------------
// Realization helpers
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> to_positions(const graph::VertexPath& vp) {
  return {vp.begin(), vp.end()};
}

// Same-cluster case: m disjoint paths inside the cluster (exact max flow on
// Q_m) plus one detour through the three neighboring clusters reachable via
// the endpoints' external dimensions.
DisjointPathSet same_cluster_paths(const HhcTopology& net, Node s, Node t) {
  const unsigned m = net.m();
  const cube::Hypercube qm{m};
  const std::uint64_t X = net.cluster_of(s);
  const auto Ys = static_cast<graph::Vertex>(net.position_of(s));
  const auto Yt = static_cast<graph::Vertex>(net.position_of(t));
  const unsigned a = net.gateway_dimension(s);
  const unsigned b = net.gateway_dimension(t);

  DisjointPathSet result;
  result.paths.reserve(net.degree());

  // m internally disjoint paths inside the cluster.
  const auto inner =
      graph::max_vertex_disjoint_paths(qm.explicit_graph(), Ys, Yt, m);
  if (inner.size() != m) {
    throw std::logic_error("cluster connectivity below m");
  }
  for (const auto& vp : inner) {
    Path path;
    path.reserve(vp.size());
    for (const graph::Vertex p : vp) path.push_back(net.encode(X, p));
    result.paths.push_back(std::move(path));
  }

  // External detour: cross a, walk, cross b, walk, cross a, walk, cross b.
  // Visits clusters X^2^a, X^2^a^2^b, X^2^b — never X itself — and each
  // crossing happens at the matching gateway position.
  const std::uint64_t Ea = bits::pow2(a);
  const std::uint64_t Eb = bits::pow2(b);
  Path detour;
  detour.push_back(s);
  std::uint64_t cluster = X ^ Ea;
  detour.push_back(net.encode(cluster, Ys));
  auto extend_walk = [&](std::uint64_t from, std::uint64_t to) {
    const auto walk = qm.shortest_path(from, to);
    for (std::size_t i = 1; i < walk.size(); ++i) {
      detour.push_back(net.encode(cluster, walk[i]));
    }
  };
  extend_walk(Ys, Yt);
  cluster ^= Eb;
  detour.push_back(net.encode(cluster, Yt));
  extend_walk(Yt, Ys);
  cluster ^= Ea;
  detour.push_back(net.encode(cluster, Ys));
  extend_walk(Ys, Yt);
  cluster ^= Eb;
  detour.push_back(net.encode(cluster, Yt));  // == t
  result.paths.push_back(std::move(detour));

  return result;
}

DisjointPathSet different_cluster_paths(const HhcTopology& net, Node s, Node t,
                                        ConstructionOptions options) {
  const unsigned m = net.m();
  const cube::Hypercube qm{m};
  const auto cluster_graph = qm.explicit_graph();
  const std::uint64_t Xs = net.cluster_of(s);
  const auto Ys = static_cast<graph::Vertex>(net.position_of(s));
  const auto Yt = static_cast<graph::Vertex>(net.position_of(t));
  const unsigned a = net.gateway_dimension(s);
  const unsigned b = net.gateway_dimension(t);

  const auto dims = differing_x_dimensions(net, s, t, options.ordering);
  const auto routes = select_routes_different_clusters(
      net, dims, a, b, options.selection, net.position_of(s),
      net.position_of(t));

  // Exit fan inside cluster Xs: one disjoint walk per route that leaves s
  // through an internal edge (first dimension != a).
  std::vector<graph::Vertex> exit_targets;
  std::vector<graph::Vertex> entry_sources;
  for (const auto& route : routes) {
    if (route.front() != a) {
      exit_targets.push_back(static_cast<graph::Vertex>(route.front()));
    }
    if (route.back() != b) {
      entry_sources.push_back(static_cast<graph::Vertex>(route.back()));
    }
  }
  const auto exit_fans =
      graph::vertex_disjoint_fan(cluster_graph, Ys, exit_targets);
  const auto entry_fans =
      graph::vertex_disjoint_reverse_fan(cluster_graph, entry_sources, Yt);

  DisjointPathSet result;
  result.paths.reserve(routes.size());
  std::size_t exit_index = 0;
  std::size_t entry_index = 0;
  for (const auto& route : routes) {
    std::vector<std::uint64_t> exit_walk;
    if (route.front() == a) {
      exit_walk = {net.position_of(s)};
    } else {
      exit_walk = to_positions(exit_fans[exit_index++]);
    }
    std::vector<std::uint64_t> entry_walk;
    if (route.back() == b) {
      entry_walk = {net.position_of(t)};
    } else {
      entry_walk = to_positions(entry_fans[entry_index++]);
    }
    result.paths.push_back(
        realize_cluster_route(net, Xs, exit_walk, route, entry_walk));
  }
  return result;
}

}  // namespace

std::size_t DisjointPathSet::max_length() const noexcept {
  std::size_t best = 0;
  for (const auto& p : paths) best = std::max(best, p.size() - 1);
  return best;
}

std::size_t DisjointPathSet::min_length() const noexcept {
  std::size_t best = static_cast<std::size_t>(-1);
  for (const auto& p : paths) best = std::min(best, p.size() - 1);
  return paths.empty() ? 0 : best;
}

double DisjointPathSet::average_length() const noexcept {
  if (paths.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& p : paths) total += p.size() - 1;
  return static_cast<double>(total) / static_cast<double>(paths.size());
}

std::vector<ClusterRoute> select_cluster_routes(const HhcTopology& net, Node s,
                                                Node t) {
  if (!net.contains(s) || !net.contains(t)) {
    throw std::invalid_argument("select_cluster_routes: node out of range");
  }
  if (net.cluster_of(s) == net.cluster_of(t)) return {};
  const auto dims = differing_x_dimensions_gray_ordered(net, s, t);
  return select_routes_different_clusters(
      net, dims, net.gateway_dimension(s), net.gateway_dimension(t),
      RouteSelectionPolicy::kCanonical, net.position_of(s),
      net.position_of(t));
}

DisjointPathSet node_disjoint_paths(const HhcTopology& net, Node s, Node t,
                                    ConstructionOptions options) {
  if (!net.contains(s) || !net.contains(t)) {
    throw std::invalid_argument("node_disjoint_paths: node out of range");
  }
  if (s == t) throw std::invalid_argument("node_disjoint_paths: s == t");
  return net.cluster_of(s) == net.cluster_of(t)
             ? same_cluster_paths(net, s, t)
             : different_cluster_paths(net, s, t, options);
}

bool verify_disjoint_path_set(const HhcTopology& net,
                              const DisjointPathSet& set, Node s, Node t,
                              std::string* why) {
  const auto fail = [&](std::string reason) {
    if (why != nullptr) *why = std::move(reason);
    return false;
  };
  if (set.paths.size() != net.degree()) {
    return fail("expected " + std::to_string(net.degree()) + " paths, got " +
                std::to_string(set.paths.size()));
  }
  std::unordered_map<Node, std::size_t> owner;
  for (std::size_t i = 0; i < set.paths.size(); ++i) {
    const Path& p = set.paths[i];
    if (!is_valid_path(net, p, s, t)) {
      return fail("path " + std::to_string(i) + " is not a simple s-t path");
    }
    for (const Node v : p) {
      if (v == s || v == t) continue;
      const auto [it, inserted] = owner.emplace(v, i);
      if (!inserted) {
        return fail("node " + std::to_string(v) + " shared by paths " +
                    std::to_string(it->second) + " and " + std::to_string(i));
      }
    }
  }
  if (why != nullptr) why->clear();
  return true;
}

}  // namespace hhc::core
