#include "core/disjoint.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "cube/hypercube.hpp"
#include "graph/vertex_disjoint.hpp"
#include "obs/metrics.hpp"
#include "obs/stages.hpp"
#include "obs/trace.hpp"
#include "util/bitops.hpp"

namespace hhc::core {

namespace {

// ---------------------------------------------------------------------------
// Route selection (cluster level)
//
// Selected routes live flattened in scratch.route_words with one
// (begin, end) pair per route in scratch.route_spans — no per-route vector.
// Rotations are written as dims[(r+j) % k]; detours as e, dims..., e.
// ---------------------------------------------------------------------------

std::span<const unsigned> route_at(const ConstructionScratch& scratch,
                                   std::size_t i) {
  const auto [begin, end] = scratch.route_spans[i];
  return {scratch.route_words.data() + begin,
          scratch.route_words.data() + end};
}

void push_rotation_route(ConstructionScratch& scratch, std::size_t r) {
  const std::vector<unsigned>& dims = scratch.dims;
  const std::size_t k = dims.size();
  const auto begin = static_cast<std::uint32_t>(scratch.route_words.size());
  for (std::size_t j = 0; j < k; ++j) {
    scratch.route_words.push_back(dims[(r + j) % k]);
  }
  scratch.route_spans.emplace_back(
      begin, static_cast<std::uint32_t>(scratch.route_words.size()));
}

void push_detour_route(ConstructionScratch& scratch, unsigned e) {
  const std::vector<unsigned>& dims = scratch.dims;
  const auto begin = static_cast<std::uint32_t>(scratch.route_words.size());
  scratch.route_words.push_back(e);
  scratch.route_words.insert(scratch.route_words.end(), dims.begin(),
                             dims.end());
  scratch.route_words.push_back(e);
  scratch.route_spans.emplace_back(
      begin, static_cast<std::uint32_t>(scratch.route_words.size()));
}

// Estimated realized length of the rotation at offset r: endpoint walks,
// one crossing per dimension, gateway-to-gateway walks in between. Computed
// by index arithmetic — no route is materialized.
std::size_t estimate_rotation(const std::vector<unsigned>& dims, std::size_t r,
                              std::uint64_t Ys, std::uint64_t Yt) {
  const std::size_t k = dims.size();
  const auto at = [&](std::size_t j) { return dims[(r + j) % k]; };
  std::size_t length = static_cast<std::size_t>(bits::hamming(Ys, at(0)));
  length += k;
  for (std::size_t j = 0; j + 1 < k; ++j) {
    length += static_cast<std::size_t>(bits::hamming(at(j), at(j + 1)));
  }
  length += static_cast<std::size_t>(bits::hamming(at(k - 1), Yt));
  return length;
}

// Estimated realized length of the detour e, dims..., e.
std::size_t estimate_detour(const std::vector<unsigned>& dims, unsigned e,
                            std::uint64_t Ys, std::uint64_t Yt) {
  const std::size_t k = dims.size();
  std::size_t length = static_cast<std::size_t>(bits::hamming(Ys, e));
  length += k + 2;
  length += static_cast<std::size_t>(bits::hamming(e, dims.front()));
  for (std::size_t j = 0; j + 1 < k; ++j) {
    length += static_cast<std::size_t>(bits::hamming(dims[j], dims[j + 1]));
  }
  length += static_cast<std::size_t>(bits::hamming(dims.back(), e));
  length += static_cast<std::size_t>(bits::hamming(e, Yt));
  return length;
}

// Selects the m+1 cluster routes into scratch.route_words / route_spans.
// Same selection (and tie-breaking) as the historical per-vector version.
void select_routes_different_clusters(const HhcTopology& net,
                                      ConstructionScratch& scratch, unsigned a,
                                      unsigned b, RouteSelectionPolicy policy,
                                      std::uint64_t Ys, std::uint64_t Yt) {
  const std::vector<unsigned>& dims = scratch.dims;
  const std::size_t k = dims.size();
  const std::size_t wanted = net.degree();  // m + 1

  // cluster_dimensions() = 2^m <= 32, so plain arrays and bitmasks replace
  // the historical unordered_map / unordered_set bookkeeping.
  std::array<std::int8_t, 32> index_of;
  index_of.fill(-1);
  for (std::size_t i = 0; i < k; ++i) {
    index_of[dims[i]] = static_cast<std::int8_t>(i);
  }
  std::uint32_t rotation_used = 0;
  std::uint32_t detour_used = 0;

  scratch.route_words.clear();
  scratch.route_spans.clear();

  const auto push_rotation = [&](std::size_t r) {
    rotation_used |= std::uint32_t{1} << r;
    push_rotation_route(scratch, r);
  };
  const auto push_detour = [&](unsigned e) {
    detour_used |= std::uint32_t{1} << e;
    push_detour_route(scratch, e);
  };

  // Mandatory route leaving s over its external edge (first dimension = a).
  if (index_of[a] >= 0) {
    push_rotation(static_cast<std::size_t>(index_of[a]));
  } else {
    push_detour(a);
  }

  // Mandatory route entering t over its external edge (last dimension = b).
  if (index_of[b] >= 0) {
    // The rotation starting at the cyclic successor of b ends at b.
    const std::size_t r_b = (static_cast<std::size_t>(index_of[b]) + 1) % k;
    if ((rotation_used & (std::uint32_t{1} << r_b)) == 0) push_rotation(r_b);
  } else if ((detour_used & (std::uint32_t{1} << b)) == 0) {
    push_detour(b);
  }

  if (policy == RouteSelectionPolicy::kCanonical) {
    // Fill with remaining rotations, then detours over agreeing dimensions.
    for (std::size_t r = 0; r < k && scratch.route_spans.size() < wanted;
         ++r) {
      if ((rotation_used & (std::uint32_t{1} << r)) == 0) push_rotation(r);
    }
    for (unsigned e = 0;
         e < net.cluster_dimensions() && scratch.route_spans.size() < wanted;
         ++e) {
      if (index_of[e] >= 0 || (detour_used & (std::uint32_t{1} << e)) != 0) {
        continue;
      }
      push_detour(e);
    }
  } else {
    // Balanced fill: rank every remaining candidate by its estimated
    // realized length and take the shortest. Disjointness is unaffected —
    // any subset with distinct firsts/lasts works — only lengths improve.
    auto& candidates = scratch.candidates;
    candidates.clear();
    for (std::size_t r = 0; r < k; ++r) {
      if ((rotation_used & (std::uint32_t{1} << r)) != 0) continue;
      candidates.push_back({estimate_rotation(dims, r, Ys, Yt), true, r});
    }
    for (unsigned e = 0; e < net.cluster_dimensions(); ++e) {
      if (index_of[e] >= 0 || (detour_used & (std::uint32_t{1} << e)) != 0) {
        continue;
      }
      candidates.push_back({estimate_detour(dims, e, Ys, Yt), false, e});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const ConstructionScratch::RouteCandidate& lhs,
                 const ConstructionScratch::RouteCandidate& rhs) {
                return std::tie(lhs.estimate, lhs.is_rotation, lhs.index) <
                       std::tie(rhs.estimate, rhs.is_rotation, rhs.index);
              });
    for (const auto& c : candidates) {
      if (scratch.route_spans.size() >= wanted) break;
      if (c.is_rotation) {
        push_rotation(c.index);
      } else {
        push_detour(static_cast<unsigned>(c.index));
      }
    }
  }

  if (scratch.route_spans.size() != wanted) {
    throw std::logic_error("route selection produced the wrong count");
  }
}

// ---------------------------------------------------------------------------
// Realization (into the scratch arena)
// ---------------------------------------------------------------------------

// Appends the intra-cluster walk from `from` to `to` (positions), skipping
// `from` itself, in ascending-dimension order — the same correction order
// as cube::Hypercube::shortest_path.
void build_walk(const HhcTopology& net, std::uint64_t cluster,
                std::uint64_t from, std::uint64_t to,
                util::PathArena::Builder& builder) {
  std::uint64_t diff = from ^ to;
  std::uint64_t cur = from;
  while (diff != 0) {
    const unsigned i = bits::lowest_set(diff);
    cur = bits::flip(cur, i);
    diff = bits::clear(diff, i);
    builder.push(net.encode(cluster, cur));
  }
}

// realize_cluster_route, arena-backed: emits the exit walk (positions),
// one crossing + private gateway walk per X-dimension, then the entry walk.
// The walks come in as graph::Vertex spans straight from the fan solver.
PathRef realize_route(const HhcTopology& net, std::uint64_t start_cluster,
                      std::span<const graph::Vertex> exit_walk,
                      std::span<const unsigned> xdims,
                      std::span<const graph::Vertex> entry_walk,
                      util::PathArena& arena) {
  auto builder = arena.builder();
  std::uint64_t cluster = start_cluster;
  for (const graph::Vertex pos : exit_walk) {
    builder.push(net.encode(cluster, pos));
  }
  for (std::size_t i = 0; i < xdims.size(); ++i) {
    const unsigned d = xdims[i];
    // Cross the external edge at gateway position d.
    cluster ^= bits::pow2(d);
    builder.push(net.encode(cluster, d));
    if (i + 1 < xdims.size()) {
      build_walk(net, cluster, d, xdims[i + 1], builder);
    }
  }
  for (std::size_t i = 1; i < entry_walk.size(); ++i) {
    builder.push(net.encode(cluster, entry_walk[i]));
  }
  return builder.finish();
}

// Same-cluster case: m disjoint paths inside the cluster (exact max flow on
// Q_m) plus one detour through the three neighboring clusters reachable via
// the endpoints' external dimensions.
void same_cluster_paths(const HhcTopology& net, Node s, Node t,
                        ConstructionScratch& scratch) {
  const unsigned m = net.m();
  const std::uint64_t X = net.cluster_of(s);
  const auto Ys = static_cast<graph::Vertex>(net.position_of(s));
  const auto Yt = static_cast<graph::Vertex>(net.position_of(t));
  const unsigned a = net.gateway_dimension(s);
  const unsigned b = net.gateway_dimension(t);

  // m internally disjoint paths inside the cluster.
  static obs::Histogram& fan_hist =
      obs::stage_histogram(obs::stages::kFanSolve);
  obs::TraceSpan fan_span{obs::stages::kFanSolve, &fan_hist};
  const auto inner =
      scratch.exit_fan.max_disjoint_paths(scratch.cluster_graph(m), Ys, Yt, m);
  if (inner.size() != m) {
    throw std::logic_error("cluster connectivity below m");
  }
  for (const auto& vp : inner) {
    auto builder = scratch.arena.builder();
    for (const graph::Vertex p : vp) builder.push(net.encode(X, p));
    scratch.refs.push_back(builder.finish());
  }

  // External detour: cross a, walk, cross b, walk, cross a, walk, cross b.
  // Visits clusters X^2^a, X^2^a^2^b, X^2^b — never X itself — and each
  // crossing happens at the matching gateway position.
  const std::uint64_t Ea = bits::pow2(a);
  const std::uint64_t Eb = bits::pow2(b);
  auto builder = scratch.arena.builder();
  builder.push(s);
  std::uint64_t cluster = X ^ Ea;
  builder.push(net.encode(cluster, Ys));
  build_walk(net, cluster, Ys, Yt, builder);
  cluster ^= Eb;
  builder.push(net.encode(cluster, Yt));
  build_walk(net, cluster, Yt, Ys, builder);
  cluster ^= Ea;
  builder.push(net.encode(cluster, Ys));
  build_walk(net, cluster, Ys, Yt, builder);
  cluster ^= Eb;
  builder.push(net.encode(cluster, Yt));  // == t
  scratch.refs.push_back(builder.finish());
}

void different_cluster_paths(const HhcTopology& net, Node s, Node t,
                             ConstructionOptions options,
                             ConstructionScratch& scratch) {
  const graph::AdjacencyList& cluster_graph = scratch.cluster_graph(net.m());
  const std::uint64_t Xs = net.cluster_of(s);
  const auto Ys = static_cast<graph::Vertex>(net.position_of(s));
  const auto Yt = static_cast<graph::Vertex>(net.position_of(t));
  const unsigned a = net.gateway_dimension(s);
  const unsigned b = net.gateway_dimension(t);

  differing_x_dimensions_into(net, s, t, options.ordering, scratch.dims);
  select_routes_different_clusters(net, scratch, a, b, options.selection,
                                   net.position_of(s), net.position_of(t));
  const std::size_t route_count = scratch.route_spans.size();

  // Exit fan inside cluster Xs: one disjoint walk per route that leaves s
  // through an internal edge (first dimension != a).
  scratch.exit_targets.clear();
  scratch.entry_sources.clear();
  for (std::size_t i = 0; i < route_count; ++i) {
    const auto route = route_at(scratch, i);
    if (route.front() != a) {
      scratch.exit_targets.push_back(static_cast<graph::Vertex>(route.front()));
    }
    if (route.back() != b) {
      scratch.entry_sources.push_back(static_cast<graph::Vertex>(route.back()));
    }
  }
  std::span<const graph::VertexPath> exit_fans;
  std::span<const graph::VertexPath> entry_fans;
  {
    static obs::Histogram& fan_hist =
        obs::stage_histogram(obs::stages::kFanSolve);
    obs::TraceSpan fan_span{obs::stages::kFanSolve, &fan_hist};
    exit_fans = scratch.exit_fan.fan(cluster_graph, Ys, scratch.exit_targets);
    entry_fans =
        scratch.entry_fan.reverse_fan(cluster_graph, scratch.entry_sources, Yt);
  }

  std::size_t exit_index = 0;
  std::size_t entry_index = 0;
  for (std::size_t i = 0; i < route_count; ++i) {
    const auto route = route_at(scratch, i);
    const graph::Vertex trivial_exit[1] = {Ys};
    const graph::Vertex trivial_entry[1] = {Yt};
    const std::span<const graph::Vertex> exit_walk =
        route.front() == a ? std::span<const graph::Vertex>{trivial_exit}
                           : std::span<const graph::Vertex>{
                                 exit_fans[exit_index++]};
    const std::span<const graph::Vertex> entry_walk =
        route.back() == b ? std::span<const graph::Vertex>{trivial_entry}
                          : std::span<const graph::Vertex>{
                                entry_fans[entry_index++]};
    scratch.refs.push_back(
        realize_route(net, Xs, exit_walk, route, entry_walk, scratch.arena));
  }
}

}  // namespace

std::size_t DisjointPathSet::max_length() const noexcept {
  std::size_t best = 0;
  for (const auto& p : paths) best = std::max(best, p.size() - 1);
  return best;
}

std::size_t DisjointPathSet::min_length() const noexcept {
  std::size_t best = static_cast<std::size_t>(-1);
  for (const auto& p : paths) best = std::min(best, p.size() - 1);
  return paths.empty() ? 0 : best;
}

double DisjointPathSet::average_length() const noexcept {
  if (paths.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& p : paths) total += p.size() - 1;
  return static_cast<double>(total) / static_cast<double>(paths.size());
}

std::size_t DisjointPathSetRef::max_length() const noexcept {
  std::size_t best = 0;
  for (const PathRef p : paths) best = std::max(best, p.size() - 1);
  return best;
}

std::size_t DisjointPathSetRef::min_length() const noexcept {
  std::size_t best = static_cast<std::size_t>(-1);
  for (const PathRef p : paths) best = std::min(best, p.size() - 1);
  return paths.empty() ? 0 : best;
}

double DisjointPathSetRef::average_length() const noexcept {
  if (paths.empty()) return 0.0;
  std::size_t total = 0;
  for (const PathRef p : paths) total += p.size() - 1;
  return static_cast<double>(total) / static_cast<double>(paths.size());
}

DisjointPathSet DisjointPathSetRef::materialize() const {
  DisjointPathSet set;
  set.paths.reserve(paths.size());
  for (const PathRef p : paths) set.paths.emplace_back(p.begin(), p.end());
  return set;
}

std::vector<ClusterRoute> select_cluster_routes(const HhcTopology& net, Node s,
                                                Node t) {
  if (!net.contains(s) || !net.contains(t)) {
    throw std::invalid_argument("select_cluster_routes: node out of range");
  }
  if (net.cluster_of(s) == net.cluster_of(t)) return {};
  ConstructionScratch& scratch = tls_construction_scratch();
  differing_x_dimensions_into(net, s, t, DimensionOrdering::kGrayCycle,
                              scratch.dims);
  select_routes_different_clusters(
      net, scratch, net.gateway_dimension(s), net.gateway_dimension(t),
      RouteSelectionPolicy::kCanonical, net.position_of(s),
      net.position_of(t));
  std::vector<ClusterRoute> routes;
  routes.reserve(scratch.route_spans.size());
  for (std::size_t i = 0; i < scratch.route_spans.size(); ++i) {
    const auto route = route_at(scratch, i);
    routes.emplace_back(route.begin(), route.end());
  }
  return routes;
}

DisjointPathSetRef node_disjoint_paths(const HhcTopology& net, Node s, Node t,
                                       ConstructionOptions options,
                                       ConstructionScratch& scratch) {
  if (!net.contains(s) || !net.contains(t)) {
    throw std::invalid_argument("node_disjoint_paths: node out of range");
  }
  if (s == t) throw std::invalid_argument("node_disjoint_paths: s == t");
  static obs::Counter& constructions =
      obs::MetricRegistry::global().counter("construct.calls");
  static obs::Counter& refills =
      obs::MetricRegistry::global().counter("construct.arena_refills");
  const std::size_t heap_before = scratch.arena.heap_allocations();
  scratch.arena.reset();
  scratch.refs.clear();
  if (net.cluster_of(s) == net.cluster_of(t)) {
    same_cluster_paths(net, s, t, scratch);
  } else {
    different_cluster_paths(net, s, t, options, scratch);
  }
  constructions.inc();
  if (const std::size_t grown = scratch.arena.heap_allocations() - heap_before;
      grown != 0) {
    refills.inc(grown);
  }
  return DisjointPathSetRef{scratch.refs};
}

DisjointPathSet node_disjoint_paths(const HhcTopology& net, Node s, Node t,
                                    ConstructionOptions options) {
  return node_disjoint_paths(net, s, t, options, tls_construction_scratch())
      .materialize();
}

bool verify_disjoint_path_set(const HhcTopology& net,
                              const DisjointPathSet& set, Node s, Node t,
                              std::string* why) {
  const auto fail = [&](std::string reason) {
    if (why != nullptr) *why = std::move(reason);
    return false;
  };
  if (set.paths.size() != net.degree()) {
    return fail("expected " + std::to_string(net.degree()) + " paths, got " +
                std::to_string(set.paths.size()));
  }
  std::unordered_map<Node, std::size_t> owner;
  for (std::size_t i = 0; i < set.paths.size(); ++i) {
    const Path& p = set.paths[i];
    if (!is_valid_path(net, p, s, t)) {
      return fail("path " + std::to_string(i) + " is not a simple s-t path");
    }
    for (const Node v : p) {
      if (v == s || v == t) continue;
      const auto [it, inserted] = owner.emplace(v, i);
      if (!inserted) {
        return fail("node " + std::to_string(v) + " shared by paths " +
                    std::to_string(it->second) + " and " + std::to_string(i));
      }
    }
  }
  if (why != nullptr) why->clear();
  return true;
}

}  // namespace hhc::core
