#include "core/container_cache.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "core/io.hpp"
#include "obs/stages.hpp"
#include "obs/trace.hpp"

namespace hhc::core {

std::vector<StatRow> CacheStats::rows() const {
  std::vector<StatRow> rows;
  rows.reserve(5 + 2 * shards.size());
  rows.push_back(stat_scalar("cache", "entries", std::uint64_t{entries}));
  rows.push_back(stat_scalar("cache", "hits", std::uint64_t{hits}));
  rows.push_back(stat_scalar("cache", "misses", std::uint64_t{misses}));
  rows.push_back(stat_scalar("cache", "evictions", std::uint64_t{evictions}));
  rows.push_back(stat_scalar("cache", "hit_rate", hit_rate()));
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const std::string section = "cache.shard" + std::to_string(i);
    rows.push_back(
        stat_scalar(section, "entries", std::uint64_t{shards[i].entries}));
    rows.push_back(
        stat_scalar(section, "evictions", std::uint64_t{shards[i].evictions}));
  }
  return rows;
}

namespace {

constexpr std::size_t kNoVictim = static_cast<std::size_t>(-1);

}  // namespace

ContainerCache::ContainerCache(const HhcTopology& net)
    : ContainerCache(net, Config{}) {}

ContainerCache::ContainerCache(const HhcTopology& net, Config config)
    : net_{net}, config_{config} {
  const std::size_t requested = config_.shards == 0 ? 1 : config_.shards;
  shards_.resize(std::bit_ceil(requested));
  // A load ceiling outside (10, 90] percent is a misconfiguration that
  // would either loop the grow logic or degrade probes to linear scans.
  config_.max_load_percent = std::clamp<std::size_t>(
      config_.max_load_percent == 0 ? 50 : config_.max_load_percent, 10, 90);
  // Each shard gets its own decorrelated eviction stream: deterministic
  // per (seed, shard index), independent across shards.
  util::SplitMix64 seeder{config_.eviction_seed};
  std::size_t capacity_hint = config_.initial_index_capacity;
  if (config_.max_entries_per_shard > 0) {
    // A capped shard's index plateaus at the cap; size it to hold the cap
    // within the load ceiling up front so such shards never grow at all.
    capacity_hint = std::max(
        capacity_hint,
        config_.max_entries_per_shard * 100 / config_.max_load_percent + 1);
  }
  for (auto& shard : shards_) {
    shard = std::make_unique<Shard>();
    shard->eviction_rng = util::Xoshiro256{seeder.next()};
    if (capacity_hint > 0) {
      // Pre-publish an empty pre-sized index so early inserts skip the
      // first few grow-republish cycles. (Construction is single-threaded;
      // the version bump still marks this as publication number one so
      // readers' zero-stamped TLS entries refresh onto it.)
      auto index = std::make_shared<ShardIndex>();
      index->slots.resize(std::bit_ceil(capacity_hint));
      shard->index = std::move(index);
      shard->version.store(1, std::memory_order_release);
    }
  }
}

std::uint64_t ContainerCache::next_shard_id() noexcept {
  static std::atomic<std::uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

const ContainerCache::ShardIndex* ContainerCache::snapshot(Shard& shard) {
  struct Entry {
    std::uint64_t version = 0;
    std::shared_ptr<const ShardIndex> index;
  };
  thread_local std::vector<Entry> tls_pins;
  if (shard.id >= tls_pins.size()) tls_pins.resize(shard.id + 1);
  Entry& entry = tls_pins[shard.id];
  // Fresh TLS entries carry stamp 0, matching the never-published state's
  // null index, so the no-publications-yet case needs no refresh either.
  const std::uint64_t version = shard.version.load(std::memory_order_acquire);
  if (entry.version != version) {
    std::lock_guard lock{shard.mutex};
    entry.index = shard.index;
    // Re-read under the lock: a publication that slipped in since the
    // check above must not leave a stale stamp pinned to the new index.
    entry.version = shard.version.load(std::memory_order_relaxed);
  }
  return entry.index.get();
}

std::size_t ContainerHandle::max_length() const noexcept {
  std::size_t best = 0;
  for (std::size_t i = 0; i < path_count(); ++i) {
    best = std::max(best, path_size(i) - 1);
  }
  return best;
}

Path ContainerHandle::materialize_path(std::size_t i) const {
  Path path;
  path.reserve(path_size(i));
  for (std::size_t j = 0; j < path_size(i); ++j) path.push_back(node(i, j));
  return path;
}

DisjointPathSet ContainerHandle::materialize() const {
  DisjointPathSet set;
  set.paths.reserve(path_count());
  for (std::size_t i = 0; i < path_count(); ++i) {
    set.paths.push_back(materialize_path(i));
  }
  return set;
}

void ContainerCache::ShardIndex::insert(
    const Key& key, std::shared_ptr<const FlatContainer> value) {
  const std::size_t mask = slots.size() - 1;
  std::size_t i = KeyHash{}(key) & mask;
  while (slots[i].value != nullptr) i = (i + 1) & mask;
  slots[i].key = key;
  slots[i].value = std::move(value);
  ++size;
}

std::shared_ptr<ContainerCache::ShardIndex const> ContainerCache::rebuild_index(
    const ShardIndex* old, std::size_t victim, const Key& key,
    std::shared_ptr<const FlatContainer> value) const {
  const std::size_t old_size = old == nullptr ? 0 : old->size;
  const std::size_t entries = old_size - (victim != kNoVictim ? 1 : 0) + 1;
  std::size_t capacity = old != nullptr && !old->slots.empty()
                             ? old->slots.size()
                             : std::bit_ceil(std::max<std::size_t>(
                                   config_.initial_index_capacity, 16));
  while (entries * 100 > capacity * config_.max_load_percent) capacity <<= 1;

  auto next = std::make_shared<ShardIndex>();
  next->slots.resize(capacity);
  if (old != nullptr) {
    std::size_t ordinal = 0;
    for (const ShardIndex::Slot& slot : old->slots) {
      if (slot.value == nullptr) continue;
      if (ordinal++ == victim) continue;  // evicted
      next->insert(slot.key, slot.value);
    }
  }
  next->insert(key, std::move(value));
  return next;
}

ContainerHandle ContainerCache::lookup(Node s, Node t) {
  return lookup(s, t, config_.options);
}

ContainerHandle ContainerCache::lookup(Node s, Node t,
                                       const ConstructionOptions& options,
                                       bool* cache_hit) {
  if (!net_.contains(s) || !net_.contains(t)) {
    throw std::invalid_argument("ContainerCache: node out of range");
  }
  if (s == t) throw std::invalid_argument("ContainerCache: s == t");

  const std::uint64_t xs = net_.cluster_of(s);
  const Key key{xs ^ net_.cluster_of(t), net_.position_of(s),
                net_.position_of(t), static_cast<std::uint8_t>(options.ordering),
                static_cast<std::uint8_t>(options.selection)};
  Shard& shard = *shards_[KeyHash{}(key) & (shards_.size() - 1)];
  // In the packed encoding, relabeling every node's cluster by xs is one
  // XOR with (xs << m) — the handle applies it lazily.
  const Node mask = xs << net_.m();

  // THE hot path: validate this thread's pinned snapshot and probe it. No
  // mutex, no shared write (the version check is a read; the hit counter
  // is a thread-private cell), no span (the enclosing answer/answer_view
  // span times hits; keeping the hit path span-free is what holds
  // enabled-tracing overhead under 5%).
  if (const ShardIndex* index = snapshot(shard)) {
    if (const auto* found = index->find(key)) {
      hits_.add();
      if (cache_hit != nullptr) *cache_hit = true;
      return ContainerHandle{*found, mask};
    }
  }

  // Miss: run the (expensive, deterministic) construction without holding
  // any lock, then build-and-swap a new index under the writer mutex. A
  // racing thread may have published the key meanwhile; its result is
  // byte-for-byte the same, so the first publication wins and the
  // duplicate work is discarded.
  misses_.add();
  if (cache_hit != nullptr) *cache_hit = false;
  std::shared_ptr<const FlatContainer> flat;
  {
    static obs::Histogram& construct_hist =
        obs::stage_histogram(obs::stages::kConstruct);
    obs::TraceSpan span{obs::stages::kConstruct, &construct_hist};
    const Node cs = net_.encode(0, key.ys);
    const Node ct = net_.encode(key.xdiff, key.yt);
    const DisjointPathSetRef canonical =
        node_disjoint_paths(net_, cs, ct, options, tls_construction_scratch());
    auto built = std::make_shared<FlatContainer>();
    built->offsets.reserve(canonical.paths.size() + 1);
    built->offsets.push_back(0);
    std::size_t total = 0;
    for (const PathRef p : canonical.paths) total += p.size();
    built->nodes.reserve(total);
    for (const PathRef p : canonical.paths) {
      built->nodes.insert(built->nodes.end(), p.begin(), p.end());
      built->offsets.push_back(static_cast<std::uint32_t>(built->nodes.size()));
    }
    flat = std::move(built);
  }

  static obs::Histogram& publish_hist =
      obs::stage_histogram(obs::stages::kCachePublish);
  obs::TraceSpan span{obs::stages::kCachePublish, &publish_hist};
  std::lock_guard lock{shard.mutex};
  const ShardIndex* current = shard.index.get();
  if (current != nullptr) {
    if (const auto* found = current->find(key)) {
      // Lost the publication race; serve the winner's identical entry.
      // (This thread's TLS pin refreshes on its next lookup here.)
      return ContainerHandle{*found, mask};
    }
  }
  std::size_t victim = kNoVictim;
  if (config_.max_entries_per_shard > 0 && current != nullptr &&
      current->size >= config_.max_entries_per_shard) {
    // Random replacement, for real: a uniformly random resident entry from
    // the shard's seeded stream (selected by occupied-slot ordinal, so the
    // choice is deterministic per seed). The O(capacity) clone below is
    // noise next to the construction this miss just performed.
    victim = shard.eviction_rng.below(current->size);
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
  }
  std::shared_ptr<const ShardIndex> next =
      rebuild_index(current, victim, key, std::move(flat));
  const auto* inserted = next->find(key);
  shard.index = std::move(next);
  shard.version.fetch_add(1, std::memory_order_release);
  return ContainerHandle{*inserted, mask};
}

std::size_t ContainerCache::evictions() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->evictions.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t ContainerCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock{shard->mutex};
    if (shard->index != nullptr) total += shard->index->size;
  }
  return total;
}

CacheStats ContainerCache::stats() const {
  CacheStats stats;
  stats.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    CacheShardStats row;
    {
      std::lock_guard lock{shard->mutex};
      if (shard->index != nullptr) row.entries = shard->index->size;
    }
    row.evictions = shard->evictions.load(std::memory_order_relaxed);
    stats.entries += row.entries;
    stats.evictions += row.evictions;
    stats.shards.push_back(row);
  }
  stats.hits = hits_.fold();
  stats.misses = misses_.fold();
  return stats;
}

void ContainerCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard lock{shard->mutex};
    shard->index = nullptr;
    shard->evictions.store(0, std::memory_order_relaxed);
    shard->version.fetch_add(1, std::memory_order_release);
  }
  hits_.reset();
  misses_.reset();
}

}  // namespace hhc::core
