#include "core/container_cache.hpp"

#include <algorithm>
#include <bit>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "obs/stages.hpp"
#include "obs/trace.hpp"

namespace hhc::core {

ContainerCache::ContainerCache(const HhcTopology& net)
    : ContainerCache(net, Config{}) {}

ContainerCache::ContainerCache(const HhcTopology& net, Config config)
    : net_{net}, config_{config} {
  const std::size_t requested = config_.shards == 0 ? 1 : config_.shards;
  shards_.resize(std::bit_ceil(requested));
  // Each shard gets its own decorrelated eviction stream: deterministic
  // per (seed, shard index), independent across shards.
  util::SplitMix64 seeder{config_.eviction_seed};
  for (auto& shard : shards_) {
    shard = std::make_unique<Shard>();
    shard->eviction_rng = util::Xoshiro256{seeder.next()};
  }
}

std::size_t ContainerHandle::max_length() const noexcept {
  std::size_t best = 0;
  for (std::size_t i = 0; i < path_count(); ++i) {
    best = std::max(best, path_size(i) - 1);
  }
  return best;
}

Path ContainerHandle::materialize_path(std::size_t i) const {
  Path path;
  path.reserve(path_size(i));
  for (std::size_t j = 0; j < path_size(i); ++j) path.push_back(node(i, j));
  return path;
}

DisjointPathSet ContainerHandle::materialize() const {
  DisjointPathSet set;
  set.paths.reserve(path_count());
  for (std::size_t i = 0; i < path_count(); ++i) {
    set.paths.push_back(materialize_path(i));
  }
  return set;
}

DisjointPathSet ContainerCache::paths(Node s, Node t) {
  return paths(s, t, config_.options);
}

DisjointPathSet ContainerCache::paths(Node s, Node t,
                                      const ConstructionOptions& options,
                                      bool* cache_hit) {
  return lookup(s, t, options, cache_hit).materialize();
}

ContainerHandle ContainerCache::lookup(Node s, Node t) {
  return lookup(s, t, config_.options);
}

ContainerHandle ContainerCache::lookup(Node s, Node t,
                                       const ConstructionOptions& options,
                                       bool* cache_hit) {
  if (!net_.contains(s) || !net_.contains(t)) {
    throw std::invalid_argument("ContainerCache: node out of range");
  }
  if (s == t) throw std::invalid_argument("ContainerCache: s == t");

  const std::uint64_t xs = net_.cluster_of(s);
  const Key key{xs ^ net_.cluster_of(t), net_.position_of(s),
                net_.position_of(t), static_cast<std::uint8_t>(options.ordering),
                static_cast<std::uint8_t>(options.selection)};
  Shard& shard = *shards_[KeyHash{}(key) & (shards_.size() - 1)];
  // In the packed encoding, relabeling every node's cluster by xs is one
  // XOR with (xs << m) — the handle applies it lazily.
  const Node mask = xs << net_.m();

  {
    static obs::Histogram& lookup_hist =
        obs::stage_histogram(obs::stages::kCacheLookup);
    obs::TraceSpan span{obs::stages::kCacheLookup, &lookup_hist};
    std::lock_guard lock{shard.mutex};
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      if (cache_hit != nullptr) *cache_hit = true;
      return ContainerHandle{it->second, mask};
    }
  }

  // Miss: run the (expensive, deterministic) construction without holding
  // any lock, then publish. A racing thread may have inserted meanwhile;
  // its result is byte-for-byte the same, so first insert wins and the
  // duplicate work is discarded.
  static obs::Histogram& construct_hist =
      obs::stage_histogram(obs::stages::kConstruct);
  obs::TraceSpan span{obs::stages::kConstruct, &construct_hist};
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  if (cache_hit != nullptr) *cache_hit = false;
  const Node cs = net_.encode(0, key.ys);
  const Node ct = net_.encode(key.xdiff, key.yt);
  const DisjointPathSetRef canonical =
      node_disjoint_paths(net_, cs, ct, options, tls_construction_scratch());
  auto flat = std::make_shared<FlatContainer>();
  flat->offsets.reserve(canonical.paths.size() + 1);
  flat->offsets.push_back(0);
  std::size_t total = 0;
  for (const PathRef p : canonical.paths) total += p.size();
  flat->nodes.reserve(total);
  for (const PathRef p : canonical.paths) {
    flat->nodes.insert(flat->nodes.end(), p.begin(), p.end());
    flat->offsets.push_back(static_cast<std::uint32_t>(flat->nodes.size()));
  }

  std::lock_guard lock{shard.mutex};
  if (config_.max_entries_per_shard > 0 &&
      shard.map.size() >= config_.max_entries_per_shard &&
      shard.map.find(key) == shard.map.end()) {
    // Random replacement, for real: a uniformly random resident entry from
    // the shard's seeded stream. The O(capacity) victim walk is noise next
    // to the construction this miss just performed.
    auto victim = shard.map.begin();
    std::advance(victim, static_cast<std::ptrdiff_t>(
                             shard.eviction_rng.below(shard.map.size())));
    shard.map.erase(victim);
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
  }
  const auto [it, inserted] = shard.map.try_emplace(key, std::move(flat));
  (void)inserted;
  return ContainerHandle{it->second, mask};
}

std::size_t ContainerCache::hits() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->hits.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t ContainerCache::misses() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->misses.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t ContainerCache::evictions() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->evictions.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t ContainerCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock{shard->mutex};
    total += shard->map.size();
  }
  return total;
}

CacheStats ContainerCache::stats() const {
  CacheStats stats;
  stats.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    CacheShardStats row;
    {
      std::lock_guard lock{shard->mutex};
      row.entries = shard->map.size();
    }
    row.hits = shard->hits.load(std::memory_order_relaxed);
    row.misses = shard->misses.load(std::memory_order_relaxed);
    row.evictions = shard->evictions.load(std::memory_order_relaxed);
    stats.entries += row.entries;
    stats.hits += row.hits;
    stats.misses += row.misses;
    stats.evictions += row.evictions;
    stats.shards.push_back(row);
  }
  return stats;
}

void ContainerCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard lock{shard->mutex};
    shard->map.clear();
    shard->hits.store(0, std::memory_order_relaxed);
    shard->misses.store(0, std::memory_order_relaxed);
    shard->evictions.store(0, std::memory_order_relaxed);
  }
}

}  // namespace hhc::core
