#include "core/container_cache.hpp"

#include <stdexcept>

namespace hhc::core {

DisjointPathSet ContainerCache::paths(Node s, Node t) {
  if (!net_.contains(s) || !net_.contains(t)) {
    throw std::invalid_argument("ContainerCache: node out of range");
  }
  if (s == t) throw std::invalid_argument("ContainerCache: s == t");

  const std::uint64_t xs = net_.cluster_of(s);
  const Key key{xs ^ net_.cluster_of(t), net_.position_of(s),
                net_.position_of(t)};

  auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++misses_;
    // Canonical instance: source cluster 0, destination cluster = xdiff.
    const Node cs = net_.encode(0, key.ys);
    const Node ct = net_.encode(key.xdiff, key.yt);
    it = cache_.emplace(key, node_disjoint_paths(net_, cs, ct)).first;
  } else {
    ++hits_;
  }

  // Translate the canonical container by the source's cluster label.
  DisjointPathSet result;
  result.paths.reserve(it->second.paths.size());
  for (const Path& canonical : it->second.paths) {
    Path path;
    path.reserve(canonical.size());
    for (const Node v : canonical) {
      path.push_back(net_.encode(net_.cluster_of(v) ^ xs, net_.position_of(v)));
    }
    result.paths.push_back(std::move(path));
  }
  return result;
}

}  // namespace hhc::core
