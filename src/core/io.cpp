#include "core/io.hpp"

#include <sstream>
#include <stdexcept>

namespace hhc::core {

namespace {

std::string binary(std::uint64_t v, unsigned width) {
  std::string s;
  s.reserve(width);
  for (unsigned i = width; i-- > 0;) {
    s += ((v >> i) & 1) != 0 ? '1' : '0';
  }
  return s;
}

// Graphviz node identifier (plain integer keeps dot happy).
std::string dot_id(Node v) { return "n" + std::to_string(v); }

}  // namespace

std::string format_node(const HhcTopology& net, Node v) {
  if (!net.contains(v)) throw std::invalid_argument("format_node: bad node");
  return "(" + binary(net.cluster_of(v), net.cluster_dimensions()) + "," +
         binary(net.position_of(v), net.m()) + ")";
}

std::string format_path(const HhcTopology& net, const Path& path) {
  std::ostringstream os;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) os << " -> ";
    os << format_node(net, path[i]);
  }
  return os.str();
}

std::string to_dot(const HhcTopology& net) {
  if (net.m() > 2) {
    throw std::invalid_argument("to_dot: full-network rendering needs m <= 2");
  }
  std::ostringstream os;
  os << "graph hhc {\n  layout=neato;\n  node [shape=circle, fontsize=9];\n";
  for (std::uint64_t x = 0; x < net.cluster_count(); ++x) {
    os << "  subgraph cluster_" << x << " {\n    label=\""
       << binary(x, net.cluster_dimensions()) << "\";\n";
    for (std::uint64_t y = 0; y < net.cluster_size(); ++y) {
      const Node v = net.encode(x, y);
      os << "    " << dot_id(v) << " [label=\"" << binary(y, net.m())
         << "\"];\n";
    }
    os << "  }\n";
  }
  for (Node v = 0; v < net.node_count(); ++v) {
    for (unsigned i = 0; i < net.m(); ++i) {
      const Node u = net.internal_neighbor(v, i);
      if (u > v) os << "  " << dot_id(v) << " -- " << dot_id(u) << ";\n";
    }
    const Node w = net.external_neighbor(v);
    if (w > v) {
      os << "  " << dot_id(v) << " -- " << dot_id(w) << " [style=dashed];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string container_to_dot(const HhcTopology& net, const DisjointPathSet& set,
                             Node s, Node t) {
  std::ostringstream os;
  os << "graph container {\n  node [shape=circle, fontsize=9];\n  "
     << dot_id(s) << " [label=\"" << format_node(net, s)
     << "\", shape=doublecircle];\n  " << dot_id(t) << " [label=\""
     << format_node(net, t) << "\", shape=doublecircle];\n";
  for (std::size_t i = 0; i < set.paths.size(); ++i) {
    const Path& p = set.paths[i];
    for (const Node v : p) {
      if (v == s || v == t) continue;
      os << "  " << dot_id(v) << " [label=\"" << format_node(net, v)
         << "\"];\n";
    }
    for (std::size_t j = 0; j + 1 < p.size(); ++j) {
      os << "  " << dot_id(p[j]) << " -- " << dot_id(p[j + 1])
         << " [colorscheme=set19, color=" << (i % 9) + 1 << "];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace hhc::core
