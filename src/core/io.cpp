#include "core/io.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace hhc::core {

namespace {

std::string binary(std::uint64_t v, unsigned width) {
  std::string s;
  s.reserve(width);
  for (unsigned i = width; i-- > 0;) {
    s += ((v >> i) & 1) != 0 ? '1' : '0';
  }
  return s;
}

// Graphviz node identifier (plain integer keeps dot happy).
std::string dot_id(Node v) { return "n" + std::to_string(v); }

}  // namespace

std::string format_node(const HhcTopology& net, Node v) {
  if (!net.contains(v)) throw std::invalid_argument("format_node: bad node");
  return "(" + binary(net.cluster_of(v), net.cluster_dimensions()) + "," +
         binary(net.position_of(v), net.m()) + ")";
}

std::string format_path(const HhcTopology& net, const Path& path) {
  std::ostringstream os;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) os << " -> ";
    os << format_node(net, path[i]);
  }
  return os.str();
}

std::string to_dot(const HhcTopology& net) {
  if (net.m() > 2) {
    throw std::invalid_argument("to_dot: full-network rendering needs m <= 2");
  }
  std::ostringstream os;
  os << "graph hhc {\n  layout=neato;\n  node [shape=circle, fontsize=9];\n";
  for (std::uint64_t x = 0; x < net.cluster_count(); ++x) {
    os << "  subgraph cluster_" << x << " {\n    label=\""
       << binary(x, net.cluster_dimensions()) << "\";\n";
    for (std::uint64_t y = 0; y < net.cluster_size(); ++y) {
      const Node v = net.encode(x, y);
      os << "    " << dot_id(v) << " [label=\"" << binary(y, net.m())
         << "\"];\n";
    }
    os << "  }\n";
  }
  for (Node v = 0; v < net.node_count(); ++v) {
    for (unsigned i = 0; i < net.m(); ++i) {
      const Node u = net.internal_neighbor(v, i);
      if (u > v) os << "  " << dot_id(v) << " -- " << dot_id(u) << ";\n";
    }
    const Node w = net.external_neighbor(v);
    if (w > v) {
      os << "  " << dot_id(v) << " -- " << dot_id(w) << " [style=dashed];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string container_to_dot(const HhcTopology& net, const DisjointPathSet& set,
                             Node s, Node t) {
  std::ostringstream os;
  os << "graph container {\n  node [shape=circle, fontsize=9];\n  "
     << dot_id(s) << " [label=\"" << format_node(net, s)
     << "\", shape=doublecircle];\n  " << dot_id(t) << " [label=\""
     << format_node(net, t) << "\", shape=doublecircle];\n";
  for (std::size_t i = 0; i < set.paths.size(); ++i) {
    const Path& p = set.paths[i];
    for (const Node v : p) {
      if (v == s || v == t) continue;
      os << "  " << dot_id(v) << " [label=\"" << format_node(net, v)
         << "\"];\n";
    }
    for (std::size_t j = 0; j + 1 < p.size(); ++j) {
      os << "  " << dot_id(p[j]) << " -- " << dot_id(p[j + 1])
         << " [colorscheme=set19, color=" << (i % 9) + 1 << "];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string csv_row(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) line += ',';
    const std::string& cell = cells[i];
    if (cell.find_first_of(",\"\n\r") == std::string::npos) {
      line += cell;
      continue;
    }
    line += '"';
    for (const char c : cell) {
      if (c == '"') line += '"';
      line += c;
    }
    line += '"';
  }
  return line;
}

void JsonWriter::comma_for_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // the key already emitted its comma and colon
  }
  if (!stack_.empty() && stack_.back() == Scope::kObject) {
    throw std::logic_error("JsonWriter: value inside object without a key");
  }
  if (stack_.empty() && !out_.empty()) {
    throw std::logic_error("JsonWriter: multiple top-level values");
  }
  if (!first_in_scope_.empty() && !first_in_scope_.back()) out_ += ',';
  if (!first_in_scope_.empty()) first_in_scope_.back() = false;
}

void JsonWriter::open(Scope scope, char bracket) {
  comma_for_value();
  out_ += bracket;
  stack_.push_back(scope);
  first_in_scope_.push_back(true);
}

void JsonWriter::close(Scope scope, char bracket) {
  if (stack_.empty() || stack_.back() != scope || key_pending_) {
    throw std::logic_error("JsonWriter: mismatched container close");
  }
  stack_.pop_back();
  first_in_scope_.pop_back();
  out_ += bracket;
}

JsonWriter& JsonWriter::begin_object() {
  open(Scope::kObject, '{');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close(Scope::kObject, '}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  open(Scope::kArray, '[');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close(Scope::kArray, ']');
  return *this;
}

namespace {

std::string json_quote(const std::string& s) {
  std::string quoted = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': quoted += "\\\""; break;
      case '\\': quoted += "\\\\"; break;
      case '\n': quoted += "\\n"; break;
      case '\r': quoted += "\\r"; break;
      case '\t': quoted += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          quoted += buf;
        } else {
          quoted += c;
        }
    }
  }
  quoted += '"';
  return quoted;
}

}  // namespace

JsonWriter& JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != Scope::kObject || key_pending_) {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
  out_ += json_quote(name);
  out_ += ':';
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma_for_value();
  out_ += json_quote(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string{v}); }

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  return value(static_cast<std::int64_t>(v));
}

JsonWriter& JsonWriter::value(double v) {
  comma_for_value();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_for_value();
  out_ += v ? "true" : "false";
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty() || key_pending_) {
    throw std::logic_error("JsonWriter: unterminated document");
  }
  return out_;
}

namespace {

std::string format_scalar(const StatRow& row) {
  if (row.integral) {
    return std::to_string(static_cast<std::int64_t>(row.value));
  }
  return std::to_string(row.value);
}

}  // namespace

StatRow stat_scalar(std::string section, std::string name,
                    std::uint64_t value) {
  StatRow row;
  row.section = std::move(section);
  row.name = std::move(name);
  row.value = static_cast<double>(value);
  return row;
}

StatRow stat_scalar(std::string section, std::string name, double value) {
  StatRow row;
  row.section = std::move(section);
  row.name = std::move(name);
  row.value = value;
  row.integral = false;
  return row;
}

StatRow stat_dist(std::string section, std::string name, std::uint64_t count,
                  double p50, double p90, double p99, double max) {
  StatRow row;
  row.section = std::move(section);
  row.name = std::move(name);
  row.kind = StatRow::Kind::kDist;
  row.count = count;
  row.p50 = p50;
  row.p90 = p90;
  row.p99 = p99;
  row.max = max;
  return row;
}

std::string stat_rows_csv(const std::vector<StatRow>& rows) {
  std::string out = csv_row({"section", "name", "value", "count", "p50", "p90",
                             "p99", "max"}) +
                    "\n";
  for (const StatRow& row : rows) {
    if (row.kind == StatRow::Kind::kScalar) {
      out += csv_row({row.section, row.name, format_scalar(row), "", "", "",
                      "", ""}) +
             "\n";
      continue;
    }
    const bool empty = row.count == 0;
    out += csv_row({row.section, row.name, "", std::to_string(row.count),
                    empty ? "" : std::to_string(row.p50),
                    empty ? "" : std::to_string(row.p90),
                    empty ? "" : std::to_string(row.p99),
                    std::to_string(row.max)}) +
           "\n";
  }
  return out;
}

void append_stat_rows(JsonWriter& json, const std::vector<StatRow>& rows) {
  json.begin_array();
  for (const StatRow& row : rows) {
    json.begin_object()
        .key("section").value(row.section)
        .key("name").value(row.name);
    if (row.kind == StatRow::Kind::kScalar) {
      if (row.integral) {
        json.key("value").value(static_cast<std::int64_t>(row.value));
      } else {
        json.key("value").value(row.value);
      }
    } else {
      json.key("count").value(row.count);
      if (row.count > 0) {
        json.key("p50").value(row.p50)
            .key("p90").value(row.p90)
            .key("p99").value(row.p99);
      }
      json.key("max").value(row.max);
    }
    json.end_object();
  }
  json.end_array();
}

std::string stat_rows_json(const std::vector<StatRow>& rows) {
  JsonWriter json;
  append_stat_rows(json, rows);
  return json.str();
}

}  // namespace hhc::core
