#include "core/topology.hpp"

#include <stdexcept>

namespace hhc::core {

HhcTopology::HhcTopology(unsigned m) : m_{m}, xbits_{1u << m} {
  if (m == 0 || m > 5) {
    throw std::invalid_argument(
        "HhcTopology: m must be in [1, 5] (addresses are 64-bit)");
  }
}

Node HhcTopology::encode(std::uint64_t cluster, std::uint64_t position) const {
  if (cluster >= cluster_count()) {
    throw std::invalid_argument("HhcTopology::encode: cluster out of range");
  }
  if (position >= cluster_size()) {
    throw std::invalid_argument("HhcTopology::encode: position out of range");
  }
  return (cluster << m_) | position;
}

Node HhcTopology::internal_neighbor(Node v, unsigned i) const {
  if (!contains(v)) throw std::invalid_argument("internal_neighbor: bad node");
  if (i >= m_) throw std::invalid_argument("internal_neighbor: bad dimension");
  return bits::flip(v, i);
}

Node HhcTopology::external_neighbor(Node v) const {
  if (!contains(v)) throw std::invalid_argument("external_neighbor: bad node");
  const unsigned xdim = gateway_dimension(v);
  return bits::flip(v, m_ + xdim);
}

std::vector<Node> HhcTopology::neighbors(Node v) const {
  if (!contains(v)) throw std::invalid_argument("neighbors: bad node");
  std::vector<Node> result;
  result.reserve(m_ + 1);
  for (unsigned i = 0; i < m_; ++i) result.push_back(bits::flip(v, i));
  result.push_back(external_neighbor(v));
  return result;
}

bool HhcTopology::is_internal_edge(Node u, Node v) const noexcept {
  if (!contains(u) || !contains(v)) return false;
  return cluster_of(u) == cluster_of(v) &&
         bits::hamming(position_of(u), position_of(v)) == 1;
}

bool HhcTopology::is_external_edge(Node u, Node v) const noexcept {
  if (!contains(u) || !contains(v)) return false;
  if (position_of(u) != position_of(v)) return false;
  const std::uint64_t xdiff = cluster_of(u) ^ cluster_of(v);
  return bits::is_pow2(xdiff) &&
         bits::lowest_set(xdiff) == gateway_dimension(u);
}

bool HhcTopology::is_edge(Node u, Node v) const noexcept {
  return is_internal_edge(u, v) || is_external_edge(u, v);
}

graph::AdjacencyList HhcTopology::explicit_graph() const {
  if (m_ > 4) {
    throw std::invalid_argument(
        "HhcTopology::explicit_graph: m > 4 is too large to materialize");
  }
  graph::AdjacencyList g{static_cast<std::size_t>(node_count())};
  for (Node v = 0; v < node_count(); ++v) {
    for (unsigned i = 0; i < m_; ++i) {
      const Node u = bits::flip(v, i);
      if (u > v) {
        g.add_edge(static_cast<graph::Vertex>(v),
                   static_cast<graph::Vertex>(u));
      }
    }
    const Node w = external_neighbor(v);
    if (w > v) {
      g.add_edge(static_cast<graph::Vertex>(v), static_cast<graph::Vertex>(w));
    }
  }
  return g;
}

}  // namespace hhc::core
