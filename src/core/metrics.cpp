#include "core/metrics.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace hhc::core {

namespace {

constexpr std::uint32_t kUnset = static_cast<std::uint32_t>(-1);

void require_explicit_scale(const HhcTopology& net, const char* what) {
  if (net.m() > 4) {
    throw std::invalid_argument(std::string{what} +
                                ": requires m <= 4 (dense BFS)");
  }
}

}  // namespace

std::vector<std::uint32_t> bfs_distances(const HhcTopology& net, Node source) {
  require_explicit_scale(net, "bfs_distances");
  if (!net.contains(source)) {
    throw std::invalid_argument("bfs_distances: source out of range");
  }
  std::vector<std::uint32_t> dist(net.node_count(), kUnset);
  std::queue<Node> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const Node v = frontier.front();
    frontier.pop();
    const std::uint32_t dv = dist[v];
    for (unsigned i = 0; i < net.m(); ++i) {
      const Node u = bits::flip(v, i);
      if (dist[u] == kUnset) {
        dist[u] = dv + 1;
        frontier.push(u);
      }
    }
    const Node w = net.external_neighbor(v);
    if (dist[w] == kUnset) {
      dist[w] = dv + 1;
      frontier.push(w);
    }
  }
  return dist;
}

Path bfs_shortest_path(const HhcTopology& net, Node s, Node t) {
  require_explicit_scale(net, "bfs_shortest_path");
  if (!net.contains(s) || !net.contains(t)) {
    throw std::invalid_argument("bfs_shortest_path: node out of range");
  }
  if (s == t) return {s};
  std::vector<Node> parent(net.node_count(), static_cast<Node>(-1));
  std::vector<bool> seen(net.node_count(), false);
  std::queue<Node> frontier;
  seen[s] = true;
  frontier.push(s);
  while (!frontier.empty()) {
    const Node v = frontier.front();
    frontier.pop();
    for (const Node u : net.neighbors(v)) {
      if (seen[u]) continue;
      seen[u] = true;
      parent[u] = v;
      if (u == t) {
        Path path{t};
        for (Node w = t; w != s;) {
          w = parent[w];
          path.push_back(w);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push(u);
    }
  }
  return {};  // unreachable cannot happen: HHC is connected
}

unsigned exact_diameter(const HhcTopology& net) {
  require_explicit_scale(net, "exact_diameter");
  unsigned best = 0;
  for (std::uint64_t y = 0; y < net.cluster_size(); ++y) {
    const auto dist = bfs_distances(net, net.encode(0, y));
    for (const std::uint32_t d : dist) best = std::max(best, d);
  }
  return best;
}

std::vector<PairSample> sample_pairs(const HhcTopology& net, std::size_t count,
                                     std::uint64_t seed) {
  util::Xoshiro256 rng{seed};
  std::vector<PairSample> pairs;
  pairs.reserve(count);
  while (pairs.size() < count) {
    const Node s = rng.below(net.node_count());
    const Node t = rng.below(net.node_count());
    if (s != t) pairs.push_back({s, t});
  }
  return pairs;
}

std::vector<ContainerMeasurement> measure_containers(
    const HhcTopology& net, const std::vector<PairSample>& pairs,
    util::ThreadPool* pool) {
  std::vector<ContainerMeasurement> out(pairs.size());
  const auto measure_one = [&](std::size_t i) {
    const auto set = node_disjoint_paths(net, pairs[i].s, pairs[i].t);
    out[i] = ContainerMeasurement{set.max_length(), set.min_length(),
                                  set.average_length()};
  };
  if (pool != nullptr) {
    pool->parallel_for(0, pairs.size(), measure_one);
  } else {
    for (std::size_t i = 0; i < pairs.size(); ++i) measure_one(i);
  }
  return out;
}

}  // namespace hhc::core
