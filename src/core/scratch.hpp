// Per-thread workspace for the allocation-free construction hot path.
//
// A single node_disjoint_paths query needs: the differing-dimension scan,
// the selected cluster routes, two endpoint fans (max flow on the cluster
// graph), and m+1 realized paths. ConstructionScratch owns warm storage for
// every one of those pieces; a query resets the arena, overwrites the
// buffers in place, and — once the scratch has seen one query of each shape
// — touches the heap exactly zero times (tests/test_allocation.cpp).
//
// Results are spans into the scratch (PathRef); they stay valid until the
// next query on the same scratch. Copy (materialize) before reusing it.
// Not thread-safe; batch drivers use tls_construction_scratch(), which
// hands each thread its own instance.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/topology.hpp"
#include "graph/adjacency_list.hpp"
#include "graph/vertex_disjoint.hpp"
#include "util/arena.hpp"

namespace hhc::core {

/// A borrowed path: a span of nodes into arena- or cache-owned storage.
using PathRef = std::span<const Node>;

class ConstructionScratch {
 public:
  ConstructionScratch() = default;
  ConstructionScratch(const ConstructionScratch&) = delete;
  ConstructionScratch& operator=(const ConstructionScratch&) = delete;

  /// Node storage for the realized paths of the current query.
  util::PathArena arena;

  /// Endpoint-fan solvers (exit fan / same-cluster paths, entry fan).
  graph::FanWorkspace exit_fan;
  graph::FanWorkspace entry_fan;

  /// The explicit Q_m cluster graph, built once per m and cached (the
  /// construction solves every fan on this same <= 32-node graph).
  [[nodiscard]] const graph::AdjacencyList& cluster_graph(unsigned m);

  // --- reused query-local buffers (internal to the construction) ---------
  std::vector<unsigned> dims;             // differing X-dimensions
  std::vector<unsigned> route_words;      // flattened selected routes
  std::vector<std::pair<std::uint32_t, std::uint32_t>> route_spans;
  std::vector<graph::Vertex> exit_targets;
  std::vector<graph::Vertex> entry_sources;
  std::vector<PathRef> refs;              // the m+1 result spans

  struct RouteCandidate {
    std::size_t estimate;
    bool is_rotation;
    std::size_t index;  // rotation offset or detour dimension
  };
  std::vector<RouteCandidate> candidates;  // kBalanced ranking buffer

 private:
  std::array<std::optional<graph::AdjacencyList>, 7> cluster_graphs_;
};

/// This thread's construction scratch (function-local thread_local). The
/// legacy copying API and the batch query engine both route through it, so
/// repeated queries on one thread share warm storage automatically.
[[nodiscard]] ConstructionScratch& tls_construction_scratch();

}  // namespace hhc::core
