// Fault-tolerant routing on top of the disjoint-path construction.
//
// Because the m+1 constructed paths share no node besides the endpoints, at
// most one path can be blocked per faulty node: any fault pattern with
// |F| <= m faulty nodes (excluding the endpoints) leaves at least one path
// intact. This turns the existential connectivity bound into a concrete
// one-shot routing guarantee — the property the paper's construction is for.
#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "core/disjoint.hpp"
#include "core/topology.hpp"
#include "util/rng.hpp"

namespace hhc::core {

/// A set of permanently faulty (unusable) nodes.
///
/// This is the thin node-only view that the paper's guarantee speaks about;
/// richer scenarios (link faults, fail/repair windows) live in
/// `core::FaultModel` (fault_model.hpp), which converts to and from this
/// type so existing callers keep working unchanged.
class FaultSet {
 public:
  FaultSet() = default;

  void mark_faulty(Node v) { faulty_.insert(v); }
  [[nodiscard]] bool is_faulty(Node v) const { return faulty_.count(v) > 0; }
  [[nodiscard]] std::size_t size() const noexcept { return faulty_.size(); }
  [[nodiscard]] const std::unordered_set<Node>& nodes() const noexcept {
    return faulty_;
  }

  /// Uniformly samples `count` distinct faulty nodes, never s or t (which
  /// may be equal). Throws std::invalid_argument when `count` exceeds the
  /// non-endpoint population.
  static FaultSet random(const HhcTopology& net, std::size_t count, Node s,
                         Node t, util::Xoshiro256& rng);

 private:
  std::unordered_set<Node> faulty_;
};

/// Result of a fault-tolerant routing attempt.
struct FaultRouteResult {
  Path path;                    // empty when no fault-free path was found
  std::size_t paths_blocked = 0;  // how many of the m+1 paths hit a fault
  [[nodiscard]] bool ok() const noexcept { return !path.empty(); }
};

/// Routes s -> t avoiding `faults` by constructing the disjoint container
/// and returning the shortest fault-free member. Guaranteed to succeed when
/// faults.size() <= m and both endpoints are healthy.
[[nodiscard]] FaultRouteResult route_avoiding(const HhcTopology& net, Node s,
                                              Node t, const FaultSet& faults);

}  // namespace hhc::core
