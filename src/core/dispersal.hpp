// Information dispersal over the disjoint-path container.
//
// The second classical application of node-disjoint paths (besides fault
// tolerance) is parallel transmission: split a message into m data blocks
// plus one XOR parity block and send each over its own path. Any m of the
// m+1 fragments reconstruct the message, so the transfer tolerates the loss
// of a full path while the completion time is governed by the longest path
// used — which the construction bounds near the diameter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/disjoint.hpp"
#include "core/topology.hpp"

namespace hhc::core {

/// One erasure-coded fragment travelling over one path of the container.
struct Fragment {
  std::size_t index = 0;            // 0..m-1 data blocks, m = parity
  std::vector<std::uint8_t> block;  // padded block payload
  Path path;                        // the disjoint path carrying it
};

struct DispersalPlan {
  std::vector<Fragment> fragments;  // exactly m+1
  std::size_t message_size = 0;     // original length in bytes
  std::size_t block_size = 0;       // padded block length

  /// Steps until the last needed fragment arrives if all m+1 are sent:
  /// with any single loss tolerated, completion needs the m fastest paths.
  [[nodiscard]] std::size_t parallel_completion_steps() const;
};

/// Splits `message` into m+1 fragments routed over the disjoint container
/// from s to t. The message may be empty; blocks are zero-padded.
[[nodiscard]] DispersalPlan disperse(const HhcTopology& net, Node s, Node t,
                                     std::span<const std::uint8_t> message);

/// Reconstructs the message from any >= m fragments of a plan with
/// parameters (m, block_size, message_size). Throws std::invalid_argument
/// when fewer than m distinct fragments are supplied or sizes disagree.
[[nodiscard]] std::vector<std::uint8_t> reassemble(
    unsigned m, std::size_t block_size, std::size_t message_size,
    std::span<const Fragment> received);

}  // namespace hhc::core
