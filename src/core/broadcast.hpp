// One-to-all broadcast schedules for the HHC (single-port model).
//
// The hierarchical structure makes broadcast a two-level binomial cascade:
// inform the root cluster with an m-round binomial tree, then for each
// X-dimension j in order let every informed cluster's gateway j cross its
// external edge, followed by an m-round binomial re-broadcast inside the
// newly informed clusters. The schedule is explicit — every round lists
// its (sender, receiver) pairs — so the tests can verify the single-port
// constraint, sender-informedness, and exactly-once coverage directly.
//
// Round count: m + 2^m * (m + 1), within a small factor of the
// log2(N) = 2^m + m lower bound; the experiment harness reports the ratio.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/topology.hpp"

namespace hhc::core {

struct BroadcastSchedule {
  /// rounds[r] lists the (sender, receiver) transmissions of round r.
  std::vector<std::vector<std::pair<Node, Node>>> rounds;

  [[nodiscard]] std::size_t round_count() const noexcept {
    return rounds.size();
  }
  /// Total number of transmissions (= N - 1 for a spanning broadcast).
  [[nodiscard]] std::size_t message_count() const noexcept;
};

/// Builds the full broadcast schedule from `root`. Materializes an
/// informed-set over all nodes, so it requires m <= 4.
[[nodiscard]] BroadcastSchedule broadcast_schedule(const HhcTopology& net,
                                                   Node root);

/// Validates a schedule against the single-port broadcast rules:
/// every transmission is an edge, every sender was informed in an earlier
/// round, no node sends twice in one round, no node is informed twice, and
/// all N nodes end up informed. Returns true on success.
[[nodiscard]] bool verify_broadcast_schedule(const HhcTopology& net,
                                             const BroadcastSchedule& schedule,
                                             Node root);

/// The information-theoretic lower bound ceil(log2 N) = 2^m + m rounds.
[[nodiscard]] unsigned broadcast_lower_bound(const HhcTopology& net);

/// All-to-one reduction: the broadcast schedule reversed (children push
/// partial results up the same spanning tree in reverse round order).
/// Every non-root node sends exactly once, after all of its subtree has
/// reported. Requires m <= 4.
[[nodiscard]] BroadcastSchedule reduction_schedule(const HhcTopology& net,
                                                   Node root);

/// Validates a reduction schedule by simulating token accumulation: every
/// transmission is an edge, no node sends twice or sends before its own
/// receivers are done, the root never sends, and the root's accumulated
/// count ends at N.
[[nodiscard]] bool verify_reduction_schedule(const HhcTopology& net,
                                             const BroadcastSchedule& schedule,
                                             Node root);

}  // namespace hhc::core
