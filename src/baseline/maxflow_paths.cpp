#include "baseline/maxflow_paths.hpp"

#include <stdexcept>

#include "graph/vertex_disjoint.hpp"

namespace hhc::baseline {

MaxflowBaseline::MaxflowBaseline(const core::HhcTopology& net)
    : net_{net}, graph_{net.explicit_graph()} {}

core::DisjointPathSet MaxflowBaseline::disjoint_paths(core::Node s,
                                                      core::Node t) const {
  if (!net_.contains(s) || !net_.contains(t)) {
    throw std::invalid_argument("MaxflowBaseline: node out of range");
  }
  const auto vertex_paths = graph::max_vertex_disjoint_paths(
      graph_, static_cast<graph::Vertex>(s), static_cast<graph::Vertex>(t));
  core::DisjointPathSet set;
  set.paths.reserve(vertex_paths.size());
  for (const auto& vp : vertex_paths) {
    core::Path path;
    path.reserve(vp.size());
    for (const graph::Vertex v : vp) path.push_back(v);
    set.paths.push_back(std::move(path));
  }
  return set;
}

std::vector<core::Path> MaxflowBaseline::one_to_many(
    core::Node s, std::span<const core::Node> targets) const {
  if (!net_.contains(s)) {
    throw std::invalid_argument("MaxflowBaseline: node out of range");
  }
  std::vector<graph::Vertex> vertex_targets;
  vertex_targets.reserve(targets.size());
  for (const core::Node t : targets) {
    if (!net_.contains(t)) {
      throw std::invalid_argument("MaxflowBaseline: target out of range");
    }
    vertex_targets.push_back(static_cast<graph::Vertex>(t));
  }
  const auto fans = graph::vertex_disjoint_fan(
      graph_, static_cast<graph::Vertex>(s), vertex_targets);
  std::vector<core::Path> result;
  result.reserve(fans.size());
  for (const auto& vp : fans) {
    core::Path path;
    path.reserve(vp.size());
    for (const graph::Vertex v : vp) path.push_back(v);
    result.push_back(std::move(path));
  }
  return result;
}

std::size_t MaxflowBaseline::connectivity(core::Node s, core::Node t) const {
  if (!net_.contains(s) || !net_.contains(t)) {
    throw std::invalid_argument("MaxflowBaseline: node out of range");
  }
  return graph::vertex_connectivity_between(
      graph_, static_cast<graph::Vertex>(s), static_cast<graph::Vertex>(t));
}

}  // namespace hhc::baseline
