// Single-path routing baselines for the fault-tolerance experiments.
//
// Two reference points bracket the disjoint-path router:
//   * fixed:    the deterministic constructive route; fails if any node on
//               it is faulty (what a router without path diversity does).
//   * adaptive: BFS on the fault-free subgraph — an oracle that succeeds
//               whenever s and t remain connected, at the cost of global
//               knowledge and O(N) work per query (m <= 4 only).
#pragma once

#include "core/fault_routing.hpp"
#include "core/topology.hpp"
#include "graph/adjacency_list.hpp"

namespace hhc::baseline {

/// The deterministic single route if fault-free, otherwise empty.
[[nodiscard]] core::Path fixed_single_route(const core::HhcTopology& net,
                                            core::Node s, core::Node t,
                                            const core::FaultSet& faults);

/// Shortest fault-free path by BFS over the explicit graph (oracle router);
/// empty when s and t are disconnected by the faults.
[[nodiscard]] core::Path adaptive_bfs_route(const graph::AdjacencyList& g,
                                            core::Node s, core::Node t,
                                            const core::FaultSet& faults);

}  // namespace hhc::baseline
