#include "baseline/single_path.hpp"

#include <algorithm>
#include <queue>

#include "core/routing.hpp"

namespace hhc::baseline {

core::Path fixed_single_route(const core::HhcTopology& net, core::Node s,
                              core::Node t, const core::FaultSet& faults) {
  core::Path path = core::route(net, s, t);
  const bool blocked = std::any_of(path.begin(), path.end(), [&](core::Node v) {
    return faults.is_faulty(v);
  });
  if (blocked) return {};
  return path;
}

core::Path adaptive_bfs_route(const graph::AdjacencyList& g, core::Node s,
                              core::Node t, const core::FaultSet& faults) {
  const auto S = static_cast<graph::Vertex>(s);
  const auto T = static_cast<graph::Vertex>(t);
  if (S >= g.vertex_count() || T >= g.vertex_count()) return {};
  if (faults.is_faulty(s) || faults.is_faulty(t)) return {};
  if (S == T) return {s};

  std::vector<graph::Vertex> parent(g.vertex_count(), graph::kNoVertex);
  std::vector<bool> seen(g.vertex_count(), false);
  std::queue<graph::Vertex> frontier;
  seen[S] = true;
  frontier.push(S);
  while (!frontier.empty()) {
    const graph::Vertex v = frontier.front();
    frontier.pop();
    for (const graph::Vertex u : g.neighbors(v)) {
      if (seen[u] || faults.is_faulty(u)) continue;
      seen[u] = true;
      parent[u] = v;
      if (u == T) {
        core::Path path{t};
        for (graph::Vertex w = T; w != S;) {
          w = parent[w];
          path.push_back(w);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push(u);
    }
  }
  return {};
}

}  // namespace hhc::baseline
