// Exact disjoint-path baseline: node-splitting max flow on the explicit HHC.
//
// This is the comparator the constructive algorithm is evaluated against.
// It is optimal (finds a maximum system of internally disjoint paths and,
// among our uses, certifies connectivity = m+1 by Menger's theorem), but it
// must materialize the network — O(N) memory and O(E * k) time per query —
// so it stops scaling at m = 4 (2^20 nodes), while the constructive
// algorithm's cost is independent of N. That contrast is Experiment T3.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/disjoint.hpp"
#include "core/topology.hpp"
#include "graph/adjacency_list.hpp"

namespace hhc::baseline {

class MaxflowBaseline {
 public:
  /// Materializes the explicit network; requires m <= 4.
  explicit MaxflowBaseline(const core::HhcTopology& net);

  [[nodiscard]] const core::HhcTopology& topology() const noexcept {
    return net_;
  }

  /// A maximum system of internally node-disjoint s-t paths (s != t).
  [[nodiscard]] core::DisjointPathSet disjoint_paths(core::Node s,
                                                     core::Node t) const;

  /// kappa(s, t): the number of internally node-disjoint s-t paths.
  [[nodiscard]] std::size_t connectivity(core::Node s, core::Node t) const;

  /// One-to-many (set-to-one reversed) disjoint paths: result[i] runs from
  /// s to targets[i]; the paths share no node except s. By the fan lemma
  /// this always succeeds for up to m+1 distinct targets != s; throws
  /// std::runtime_error when no complete fan exists.
  [[nodiscard]] std::vector<core::Path> one_to_many(
      core::Node s, std::span<const core::Node> targets) const;

  [[nodiscard]] const graph::AdjacencyList& explicit_graph() const noexcept {
    return graph_;
  }

 private:
  core::HhcTopology net_;
  graph::AdjacencyList graph_;
};

}  // namespace hhc::baseline
