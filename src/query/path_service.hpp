// hhc::query::PathService — the concurrent path-query engine.
//
// One thread-safe object that every consumer of disjoint-path routing talks
// to, layered over the existing construction:
//
//   * a sharded translation-canonical ContainerCache (per-shard mutexes,
//     lock-free counters) so concurrent queries scale with shards, not a
//     global lock, while answers stay bit-identical to
//     node_disjoint_paths(net, s, t, options);
//   * a batch API answer(span<PairQuery>) that fans out over the in-repo
//     util::ThreadPool with deterministic result ordering: results[i] always
//     answers queries[i], and the routed paths/levels are identical for any
//     thread count (only the timing/cache_hit telemetry fields may differ,
//     since which racing thread populates a cache entry first is scheduling-
//     dependent);
//   * fault-aware queries: a PairQuery carrying a FaultModel view routes
//     through fault::AdaptiveRouter — which shares this service's cache for
//     its container lookups — so one service answers both pristine and
//     degraded-mode traffic;
//   * observability: per-shard hit/miss/eviction counters, a lock-free query
//     latency histogram, and a stats() snapshot renderable as table, CSV, or
//     JSON (query/stats.hpp).
//
// Semantics note: unlike the bare construction (which throws), a service
// treats s == t as the trivial answer — one zero-length path, kGuaranteed —
// because for an operational query engine "route to yourself" is a valid
// request, not a programming error. Out-of-range nodes still throw.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/container_cache.hpp"
#include "core/topology.hpp"
#include "fault/adaptive_router.hpp"
#include "query/admission.hpp"
#include "query/stats.hpp"
#include "query/types.hpp"
#include "util/deadline.hpp"
#include "util/striped.hpp"
#include "util/thread_pool.hpp"

namespace hhc::query {

/// Borrowed answer of the zero-copy pristine fast path (answer_view).
/// `container` shares ownership of the cached flat container — valid for as
/// long as the view lives, even across cache eviction — and relabels nodes
/// lazily, so a cache hit allocates nothing and copies no node data.
struct RouteView {
  core::ContainerHandle container;
  DegradationLevel level = DegradationLevel::kDisconnected;
  RouteOutcome outcome = RouteOutcome::kOk;  // kShed/kTimedOut => !ok()
  bool cache_hit = false;  // served without running the construction
  double micros = 0.0;     // service-side wall time

  [[nodiscard]] bool ok() const noexcept { return container.valid(); }
};

struct PathServiceConfig {
  /// Default construction knobs; PairQuery.options overrides per query.
  core::ConstructionOptions options{};
  /// Cache sharding / capacity (see core::ContainerCache::Config).
  std::size_t cache_shards = 16;
  std::size_t max_entries_per_shard = 0;  // 0 = unbounded
  /// Workers for the batch API: 0 = hardware concurrency, 1 = run batches
  /// inline on the caller's thread (no pool spawned at all).
  std::size_t threads = 1;
  /// Overload robustness (in-flight bound, EWMA detector, breaker). The
  /// default is fully inert: no limit, no threshold, no breaker — answers
  /// are bit-identical to a service without the admission layer.
  AdmissionConfig admission{};
};

class PathService {
 public:
  /// The topology is held by reference; keep it alive beside the service.
  explicit PathService(const core::HhcTopology& net,
                       PathServiceConfig config = {});

  PathService(const PathService&) = delete;
  PathService& operator=(const PathService&) = delete;

  /// Answers one query. Thread-safe: any number of threads may call
  /// concurrently (this is what the batch API does internally). Throws
  /// std::invalid_argument for out-of-range nodes. Overload behavior:
  /// admission may shed the query (outcome kShed) or time it out while
  /// queued (kTimedOut); an expired deadline is noticed at stage
  /// boundaries, so completion never overruns the deadline by more than
  /// one stage-check interval. Shed-fast contract: a query that arrives
  /// already expired answers kTimedOut — exactly once, before the gate
  /// ever sees it — and a gate-shed query returns a copy of a preallocated
  /// result after bumping per-thread striped tallies only: no heap state,
  /// no cache traffic, no histogram or registry update, no clock read.
  [[nodiscard]] RouteResult answer(const PairQuery& query);

  /// Answers a batch, fanned out over the service's thread pool. results[i]
  /// corresponds to queries[i] regardless of thread count or scheduling.
  /// Unlike the single-query form, a malformed query (out-of-range node)
  /// does NOT throw here: it yields results[i] with outcome kInvalid and
  /// leaves every sibling result intact — one bad element must not poison
  /// a 10k-query batch.
  [[nodiscard]] std::vector<RouteResult> answer(
      std::span<const PairQuery> queries);

  /// The zero-copy pristine fast path: answers WITHOUT materializing the
  /// container (RouteView.container.materialize() reproduces answer()'s
  /// paths bit for bit). Pristine-only — throws std::invalid_argument when
  /// the query carries a fault view (degraded routes must be materialized;
  /// use answer()). Counted in the same telemetry as answer().
  [[nodiscard]] RouteView answer_view(const PairQuery& query);

  /// Consistent telemetry snapshot (cheap; safe under concurrent answer()).
  [[nodiscard]] ServiceStats stats() const;

  /// Zeroes the service-level counters and the latency histogram. Cache
  /// counters/entries are owned by the cache: use cache().clear().
  void reset_stats() noexcept;

  /// Tells the circuit breaker the fault landscape changed (faults added or
  /// repaired): every open breaker gets a fresh chance. Call this whenever
  /// the FaultModel you pass in queries is mutated or swapped, or when a
  /// scheduled repair window opens — the soak harness advances it once per
  /// fault epoch. Wait-free (one relaxed increment on the breaker's epoch);
  /// safe to call concurrently with answers from any thread.
  void advance_fault_epoch() noexcept { breaker_.advance_fault_epoch(); }
  [[nodiscard]] std::uint64_t fault_epoch() const noexcept {
    return breaker_.fault_epoch();
  }

  /// The admission gate (read-only access for telemetry/tests).
  [[nodiscard]] const AdmissionGate& gate() const noexcept { return gate_; }

  [[nodiscard]] core::ContainerCache& cache() noexcept { return cache_; }
  [[nodiscard]] const core::ContainerCache& cache() const noexcept {
    return cache_;
  }
  [[nodiscard]] const core::HhcTopology& net() const noexcept { return net_; }
  /// Batch workers actually in use (1 when batches run inline).
  [[nodiscard]] std::size_t threads() const noexcept {
    return pool_ ? pool_->size() : 1;
  }

 private:
  [[nodiscard]] RouteResult answer_impl(const PairQuery& query, bool degraded);
  /// Shared exit path for ADMITTED queries: stamps micros, feeds the
  /// histograms/EWMA, bumps the outcome and level counters. Shed/expired
  /// queries never reach it — they take the striped fast paths below.
  RouteResult finalize(const PairQuery& query, RouteResult result,
                       double micros);
  /// The striped fast-path tallies: one thread-private cell bump per
  /// counter, no shared cache-line writes (see util/striped.hpp).
  void count_shed_fast(const PairQuery& query) noexcept;
  void count_timed_out_fast(const PairQuery& query) noexcept;

  const core::HhcTopology& net_;
  PathServiceConfig config_;
  core::ContainerCache cache_;
  fault::AdaptiveRouter router_;
  std::optional<util::ThreadPool> pool_;
  AdmissionGate gate_;
  CircuitBreaker breaker_;

  // pristine/fault-aware/shed/timed-out sit on the shed-fast and
  // expiry-fast paths, so they are per-thread striped cells folded by
  // stats(); the level counters only move on completed (admitted) answers
  // and stay plain atomics.
  util::StripedCounter pristine_;
  util::StripedCounter fault_aware_;
  util::StripedCounter shed_;
  util::StripedCounter timed_out_;
  std::atomic<std::uint64_t> guaranteed_{0};
  std::atomic<std::uint64_t> best_effort_{0};
  std::atomic<std::uint64_t> disconnected_{0};
  std::atomic<std::uint64_t> invalid_{0};
  std::atomic<std::uint64_t> degraded_admissions_{0};
  std::atomic<std::uint64_t> breaker_short_circuits_{0};
  LatencyHistogram latency_;
};

}  // namespace hhc::query
