#include "query/path_service.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "obs/stages.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace hhc::query {

PathService::PathService(const core::HhcTopology& net, PathServiceConfig config)
    : net_{net},
      config_{config},
      cache_{net, core::ContainerCache::Config{
                      .options = config.options,
                      .shards = config.cache_shards,
                      .max_entries_per_shard = config.max_entries_per_shard}},
      router_{net, &cache_} {
  if (config_.threads != 1) pool_.emplace(config_.threads);
}

RouteResult PathService::answer(const PairQuery& query) {
  static obs::Histogram& answer_hist =
      obs::stage_histogram(obs::stages::kAnswer);
  obs::TraceSpan span{obs::stages::kAnswer, &answer_hist};
  util::Stopwatch watch;
  RouteResult result = answer_impl(query);
  result.micros = watch.micros();
  latency_.record(result.micros);

  (query.faults == nullptr ? pristine_ : fault_aware_)
      .fetch_add(1, std::memory_order_relaxed);
  switch (result.level) {
    case DegradationLevel::kGuaranteed:
      guaranteed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case DegradationLevel::kBestEffort:
      best_effort_.fetch_add(1, std::memory_order_relaxed);
      break;
    case DegradationLevel::kDisconnected:
      disconnected_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  return result;
}

RouteView PathService::answer_view(const PairQuery& query) {
  if (!net_.contains(query.s) || !net_.contains(query.t)) {
    throw std::invalid_argument("PathService: node out of range");
  }
  if (query.faults != nullptr) {
    throw std::invalid_argument(
        "PathService::answer_view: pristine-only (fault-aware queries must "
        "use answer())");
  }

  static obs::Histogram& view_hist =
      obs::stage_histogram(obs::stages::kAnswerView);
  obs::TraceSpan span{obs::stages::kAnswerView, &view_hist};
  util::Stopwatch watch;
  RouteView view;
  view.level = DegradationLevel::kGuaranteed;
  if (query.s == query.t) {
    // One shared trivial container {node 0}; the XOR mask relabels node 0
    // to s, so even the self-loop answer allocates nothing per query.
    static const auto kSelf = std::make_shared<const core::FlatContainer>(
        core::FlatContainer{{0}, {0, 1}});
    view.container = core::ContainerHandle{kSelf, query.s};
    view.cache_hit = true;
  } else {
    view.container =
        cache_.lookup(query.s, query.t, query.options, &view.cache_hit);
  }
  view.micros = watch.micros();
  latency_.record(view.micros);
  pristine_.fetch_add(1, std::memory_order_relaxed);
  guaranteed_.fetch_add(1, std::memory_order_relaxed);
  return view;
}

RouteResult PathService::answer_impl(const PairQuery& query) {
  if (!net_.contains(query.s) || !net_.contains(query.t)) {
    throw std::invalid_argument("PathService: node out of range");
  }

  if (query.faults != nullptr) return router_.route(query);

  RouteResult result;
  result.level = DegradationLevel::kGuaranteed;
  if (query.s == query.t) {
    result.paths = {core::Path{query.s}};
    return result;
  }
  auto container =
      cache_.paths(query.s, query.t, query.options, &result.cache_hit);
  result.paths = std::move(container.paths);
  return result;
}

std::vector<RouteResult> PathService::answer(
    std::span<const PairQuery> queries) {
  std::vector<RouteResult> results(queries.size());
  const auto body = [&](std::size_t i) { results[i] = answer(queries[i]); };
  if (pool_) {
    pool_->parallel_for(0, queries.size(), body);
  } else {
    for (std::size_t i = 0; i < queries.size(); ++i) body(i);
  }
  return results;
}

ServiceStats PathService::stats() const {
  ServiceStats stats;
  stats.pristine = pristine_.load(std::memory_order_relaxed);
  stats.fault_aware = fault_aware_.load(std::memory_order_relaxed);
  stats.queries = stats.pristine + stats.fault_aware;
  stats.guaranteed = guaranteed_.load(std::memory_order_relaxed);
  stats.best_effort = best_effort_.load(std::memory_order_relaxed);
  stats.disconnected = disconnected_.load(std::memory_order_relaxed);
  stats.cache = cache_.stats();
  stats.latency = latency_.snapshot();
  return stats;
}

void PathService::reset_stats() noexcept {
  pristine_.store(0, std::memory_order_relaxed);
  fault_aware_.store(0, std::memory_order_relaxed);
  guaranteed_.store(0, std::memory_order_relaxed);
  best_effort_.store(0, std::memory_order_relaxed);
  disconnected_.store(0, std::memory_order_relaxed);
  latency_.reset();
}

}  // namespace hhc::query
