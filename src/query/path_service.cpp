#include "query/path_service.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "obs/stages.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace hhc::query {

namespace {

// Slot guard for an admitted query: every exit path (including a thrown
// std::invalid_argument) must give the in-flight slot back.
struct SlotGuard {
  AdmissionGate& gate;
  ~SlotGuard() { gate.release(); }
};

obs::Histogram& outcome_histogram(RouteOutcome outcome) {
  static obs::Histogram& ok = obs::stage_histogram(obs::stages::kAnswerOk);
  static obs::Histogram& timed_out =
      obs::stage_histogram(obs::stages::kAnswerTimedOut);
  static obs::Histogram& shed = obs::stage_histogram(obs::stages::kAnswerShed);
  switch (outcome) {
    case RouteOutcome::kTimedOut: return timed_out;
    case RouteOutcome::kShed: return shed;
    default: return ok;  // kOk (kInvalid never reaches finalize)
  }
}

}  // namespace

PathService::PathService(const core::HhcTopology& net, PathServiceConfig config)
    : net_{net},
      config_{config},
      cache_{net, core::ContainerCache::Config{
                      .options = config.options,
                      .shards = config.cache_shards,
                      .max_entries_per_shard = config.max_entries_per_shard}},
      router_{net, &cache_},
      gate_{config.admission},
      breaker_{config.admission.breaker_threshold} {
  if (config_.threads != 1) pool_.emplace(config_.threads);
}

RouteResult PathService::finalize(const PairQuery& query, RouteResult result,
                                  double micros) {
  result.micros = micros;
  latency_.record(micros);
  outcome_histogram(result.outcome).record(micros);

  (query.faults == nullptr ? pristine_ : fault_aware_)
      .fetch_add(1, std::memory_order_relaxed);
  switch (result.outcome) {
    case RouteOutcome::kOk:
      // Completed answers (and only those) feed the overload detector: a
      // shed query finishes in nanoseconds and would talk the EWMA out of
      // the very overload it is evidence of.
      gate_.record_latency(micros);
      switch (result.level) {
        case DegradationLevel::kGuaranteed:
          guaranteed_.fetch_add(1, std::memory_order_relaxed);
          break;
        case DegradationLevel::kBestEffort:
          best_effort_.fetch_add(1, std::memory_order_relaxed);
          break;
        case DegradationLevel::kDisconnected:
          disconnected_.fetch_add(1, std::memory_order_relaxed);
          break;
      }
      break;
    case RouteOutcome::kTimedOut: {
      gate_.record_latency(micros);
      timed_out_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& timeouts =
          obs::MetricRegistry::global().counter(obs::stages::kTimedOutCount);
      timeouts.inc();
      break;
    }
    case RouteOutcome::kShed: {
      shed_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& sheds =
          obs::MetricRegistry::global().counter(obs::stages::kShedCount);
      sheds.inc();
      break;
    }
    case RouteOutcome::kInvalid:
      invalid_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  return result;
}

RouteResult PathService::answer(const PairQuery& query) {
  static obs::Histogram& answer_hist =
      obs::stage_histogram(obs::stages::kAnswer);
  obs::TraceSpan span{obs::stages::kAnswer, &answer_hist};
  util::Stopwatch watch;

  const AdmissionVerdict verdict = gate_.admit(query.deadline, query.cancel);
  if (verdict == AdmissionVerdict::kShed ||
      verdict == AdmissionVerdict::kTimedOut) {
    RouteResult result;
    result.outcome = verdict == AdmissionVerdict::kShed
                         ? RouteOutcome::kShed
                         : RouteOutcome::kTimedOut;
    return finalize(query, std::move(result), watch.micros());
  }

  SlotGuard guard{gate_};
  const bool degraded = verdict == AdmissionVerdict::kAdmittedDegraded;
  if (degraded) {
    degraded_admissions_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& degrades = obs::MetricRegistry::global().counter(
        obs::stages::kDegradedAdmissionCount);
    degrades.inc();
  }
  RouteResult result = answer_impl(query, degraded);
  return finalize(query, std::move(result), watch.micros());
}

RouteView PathService::answer_view(const PairQuery& query) {
  if (!net_.contains(query.s) || !net_.contains(query.t)) {
    throw std::invalid_argument("PathService: node out of range");
  }
  if (query.faults != nullptr) {
    throw std::invalid_argument(
        "PathService::answer_view: pristine-only (fault-aware queries must "
        "use answer())");
  }

  static obs::Histogram& view_hist =
      obs::stage_histogram(obs::stages::kAnswerView);
  obs::TraceSpan span{obs::stages::kAnswerView, &view_hist};
  util::Stopwatch watch;
  RouteView view;

  // The zero-copy path goes through the same gate as answer(): under a
  // bounded in-flight config a data plane hammering views is exactly the
  // traffic the bound exists for. (Degraded admission is meaningless here —
  // there is no fallback to skip — so it collapses to plain admission.)
  const AdmissionVerdict verdict = gate_.admit(query.deadline, query.cancel);
  if (verdict == AdmissionVerdict::kShed ||
      verdict == AdmissionVerdict::kTimedOut) {
    view.outcome = verdict == AdmissionVerdict::kShed ? RouteOutcome::kShed
                                                      : RouteOutcome::kTimedOut;
    view.micros = watch.micros();
    latency_.record(view.micros);
    outcome_histogram(view.outcome).record(view.micros);
    pristine_.fetch_add(1, std::memory_order_relaxed);
    (view.outcome == RouteOutcome::kShed ? shed_ : timed_out_)
        .fetch_add(1, std::memory_order_relaxed);
    return view;
  }
  SlotGuard guard{gate_};

  // Stage boundary: an expired query must not pay for a possible
  // construction behind the cache lookup.
  if (util::should_stop(query.deadline, query.cancel)) {
    view.outcome = RouteOutcome::kTimedOut;
    view.micros = watch.micros();
    latency_.record(view.micros);
    outcome_histogram(view.outcome).record(view.micros);
    pristine_.fetch_add(1, std::memory_order_relaxed);
    timed_out_.fetch_add(1, std::memory_order_relaxed);
    return view;
  }

  view.level = DegradationLevel::kGuaranteed;
  if (query.s == query.t) {
    // One shared trivial container {node 0}; the XOR mask relabels node 0
    // to s, so even the self-loop answer allocates nothing per query.
    static const auto kSelf = std::make_shared<const core::FlatContainer>(
        core::FlatContainer{{0}, {0, 1}});
    view.container = core::ContainerHandle{kSelf, query.s};
    view.cache_hit = true;
  } else {
    view.container =
        cache_.lookup(query.s, query.t, query.options, &view.cache_hit);
  }
  view.micros = watch.micros();
  latency_.record(view.micros);
  outcome_histogram(RouteOutcome::kOk).record(view.micros);
  gate_.record_latency(view.micros);
  pristine_.fetch_add(1, std::memory_order_relaxed);
  guaranteed_.fetch_add(1, std::memory_order_relaxed);
  return view;
}

RouteResult PathService::answer_impl(const PairQuery& query, bool degraded) {
  if (!net_.contains(query.s) || !net_.contains(query.t)) {
    throw std::invalid_argument("PathService: node out of range");
  }

  RouteResult result;
  // Stage boundary: queries that arrive already expired (e.g. after a
  // queued admission wait) answer kTimedOut without touching the cache.
  if (util::should_stop(query.deadline, query.cancel)) {
    result.outcome = RouteOutcome::kTimedOut;
    return result;
  }

  if (query.faults != nullptr) {
    const std::uint64_t epoch = fault_epoch_.load(std::memory_order_relaxed);
    if (breaker_.should_short_circuit(query.s, query.t, epoch)) {
      // The pair kept coming back disconnected this epoch; don't spend
      // another survivor sweep proving it again. kShed marks the verdict
      // as non-authoritative.
      result.outcome = RouteOutcome::kShed;
      breaker_short_circuits_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& short_circuits =
          obs::MetricRegistry::global().counter(
              obs::stages::kBreakerShortCircuitCount);
      short_circuits.inc();
      return result;
    }
    result = router_.route(query, {.skip_fallback = degraded});
    if (result.outcome == RouteOutcome::kOk && breaker_.enabled()) {
      breaker_.record(query.s, query.t, epoch,
                      result.level == DegradationLevel::kDisconnected);
    }
    return result;
  }

  result.level = DegradationLevel::kGuaranteed;
  if (query.s == query.t) {
    result.paths = {core::Path{query.s}};
    return result;
  }
  // lookup() hands back a borrowed view of the published entry; only the
  // answer that leaves the service materializes owning paths.
  result.paths =
      cache_.lookup(query.s, query.t, query.options, &result.cache_hit)
          .materialize()
          .paths;
  return result;
}

std::vector<RouteResult> PathService::answer(
    std::span<const PairQuery> queries) {
  std::vector<RouteResult> results(queries.size());
  const auto body = [&](std::size_t i) {
    try {
      results[i] = answer(queries[i]);
    } catch (const std::invalid_argument&) {
      // Batch isolation: one malformed element must not poison its
      // siblings (or kill the whole parallel_for). The slot reports
      // kInvalid; everything else in the batch completes normally.
      results[i] = RouteResult{};
      results[i].outcome = RouteOutcome::kInvalid;
      // Still one received query: keep it in the pristine/fault-aware totals
      // so the outcome partition keeps summing to `queries`.
      (queries[i].faults == nullptr ? pristine_ : fault_aware_)
          .fetch_add(1, std::memory_order_relaxed);
      invalid_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& invalids =
          obs::MetricRegistry::global().counter(obs::stages::kInvalidCount);
      invalids.inc();
    }
  };
  if (pool_) {
    pool_->parallel_for(0, queries.size(), body);
  } else {
    for (std::size_t i = 0; i < queries.size(); ++i) body(i);
  }
  return results;
}

ServiceStats PathService::stats() const {
  ServiceStats stats;
  stats.pristine = pristine_.load(std::memory_order_relaxed);
  stats.fault_aware = fault_aware_.load(std::memory_order_relaxed);
  stats.queries = stats.pristine + stats.fault_aware;
  stats.guaranteed = guaranteed_.load(std::memory_order_relaxed);
  stats.best_effort = best_effort_.load(std::memory_order_relaxed);
  stats.disconnected = disconnected_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.timed_out = timed_out_.load(std::memory_order_relaxed);
  stats.invalid = invalid_.load(std::memory_order_relaxed);
  stats.degraded_admissions =
      degraded_admissions_.load(std::memory_order_relaxed);
  stats.breaker_short_circuits =
      breaker_short_circuits_.load(std::memory_order_relaxed);
  stats.breaker_trips = breaker_.trips();
  stats.ewma_latency_us = gate_.ewma_latency_us();
  stats.in_flight = gate_.in_flight();
  stats.cache = cache_.stats();
  stats.latency = latency_.snapshot();
  // Same read instant for the registry, so one ServiceStats carries every
  // telemetry surface (satellites read stats.metrics instead of touching
  // the global registry themselves).
  stats.metrics = obs::MetricRegistry::global().snapshot();
  return stats;
}

void PathService::reset_stats() noexcept {
  pristine_.store(0, std::memory_order_relaxed);
  fault_aware_.store(0, std::memory_order_relaxed);
  guaranteed_.store(0, std::memory_order_relaxed);
  best_effort_.store(0, std::memory_order_relaxed);
  disconnected_.store(0, std::memory_order_relaxed);
  shed_.store(0, std::memory_order_relaxed);
  timed_out_.store(0, std::memory_order_relaxed);
  invalid_.store(0, std::memory_order_relaxed);
  degraded_admissions_.store(0, std::memory_order_relaxed);
  breaker_short_circuits_.store(0, std::memory_order_relaxed);
  latency_.reset();
}

}  // namespace hhc::query
