#include "query/path_service.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "obs/stages.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace hhc::query {

namespace {

// Slot guard for an admitted query: every exit path (including a thrown
// std::invalid_argument) must give the in-flight slot back.
struct SlotGuard {
  AdmissionGate& gate;
  ~SlotGuard() { gate.release(); }
};

// Preallocated fast-path answers. A shed/expired query returns a COPY of
// one of these: the paths vector is empty, so the copy allocates nothing,
// and no per-query RouteResult state is ever built on the rejection path.
const RouteResult& shed_result() {
  static const RouteResult result = [] {
    RouteResult r;
    r.outcome = RouteOutcome::kShed;
    return r;
  }();
  return result;
}

const RouteResult& timed_out_result() {
  static const RouteResult result = [] {
    RouteResult r;
    r.outcome = RouteOutcome::kTimedOut;
    return r;
  }();
  return result;
}

obs::Histogram& outcome_histogram(RouteOutcome outcome) {
  static obs::Histogram& ok = obs::stage_histogram(obs::stages::kAnswerOk);
  static obs::Histogram& timed_out =
      obs::stage_histogram(obs::stages::kAnswerTimedOut);
  switch (outcome) {
    case RouteOutcome::kTimedOut: return timed_out;
    default: return ok;  // kOk / kShed-by-breaker (kInvalid never finalizes)
  }
}

}  // namespace

PathService::PathService(const core::HhcTopology& net, PathServiceConfig config)
    : net_{net},
      config_{config},
      cache_{net, core::ContainerCache::Config{
                      .options = config.options,
                      .shards = config.cache_shards,
                      .max_entries_per_shard = config.max_entries_per_shard}},
      router_{net, &cache_},
      gate_{config.admission},
      breaker_{config.admission.breaker_threshold} {
  if (config_.threads != 1) pool_.emplace(config_.threads);
}

void PathService::count_shed_fast(const PairQuery& query) noexcept {
  (query.faults == nullptr ? pristine_ : fault_aware_).add(1);
  shed_.add(1);
}

void PathService::count_timed_out_fast(const PairQuery& query) noexcept {
  (query.faults == nullptr ? pristine_ : fault_aware_).add(1);
  timed_out_.add(1);
}

RouteResult PathService::finalize(const PairQuery& query, RouteResult result,
                                  double micros) {
  result.micros = micros;
  latency_.record(micros);
  outcome_histogram(result.outcome).record(micros);

  (query.faults == nullptr ? pristine_ : fault_aware_).add(1);
  switch (result.outcome) {
    case RouteOutcome::kOk:
      // Completed answers (and only those) feed the overload detector: a
      // shed query finishes in nanoseconds and would talk the EWMA out of
      // the very overload it is evidence of.
      gate_.record_latency(micros);
      switch (result.level) {
        case DegradationLevel::kGuaranteed:
          guaranteed_.fetch_add(1, std::memory_order_relaxed);
          break;
        case DegradationLevel::kBestEffort:
          best_effort_.fetch_add(1, std::memory_order_relaxed);
          break;
        case DegradationLevel::kDisconnected:
          disconnected_.fetch_add(1, std::memory_order_relaxed);
          break;
      }
      break;
    case RouteOutcome::kTimedOut:
      // In-flight timeouts did real admitted work; their cost is signal the
      // detector should see and the .timed_out histogram keeps it visible.
      gate_.record_latency(micros);
      timed_out_.add(1);
      break;
    case RouteOutcome::kShed:
      // Admitted work reported non-authoritative: breaker short-circuits
      // and degraded skip-fallback answers. Gate sheds never get here —
      // they take the striped fast path in answer()/answer_view().
      shed_.add(1);
      break;
    case RouteOutcome::kInvalid:
      invalid_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  return result;
}

RouteResult PathService::answer(const PairQuery& query) {
  // Shed-fast contract: the gate decides BEFORE any per-query work. A
  // query that arrives already expired answers kTimedOut exactly once,
  // here, without the gate (or a queue wait) ever seeing it; a gate-shed
  // query pays two thread-private striped bumps and a copy of the
  // preallocated result — no span, no clock read, no histogram, no cache
  // or registry traffic.
  if (util::should_stop(query.deadline, query.cancel)) {
    count_timed_out_fast(query);
    return timed_out_result();
  }
  const AdmissionVerdict verdict = gate_.admit(query.deadline, query.cancel);
  if (verdict == AdmissionVerdict::kShed) {
    count_shed_fast(query);
    return shed_result();
  }
  if (verdict == AdmissionVerdict::kTimedOut) {
    // Queued past the deadline: never dispatched, so no service time to
    // report — same striped fast path as admission-time expiry.
    count_timed_out_fast(query);
    return timed_out_result();
  }

  SlotGuard guard{gate_};
  // Telemetry starts only once the query is admitted: latency_ and the
  // stage histograms measure post-admission service time.
  static obs::Histogram& answer_hist =
      obs::stage_histogram(obs::stages::kAnswer);
  obs::TraceSpan span{obs::stages::kAnswer, &answer_hist};
  util::Stopwatch watch;

  const bool degraded = verdict == AdmissionVerdict::kAdmittedDegraded;
  if (degraded) {
    degraded_admissions_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& degrades = obs::MetricRegistry::global().counter(
        obs::stages::kDegradedAdmissionCount);
    degrades.inc();
  }
  RouteResult result = answer_impl(query, degraded);
  return finalize(query, std::move(result), watch.micros());
}

RouteView PathService::answer_view(const PairQuery& query) {
  if (!net_.contains(query.s) || !net_.contains(query.t)) {
    throw std::invalid_argument("PathService: node out of range");
  }
  if (query.faults != nullptr) {
    throw std::invalid_argument(
        "PathService::answer_view: pristine-only (fault-aware queries must "
        "use answer())");
  }

  // Same shed-fast ordering as answer(): refuse before any per-query work.
  if (util::should_stop(query.deadline, query.cancel)) {
    count_timed_out_fast(query);
    RouteView view;
    view.outcome = RouteOutcome::kTimedOut;
    return view;
  }
  // The zero-copy path goes through the same gate as answer(): under a
  // bounded in-flight config a data plane hammering views is exactly the
  // traffic the bound exists for. (Degraded admission is meaningless here —
  // there is no fallback to skip — so it collapses to plain admission.)
  const AdmissionVerdict verdict = gate_.admit(query.deadline, query.cancel);
  if (verdict == AdmissionVerdict::kShed) {
    count_shed_fast(query);
    RouteView view;
    view.outcome = RouteOutcome::kShed;
    return view;
  }
  if (verdict == AdmissionVerdict::kTimedOut) {
    count_timed_out_fast(query);
    RouteView view;
    view.outcome = RouteOutcome::kTimedOut;
    return view;
  }
  SlotGuard guard{gate_};

  static obs::Histogram& view_hist =
      obs::stage_histogram(obs::stages::kAnswerView);
  obs::TraceSpan span{obs::stages::kAnswerView, &view_hist};
  util::Stopwatch watch;
  RouteView view;

  // Stage boundary: a kQueue admission wait may have consumed the deadline;
  // an expired query must not pay for a possible construction behind the
  // cache lookup. This one was admitted, so it reports its service time.
  if (util::should_stop(query.deadline, query.cancel)) {
    view.outcome = RouteOutcome::kTimedOut;
    view.micros = watch.micros();
    latency_.record(view.micros);
    outcome_histogram(view.outcome).record(view.micros);
    pristine_.add(1);
    timed_out_.add(1);
    return view;
  }

  view.level = DegradationLevel::kGuaranteed;
  if (query.s == query.t) {
    // One shared trivial container {node 0}; the XOR mask relabels node 0
    // to s, so even the self-loop answer allocates nothing per query.
    static const auto kSelf = std::make_shared<const core::FlatContainer>(
        core::FlatContainer{{0}, {0, 1}});
    view.container = core::ContainerHandle{kSelf, query.s};
    view.cache_hit = true;
  } else {
    view.container =
        cache_.lookup(query.s, query.t, query.options, &view.cache_hit);
  }
  view.micros = watch.micros();
  latency_.record(view.micros);
  outcome_histogram(RouteOutcome::kOk).record(view.micros);
  gate_.record_latency(view.micros);
  pristine_.add(1);
  guaranteed_.fetch_add(1, std::memory_order_relaxed);
  return view;
}

RouteResult PathService::answer_impl(const PairQuery& query, bool degraded) {
  if (!net_.contains(query.s) || !net_.contains(query.t)) {
    throw std::invalid_argument("PathService: node out of range");
  }

  RouteResult result;
  // Stage boundary: queries whose deadline expired during a queued
  // admission wait answer kTimedOut without touching the cache. (Arriving
  // already expired was handled before the gate in answer().)
  if (util::should_stop(query.deadline, query.cancel)) {
    result.outcome = RouteOutcome::kTimedOut;
    return result;
  }

  if (query.faults != nullptr) {
    if (breaker_.should_short_circuit(query.s, query.t)) {
      // The pair kept coming back disconnected this epoch; don't spend
      // another survivor sweep proving it again. kShed marks the verdict
      // as non-authoritative.
      result.outcome = RouteOutcome::kShed;
      breaker_short_circuits_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& short_circuits =
          obs::MetricRegistry::global().counter(
              obs::stages::kBreakerShortCircuitCount);
      short_circuits.inc();
      return result;
    }
    result = router_.route(query, {.skip_fallback = degraded});
    if (result.outcome == RouteOutcome::kOk && breaker_.enabled()) {
      breaker_.record(query.s, query.t,
                      result.level == DegradationLevel::kDisconnected);
    }
    return result;
  }

  result.level = DegradationLevel::kGuaranteed;
  if (query.s == query.t) {
    result.paths = {core::Path{query.s}};
    return result;
  }
  // lookup() hands back a borrowed view of the published entry; only the
  // answer that leaves the service materializes owning paths.
  result.paths =
      cache_.lookup(query.s, query.t, query.options, &result.cache_hit)
          .materialize()
          .paths;
  return result;
}

std::vector<RouteResult> PathService::answer(
    std::span<const PairQuery> queries) {
  std::vector<RouteResult> results(queries.size());
  const auto body = [&](std::size_t i) {
    try {
      results[i] = answer(queries[i]);
    } catch (const std::invalid_argument&) {
      // Batch isolation: one malformed element must not poison its
      // siblings (or kill the whole parallel_for). The slot reports
      // kInvalid; everything else in the batch completes normally.
      results[i] = RouteResult{};
      results[i].outcome = RouteOutcome::kInvalid;
      // Still one received query: keep it in the pristine/fault-aware totals
      // so the outcome partition keeps summing to `queries`.
      (queries[i].faults == nullptr ? pristine_ : fault_aware_).add(1);
      invalid_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& invalids =
          obs::MetricRegistry::global().counter(obs::stages::kInvalidCount);
      invalids.inc();
    }
  };
  if (pool_) {
    pool_->parallel_for(0, queries.size(), body);
  } else {
    for (std::size_t i = 0; i < queries.size(); ++i) body(i);
  }
  return results;
}

ServiceStats PathService::stats() const {
  ServiceStats stats;
  stats.pristine = pristine_.fold();
  stats.fault_aware = fault_aware_.fold();
  stats.queries = stats.pristine + stats.fault_aware;
  stats.guaranteed = guaranteed_.load(std::memory_order_relaxed);
  stats.best_effort = best_effort_.load(std::memory_order_relaxed);
  stats.disconnected = disconnected_.load(std::memory_order_relaxed);
  stats.shed = shed_.fold();
  stats.timed_out = timed_out_.fold();
  stats.invalid = invalid_.load(std::memory_order_relaxed);
  stats.degraded_admissions =
      degraded_admissions_.load(std::memory_order_relaxed);
  stats.breaker_short_circuits =
      breaker_short_circuits_.load(std::memory_order_relaxed);
  stats.breaker_trips = breaker_.trips();
  stats.fault_epoch = breaker_.fault_epoch();
  stats.ewma_latency_us = gate_.ewma_latency_us();
  stats.in_flight = gate_.in_flight();
  stats.cache = cache_.stats();
  stats.latency = latency_.snapshot();
  // Same read instant for the registry, so one ServiceStats carries every
  // telemetry surface (satellites read stats.metrics instead of touching
  // the global registry themselves).
  stats.metrics = obs::MetricRegistry::global().snapshot();
  return stats;
}

void PathService::reset_stats() noexcept {
  pristine_.reset();
  fault_aware_.reset();
  shed_.reset();
  timed_out_.reset();
  guaranteed_.store(0, std::memory_order_relaxed);
  best_effort_.store(0, std::memory_order_relaxed);
  disconnected_.store(0, std::memory_order_relaxed);
  invalid_.store(0, std::memory_order_relaxed);
  degraded_admissions_.store(0, std::memory_order_relaxed);
  breaker_short_circuits_.store(0, std::memory_order_relaxed);
  latency_.reset();
}

}  // namespace hhc::query
