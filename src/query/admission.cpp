#include "query/admission.hpp"

#include "obs/metrics.hpp"
#include "obs/stages.hpp"

namespace hhc::query {

AdmissionVerdict AdmissionGate::admit(const util::Deadline& deadline,
                                      const util::CancellationToken* cancel) {
  // A latency overload degrades every policy: queueing behind an already
  // slow service only makes the smoothed latency worse, so the right
  // response is to shed the expensive work, not to wait.
  const bool overload = overloaded();

  if (config_.max_in_flight == 0) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    return overload ? AdmissionVerdict::kAdmittedDegraded
                    : AdmissionVerdict::kAdmitted;
  }

  // Optimistically claim a slot; back out if that overshot the bound.
  if (in_flight_.fetch_add(1, std::memory_order_acquire) <
      config_.max_in_flight) {
    return overload ? AdmissionVerdict::kAdmittedDegraded
                    : AdmissionVerdict::kAdmitted;
  }
  in_flight_.fetch_sub(1, std::memory_order_release);

  switch (config_.policy) {
    case AdmissionPolicy::kReject:
      return AdmissionVerdict::kShed;
    case AdmissionPolicy::kDegrade:
      in_flight_.fetch_add(1, std::memory_order_relaxed);
      return AdmissionVerdict::kAdmittedDegraded;
    case AdmissionPolicy::kQueue:
      break;
  }

  // Queue-with-deadline: wait for a slot, polling the deadline/token. The
  // condvar wakes on release(); the bounded wait keeps a cancelled or
  // expired waiter from sleeping forever even if no slot ever frees.
  std::unique_lock lock{mutex_};
  for (;;) {
    if (util::should_stop(deadline, cancel)) {
      return AdmissionVerdict::kTimedOut;
    }
    std::size_t occupied = in_flight_.load(std::memory_order_relaxed);
    if (occupied < config_.max_in_flight &&
        in_flight_.compare_exchange_strong(occupied, occupied + 1,
                                           std::memory_order_acquire)) {
      return overloaded() ? AdmissionVerdict::kAdmittedDegraded
                          : AdmissionVerdict::kAdmitted;
    }
    slot_free_.wait_for(lock, std::chrono::microseconds{200});
  }
}

void AdmissionGate::release() noexcept {
  in_flight_.fetch_sub(1, std::memory_order_release);
  if (config_.max_in_flight != 0 &&
      config_.policy == AdmissionPolicy::kQueue) {
    slot_free_.notify_one();
  }
}

void AdmissionGate::record_latency(double micros) noexcept {
  if (!(micros >= 0.0)) return;  // NaN/negative samples carry no signal
  const double alpha = config_.ewma_alpha;
  double seen = ewma_us_.load(std::memory_order_relaxed);
  for (;;) {
    const double next =
        seen == 0.0 ? micros : (1.0 - alpha) * seen + alpha * micros;
    if (ewma_us_.compare_exchange_weak(seen, next,
                                       std::memory_order_relaxed)) {
      return;
    }
  }
}

bool CircuitBreaker::should_short_circuit(core::Node s, core::Node t,
                                          std::uint64_t epoch) {
  if (threshold_ == 0) return false;
  std::lock_guard lock{mutex_};
  auto it = entries_.find(PairKey{s, t});
  if (it == entries_.end()) return false;
  if (it->second.epoch != epoch) {
    // The fault landscape changed since this entry was written: reset it
    // lazily instead of sweeping the whole map on every epoch advance.
    it->second = Entry{.epoch = epoch};
    return false;
  }
  return it->second.open;
}

void CircuitBreaker::record(core::Node s, core::Node t, std::uint64_t epoch,
                            bool disconnected) {
  if (threshold_ == 0) return;
  std::lock_guard lock{mutex_};
  Entry& entry = entries_[PairKey{s, t}];
  if (entry.epoch != epoch) entry = Entry{.epoch = epoch};
  if (!disconnected) {
    entry.streak = 0;
    entry.open = false;
    return;
  }
  if (entry.open) return;  // already open; nothing to count
  if (++entry.streak >= threshold_) {
    entry.open = true;
    trips_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& trips =
        obs::MetricRegistry::global().counter(obs::stages::kBreakerTripCount);
    trips.inc();
  }
}

}  // namespace hhc::query
