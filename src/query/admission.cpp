#include "query/admission.hpp"

#include <cmath>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/stages.hpp"

namespace hhc::query {

std::size_t& AdmissionGate::shed_streak() const {
  // One slot per gate instance (ids are process-unique and never reused),
  // mirroring StripedCounter's TLS scheme: streaks for destroyed gates are
  // inert because their ids are never consulted again.
  thread_local std::vector<std::size_t> streaks;
  if (id_ >= streaks.size()) streaks.resize(id_ + 1, 0);
  return streaks[id_];
}

AdmissionVerdict AdmissionGate::admit(const util::Deadline& deadline,
                                      const util::CancellationToken* cancel) {
  // One relaxed load: the overload verdict is the cached result of the
  // last decision-epoch fold, never computed inline on the hot path.
  const bool overload = overload_cached_.load(std::memory_order_relaxed);

  if (overload && config_.shed_on_overload) {
    // Shed-fast posture: a latency overload sheds instead of degrading —
    // queueing or admitting behind an already slow service only makes the
    // smoothed latency worse. Every probe_interval-th consecutive shed
    // decision per thread is admitted degraded as a half-open probe so
    // completions keep feeding the detector (recovery contract).
    std::size_t& streak = shed_streak();
    if (config_.probe_interval == 0 ||
        ++streak % config_.probe_interval != 0) {
      return AdmissionVerdict::kShed;  // no shared writes
    }
    // The probe claims a slot like a kDegrade admission: it may transiently
    // exceed the bound, which is the price of keeping the feedback loop
    // closed while the gate is shut.
    if (config_.max_in_flight != 0) {
      in_flight_.fetch_add(1, std::memory_order_relaxed);
    }
    return AdmissionVerdict::kAdmittedDegraded;
  }

  if (config_.max_in_flight == 0) {
    // Unlimited gate: no occupancy accounting at all, so the default
    // config adds zero shared writes to answer()/answer_view().
    return overload ? AdmissionVerdict::kAdmittedDegraded
                    : AdmissionVerdict::kAdmitted;
  }

  // Claim a slot with a read + CAS: the write happens only on successful
  // admission, so a saturated gate sheds with a single relaxed load and no
  // cache-line ping-pong (the old optimistic fetch_add/fetch_sub pair made
  // every rejected query a shared writer).
  std::size_t occupied = in_flight_.load(std::memory_order_relaxed);
  while (occupied < config_.max_in_flight) {
    if (in_flight_.compare_exchange_weak(occupied, occupied + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      return overload ? AdmissionVerdict::kAdmittedDegraded
                      : AdmissionVerdict::kAdmitted;
    }
  }

  switch (config_.policy) {
    case AdmissionPolicy::kReject:
      return AdmissionVerdict::kShed;
    case AdmissionPolicy::kDegrade:
      in_flight_.fetch_add(1, std::memory_order_relaxed);
      return AdmissionVerdict::kAdmittedDegraded;
    case AdmissionPolicy::kQueue:
      break;
  }

  // Queue-with-deadline: wait for a slot, polling the deadline/token. The
  // condvar wakes on release(); the bounded wait keeps a cancelled or
  // expired waiter from sleeping forever even if no slot ever frees.
  std::unique_lock lock{queue_mutex_};
  for (;;) {
    if (util::should_stop(deadline, cancel)) {
      return AdmissionVerdict::kTimedOut;
    }
    std::size_t current = in_flight_.load(std::memory_order_relaxed);
    if (current < config_.max_in_flight &&
        in_flight_.compare_exchange_strong(current, current + 1,
                                           std::memory_order_acquire)) {
      return overload_cached_.load(std::memory_order_relaxed)
                 ? AdmissionVerdict::kAdmittedDegraded
                 : AdmissionVerdict::kAdmitted;
    }
    slot_free_.wait_for(lock, std::chrono::microseconds{200});
  }
}

void AdmissionGate::release() noexcept {
  if (config_.max_in_flight == 0) return;  // nothing was claimed
  in_flight_.fetch_sub(1, std::memory_order_release);
  if (config_.policy == AdmissionPolicy::kQueue) {
    slot_free_.notify_one();
  }
}

void AdmissionGate::record_latency(double micros) noexcept {
  if (!(micros >= 0.0)) return;  // NaN/negative samples carry no signal
  completion_count_.add(1);
  completion_sum_ns_.add(static_cast<std::uint64_t>(micros * 1000.0));
  if (config_.overload_latency_us <= 0.0) {
    // Detector disabled: the cells are pure telemetry, folded only when
    // ewma_latency_us() is read — no shared writes on the completion path.
    return;
  }
  // Decision-epoch fold: every kDecisionEpoch-th completion folds the
  // striped cells into the EWMA, and an overloaded gate folds eagerly so
  // the rare probe completions reopen it without waiting out an epoch.
  const std::uint64_t n =
      completions_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % kDecisionEpoch == 0 ||
      overload_cached_.load(std::memory_order_relaxed)) {
    (void)try_fold_completions();
  }
}

void AdmissionGate::apply_fold_locked() const noexcept {
  const std::uint64_t count = completion_count_.fold();
  const std::uint64_t sum_ns = completion_sum_ns_.fold();
  const std::uint64_t pending = count - folded_count_;
  if (pending > 0) {
    const double mean_us = static_cast<double>(sum_ns - folded_sum_ns_) /
                           (1000.0 * static_cast<double>(pending));
    const double seen = ewma_us_.load(std::memory_order_relaxed);
    // n equal-weight samples of mean µ applied to an EWMA in closed form:
    // ewma' = µ + (ewma - µ)(1 - α)^n; a batch of one is exactly the
    // per-sample update, so sequential (test) use is bit-exact.
    const double next =
        seen == 0.0 ? mean_us
                    : mean_us + (seen - mean_us) *
                                    std::pow(1.0 - config_.ewma_alpha,
                                             static_cast<double>(pending));
    ewma_us_.store(next, std::memory_order_relaxed);
    folded_count_ = count;
    folded_sum_ns_ = sum_ns;
  }
  overload_cached_.store(config_.overload_latency_us > 0.0 &&
                             ewma_us_.load(std::memory_order_relaxed) >
                                 config_.overload_latency_us,
                         std::memory_order_relaxed);
}

void AdmissionGate::fold_completions() const noexcept {
  std::lock_guard lock{fold_mutex_};
  apply_fold_locked();
}

bool AdmissionGate::try_fold_completions() const noexcept {
  std::unique_lock lock{fold_mutex_, std::try_to_lock};
  if (!lock.owns_lock()) return false;  // a racing fold is already at it
  apply_fold_locked();
  return true;
}

double AdmissionGate::ewma_latency_us() const noexcept {
  fold_completions();
  return ewma_us_.load(std::memory_order_relaxed);
}

bool AdmissionGate::overloaded() const noexcept {
  fold_completions();
  return overload_cached_.load(std::memory_order_relaxed);
}

bool CircuitBreaker::should_short_circuit(core::Node s, core::Node t) {
  if (threshold_ == 0) return false;
  // Read-only fast path: until a record() has inserted the first entry,
  // no pair can possibly be open, so the map mutex is never touched.
  if (!has_entries_.load(std::memory_order_acquire)) return false;
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  std::lock_guard lock{mutex_};
  auto it = entries_.find(PairKey{s, t});
  if (it == entries_.end()) return false;
  if (it->second.epoch != epoch) {
    // The fault landscape changed since this entry was written: reset it
    // lazily instead of sweeping the whole map on every epoch advance.
    it->second = Entry{.epoch = epoch};
    return false;
  }
  return it->second.open;
}

void CircuitBreaker::record(core::Node s, core::Node t, bool disconnected) {
  if (threshold_ == 0) return;
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  std::lock_guard lock{mutex_};
  Entry& entry = entries_[PairKey{s, t}];
  has_entries_.store(true, std::memory_order_release);
  if (entry.epoch != epoch) entry = Entry{.epoch = epoch};
  if (!disconnected) {
    entry.streak = 0;
    entry.open = false;
    return;
  }
  if (entry.open) return;  // already open; nothing to count
  if (++entry.streak >= threshold_) {
    entry.open = true;
    trips_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& trips =
        obs::MetricRegistry::global().counter(obs::stages::kBreakerTripCount);
    trips.inc();
  }
}

}  // namespace hhc::query
