// Built-in observability for the path-query engine.
//
// LatencyHistogram is now a thin microsecond-flavored wrapper over
// obs::Histogram (the process-wide metrics layer grew out of it): a fixed
// array of lock-free power-of-two microsecond buckets (bucket b counts
// latencies in [2^(b-1), 2^b) µs, bucket 0 the sub-microsecond ones), so
// recording on the hot query path is one relaxed fetch_add and never blocks
// a concurrent reader. Percentiles are read off the bucket boundaries —
// upper edge, i.e. conservative — which is the right fidelity for "is p99 a
// microsecond or a millisecond" dashboards. Percentile error semantics
// match sim::percentile: out-of-range p or an empty snapshot THROW
// std::invalid_argument (callers render "0" for empty snapshots
// explicitly), and p = 0 reports the first non-empty bucket's edge instead
// of a phantom 1 µs.
//
// Latency semantics (PR 8): the histogram measures POST-ADMISSION service
// time. Gate-shed queries and admission-time deadline expiries never touch
// it — the shed-fast path records nothing but per-thread striped outcome
// tallies — so under overload the distribution describes the work actually
// performed, not a blur of sub-microsecond rejections.
//
// ServiceStats is the plain-data snapshot PathService::stats() returns:
// query/level totals, the cache's per-shard counters, and the latency
// distribution, renderable as an aligned table, CSV, or JSON (via core::io)
// so service telemetry lands in the same formats as campaign reports.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/container_cache.hpp"
#include "obs/metrics.hpp"

namespace hhc::query {

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = obs::Histogram::kBuckets;

  struct Snapshot {
    std::vector<std::uint64_t> buckets;  // kBuckets power-of-two µs bins
    std::uint64_t count = 0;
    double max_micros = 0.0;

    /// Upper bucket edge (µs) below which a `p` fraction of samples fall;
    /// p = 0 is the first non-empty bucket's edge. Throws
    /// std::invalid_argument when the snapshot is empty or p is outside
    /// [0, 1] — same contract as sim::percentile.
    [[nodiscard]] double percentile(double p) const {
      return obs::bucket_percentile(buckets, count, p);
    }
  };

  /// Thread-safe, wait-free; NaN/negative samples clamp to bucket 0.
  void record(double micros) noexcept { histogram_.record(micros); }

  [[nodiscard]] Snapshot snapshot() const {
    obs::Histogram::Snapshot snap = histogram_.snapshot();
    return Snapshot{std::move(snap.buckets), snap.count, snap.max_value};
  }

  void reset() noexcept { histogram_.reset(); }

 private:
  obs::Histogram histogram_;
};

/// Point-in-time service telemetry; see PathService::stats().
struct ServiceStats {
  std::uint64_t queries = 0;
  std::uint64_t pristine = 0;       // container-only queries
  std::uint64_t fault_aware = 0;    // queries with a fault view attached
  // Level counters only count authoritative (outcome kOk) answers; the
  // outcome counters below cover the rest, so
  //   guaranteed + best_effort + disconnected + shed + timed_out + invalid
  // always equals `queries`.
  std::uint64_t guaranteed = 0;
  std::uint64_t best_effort = 0;
  std::uint64_t disconnected = 0;

  // Overload robustness (see DESIGN.md §8/§10). shed includes both gate
  // rejections and breaker short-circuits; the latter also counted apart.
  // shed/timed_out are folded from per-thread striped cells — the ONLY
  // tallies the shed-fast rejection path touches — so they are exact when
  // writers are quiescent and at-most-one-increment racy under load.
  std::uint64_t shed = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t invalid = 0;               // malformed batch elements
  std::uint64_t degraded_admissions = 0;   // admitted with fallback skipped
  std::uint64_t breaker_short_circuits = 0;
  std::uint64_t breaker_trips = 0;         // breakers opened (monotone)
  std::uint64_t fault_epoch = 0;           // the breaker's current epoch
  double ewma_latency_us = 0.0;            // the overload detector's view
  std::uint64_t in_flight = 0;             // instantaneous occupancy

  core::CacheStats cache;           // aggregate + per-shard counters

  LatencyHistogram::Snapshot latency;

  /// The process-wide obs::MetricRegistry, captured at the same stats()
  /// read so one snapshot carries every telemetry surface.
  obs::MetricsSnapshot metrics;

  [[nodiscard]] double hit_rate() const noexcept { return cache.hit_rate(); }

  /// Everything as unified core::StatRow rows: the query-level counters
  /// (section "service"), the answer-latency distribution (section
  /// "latency"), the cache snapshot (sections "cache"/"cache.shard<i>"),
  /// then the registry metrics (sections "counter"/"gauge"/"histogram").
  [[nodiscard]] std::vector<core::StatRow> rows() const;

  /// core::stat_rows_csv / core::stat_rows_json over rows() — the same
  /// schema ContainerCache stats and the obs registry export render with.
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_json() const;
  /// Aligned human-readable summary (util::Table).
  void print(std::ostream& os) const;
};

}  // namespace hhc::query
