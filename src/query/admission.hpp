// Admission control, overload detection, and circuit breaking for the
// path-query engine.
//
// Three cooperating mechanisms keep PathService answering within bounded
// time when offered load exceeds capacity, instead of queueing without
// limit or parking workers in expensive fallbacks:
//
//   AdmissionGate    a bounded in-flight limit with a configurable response
//                    when the bound is hit: reject (shed immediately),
//                    queue-with-deadline (wait for a slot, bounded by the
//                    query's deadline), or degrade (admit, but flag the
//                    query so the expensive fault-aware BFS fallback is
//                    skipped and the answer is best-effort).
//   EWMA detector    an exponentially weighted moving average of answer
//                    latency, folded into the gate: when the smoothed
//                    latency crosses the configured threshold the service
//                    is "overloaded" and admissions degrade regardless of
//                    in-flight occupancy (waiting in a queue cannot fix a
//                    latency overload — shedding work can).
//   CircuitBreaker   a per-fault-epoch memory of repeatedly-disconnected
//                    pairs: once a pair reports kDisconnected `threshold`
//                    consecutive times within one fault epoch, further
//                    queries for it short-circuit to an immediate shed
//                    until the epoch advances (i.e. the fault landscape
//                    changes), sparing the survivor-subgraph BFS the
//                    hopeless full-graph sweeps that make hostile fault
//                    sets so expensive.
//
// All three are policy ONLY — they never alter the bits of an answer that
// is delivered with RouteOutcome::kOk. With the default config (no limit,
// no threshold, no breaker) every mechanism is inert and the service
// behaves exactly as it did before this layer existed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "core/topology.hpp"
#include "util/deadline.hpp"

namespace hhc::query {

/// What the gate does when the in-flight bound is reached.
enum class AdmissionPolicy {
  kReject,   // shed the query immediately (outcome kShed)
  kQueue,    // wait for a slot; the query's deadline bounds the wait
  kDegrade,  // admit anyway, but skip the expensive fault-aware fallback
};

[[nodiscard]] constexpr const char* to_string(AdmissionPolicy p) noexcept {
  switch (p) {
    case AdmissionPolicy::kReject: return "reject";
    case AdmissionPolicy::kQueue: return "queue";
    case AdmissionPolicy::kDegrade: return "degrade";
  }
  return "?";
}

struct AdmissionConfig {
  /// Concurrent in-flight answer() bound; 0 = unlimited (gate inert).
  std::size_t max_in_flight = 0;
  AdmissionPolicy policy = AdmissionPolicy::kReject;
  /// EWMA smoothing factor in (0, 1]; the weight of the newest sample.
  double ewma_alpha = 0.2;
  /// Smoothed-latency overload threshold in µs; 0 = detector disabled.
  double overload_latency_us = 0.0;
  /// Consecutive kDisconnected answers for one pair (within one fault
  /// epoch) that open its breaker; 0 = breaker disabled.
  std::size_t breaker_threshold = 0;
};

/// Gate verdicts, in decreasing order of service delivered.
enum class AdmissionVerdict {
  kAdmitted,          // run the full query
  kAdmittedDegraded,  // run, but skip the fault-aware fallback
  kShed,              // rejected: bound hit under the kReject policy
  kTimedOut,          // queued past the query's deadline / cancellation
};

/// The bounded in-flight gate + EWMA overload detector. Thread-safe; one
/// admit() that returns kAdmitted/kAdmittedDegraded must be paired with
/// exactly one release() (PathService uses an RAII guard).
class AdmissionGate {
 public:
  explicit AdmissionGate(AdmissionConfig config) : config_{config} {}

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  /// Decides one query's fate. Blocks only under the kQueue policy, and
  /// then only until a slot frees, the deadline expires, or the token is
  /// cancelled. An unarmed deadline under kQueue waits indefinitely for a
  /// slot (there is nothing to time out against).
  [[nodiscard]] AdmissionVerdict admit(const util::Deadline& deadline,
                                       const util::CancellationToken* cancel);

  /// Returns the slot taken by a successful admit().
  void release() noexcept;

  /// Feeds one completed answer's latency into the EWMA detector.
  void record_latency(double micros) noexcept;

  /// Smoothed latency estimate (µs); 0 until the first sample.
  [[nodiscard]] double ewma_latency_us() const noexcept {
    return ewma_us_.load(std::memory_order_relaxed);
  }

  /// True when the detector is armed and the smoothed latency exceeds the
  /// configured threshold.
  [[nodiscard]] bool overloaded() const noexcept {
    return config_.overload_latency_us > 0.0 &&
           ewma_latency_us() > config_.overload_latency_us;
  }

  [[nodiscard]] std::size_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const AdmissionConfig& config() const noexcept {
    return config_;
  }

 private:
  AdmissionConfig config_;
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<double> ewma_us_{0.0};
  std::mutex mutex_;                 // serializes kQueue waiters only
  std::condition_variable slot_free_;
};

/// Per-fault-epoch short-circuit for repeatedly-disconnected pairs.
/// Epochs are advanced by the owner whenever the fault landscape changes
/// (PathService::advance_fault_epoch()); entries from older epochs reset
/// lazily, so a repair automatically gives every pair a fresh chance.
class CircuitBreaker {
 public:
  /// threshold = consecutive disconnects that open a pair's breaker;
  /// 0 disables the breaker entirely (both methods become no-ops).
  explicit CircuitBreaker(std::size_t threshold) : threshold_{threshold} {}

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// True when (s, t) should be short-circuited at `epoch` — its breaker
  /// opened in this same epoch and has not been reset by an epoch advance.
  [[nodiscard]] bool should_short_circuit(core::Node s, core::Node t,
                                          std::uint64_t epoch);

  /// Records one authoritative answer for (s, t): a disconnect extends the
  /// streak (opening the breaker at the threshold), anything else resets it.
  void record(core::Node s, core::Node t, std::uint64_t epoch,
              bool disconnected);

  /// Breakers opened since construction (monotone; telemetry only).
  [[nodiscard]] std::uint64_t trips() const noexcept {
    return trips_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool enabled() const noexcept { return threshold_ > 0; }

 private:
  struct PairKey {
    core::Node s = 0;
    core::Node t = 0;
    bool operator==(const PairKey&) const = default;
  };
  struct PairKeyHash {
    std::size_t operator()(const PairKey& k) const noexcept {
      std::uint64_t h = k.s * 0x9e3779b97f4a7c15ULL;
      h ^= (k.t + 0xbf58476d1ce4e5b9ULL) + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };
  struct Entry {
    std::uint64_t epoch = 0;
    std::size_t streak = 0;
    bool open = false;
  };

  std::size_t threshold_;
  std::atomic<std::uint64_t> trips_{0};
  std::mutex mutex_;
  std::unordered_map<PairKey, Entry, PairKeyHash> entries_;
};

}  // namespace hhc::query
