// Admission control, overload detection, and circuit breaking for the
// path-query engine.
//
// Three cooperating mechanisms keep PathService answering within bounded
// time when offered load exceeds capacity, instead of queueing without
// limit or parking workers in expensive fallbacks:
//
//   AdmissionGate    a bounded in-flight limit with a configurable response
//                    when the bound is hit: reject (shed immediately),
//                    queue-with-deadline (wait for a slot, bounded by the
//                    query's deadline), or degrade (admit, but flag the
//                    query so the expensive fault-aware BFS fallback is
//                    skipped and the answer is best-effort).
//   EWMA detector    an exponentially weighted moving average of answer
//                    latency, folded into the gate: when the smoothed
//                    latency crosses the configured threshold the service
//                    is "overloaded" and admissions degrade — or, with
//                    shed_on_overload, shed — regardless of in-flight
//                    occupancy (waiting in a queue cannot fix a latency
//                    overload; shedding work can).
//   CircuitBreaker   a per-fault-epoch memory of repeatedly-disconnected
//                    pairs: once a pair reports kDisconnected `threshold`
//                    consecutive times within one fault epoch, further
//                    queries for it short-circuit to an immediate shed
//                    until the epoch advances (i.e. the fault landscape
//                    changes), sparing the survivor-subgraph BFS the
//                    hopeless full-graph sweeps that make hostile fault
//                    sets so expensive.
//
// Shed-fast contract (PR 8): a rejected decision performs NO shared-memory
// writes. The in-flight bound is checked with a read + CAS claim that only
// writes on successful admission; completion feedback lands in per-thread
// util::StripedCounter cells and is folded into the EWMA on decision
// epochs, not per sample; and a disabled mechanism costs at most a relaxed
// load. This is what makes rejection effectively free and lets goodput
// plateau under overload instead of collapsing (the F6b closed-loop sweep
// in BENCH_query.json is the acceptance curve).
//
// Recovery contract: the EWMA only learns from completed answers, so a
// gate shedding 100% of traffic would otherwise never observe that load
// dropped. Under shed_on_overload every probe_interval-th shed decision
// per thread is admitted (degraded) as a half-open probe; probe
// completions feed the detector and close the loop, so a recovered
// backend reopens the gate within a handful of probes.
//
// All three are policy ONLY — they never alter the bits of an answer that
// is delivered with RouteOutcome::kOk. With the default config (no limit,
// no threshold, no breaker) every mechanism is inert and the service
// behaves exactly as it did before this layer existed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "core/topology.hpp"
#include "util/deadline.hpp"
#include "util/striped.hpp"

namespace hhc::query {

/// What the gate does when the in-flight bound is reached.
enum class AdmissionPolicy {
  kReject,   // shed the query immediately (outcome kShed)
  kQueue,    // wait for a slot; the query's deadline bounds the wait
  kDegrade,  // admit anyway, but skip the expensive fault-aware fallback
};

[[nodiscard]] constexpr const char* to_string(AdmissionPolicy p) noexcept {
  switch (p) {
    case AdmissionPolicy::kReject: return "reject";
    case AdmissionPolicy::kQueue: return "queue";
    case AdmissionPolicy::kDegrade: return "degrade";
  }
  return "?";
}

struct AdmissionConfig {
  /// Concurrent in-flight answer() bound; 0 = unlimited. An unlimited gate
  /// does no occupancy accounting at all (admit/release are read-only), so
  /// the default config adds zero shared writes to the query hot path.
  std::size_t max_in_flight = 0;
  AdmissionPolicy policy = AdmissionPolicy::kReject;
  /// EWMA smoothing factor in (0, 1]; the weight of the newest sample.
  double ewma_alpha = 0.2;
  /// Smoothed-latency overload threshold in µs; 0 = detector disabled
  /// (completion feedback then never touches shared state either).
  double overload_latency_us = 0.0;
  /// Consecutive kDisconnected answers for one pair (within one fault
  /// epoch) that open its breaker; 0 = breaker disabled.
  std::size_t breaker_threshold = 0;
  /// When the EWMA detector flags overload, SHED instead of degrading
  /// admissions. This is the shed-fast posture: an overloaded service
  /// refuses work in nanoseconds rather than admitting ever-slower
  /// best-effort answers. false keeps the PR 5 degrade semantics.
  bool shed_on_overload = false;
  /// Under shed_on_overload, every Nth consecutive shed decision per
  /// thread is admitted (degraded) as a half-open probe so the detector
  /// keeps seeing completions and can observe recovery. 0 disables probing
  /// (a fully-shedding gate then stays shut until something else
  /// completes — only sensible in tests).
  std::size_t probe_interval = 64;
};

/// Gate verdicts, in decreasing order of service delivered.
enum class AdmissionVerdict {
  kAdmitted,          // run the full query
  kAdmittedDegraded,  // run, but skip the fault-aware fallback
  kShed,              // rejected: bound hit / overload under shed_on_overload
  kTimedOut,          // queued past the query's deadline / cancellation
};

/// The bounded in-flight gate + EWMA overload detector. Thread-safe; one
/// admit() that returns kAdmitted/kAdmittedDegraded must be paired with
/// exactly one release() (PathService uses an RAII guard).
class AdmissionGate {
 public:
  explicit AdmissionGate(AdmissionConfig config)
      : config_{config}, id_{next_id().fetch_add(1,
                                                 std::memory_order_relaxed)} {}

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  /// Decides one query's fate. A kShed verdict writes no shared memory.
  /// Blocks only under the kQueue policy, and then only until a slot
  /// frees, the deadline expires, or the token is cancelled. An unarmed
  /// deadline under kQueue waits indefinitely for a slot (there is nothing
  /// to time out against).
  [[nodiscard]] AdmissionVerdict admit(const util::Deadline& deadline,
                                       const util::CancellationToken* cancel);

  /// Returns the slot taken by a successful admit(). No-op on an unlimited
  /// gate (no slot was ever claimed).
  void release() noexcept;

  /// Feeds one completed answer's latency into the detector: per-thread
  /// striped cells, folded into the EWMA on decision epochs (every
  /// kDecisionEpoch completions, and eagerly while the gate is overloaded
  /// so probe completions reopen it promptly). With the detector disabled
  /// this touches thread-private cells only.
  void record_latency(double micros) noexcept;

  /// Smoothed latency estimate (µs); 0 until the first sample. Folds any
  /// pending completion samples first, so reads are exact when writers are
  /// quiescent (tests and stats() rely on that).
  [[nodiscard]] double ewma_latency_us() const noexcept;

  /// True when the detector is armed and the smoothed latency exceeds the
  /// configured threshold. Folds pending samples like ewma_latency_us();
  /// the hot admit() path reads the cached epoch-folded state instead.
  [[nodiscard]] bool overloaded() const noexcept;

  /// Instantaneous occupancy; always 0 for an unlimited gate (which does
  /// no accounting — see AdmissionConfig::max_in_flight).
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const AdmissionConfig& config() const noexcept {
    return config_;
  }

  /// Completions folded per EWMA update when the detector is armed.
  static constexpr std::uint64_t kDecisionEpoch = 32;

 private:
  /// Folds completion samples recorded since the last fold into the EWMA
  /// and refreshes the cached overload flag. Blocking variant used by the
  /// exact read-side accessors; the completion path uses try-lock.
  void fold_completions() const noexcept;
  [[nodiscard]] bool try_fold_completions() const noexcept;
  void apply_fold_locked() const noexcept;
  [[nodiscard]] std::size_t& shed_streak() const;

  [[nodiscard]] static std::atomic<std::uint64_t>& next_id() noexcept {
    static std::atomic<std::uint64_t> id{0};
    return id;
  }

  AdmissionConfig config_;
  const std::uint64_t id_;  // process-unique; keys the per-thread shed streak
  std::atomic<std::size_t> in_flight_{0};

  // Completion feedback: per-thread cells on the write side, folded into
  // ewma_us_/overload_cached_ under fold_mutex_ on decision epochs.
  util::StripedCounter completion_count_;
  util::StripedCounter completion_sum_ns_;
  std::atomic<std::uint64_t> completions_{0};  // epoch trigger (armed only)
  mutable std::mutex fold_mutex_;
  mutable std::uint64_t folded_count_ = 0;  // under fold_mutex_
  mutable std::uint64_t folded_sum_ns_ = 0;
  mutable std::atomic<double> ewma_us_{0.0};
  mutable std::atomic<bool> overload_cached_{false};

  std::mutex queue_mutex_;  // serializes kQueue waiters only
  std::condition_variable slot_free_;
};

/// Per-fault-epoch short-circuit for repeatedly-disconnected pairs. The
/// breaker owns the epoch counter: advance_fault_epoch() is WAIT-FREE (one
/// relaxed increment) and entries from older epochs reset lazily on their
/// next touch, so a repair gives every pair a fresh chance without any
/// sweep. should_short_circuit() is read-only until the first breaker
/// entry exists (one relaxed load), so pristine-heavy traffic never pays
/// for the map mutex.
class CircuitBreaker {
 public:
  /// threshold = consecutive disconnects that open a pair's breaker;
  /// 0 disables the breaker entirely (both methods become no-ops).
  explicit CircuitBreaker(std::size_t threshold) : threshold_{threshold} {}

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Tells the breaker the fault landscape changed (faults added or
  /// repaired): every open breaker gets a fresh chance. Wait-free.
  void advance_fault_epoch() noexcept {
    epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fault_epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// True when (s, t) should be short-circuited at the current epoch — its
  /// breaker opened in this same epoch and has not been reset by an epoch
  /// advance.
  [[nodiscard]] bool should_short_circuit(core::Node s, core::Node t);

  /// Records one authoritative answer for (s, t): a disconnect extends the
  /// streak (opening the breaker at the threshold), anything else resets it.
  void record(core::Node s, core::Node t, bool disconnected);

  /// Breakers opened since construction (monotone; telemetry only).
  [[nodiscard]] std::uint64_t trips() const noexcept {
    return trips_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool enabled() const noexcept { return threshold_ > 0; }

 private:
  struct PairKey {
    core::Node s = 0;
    core::Node t = 0;
    bool operator==(const PairKey&) const = default;
  };
  struct PairKeyHash {
    std::size_t operator()(const PairKey& k) const noexcept {
      std::uint64_t h = k.s * 0x9e3779b97f4a7c15ULL;
      h ^= (k.t + 0xbf58476d1ce4e5b9ULL) + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };
  struct Entry {
    std::uint64_t epoch = 0;
    std::size_t streak = 0;
    bool open = false;
  };

  std::size_t threshold_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> trips_{0};
  std::atomic<bool> has_entries_{false};
  std::mutex mutex_;
  std::unordered_map<PairKey, Entry, PairKeyHash> entries_;
};

}  // namespace hhc::query
