// The unified path-query surface.
//
// Before this module, every consumer of the disjoint-path construction had
// its own entry point and its own result shape: the sim called
// node_disjoint_paths directly, the fault layer had AdaptiveRouteResult,
// examples hand-rolled both. PairQuery/RouteResult is the one vocabulary
// they all speak now: a query names a pair, the construction options, and
// optionally a fault view (FaultModel + evaluation instant); a result
// carries the paths, HOW the answer was obtained (DegradationLevel +
// fallback/blocked detail), and what it cost (cache hit, service-side
// latency).
//
// This header is intentionally header-only and dependency-light so that
// both layers below the service (fault::AdaptiveRouter reports its results
// in this vocabulary) and above it (query::PathService, sim transfers) can
// include it without link-time cycles.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/disjoint.hpp"
#include "core/topology.hpp"
#include "util/deadline.hpp"

namespace hhc::core {
class FaultModel;
}

namespace hhc::query {

/// How an answer was obtained — "container vs fallback vs disconnected",
/// reported the same way by every routing entry point.
enum class DegradationLevel {
  kGuaranteed,    // served by the disjoint container (the paper's guarantee)
  kBestEffort,    // container fully blocked; survivor-subgraph BFS succeeded
  kDisconnected,  // no fault-free s-t path exists at all
};

[[nodiscard]] constexpr const char* to_string(DegradationLevel level) noexcept {
  switch (level) {
    case DegradationLevel::kGuaranteed: return "guaranteed";
    case DegradationLevel::kBestEffort: return "best-effort";
    case DegradationLevel::kDisconnected: return "disconnected";
  }
  return "?";
}

/// WHETHER the service delivered a full answer — deliberately distinct from
/// DegradationLevel, which records HOW an answer was obtained. kOk +
/// kDisconnected is an authoritative "no path exists"; kShed + kDisconnected
/// means the service gave up early and the verdict is NOT authoritative.
enum class RouteOutcome {
  kOk,        // the query ran to completion; level/paths are authoritative
  kTimedOut,  // deadline expired (or token cancelled) before completion
  kShed,      // dropped by admission control / load shedding / breaker
  kInvalid,   // malformed query inside a batch (out-of-range node)
};

[[nodiscard]] constexpr const char* to_string(RouteOutcome outcome) noexcept {
  switch (outcome) {
    case RouteOutcome::kOk: return "ok";
    case RouteOutcome::kTimedOut: return "timed-out";
    case RouteOutcome::kShed: return "shed";
    case RouteOutcome::kInvalid: return "invalid";
  }
  return "?";
}

/// One path query. With `faults == nullptr` the query is pristine and the
/// answer is the full m+1-path container, bit-identical to
/// node_disjoint_paths(net, s, t, options). With a fault view attached the
/// answer degrades gracefully through the AdaptiveRouter ladder.
struct PairQuery {
  core::Node s = 0;
  core::Node t = 0;
  core::ConstructionOptions options{};
  const core::FaultModel* faults = nullptr;  // not owned; null = pristine
  std::uint64_t time = 0;                    // fault-evaluation instant
  /// Optional per-query time budget. Default-constructed = none: the query
  /// runs to completion exactly as before deadlines existed. Checked
  /// cooperatively at stage boundaries, so the worst-case overrun is one
  /// stage-check interval (see util/deadline.hpp).
  util::Deadline deadline{};
  /// Optional external cancellation (not owned); checked wherever the
  /// deadline is. Null = never cancelled.
  const util::CancellationToken* cancel = nullptr;
};

/// One answer. Pristine queries fill `paths` with the whole container
/// (level kGuaranteed); fault-aware queries carry the single delivered
/// route (kGuaranteed over a surviving container path, kBestEffort via the
/// BFS fallback) or nothing at all (kDisconnected).
struct RouteResult {
  std::vector<core::Path> paths;
  DegradationLevel level = DegradationLevel::kDisconnected;
  RouteOutcome outcome = RouteOutcome::kOk;  // see enum: WHETHER vs HOW
  std::size_t container_paths_blocked = 0;  // of the m+1 container paths
  bool used_fallback = false;               // BFS fallback engaged
  bool cache_hit = false;     // served without running the construction
  double micros = 0.0;        // service-side wall time (0 outside a service)

  [[nodiscard]] bool ok() const noexcept { return !paths.empty(); }

  /// The route a single message should take: the shortest of `paths`.
  /// Throws std::logic_error when there is none (check ok() first).
  [[nodiscard]] const core::Path& primary() const {
    if (paths.empty()) {
      throw std::logic_error("RouteResult::primary: no path (disconnected)");
    }
    const core::Path* best = &paths.front();
    for (const core::Path& path : paths) {
      if (path.size() < best->size()) best = &path;
    }
    return *best;
  }
};

}  // namespace hhc::query
