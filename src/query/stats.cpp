#include "query/stats.hpp"

#include <iterator>
#include <ostream>

#include "core/io.hpp"
#include "util/table.hpp"

namespace hhc::query {

namespace {

// Percentile for rendering: empty snapshots print 0 instead of throwing
// (a freshly constructed service must still render a stats row).
double pct(const LatencyHistogram::Snapshot& latency, double p) {
  return latency.count == 0 ? 0.0 : latency.percentile(p);
}

}  // namespace

std::vector<core::StatRow> ServiceStats::rows() const {
  std::vector<core::StatRow> rows;
  const auto scalar = [&rows](const char* name, std::uint64_t value) {
    rows.push_back(core::stat_scalar("service", name, value));
  };
  scalar("queries", queries);
  scalar("pristine", pristine);
  scalar("fault_aware", fault_aware);
  scalar("guaranteed", guaranteed);
  scalar("best_effort", best_effort);
  scalar("disconnected", disconnected);
  scalar("shed", shed);
  scalar("timed_out", timed_out);
  scalar("invalid", invalid);
  scalar("degraded_admissions", degraded_admissions);
  scalar("breaker_short_circuits", breaker_short_circuits);
  scalar("breaker_trips", breaker_trips);
  scalar("fault_epoch", fault_epoch);
  rows.push_back(core::stat_scalar("service", "ewma_latency_us",
                                   ewma_latency_us));
  scalar("in_flight", in_flight);

  rows.push_back(core::stat_dist("latency", "answer_us", latency.count,
                                 pct(latency, 0.50), pct(latency, 0.90),
                                 pct(latency, 0.99), latency.max_micros));

  std::vector<core::StatRow> cache_rows = cache.rows();
  rows.insert(rows.end(), std::make_move_iterator(cache_rows.begin()),
              std::make_move_iterator(cache_rows.end()));

  std::vector<core::StatRow> metric_rows = metrics.rows();
  rows.insert(rows.end(), std::make_move_iterator(metric_rows.begin()),
              std::make_move_iterator(metric_rows.end()));
  return rows;
}

std::string ServiceStats::to_csv() const {
  return core::stat_rows_csv(rows());
}

std::string ServiceStats::to_json() const {
  return core::stat_rows_json(rows());
}

void ServiceStats::print(std::ostream& os) const {
  util::Table table{{"queries", "guaranteed", "best-effort", "disconnected",
                     "shed", "timed out", "hit rate %", "entries", "evictions",
                     "p50 us", "p99 us", "max us"}};
  table.row()
      .add(queries)
      .add(guaranteed)
      .add(best_effort)
      .add(disconnected)
      .add(shed)
      .add(timed_out)
      .add(100.0 * hit_rate(), 1)
      .add(static_cast<std::uint64_t>(cache.entries))
      .add(static_cast<std::uint64_t>(cache.evictions))
      .add(pct(latency, 0.50), 1)
      .add(pct(latency, 0.99), 1)
      .add(latency.max_micros, 1);
  table.print(os, "path service: " + std::to_string(cache.shards.size()) +
                      " cache shards, " + std::to_string(pristine) +
                      " pristine + " + std::to_string(fault_aware) +
                      " fault-aware queries");
}

}  // namespace hhc::query
