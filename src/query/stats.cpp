#include "query/stats.hpp"

#include <ostream>

#include "core/io.hpp"
#include "util/table.hpp"

namespace hhc::query {

namespace {

// Percentile for rendering: empty snapshots print 0 instead of throwing
// (a freshly constructed service must still render a stats row).
double pct(const LatencyHistogram::Snapshot& latency, double p) {
  return latency.count == 0 ? 0.0 : latency.percentile(p);
}

}  // namespace

std::string ServiceStats::to_csv() const {
  std::string out =
      core::csv_row({"scope", "entries", "hits", "misses", "evictions",
                     "queries", "guaranteed", "best_effort", "disconnected",
                     "shed", "timed_out", "invalid", "breaker_trips",
                     "hit_rate", "p50_us", "p90_us", "p99_us", "max_us"}) +
      "\n";
  for (std::size_t i = 0; i < cache.shards.size(); ++i) {
    const core::CacheShardStats& shard = cache.shards[i];
    out += core::csv_row({"shard" + std::to_string(i),
                          std::to_string(shard.entries),
                          std::to_string(shard.hits),
                          std::to_string(shard.misses),
                          std::to_string(shard.evictions), "", "", "", "", "",
                          "", "", "", "", "", "", "", ""}) +
           "\n";
  }
  out += core::csv_row(
             {"total", std::to_string(cache.entries),
              std::to_string(cache.hits), std::to_string(cache.misses),
              std::to_string(cache.evictions), std::to_string(queries),
              std::to_string(guaranteed), std::to_string(best_effort),
              std::to_string(disconnected), std::to_string(shed),
              std::to_string(timed_out), std::to_string(invalid),
              std::to_string(breaker_trips), std::to_string(hit_rate()),
              std::to_string(pct(latency, 0.50)),
              std::to_string(pct(latency, 0.90)),
              std::to_string(pct(latency, 0.99)),
              std::to_string(latency.max_micros)}) +
         "\n";
  return out;
}

std::string ServiceStats::to_json() const {
  core::JsonWriter json;
  json.begin_object()
      .key("queries").value(queries)
      .key("pristine").value(pristine)
      .key("fault_aware").value(fault_aware)
      .key("guaranteed").value(guaranteed)
      .key("best_effort").value(best_effort)
      .key("disconnected").value(disconnected)
      .key("shed").value(shed)
      .key("timed_out").value(timed_out)
      .key("invalid").value(invalid)
      .key("degraded_admissions").value(degraded_admissions)
      .key("breaker_short_circuits").value(breaker_short_circuits)
      .key("breaker_trips").value(breaker_trips)
      .key("ewma_latency_us").value(ewma_latency_us)
      .key("in_flight").value(in_flight)
      .key("cache").begin_object()
      .key("entries").value(static_cast<std::uint64_t>(cache.entries))
      .key("hits").value(static_cast<std::uint64_t>(cache.hits))
      .key("misses").value(static_cast<std::uint64_t>(cache.misses))
      .key("evictions").value(static_cast<std::uint64_t>(cache.evictions))
      .key("hit_rate").value(hit_rate())
      .key("shards").begin_array();
  for (const core::CacheShardStats& shard : cache.shards) {
    json.begin_object()
        .key("entries").value(static_cast<std::uint64_t>(shard.entries))
        .key("hits").value(static_cast<std::uint64_t>(shard.hits))
        .key("misses").value(static_cast<std::uint64_t>(shard.misses))
        .key("evictions").value(static_cast<std::uint64_t>(shard.evictions))
        .end_object();
  }
  json.end_array().end_object()
      .key("latency_us").begin_object()
      .key("count").value(latency.count)
      .key("p50").value(pct(latency, 0.50))
      .key("p90").value(pct(latency, 0.90))
      .key("p99").value(pct(latency, 0.99))
      .key("max").value(latency.max_micros)
      .key("buckets").begin_array();
  for (const std::uint64_t count : latency.buckets) json.value(count);
  json.end_array().end_object().end_object();
  return json.str();
}

void ServiceStats::print(std::ostream& os) const {
  util::Table table{{"queries", "guaranteed", "best-effort", "disconnected",
                     "shed", "timed out", "hit rate %", "entries", "evictions",
                     "p50 us", "p99 us", "max us"}};
  table.row()
      .add(queries)
      .add(guaranteed)
      .add(best_effort)
      .add(disconnected)
      .add(shed)
      .add(timed_out)
      .add(100.0 * hit_rate(), 1)
      .add(static_cast<std::uint64_t>(cache.entries))
      .add(static_cast<std::uint64_t>(cache.evictions))
      .add(pct(latency, 0.50), 1)
      .add(pct(latency, 0.99), 1)
      .add(latency.max_micros, 1);
  table.print(os, "path service: " + std::to_string(cache.shards.size()) +
                      " cache shards, " + std::to_string(pristine) +
                      " pristine + " + std::to_string(fault_aware) +
                      " fault-aware queries");
}

}  // namespace hhc::query
