#include "query/stats.hpp"

#include <bit>
#include <cmath>
#include <ostream>

#include "core/io.hpp"
#include "util/table.hpp"

namespace hhc::query {

namespace {

// Bucket index for a latency sample: 0 for < 1 µs, else 1 + floor(log2).
std::size_t bucket_of(double micros) noexcept {
  if (!(micros >= 1.0)) return 0;  // also catches NaN/negatives
  const auto us = static_cast<std::uint64_t>(micros);
  const auto width = static_cast<std::size_t>(std::bit_width(us));
  return width < LatencyHistogram::kBuckets ? width
                                            : LatencyHistogram::kBuckets - 1;
}

// Upper edge (µs) of bucket b: bucket 0 -> 1 µs, bucket b -> 2^b µs.
double bucket_edge(std::size_t b) noexcept {
  return std::ldexp(1.0, static_cast<int>(b));
}

}  // namespace

void LatencyHistogram::record(double micros) noexcept {
  buckets_[bucket_of(micros)].fetch_add(1, std::memory_order_relaxed);
  const auto nanos =
      micros > 0.0 ? static_cast<std::uint64_t>(micros * 1e3) : 0u;
  std::uint64_t seen = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > seen && !max_nanos_.compare_exchange_weak(
                             seen, nanos, std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  snap.buckets.resize(kBuckets);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    snap.count += snap.buckets[b];
  }
  snap.max_micros =
      static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) / 1e3;
  return snap;
}

void LatencyHistogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  max_nanos_.store(0, std::memory_order_relaxed);
}

double LatencyHistogram::Snapshot::percentile(double p) const noexcept {
  if (count == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(count)));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= target) return bucket_edge(b);
  }
  return bucket_edge(buckets.size() - 1);
}

std::string ServiceStats::to_csv() const {
  std::string out =
      core::csv_row({"scope", "entries", "hits", "misses", "evictions",
                     "queries", "guaranteed", "best_effort", "disconnected",
                     "hit_rate", "p50_us", "p90_us", "p99_us", "max_us"}) +
      "\n";
  for (std::size_t i = 0; i < cache.shards.size(); ++i) {
    const core::CacheShardStats& shard = cache.shards[i];
    out += core::csv_row({"shard" + std::to_string(i),
                          std::to_string(shard.entries),
                          std::to_string(shard.hits),
                          std::to_string(shard.misses),
                          std::to_string(shard.evictions), "", "", "", "", "",
                          "", "", "", ""}) +
           "\n";
  }
  out += core::csv_row(
             {"total", std::to_string(cache.entries),
              std::to_string(cache.hits), std::to_string(cache.misses),
              std::to_string(cache.evictions), std::to_string(queries),
              std::to_string(guaranteed), std::to_string(best_effort),
              std::to_string(disconnected), std::to_string(hit_rate()),
              std::to_string(latency.percentile(0.50)),
              std::to_string(latency.percentile(0.90)),
              std::to_string(latency.percentile(0.99)),
              std::to_string(latency.max_micros)}) +
         "\n";
  return out;
}

std::string ServiceStats::to_json() const {
  core::JsonWriter json;
  json.begin_object()
      .key("queries").value(queries)
      .key("pristine").value(pristine)
      .key("fault_aware").value(fault_aware)
      .key("guaranteed").value(guaranteed)
      .key("best_effort").value(best_effort)
      .key("disconnected").value(disconnected)
      .key("cache").begin_object()
      .key("entries").value(static_cast<std::uint64_t>(cache.entries))
      .key("hits").value(static_cast<std::uint64_t>(cache.hits))
      .key("misses").value(static_cast<std::uint64_t>(cache.misses))
      .key("evictions").value(static_cast<std::uint64_t>(cache.evictions))
      .key("hit_rate").value(hit_rate())
      .key("shards").begin_array();
  for (const core::CacheShardStats& shard : cache.shards) {
    json.begin_object()
        .key("entries").value(static_cast<std::uint64_t>(shard.entries))
        .key("hits").value(static_cast<std::uint64_t>(shard.hits))
        .key("misses").value(static_cast<std::uint64_t>(shard.misses))
        .key("evictions").value(static_cast<std::uint64_t>(shard.evictions))
        .end_object();
  }
  json.end_array().end_object()
      .key("latency_us").begin_object()
      .key("count").value(latency.count)
      .key("p50").value(latency.percentile(0.50))
      .key("p90").value(latency.percentile(0.90))
      .key("p99").value(latency.percentile(0.99))
      .key("max").value(latency.max_micros)
      .key("buckets").begin_array();
  for (const std::uint64_t count : latency.buckets) json.value(count);
  json.end_array().end_object().end_object();
  return json.str();
}

void ServiceStats::print(std::ostream& os) const {
  util::Table table{{"queries", "guaranteed", "best-effort", "disconnected",
                     "hit rate %", "entries", "evictions", "p50 us", "p99 us",
                     "max us"}};
  table.row()
      .add(queries)
      .add(guaranteed)
      .add(best_effort)
      .add(disconnected)
      .add(100.0 * hit_rate(), 1)
      .add(static_cast<std::uint64_t>(cache.entries))
      .add(static_cast<std::uint64_t>(cache.evictions))
      .add(latency.percentile(0.50), 1)
      .add(latency.percentile(0.99), 1)
      .add(latency.max_micros, 1);
  table.print(os, "path service: " + std::to_string(cache.shards.size()) +
                      " cache shards, " + std::to_string(pristine) +
                      " pristine + " + std::to_string(fault_aware) +
                      " fault-aware queries");
}

}  // namespace hhc::query
