#include "fault/campaign.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "core/disjoint.hpp"
#include "core/fault_model.hpp"
#include "core/io.hpp"
#include "fault/adaptive_router.hpp"
#include "obs/stages.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace hhc::fault {

namespace {

double rate(std::size_t part, std::size_t whole) noexcept {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

// Independent, reproducible stream per (sweep, budget, trial).
std::uint64_t trial_seed(std::uint64_t seed, std::size_t faults,
                         std::size_t trial) {
  util::SplitMix64 sm{seed ^ (faults + 1) * 0x9e3779b97f4a7c15ULL ^
                      (trial + 1) * 0xbf58476d1ce4e5b9ULL};
  return sm.next();
}

struct TrialOutcome {
  DegradationLevel level = DegradationLevel::kDisconnected;
  double inflation = 0.0;  // valid when delivered
};

TrialOutcome run_trial(const core::HhcTopology& net,
                       const AdaptiveRouter& router,
                       const core::FaultModel::RandomSpec& spec,
                       std::uint64_t seed) {
  static obs::Histogram& trial_hist =
      obs::stage_histogram(obs::stages::kCampaignTrial);
  obs::TraceSpan span{obs::stages::kCampaignTrial, &trial_hist};
  util::Xoshiro256 rng{seed};
  core::Node s = rng.below(net.node_count());
  core::Node t = rng.below(net.node_count());
  while (t == s) t = rng.below(net.node_count());

  const auto faults = core::FaultModel::random(net, spec, s, t, rng);
  const auto routed = router.route(s, t, faults);

  TrialOutcome outcome;
  outcome.level = routed.level;
  if (routed.ok()) {
    // Reference: the shortest container member with zero faults — what this
    // pair pays when the guarantee machinery runs unimpeded.
    const auto baseline = core::node_disjoint_paths(net, s, t).min_length();
    outcome.inflation = baseline == 0
                            ? 1.0
                            : static_cast<double>(routed.primary().size() - 1) /
                                  static_cast<double>(baseline);
  }
  return outcome;
}

}  // namespace

double CampaignRow::success_rate() const noexcept {
  return rate(delivered(), trials);
}
double CampaignRow::guaranteed_rate() const noexcept {
  return rate(guaranteed, trials);
}
double CampaignRow::fallback_rate() const noexcept {
  return rate(best_effort, trials);
}

CampaignRunner::CampaignRunner(CampaignConfig config) : config_{config} {
  if (config_.trials == 0) {
    throw std::invalid_argument("CampaignRunner: trials must be positive");
  }
  if (config_.link_fault_fraction < 0.0 || config_.link_fault_fraction > 1.0 ||
      config_.external_fraction < 0.0 || config_.external_fraction > 1.0) {
    throw std::invalid_argument("CampaignRunner: fractions must be in [0,1]");
  }
}

CampaignReport CampaignRunner::run() const {
  const core::HhcTopology net{config_.m};
  const AdaptiveRouter router{net};
  const std::size_t max_faults =
      config_.max_faults != 0 ? config_.max_faults : net.degree() + 2;

  CampaignReport report;
  report.config = config_;
  report.config.max_faults = max_faults;

  // One pool across the whole sweep: campaign batches deliberately reuse
  // the same workers (the regression the thread-pool tests pin down).
  util::ThreadPool pool{config_.threads == 1 ? 1 : config_.threads};

  for (std::size_t f = 0; f <= max_faults; ++f) {
    const auto links = static_cast<std::size_t>(std::llround(
        static_cast<double>(f) * config_.link_fault_fraction));
    const auto external = static_cast<std::size_t>(std::llround(
        static_cast<double>(links) * config_.external_fraction));
    core::FaultModel::RandomSpec spec;
    spec.node_faults = f - links;
    spec.external_link_faults = external;
    spec.internal_link_faults = links - external;

    std::vector<TrialOutcome> outcomes(config_.trials);
    obs::TraceSpan row_span{obs::stages::kCampaignRow};
    util::Stopwatch watch;
    const auto body = [&](std::size_t i) {
      outcomes[i] =
          run_trial(net, router, spec, trial_seed(config_.seed, f, i));
    };
    if (config_.threads == 1) {
      for (std::size_t i = 0; i < config_.trials; ++i) body(i);
    } else {
      pool.parallel_for(0, config_.trials, body);
    }

    CampaignRow row;
    row.faults = f;
    row.node_faults = spec.node_faults;
    row.link_faults = links;
    row.trials = config_.trials;
    row.wall_seconds = watch.seconds();
    double inflation_sum = 0.0;
    for (const TrialOutcome& o : outcomes) {
      switch (o.level) {
        case DegradationLevel::kGuaranteed: ++row.guaranteed; break;
        case DegradationLevel::kBestEffort: ++row.best_effort; break;
        case DegradationLevel::kDisconnected: ++row.disconnected; break;
      }
      inflation_sum += o.inflation;
    }
    row.avg_inflation =
        row.delivered() == 0
            ? 0.0
            : inflation_sum / static_cast<double>(row.delivered());
    report.rows.push_back(row);
  }
  return report;
}

std::string CampaignReport::to_csv() const {
  std::string out =
      core::csv_row({"faults", "node_faults", "link_faults", "trials",
                     "guaranteed", "best_effort", "disconnected",
                     "success_rate", "guaranteed_rate", "fallback_rate",
                     "avg_inflation", "wall_seconds"}) +
      "\n";
  for (const CampaignRow& r : rows) {
    out += core::csv_row(
               {std::to_string(r.faults), std::to_string(r.node_faults),
                std::to_string(r.link_faults), std::to_string(r.trials),
                std::to_string(r.guaranteed), std::to_string(r.best_effort),
                std::to_string(r.disconnected),
                std::to_string(r.success_rate()),
                std::to_string(r.guaranteed_rate()),
                std::to_string(r.fallback_rate()),
                std::to_string(r.avg_inflation),
                std::to_string(r.wall_seconds)}) +
           "\n";
  }
  return out;
}

std::string CampaignReport::to_json() const {
  core::JsonWriter json;
  json.begin_object()
      .key("m").value(static_cast<std::uint64_t>(config.m))
      .key("trials").value(static_cast<std::uint64_t>(config.trials))
      .key("max_faults").value(static_cast<std::uint64_t>(config.max_faults))
      .key("link_fault_fraction").value(config.link_fault_fraction)
      .key("external_fraction").value(config.external_fraction)
      .key("seed").value(config.seed)
      .key("rows").begin_array();
  for (const CampaignRow& r : rows) {
    json.begin_object()
        .key("faults").value(static_cast<std::uint64_t>(r.faults))
        .key("node_faults").value(static_cast<std::uint64_t>(r.node_faults))
        .key("link_faults").value(static_cast<std::uint64_t>(r.link_faults))
        .key("trials").value(static_cast<std::uint64_t>(r.trials))
        .key("guaranteed").value(static_cast<std::uint64_t>(r.guaranteed))
        .key("best_effort").value(static_cast<std::uint64_t>(r.best_effort))
        .key("disconnected").value(static_cast<std::uint64_t>(r.disconnected))
        .key("success_rate").value(r.success_rate())
        .key("guaranteed_rate").value(r.guaranteed_rate())
        .key("fallback_rate").value(r.fallback_rate())
        .key("avg_inflation").value(r.avg_inflation)
        .key("wall_seconds").value(r.wall_seconds)
        .end_object();
  }
  json.end_array().end_object();
  return json.str();
}

void CampaignReport::print(std::ostream& os) const {
  util::Table table{{"faults", "nodes+links", "guaranteed %", "fallback %",
                     "disconnected %", "inflation", "ms"}};
  for (const CampaignRow& r : rows) {
    table.row()
        .add(static_cast<std::uint64_t>(r.faults))
        .add(std::to_string(r.node_faults) + "+" +
             std::to_string(r.link_faults))
        .add(100.0 * r.guaranteed_rate(), 1)
        .add(100.0 * r.fallback_rate(), 1)
        .add(100.0 * rate(r.disconnected, r.trials), 1)
        .add(r.avg_inflation, 2)
        .add(r.wall_seconds * 1e3, 1);
  }
  char link_fraction[32];
  std::snprintf(link_fraction, sizeof link_fraction, "%.2f",
                config.link_fault_fraction);
  table.print(os, "fault campaign: m=" + std::to_string(config.m) +
                      ", trials/row=" + std::to_string(config.trials) +
                      ", link fraction=" + link_fraction +
                      " (guarantee boundary at f=" + std::to_string(config.m) +
                      ")");
}

}  // namespace hhc::fault
