// Deterministic Monte-Carlo fault-injection campaigns.
//
// A campaign sweeps the fault budget f from 0 to past m+1 and, for each
// budget, routes `trials` random s-t pairs through the AdaptiveRouter under
// `f` random faults (split between node and link faults per the config).
// Recorded per budget: how often the container guarantee held, how often
// the BFS fallback saved the day, how often the pair was genuinely
// disconnected, the path-length inflation paid for degradation, and wall
// time. The sweep is deterministic in the seed regardless of thread count
// (every trial derives its own RNG), so campaign outputs diff cleanly
// across machines and runs.
//
// Reports render as text tables, CSV, or JSON (via core::io) so they can
// feed EXPERIMENTS.md, spreadsheets, and dashboards from one run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hhc::fault {

struct CampaignConfig {
  unsigned m = 3;             // cluster dimension (1..5; BFS fallback <= 4)
  std::size_t trials = 200;   // s-t pairs per fault budget
  std::size_t max_faults = 0; // sweep 0..max_faults; 0 means degree + 2
  double link_fault_fraction = 0.0;  // of each budget, injected as links
  double external_fraction = 0.5;    // of link faults, external edges
  std::uint64_t seed = 1;
  std::size_t threads = 1;    // workers for the trial loop; 0 = hardware
};

/// Aggregates for one fault budget f.
struct CampaignRow {
  std::size_t faults = 0;        // total budget f
  std::size_t node_faults = 0;   // per-trial split of f
  std::size_t link_faults = 0;
  std::size_t trials = 0;
  std::size_t guaranteed = 0;    // delivered over the container
  std::size_t best_effort = 0;   // delivered via BFS fallback
  std::size_t disconnected = 0;  // no survivor path existed
  double avg_inflation = 0.0;    // delivered length / fault-free shortest
  double wall_seconds = 0.0;

  [[nodiscard]] std::size_t delivered() const noexcept {
    return guaranteed + best_effort;
  }
  [[nodiscard]] double success_rate() const noexcept;
  [[nodiscard]] double guaranteed_rate() const noexcept;
  [[nodiscard]] double fallback_rate() const noexcept;
};

struct CampaignReport {
  CampaignConfig config;
  std::vector<CampaignRow> rows;

  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_json() const;
  /// Aligned text table (util::Table) with one line per fault budget.
  void print(std::ostream& os) const;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig config);

  /// Runs the full sweep. Deterministic in config (modulo wall_seconds).
  [[nodiscard]] CampaignReport run() const;

 private:
  CampaignConfig config_;
};

}  // namespace hhc::fault
