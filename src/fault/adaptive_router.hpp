// Adaptive fault-tolerant routing with graceful degradation.
//
// The m+1 node-disjoint container guarantees delivery under any <= m node
// faults — but says nothing once |F| > m, or when *links* fail (a link
// fault can block a container path without consuming a node fault, so even
// few link faults may block all m+1 paths). The seed's `route_avoiding`
// simply returns an empty path in those regimes; this router degrades
// gracefully instead:
//
//   1. try the disjoint container (the paper's guarantee)    -> kGuaranteed
//   2. fall back to BFS on the survivor subgraph             -> kBestEffort
//   3. only when s and t are genuinely disconnected          -> kDisconnected
//
// so a caller always learns *why* there is no path, never just an empty
// vector. The BFS walks the implicit topology (no explicit graph build) and
// is intended for campaign-scale instances (m <= 4).
#pragma once

#include <cstdint>

#include "core/fault_model.hpp"
#include "core/topology.hpp"

namespace hhc::fault {

enum class DegradationLevel {
  kGuaranteed,    // delivered over a surviving container path
  kBestEffort,    // container fully blocked; survivor-subgraph BFS succeeded
  kDisconnected,  // no fault-free s-t path exists at all
};

[[nodiscard]] const char* to_string(DegradationLevel level) noexcept;

struct AdaptiveRouteResult {
  core::Path path;  // empty iff level == kDisconnected
  DegradationLevel level = DegradationLevel::kDisconnected;
  std::size_t container_paths_blocked = 0;  // of the m+1 container paths
  bool used_fallback = false;               // BFS fallback engaged

  [[nodiscard]] bool ok() const noexcept { return !path.empty(); }
};

class AdaptiveRouter {
 public:
  explicit AdaptiveRouter(const core::HhcTopology& net) : net_{net} {}

  /// Routes s -> t around the faults active at `time`. Never throws on
  /// blocked or faulty-endpoint inputs — a faulty endpoint is reported as
  /// kDisconnected, which is what it means operationally.
  [[nodiscard]] AdaptiveRouteResult route(core::Node s, core::Node t,
                                          const core::FaultModel& faults,
                                          std::uint64_t time = 0) const;

 private:
  const core::HhcTopology& net_;
};

}  // namespace hhc::fault
