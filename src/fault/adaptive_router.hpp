// Adaptive fault-tolerant routing with graceful degradation.
//
// The m+1 node-disjoint container guarantees delivery under any <= m node
// faults — but says nothing once |F| > m, or when *links* fail (a link
// fault can block a container path without consuming a node fault, so even
// few link faults may block all m+1 paths). The seed's `route_avoiding`
// simply returns an empty path in those regimes; this router degrades
// gracefully instead:
//
//   1. try the disjoint container (the paper's guarantee)    -> kGuaranteed
//   2. fall back to BFS on the survivor subgraph             -> kBestEffort
//   3. only when s and t are genuinely disconnected          -> kDisconnected
//
// so a caller always learns *why* there is no path, never just an empty
// vector. The BFS walks the implicit topology (no explicit graph build) and
// is intended for campaign-scale instances (m <= 4).
//
// Results are reported in the unified query vocabulary
// (query::PairQuery -> query::RouteResult; see query/types.hpp), so
// "container vs fallback vs disconnected" reads the same here, in the
// PathService, and in the sim. The router can optionally share a
// core::ContainerCache — query::PathService wires its sharded cache in — so
// container lookups under heavy fault-aware traffic hit the cache instead
// of re-running the construction per call.
#pragma once

#include <cstdint>

#include "core/container_cache.hpp"
#include "core/fault_model.hpp"
#include "core/topology.hpp"
#include "query/types.hpp"

namespace hhc::fault {

// The degradation ladder lives in query/types.hpp now; re-exported here so
// fault-layer callers keep spelling it fault::DegradationLevel.
using query::DegradationLevel;
using query::to_string;

class AdaptiveRouter {
 public:
  /// `cache` (optional, not owned) serves the container lookups; it must
  /// outlive the router and belong to the same topology. Without one, every
  /// route() call runs the construction directly.
  explicit AdaptiveRouter(const core::HhcTopology& net,
                          core::ContainerCache* cache = nullptr)
      : net_{net}, cache_{cache} {}

  /// Knobs the admission layer threads through: a degraded route skips the
  /// survivor-subgraph BFS fallback entirely (the expensive stage under
  /// hostile fault sets) and reports outcome kShed when the container scan
  /// alone could not deliver — that kDisconnected is NOT authoritative.
  struct RouteLimits {
    bool skip_fallback = false;
  };

  /// Routes query.s -> query.t around the faults in query.faults (treated
  /// as fault-free when null) at instant query.time. Never throws on
  /// blocked or faulty-endpoint inputs — a faulty endpoint is reported as
  /// kDisconnected, which is what it means operationally. The result holds
  /// at most one path: the delivered route.
  ///
  /// Cooperative cancellation: query.deadline / query.cancel are checked at
  /// each stage boundary and every util::kStopCheckStride expansions inside
  /// the BFS loop; an expired query returns outcome kTimedOut with whatever
  /// container-scan detail was already gathered.
  [[nodiscard]] query::RouteResult route(const query::PairQuery& query) const {
    return route(query, RouteLimits{});
  }
  [[nodiscard]] query::RouteResult route(const query::PairQuery& query,
                                         const RouteLimits& limits) const;

  /// Convenience wrapper for direct fault-layer callers.
  [[nodiscard]] query::RouteResult route(core::Node s, core::Node t,
                                         const core::FaultModel& faults,
                                         std::uint64_t time = 0) const {
    return route(query::PairQuery{
        .s = s, .t = t, .options = {}, .faults = &faults, .time = time});
  }

 private:
  const core::HhcTopology& net_;
  core::ContainerCache* cache_;
};

}  // namespace hhc::fault
