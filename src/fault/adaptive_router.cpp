#include "fault/adaptive_router.hpp"

#include <algorithm>
#include <deque>
#include <span>
#include <unordered_map>
#include <utility>

#include "core/disjoint.hpp"
#include "obs/stages.hpp"
#include "obs/trace.hpp"

namespace hhc::fault {

using core::FaultModel;
using core::Node;
using core::Path;

namespace {

// Views a container generically: `view.path_count()`, `view.path_size(i)`,
// `view.node(i, j)`. Implemented by core::ContainerHandle (cached, lazily
// relabeled) and by RefSetView below (scratch-built) so survivability is
// checked WITHOUT materializing any path — only the chosen one is copied.
struct RefSetView {
  std::span<const core::PathRef> paths;
  [[nodiscard]] std::size_t path_count() const noexcept {
    return paths.size();
  }
  [[nodiscard]] std::size_t path_size(std::size_t i) const noexcept {
    return paths[i].size();
  }
  [[nodiscard]] Node node(std::size_t i, std::size_t j) const noexcept {
    return paths[i][j];
  }
};

// Every hop of path i traversable at `time`: interior nodes healthy and
// every edge (including its link) usable. Endpoint health is checked by
// the caller once, not per path.
template <typename View>
bool path_survives(const View& view, std::size_t i, const FaultModel& faults,
                   std::uint64_t time) {
  for (std::size_t j = 0; j + 1 < view.path_size(i); ++j) {
    if (!faults.edge_usable_at(view.node(i, j), view.node(i, j + 1), time)) {
      return false;
    }
  }
  return true;
}

// Scans the container for surviving paths; keeps the first strictly
// shortest survivor (same selection as the historical Path* scan) and
// materializes only that one.
template <typename View>
void select_survivor(const View& view, const FaultModel& faults,
                     std::uint64_t time, query::RouteResult& result) {
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t best = kNone;
  for (std::size_t i = 0; i < view.path_count(); ++i) {
    if (!path_survives(view, i, faults, time)) {
      ++result.container_paths_blocked;
      continue;
    }
    if (best == kNone || view.path_size(i) < view.path_size(best)) best = i;
  }
  if (best == kNone) return;
  Path path;
  path.reserve(view.path_size(best));
  for (std::size_t j = 0; j < view.path_size(best); ++j) {
    path.push_back(view.node(best, j));
  }
  result.paths.push_back(std::move(path));
  result.level = query::DegradationLevel::kGuaranteed;
}

// BFS over the implicit topology restricted to usable edges; empty when t
// is unreachable. Parent map doubles as the visited set. Cooperatively
// cancellable: every util::kStopCheckStride expansions the query's
// deadline/token are polled, and an expired search sets `timed_out` and
// returns empty — a hostile fault set can make this sweep visit the whole
// survivor subgraph, which is exactly the stage a deadline must be able to
// interrupt.
Path survivor_bfs(const core::HhcTopology& net, Node s, Node t,
                  const FaultModel& faults, std::uint64_t time,
                  const query::PairQuery& query, bool& timed_out) {
  std::unordered_map<Node, Node> parent;
  parent.emplace(s, s);
  std::deque<Node> frontier{s};
  std::size_t expansions = 0;
  while (!frontier.empty()) {
    if (++expansions % util::kStopCheckStride == 0 &&
        util::should_stop(query.deadline, query.cancel)) {
      timed_out = true;
      return {};
    }
    const Node u = frontier.front();
    frontier.pop_front();
    for (const Node v : net.neighbors(u)) {
      if (parent.count(v) > 0) continue;
      if (!faults.edge_usable_at(u, v, time)) continue;
      parent.emplace(v, u);
      if (v == t) {
        Path path{t};
        for (Node w = t; w != s; w = parent.at(w)) path.push_back(parent.at(w));
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(v);
    }
  }
  return {};
}

}  // namespace

query::RouteResult AdaptiveRouter::route(const query::PairQuery& query,
                                         const RouteLimits& limits) const {
  static const FaultModel kNoFaults;
  const FaultModel& faults = query.faults != nullptr ? *query.faults : kNoFaults;
  const Node s = query.s;
  const Node t = query.t;

  query::RouteResult result;
  if (faults.node_faulty_at(s, query.time) ||
      faults.node_faulty_at(t, query.time)) {
    return result;  // a dead endpoint is disconnection, not an error
  }
  if (s == t) {
    result.paths = {Path{s}};
    result.level = DegradationLevel::kGuaranteed;
    return result;
  }

  // Stage boundary: an already-expired query must not pay for a container
  // lookup (which may run the whole construction on a cache miss).
  if (util::should_stop(query.deadline, query.cancel)) {
    result.outcome = query::RouteOutcome::kTimedOut;
    return result;
  }

  {
    static obs::Histogram& scan_hist =
        obs::stage_histogram(obs::stages::kContainerScan);
    obs::TraceSpan span{obs::stages::kContainerScan, &scan_hist};
    if (cache_ != nullptr) {
      const core::ContainerHandle handle =
          cache_->lookup(s, t, query.options, &result.cache_hit);
      select_survivor(handle, faults, query.time, result);
    } else {
      const core::DisjointPathSetRef container = core::node_disjoint_paths(
          net_, s, t, query.options, core::tls_construction_scratch());
      select_survivor(RefSetView{container.paths}, faults, query.time, result);
    }
  }
  if (!result.paths.empty()) return result;

  // Degraded admission: the scan found no survivor and the service told us
  // the BFS sweep is too expensive right now. The kDisconnected verdict is
  // best-effort, so the outcome says kShed, not kOk.
  if (limits.skip_fallback) {
    result.outcome = query::RouteOutcome::kShed;
    return result;
  }
  // Stage boundary before committing a worker to the survivor sweep.
  if (util::should_stop(query.deadline, query.cancel)) {
    result.outcome = query::RouteOutcome::kTimedOut;
    return result;
  }

  result.used_fallback = true;
  static obs::Histogram& fallback_hist =
      obs::stage_histogram(obs::stages::kBfsFallback);
  obs::TraceSpan span{obs::stages::kBfsFallback, &fallback_hist};
  bool timed_out = false;
  Path detour = survivor_bfs(net_, s, t, faults, query.time, query, timed_out);
  if (timed_out) {
    result.outcome = query::RouteOutcome::kTimedOut;
    return result;
  }
  result.level = detour.empty() ? DegradationLevel::kDisconnected
                                : DegradationLevel::kBestEffort;
  if (!detour.empty()) result.paths.push_back(std::move(detour));
  return result;
}

}  // namespace hhc::fault
