#include "fault/adaptive_router.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <utility>

#include "core/disjoint.hpp"

namespace hhc::fault {

using core::FaultModel;
using core::Node;
using core::Path;

namespace {

// Every hop of `path` traversable at `time`: interior nodes healthy and
// every edge (including its link) usable. Endpoint health is checked by
// the caller once, not per path.
bool path_survives(const Path& path, const FaultModel& faults,
                   std::uint64_t time) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!faults.edge_usable_at(path[i], path[i + 1], time)) return false;
  }
  return true;
}

// BFS over the implicit topology restricted to usable edges; empty when t
// is unreachable. Parent map doubles as the visited set.
Path survivor_bfs(const core::HhcTopology& net, Node s, Node t,
                  const FaultModel& faults, std::uint64_t time) {
  std::unordered_map<Node, Node> parent;
  parent.emplace(s, s);
  std::deque<Node> frontier{s};
  while (!frontier.empty()) {
    const Node u = frontier.front();
    frontier.pop_front();
    for (const Node v : net.neighbors(u)) {
      if (parent.count(v) > 0) continue;
      if (!faults.edge_usable_at(u, v, time)) continue;
      parent.emplace(v, u);
      if (v == t) {
        Path path{t};
        for (Node w = t; w != s; w = parent.at(w)) path.push_back(parent.at(w));
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(v);
    }
  }
  return {};
}

}  // namespace

query::RouteResult AdaptiveRouter::route(const query::PairQuery& query) const {
  static const FaultModel kNoFaults;
  const FaultModel& faults = query.faults != nullptr ? *query.faults : kNoFaults;
  const Node s = query.s;
  const Node t = query.t;

  query::RouteResult result;
  if (faults.node_faulty_at(s, query.time) ||
      faults.node_faulty_at(t, query.time)) {
    return result;  // a dead endpoint is disconnection, not an error
  }
  if (s == t) {
    result.paths = {Path{s}};
    result.level = DegradationLevel::kGuaranteed;
    return result;
  }

  const auto container =
      cache_ != nullptr
          ? cache_->paths(s, t, query.options, &result.cache_hit)
          : core::node_disjoint_paths(net_, s, t, query.options);
  const Path* best = nullptr;
  for (const Path& path : container.paths) {
    if (!path_survives(path, faults, query.time)) {
      ++result.container_paths_blocked;
      continue;
    }
    if (best == nullptr || path.size() < best->size()) best = &path;
  }
  if (best != nullptr) {
    result.paths = {*best};
    result.level = DegradationLevel::kGuaranteed;
    return result;
  }

  result.used_fallback = true;
  Path detour = survivor_bfs(net_, s, t, faults, query.time);
  result.level = detour.empty() ? DegradationLevel::kDisconnected
                                : DegradationLevel::kBestEffort;
  if (!detour.empty()) result.paths.push_back(std::move(detour));
  return result;
}

}  // namespace hhc::fault
