#include "sim/patterns.hpp"

#include <stdexcept>

#include "util/bitops.hpp"

namespace hhc::sim {

std::string pattern_name(Pattern pattern) {
  switch (pattern) {
    case Pattern::kComplement:
      return "bit-complement";
    case Pattern::kReverse:
      return "bit-reverse";
    case Pattern::kRotate:
      return "rotate(n/2)";
    case Pattern::kShuffle:
      return "shuffle";
    case Pattern::kTornado:
      return "tornado";
  }
  throw std::invalid_argument("pattern_name: bad pattern");
}

core::Node apply_pattern(const core::HhcTopology& net, Pattern pattern,
                         core::Node v) {
  if (!net.contains(v)) throw std::invalid_argument("apply_pattern: bad node");
  const unsigned n = net.address_bits();
  const std::uint64_t mask = bits::low_mask(n);
  switch (pattern) {
    case Pattern::kComplement:
      return (~v) & mask;
    case Pattern::kReverse: {
      std::uint64_t out = 0;
      for (unsigned i = 0; i < n; ++i) {
        if (bits::test(v, i)) out = bits::set(out, n - 1 - i);
      }
      return out;
    }
    case Pattern::kRotate: {
      const unsigned shift = n / 2;
      return ((v << shift) | (v >> (n - shift))) & mask;
    }
    case Pattern::kShuffle:
      return ((v << 1) | (v >> (n - 1))) & mask;
    case Pattern::kTornado: {
      const std::uint64_t half = (net.node_count() + 1) / 2;
      return (v + half - 1) % net.node_count();
    }
  }
  throw std::invalid_argument("apply_pattern: bad pattern");
}

std::vector<Flow> pattern_traffic(const core::HhcTopology& net,
                                  Pattern pattern) {
  if (net.m() > 3) {
    throw std::invalid_argument(
        "pattern_traffic: one flow per node needs m <= 3");
  }
  std::vector<Flow> flows;
  flows.reserve(net.node_count());
  for (core::Node v = 0; v < net.node_count(); ++v) {
    const core::Node dest = apply_pattern(net, pattern, v);
    if (dest != v) flows.push_back({v, dest, 0});
  }
  return flows;
}

}  // namespace hhc::sim
