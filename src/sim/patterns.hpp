// Classic synthetic traffic patterns (Dally & Towles style), adapted to
// the HHC's n-bit node addresses.
//
// Each pattern is a permutation-like map over node ids; patterns stress
// different aspects of a topology. On the HHC, bit-complement is the
// adversarial case (every cluster dimension differs, forcing full gateway
// tours), while shuffle keeps most traffic local. Fixed points of a
// pattern are skipped when generating flows (a node does not send to
// itself).
#pragma once

#include <string>
#include <vector>

#include "core/topology.hpp"
#include "sim/traffic.hpp"

namespace hhc::sim {

enum class Pattern {
  kComplement,  // dest = ~v                 (all n bits flip)
  kReverse,     // dest = bit-reverse(v)
  kRotate,      // dest = rotate-left(v, n/2) ("transpose" for even n)
  kShuffle,     // dest = rotate-left(v, 1)   (perfect shuffle)
  kTornado,     // dest = (v + ceil(N/2) - 1) mod N
};

/// Human-readable pattern name for tables.
[[nodiscard]] std::string pattern_name(Pattern pattern);

/// The pattern's destination for node v (may equal v for some patterns).
[[nodiscard]] core::Node apply_pattern(const core::HhcTopology& net,
                                       Pattern pattern, core::Node v);

/// One flow per node (injected at time 0), skipping fixed points.
/// Intended for m <= 3 (one flow per node of the whole network).
[[nodiscard]] std::vector<Flow> pattern_traffic(const core::HhcTopology& net,
                                                Pattern pattern);

}  // namespace hhc::sim
