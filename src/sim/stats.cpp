#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hhc::sim {

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("percentile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: bad q");
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(std::llround(pos));
  return sorted[std::min(idx, sorted.size() - 1)];
}

Summary summarize(std::vector<std::uint64_t> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  long double total = 0;
  for (const auto v : values) total += static_cast<long double>(v);
  s.mean = static_cast<double>(total / static_cast<long double>(values.size()));
  s.min = values.front();
  s.p50 = percentile(values, 0.50);
  s.p95 = percentile(values, 0.95);
  s.max = values.back();
  return s;
}

}  // namespace hhc::sim
