#include "sim/wormhole.hpp"

#include <stdexcept>

#include "core/routing.hpp"
#include "util/bitops.hpp"

namespace hhc::sim {

WormholeSimulator::WormholeSimulator(const core::HhcTopology& net,
                                     WormholeConfig config)
    : net_{net}, config_{config} {
  if (config.virtual_channels == 0 || config.virtual_channels > 16) {
    throw std::invalid_argument("WormholeSimulator: VCs must be in [1, 16]");
  }
  if (config.packet_length == 0) {
    throw std::invalid_argument("WormholeSimulator: packet length must be >= 1");
  }
}

std::uint64_t WormholeSimulator::channel_key(core::Node from, core::Node to,
                                             unsigned vc) const {
  // Exact channel id: (from, output port, vc). The port is the internal
  // dimension for cluster edges, m for the external edge — collision-free
  // for every m (from * 6 * 16 < 2^45).
  const unsigned port =
      net_.cluster_of(from) == net_.cluster_of(to)
          ? bits::lowest_set(net_.position_of(from) ^ net_.position_of(to))
          : net_.m();
  return (from * (net_.m() + 1) + port) * 16 + vc;
}

std::uint64_t WormholeSimulator::inject(core::Path route, std::uint64_t time) {
  if (route.empty()) {
    throw std::invalid_argument("WormholeSimulator::inject: empty route");
  }
  if (!core::is_valid_path(net_, route, route.front(), route.back())) {
    throw std::invalid_argument("WormholeSimulator::inject: invalid route");
  }
  Worm worm;
  worm.id = worms_.size();
  worm.route = std::move(route);
  worm.inject_time = time;
  worms_.push_back(std::move(worm));
  return worms_.back().id;
}

WormholeReport WormholeSimulator::run() {
  WormholeReport report;
  std::vector<std::uint64_t> latencies;
  std::size_t retired = 0;

  // Degenerate single-node routes deliver instantly.
  for (Worm& worm : worms_) {
    if (worm.route.size() == 1) {
      worm.delivered = true;
      worm.completion_time = worm.inject_time;
      latencies.push_back(0);
      ++retired;
    }
  }

  std::uint64_t cycle = 0;
  std::uint64_t stalled_for = 0;
  for (; retired < worms_.size() && cycle < config_.max_cycles; ++cycle) {
    bool progress = false;
    for (Worm& worm : worms_) {
      if (worm.delivered || worm.deadlocked || worm.inject_time > cycle ||
          worm.route.size() == 1) {
        continue;
      }
      worm.injected = true;

      const bool head_done = worm.head + 1 == worm.route.size();
      if (!head_done) {
        // Try to advance the head over the next link via any free VC.
        const core::Node from = worm.route[worm.head];
        const core::Node to = worm.route[worm.head + 1];
        bool advanced = false;
        for (unsigned vc = 0; vc < config_.virtual_channels; ++vc) {
          const std::uint64_t key = channel_key(from, to, vc);
          if (channel_owner_.count(key) > 0) continue;
          channel_owner_.emplace(key, worm.id);
          worm.held.push_back(key);
          ++worm.head;
          advanced = true;
          break;
        }
        if (advanced) {
          progress = true;
          // The tail trails packet_length channels behind the head.
          if (worm.held.size() > config_.packet_length) {
            channel_owner_.erase(worm.held.front());
            worm.held.pop_front();
          }
        } else {
          ++worm.blocked_cycles;
        }
      } else {
        // Head at destination: the tail drains one channel per cycle.
        if (!worm.held.empty()) {
          channel_owner_.erase(worm.held.front());
          worm.held.pop_front();
          progress = true;
        }
        if (worm.held.empty()) {
          worm.delivered = true;
          worm.completion_time = cycle + 1;
          latencies.push_back(worm.completion_time - worm.inject_time);
          ++retired;
          progress = true;
        }
      }
    }

    if (progress) {
      stalled_for = 0;
    } else if (++stalled_for >= config_.stall_threshold) {
      // Global stall with live worms: a channel-dependency deadlock (or
      // starvation behind one). Mark every undelivered injected worm.
      bool pending_injection = false;
      for (const Worm& worm : worms_) {
        if (!worm.delivered && !worm.injected) pending_injection = true;
      }
      if (!pending_injection) {
        report.deadlock_detected = true;
        for (Worm& worm : worms_) {
          if (!worm.delivered && !worm.deadlocked) {
            worm.deadlocked = true;
            ++report.deadlocked;
            ++retired;
          }
        }
        break;
      }
      // Some worms have future injection times: fast-forwarding is not
      // modelled; keep waiting (the stall counter keeps the loop bounded
      // by max_cycles).
      stalled_for = 0;
    }
  }

  report.cycles = cycle;
  report.delivered = latencies.size();
  report.stranded = worms_.size() - retired;
  double blocked = 0;
  for (const Worm& worm : worms_) {
    blocked += static_cast<double>(worm.blocked_cycles);
  }
  report.mean_blocked_cycles =
      worms_.empty() ? 0.0 : blocked / static_cast<double>(worms_.size());
  report.latency = summarize(std::move(latencies));
  return report;
}

}  // namespace hhc::sim
