// Chaos/soak harness for the path-query engine (the overload contract's
// end-to-end test bed).
//
// The harness replays traffic against one PathService while the fault
// landscape EVOLVES underneath it: seeded outage bursts fail random nodes
// for a window of epochs and are then repaired, and an optional hostile
// pair is severed during every outage so the circuit breaker has something
// deterministic to trip on. Two arrival models:
//
//   * open-loop (default): arrivals are pushed through a bounded
//     ThreadPool queue (util::ThreadPool::try_submit) so offered load
//     beyond the consumers' capacity is shed at the door instead of
//     queueing without limit — the generator never waits for completions
//     within an epoch;
//   * closed-loop (config.closed_loop): a fixed set of `workers` streams
//     each issue the next query only when the previous one completes, so
//     offered load self-regulates to the service's capacity (door_shed
//     stays 0 by construction) and report.goodput_qps() measures the
//     sustainable completion rate — the F6b goodput-plateau curve.
//
// Both modes consume the seeded RNG identically (two draws per pool
// query), so the query stream for a given seed is the same stream.
//
// What it measures, per fault epoch and in aggregate:
//   * outcome mix (ok / shed / timed-out / authoritative disconnects) and
//     latency percentiles, so recovery after a repair is visible as the
//     ok-rate climbing back in healed epochs;
//   * the worst deadline overrun across every completed query — the
//     cooperative-cancellation contract says this stays within one
//     stage-check interval (plus scheduler noise), and the soak test pins
//     it;
//   * stuck queries: arrivals that were admitted but never completed
//     (always zero unless the service deadlocks — the zero is the point).
//
// Determinism: pair sampling and the fault schedule are pure functions of
// the seed. Latency-dependent fields (percentiles, overruns, EWMA-driven
// sheds) are machine-dependent by nature; the soak test asserts invariants
// about them, not exact values.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "query/admission.hpp"

namespace hhc::sim {

struct SoakConfig {
  unsigned m = 2;                    // HHC dimension of the network under test
  std::size_t epochs = 8;            // fault epochs replayed
  std::size_t queries_per_epoch = 128;
  /// Extra anchor->hostile queries per epoch, answered inline in arrival
  /// order. The hostile node is failed during every outage epoch, so these
  /// return authoritative disconnects there — consecutive ones open the
  /// pair's circuit breaker once admission.breaker_threshold is set.
  std::size_t hostile_per_epoch = 0;
  std::size_t workers = 4;           // consumer threads draining arrivals
  std::size_t max_queued = 64;       // try_submit bound; beyond it = door shed
  /// Closed-loop arrivals: `workers` concurrent streams, issue-on-
  /// completion, per-query deadlines armed at issue time (not generation
  /// time). max_queued is ignored — nothing is ever shed at the door.
  bool closed_loop = false;
  double deadline_us = 0.0;          // per-query budget; 0 = none
  double fault_rate = 0.5;           // fraction of epochs starting an outage
  std::size_t faults_per_burst = 2;  // node faults per outage
  std::uint64_t repair_after = 1;    // epochs until an outage is repaired
  std::uint64_t seed = 1;
  query::AdmissionConfig admission{};  // forwarded to the PathService
};

/// Aggregates for one fault epoch.
struct SoakEpoch {
  std::uint64_t epoch = 0;
  std::size_t faults_active = 0;   // distinct faulty elements at this epoch
  std::size_t offered = 0;         // arrivals generated (pool + hostile)
  std::size_t door_shed = 0;       // refused by the bounded arrival queue
  std::size_t ok = 0;              // outcome kOk (any degradation level)
  std::size_t shed = 0;            // service-side kShed (gate / breaker)
  std::size_t timed_out = 0;       // kTimedOut (queued or in flight)
  std::size_t disconnected = 0;    // authoritative kOk + kDisconnected
  double p50_us = 0.0;             // over completed queries only
  double p99_us = 0.0;
  double max_us = 0.0;

  [[nodiscard]] double ok_rate() const noexcept {
    return offered == 0 ? 0.0
                        : static_cast<double>(ok) / static_cast<double>(offered);
  }
};

struct SoakReport {
  SoakConfig config;
  std::vector<SoakEpoch> epochs;

  // Aggregates over the whole run.
  std::size_t offered = 0;
  std::size_t completed = 0;     // ran to a verdict inside the service
  std::size_t door_shed = 0;
  std::size_t ok = 0;
  std::size_t shed = 0;
  std::size_t timed_out = 0;
  std::size_t disconnected = 0;
  std::size_t stuck = 0;         // admitted but never completed (must be 0)
  double max_overrun_us = 0.0;   // worst completion past its own deadline
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_short_circuits = 0;
  double wall_seconds = 0.0;

  /// Mean ok-rate over epochs with / without an active fault — recovery
  /// after repair shows up as healed_ok_rate >= faulted_ok_rate.
  double faulted_ok_rate = 0.0;
  double healed_ok_rate = 0.0;

  /// Completed-OK answers per wall second — the goodput a closed-loop run
  /// sustains (also meaningful for open-loop runs, where it additionally
  /// reflects door/gate shedding).
  [[nodiscard]] double goodput_qps() const noexcept {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(ok) / wall_seconds;
  }

  /// One row per epoch plus a "total" row.
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_json() const;
  /// Aligned per-epoch table plus an aggregate summary (util::Table).
  void print(std::ostream& os) const;
};

/// Runs the soak described by `config`. The fault schedule and query
/// stream are deterministic in config.seed; timing-derived fields are not.
[[nodiscard]] SoakReport run_soak(const SoakConfig& config);

}  // namespace hhc::sim
