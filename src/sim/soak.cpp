#include "sim/soak.hpp"

#include <algorithm>
#include <atomic>
#include <ostream>
#include <vector>

#include "core/fault_model.hpp"
#include "core/io.hpp"
#include "core/topology.hpp"
#include "query/path_service.hpp"
#include "sim/stats.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace hhc::sim {

namespace {

// One arrival's fate, written by exactly one task (or the generator, for
// door sheds and hostile queries) — indexed slots, no locking.
enum class SlotState : std::uint8_t { kPending, kCompleted, kDoorShed };

struct Slot {
  std::atomic<SlotState> state{SlotState::kPending};
  query::RouteOutcome outcome = query::RouteOutcome::kOk;
  bool disconnected = false;  // authoritative kOk + kDisconnected
  double micros = 0.0;
  double overrun_us = 0.0;  // completion past the query's own deadline
};

void record(Slot& slot, const query::RouteResult& result,
            const util::Deadline& deadline) {
  slot.outcome = result.outcome;
  slot.disconnected =
      result.outcome == query::RouteOutcome::kOk &&
      result.level == query::DegradationLevel::kDisconnected;
  slot.micros = result.micros;
  // remaining_micros is +inf for unarmed deadlines, so the overrun clamps
  // to zero and deadline-free soaks report 0 throughout.
  const double over = -deadline.remaining_micros();
  slot.overrun_us = over > 0.0 ? over : 0.0;
  slot.state.store(SlotState::kCompleted, std::memory_order_release);
}

// The adversarial fault schedule: each epoch independently starts an
// outage with probability fault_rate, failing faults_per_burst random
// nodes (never the anchor, node 0) for [epoch, epoch + repair_after).
// Outage epochs also sever the hostile node so the anchor->hostile pair is
// deterministically disconnected there. Pure function of the RNG state.
core::FaultModel build_schedule(const core::HhcTopology& net,
                                const SoakConfig& config, core::Node hostile,
                                util::Xoshiro256& rng) {
  core::FaultModel model;
  for (std::uint64_t e = 0; e < config.epochs; ++e) {
    if (!rng.chance(config.fault_rate)) continue;
    const std::uint64_t repaired = e + config.repair_after;
    for (std::size_t i = 0; i < config.faults_per_burst; ++i) {
      const core::Node v = 1 + rng.below(net.node_count() - 1);
      if (v == hostile) continue;  // hostile gets its own window below
      model.fail_node(v, e, repaired);
    }
    if (config.hostile_per_epoch > 0) model.fail_node(hostile, e, repaired);
  }
  return model;
}

}  // namespace

SoakReport run_soak(const SoakConfig& config) {
  const util::Stopwatch wall;
  const core::HhcTopology net{config.m};
  const core::Node hostile = net.node_count() - 1;
  constexpr core::Node kAnchor = 0;

  util::Xoshiro256 rng{config.seed};
  const core::FaultModel model = build_schedule(net, config, hostile, rng);

  query::PathServiceConfig service_config;
  service_config.admission = config.admission;
  query::PathService service{net, service_config};

  const std::size_t per_epoch =
      config.queries_per_epoch + config.hostile_per_epoch;
  std::vector<Slot> slots(config.epochs * per_epoch);
  util::ThreadPool pool{std::max<std::size_t>(1, config.workers)};

  SoakReport report;
  report.config = config;
  for (std::uint64_t e = 0; e < config.epochs; ++e) {
    if (e > 0) service.advance_fault_epoch();
    const std::size_t base = e * per_epoch;

    SoakEpoch row;
    row.epoch = e;
    row.faults_active = model.fault_count(e);
    row.offered = per_epoch;

    if (config.closed_loop) {
      // Closed-loop arrivals: pre-generate the epoch's pairs (consuming
      // the RNG exactly like the open-loop generator — two draws per
      // query), then let `workers` fixed streams race an index counter,
      // each issuing its next query only when the previous one completed.
      // Deadlines are armed at issue time: a closed-loop query's budget
      // starts when it is issued, not when the epoch was generated.
      std::vector<std::pair<core::Node, core::Node>> pairs(
          config.queries_per_epoch);
      for (auto& [s, t] : pairs) {
        s = rng.below(net.node_count());
        t = rng.below(net.node_count());
      }
      std::atomic<std::size_t> next{0};
      const std::size_t streams = std::max<std::size_t>(1, config.workers);
      for (std::size_t w = 0; w < streams; ++w) {
        pool.submit([&service, &model, &pairs, &next, &slots, &config, base,
                     e] {
          for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= pairs.size()) return;
            query::PairQuery query;
            query.s = pairs[i].first;
            query.t = pairs[i].second;
            query.faults = &model;
            query.time = e;
            if (config.deadline_us > 0.0) {
              query.deadline = util::Deadline::after_micros(config.deadline_us);
            }
            record(slots[base + i], service.answer(query), query.deadline);
          }
        });
      }
      pool.wait_idle();  // pairs/next are epoch-scoped; drain before they die
    } else {
      // Open-loop arrivals: the generator submits the whole epoch's traffic
      // without waiting; the bounded queue sheds the excess at the door.
      for (std::size_t i = 0; i < config.queries_per_epoch; ++i) {
        query::PairQuery query;
        query.s = rng.below(net.node_count());
        query.t = rng.below(net.node_count());
        query.faults = &model;
        query.time = e;
        if (config.deadline_us > 0.0) {
          query.deadline = util::Deadline::after_micros(config.deadline_us);
        }
        Slot& slot = slots[base + i];
        const bool queued = pool.try_submit(
            [&service, &slot, query] {
              record(slot, service.answer(query), query.deadline);
            },
            config.max_queued);
        if (!queued) {
          slot.state.store(SlotState::kDoorShed, std::memory_order_relaxed);
          ++row.door_shed;
        }
      }
    }

    // Hostile traffic runs inline so its disconnect streak is in arrival
    // order — what the circuit breaker counts.
    for (std::size_t i = 0; i < config.hostile_per_epoch; ++i) {
      query::PairQuery query;
      query.s = kAnchor;
      query.t = hostile;
      query.faults = &model;
      query.time = e;
      if (config.deadline_us > 0.0) {
        query.deadline = util::Deadline::after_micros(config.deadline_us);
      }
      record(slots[base + config.queries_per_epoch + i], service.answer(query),
             query.deadline);
    }

    pool.wait_idle();  // epoch barrier: the next epoch is a new fault world

    std::vector<std::uint64_t> latencies;
    latencies.reserve(per_epoch);
    for (std::size_t i = 0; i < per_epoch; ++i) {
      const Slot& slot = slots[base + i];
      if (slot.state.load(std::memory_order_acquire) != SlotState::kCompleted) {
        continue;
      }
      switch (slot.outcome) {
        case query::RouteOutcome::kOk: ++row.ok; break;
        case query::RouteOutcome::kShed: ++row.shed; break;
        case query::RouteOutcome::kTimedOut: ++row.timed_out; break;
        case query::RouteOutcome::kInvalid: break;  // soak never sends these
      }
      if (slot.disconnected) ++row.disconnected;
      latencies.push_back(static_cast<std::uint64_t>(slot.micros));
      report.max_overrun_us = std::max(report.max_overrun_us, slot.overrun_us);
    }
    if (!latencies.empty()) {
      std::sort(latencies.begin(), latencies.end());
      row.p50_us = static_cast<double>(percentile(latencies, 0.5));
      row.p99_us = static_cast<double>(percentile(latencies, 0.99));
      row.max_us = static_cast<double>(latencies.back());
    }
    report.epochs.push_back(row);
  }

  // Aggregates + the recovery split.
  double faulted_sum = 0.0, healed_sum = 0.0;
  std::size_t faulted_epochs = 0, healed_epochs = 0;
  for (const SoakEpoch& row : report.epochs) {
    report.offered += row.offered;
    report.door_shed += row.door_shed;
    report.ok += row.ok;
    report.shed += row.shed;
    report.timed_out += row.timed_out;
    report.disconnected += row.disconnected;
    if (row.faults_active > 0) {
      faulted_sum += row.ok_rate();
      ++faulted_epochs;
    } else {
      healed_sum += row.ok_rate();
      ++healed_epochs;
    }
  }
  for (const Slot& slot : slots) {
    const SlotState state = slot.state.load(std::memory_order_acquire);
    if (state == SlotState::kCompleted) ++report.completed;
    if (state == SlotState::kPending) ++report.stuck;
  }
  if (faulted_epochs > 0) {
    report.faulted_ok_rate = faulted_sum / static_cast<double>(faulted_epochs);
  }
  if (healed_epochs > 0) {
    report.healed_ok_rate = healed_sum / static_cast<double>(healed_epochs);
  }

  const query::ServiceStats stats = service.stats();
  report.breaker_trips = stats.breaker_trips;
  report.breaker_short_circuits = stats.breaker_short_circuits;
  report.wall_seconds = wall.seconds();
  return report;
}

namespace {

std::vector<std::string> epoch_cells(const SoakEpoch& row) {
  return {std::to_string(row.epoch),
          std::to_string(row.faults_active),
          std::to_string(row.offered),
          std::to_string(row.door_shed),
          std::to_string(row.ok),
          std::to_string(row.shed),
          std::to_string(row.timed_out),
          std::to_string(row.disconnected),
          std::to_string(row.p50_us),
          std::to_string(row.p99_us),
          std::to_string(row.max_us)};
}

void epoch_json(core::JsonWriter& json, const SoakEpoch& row) {
  json.begin_object();
  json.key("epoch").value(row.epoch);
  json.key("faults_active").value(std::uint64_t{row.faults_active});
  json.key("offered").value(std::uint64_t{row.offered});
  json.key("door_shed").value(std::uint64_t{row.door_shed});
  json.key("ok").value(std::uint64_t{row.ok});
  json.key("shed").value(std::uint64_t{row.shed});
  json.key("timed_out").value(std::uint64_t{row.timed_out});
  json.key("disconnected").value(std::uint64_t{row.disconnected});
  json.key("p50_us").value(row.p50_us);
  json.key("p99_us").value(row.p99_us);
  json.key("max_us").value(row.max_us);
  json.end_object();
}

}  // namespace

std::string SoakReport::to_csv() const {
  std::string out = core::csv_row({"epoch", "faults", "offered", "door_shed",
                                   "ok", "shed", "timed_out", "disconnected",
                                   "p50_us", "p99_us", "max_us"});
  for (const SoakEpoch& row : epochs) {
    out += '\n';
    out += core::csv_row(epoch_cells(row));
  }
  out += '\n';
  out += core::csv_row({"total", "", std::to_string(offered),
                        std::to_string(door_shed), std::to_string(ok),
                        std::to_string(shed), std::to_string(timed_out),
                        std::to_string(disconnected), "", "",
                        std::to_string(max_overrun_us)});
  return out;
}

std::string SoakReport::to_json() const {
  core::JsonWriter json;
  json.begin_object();
  json.key("config").begin_object();
  json.key("m").value(static_cast<std::uint64_t>(config.m));
  json.key("epochs").value(std::uint64_t{config.epochs});
  json.key("queries_per_epoch").value(std::uint64_t{config.queries_per_epoch});
  json.key("hostile_per_epoch").value(std::uint64_t{config.hostile_per_epoch});
  json.key("workers").value(std::uint64_t{config.workers});
  json.key("max_queued").value(std::uint64_t{config.max_queued});
  json.key("closed_loop").value(config.closed_loop);
  json.key("deadline_us").value(config.deadline_us);
  json.key("fault_rate").value(config.fault_rate);
  json.key("faults_per_burst").value(std::uint64_t{config.faults_per_burst});
  json.key("repair_after").value(config.repair_after);
  json.key("seed").value(config.seed);
  json.key("admission_policy")
      .value(query::to_string(config.admission.policy));
  json.key("max_in_flight").value(std::uint64_t{config.admission.max_in_flight});
  json.key("breaker_threshold")
      .value(std::uint64_t{config.admission.breaker_threshold});
  json.end_object();
  json.key("epochs").begin_array();
  for (const SoakEpoch& row : epochs) epoch_json(json, row);
  json.end_array();
  json.key("offered").value(std::uint64_t{offered});
  json.key("completed").value(std::uint64_t{completed});
  json.key("door_shed").value(std::uint64_t{door_shed});
  json.key("ok").value(std::uint64_t{ok});
  json.key("shed").value(std::uint64_t{shed});
  json.key("timed_out").value(std::uint64_t{timed_out});
  json.key("disconnected").value(std::uint64_t{disconnected});
  json.key("stuck").value(std::uint64_t{stuck});
  json.key("max_overrun_us").value(max_overrun_us);
  json.key("breaker_trips").value(breaker_trips);
  json.key("breaker_short_circuits").value(breaker_short_circuits);
  json.key("faulted_ok_rate").value(faulted_ok_rate);
  json.key("healed_ok_rate").value(healed_ok_rate);
  json.key("goodput_qps").value(goodput_qps());
  json.key("wall_seconds").value(wall_seconds);
  json.end_object();
  return json.str();
}

void SoakReport::print(std::ostream& os) const {
  util::Table table{{"epoch", "faults", "offered", "door-shed", "ok", "shed",
                     "timed-out", "disc", "p50us", "p99us", "maxus"}};
  for (const SoakEpoch& row : epochs) {
    table.row()
        .add(row.epoch)
        .add(std::uint64_t{row.faults_active})
        .add(std::uint64_t{row.offered})
        .add(std::uint64_t{row.door_shed})
        .add(std::uint64_t{row.ok})
        .add(std::uint64_t{row.shed})
        .add(std::uint64_t{row.timed_out})
        .add(std::uint64_t{row.disconnected})
        .add(row.p50_us, 1)
        .add(row.p99_us, 1)
        .add(row.max_us, 1);
  }
  table.print(os, "soak: per-epoch outcome mix");
  os << "offered " << offered << ", completed " << completed << ", door-shed "
     << door_shed << ", stuck " << stuck << '\n'
     << "ok " << ok << ", shed " << shed << ", timed-out " << timed_out
     << ", disconnected " << disconnected << '\n'
     << "max deadline overrun " << max_overrun_us << " us\n"
     << "breaker: " << breaker_trips << " trips, " << breaker_short_circuits
     << " short-circuits\n"
     << "ok-rate faulted " << faulted_ok_rate << " vs healed "
     << healed_ok_rate << " (recovery)\n"
     << "goodput " << goodput_qps() << " qps ("
     << (config.closed_loop ? "closed" : "open") << "-loop)\n"
     << "wall " << wall_seconds << " s\n";
}

}  // namespace hhc::sim
