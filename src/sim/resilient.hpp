// Resilient transfer protocols simulated on top of the packet network.
//
// Three end-to-end strategies for moving one message from s to t under
// node faults, all driven through the same simulator so their costs are
// directly comparable (Experiment F5):
//
//   serial-retry : send over the container paths one at a time; a lost
//                  attempt is detected after a timeout of 2 * path length
//                  (round-trip worth of silence), then the next disjoint
//                  path is tried. No erasure coding; worst case pays for
//                  every blocked path before succeeding.
//   dispersal    : all m+1 fragments at once; completes when any m arrive.
//   flooding     : the full message duplicated over every path; completes
//                  when the first copy arrives. Fastest, m+1x bandwidth.
//   backoff      : serial retry with exponentially growing timeouts,
//                  cycling through the container paths. Built for
//                  *transient* faults (core::FaultModel windows): where
//                  serial-retry gives up after m+1 permanently blocked
//                  attempts, backoff keeps waiting — a later pass over an
//                  already-tried path succeeds once the outage is repaired.
//
// Each strategy comes in two flavors: the original free function that builds
// its container directly, and an overload taking a query::PathService — the
// unified routing entry point — so repeated transfers between translated
// pairs hit the service's sharded cache instead of re-running the
// construction per message. Both produce identical outcomes (asserted by
// tests); the service flavor is what a long-running deployment should use.
#pragma once

#include <cstdint>

#include "core/fault_model.hpp"
#include "core/fault_routing.hpp"
#include "core/topology.hpp"
#include "query/path_service.hpp"

namespace hhc::sim {

struct TransferOutcome {
  bool delivered = false;
  std::uint64_t completion_cycles = 0;  // cycles until usable at the sink
  std::size_t attempts = 0;             // paths tried (serial) / sent (others)
  std::size_t wasted_transmissions = 0; // hops traversed by lost packets
};

/// Serial retry over the disjoint container, with per-attempt timeout
/// 2 * (path length) cycles charged for every failed attempt.
[[nodiscard]] TransferOutcome serial_retry_transfer(
    const core::HhcTopology& net, core::Node s, core::Node t,
    const core::FaultSet& faults);

/// One-shot dispersal: m+1 fragments in parallel; done when m arrive.
[[nodiscard]] TransferOutcome dispersal_transfer(const core::HhcTopology& net,
                                                 core::Node s, core::Node t,
                                                 const core::FaultSet& faults);

/// Full duplication over all m+1 paths; done when the first copy arrives.
[[nodiscard]] TransferOutcome flooding_transfer(const core::HhcTopology& net,
                                                core::Node s, core::Node t,
                                                const core::FaultSet& faults);

/// Deterministic jitter for one backoff wait: maps `wait` into
/// [wait - wait/2, wait] by subtracting a uniform draw from `rng` (a
/// half-jitter; zero waits stay zero). Many senders backing off from the
/// same outage with distinct seeds desynchronize instead of retrying in
/// lockstep (the thundering herd), while a fixed seed pins the exact
/// attempt schedule — tests assert it cycle for cycle.
[[nodiscard]] std::uint64_t jittered_wait(std::uint64_t wait,
                                          util::Xoshiro256& rng);

/// Retry with exponential backoff over the container, round-robin: attempt
/// k uses path k mod (m+1) and, when lost, waits 2 * (path length) << k
/// cycles before the next attempt (the sender detects loss by silence; the
/// growing wait rides out transient outages). Stops after `max_attempts`.
/// `jitter_seed` != 0 applies jittered_wait() to every backoff interval
/// with an RNG seeded from it (one draw per lost attempt, so the schedule
/// is a pure function of the seed); 0 keeps the exact deterministic
/// schedule the un-jittered protocol always had.
[[nodiscard]] TransferOutcome backoff_retry_transfer(
    const core::HhcTopology& net, core::Node s, core::Node t,
    const core::FaultModel& faults, std::size_t max_attempts = 8,
    std::uint64_t jitter_seed = 0);

/// Service-routed flavors: the container comes from a pristine
/// service.answer() (cached, bit-identical), the packet simulation is
/// unchanged.
[[nodiscard]] TransferOutcome serial_retry_transfer(
    query::PathService& service, core::Node s, core::Node t,
    const core::FaultSet& faults);
[[nodiscard]] TransferOutcome dispersal_transfer(query::PathService& service,
                                                 core::Node s, core::Node t,
                                                 const core::FaultSet& faults);
[[nodiscard]] TransferOutcome flooding_transfer(query::PathService& service,
                                                core::Node s, core::Node t,
                                                const core::FaultSet& faults);
[[nodiscard]] TransferOutcome backoff_retry_transfer(
    query::PathService& service, core::Node s, core::Node t,
    const core::FaultModel& faults, std::size_t max_attempts = 8,
    std::uint64_t jitter_seed = 0);

}  // namespace hhc::sim
