// Synchronous packet-level network simulator over the HHC.
//
// Model: time advances in unit cycles; every directed link carries at most
// one packet per cycle; contention is resolved by packet id (older packet
// first, deterministic). Packets follow precomputed source routes, which is
// how both the paper-style disjoint-path transmission and the single-path
// baseline are exercised under identical conditions. A packet whose next
// hop is a faulty node is lost. This replaces the original evaluation
// testbed with a deterministic, machine-independent equivalent.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/fault_routing.hpp"
#include "core/topology.hpp"
#include "sim/stats.hpp"

namespace hhc::sim {

struct Packet {
  std::uint64_t id = 0;
  core::Path route;               // node sequence including both endpoints
  std::uint64_t inject_time = 0;  // cycle at which the packet enters
  std::size_t hop = 0;            // current index into route
  bool delivered = false;
  bool lost = false;
  std::uint64_t completion_time = 0;  // valid when delivered
};

struct SimReport {
  std::uint64_t cycles = 0;      // cycles simulated
  std::size_t delivered = 0;
  std::size_t lost = 0;
  std::size_t stranded = 0;      // still in flight when the horizon hit
  Summary latency;               // over delivered packets
};

class NetworkSimulator {
 public:
  explicit NetworkSimulator(const core::HhcTopology& net) : net_{net} {}

  /// Marks nodes faulty from cycle 0; packets routed into them are lost.
  void set_faults(const core::FaultSet& faults);

  /// Schedules `node` to fail at the start of `time`: packets attempting
  /// to enter it from that cycle on are lost, earlier traffic passes.
  void schedule_fault(core::Node node, std::uint64_t time);

  /// Queues a packet with a precomputed route (validated against the
  /// topology); returns its id. Routes of length 0 deliver instantly.
  std::uint64_t inject(core::Path route, std::uint64_t time);

  /// Runs until all packets retire or `max_cycles` elapse.
  SimReport run(std::uint64_t max_cycles = 1u << 20);

  [[nodiscard]] const std::vector<Packet>& packets() const noexcept {
    return packets_;
  }

 private:
  [[nodiscard]] bool is_faulty_at(core::Node v, std::uint64_t cycle) const;

  core::HhcTopology net_;
  std::unordered_set<core::Node> faulty_;
  std::unordered_map<core::Node, std::uint64_t> scheduled_faults_;
  std::vector<Packet> packets_;
};

}  // namespace hhc::sim
