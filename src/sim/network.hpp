// Synchronous packet-level network simulator over the HHC.
//
// Model: time advances in unit cycles; every directed link carries at most
// one packet per cycle; contention is resolved by packet id (older packet
// first, deterministic). Packets follow precomputed source routes, which is
// how both the paper-style disjoint-path transmission and the single-path
// baseline are exercised under identical conditions. A packet whose next
// hop is a faulty node — or whose next link is down — is lost. Faults come
// from a core::FaultModel, so nodes *and* links can fail at a scheduled
// cycle and be repaired at a later one; traffic injected after the repair
// passes. This replaces the original evaluation testbed with a
// deterministic, machine-independent equivalent.
#pragma once

#include <cstdint>
#include <vector>

#include "core/fault_model.hpp"
#include "core/fault_routing.hpp"
#include "core/topology.hpp"
#include "sim/stats.hpp"

namespace hhc::sim {

struct Packet {
  std::uint64_t id = 0;
  core::Path route;               // node sequence including both endpoints
  std::uint64_t inject_time = 0;  // cycle at which the packet enters
  std::size_t hop = 0;            // current index into route
  bool delivered = false;
  bool lost = false;
  std::uint64_t completion_time = 0;  // valid when delivered
};

struct SimReport {
  std::uint64_t cycles = 0;      // cycles simulated
  std::size_t delivered = 0;
  std::size_t lost = 0;
  std::size_t stranded = 0;      // still in flight when the horizon hit
  Summary latency;               // over delivered packets
};

class NetworkSimulator {
 public:
  explicit NetworkSimulator(const core::HhcTopology& net) : net_{net} {}

  /// Marks nodes faulty from cycle 0; packets routed into them are lost.
  void set_faults(const core::FaultSet& faults);

  /// Replaces the fault state with a full model (node + link + transient).
  void set_fault_model(core::FaultModel model);

  /// Schedules `node` to fail at the start of `time` and come back at
  /// `repair` (never, by default): packets attempting to enter it during
  /// the outage are lost; traffic before and after passes.
  void schedule_fault(core::Node node, std::uint64_t time,
                      std::uint64_t repair = core::kNeverRepaired);

  /// Link outage during [time, repair) (repair defaults to never): packets
  /// crossing {u, v} in that window are lost, both endpoints stay usable.
  void schedule_link_fault(core::Node u, core::Node v, std::uint64_t time = 0,
                           std::uint64_t repair = core::kNeverRepaired);

  /// Queues a packet with a precomputed route (validated against the
  /// topology); returns its id. Routes of length 0 deliver instantly.
  std::uint64_t inject(core::Path route, std::uint64_t time);

  /// Runs until all packets retire or `max_cycles` elapse.
  SimReport run(std::uint64_t max_cycles = 1u << 20);

  [[nodiscard]] const std::vector<Packet>& packets() const noexcept {
    return packets_;
  }

 private:
  // Held by reference like every other consumer of the topology; the
  // caller keeps the HhcTopology alive for the simulator's lifetime.
  const core::HhcTopology& net_;
  core::FaultModel faults_;
  std::vector<Packet> packets_;
};

}  // namespace hhc::sim
