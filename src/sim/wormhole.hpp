// Wormhole-switched network simulator with virtual channels.
//
// The store-and-forward model (network.hpp) charges a full packet per hop;
// real interconnects pipeline flits through the network, so a blocked
// packet holds a *chain* of channels — which is where both wormhole's
// latency advantage and its deadlock risk come from. This simulator models
// the classic abstraction:
//
//   * every directed link carries V virtual channels (VCs), each owned by
//     at most one worm at a time;
//   * a worm of L flits spans up to L consecutive channels; its head
//     advances one channel per cycle when any VC of the next link is free
//     (adaptive lowest-free-VC selection), the tail follows L cycles
//     behind, releasing channels as it passes;
//   * contention resolves deterministically by packet id.
//
// Source routes come from the same constructive algorithms as everywhere
// else. With V = 1 cyclic channel dependencies can (and in the tests,
// provably do) deadlock; the simulator detects global stalls and reports
// the deadlocked worms instead of hanging — making "deadlock frequency vs
// VC count" a measurable quantity (Experiment F8).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/topology.hpp"
#include "sim/stats.hpp"

namespace hhc::sim {

struct WormholeConfig {
  unsigned virtual_channels = 2;   // V >= 1, <= 16
  std::size_t packet_length = 4;   // L flits per packet, >= 1
  std::uint64_t max_cycles = 1u << 20;
  std::uint64_t stall_threshold = 4096;  // cycles without progress => deadlock
};

struct Worm {
  std::uint64_t id = 0;
  core::Path route;
  std::uint64_t inject_time = 0;
  std::size_t head = 0;                 // index into route of the head node
  std::deque<std::uint64_t> held;       // channel keys, oldest first
  bool injected = false;
  bool delivered = false;
  bool deadlocked = false;
  std::uint64_t completion_time = 0;
  std::uint64_t blocked_cycles = 0;
};

struct WormholeReport {
  std::size_t delivered = 0;
  std::size_t deadlocked = 0;
  std::size_t stranded = 0;   // horizon hit while still moving
  bool deadlock_detected = false;
  std::uint64_t cycles = 0;
  Summary latency;            // over delivered worms
  double mean_blocked_cycles = 0.0;
};

class WormholeSimulator {
 public:
  WormholeSimulator(const core::HhcTopology& net, WormholeConfig config);

  /// Queues a worm with a precomputed route; returns its id.
  std::uint64_t inject(core::Path route, std::uint64_t time);

  /// Runs to completion, horizon, or detected deadlock.
  WormholeReport run();

  [[nodiscard]] const std::vector<Worm>& worms() const noexcept {
    return worms_;
  }

 private:
  [[nodiscard]] std::uint64_t channel_key(core::Node from, core::Node to,
                                          unsigned vc) const;

  core::HhcTopology net_;
  WormholeConfig config_;
  std::vector<Worm> worms_;
  std::unordered_map<std::uint64_t, std::uint64_t> channel_owner_;
};

}  // namespace hhc::sim
