#include "sim/resilient.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/disjoint.hpp"
#include "sim/network.hpp"

namespace hhc::sim {

namespace {

// Runs one packet over `path` under `faults`; returns (delivered, cycles
// in flight or hops covered before loss).
std::pair<bool, std::uint64_t> run_single(const core::HhcTopology& net,
                                          const core::Path& path,
                                          const core::FaultSet& faults) {
  NetworkSimulator simulator{net};
  simulator.set_faults(faults);
  simulator.inject(path, 0);
  const auto report = simulator.run();
  if (report.delivered == 1) return {true, report.latency.max};
  // Lost: hops covered before the faulty node.
  return {false, simulator.packets()[0].hop};
}

// The service answers in the unified RouteResult shape; the transfer
// machinery below wants the plain container.
core::DisjointPathSet container_via(query::PathService& service, core::Node s,
                                    core::Node t) {
  auto result = service.answer(query::PairQuery{.s = s, .t = t});
  core::DisjointPathSet container;
  container.paths = std::move(result.paths);
  return container;
}

TransferOutcome serial_retry_impl(const core::HhcTopology& net,
                                  const core::DisjointPathSet& container,
                                  const core::FaultSet& faults) {
  TransferOutcome outcome;
  std::uint64_t clock = 0;
  for (const core::Path& path : container.paths) {
    ++outcome.attempts;
    const auto [ok, cycles_or_hops] = run_single(net, path, faults);
    if (ok) {
      outcome.delivered = true;
      outcome.completion_cycles = clock + cycles_or_hops;
      return outcome;
    }
    outcome.wasted_transmissions += cycles_or_hops;
    // The sender only learns of the loss by silence: charge a round-trip
    // worth of timeout before the next attempt.
    clock += 2 * (path.size() - 1);
  }
  outcome.completion_cycles = clock;
  return outcome;
}

TransferOutcome backoff_retry_impl(const core::HhcTopology& net,
                                   const core::DisjointPathSet& container,
                                   const core::FaultModel& faults,
                                   std::size_t max_attempts,
                                   std::uint64_t jitter_seed) {
  TransferOutcome outcome;
  util::Xoshiro256 jitter_rng{jitter_seed};
  std::uint64_t clock = 0;
  for (std::size_t k = 0; k < max_attempts; ++k) {
    const core::Path& path = container.paths[k % container.paths.size()];
    ++outcome.attempts;
    NetworkSimulator simulator{net};
    simulator.set_fault_model(faults);
    simulator.inject(path, clock);
    const auto report = simulator.run();
    if (report.delivered == 1) {
      outcome.delivered = true;
      outcome.completion_cycles = simulator.packets()[0].completion_time;
      return outcome;
    }
    outcome.wasted_transmissions += simulator.packets()[0].hop;
    // Loss is detected by a round-trip of silence; the wait doubles every
    // attempt so repeated losses back off instead of hammering an outage.
    // With a jitter seed, each wait is shortened by a seeded random slice
    // so a fleet of senders spreads its retries out (one draw per loss
    // keeps the whole schedule a pure function of the seed).
    const std::uint64_t round_trip = 2 * (path.size() - 1);
    std::uint64_t wait = round_trip << std::min<std::size_t>(k, 32);
    if (jitter_seed != 0) wait = jittered_wait(wait, jitter_rng);
    clock += wait;
  }
  outcome.completion_cycles = clock;
  return outcome;
}

TransferOutcome dispersal_impl(const core::HhcTopology& net,
                               const core::DisjointPathSet& container,
                               const core::FaultSet& faults) {
  NetworkSimulator simulator{net};
  simulator.set_faults(faults);
  for (const auto& path : container.paths) simulator.inject(path, 0);
  simulator.run();

  TransferOutcome outcome;
  outcome.attempts = container.paths.size();
  std::vector<std::uint64_t> arrivals;
  for (const auto& p : simulator.packets()) {
    if (p.delivered) {
      arrivals.push_back(p.completion_time - p.inject_time);
    } else {
      outcome.wasted_transmissions += p.hop;
    }
  }
  const unsigned needed = net.m();  // any m of m+1 fragments reconstruct
  if (arrivals.size() >= needed) {
    std::sort(arrivals.begin(), arrivals.end());
    outcome.delivered = true;
    outcome.completion_cycles = arrivals[needed - 1];
  }
  return outcome;
}

TransferOutcome flooding_impl(const core::HhcTopology& net,
                              const core::DisjointPathSet& container,
                              const core::FaultSet& faults) {
  NetworkSimulator simulator{net};
  simulator.set_faults(faults);
  for (const auto& path : container.paths) simulator.inject(path, 0);
  simulator.run();

  TransferOutcome outcome;
  outcome.attempts = container.paths.size();
  std::uint64_t best = 0;
  bool any = false;
  for (const auto& p : simulator.packets()) {
    if (p.delivered) {
      const std::uint64_t latency = p.completion_time - p.inject_time;
      if (!any || latency < best) best = latency;
      any = true;
      // Every copy beyond the first is overhead by definition.
      outcome.wasted_transmissions += p.route.size() - 1;
    } else {
      outcome.wasted_transmissions += p.hop;
    }
  }
  if (any) {
    outcome.delivered = true;
    outcome.completion_cycles = best;
    // The winning copy's hops are useful work, not waste.
    outcome.wasted_transmissions -= best;
  }
  return outcome;
}

}  // namespace

TransferOutcome serial_retry_transfer(const core::HhcTopology& net,
                                      core::Node s, core::Node t,
                                      const core::FaultSet& faults) {
  return serial_retry_impl(net, core::node_disjoint_paths(net, s, t), faults);
}

TransferOutcome serial_retry_transfer(query::PathService& service, core::Node s,
                                      core::Node t,
                                      const core::FaultSet& faults) {
  return serial_retry_impl(service.net(), container_via(service, s, t), faults);
}

std::uint64_t jittered_wait(std::uint64_t wait, util::Xoshiro256& rng) {
  if (wait == 0) return 0;
  return wait - rng.below(wait / 2 + 1);
}

TransferOutcome backoff_retry_transfer(const core::HhcTopology& net,
                                       core::Node s, core::Node t,
                                       const core::FaultModel& faults,
                                       std::size_t max_attempts,
                                       std::uint64_t jitter_seed) {
  return backoff_retry_impl(net, core::node_disjoint_paths(net, s, t), faults,
                            max_attempts, jitter_seed);
}

TransferOutcome backoff_retry_transfer(query::PathService& service,
                                       core::Node s, core::Node t,
                                       const core::FaultModel& faults,
                                       std::size_t max_attempts,
                                       std::uint64_t jitter_seed) {
  return backoff_retry_impl(service.net(), container_via(service, s, t), faults,
                            max_attempts, jitter_seed);
}

TransferOutcome dispersal_transfer(const core::HhcTopology& net, core::Node s,
                                   core::Node t,
                                   const core::FaultSet& faults) {
  return dispersal_impl(net, core::node_disjoint_paths(net, s, t), faults);
}

TransferOutcome dispersal_transfer(query::PathService& service, core::Node s,
                                   core::Node t,
                                   const core::FaultSet& faults) {
  return dispersal_impl(service.net(), container_via(service, s, t), faults);
}

TransferOutcome flooding_transfer(const core::HhcTopology& net, core::Node s,
                                  core::Node t, const core::FaultSet& faults) {
  return flooding_impl(net, core::node_disjoint_paths(net, s, t), faults);
}

TransferOutcome flooding_transfer(query::PathService& service, core::Node s,
                                  core::Node t, const core::FaultSet& faults) {
  return flooding_impl(service.net(), container_via(service, s, t), faults);
}

}  // namespace hhc::sim
