// Workload generators for the simulator experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "core/topology.hpp"

namespace hhc::sim {

struct Flow {
  core::Node s = 0;
  core::Node t = 0;
  std::uint64_t inject_time = 0;
};

/// `count` flows with independently uniform endpoints (s != t), injection
/// times uniform in [0, horizon].
[[nodiscard]] std::vector<Flow> uniform_random_traffic(
    const core::HhcTopology& net, std::size_t count, std::uint64_t horizon,
    std::uint64_t seed);

/// A random partial permutation: `count` distinct sources mapped to `count`
/// distinct targets (no fixed points), all injected at time 0. Requires
/// 2 * count <= node_count.
[[nodiscard]] std::vector<Flow> permutation_traffic(
    const core::HhcTopology& net, std::size_t count, std::uint64_t seed);

/// `count` flows from random sources to one hot-spot target.
[[nodiscard]] std::vector<Flow> hotspot_traffic(const core::HhcTopology& net,
                                                std::size_t count,
                                                core::Node target,
                                                std::uint64_t seed);

}  // namespace hhc::sim
