// Small summary-statistics helpers for simulator and benchmark output.
#pragma once

#include <cstdint>
#include <vector>

namespace hhc::sim {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  std::uint64_t min = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t max = 0;
};

/// q in [0, 1]; `sorted` must be ascending and nonempty.
[[nodiscard]] std::uint64_t percentile(const std::vector<std::uint64_t>& sorted,
                                       double q);

/// Sorts a copy of `values` and computes the summary (zeros when empty).
[[nodiscard]] Summary summarize(std::vector<std::uint64_t> values);

}  // namespace hhc::sim
