#include "sim/traffic.hpp"

#include <stdexcept>
#include <unordered_set>

#include "util/rng.hpp"

namespace hhc::sim {

std::vector<Flow> uniform_random_traffic(const core::HhcTopology& net,
                                         std::size_t count,
                                         std::uint64_t horizon,
                                         std::uint64_t seed) {
  util::Xoshiro256 rng{seed};
  std::vector<Flow> flows;
  flows.reserve(count);
  while (flows.size() < count) {
    const core::Node s = rng.below(net.node_count());
    const core::Node t = rng.below(net.node_count());
    if (s == t) continue;
    flows.push_back({s, t, horizon == 0 ? 0 : rng.below(horizon + 1)});
  }
  return flows;
}

std::vector<Flow> permutation_traffic(const core::HhcTopology& net,
                                      std::size_t count, std::uint64_t seed) {
  if (2 * count > net.node_count()) {
    throw std::invalid_argument("permutation_traffic: too many flows");
  }
  util::Xoshiro256 rng{seed};
  std::unordered_set<core::Node> used;
  const auto fresh = [&]() {
    for (;;) {
      const core::Node v = rng.below(net.node_count());
      if (used.insert(v).second) return v;
    }
  };
  std::vector<Flow> flows;
  flows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const core::Node s = fresh();
    const core::Node t = fresh();
    flows.push_back({s, t, 0});
  }
  return flows;
}

std::vector<Flow> hotspot_traffic(const core::HhcTopology& net,
                                  std::size_t count, core::Node target,
                                  std::uint64_t seed) {
  if (!net.contains(target)) {
    throw std::invalid_argument("hotspot_traffic: target out of range");
  }
  util::Xoshiro256 rng{seed};
  std::vector<Flow> flows;
  flows.reserve(count);
  while (flows.size() < count) {
    const core::Node s = rng.below(net.node_count());
    if (s == target) continue;
    flows.push_back({s, target, 0});
  }
  return flows;
}

}  // namespace hhc::sim
