#include "sim/network.hpp"

#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/routing.hpp"
#include "obs/stages.hpp"
#include "obs/trace.hpp"
#include "util/bitops.hpp"

namespace hhc::sim {

void NetworkSimulator::set_faults(const core::FaultSet& faults) {
  faults_ = core::FaultModel{faults};
}

void NetworkSimulator::set_fault_model(core::FaultModel model) {
  faults_ = std::move(model);
}

void NetworkSimulator::schedule_fault(core::Node node, std::uint64_t time,
                                      std::uint64_t repair) {
  if (!net_.contains(node)) {
    throw std::invalid_argument("schedule_fault: node out of range");
  }
  faults_.fail_node(node, time, repair);
}

void NetworkSimulator::schedule_link_fault(core::Node u, core::Node v,
                                           std::uint64_t time,
                                           std::uint64_t repair) {
  if (!net_.is_edge(u, v)) {
    throw std::invalid_argument("schedule_link_fault: not an HHC edge");
  }
  faults_.fail_link(u, v, time, repair);
}

std::uint64_t NetworkSimulator::inject(core::Path route, std::uint64_t time) {
  if (route.empty()) {
    throw std::invalid_argument("NetworkSimulator::inject: empty route");
  }
  if (!core::is_valid_path(net_, route, route.front(), route.back())) {
    throw std::invalid_argument("NetworkSimulator::inject: invalid route");
  }
  Packet p;
  p.id = packets_.size();
  p.route = std::move(route);
  p.inject_time = time;
  packets_.push_back(std::move(p));
  return packets_.back().id;
}

SimReport NetworkSimulator::run(std::uint64_t max_cycles) {
  static obs::Histogram& run_hist = obs::stage_histogram(obs::stages::kSimRun);
  obs::TraceSpan trace_span{obs::stages::kSimRun, &run_hist};
  // Directed link key encoded as (from, output port): port = internal
  // dimension for cluster edges, m for the external edge. Exact and
  // collision-free for every m (from * (m+1) + port < 2^37 * 6 < 2^40).
  const unsigned ports = net_.m() + 1;
  const auto link_key = [&](core::Node from, core::Node to) {
    const unsigned port =
        net_.cluster_of(from) == net_.cluster_of(to)
            ? bits::lowest_set(net_.position_of(from) ^ net_.position_of(to))
            : net_.m();
    return from * ports + port;
  };

  std::size_t retired = 0;
  std::vector<std::uint64_t> latencies;
  std::size_t lost = 0;

  // Retire packets that are dead on arrival (faulty source or s == t).
  for (Packet& p : packets_) {
    if (faults_.node_faulty_at(p.route.front(), p.inject_time)) {
      p.lost = true;
      ++lost;
      ++retired;
    } else if (p.route.size() == 1) {
      p.delivered = true;
      p.completion_time = p.inject_time;
      latencies.push_back(0);
      ++retired;
    }
  }

  std::uint64_t cycle = 0;
  for (; retired < packets_.size() && cycle < max_cycles; ++cycle) {
    std::unordered_map<std::uint64_t, std::uint64_t> link_taken;
    for (Packet& p : packets_) {
      if (p.delivered || p.lost || p.inject_time > cycle) continue;
      const core::Node cur = p.route[p.hop];
      const core::Node next = p.route[p.hop + 1];
      if (faults_.node_faulty_at(next, cycle) ||
          faults_.link_faulty_at(cur, next, cycle)) {
        p.lost = true;
        ++lost;
        ++retired;
        continue;
      }
      const auto [it, granted] = link_taken.emplace(link_key(cur, next), p.id);
      if (!granted) continue;  // link busy this cycle; wait
      ++p.hop;
      if (p.hop + 1 == p.route.size()) {
        p.delivered = true;
        p.completion_time = cycle + 1;
        latencies.push_back(p.completion_time - p.inject_time);
        ++retired;
      }
    }
  }

  SimReport report;
  report.cycles = cycle;
  report.lost = lost;
  report.delivered = latencies.size();
  report.stranded = packets_.size() - retired;
  report.latency = summarize(std::move(latencies));
  return report;
}

}  // namespace hhc::sim
