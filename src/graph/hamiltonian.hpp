// Hamiltonian-cycle search by pruned backtracking.
//
// Ring embedding is the classic "processor farm" property every topology
// paper tabulates. General Hamiltonicity is NP-complete, so this is an
// exact search with degree-based pruning intended for the small instances
// where the question is decidable in practice (the HHC at m <= 2, Q_n and
// FQ_n up to a few hundred vertices) — with an explicit step budget so
// callers get "unknown" instead of an unbounded stall.
#pragma once

#include <cstdint>
#include <optional>

#include "graph/adjacency_list.hpp"
#include "graph/types.hpp"

namespace hhc::graph {

/// Outcome of a bounded search.
enum class HamiltonianStatus {
  kFound,       // cycle returned
  kNone,        // exhaustively proven absent
  kExhausted,   // step budget hit before an answer
};

struct HamiltonianResult {
  HamiltonianStatus status = HamiltonianStatus::kExhausted;
  VertexPath cycle;  // closed: front() == back(); empty unless kFound
};

/// Searches for a Hamiltonian cycle; `max_steps` bounds backtracking node
/// expansions (0 = unlimited). Requires a nonempty graph.
[[nodiscard]] HamiltonianResult find_hamiltonian_cycle(
    const AdjacencyList& g, std::uint64_t max_steps = 50'000'000);

/// True iff `cycle` is a closed walk visiting every vertex exactly once.
[[nodiscard]] bool is_hamiltonian_cycle(const AdjacencyList& g,
                                        const VertexPath& cycle);

}  // namespace hhc::graph
