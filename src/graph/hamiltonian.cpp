#include "graph/hamiltonian.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace hhc::graph {

namespace {

// Pruning invariant: with the current partial path, every unvisited vertex
// must keep >= 2 unvisited-or-endpoint neighbors available (a Hamiltonian
// cycle passes through each vertex), and the graph of unvisited vertices
// must stay connected to the current head. The connectivity check is the
// expensive one, so it runs only every few levels.
class Search {
 public:
  Search(const AdjacencyList& g, std::uint64_t max_steps)
      : g_{g}, max_steps_{max_steps}, visited_(g.vertex_count(), false) {}

  HamiltonianResult run() {
    HamiltonianResult result;
    if (g_.vertex_count() == 0) {
      throw std::invalid_argument("find_hamiltonian_cycle: empty graph");
    }
    if (g_.vertex_count() == 1 || g_.vertex_count() == 2) {
      // No simple cycle covers 1 or 2 vertices of a simple graph.
      result.status = HamiltonianStatus::kNone;
      return result;
    }
    path_.reserve(g_.vertex_count() + 1);
    path_.push_back(0);
    visited_[0] = true;
    const bool found = extend();
    if (found) {
      path_.push_back(0);
      result.status = HamiltonianStatus::kFound;
      result.cycle = path_;
    } else {
      result.status = exhausted_ ? HamiltonianStatus::kExhausted
                                 : HamiltonianStatus::kNone;
    }
    return result;
  }

 private:
  bool extend() {
    if (exhausted_) return false;
    if (++steps_ > max_steps_ && max_steps_ != 0) {
      exhausted_ = true;
      return false;
    }
    const Vertex v = path_.back();
    if (path_.size() == g_.vertex_count()) {
      return g_.has_edge(v, 0);  // close the cycle
    }
    // Order candidates by fewest remaining continuations (fail-first).
    std::vector<std::pair<std::size_t, Vertex>> candidates;
    for (const Vertex u : g_.neighbors(v)) {
      if (visited_[u]) continue;
      std::size_t free_degree = 0;
      for (const Vertex w : g_.neighbors(u)) {
        if (!visited_[w] || w == 0) ++free_degree;
      }
      // A vertex entered mid-path still needs an exit.
      if (free_degree == 0) return false;  // u would become a dead end
      candidates.emplace_back(free_degree, u);
    }
    std::sort(candidates.begin(), candidates.end());
    for (const auto& [free_degree, u] : candidates) {
      (void)free_degree;
      visited_[u] = true;
      path_.push_back(u);
      if (extend()) return true;
      path_.pop_back();
      visited_[u] = false;
      if (exhausted_) return false;
    }
    return false;
  }

  const AdjacencyList& g_;
  std::uint64_t max_steps_;
  std::uint64_t steps_ = 0;
  bool exhausted_ = false;
  std::vector<bool> visited_;
  VertexPath path_;
};

}  // namespace

HamiltonianResult find_hamiltonian_cycle(const AdjacencyList& g,
                                         std::uint64_t max_steps) {
  return Search{g, max_steps}.run();
}

bool is_hamiltonian_cycle(const AdjacencyList& g, const VertexPath& cycle) {
  if (g.vertex_count() < 3) return false;
  if (cycle.size() != g.vertex_count() + 1) return false;
  if (cycle.front() != cycle.back()) return false;
  std::vector<bool> seen(g.vertex_count(), false);
  for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
    const Vertex v = cycle[i];
    if (v >= g.vertex_count() || seen[v]) return false;
    seen[v] = true;
    if (!g.has_edge(v, cycle[i + 1])) return false;
  }
  return std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
}

}  // namespace hhc::graph
