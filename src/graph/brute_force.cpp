#include "graph/brute_force.hpp"

#include <algorithm>
#include <stdexcept>

namespace hhc::graph {

namespace {

// Interior-vertex occupancy of a path as a 64-bit mask (endpoints shared
// by every container member are excluded).
std::uint64_t interior_mask(const VertexPath& path) {
  std::uint64_t mask = 0;
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    mask |= std::uint64_t{1} << path[i];
  }
  return mask;
}

// Backtracking: can `remaining` pairwise interior-disjoint paths be chosen
// from paths[from..] (occupancy masks precomputed) avoiding `used`?
bool pick_disjoint(const std::vector<std::uint64_t>& masks, std::size_t from,
                   std::size_t remaining, std::uint64_t used) {
  if (remaining == 0) return true;
  if (masks.size() - from < remaining) return false;
  for (std::size_t i = from; i < masks.size(); ++i) {
    if ((masks[i] & used) != 0) continue;
    if (pick_disjoint(masks, i + 1, remaining - 1, used | masks[i])) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<VertexPath> enumerate_simple_paths(const AdjacencyList& g,
                                               Vertex s, Vertex t,
                                               std::size_t max_length) {
  if (g.vertex_count() > 64) {
    throw std::invalid_argument("enumerate_simple_paths: > 64 vertices");
  }
  if (s >= g.vertex_count() || t >= g.vertex_count() || s == t) {
    throw std::invalid_argument("enumerate_simple_paths: bad endpoints");
  }
  std::vector<VertexPath> result;
  VertexPath current{s};
  std::uint64_t visited = std::uint64_t{1} << s;

  const auto dfs = [&](auto&& self, Vertex v) -> void {
    if (current.size() > max_length + 1) return;
    if (v == t) {
      result.push_back(current);
      return;
    }
    if (current.size() == max_length + 1) return;
    for (const Vertex u : g.neighbors(v)) {
      if ((visited >> u) & 1) continue;
      visited |= std::uint64_t{1} << u;
      current.push_back(u);
      self(self, u);
      current.pop_back();
      visited &= ~(std::uint64_t{1} << u);
    }
  };
  dfs(dfs, s);

  std::sort(result.begin(), result.end(),
            [](const VertexPath& a, const VertexPath& b) {
              return a.size() != b.size() ? a.size() < b.size() : a < b;
            });
  return result;
}

std::optional<std::size_t> optimal_container_max_length(const AdjacencyList& g,
                                                        Vertex s, Vertex t,
                                                        std::size_t k,
                                                        std::size_t max_length) {
  const auto paths = enumerate_simple_paths(g, s, t, max_length);
  std::vector<std::uint64_t> masks;
  masks.reserve(paths.size());
  for (const auto& p : paths) masks.push_back(interior_mask(p));

  // Paths are sorted by length; grow the candidate prefix one length bound
  // at a time and test feasibility.
  for (std::size_t limit = 0; limit < paths.size(); ++limit) {
    if (limit + 1 < paths.size() &&
        paths[limit + 1].size() == paths[limit].size()) {
      continue;  // extend to the full length class before testing
    }
    const std::vector<std::uint64_t> prefix(masks.begin(),
                                            masks.begin() +
                                                static_cast<std::ptrdiff_t>(
                                                    limit + 1));
    if (pick_disjoint(prefix, 0, k, 0)) {
      return paths[limit].size() - 1;
    }
  }
  return std::nullopt;
}

}  // namespace hhc::graph
