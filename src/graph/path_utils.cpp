#include "graph/path_utils.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace hhc::graph {

CheckResult validate_simple_path(const AdjacencyList& g,
                                 const VertexPath& path) {
  if (path.empty()) return CheckResult::failure("empty path");
  std::unordered_set<Vertex> seen;
  for (const Vertex v : path) {
    if (v >= g.vertex_count()) {
      return CheckResult::failure("vertex out of range: " + std::to_string(v));
    }
    if (!seen.insert(v).second) {
      return CheckResult::failure("repeated vertex: " + std::to_string(v));
    }
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!g.has_edge(path[i], path[i + 1])) {
      return CheckResult::failure("non-edge " + std::to_string(path[i]) +
                                  " -- " + std::to_string(path[i + 1]));
    }
  }
  return CheckResult::success();
}

CheckResult validate_path_between(const AdjacencyList& g,
                                  const VertexPath& path, Vertex from,
                                  Vertex to) {
  if (auto r = validate_simple_path(g, path); !r) return r;
  if (path.front() != from) {
    return CheckResult::failure("path starts at " +
                                std::to_string(path.front()) + ", expected " +
                                std::to_string(from));
  }
  if (path.back() != to) {
    return CheckResult::failure("path ends at " + std::to_string(path.back()) +
                                ", expected " + std::to_string(to));
  }
  return CheckResult::success();
}

CheckResult validate_internally_disjoint(const AdjacencyList& g,
                                         std::span<const VertexPath> paths,
                                         std::span<const Vertex> shared) {
  const std::unordered_set<Vertex> allowed(shared.begin(), shared.end());
  std::unordered_map<Vertex, std::size_t> owner;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (auto r = validate_simple_path(g, paths[i]); !r) {
      return CheckResult::failure("path " + std::to_string(i) + ": " +
                                  r.reason);
    }
    for (const Vertex v : paths[i]) {
      if (allowed.count(v) > 0) continue;
      const auto [it, inserted] = owner.emplace(v, i);
      if (!inserted) {
        return CheckResult::failure(
            "vertex " + std::to_string(v) + " shared by paths " +
            std::to_string(it->second) + " and " + std::to_string(i));
      }
    }
  }
  return CheckResult::success();
}

}  // namespace hhc::graph
