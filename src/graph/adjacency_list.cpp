#include "graph/adjacency_list.hpp"

#include <algorithm>
#include <stdexcept>

namespace hhc::graph {

void AdjacencyList::add_edge(Vertex u, Vertex v) {
  if (u >= adj_.size() || v >= adj_.size()) {
    throw std::invalid_argument("add_edge: vertex out of range");
  }
  if (u == v) throw std::invalid_argument("add_edge: self-loop");
  if (has_edge(u, v)) throw std::invalid_argument("add_edge: duplicate edge");
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++edges_;
}

bool AdjacencyList::has_edge(Vertex u, Vertex v) const noexcept {
  if (u >= adj_.size() || v >= adj_.size()) return false;
  const auto& shorter = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const Vertex other = adj_[u].size() <= adj_[v].size() ? v : u;
  return std::find(shorter.begin(), shorter.end(), other) != shorter.end();
}

std::size_t AdjacencyList::min_degree() const noexcept {
  std::size_t best = adj_.empty() ? 0 : adj_[0].size();
  for (const auto& list : adj_) best = std::min(best, list.size());
  return best;
}

AdjacencyList AdjacencyList::from_implicit(
    std::size_t vertex_count,
    const std::function<std::vector<Vertex>(Vertex)>& neighbor_fn) {
  AdjacencyList g{vertex_count};
  for (Vertex v = 0; v < vertex_count; ++v) {
    for (Vertex u : neighbor_fn(v)) {
      if (u > v) g.add_edge(v, u);  // each undirected edge added once
    }
  }
  return g;
}

}  // namespace hhc::graph
