// Validation helpers for explicit-graph paths.
//
// Every algorithmic claim in this repository (valid paths, internal
// disjointness, endpoint correctness) is enforced by these checkers in the
// test suite rather than assumed.
#pragma once

#include <span>
#include <string>

#include "graph/adjacency_list.hpp"
#include "graph/types.hpp"

namespace hhc::graph {

/// Outcome of a validation check; `ok` with an empty reason on success.
struct CheckResult {
  bool ok = true;
  std::string reason;

  explicit operator bool() const noexcept { return ok; }
  static CheckResult failure(std::string why) { return {false, std::move(why)}; }
  static CheckResult success() { return {}; }
};

/// True path: nonempty, consecutive vertices adjacent, no repeated vertex.
[[nodiscard]] CheckResult validate_simple_path(const AdjacencyList& g,
                                               const VertexPath& path);

/// validate_simple_path plus endpoint equality.
[[nodiscard]] CheckResult validate_path_between(const AdjacencyList& g,
                                                const VertexPath& path,
                                                Vertex from, Vertex to);

/// All paths simple; pairwise vertex-disjoint except at shared endpoints
/// listed in `shared` (typically {s, t} for one-to-one, {s} for a fan).
[[nodiscard]] CheckResult validate_internally_disjoint(
    const AdjacencyList& g, std::span<const VertexPath> paths,
    std::span<const Vertex> shared);

}  // namespace hhc::graph
