// Exhaustive-search reference implementations for tiny graphs.
//
// The constructive algorithm upper-bounds the (m+1)-wide diameter; these
// routines compute the *optimal* container value exactly (minimum over all
// systems of k internally disjoint paths of the longest member) so the gap
// can be measured instead of guessed. Exponential by nature — vertices are
// limited to 64 so occupancy fits in one bitmask word.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "graph/adjacency_list.hpp"
#include "graph/types.hpp"

namespace hhc::graph {

/// Every simple s-t path with at most `max_length` edges, in nondecreasing
/// length order. DFS enumeration; graphs must have <= 64 vertices.
[[nodiscard]] std::vector<VertexPath> enumerate_simple_paths(
    const AdjacencyList& g, Vertex s, Vertex t, std::size_t max_length);

/// min over all systems of k internally vertex-disjoint s-t paths of the
/// longest member's length, or nullopt when no such system exists within
/// `max_length`. Exact; intended for graphs of at most ~16 vertices.
[[nodiscard]] std::optional<std::size_t> optimal_container_max_length(
    const AdjacencyList& g, Vertex s, Vertex t, std::size_t k,
    std::size_t max_length);

}  // namespace hhc::graph
