// Exact edge-disjoint path extraction (the relaxation of vertex
// disjointness): paths may share vertices but not edges.
//
// Included as the companion notion every disjoint-path paper discusses —
// for the HHC both connectivities coincide at m+1 (it is (m+1)-regular),
// which the test suite verifies via this independent computation.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/adjacency_list.hpp"
#include "graph/types.hpp"

namespace hhc::graph {

/// Maximum set of pairwise edge-disjoint s-t paths (s != t). Paths are
/// edge-simple but may repeat no vertex in practice only when forced; at
/// most `limit` paths are extracted.
[[nodiscard]] std::vector<VertexPath> max_edge_disjoint_paths(
    const AdjacencyList& g, Vertex s, Vertex t,
    std::size_t limit = static_cast<std::size_t>(-1));

/// lambda(s, t): the number of pairwise edge-disjoint s-t paths.
[[nodiscard]] std::size_t edge_connectivity_between(const AdjacencyList& g,
                                                    Vertex s, Vertex t);

/// All paths edge-simple and valid; no undirected edge used twice across
/// the whole set.
[[nodiscard]] bool paths_are_edge_disjoint(const AdjacencyList& g,
                                           const std::vector<VertexPath>& paths);

}  // namespace hhc::graph
