// Undirected simple graph stored as per-vertex neighbor lists.
//
// This is the workhorse for everything small and explicit: hypercube
// clusters (<= 32 vertices), BFS balls around endpoints, and the flow
// networks of the exact baseline. Edges are stored in both endpoint lists.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace hhc::graph {

class AdjacencyList {
 public:
  AdjacencyList() = default;
  explicit AdjacencyList(std::size_t vertex_count) : adj_(vertex_count) {}

  [[nodiscard]] std::size_t vertex_count() const noexcept { return adj_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

  /// Adds an undirected edge; both endpoints must be < vertex_count().
  /// Duplicate edges and self-loops are rejected with std::invalid_argument.
  void add_edge(Vertex u, Vertex v);

  /// True iff u and v are adjacent (linear scan of the shorter list).
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const noexcept;

  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const noexcept {
    return adj_[v];
  }

  [[nodiscard]] std::size_t degree(Vertex v) const noexcept {
    return adj_[v].size();
  }

  /// Minimum degree over all vertices (0 for the empty graph).
  [[nodiscard]] std::size_t min_degree() const noexcept;

  /// Builds a graph from an implicit neighbor function over `vertex_count`
  /// vertices: `neighbor_fn(v)` returns the neighbor list of v. Each edge
  /// must be reported from both endpoints.
  static AdjacencyList from_implicit(
      std::size_t vertex_count,
      const std::function<std::vector<Vertex>(Vertex)>& neighbor_fn);

 private:
  std::vector<std::vector<Vertex>> adj_;
  std::size_t edges_ = 0;
};

}  // namespace hhc::graph
