// Dinic's maximum-flow algorithm on a unit-ish capacity network.
//
// Used to (a) extract exact vertex-disjoint path sets via node splitting,
// (b) verify connectivity (Menger's theorem) as an independent check on the
// constructive algorithm. Capacities are small integers; the implementation
// is the classic level-graph + current-arc variant.
#pragma once

#include <cstdint>
#include <vector>

namespace hhc::graph {

class Dinic {
 public:
  explicit Dinic(std::size_t node_count);

  /// Drops all edges and re-dimensions the network to `node_count` nodes,
  /// REUSING the adjacency storage of previous runs (per-node edge vectors
  /// keep their capacity, and the node table never shrinks). A warm Dinic
  /// cycled through same-shaped problems performs no heap allocations —
  /// this is what lets the construction hot path run allocation-free.
  void reset(std::size_t node_count);

  /// Adds a directed edge u -> v with the given capacity.
  /// Returns the edge index (usable with flow_on() after max_flow()).
  std::size_t add_edge(std::uint32_t u, std::uint32_t v, std::int64_t capacity);

  /// Computes the maximum s -> t flow. May be called once per problem
  /// (i.e. once after construction or each reset()).
  std::int64_t max_flow(std::uint32_t s, std::uint32_t t);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_; }

  /// Flow pushed through the edge returned by add_edge().
  [[nodiscard]] std::int64_t flow_on(std::size_t edge_index) const;

  /// Cancels one unit of flow on each of two mutually opposite arcs that
  /// both carry flow (u->v and v->u modelling one undirected edge). No-op
  /// unless both carry positive flow. Used by undirected edge-disjoint
  /// decomposition, where such 2-cycles are meaningless.
  void cancel_opposite_unit(std::size_t edge_a, std::size_t edge_b);

  struct Edge {
    std::uint32_t to;
    std::size_t rev;        // index of the reverse edge in graph_[to]
    std::int64_t capacity;  // residual capacity
    bool is_forward;        // original direction (reverse edges carry flow)
  };

  /// Adjacency of residual edges for node v (forward and reverse entries).
  [[nodiscard]] const std::vector<Edge>& residual(std::uint32_t v) const {
    return graph_[v];
  }

 private:
  bool build_levels(std::uint32_t s, std::uint32_t t);
  std::int64_t augment(std::uint32_t v, std::uint32_t t, std::int64_t limit);

  std::size_t nodes_ = 0;                 // logical node count
  std::vector<std::vector<Edge>> graph_;  // size >= nodes_; extras stay warm
  std::vector<std::pair<std::uint32_t, std::size_t>> edge_handles_;
  std::vector<std::int32_t> level_;
  std::vector<std::size_t> next_arc_;
  std::vector<std::uint32_t> frontier_;   // reusable BFS queue
};

}  // namespace hhc::graph
