#include "graph/dinic.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hhc::graph {

Dinic::Dinic(std::size_t node_count)
    : nodes_{node_count}, graph_(node_count) {}

void Dinic::reset(std::size_t node_count) {
  // Never shrink the outer table: destroying an inner vector would free the
  // edge capacity a later, larger problem wants back.
  if (node_count > graph_.size()) graph_.resize(node_count);
  for (std::size_t v = 0; v < std::max(nodes_, node_count); ++v) {
    graph_[v].clear();
  }
  nodes_ = node_count;
  edge_handles_.clear();
}

std::size_t Dinic::add_edge(std::uint32_t u, std::uint32_t v,
                            std::int64_t capacity) {
  if (u >= nodes_ || v >= nodes_) {
    throw std::invalid_argument("Dinic::add_edge: node out of range");
  }
  if (capacity < 0) throw std::invalid_argument("Dinic::add_edge: negative cap");
  graph_[u].push_back(Edge{v, graph_[v].size(), capacity, true});
  graph_[v].push_back(Edge{u, graph_[u].size() - 1, 0, false});
  edge_handles_.emplace_back(u, graph_[u].size() - 1);
  return edge_handles_.size() - 1;
}

bool Dinic::build_levels(std::uint32_t s, std::uint32_t t) {
  level_.assign(nodes_, -1);
  frontier_.clear();
  level_[s] = 0;
  frontier_.push_back(s);
  for (std::size_t head = 0; head < frontier_.size(); ++head) {
    const std::uint32_t v = frontier_[head];
    for (const Edge& e : graph_[v]) {
      if (e.capacity > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        frontier_.push_back(e.to);
      }
    }
  }
  return level_[t] >= 0;
}

std::int64_t Dinic::augment(std::uint32_t v, std::uint32_t t,
                            std::int64_t limit) {
  if (v == t) return limit;
  for (std::size_t& i = next_arc_[v]; i < graph_[v].size(); ++i) {
    Edge& e = graph_[v][i];
    if (e.capacity <= 0 || level_[e.to] != level_[v] + 1) continue;
    const std::int64_t pushed =
        augment(e.to, t, std::min(limit, e.capacity));
    if (pushed > 0) {
      e.capacity -= pushed;
      graph_[e.to][e.rev].capacity += pushed;
      return pushed;
    }
  }
  return 0;
}

std::int64_t Dinic::max_flow(std::uint32_t s, std::uint32_t t) {
  if (s >= nodes_ || t >= nodes_) {
    throw std::invalid_argument("Dinic::max_flow: node out of range");
  }
  if (s == t) throw std::invalid_argument("Dinic::max_flow: s == t");
  std::int64_t total = 0;
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  while (build_levels(s, t)) {
    next_arc_.assign(nodes_, 0);
    while (const std::int64_t pushed = augment(s, t, kInf)) total += pushed;
  }
  return total;
}

std::int64_t Dinic::flow_on(std::size_t edge_index) const {
  const auto [u, slot] = edge_handles_.at(edge_index);
  const Edge& e = graph_[u][slot];
  // Flow equals the capacity accumulated on the reverse edge.
  return graph_[e.to][e.rev].capacity;
}

void Dinic::cancel_opposite_unit(std::size_t edge_a, std::size_t edge_b) {
  const auto [ua, slot_a] = edge_handles_.at(edge_a);
  const auto [ub, slot_b] = edge_handles_.at(edge_b);
  Edge& ea = graph_[ua][slot_a];
  Edge& eb = graph_[ub][slot_b];
  if (ea.to != ub || eb.to != ua) {
    throw std::invalid_argument("cancel_opposite_unit: arcs are not opposite");
  }
  if (graph_[ea.to][ea.rev].capacity <= 0 ||
      graph_[eb.to][eb.rev].capacity <= 0) {
    return;  // at least one carries no flow; nothing to cancel
  }
  ea.capacity += 1;
  graph_[ea.to][ea.rev].capacity -= 1;
  eb.capacity += 1;
  graph_[eb.to][eb.rev].capacity -= 1;
}

}  // namespace hhc::graph
