// Breadth-first search over explicit graphs: distances, shortest paths,
// eccentricities, and exact diameter (used to verify the topology's
// theoretical diameter and to measure wide diameters on small instances).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/adjacency_list.hpp"
#include "graph/types.hpp"

namespace hhc::graph {

/// Distances from `source` to every vertex; kUnreachable where disconnected.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const AdjacencyList& g,
                                                       Vertex source);

/// One shortest path source -> target (inclusive); empty if unreachable.
[[nodiscard]] VertexPath bfs_shortest_path(const AdjacencyList& g,
                                           Vertex source, Vertex target);

/// max_v dist(source, v); kUnreachable if the graph is disconnected.
[[nodiscard]] std::uint32_t eccentricity(const AdjacencyList& g, Vertex source);

/// Exact diameter by all-pairs BFS; kUnreachable if disconnected.
/// O(V * (V + E)) — intended for instances up to a few thousand vertices.
[[nodiscard]] std::uint32_t diameter(const AdjacencyList& g);

/// True iff every vertex is reachable from vertex 0 (or the graph is empty).
[[nodiscard]] bool is_connected(const AdjacencyList& g);

}  // namespace hhc::graph
