#include "graph/vertex_disjoint.hpp"

#include <algorithm>
#include <stdexcept>

namespace hhc::graph {

namespace {

// Flow-network layout shared by all routines: vertex v occupies the pair
// (in(v), out(v)) = (2v, 2v+1); extra terminals are appended after 2V.
constexpr std::uint32_t in_node(Vertex v) { return 2 * v; }
constexpr std::uint32_t out_node(Vertex v) { return 2 * v + 1; }

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

}  // namespace

// ---------------------------------------------------------------------------
// FanWorkspace — the single implementation all entry points share
// ---------------------------------------------------------------------------

void FanWorkspace::build_split_network(const AdjacencyList& g, Vertex skip1,
                                       Vertex skip2, std::size_t extra_nodes) {
  const std::uint32_t n = static_cast<std::uint32_t>(g.vertex_count());
  net_.reset(static_cast<std::size_t>(2 * n) + extra_nodes);
  for (Vertex v = 0; v < n; ++v) {
    if (v != skip1 && v != skip2) net_.add_edge(in_node(v), out_node(v), 1);
    for (Vertex u : g.neighbors(v)) {
      net_.add_edge(out_node(v), in_node(u), 1);
    }
  }
}

void FanWorkspace::prepare_decomposition() {
  if (net_.node_count() > consumed_.size()) consumed_.resize(net_.node_count());
  for (std::uint32_t v = 0; v < net_.node_count(); ++v) {
    consumed_[v].assign(net_.residual(v).size(), false);
  }
}

// Walks one unit of flow from `start` to `stop`, consuming flow-carrying
// forward edges; fills trail_ with the flow-network nodes visited (start
// and stop included). With unit vertex capacities the walk is finite.
void FanWorkspace::walk_unit(std::uint32_t start, std::uint32_t stop) {
  trail_.clear();
  trail_.push_back(start);
  std::uint32_t cur = start;
  while (cur != stop) {
    const auto& edges = net_.residual(cur);
    bool advanced = false;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const auto& e = edges[i];
      if (!e.is_forward || consumed_[cur][i]) continue;
      // Flow on a forward edge equals the residual of its reverse edge.
      if (net_.residual(e.to)[e.rev].capacity <= 0) continue;
      consumed_[cur][i] = true;
      cur = e.to;
      trail_.push_back(cur);
      advanced = true;
      break;
    }
    if (!advanced) {
      throw std::logic_error("flow decomposition: dead end (broken flow)");
    }
  }
}

VertexPath& FanWorkspace::slot(std::size_t i) {
  while (i >= paths_.size()) paths_.emplace_back();
  paths_[i].clear();
  return paths_[i];
}

std::span<const VertexPath> FanWorkspace::max_disjoint_paths(
    const AdjacencyList& g, Vertex s, Vertex t, std::size_t limit) {
  if (s >= g.vertex_count() || t >= g.vertex_count()) {
    throw std::invalid_argument("disjoint paths: vertex out of range");
  }
  if (s == t) throw std::invalid_argument("disjoint paths: s == t");

  const std::uint32_t n = static_cast<std::uint32_t>(g.vertex_count());
  const bool capped = limit < g.degree(s);
  const std::uint32_t super = 2 * n;  // only used when capped
  build_split_network(g, s, t, capped ? 1u : 0u);
  std::uint32_t source = out_node(s);
  if (capped) {
    net_.add_edge(super, out_node(s), static_cast<std::int64_t>(limit));
    source = super;
  }
  const std::int64_t flow = net_.max_flow(source, in_node(t));

  prepare_decomposition();
  for (std::int64_t unit = 0; unit < flow; ++unit) {
    walk_unit(out_node(s), in_node(t));
    VertexPath& path = slot(static_cast<std::size_t>(unit));
    path.push_back(s);
    for (const std::uint32_t node : trail_) {
      if (node != out_node(s) && node % 2 == 0) path.push_back(node / 2);
    }
  }
  return {paths_.data(), static_cast<std::size_t>(flow)};
}

std::span<const VertexPath> FanWorkspace::fan(const AdjacencyList& g, Vertex s,
                                              std::span<const Vertex> targets) {
  const std::uint32_t n = static_cast<std::uint32_t>(g.vertex_count());
  if (s >= n) throw std::invalid_argument("fan: source out of range");
  target_slot_.assign(n, kNoSlot);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const Vertex t = targets[i];
    if (t >= n || t == s) throw std::invalid_argument("fan: bad target");
    if (target_slot_[t] != kNoSlot) {
      throw std::invalid_argument("fan: duplicate target");
    }
    target_slot_[t] = i;
  }
  if (targets.empty()) return {};

  const std::uint32_t sink = 2 * n;
  build_split_network(g, s, s, 1);
  for (const Vertex t : targets) net_.add_edge(out_node(t), sink, 1);

  const std::int64_t flow = net_.max_flow(out_node(s), sink);
  if (flow != static_cast<std::int64_t>(targets.size())) {
    throw std::runtime_error("vertex_disjoint_fan: no complete fan exists");
  }

  prepare_decomposition();
  for (std::size_t unit = 0; unit < targets.size(); ++unit) {
    walk_unit(out_node(s), sink);
    // The endpoint (last real vertex before the sink) names the result slot.
    Vertex endpoint = s;
    for (const std::uint32_t node : trail_) {
      if (node != out_node(s) && node != sink && node % 2 == 0) {
        endpoint = node / 2;
      }
    }
    VertexPath& path = slot(target_slot_[endpoint]);
    path.push_back(s);
    for (const std::uint32_t node : trail_) {
      if (node != out_node(s) && node != sink && node % 2 == 0) {
        path.push_back(node / 2);
      }
    }
  }
  return {paths_.data(), targets.size()};
}

std::span<const VertexPath> FanWorkspace::reverse_fan(
    const AdjacencyList& g, std::span<const Vertex> sources, Vertex t) {
  // Reuse the forward fan on the same (undirected) graph and reverse paths.
  const auto fans = fan(g, t, sources);
  for (std::size_t i = 0; i < fans.size(); ++i) {
    std::reverse(paths_[i].begin(), paths_[i].end());
  }
  return fans;
}

// ---------------------------------------------------------------------------
// Allocating wrappers (the original public surface)
// ---------------------------------------------------------------------------

namespace {

std::vector<VertexPath> copy_out(std::span<const VertexPath> views) {
  return {views.begin(), views.end()};
}

}  // namespace

std::vector<VertexPath> max_vertex_disjoint_paths(const AdjacencyList& g,
                                                  Vertex s, Vertex t,
                                                  std::size_t limit) {
  FanWorkspace ws;
  return copy_out(ws.max_disjoint_paths(g, s, t, limit));
}

std::size_t vertex_connectivity_between(const AdjacencyList& g, Vertex s,
                                        Vertex t) {
  if (s == t) throw std::invalid_argument("connectivity: s == t");
  const std::uint32_t n = static_cast<std::uint32_t>(g.vertex_count());
  Dinic net{static_cast<std::size_t>(2 * n)};
  for (Vertex v = 0; v < n; ++v) {
    if (v != s && v != t) net.add_edge(in_node(v), out_node(v), 1);
    for (Vertex u : g.neighbors(v)) {
      net.add_edge(out_node(v), in_node(u), 1);
    }
  }
  return static_cast<std::size_t>(net.max_flow(out_node(s), in_node(t)));
}

std::vector<VertexPath> vertex_disjoint_fan(const AdjacencyList& g, Vertex s,
                                            std::span<const Vertex> targets) {
  FanWorkspace ws;
  return copy_out(ws.fan(g, s, targets));
}

std::vector<VertexPath> vertex_disjoint_reverse_fan(
    const AdjacencyList& g, std::span<const Vertex> sources, Vertex t) {
  FanWorkspace ws;
  return copy_out(ws.reverse_fan(g, sources, t));
}

std::vector<VertexPath> set_to_set_disjoint_paths(
    const AdjacencyList& g, std::span<const Vertex> sources,
    std::span<const Vertex> sinks) {
  const std::uint32_t n = static_cast<std::uint32_t>(g.vertex_count());
  std::vector<std::size_t> source_slot(n, kNoSlot);
  std::vector<std::size_t> sink_slot(n, kNoSlot);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (sources[i] >= n) throw std::invalid_argument("set-to-set: bad source");
    if (source_slot[sources[i]] != kNoSlot) {
      throw std::invalid_argument("set-to-set: duplicate source");
    }
    source_slot[sources[i]] = i;
  }
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    if (sinks[i] >= n) throw std::invalid_argument("set-to-set: bad sink");
    if (sink_slot[sinks[i]] != kNoSlot) {
      throw std::invalid_argument("set-to-set: duplicate sink");
    }
    sink_slot[sinks[i]] = i;
  }
  if (sources.empty() || sinks.empty()) return {};

  // Every vertex (endpoints included) carries unit capacity: total
  // disjointness. Super source feeds each source's in-node; each sink's
  // out-node drains to the super sink, so a path consumes its endpoints.
  const std::uint32_t super_s = 2 * n;
  const std::uint32_t super_t = 2 * n + 1;
  Dinic net{static_cast<std::size_t>(2 * n) + 2};
  for (Vertex v = 0; v < n; ++v) {
    net.add_edge(in_node(v), out_node(v), 1);
    for (const Vertex u : g.neighbors(v)) {
      net.add_edge(out_node(v), in_node(u), 1);
    }
  }
  for (const Vertex s : sources) net.add_edge(super_s, in_node(s), 1);
  for (const Vertex t : sinks) net.add_edge(out_node(t), super_t, 1);

  const std::int64_t flow = net.max_flow(super_s, super_t);

  std::vector<VertexPath> paths;
  paths.reserve(static_cast<std::size_t>(flow));
  std::vector<std::vector<bool>> consumed(net.node_count());
  for (std::uint32_t v = 0; v < net.node_count(); ++v) {
    consumed[v].assign(net.residual(v).size(), false);
  }
  for (std::int64_t unit = 0; unit < flow; ++unit) {
    std::vector<std::uint32_t> trail{super_s};
    std::uint32_t cur = super_s;
    while (cur != super_t) {
      const auto& edges = net.residual(cur);
      bool advanced = false;
      for (std::size_t i = 0; i < edges.size(); ++i) {
        const auto& e = edges[i];
        if (!e.is_forward || consumed[cur][i]) continue;
        if (net.residual(e.to)[e.rev].capacity <= 0) continue;
        consumed[cur][i] = true;
        cur = e.to;
        trail.push_back(cur);
        advanced = true;
        break;
      }
      if (!advanced) {
        throw std::logic_error("flow decomposition: dead end (broken flow)");
      }
    }
    VertexPath path;
    for (const std::uint32_t node : trail) {
      if (node == super_s || node == super_t) continue;
      if (node % 2 == 0) path.push_back(node / 2);
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace hhc::graph
