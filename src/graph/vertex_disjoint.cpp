#include "graph/vertex_disjoint.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <unordered_map>

#include "graph/dinic.hpp"

namespace hhc::graph {

namespace {

// Flow-network layout shared by all routines: vertex v occupies the pair
// (in(v), out(v)) = (2v, 2v+1); extra terminals are appended after 2V.
constexpr std::uint32_t in_node(Vertex v) { return 2 * v; }
constexpr std::uint32_t out_node(Vertex v) { return 2 * v + 1; }

// Walks one unit of flow from `start` until `stop(node)` holds, consuming
// flow-carrying forward edges. Returns the sequence of flow-network nodes
// visited (including start and the stop node). With unit vertex capacities
// the walk is finite and visits each vertex at most once.
std::vector<std::uint32_t> walk_flow_unit(
    Dinic& net, std::uint32_t start,
    const std::function<bool(std::uint32_t)>& stop,
    std::vector<std::vector<bool>>& consumed) {
  std::vector<std::uint32_t> trail{start};
  std::uint32_t cur = start;
  while (!stop(cur)) {
    const auto& edges = net.residual(cur);
    bool advanced = false;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const auto& e = edges[i];
      if (!e.is_forward || consumed[cur][i]) continue;
      // Flow on a forward edge equals the residual of its reverse edge.
      if (net.residual(e.to)[e.rev].capacity <= 0) continue;
      consumed[cur][i] = true;
      cur = e.to;
      trail.push_back(cur);
      advanced = true;
      break;
    }
    if (!advanced) {
      throw std::logic_error("flow decomposition: dead end (broken flow)");
    }
  }
  return trail;
}

std::vector<std::vector<bool>> make_consumed(const Dinic& net) {
  std::vector<std::vector<bool>> consumed(net.node_count());
  for (std::uint32_t v = 0; v < net.node_count(); ++v) {
    consumed[v].assign(net.residual(v).size(), false);
  }
  return consumed;
}

}  // namespace

std::vector<VertexPath> max_vertex_disjoint_paths(const AdjacencyList& g,
                                                  Vertex s, Vertex t,
                                                  std::size_t limit) {
  if (s >= g.vertex_count() || t >= g.vertex_count()) {
    throw std::invalid_argument("disjoint paths: vertex out of range");
  }
  if (s == t) throw std::invalid_argument("disjoint paths: s == t");

  const std::uint32_t n = static_cast<std::uint32_t>(g.vertex_count());
  const bool capped = limit < g.degree(s);
  const std::uint32_t super = 2 * n;  // only used when capped
  Dinic net{static_cast<std::size_t>(2 * n) + (capped ? 1u : 0u)};

  for (Vertex v = 0; v < n; ++v) {
    if (v != s && v != t) net.add_edge(in_node(v), out_node(v), 1);
    for (Vertex u : g.neighbors(v)) {
      net.add_edge(out_node(v), in_node(u), 1);
    }
  }
  std::uint32_t source = out_node(s);
  if (capped) {
    net.add_edge(super, out_node(s), static_cast<std::int64_t>(limit));
    source = super;
  }
  const std::int64_t flow = net.max_flow(source, in_node(t));

  std::vector<VertexPath> paths;
  paths.reserve(static_cast<std::size_t>(flow));
  auto consumed = make_consumed(net);
  for (std::int64_t unit = 0; unit < flow; ++unit) {
    const auto trail = walk_flow_unit(
        net, out_node(s), [&](std::uint32_t v) { return v == in_node(t); },
        consumed);
    VertexPath path{s};
    for (std::uint32_t node : trail) {
      if (node != out_node(s) && node % 2 == 0) path.push_back(node / 2);
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

std::size_t vertex_connectivity_between(const AdjacencyList& g, Vertex s,
                                        Vertex t) {
  if (s == t) throw std::invalid_argument("connectivity: s == t");
  const std::uint32_t n = static_cast<std::uint32_t>(g.vertex_count());
  Dinic net{static_cast<std::size_t>(2 * n)};
  for (Vertex v = 0; v < n; ++v) {
    if (v != s && v != t) net.add_edge(in_node(v), out_node(v), 1);
    for (Vertex u : g.neighbors(v)) {
      net.add_edge(out_node(v), in_node(u), 1);
    }
  }
  return static_cast<std::size_t>(net.max_flow(out_node(s), in_node(t)));
}

std::vector<VertexPath> vertex_disjoint_fan(const AdjacencyList& g, Vertex s,
                                            std::span<const Vertex> targets) {
  const std::uint32_t n = static_cast<std::uint32_t>(g.vertex_count());
  if (s >= n) throw std::invalid_argument("fan: source out of range");
  std::unordered_map<Vertex, std::size_t> target_index;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const Vertex t = targets[i];
    if (t >= n || t == s) throw std::invalid_argument("fan: bad target");
    if (!target_index.emplace(t, i).second) {
      throw std::invalid_argument("fan: duplicate target");
    }
  }
  if (targets.empty()) return {};

  const std::uint32_t sink = 2 * n;
  Dinic net{static_cast<std::size_t>(2 * n) + 1};
  for (Vertex v = 0; v < n; ++v) {
    if (v != s) net.add_edge(in_node(v), out_node(v), 1);
    for (Vertex u : g.neighbors(v)) {
      net.add_edge(out_node(v), in_node(u), 1);
    }
  }
  for (const Vertex t : targets) net.add_edge(out_node(t), sink, 1);

  const std::int64_t flow = net.max_flow(out_node(s), sink);
  if (flow != static_cast<std::int64_t>(targets.size())) {
    throw std::runtime_error("vertex_disjoint_fan: no complete fan exists");
  }

  std::vector<VertexPath> result(targets.size());
  auto consumed = make_consumed(net);
  for (std::size_t unit = 0; unit < targets.size(); ++unit) {
    const auto trail = walk_flow_unit(
        net, out_node(s), [&](std::uint32_t v) { return v == sink; }, consumed);
    VertexPath path{s};
    for (std::uint32_t node : trail) {
      if (node != out_node(s) && node != sink && node % 2 == 0) {
        path.push_back(node / 2);
      }
    }
    const Vertex endpoint = path.back();
    result[target_index.at(endpoint)] = std::move(path);
  }
  return result;
}

std::vector<VertexPath> vertex_disjoint_reverse_fan(
    const AdjacencyList& g, std::span<const Vertex> sources, Vertex t) {
  // Reuse the forward fan on the same (undirected) graph and reverse paths.
  auto fans = vertex_disjoint_fan(g, t, sources);
  for (auto& p : fans) std::reverse(p.begin(), p.end());
  return fans;
}

std::vector<VertexPath> set_to_set_disjoint_paths(
    const AdjacencyList& g, std::span<const Vertex> sources,
    std::span<const Vertex> sinks) {
  const std::uint32_t n = static_cast<std::uint32_t>(g.vertex_count());
  std::unordered_map<Vertex, std::size_t> source_set;
  std::unordered_map<Vertex, std::size_t> sink_set;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (sources[i] >= n) throw std::invalid_argument("set-to-set: bad source");
    if (!source_set.emplace(sources[i], i).second) {
      throw std::invalid_argument("set-to-set: duplicate source");
    }
  }
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    if (sinks[i] >= n) throw std::invalid_argument("set-to-set: bad sink");
    if (!sink_set.emplace(sinks[i], i).second) {
      throw std::invalid_argument("set-to-set: duplicate sink");
    }
  }
  if (sources.empty() || sinks.empty()) return {};

  // Every vertex (endpoints included) carries unit capacity: total
  // disjointness. Super source feeds each source's in-node; each sink's
  // out-node drains to the super sink, so a path consumes its endpoints.
  const std::uint32_t super_s = 2 * n;
  const std::uint32_t super_t = 2 * n + 1;
  Dinic net{static_cast<std::size_t>(2 * n) + 2};
  for (Vertex v = 0; v < n; ++v) {
    net.add_edge(in_node(v), out_node(v), 1);
    for (const Vertex u : g.neighbors(v)) {
      net.add_edge(out_node(v), in_node(u), 1);
    }
  }
  for (const Vertex s : sources) net.add_edge(super_s, in_node(s), 1);
  for (const Vertex t : sinks) net.add_edge(out_node(t), super_t, 1);

  const std::int64_t flow = net.max_flow(super_s, super_t);

  std::vector<VertexPath> paths;
  paths.reserve(static_cast<std::size_t>(flow));
  auto consumed = make_consumed(net);
  for (std::int64_t unit = 0; unit < flow; ++unit) {
    const auto trail = walk_flow_unit(
        net, super_s, [&](std::uint32_t v) { return v == super_t; }, consumed);
    VertexPath path;
    for (const std::uint32_t node : trail) {
      if (node == super_s || node == super_t) continue;
      if (node % 2 == 0) path.push_back(node / 2);
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace hhc::graph
