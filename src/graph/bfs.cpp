#include "graph/bfs.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace hhc::graph {

std::vector<std::uint32_t> bfs_distances(const AdjacencyList& g, Vertex source) {
  if (source >= g.vertex_count()) {
    throw std::invalid_argument("bfs_distances: source out of range");
  }
  std::vector<std::uint32_t> dist(g.vertex_count(), kUnreachable);
  std::queue<Vertex> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const Vertex v = frontier.front();
    frontier.pop();
    for (Vertex u : g.neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        frontier.push(u);
      }
    }
  }
  return dist;
}

VertexPath bfs_shortest_path(const AdjacencyList& g, Vertex source,
                             Vertex target) {
  if (source >= g.vertex_count() || target >= g.vertex_count()) {
    throw std::invalid_argument("bfs_shortest_path: vertex out of range");
  }
  if (source == target) return {source};
  std::vector<Vertex> parent(g.vertex_count(), kNoVertex);
  std::vector<bool> seen(g.vertex_count(), false);
  std::queue<Vertex> frontier;
  seen[source] = true;
  frontier.push(source);
  while (!frontier.empty()) {
    const Vertex v = frontier.front();
    frontier.pop();
    for (Vertex u : g.neighbors(v)) {
      if (seen[u]) continue;
      seen[u] = true;
      parent[u] = v;
      if (u == target) {
        VertexPath path{target};
        for (Vertex w = target; w != source;) {
          w = parent[w];
          path.push_back(w);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push(u);
    }
  }
  return {};
}

std::uint32_t eccentricity(const AdjacencyList& g, Vertex source) {
  const auto dist = bfs_distances(g, source);
  std::uint32_t ecc = 0;
  for (auto d : dist) {
    if (d == kUnreachable) return kUnreachable;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter(const AdjacencyList& g) {
  std::uint32_t best = 0;
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    const std::uint32_t ecc = eccentricity(g, v);
    if (ecc == kUnreachable) return kUnreachable;
    best = std::max(best, ecc);
  }
  return best;
}

bool is_connected(const AdjacencyList& g) {
  if (g.vertex_count() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

}  // namespace hhc::graph
