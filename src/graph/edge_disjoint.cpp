#include "graph/edge_disjoint.hpp"

#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "graph/dinic.hpp"

namespace hhc::graph {

namespace {

// Flow network without vertex splitting: node ids equal vertex ids; each
// undirected edge contributes one unit-capacity arc per direction. The
// handles of both arcs per undirected edge are recorded so opposite flows
// can be cancelled before path decomposition.
struct EdgeNetwork {
  Dinic net;
  // (min(u,v), max(u,v)) -> the two Dinic edge handles (u->v, v->u).
  std::map<std::pair<Vertex, Vertex>, std::pair<std::size_t, std::size_t>>
      arc_pairs;
};

EdgeNetwork build_edge_network(const AdjacencyList& g, bool capped, Vertex s,
                               std::size_t limit) {
  const auto n = static_cast<std::uint32_t>(g.vertex_count());
  EdgeNetwork result{Dinic{static_cast<std::size_t>(n) + (capped ? 1u : 0u)},
                     {}};
  for (Vertex v = 0; v < n; ++v) {
    for (const Vertex u : g.neighbors(v)) {
      const std::size_t handle = result.net.add_edge(v, u, 1);
      const auto key = std::minmax(v, u);
      auto [it, inserted] = result.arc_pairs.try_emplace(key, handle, handle);
      if (!inserted) it->second.second = handle;
    }
  }
  if (capped) result.net.add_edge(n, s, static_cast<std::int64_t>(limit));
  return result;
}

}  // namespace

std::vector<VertexPath> max_edge_disjoint_paths(const AdjacencyList& g,
                                                Vertex s, Vertex t,
                                                std::size_t limit) {
  if (s >= g.vertex_count() || t >= g.vertex_count()) {
    throw std::invalid_argument("edge-disjoint: vertex out of range");
  }
  if (s == t) throw std::invalid_argument("edge-disjoint: s == t");

  const bool capped = limit < g.degree(s);
  EdgeNetwork ed = build_edge_network(g, capped, s, limit);
  Dinic& net = ed.net;
  const auto source =
      capped ? static_cast<std::uint32_t>(g.vertex_count()) : s;
  const std::int64_t flow = net.max_flow(source, t);

  // Cancel 2-cycles (flow on both directions of one undirected edge) so the
  // decomposition never reuses an edge.
  for (const auto& [key, handles] : ed.arc_pairs) {
    (void)key;
    if (handles.first != handles.second) {
      net.cancel_opposite_unit(handles.first, handles.second);
    }
  }

  // Decompose: walk flow-carrying arcs from s, consuming each arc once.
  std::vector<std::vector<bool>> consumed(net.node_count());
  for (std::uint32_t v = 0; v < net.node_count(); ++v) {
    consumed[v].assign(net.residual(v).size(), false);
  }
  std::vector<VertexPath> paths;
  paths.reserve(static_cast<std::size_t>(flow));
  for (std::int64_t unit = 0; unit < flow; ++unit) {
    VertexPath path{s};
    std::uint32_t cur = s;
    while (cur != t) {
      bool advanced = false;
      const auto& arcs = net.residual(cur);
      for (std::size_t i = 0; i < arcs.size(); ++i) {
        const auto& arc = arcs[i];
        if (!arc.is_forward || consumed[cur][i]) continue;
        if (net.residual(arc.to)[arc.rev].capacity <= 0) continue;  // no flow
        consumed[cur][i] = true;
        cur = arc.to;
        path.push_back(cur);
        advanced = true;
        break;
      }
      if (!advanced) {
        throw std::logic_error("edge-disjoint decomposition: dead end");
      }
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

std::size_t edge_connectivity_between(const AdjacencyList& g, Vertex s,
                                      Vertex t) {
  if (s >= g.vertex_count() || t >= g.vertex_count()) {
    throw std::invalid_argument("edge-disjoint: vertex out of range");
  }
  if (s == t) throw std::invalid_argument("edge-disjoint: s == t");
  EdgeNetwork ed = build_edge_network(g, false, s, 0);
  return static_cast<std::size_t>(ed.net.max_flow(s, t));
}

bool paths_are_edge_disjoint(const AdjacencyList& g,
                             const std::vector<VertexPath>& paths) {
  std::set<std::pair<Vertex, Vertex>> used;
  for (const auto& p : paths) {
    if (p.empty()) return false;
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      if (!g.has_edge(p[i], p[i + 1])) return false;
      const auto key = std::minmax(p[i], p[i + 1]);
      if (!used.insert(key).second) return false;
    }
  }
  return true;
}

}  // namespace hhc::graph
