// Fundamental vertex/path types for the explicit-graph substrate.
//
// Explicit graphs (clusters, BFS balls, baseline flow networks) are small
// enough for 32-bit vertex ids; the hierarchical hypercube itself uses
// 64-bit node ids and is handled implicitly by the core library.
#pragma once

#include <cstdint>
#include <vector>

namespace hhc::graph {

using Vertex = std::uint32_t;
using VertexPath = std::vector<Vertex>;

/// Sentinel for "no vertex".
inline constexpr Vertex kNoVertex = static_cast<Vertex>(-1);

/// Sentinel distance for unreachable vertices.
inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

}  // namespace hhc::graph
