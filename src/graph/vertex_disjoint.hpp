// Exact vertex-disjoint path extraction via node splitting + max flow.
//
// Menger's theorem: the maximum number of internally vertex-disjoint s-t
// paths equals the minimum s-t vertex cut. Splitting every internal vertex
// v into v_in -> v_out with unit capacity turns vertex disjointness into
// edge capacities, and Dinic recovers an optimal path system.
//
// These routines serve three roles in the repository:
//   1. the exact baseline the constructive HHC algorithm is compared to,
//   2. the in-cluster "fan" subproblems of the constructive algorithm
//      (clusters have <= 32 vertices, so exact max flow is effectively free),
//   3. independent verification of connectivity in the test suite.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/adjacency_list.hpp"
#include "graph/types.hpp"

namespace hhc::graph {

/// Maximum set of internally vertex-disjoint s-t paths (s != t).
/// Paths include both endpoints. At most `limit` paths are returned (the
/// flow is capped), which keeps the search cheap when only k paths matter.
[[nodiscard]] std::vector<VertexPath> max_vertex_disjoint_paths(
    const AdjacencyList& g, Vertex s, Vertex t,
    std::size_t limit = static_cast<std::size_t>(-1));

/// Number of internally vertex-disjoint s-t paths (the local connectivity
/// kappa(s, t)), without materializing the paths.
[[nodiscard]] std::size_t vertex_connectivity_between(const AdjacencyList& g,
                                                      Vertex s, Vertex t);

/// One-to-many fan: paths from `s` to each target, pairwise vertex-disjoint
/// except at `s`, with result[i] ending exactly at targets[i].
/// Targets must be distinct and != s. Throws std::runtime_error when no
/// complete fan exists (i.e. max flow < targets.size()).
[[nodiscard]] std::vector<VertexPath> vertex_disjoint_fan(
    const AdjacencyList& g, Vertex s, std::span<const Vertex> targets);

/// Many-to-one fan: result[i] starts exactly at sources[i] and ends at `t`;
/// paths are pairwise vertex-disjoint except at `t`.
[[nodiscard]] std::vector<VertexPath> vertex_disjoint_reverse_fan(
    const AdjacencyList& g, std::span<const Vertex> sources, Vertex t);

/// Set-to-set Menger: a maximum system of TOTALLY vertex-disjoint paths
/// (endpoints included) from the source set to the sink set. Each path
/// starts at some source and ends at some sink; no vertex is shared by two
/// paths. Sources and sinks must each be duplicate-free; a vertex listed
/// in both sets yields the trivial single-vertex path.
[[nodiscard]] std::vector<VertexPath> set_to_set_disjoint_paths(
    const AdjacencyList& g, std::span<const Vertex> sources,
    std::span<const Vertex> sinks);

}  // namespace hhc::graph
