// Exact vertex-disjoint path extraction via node splitting + max flow.
//
// Menger's theorem: the maximum number of internally vertex-disjoint s-t
// paths equals the minimum s-t vertex cut. Splitting every internal vertex
// v into v_in -> v_out with unit capacity turns vertex disjointness into
// edge capacities, and Dinic recovers an optimal path system.
//
// These routines serve three roles in the repository:
//   1. the exact baseline the constructive HHC algorithm is compared to,
//   2. the in-cluster "fan" subproblems of the constructive algorithm
//      (clusters have <= 32 vertices, so exact max flow is effectively free),
//   3. independent verification of connectivity in the test suite.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/adjacency_list.hpp"
#include "graph/dinic.hpp"
#include "graph/types.hpp"

namespace hhc::graph {

/// Reusable workspace for the flow-based disjoint-path routines below.
///
/// The HHC construction solves two endpoint-fan subproblems per query on a
/// <= 32-node cluster graph; building a fresh Dinic network (plus the flow
/// decomposition scratch) each time dominated the allocation profile of the
/// whole construction. A warm workspace cycled through same-shaped problems
/// performs ZERO heap allocations: the flow network, the consumed-edge
/// marks, and the result paths all reuse prior capacity.
///
/// Results are spans into workspace-owned storage, valid until the next
/// call on the same workspace. Not thread-safe; use one per thread (the
/// construction reaches it through core::ConstructionScratch).
///
/// Each method is result-identical to the free function of the same shape
/// below (same network layout, same augmentation order, same flow
/// decomposition) — asserted by the differential suite.
class FanWorkspace {
 public:
  FanWorkspace() = default;
  FanWorkspace(const FanWorkspace&) = delete;
  FanWorkspace& operator=(const FanWorkspace&) = delete;

  /// max_vertex_disjoint_paths, workspace-backed.
  [[nodiscard]] std::span<const VertexPath> max_disjoint_paths(
      const AdjacencyList& g, Vertex s, Vertex t,
      std::size_t limit = static_cast<std::size_t>(-1));

  /// vertex_disjoint_fan, workspace-backed: result[i] ends at targets[i].
  [[nodiscard]] std::span<const VertexPath> fan(const AdjacencyList& g,
                                                Vertex s,
                                                std::span<const Vertex> targets);

  /// vertex_disjoint_reverse_fan, workspace-backed.
  [[nodiscard]] std::span<const VertexPath> reverse_fan(
      const AdjacencyList& g, std::span<const Vertex> sources, Vertex t);

 private:
  void build_split_network(const AdjacencyList& g, Vertex skip1, Vertex skip2,
                           std::size_t extra_nodes);
  void prepare_decomposition();
  void walk_unit(std::uint32_t start, std::uint32_t stop);
  [[nodiscard]] VertexPath& slot(std::size_t i);

  Dinic net_{0};
  std::vector<std::vector<bool>> consumed_;  // per-node edge marks, reused
  std::vector<std::uint32_t> trail_;         // flow-network walk, reused
  std::vector<VertexPath> paths_;            // result storage, reused
  std::vector<std::size_t> target_slot_;     // vertex -> result index
};

/// Maximum set of internally vertex-disjoint s-t paths (s != t).
/// Paths include both endpoints. At most `limit` paths are returned (the
/// flow is capped), which keeps the search cheap when only k paths matter.
[[nodiscard]] std::vector<VertexPath> max_vertex_disjoint_paths(
    const AdjacencyList& g, Vertex s, Vertex t,
    std::size_t limit = static_cast<std::size_t>(-1));

/// Number of internally vertex-disjoint s-t paths (the local connectivity
/// kappa(s, t)), without materializing the paths.
[[nodiscard]] std::size_t vertex_connectivity_between(const AdjacencyList& g,
                                                      Vertex s, Vertex t);

/// One-to-many fan: paths from `s` to each target, pairwise vertex-disjoint
/// except at `s`, with result[i] ending exactly at targets[i].
/// Targets must be distinct and != s. Throws std::runtime_error when no
/// complete fan exists (i.e. max flow < targets.size()).
[[nodiscard]] std::vector<VertexPath> vertex_disjoint_fan(
    const AdjacencyList& g, Vertex s, std::span<const Vertex> targets);

/// Many-to-one fan: result[i] starts exactly at sources[i] and ends at `t`;
/// paths are pairwise vertex-disjoint except at `t`.
[[nodiscard]] std::vector<VertexPath> vertex_disjoint_reverse_fan(
    const AdjacencyList& g, std::span<const Vertex> sources, Vertex t);

/// Set-to-set Menger: a maximum system of TOTALLY vertex-disjoint paths
/// (endpoints included) from the source set to the sink set. Each path
/// starts at some source and ends at some sink; no vertex is shared by two
/// paths. Sources and sinks must each be duplicate-free; a vertex listed
/// in both sets yields the trivial single-vertex path.
[[nodiscard]] std::vector<VertexPath> set_to_set_disjoint_paths(
    const AdjacencyList& g, std::span<const Vertex> sources,
    std::span<const Vertex> sinks);

}  // namespace hhc::graph
