#include "obs/trace.hpp"

#include <algorithm>

#include "core/io.hpp"

namespace hhc::obs {

std::vector<TraceEvent> Tracer::drain() {
  detail::TraceState& state = detail::trace_state();
  std::vector<TraceEvent> events;
  {
    std::lock_guard lock{state.mutex};
    for (const auto& ring : state.rings) ring->snapshot(events);
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& lhs, const TraceEvent& rhs) {
              return lhs.start_nanos < rhs.start_nanos;
            });
  return events;
}

void Tracer::clear() {
  // Rings are immutable from the collector's side (only their owner thread
  // writes): dropping events means starting a fresh generation, exactly
  // like enable() but keeping the configured capacity.
  detail::TraceState& state = detail::trace_state();
  {
    std::lock_guard lock{state.mutex};
    state.rings.clear();
    state.next_tid = 0;
  }
  state.generation.fetch_add(1, std::memory_order_release);
}

std::uint64_t Tracer::dropped() {
  detail::TraceState& state = detail::trace_state();
  std::uint64_t total = 0;
  std::lock_guard lock{state.mutex};
  for (const auto& ring : state.rings) total += ring->dropped();
  return total;
}

std::string to_chrome_trace_json(const std::vector<TraceEvent>& events) {
  core::JsonWriter json;
  json.begin_object().key("traceEvents").begin_array();
  for (const TraceEvent& event : events) {
    json.begin_object()
        .key("name").value(event.name)
        .key("cat").value("hhc")
        .key("ph").value("X")
        .key("ts").value(static_cast<double>(event.start_nanos) / 1e3)
        .key("dur").value(static_cast<double>(event.dur_nanos) / 1e3)
        .key("pid").value(0)
        .key("tid").value(static_cast<std::uint64_t>(event.tid))
        .end_object();
  }
  json.end_array().key("displayTimeUnit").value("ms").end_object();
  return json.str();
}

std::string to_trace_csv(const std::vector<TraceEvent>& events) {
  std::string out = core::csv_row({"name", "tid", "start_us", "dur_us"}) + "\n";
  for (const TraceEvent& event : events) {
    out += core::csv_row(
               {event.name, std::to_string(event.tid),
                std::to_string(static_cast<double>(event.start_nanos) / 1e3),
                std::to_string(static_cast<double>(event.dur_nanos) / 1e3)}) +
           "\n";
  }
  return out;
}

}  // namespace hhc::obs
