// Process-wide metric registry: named lock-free counters, gauges, and
// power-of-two histograms.
//
// The hot-path types are deliberately header-inline so that ANY layer —
// including hhc_core, which hhc_obs's exporters link against — can record
// metrics without introducing a library cycle: recording needs no symbol
// from hhc_obs, only the exporters (to_csv/to_json, Chrome traces) live in
// the compiled library.
//
// Usage pattern on a hot path: resolve the metric ONCE (registration takes
// a mutex; a function-local static amortizes it to one lookup per site),
// then update through the reference — a single relaxed atomic op:
//
//   static obs::Counter& refills =
//       obs::MetricRegistry::global().counter("construct.arena_refills");
//   refills.inc();
//
// Histogram generalizes the query engine's latency histogram (which is now
// a thin wrapper, see query/stats.hpp): kBuckets power-of-two bins where
// bucket b counts values in [2^(b-1), 2^b) and bucket 0 the sub-unit ones.
// Percentiles read off upper bucket edges (conservative). Unlike the
// pre-obs implementation, Snapshot::percentile skips empty leading buckets
// (p = 0 reports the first NON-empty bucket's edge, not a phantom 1) and
// aligns its error semantics with sim::percentile: out-of-range p and an
// empty histogram throw std::invalid_argument instead of silently
// returning 0.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace hhc::core {
struct StatRow;
}  // namespace hhc::core

namespace hhc::obs {

/// Monotonic event count. All operations are wait-free relaxed atomics.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins instantaneous value (signed; add() for deltas).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Shared percentile arithmetic for power-of-two bucket arrays (used by
/// Histogram::Snapshot and query::LatencyHistogram::Snapshot). Throws
/// std::invalid_argument for p outside [0, 1] (NaN included) or when the
/// buckets are empty; p = 0 returns the edge of the first non-empty bucket.
[[nodiscard]] inline double bucket_percentile(
    std::span<const std::uint64_t> buckets, std::uint64_t count, double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("bucket_percentile: p outside [0, 1]");
  }
  if (count == 0) {
    throw std::invalid_argument("bucket_percentile: empty histogram");
  }
  // ceil(p * count) samples must fall at or below the reported edge; the
  // clamp to >= 1 is what skips empty leading buckets at p = 0 (otherwise
  // target = 0 is satisfied by bucket 0 even when bucket 0 holds nothing).
  auto target =
      static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(count)));
  if (target == 0) target = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= target) return std::ldexp(1.0, static_cast<int>(b));
  }
  return std::ldexp(1.0, static_cast<int>(buckets.size()) - 1);
}

/// Lock-free power-of-two histogram: bucket b counts values in
/// [2^(b-1), 2^b), bucket 0 everything below 1 (plus NaN/negatives), the
/// top bucket saturates. Recording is one relaxed fetch_add plus a CAS-loop
/// max update; snapshots are consistent enough for dashboards (relaxed
/// per-bucket loads).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  struct Snapshot {
    std::vector<std::uint64_t> buckets;  // kBuckets power-of-two bins
    std::uint64_t count = 0;
    double max_value = 0.0;

    /// Upper bucket edge below which a `p` fraction of samples fall.
    /// Throws std::invalid_argument when empty or p is outside [0, 1].
    [[nodiscard]] double percentile(double p) const {
      return bucket_percentile(buckets, count, p);
    }
  };

  /// Bucket index for a sample: 0 for < 1 (also NaN/negatives), else
  /// 1 + floor(log2(v)), saturating at the top bucket.
  [[nodiscard]] static std::size_t bucket_of(double value) noexcept {
    if (!(value >= 1.0)) return 0;
    if (value >= 0x1p63) return kBuckets - 1;  // beyond uint64 conversion
    const auto v = static_cast<std::uint64_t>(value);
    const auto width = static_cast<std::size_t>(std::bit_width(v));
    return width < kBuckets ? width : kBuckets - 1;
  }

  /// Thread-safe, wait-free; NaN/negative samples clamp to bucket 0.
  void record(double value) noexcept {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    if (!(value > 0.0)) return;
    double seen = max_.load(std::memory_order_relaxed);
    while (value > seen && !max_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] Snapshot snapshot() const {
    Snapshot snap;
    snap.buckets.resize(kBuckets);
    for (std::size_t b = 0; b < kBuckets; ++b) {
      snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
      snap.count += snap.buckets[b];
    }
    snap.max_value = max_.load(std::memory_order_relaxed);
    return snap;
  }

  void reset() noexcept {
    for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<double> max_{0.0};
};

/// Name-sorted point-in-time view of every registered metric; histogram
/// entries carry full bucket snapshots. Render with to_csv()/to_json()
/// (compiled in hhc_obs — they share core::io's unified StatRow schema, so
/// registry exports, cache stats, and service stats all land in one table
/// shape).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;

  /// The snapshot as unified stat rows: counters/gauges as scalars under
  /// sections "counter"/"gauge", histograms as distributions under
  /// "histogram" (percentiles omitted while empty).
  [[nodiscard]] std::vector<core::StatRow> rows() const;

  /// core::stat_rows_csv / core::stat_rows_json over rows().
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_json() const;
};

/// The process-wide registry. Registration (name -> metric) takes a mutex
/// and allocates once per name; the returned references are stable for the
/// registry's lifetime, so hot paths cache them (see header comment) and
/// never touch the lock again. Each kind has its own namespace: a counter
/// and a histogram may share a name.
class MetricRegistry {
 public:
  /// The process-wide instance (function-local static: header-inline so
  /// every library sees the same registry without linking hhc_obs).
  [[nodiscard]] static MetricRegistry& global() {
    static MetricRegistry registry;
    return registry;
  }

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name) {
    return slot(counters_, name);
  }
  [[nodiscard]] Gauge& gauge(const std::string& name) {
    return slot(gauges_, name);
  }
  [[nodiscard]] Histogram& histogram(const std::string& name) {
    return slot(histograms_, name);
  }

  [[nodiscard]] MetricsSnapshot snapshot() const {
    MetricsSnapshot snap;
    std::lock_guard lock{mutex_};
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->get());
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->get());
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      snap.histograms.emplace_back(name, h->snapshot());
    }
    return snap;
  }

  /// Zeroes every metric, KEEPING registrations (cached references stay
  /// valid). Used between benchmark passes and in tests.
  void reset() {
    std::lock_guard lock{mutex_};
    for (const auto& [name, c] : counters_) c->reset();
    for (const auto& [name, g] : gauges_) g->reset();
    for (const auto& [name, h] : histograms_) h->reset();
  }

 private:
  template <typename T>
  [[nodiscard]] T& slot(std::map<std::string, std::unique_ptr<T>>& metrics,
                        const std::string& name) {
    std::lock_guard lock{mutex_};
    auto& entry = metrics[name];
    if (entry == nullptr) entry = std::make_unique<T>();
    return *entry;
  }

  // std::map keeps snapshot output name-sorted; unique_ptr keeps metric
  // addresses stable across rebalancing.
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The per-stage latency histogram (µs) for a trace stage name — what
/// TraceSpan feeds when tracing is enabled, and what the bench breakdown
/// reads back. One registry entry per stage, named after the stage itself.
[[nodiscard]] inline Histogram& stage_histogram(const char* stage) {
  return MetricRegistry::global().histogram(stage);
}

}  // namespace hhc::obs
