// Canonical trace-stage names, shared by the instrumentation sites, the
// per-stage registry histograms (obs::stage_histogram), the benchmark
// breakdown, the hhc_tool trace subcommand, and the CI smoke check that
// greps the emitted Chrome trace for them. One constant per stage keeps
// every consumer spelling them identically.
#pragma once

namespace hhc::obs::stages {

// query layer (PathService)
inline constexpr const char* kAnswer = "query.answer";
inline constexpr const char* kAnswerView = "query.answer_view";

// container cache (the pristine fast path's two stages)
inline constexpr const char* kCacheLookup = "query.cache_lookup";
inline constexpr const char* kConstruct = "query.construct";

// fault-aware routing (AdaptiveRouter)
inline constexpr const char* kContainerScan = "router.container_scan";
inline constexpr const char* kBfsFallback = "router.bfs_fallback";

// construction internals (node_disjoint_paths scratch path)
inline constexpr const char* kFanSolve = "construct.fan_solve";

// campaign / simulator trials
inline constexpr const char* kCampaignRow = "campaign.row";
inline constexpr const char* kCampaignTrial = "campaign.trial";
inline constexpr const char* kSimRun = "sim.run";

}  // namespace hhc::obs::stages
