// Canonical trace-stage names, shared by the instrumentation sites, the
// per-stage registry histograms (obs::stage_histogram), the benchmark
// breakdown, the hhc_tool trace subcommand, and the CI smoke check that
// greps the emitted Chrome trace for them. One constant per stage keeps
// every consumer spelling them identically.
#pragma once

namespace hhc::obs::stages {

// query layer (PathService)
inline constexpr const char* kAnswer = "query.answer";
inline constexpr const char* kAnswerView = "query.answer_view";

// per-outcome answer latency (overload robustness layer); the .ok histogram
// is the production latency, .timed_out what in-flight expired work cost
// before it was abandoned. Gate sheds and admission-time expiries are
// deliberately histogram-free: the shed-fast path performs NO shared-memory
// writes (per-thread striped tallies only, surfaced via ServiceStats), so
// rejection stays effectively free under overload.
inline constexpr const char* kAnswerOk = "query.answer.ok";
inline constexpr const char* kAnswerTimedOut = "query.answer.timed_out";

// overload decision counters (obs::MetricRegistry counters, not spans);
// shed/timed-out totals live in ServiceStats, not the registry, for the
// same shed-fast reason.
inline constexpr const char* kInvalidCount = "query.invalid";
inline constexpr const char* kDegradedAdmissionCount =
    "query.degraded_admission";
inline constexpr const char* kBreakerShortCircuitCount =
    "query.breaker_short_circuit";
inline constexpr const char* kBreakerTripCount = "query.breaker_trips";

// container cache (miss-path stages; the lock-free HIT path is deliberately
// span-free — hits are timed by the enclosing query.answer/answer_view
// span, which is what keeps enabled-tracing overhead < 5%)
inline constexpr const char* kConstruct = "query.construct";
inline constexpr const char* kCachePublish = "query.cache_publish";

// fault-aware routing (AdaptiveRouter)
inline constexpr const char* kContainerScan = "router.container_scan";
inline constexpr const char* kBfsFallback = "router.bfs_fallback";

// construction internals (node_disjoint_paths scratch path)
inline constexpr const char* kFanSolve = "construct.fan_solve";

// campaign / simulator trials
inline constexpr const char* kCampaignRow = "campaign.row";
inline constexpr const char* kCampaignTrial = "campaign.trial";
inline constexpr const char* kSimRun = "sim.run";

}  // namespace hhc::obs::stages
