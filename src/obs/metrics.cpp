#include "obs/metrics.hpp"

#include "core/io.hpp"

namespace hhc::obs {

namespace {

// Histogram cells for a metric row that has none (counters/gauges).
const std::vector<std::string> kNoHistogramCells{"", "", "", "", ""};

}  // namespace

std::string MetricsSnapshot::to_csv() const {
  std::string out = core::csv_row({"kind", "name", "value", "count", "p50",
                                   "p90", "p99", "max"}) +
                    "\n";
  const auto row = [&out](const std::string& kind, const std::string& name,
                          const std::string& value,
                          const std::vector<std::string>& hist_cells) {
    std::vector<std::string> cells{kind, name, value};
    cells.insert(cells.end(), hist_cells.begin(), hist_cells.end());
    out += core::csv_row(cells) + "\n";
  };
  for (const auto& [name, value] : counters) {
    row("counter", name, std::to_string(value), kNoHistogramCells);
  }
  for (const auto& [name, value] : gauges) {
    row("gauge", name, std::to_string(value), kNoHistogramCells);
  }
  for (const auto& [name, snap] : histograms) {
    const bool empty = snap.count == 0;
    row("histogram", name, "",
        {std::to_string(snap.count),
         empty ? "" : std::to_string(snap.percentile(0.50)),
         empty ? "" : std::to_string(snap.percentile(0.90)),
         empty ? "" : std::to_string(snap.percentile(0.99)),
         std::to_string(snap.max_value)});
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  core::JsonWriter json;
  json.begin_object().key("counters").begin_object();
  for (const auto& [name, value] : counters) json.key(name).value(value);
  json.end_object().key("gauges").begin_object();
  for (const auto& [name, value] : gauges) {
    json.key(name).value(static_cast<std::int64_t>(value));
  }
  json.end_object().key("histograms").begin_object();
  for (const auto& [name, snap] : histograms) {
    json.key(name).begin_object().key("count").value(snap.count);
    if (snap.count > 0) {
      json.key("p50").value(snap.percentile(0.50))
          .key("p90").value(snap.percentile(0.90))
          .key("p99").value(snap.percentile(0.99));
    }
    json.key("max").value(snap.max_value).key("buckets").begin_array();
    for (const std::uint64_t bucket : snap.buckets) json.value(bucket);
    json.end_array().end_object();
  }
  json.end_object().end_object();
  return json.str();
}

}  // namespace hhc::obs
