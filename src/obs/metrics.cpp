#include "obs/metrics.hpp"

#include "core/io.hpp"

namespace hhc::obs {

std::vector<core::StatRow> MetricsSnapshot::rows() const {
  std::vector<core::StatRow> rows;
  rows.reserve(counters.size() + gauges.size() + histograms.size());
  for (const auto& [name, value] : counters) {
    rows.push_back(core::stat_scalar("counter", name, value));
  }
  for (const auto& [name, value] : gauges) {
    core::StatRow row = core::stat_scalar("gauge", name, std::uint64_t{0});
    row.value = static_cast<double>(value);  // gauges may be negative
    rows.push_back(std::move(row));
  }
  for (const auto& [name, snap] : histograms) {
    const bool empty = snap.count == 0;
    rows.push_back(core::stat_dist(
        "histogram", name, snap.count,
        empty ? 0.0 : snap.percentile(0.50),
        empty ? 0.0 : snap.percentile(0.90),
        empty ? 0.0 : snap.percentile(0.99), snap.max_value));
  }
  return rows;
}

std::string MetricsSnapshot::to_csv() const {
  return core::stat_rows_csv(rows());
}

std::string MetricsSnapshot::to_json() const {
  return core::stat_rows_json(rows());
}

}  // namespace hhc::obs
