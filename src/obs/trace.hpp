// Lightweight scoped tracing with per-thread ring buffers.
//
// A TraceSpan brackets one stage of work (construction, publication,
// fallback BFS, a campaign trial, ...). When tracing is DISABLED — the
// default — constructing and destroying a span costs one relaxed atomic
// load and a branch, so instrumentation stays resident on the hot query
// path permanently (bench_query_throughput pins the overhead at < 2%).
//
// When ENABLED, each completed span appends one fixed-size event to the
// calling thread's ring buffer. The ring is SINGLE-WRITER LOCK-FREE: the
// owning thread commits an event with a handful of relaxed atomic stores
// bracketed by a per-slot sequence counter (a seqlock), so an enabled span
// never takes a mutex either — the enabled-tracing throughput cost on the
// query hot path stays < 5% (pinned by the CI bench smoke check). Rings
// are bounded, drop-oldest; drain() snapshots every thread's slots and
// skips the (at most one per ring) event a concurrent wrap is mid-rewrite.
// Spans may nest freely; events carry wall-clock start/duration so nesting
// is reconstructed by containment — including across util::ThreadPool
// tasks, where a task's spans simply land on the worker thread's ring
// under that worker's tid (see DESIGN.md).
//
// Resetting (enable()/clear()) never mutates a ring a writer might be
// appending to: it bumps a global generation and starts a fresh ring set;
// each thread notices the stale generation on its next span and
// re-registers. Old rings stay alive (and inert) until their owner thread
// moves on or exits.
//
// A span can also feed a per-stage obs::Histogram (in µs) so aggregate
// stage latencies survive ring overflow; obs::stage_histogram(name) is the
// conventional sink. Draining gathers every thread's events (sorted by
// start time) for export as Chrome trace_event JSON (chrome://tracing,
// https://ui.perfetto.dev) or CSV — exporters live in trace.cpp.
//
// Everything needed to RECORD is header-inline for the same layering
// reason as metrics.hpp: hhc_core instruments itself without linking
// hhc_obs; only exporters need the library.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace hhc::obs {

/// One completed span. `name` must point at a string with static storage
/// duration (the stage constants in obs/stages.hpp); events store the
/// pointer, not a copy.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_nanos = 0;  // since the enabling Tracer epoch
  std::uint64_t dur_nanos = 0;
  std::uint32_t tid = 0;  // dense per-thread id, assigned at first span
};

namespace detail {

[[nodiscard]] inline std::uint64_t monotonic_nanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One thread's bounded event buffer. Exactly one writer (the owning
/// thread) appends; any thread may drain concurrently. Every slot field is
/// an atomic and each slot carries a seqlock-style sequence counter, so a
/// drain racing a wrap-around rewrite detects the torn slot and skips it
/// instead of blocking the writer.
struct TraceRing {
  struct Slot {
    std::atomic<std::uint32_t> seq{0};  // even = stable, odd = mid-write
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> start{0};
    std::atomic<std::uint64_t> dur{0};
  };

  TraceRing(std::size_t cap, std::uint32_t id)
      : capacity{cap}, tid{id},
        slots{cap > 0 ? std::make_unique<Slot[]>(cap) : nullptr} {}

  /// Owner thread only. Lock-free: a seq bump, three relaxed stores, a
  /// closing seq store, and the count publication.
  void append(const char* name, std::uint64_t start,
              std::uint64_t dur) noexcept {
    if (capacity == 0) return;
    const std::uint64_t n = count.load(std::memory_order_relaxed);
    Slot& slot = slots[n % capacity];
    const std::uint32_t seq = slot.seq.load(std::memory_order_relaxed);
    slot.seq.store(seq + 1, std::memory_order_relaxed);  // odd: mid-write
    std::atomic_thread_fence(std::memory_order_release);
    slot.name.store(name, std::memory_order_relaxed);
    slot.start.store(start, std::memory_order_relaxed);
    slot.dur.store(dur, std::memory_order_relaxed);
    slot.seq.store(seq + 2, std::memory_order_release);  // even: stable
    count.store(n + 1, std::memory_order_release);
  }

  /// Any thread. Appends every readable event to `out`; at most one slot
  /// (the one a concurrent wrap is rewriting) may be skipped per call.
  void snapshot(std::vector<TraceEvent>& out) const {
    const std::uint64_t n = count.load(std::memory_order_acquire);
    const std::uint64_t stored = n < capacity ? n : capacity;
    for (std::uint64_t i = 0; i < stored; ++i) {
      const Slot& slot = slots[i];
      const std::uint32_t s1 = slot.seq.load(std::memory_order_acquire);
      if ((s1 & 1) != 0) continue;  // mid-write
      TraceEvent event{slot.name.load(std::memory_order_relaxed),
                       slot.start.load(std::memory_order_relaxed),
                       slot.dur.load(std::memory_order_relaxed), tid};
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // torn
      out.push_back(event);
    }
  }

  [[nodiscard]] std::uint64_t dropped() const noexcept {
    const std::uint64_t n = count.load(std::memory_order_relaxed);
    return n > capacity ? n - capacity : 0;
  }

  const std::size_t capacity;
  const std::uint32_t tid;
  const std::unique_ptr<Slot[]> slots;
  std::atomic<std::uint64_t> count{0};  // total appends ever (owner writes)
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> epoch_nanos{0};
  /// Bumped by enable()/clear(); threads re-register when their cached
  /// generation is stale, which is how "reset" never touches a live ring.
  std::atomic<std::uint64_t> generation{1};
  mutable std::mutex mutex;  // guards rings + capacity + next_tid
  std::vector<std::shared_ptr<TraceRing>> rings;  // current generation only
  std::size_t capacity = 1 << 13;  // events per thread
  std::uint32_t next_tid = 0;
};

[[nodiscard]] inline TraceState& trace_state() {
  static TraceState state;
  return state;
}

/// This thread's current-generation ring, created and registered on first
/// use (and re-created after every enable()/clear()). The registry holds a
/// shared_ptr so buffered events survive thread exit until the next reset.
[[nodiscard]] inline TraceRing& thread_ring() {
  struct Local {
    std::shared_ptr<TraceRing> ring;
    std::uint64_t generation = 0;
  };
  thread_local Local local;
  TraceState& state = trace_state();
  const std::uint64_t generation =
      state.generation.load(std::memory_order_acquire);
  if (local.generation != generation) {
    std::lock_guard lock{state.mutex};
    local.ring = std::make_shared<TraceRing>(state.capacity, state.next_tid++);
    state.rings.push_back(local.ring);
    // Re-read under the lock: a reset that slipped in since the relaxed
    // check above must not leave a stale generation cached.
    local.generation = state.generation.load(std::memory_order_relaxed);
  }
  return *local.ring;
}

}  // namespace detail

/// Global switch + collection point for trace spans. All methods are
/// static; thread-safe.
class Tracer {
 public:
  /// True when spans are being recorded. THE hot-path check: one relaxed
  /// atomic load.
  [[nodiscard]] static bool enabled() noexcept {
    return detail::trace_state().enabled.load(std::memory_order_relaxed);
  }

  /// Starts (or restarts) collection: drops all previously buffered
  /// events, sizes new rings to `events_per_thread`, and resets the trace
  /// epoch so new timestamps start near zero.
  static void enable(std::size_t events_per_thread = 1 << 13) {
    detail::TraceState& state = detail::trace_state();
    {
      std::lock_guard lock{state.mutex};
      state.capacity = events_per_thread;
      state.rings.clear();
      state.next_tid = 0;
    }
    state.generation.fetch_add(1, std::memory_order_release);
    state.epoch_nanos.store(detail::monotonic_nanos(),
                            std::memory_order_relaxed);
    state.enabled.store(true, std::memory_order_relaxed);
  }

  /// Stops recording; buffered events stay available to drain(). A span
  /// already open when tracing flips off still records its event.
  static void disable() noexcept {
    detail::trace_state().enabled.store(false, std::memory_order_relaxed);
  }

  /// Copies out every buffered event across all threads, sorted by start
  /// time. Safe while tracing is live (concurrent spans either make the
  /// cut or the next drain). Does not clear the buffers.
  [[nodiscard]] static std::vector<TraceEvent> drain();

  /// Drops all buffered events and zeroes the drop counters.
  static void clear();

  /// Events lost to ring overflow since the last enable()/clear().
  [[nodiscard]] static std::uint64_t dropped();
};

/// RAII span: times the enclosing scope and records it on destruction.
/// `name` must have static storage duration. When `stage_hist` is non-null
/// the duration (µs) is also recorded there — pass
/// obs::stage_histogram(name), cached in a function-local static at the
/// call site.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     Histogram* stage_hist = nullptr) noexcept {
    if (!Tracer::enabled()) return;  // name_ stays null: disabled span
    name_ = name;
    hist_ = stage_hist;
    start_ = detail::monotonic_nanos();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (name_ == nullptr) return;
    const std::uint64_t end = detail::monotonic_nanos();
    const std::uint64_t dur = end > start_ ? end - start_ : 0;
    detail::TraceState& state = detail::trace_state();
    const std::uint64_t epoch =
        state.epoch_nanos.load(std::memory_order_relaxed);
    detail::thread_ring().append(name_, start_ > epoch ? start_ - epoch : 0,
                                 dur);
    if (hist_ != nullptr) hist_->record(static_cast<double>(dur) / 1e3);
  }

 private:
  const char* name_ = nullptr;
  Histogram* hist_ = nullptr;
  std::uint64_t start_ = 0;
};

/// Chrome trace_event JSON ("X" complete events, ts/dur in µs): load the
/// string into chrome://tracing or https://ui.perfetto.dev. pid is 0; tid
/// is the dense per-thread id from the events.
[[nodiscard]] std::string to_chrome_trace_json(
    const std::vector<TraceEvent>& events);

/// name,tid,start_us,dur_us — one row per event, header included.
[[nodiscard]] std::string to_trace_csv(const std::vector<TraceEvent>& events);

}  // namespace hhc::obs
