// Lightweight scoped tracing with per-thread ring buffers.
//
// A TraceSpan brackets one stage of work (cache lookup, construction,
// fallback BFS, a campaign trial, ...). When tracing is DISABLED — the
// default — constructing and destroying a span costs one relaxed atomic
// load and a branch, so instrumentation stays resident on the hot query
// path permanently (bench_query_throughput pins the overhead at < 2%).
//
// When ENABLED, each completed span appends one fixed-size event to the
// calling thread's ring buffer: bounded capacity, drop-oldest, one
// uncontended mutex lock per event (the ring is only ever contended by
// drain()). Spans may nest freely; events carry wall-clock start/duration
// so nesting is reconstructed by containment — including across
// util::ThreadPool tasks, where a task's spans simply land on the worker
// thread's ring under that worker's tid (see DESIGN.md).
//
// A span can also feed a per-stage obs::Histogram (in µs) so aggregate
// stage latencies survive ring overflow; obs::stage_histogram(name) is the
// conventional sink. Draining gathers every thread's events (sorted by
// start time) for export as Chrome trace_event JSON (chrome://tracing,
// https://ui.perfetto.dev) or CSV — exporters live in trace.cpp.
//
// Everything needed to RECORD is header-inline for the same layering
// reason as metrics.hpp: hhc_core instruments itself without linking
// hhc_obs; only exporters need the library.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace hhc::obs {

/// One completed span. `name` must point at a string with static storage
/// duration (the stage constants in obs/stages.hpp); events store the
/// pointer, not a copy.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_nanos = 0;  // since the enabling Tracer epoch
  std::uint64_t dur_nanos = 0;
  std::uint32_t tid = 0;  // dense per-thread id, assigned at first span
};

namespace detail {

[[nodiscard]] inline std::uint64_t monotonic_nanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One thread's bounded event buffer. Single hot writer (the owning
/// thread); drain()/clear()/enable() synchronize through `mutex`.
struct TraceRing {
  explicit TraceRing(std::size_t cap, std::uint32_t id)
      : capacity{cap}, tid{id} {
    events.reserve(capacity);
  }

  void append(const TraceEvent& event) {
    std::lock_guard lock{mutex};
    if (events.size() < capacity) {
      events.push_back(event);
    } else if (capacity > 0) {
      events[write] = event;  // overwrite the oldest
      write = (write + 1) % capacity;
      ++dropped;
    }
  }

  void reset(std::size_t new_capacity) {
    std::lock_guard lock{mutex};
    capacity = new_capacity;
    events.clear();
    events.reserve(capacity);
    write = 0;
    dropped = 0;
  }

  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::size_t capacity;
  std::size_t write = 0;      // oldest slot once full
  std::uint64_t dropped = 0;  // events overwritten since last reset
  std::uint32_t tid;
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> epoch_nanos{0};
  mutable std::mutex mutex;  // guards rings + capacity
  std::vector<std::shared_ptr<TraceRing>> rings;
  std::size_t capacity = 1 << 13;  // events per thread
  std::uint32_t next_tid = 0;
};

[[nodiscard]] inline TraceState& trace_state() {
  static TraceState state;
  return state;
}

/// This thread's ring, created and registered on first use. The registry
/// holds a shared_ptr so events survive thread exit until the next
/// clear()/enable().
[[nodiscard]] inline TraceRing& thread_ring() {
  thread_local std::shared_ptr<TraceRing> ring = [] {
    TraceState& state = trace_state();
    std::lock_guard lock{state.mutex};
    auto created =
        std::make_shared<TraceRing>(state.capacity, state.next_tid++);
    state.rings.push_back(created);
    return created;
  }();
  return *ring;
}

}  // namespace detail

/// Global switch + collection point for trace spans. All methods are
/// static; thread-safe.
class Tracer {
 public:
  /// True when spans are being recorded. THE hot-path check: one relaxed
  /// atomic load.
  [[nodiscard]] static bool enabled() noexcept {
    return detail::trace_state().enabled.load(std::memory_order_relaxed);
  }

  /// Starts (or restarts) collection: drops all previously buffered
  /// events, resizes every thread's ring to `events_per_thread`, and
  /// resets the trace epoch so new timestamps start near zero.
  static void enable(std::size_t events_per_thread = 1 << 13) {
    detail::TraceState& state = detail::trace_state();
    std::lock_guard lock{state.mutex};
    state.capacity = events_per_thread;
    for (const auto& ring : state.rings) ring->reset(events_per_thread);
    state.epoch_nanos.store(detail::monotonic_nanos(),
                            std::memory_order_relaxed);
    state.enabled.store(true, std::memory_order_relaxed);
  }

  /// Stops recording; buffered events stay available to drain(). A span
  /// already open when tracing flips off still records its event.
  static void disable() noexcept {
    detail::trace_state().enabled.store(false, std::memory_order_relaxed);
  }

  /// Copies out every buffered event across all threads, sorted by start
  /// time. Safe while tracing is live (concurrent spans either make the
  /// cut or the next drain). Does not clear the buffers.
  [[nodiscard]] static std::vector<TraceEvent> drain();

  /// Drops all buffered events and zeroes the drop counters.
  static void clear();

  /// Events lost to ring overflow since the last enable()/clear().
  [[nodiscard]] static std::uint64_t dropped();
};

/// RAII span: times the enclosing scope and records it on destruction.
/// `name` must have static storage duration. When `stage_hist` is non-null
/// the duration (µs) is also recorded there — pass
/// obs::stage_histogram(name), cached in a function-local static at the
/// call site.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     Histogram* stage_hist = nullptr) noexcept {
    if (!Tracer::enabled()) return;  // name_ stays null: disabled span
    name_ = name;
    hist_ = stage_hist;
    start_ = detail::monotonic_nanos();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (name_ == nullptr) return;
    const std::uint64_t end = detail::monotonic_nanos();
    const std::uint64_t dur = end > start_ ? end - start_ : 0;
    detail::TraceState& state = detail::trace_state();
    const std::uint64_t epoch =
        state.epoch_nanos.load(std::memory_order_relaxed);
    detail::TraceRing& ring = detail::thread_ring();
    ring.append(TraceEvent{name_, start_ > epoch ? start_ - epoch : 0, dur,
                           ring.tid});
    if (hist_ != nullptr) hist_->record(static_cast<double>(dur) / 1e3);
  }

 private:
  const char* name_ = nullptr;
  Histogram* hist_ = nullptr;
  std::uint64_t start_ = 0;
};

/// Chrome trace_event JSON ("X" complete events, ts/dur in µs): load the
/// string into chrome://tracing or https://ui.perfetto.dev. pid is 0; tid
/// is the dense per-thread id from the events.
[[nodiscard]] std::string to_chrome_trace_json(
    const std::vector<TraceEvent>& events);

/// name,tid,start_us,dur_us — one row per event, header included.
[[nodiscard]] std::string to_trace_csv(const std::vector<TraceEvent>& events);

}  // namespace hhc::obs
