#include <gtest/gtest.h>

#include "core/disjoint.hpp"
#include "cube/hypercube.hpp"
#include "graph/brute_force.hpp"

namespace hhc::graph {
namespace {

AdjacencyList square() {
  AdjacencyList g{4};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  return g;
}

TEST(BruteForce, EnumeratesAllPathsOnSquare) {
  const auto g = square();
  const auto paths = enumerate_simple_paths(g, 0, 2, 10);
  ASSERT_EQ(paths.size(), 2u);  // 0-1-2 and 0-3-2
  EXPECT_EQ(paths[0].size(), 3u);
  EXPECT_EQ(paths[1].size(), 3u);
}

TEST(BruteForce, MaxLengthPrunes) {
  const auto g = square();
  EXPECT_TRUE(enumerate_simple_paths(g, 0, 2, 1).empty());
  EXPECT_EQ(enumerate_simple_paths(g, 0, 1, 1).size(), 1u);
  EXPECT_EQ(enumerate_simple_paths(g, 0, 1, 3).size(), 2u);  // direct + long way
}

TEST(BruteForce, PathsSortedByLength) {
  const auto g = cube::Hypercube{3}.explicit_graph();
  const auto paths = enumerate_simple_paths(g, 0, 7, 7);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].size(), paths[i].size());
  }
}

TEST(BruteForce, OptimalContainerOnSquare) {
  const auto g = square();
  // Two disjoint 0-2 paths of length 2 each: optimal max = 2.
  EXPECT_EQ(optimal_container_max_length(g, 0, 2, 2, 10), 2u);
  // Three disjoint paths cannot exist (degree 2).
  EXPECT_EQ(optimal_container_max_length(g, 0, 2, 3, 10), std::nullopt);
}

TEST(BruteForce, OptimalContainerOnQ3) {
  const auto g = cube::Hypercube{3}.explicit_graph();
  // Antipodal pair in Q_3: 3 disjoint paths, best achievable max = 3
  // (three parallel shortest paths exist).
  EXPECT_EQ(optimal_container_max_length(g, 0, 7, 3, 7), 3u);
  // Adjacent pair: direct edge + two detours of length 3.
  EXPECT_EQ(optimal_container_max_length(g, 0, 1, 3, 7), 3u);
}

TEST(BruteForce, ConstructedContainerMatchesOptimalOnHhcM1) {
  // HHC(3) has only 8 nodes: compare the constructive container against
  // the brute-force optimum for every pair. The construction must be
  // within a small additive margin — and the test records exactly where.
  const core::HhcTopology net{1};
  const auto g = net.explicit_graph();
  std::size_t worst_gap = 0;
  std::size_t optimal_wide_diameter = 0;
  std::size_t constructed_wide_diameter = 0;
  for (core::Node s = 0; s < net.node_count(); ++s) {
    for (core::Node t = 0; t < net.node_count(); ++t) {
      if (s == t) continue;
      const auto optimal = optimal_container_max_length(
          g, static_cast<Vertex>(s), static_cast<Vertex>(t), net.degree(),
          net.node_count());
      ASSERT_TRUE(optimal.has_value()) << s << "->" << t;
      const auto constructed =
          core::node_disjoint_paths(net, s, t).max_length();
      EXPECT_GE(constructed, *optimal);
      worst_gap = std::max(worst_gap, constructed - *optimal);
      optimal_wide_diameter = std::max(optimal_wide_diameter, *optimal);
      constructed_wide_diameter =
          std::max(constructed_wide_diameter, constructed);
    }
  }
  // Exact 2-wide diameter of HHC(3) (brute force): record and pin it.
  EXPECT_EQ(optimal_wide_diameter, 7u);
  EXPECT_EQ(constructed_wide_diameter, 7u);  // the construction achieves it
  EXPECT_LE(worst_gap, 2u);  // per-pair overhead stays tiny
}

TEST(BruteForce, RejectsBadInput) {
  const auto g = square();
  EXPECT_THROW((void)enumerate_simple_paths(g, 0, 0, 5),
               std::invalid_argument);
  EXPECT_THROW((void)enumerate_simple_paths(g, 0, 9, 5),
               std::invalid_argument);
}

}  // namespace
}  // namespace hhc::graph
