#include <gtest/gtest.h>

#include "core/io.hpp"

namespace hhc::core {
namespace {

TEST(Io, FormatNodeBinaryFields) {
  const HhcTopology net{2};
  EXPECT_EQ(format_node(net, net.encode(0b0110, 0b01)), "(0110,01)");
  EXPECT_EQ(format_node(net, net.encode(0, 0)), "(0000,00)");
}

TEST(Io, FormatNodeRejectsBad) {
  const HhcTopology net{2};
  EXPECT_THROW((void)format_node(net, net.node_count()),
               std::invalid_argument);
}

TEST(Io, FormatPathJoinsWithArrows) {
  const HhcTopology net{2};
  const Path p{net.encode(0, 0), net.encode(0, 1)};
  EXPECT_EQ(format_path(net, p), "(0000,00) -> (0000,01)");
  EXPECT_EQ(format_path(net, {}), "");
}

TEST(Io, ToDotContainsAllNodesAndStructure) {
  const HhcTopology net{1};
  const auto dot = to_dot(net);
  EXPECT_NE(dot.find("graph hhc"), std::string::npos);
  for (Node v = 0; v < net.node_count(); ++v) {
    EXPECT_NE(dot.find("n" + std::to_string(v)), std::string::npos);
  }
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // external edges
}

TEST(Io, ToDotEdgeCountMatchesTopology) {
  const HhcTopology net{2};
  const auto dot = to_dot(net);
  std::size_t edges = 0;
  for (std::size_t pos = dot.find(" -- "); pos != std::string::npos;
       pos = dot.find(" -- ", pos + 1)) {
    ++edges;
  }
  EXPECT_EQ(edges, net.node_count() * net.degree() / 2);
}

TEST(Io, ToDotRejectsLargeM) {
  EXPECT_THROW((void)to_dot(HhcTopology{3}), std::invalid_argument);
}

TEST(Io, ContainerDotColorsEachPath) {
  const HhcTopology net{2};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(9, 2);
  const auto set = node_disjoint_paths(net, s, t);
  const auto dot = container_to_dot(net, set, s, t);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  for (std::size_t i = 1; i <= set.paths.size(); ++i) {
    EXPECT_NE(dot.find("color=" + std::to_string(i)), std::string::npos);
  }
  // Every hop appears as an undirected edge line.
  std::size_t edges = 0;
  for (std::size_t pos = dot.find(" -- "); pos != std::string::npos;
       pos = dot.find(" -- ", pos + 1)) {
    ++edges;
  }
  std::size_t expected = 0;
  for (const auto& p : set.paths) expected += p.size() - 1;
  EXPECT_EQ(edges, expected);
}

TEST(Io, ContainerDotWorksAtLargeScale) {
  const HhcTopology net{5};  // implicit-only scale still renders containers
  const Node s = 1;
  const Node t = net.node_count() - 2;
  const auto set = node_disjoint_paths(net, s, t);
  const auto dot = container_to_dot(net, set, s, t);
  EXPECT_NE(dot.find("graph container"), std::string::npos);
}

TEST(Io, CsvRowJoinsPlainCells) {
  EXPECT_EQ(csv_row({"a", "b", "c"}), "a,b,c");
  EXPECT_EQ(csv_row({}), "");
  EXPECT_EQ(csv_row({"solo"}), "solo");
}

TEST(Io, CsvRowQuotesSpecialCells) {
  EXPECT_EQ(csv_row({"a,b", "c"}), "\"a,b\",c");
  EXPECT_EQ(csv_row({"say \"hi\""}), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_row({"line\nbreak"}), "\"line\nbreak\"");
}

TEST(Io, JsonWriterEmitsNestedDocument) {
  JsonWriter w;
  w.begin_object()
      .key("name")
      .value("hhc")
      .key("m")
      .value(3)
      .key("ok")
      .value(true)
      .key("rate")
      .value(0.5)
      .key("rows")
      .begin_array()
      .value(std::uint64_t{1})
      .value(std::uint64_t{2})
      .end_array()
      .end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"hhc\",\"m\":3,\"ok\":true,\"rate\":0.5,"
            "\"rows\":[1,2]}");
}

TEST(Io, JsonWriterEscapesStrings) {
  JsonWriter w;
  w.begin_array().value("quote\" slash\\ tab\t").end_array();
  EXPECT_EQ(w.str(), "[\"quote\\\" slash\\\\ tab\\t\"]");
}

TEST(Io, JsonWriterRejectsMisuse) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key inside array
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW((void)w.str(), std::logic_error);  // unterminated document
  }
  {
    JsonWriter w;
    w.begin_object().key("k");
    EXPECT_THROW(w.end_object(), std::logic_error);  // dangling key
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // mismatched close
  }
}

}  // namespace
}  // namespace hhc::core
