#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "cube/cube_disjoint.hpp"
#include "graph/path_utils.hpp"
#include "util/rng.hpp"

namespace hhc::cube {
namespace {

void check_container(const Hypercube& q, CubeNode s, CubeNode t,
                     std::size_t count) {
  const auto paths = disjoint_paths(q, s, t, count);
  ASSERT_EQ(paths.size(), count);
  const auto g = q.explicit_graph();
  std::vector<graph::VertexPath> vpaths;
  for (const auto& p : paths) {
    graph::VertexPath vp;
    for (const auto v : p) vp.push_back(static_cast<graph::Vertex>(v));
    ASSERT_TRUE(graph::validate_path_between(g, vp,
                                             static_cast<graph::Vertex>(s),
                                             static_cast<graph::Vertex>(t))
                    .ok);
    vpaths.push_back(std::move(vp));
  }
  const std::vector<graph::Vertex> shared{static_cast<graph::Vertex>(s),
                                          static_cast<graph::Vertex>(t)};
  EXPECT_TRUE(graph::validate_internally_disjoint(g, vpaths, shared).ok)
      << "s=" << s << " t=" << t;
}

TEST(CubeDisjoint, AllPairsQ3FullContainer) {
  const Hypercube q{3};
  for (CubeNode s = 0; s < 8; ++s) {
    for (CubeNode t = 0; t < 8; ++t) {
      if (s != t) check_container(q, s, t, 3);
    }
  }
}

TEST(CubeDisjoint, AllPairsQ4FullContainer) {
  const Hypercube q{4};
  for (CubeNode s = 0; s < 16; ++s) {
    for (CubeNode t = 0; t < 16; ++t) {
      if (s != t) check_container(q, s, t, 4);
    }
  }
}

TEST(CubeDisjoint, RandomPairsQ8) {
  const Hypercube q{8};
  util::Xoshiro256 rng{5};
  for (int trial = 0; trial < 50; ++trial) {
    const CubeNode s = rng.below(256);
    const CubeNode t = rng.below(256);
    if (s != t) check_container(q, s, t, 8);
  }
}

TEST(CubeDisjoint, RotationPathsHaveMinimalLength) {
  const Hypercube q{6};
  const CubeNode s = 0b000000;
  const CubeNode t = 0b111000;  // distance 3
  const auto paths = disjoint_paths(q, s, t, 6);
  // k = 3 rotations of length 3, then detours of length 5.
  int short_paths = 0;
  int long_paths = 0;
  for (const auto& p : paths) {
    if (p.size() - 1 == 3) ++short_paths;
    if (p.size() - 1 == 5) ++long_paths;
  }
  EXPECT_EQ(short_paths, 3);
  EXPECT_EQ(long_paths, 3);
}

TEST(CubeDisjoint, SequencesHaveDistinctFirstAndLastDimensions) {
  const Hypercube q{5};
  const auto seqs = disjoint_route_sequences(q, 0b00000, 0b00111, 5);
  std::set<unsigned> firsts;
  std::set<unsigned> lasts;
  for (const auto& s : seqs) {
    firsts.insert(s.front());
    lasts.insert(s.back());
  }
  EXPECT_EQ(firsts.size(), 5u);
  EXPECT_EQ(lasts.size(), 5u);
}

TEST(CubeDisjoint, PartialContainerRequestsFewerPaths) {
  const Hypercube q{7};
  const auto paths = disjoint_paths(q, 0, 0b1111111, 2);
  EXPECT_EQ(paths.size(), 2u);
}

TEST(CubeDisjoint, RejectsTooManyPaths) {
  const Hypercube q{3};
  EXPECT_THROW((void)disjoint_paths(q, 0, 1, 4), std::invalid_argument);
}

TEST(CubeDisjoint, RejectsEqualEndpoints) {
  const Hypercube q{3};
  EXPECT_THROW((void)disjoint_paths(q, 2, 2, 1), std::invalid_argument);
}

TEST(CubeDisjoint, ScratchOverloadMatchesLegacy) {
  // The arena-backed overload must reproduce the copying API node for node
  // (and reject the same inputs) — it is the same route realization, just
  // written into reusable storage.
  CubeDisjointScratch scratch;
  util::Xoshiro256 rng{0xC0BE};
  for (unsigned n = 2; n <= 7; ++n) {
    const Hypercube q{n};
    for (int trial = 0; trial < 40; ++trial) {
      const CubeNode s = rng.below(q.node_count());
      CubeNode t = rng.below(q.node_count());
      if (s == t) t ^= 1;
      const std::size_t count = 1 + rng.below(n);
      const auto legacy = disjoint_paths(q, s, t, count);
      const auto refs = disjoint_paths(q, s, t, count, scratch);
      ASSERT_EQ(refs.size(), legacy.size()) << "n=" << n;
      for (std::size_t i = 0; i < refs.size(); ++i) {
        ASSERT_TRUE(std::equal(refs[i].begin(), refs[i].end(),
                               legacy[i].begin(), legacy[i].end()))
            << "n=" << n << " s=" << s << " t=" << t << " path " << i;
      }
    }
  }
  EXPECT_THROW((void)disjoint_paths(Hypercube{3}, 0, 1, 4, scratch),
               std::invalid_argument);
  EXPECT_THROW((void)disjoint_paths(Hypercube{3}, 2, 2, 1, scratch),
               std::invalid_argument);
}

// Parameterized dimension sweep: each n gets its own test cell so a
// regression localizes immediately.
class CubeContainerSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(CubeContainerSweep, RandomContainersAreDisjoint) {
  const unsigned n = GetParam();
  const Hypercube q{n};
  util::Xoshiro256 rng{n * 31u};
  for (int trial = 0; trial < 25; ++trial) {
    const CubeNode s = rng.below(q.node_count());
    const CubeNode t = rng.below(q.node_count());
    if (s != t) check_container(q, s, t, n);
  }
}

INSTANTIATE_TEST_SUITE_P(Dimensions, CubeContainerSweep,
                         ::testing::Range(2u, 10u),
                         [](const ::testing::TestParamInfo<unsigned>& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

TEST(CubeDisjoint, RealizeRouteTracesDimensions) {
  const Hypercube q{4};
  const auto path = realize_route(q, 0b0000, {1, 3, 1});
  const CubePath expected{0b0000, 0b0010, 0b1010, 0b1000};
  EXPECT_EQ(path, expected);
}

}  // namespace
}  // namespace hhc::cube
