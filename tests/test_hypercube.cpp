#include <gtest/gtest.h>

#include "cube/hypercube.hpp"
#include "graph/bfs.hpp"

namespace hhc::cube {
namespace {

TEST(Hypercube, RejectsBadDimension) {
  EXPECT_THROW(Hypercube{0}, std::invalid_argument);
  EXPECT_THROW(Hypercube{64}, std::invalid_argument);
  EXPECT_NO_THROW(Hypercube{63});
}

TEST(Hypercube, NodeCount) {
  EXPECT_EQ(Hypercube{1}.node_count(), 2u);
  EXPECT_EQ(Hypercube{10}.node_count(), 1024u);
  EXPECT_EQ(Hypercube{40}.node_count(), 1ull << 40);
}

TEST(Hypercube, NeighborsFlipOneBit) {
  const Hypercube q{4};
  const auto nbrs = q.neighbors(0b1010);
  ASSERT_EQ(nbrs.size(), 4u);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(nbrs[i], 0b1010u ^ (1u << i));
    EXPECT_TRUE(q.is_edge(0b1010, nbrs[i]));
  }
}

TEST(Hypercube, EdgeIffHammingOne) {
  const Hypercube q{3};
  EXPECT_TRUE(q.is_edge(0b000, 0b001));
  EXPECT_FALSE(q.is_edge(0b000, 0b011));
  EXPECT_FALSE(q.is_edge(0b000, 0b000));
}

TEST(Hypercube, DistanceIsHamming) {
  const Hypercube q{5};
  EXPECT_EQ(q.distance(0b00000, 0b11111), 5);
  EXPECT_EQ(q.distance(0b10101, 0b10101), 0);
}

TEST(Hypercube, ShortestPathIsShortest) {
  const Hypercube q{6};
  const CubeNode u = 0b101010;
  const CubeNode v = 0b010101;
  const auto p = q.shortest_path(u, v);
  ASSERT_EQ(p.size(), static_cast<std::size_t>(q.distance(u, v)) + 1);
  EXPECT_EQ(p.front(), u);
  EXPECT_EQ(p.back(), v);
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    EXPECT_TRUE(q.is_edge(p[i], p[i + 1]));
  }
}

TEST(Hypercube, ShortestPathTrivial) {
  const Hypercube q{3};
  const auto p = q.shortest_path(5, 5);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 5u);
}

TEST(Hypercube, ShortestPathOrderedRespectsOrder) {
  const Hypercube q{4};
  const auto p = q.shortest_path_ordered(0b0000, 0b0110, {2, 1});
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[1], 0b0100u);  // dimension 2 first
  EXPECT_EQ(p[2], 0b0110u);
}

TEST(Hypercube, ShortestPathOrderedIgnoresExtraDimensions) {
  const Hypercube q{4};
  const auto p = q.shortest_path_ordered(0b0000, 0b0001, {3, 2, 1, 0});
  ASSERT_EQ(p.size(), 2u);
}

TEST(Hypercube, ShortestPathOrderedRejectsIncompleteOrder) {
  const Hypercube q{4};
  EXPECT_THROW((void)q.shortest_path_ordered(0b0000, 0b0011, {0}),
               std::invalid_argument);
}

TEST(Hypercube, ExplicitGraphStructure) {
  const Hypercube q{4};
  const auto g = q.explicit_graph();
  EXPECT_EQ(g.vertex_count(), 16u);
  EXPECT_EQ(g.edge_count(), 16u * 4 / 2);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_EQ(graph::diameter(g), 4u);  // diameter of Q_n is n
}

TEST(Hypercube, ExplicitGraphRejectsHugeDimension) {
  EXPECT_THROW((void)Hypercube{21}.explicit_graph(), std::invalid_argument);
}

TEST(Hypercube, OutOfRangeNodesRejected) {
  const Hypercube q{3};
  EXPECT_THROW((void)q.neighbors(8), std::invalid_argument);
  EXPECT_THROW((void)q.neighbor(0, 3), std::invalid_argument);
  EXPECT_THROW((void)q.shortest_path(0, 8), std::invalid_argument);
}

}  // namespace
}  // namespace hhc::cube
