#include <gtest/gtest.h>

#include <set>

#include "cube/hcn.hpp"
#include "graph/bfs.hpp"
#include "graph/vertex_disjoint.hpp"
#include "util/rng.hpp"

namespace hhc::cube {
namespace {

TEST(Hcn, RejectsBadN) {
  EXPECT_THROW(HierarchicalCubic{0}, std::invalid_argument);
  EXPECT_THROW(HierarchicalCubic{32}, std::invalid_argument);
}

TEST(Hcn, BasicParameters) {
  const HierarchicalCubic hcn{3};
  EXPECT_EQ(hcn.node_count(), 64u);
  EXPECT_EQ(hcn.degree(), 4u);
  EXPECT_EQ(hcn.cluster_of(hcn.encode(5, 2)), 5u);
  EXPECT_EQ(hcn.position_of(hcn.encode(5, 2)), 2u);
}

TEST(Hcn, SwapLinkSymmetric) {
  const HierarchicalCubic hcn{3};
  const auto v = hcn.encode(5, 2);
  const auto u = hcn.external_neighbor(v);
  EXPECT_EQ(u, hcn.encode(2, 5));
  EXPECT_EQ(hcn.external_neighbor(u), v);
}

TEST(Hcn, DiameterLinkConnectsComplementaryDiagonal) {
  const HierarchicalCubic hcn{3};
  const auto v = hcn.encode(0b010, 0b010);
  const auto u = hcn.external_neighbor(v);
  EXPECT_EQ(u, hcn.encode(0b101, 0b101));
  EXPECT_EQ(hcn.external_neighbor(u), v);
}

TEST(Hcn, NeighborRelationSymmetricAndRegular) {
  const HierarchicalCubic hcn{2};
  for (std::uint64_t v = 0; v < hcn.node_count(); ++v) {
    const auto nbrs = hcn.neighbors(v);
    const std::set<std::uint64_t> distinct(nbrs.begin(), nbrs.end());
    EXPECT_EQ(distinct.size(), hcn.degree());
    EXPECT_EQ(distinct.count(v), 0u);
    for (const auto u : nbrs) {
      EXPECT_TRUE(hcn.is_edge(v, u));
      EXPECT_TRUE(hcn.is_edge(u, v));
    }
  }
}

TEST(Hcn, ExplicitGraphConnectedAndRegular) {
  for (unsigned n = 1; n <= 4; ++n) {
    const HierarchicalCubic hcn{n};
    const auto g = hcn.explicit_graph();
    EXPECT_TRUE(graph::is_connected(g)) << "n=" << n;
    EXPECT_EQ(g.min_degree(), hcn.degree()) << "n=" << n;
    EXPECT_EQ(g.edge_count(), hcn.node_count() * hcn.degree() / 2);
  }
}

TEST(Hcn, MeasuredDiametersAreStable) {
  // Golden values from exhaustive BFS over this exact definition (swap +
  // complementary diameter links); guards against topology regressions.
  const unsigned expected[] = {2, 4, 5, 6, 8};
  for (unsigned n = 1; n <= 5; ++n) {
    const HierarchicalCubic hcn{n};
    EXPECT_EQ(graph::diameter(hcn.explicit_graph()), expected[n - 1])
        << "n=" << n;
  }
}

TEST(Hcn, ConnectivityEqualsDegree) {
  for (unsigned n = 2; n <= 4; ++n) {
    const HierarchicalCubic hcn{n};
    const auto g = hcn.explicit_graph();
    util::Xoshiro256 rng{n};
    for (int trial = 0; trial < 25; ++trial) {
      const auto s = static_cast<graph::Vertex>(rng.below(hcn.node_count()));
      const auto t = static_cast<graph::Vertex>(rng.below(hcn.node_count()));
      if (s == t) continue;
      EXPECT_EQ(graph::vertex_connectivity_between(g, s, t), hcn.degree())
          << "n=" << n << " s=" << s << " t=" << t;
    }
  }
}

TEST(Hcn, RouteIsValid) {
  const HierarchicalCubic hcn{4};
  util::Xoshiro256 rng{9};
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t s = rng.below(hcn.node_count());
    const std::uint64_t t = rng.below(hcn.node_count());
    const auto path = hcn.route(s, t);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), t);
    std::set<std::uint64_t> seen;
    for (const auto v : path) EXPECT_TRUE(seen.insert(v).second);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(hcn.is_edge(path[i], path[i + 1]));
    }
  }
}

TEST(Hcn, SwapRouteLengthBound) {
  // Swap route: H(Ys, Xt) + 1 + H(Xs, Yt) <= 2n + 1 edges.
  const HierarchicalCubic hcn{5};
  util::Xoshiro256 rng{11};
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t s = rng.below(hcn.node_count());
    const std::uint64_t t = rng.below(hcn.node_count());
    const auto path = hcn.route(s, t);
    EXPECT_LE(path.size() - 1, 2 * hcn.n() + 1);
  }
}

TEST(Hcn, RouteNearOptimal) {
  // The swap route ignores diameter links, so single pairs can pay up to
  // the full 2n+1 envelope (e.g. diameter-link neighbors); on average the
  // stretch over exact distances must stay small.
  const HierarchicalCubic hcn{3};
  const auto g = hcn.explicit_graph();
  double stretch_sum = 0;
  std::size_t pairs = 0;
  for (std::uint64_t s = 0; s < hcn.node_count(); s += 5) {
    const auto dist = graph::bfs_distances(g, static_cast<graph::Vertex>(s));
    for (std::uint64_t t = 0; t < hcn.node_count(); ++t) {
      if (s == t) continue;
      const auto path = hcn.route(s, t);
      const auto exact = dist[static_cast<graph::Vertex>(t)];
      EXPECT_GE(path.size() - 1, exact);
      EXPECT_LE(path.size() - 1, 2 * hcn.n() + 1);
      stretch_sum += static_cast<double>(path.size() - 1) / exact;
      ++pairs;
    }
  }
  EXPECT_LT(stretch_sum / static_cast<double>(pairs), 1.5);
}

TEST(Hcn, ExplicitGraphRejectsHugeN) {
  EXPECT_THROW((void)HierarchicalCubic{9}.explicit_graph(),
               std::invalid_argument);
}

}  // namespace
}  // namespace hhc::cube
