#include <gtest/gtest.h>

#include "core/broadcast.hpp"

namespace hhc::core {
namespace {

TEST(Broadcast, ValidScheduleFromCornerRoot) {
  for (unsigned m = 1; m <= 3; ++m) {
    const HhcTopology net{m};
    const auto schedule = broadcast_schedule(net, 0);
    EXPECT_TRUE(verify_broadcast_schedule(net, schedule, 0)) << "m=" << m;
    EXPECT_EQ(schedule.message_count(), net.node_count() - 1) << "m=" << m;
  }
}

TEST(Broadcast, ValidFromEveryRootM1M2) {
  for (unsigned m = 1; m <= 2; ++m) {
    const HhcTopology net{m};
    for (Node root = 0; root < net.node_count(); ++root) {
      const auto schedule = broadcast_schedule(net, root);
      EXPECT_TRUE(verify_broadcast_schedule(net, schedule, root))
          << "m=" << m << " root=" << root;
    }
  }
}

TEST(Broadcast, ValidAtScaleM4) {
  const HhcTopology net{4};
  const auto schedule = broadcast_schedule(net, net.encode(12345, 7));
  EXPECT_TRUE(verify_broadcast_schedule(net, schedule, net.encode(12345, 7)));
  EXPECT_EQ(schedule.message_count(), net.node_count() - 1);
}

TEST(Broadcast, RoundCountWithinDesignEnvelope) {
  for (unsigned m = 1; m <= 4; ++m) {
    const HhcTopology net{m};
    const auto schedule = broadcast_schedule(net, 0);
    // m initial rounds + per X-dimension: 1 crossing + m internal rounds.
    const std::size_t envelope =
        m + net.cluster_dimensions() * (m + 1);
    EXPECT_LE(schedule.round_count(), envelope) << "m=" << m;
    EXPECT_GE(schedule.round_count(), broadcast_lower_bound(net)) << "m=" << m;
  }
}

TEST(Broadcast, LowerBoundIsLogN) {
  EXPECT_EQ(broadcast_lower_bound(HhcTopology{2}), 6u);
  EXPECT_EQ(broadcast_lower_bound(HhcTopology{3}), 11u);
}

TEST(Broadcast, RejectsBadInput) {
  const HhcTopology small{2};
  EXPECT_THROW((void)broadcast_schedule(small, small.node_count()),
               std::invalid_argument);
  const HhcTopology big{5};
  EXPECT_THROW((void)broadcast_schedule(big, 0), std::invalid_argument);
}

TEST(Reduction, ValidFromEveryRootM1M2) {
  for (unsigned m = 1; m <= 2; ++m) {
    const HhcTopology net{m};
    for (Node root = 0; root < net.node_count(); ++root) {
      const auto schedule = reduction_schedule(net, root);
      EXPECT_TRUE(verify_reduction_schedule(net, schedule, root))
          << "m=" << m << " root=" << root;
      EXPECT_EQ(schedule.message_count(), net.node_count() - 1);
    }
  }
}

TEST(Reduction, ValidAtScaleM3M4) {
  for (unsigned m = 3; m <= 4; ++m) {
    const HhcTopology net{m};
    const Node root = net.encode(net.cluster_count() / 3, 1);
    const auto schedule = reduction_schedule(net, root);
    EXPECT_TRUE(verify_reduction_schedule(net, schedule, root)) << "m=" << m;
  }
}

TEST(Reduction, MirrorsBroadcastRoundCount) {
  const HhcTopology net{2};
  EXPECT_EQ(reduction_schedule(net, 5).round_count(),
            broadcast_schedule(net, 5).round_count());
}

TEST(Reduction, VerifierCatchesViolations) {
  const HhcTopology net{1};
  const auto schedule = reduction_schedule(net, 0);
  ASSERT_TRUE(verify_reduction_schedule(net, schedule, 0));

  // Wrong root: the root must never send, and accumulation lands wrong.
  EXPECT_FALSE(verify_reduction_schedule(net, schedule, 3));

  // Tamper: duplicate a transmission -> double send.
  auto dup = schedule;
  dup.rounds.back().push_back(dup.rounds.front().front());
  EXPECT_FALSE(verify_reduction_schedule(net, dup, 0));

  // Tamper: drop a round -> some node never contributes.
  auto truncated = schedule;
  truncated.rounds.pop_back();
  EXPECT_FALSE(verify_reduction_schedule(net, truncated, 0));
}

TEST(Broadcast, VerifierCatchesViolations) {
  const HhcTopology net{1};
  auto schedule = broadcast_schedule(net, 0);
  ASSERT_TRUE(verify_broadcast_schedule(net, schedule, 0));

  // Tamper: non-edge transmission.
  auto bad1 = schedule;
  bad1.rounds[0][0].second = bad1.rounds[0][0].first;
  EXPECT_FALSE(verify_broadcast_schedule(net, bad1, 0));

  // Tamper: drop a round -> incomplete coverage.
  auto bad2 = schedule;
  bad2.rounds.pop_back();
  EXPECT_FALSE(verify_broadcast_schedule(net, bad2, 0));

  // Wrong root: senders not informed.
  EXPECT_FALSE(verify_broadcast_schedule(net, schedule, 7));
}

}  // namespace
}  // namespace hhc::core
