#include <gtest/gtest.h>

#include "core/container_cache.hpp"
#include "core/io.hpp"
#include "core/metrics.hpp"
#include "util/rng.hpp"

namespace hhc::core {
namespace {

TEST(ContainerCache, MatchesDirectConstructionExactly) {
  const HhcTopology net{3};
  ContainerCache cache{net};
  for (const auto& [s, t] : sample_pairs(net, 300, 77)) {
    const auto direct = node_disjoint_paths(net, s, t);
    const auto cached = cache.lookup(s, t).materialize();
    ASSERT_EQ(cached.paths.size(), direct.paths.size());
    for (std::size_t i = 0; i < direct.paths.size(); ++i) {
      EXPECT_EQ(cached.paths[i], direct.paths[i]) << "s=" << s << " t=" << t;
    }
  }
}

TEST(ContainerCache, TranslatedPairsHitTheCache) {
  const HhcTopology net{3};
  ContainerCache cache{net};
  const std::uint64_t ys = 2;
  const std::uint64_t yt = 5;
  const std::uint64_t xdiff = 0b10011010;
  // Same canonical triple under many translations: one miss, rest hits.
  for (std::uint64_t a = 0; a < 40; ++a) {
    const Node s = net.encode(a, ys);
    const Node t = net.encode(a ^ xdiff, yt);
    const auto set = cache.lookup(s, t).materialize();
    std::string why;
    EXPECT_TRUE(verify_disjoint_path_set(net, set, s, t, &why)) << why;
  }
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 39u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ContainerCache, DistinctTriplesMiss) {
  const HhcTopology net{2};
  ContainerCache cache{net};
  (void)cache.lookup(net.encode(0, 0), net.encode(1, 1));
  (void)cache.lookup(net.encode(0, 0), net.encode(2, 1));  // different xdiff
  (void)cache.lookup(net.encode(0, 1), net.encode(1, 0));  // different ys/yt
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(ContainerCache, SameClusterPairsWork) {
  const HhcTopology net{2};
  ContainerCache cache{net};
  const Node s = net.encode(7, 0);
  const Node t = net.encode(7, 3);
  const auto set = cache.lookup(s, t).materialize();
  std::string why;
  EXPECT_TRUE(verify_disjoint_path_set(net, set, s, t, &why)) << why;
  // A second same-cluster pair with the same positions hits.
  (void)cache.lookup(net.encode(9, 0), net.encode(9, 3));
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(ContainerCache, ClearResetsStorageAndCounters) {
  // clear() means "as good as freshly constructed": entries AND counters go,
  // so post-clear hit rates are meaningful (the documented choice).
  const HhcTopology net{2};
  ContainerCache cache{net};
  (void)cache.lookup(0, 63);
  (void)cache.lookup(0, 63);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(ContainerCache, TopologyHeldByReference) {
  // The cache no longer copies the topology: answers must come from the
  // caller's instance. (Compile-time shape: ContainerCache is not copyable
  // and takes const&; this exercises the aliasing at runtime.)
  const HhcTopology net{2};
  ContainerCache cache{net};
  EXPECT_EQ(&cache.net(), &net);
}

TEST(ContainerCache, OptionsArePartOfTheKey) {
  // kCanonical and kBalanced build different containers for some pairs;
  // serving one policy's container for the other would break bit-identity.
  const HhcTopology net{3};
  ContainerCache cache{net};
  const ConstructionOptions balanced{.selection = RouteSelectionPolicy::kBalanced};
  for (const auto& [s, t] : sample_pairs(net, 120, 5)) {
    EXPECT_EQ(cache.lookup(s, t).materialize().paths,
              node_disjoint_paths(net, s, t).paths);
    EXPECT_EQ(cache.lookup(s, t, balanced).materialize().paths,
              node_disjoint_paths(net, s, t, balanced).paths);
  }
  EXPECT_EQ(cache.hits() + cache.misses(), 240u);
}

TEST(ContainerCache, ReportsPerCallHitState) {
  const HhcTopology net{2};
  ContainerCache cache{net};
  bool hit = true;
  (void)cache.lookup(0, 63, {}, &hit);
  EXPECT_FALSE(hit);
  (void)cache.lookup(0, 63, {}, &hit);
  EXPECT_TRUE(hit);
}

TEST(ContainerCache, EvictionKeepsShardsBounded) {
  const HhcTopology net{3};
  ContainerCache cache{net, {.shards = 2, .max_entries_per_shard = 4}};
  for (const auto& [s, t] : sample_pairs(net, 400, 11)) {
    const auto set = cache.lookup(s, t).materialize();
    std::string why;
    ASSERT_TRUE(verify_disjoint_path_set(net, set, s, t, &why)) << why;
  }
  EXPECT_LE(cache.size(), 8u);
  EXPECT_GT(cache.evictions(), 0u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, cache.size());
  for (const auto& shard : stats.shards) EXPECT_LE(shard.entries, 4u);
}

TEST(ContainerCache, EvictionCountsAreExact) {
  // Every miss inserts exactly one entry and, once a shard is full,
  // displaces exactly one resident — so the counters reconcile exactly:
  // misses = live entries + evictions.
  const HhcTopology net{3};
  ContainerCache cache{net, {.shards = 2, .max_entries_per_shard = 4}};
  for (const auto& [s, t] : sample_pairs(net, 300, 17)) {
    (void)cache.lookup(s, t);
  }
  EXPECT_EQ(cache.misses(), cache.size() + cache.evictions());
  const auto stats = cache.stats();
  std::size_t per_shard = 0;
  for (const auto& shard : stats.shards) per_shard += shard.evictions;
  EXPECT_EQ(per_shard, cache.evictions());
}

// Hit/miss fingerprint of a fixed re-referencing workload under eviction
// pressure: which queries hit depends only on which victims were evicted.
std::uint64_t eviction_fingerprint(std::uint64_t eviction_seed) {
  const HhcTopology net{3};
  ContainerCache cache{net,
                       {.shards = 1,
                        .max_entries_per_shard = 8,
                        .eviction_seed = eviction_seed}};
  const auto pairs = sample_pairs(net, 64, 5);
  util::Xoshiro256 rng{99};
  std::uint64_t fingerprint = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto& [s, t] = pairs[rng.below(pairs.size())];
    bool hit = false;
    (void)cache.lookup(s, t, {}, &hit);
    fingerprint = fingerprint * 1099511628211ULL + (hit ? 1 : 0);
  }
  return fingerprint;
}

TEST(ContainerCache, EvictionIsSeededAndReproducible) {
  // Same eviction seed -> bit-identical victim choices; a different seed
  // must pick different victims somewhere in 2000 pressured lookups. The
  // pre-fix implementation always erased map.begin() — "random" in name
  // only — which made both fingerprints identical for ANY pair of seeds.
  EXPECT_EQ(eviction_fingerprint(1), eviction_fingerprint(1));
  EXPECT_NE(eviction_fingerprint(1), eviction_fingerprint(2));
}

TEST(ContainerCache, StatsSnapshotAddsUp) {
  const HhcTopology net{2};
  ContainerCache cache{net, {.shards = 5}};  // rounds up to 8
  EXPECT_EQ(cache.shard_count(), 8u);
  for (const auto& [s, t] : sample_pairs(net, 60, 13)) (void)cache.lookup(s, t);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 60u);
  EXPECT_EQ(stats.hits, cache.hits());
  EXPECT_EQ(stats.misses, cache.misses());
  std::size_t entries = 0;
  for (const auto& shard : stats.shards) entries += shard.entries;
  EXPECT_EQ(entries, stats.entries);
  EXPECT_GT(stats.hit_rate(), 0.0);

  // The unified rows render carries the same numbers (aggregate section
  // first, then one section per shard).
  const auto rows = stats.rows();
  ASSERT_EQ(rows.size(), 5 + 2 * stats.shards.size());
  EXPECT_EQ(rows[0].section, "cache");
  EXPECT_EQ(rows[0].name, "entries");
  EXPECT_EQ(static_cast<std::size_t>(rows[0].value), stats.entries);
  EXPECT_EQ(rows[1].name, "hits");
  EXPECT_EQ(static_cast<std::size_t>(rows[1].value), stats.hits);
  EXPECT_EQ(rows[5].section, "cache.shard0");
}

TEST(ContainerCache, RejectsBadInput) {
  const HhcTopology net{2};
  ContainerCache cache{net};
  EXPECT_THROW((void)cache.lookup(3, 3), std::invalid_argument);
  EXPECT_THROW((void)cache.lookup(0, net.node_count()), std::invalid_argument);
}

TEST(ContainerCache, LookupMaterializesToPathsResult) {
  const HhcTopology net{3};
  ContainerCache cache{net};
  for (const auto& [s, t] : sample_pairs(net, 40, 21)) {
    const ContainerHandle handle = cache.lookup(s, t);
    ASSERT_TRUE(handle.valid());
    EXPECT_EQ(handle.path_count(), net.m() + 1);
    EXPECT_EQ(handle.source(), s);
    EXPECT_EQ(handle.target(), t);
    const auto set = handle.materialize();
    EXPECT_EQ(set.paths, node_disjoint_paths(net, s, t).paths);
    EXPECT_EQ(handle.max_length(), set.max_length());
    for (std::size_t i = 0; i < set.paths.size(); ++i) {
      EXPECT_EQ(handle.materialize_path(i), set.paths[i]);
    }
  }
}

TEST(ContainerCache, HandleSurvivesEviction) {
  // A handle shares ownership of its flat container: evicting (or clearing)
  // the cache entry must not invalidate outstanding views.
  const HhcTopology net{3};
  ContainerCache cache{net, {.shards = 1, .max_entries_per_shard = 2}};
  const auto pairs = sample_pairs(net, 60, 23);
  const auto [s, t] = pairs[0];
  const ContainerHandle handle = cache.lookup(s, t);
  const auto before = handle.materialize();

  // Thrash the 2-entry shard until the original entry is long gone, then
  // drop everything for good measure.
  for (const auto& [a, b] : pairs) (void)cache.lookup(a, b);
  EXPECT_GT(cache.evictions(), 0u);
  cache.clear();

  ASSERT_TRUE(handle.valid());
  EXPECT_EQ(handle.materialize().paths, before.paths);
  // A fresh lookup after eviction reconstructs the identical container.
  EXPECT_EQ(cache.lookup(s, t).materialize().paths, before.paths);
}

TEST(ContainerCache, TranslatedPairsShareOneFlatContainer) {
  // Two pairs in the same canonical class must be served from one shared
  // container, distinguished only by the handles' XOR relabeling.
  const HhcTopology net{2};
  ContainerCache cache{net};
  const Node s1 = net.encode(0b01, 0), t1 = net.encode(0b10, 1);
  const std::uint64_t xs = 0b11;
  const Node s2 = net.encode(0b01 ^ xs, 0), t2 = net.encode(0b10 ^ xs, 1);

  (void)cache.lookup(s1, t1);
  bool hit = false;
  const ContainerHandle other = cache.lookup(s2, t2, cache.options(), &hit);
  EXPECT_TRUE(hit);  // same canonical key: no second construction
  EXPECT_EQ(other.source(), s2);
  EXPECT_EQ(other.target(), t2);
  EXPECT_EQ(other.materialize().paths, node_disjoint_paths(net, s2, t2).paths);
}

TEST(ContainerCache, PublicationKnobsClampAndStayCorrect) {
  // The publication knobs shape index growth, never results: a pre-sized
  // index (initial_index_capacity) and out-of-range load ceilings (clamped
  // into (10, 90]) must serve the same answers and the same entry counts
  // as the defaults across repeated grow-republish cycles.
  const HhcTopology net{3};
  const auto pairs = sample_pairs(net, 48, 0xC0FFEE);

  ContainerCache::Config configs[] = {
      {.shards = 1, .initial_index_capacity = 1024},  // no early grows
      {.shards = 1, .initial_index_capacity = 1, .max_load_percent = 200},
      {.shards = 1, .max_load_percent = 1},  // clamps to 10: grow-heavy
  };
  ContainerCache reference{net};
  for (auto& config : configs) {
    ContainerCache cache{net, config};
    for (const auto& [s, t] : pairs) {
      EXPECT_EQ(cache.lookup(s, t).materialize().paths,
                reference.lookup(s, t).materialize().paths);
    }
    EXPECT_EQ(cache.size(), reference.size());
    bool hit = false;
    (void)cache.lookup(pairs[0].s, pairs[0].t, cache.options(), &hit);
    EXPECT_TRUE(hit);
  }
}

}  // namespace
}  // namespace hhc::core
