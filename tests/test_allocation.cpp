// Allocation-count regression tests for the zero-allocation hot paths.
//
// This binary overrides the global allocation functions with counting
// wrappers (malloc-backed, so behavior is unchanged) and asserts a ZERO
// delta across the steady-state regions the arena rework promises are
// allocation-free:
//
//   * node_disjoint_paths(net, s, t, options, scratch) once the scratch's
//     arena/workspaces/buffers have grown to the working set;
//   * ContainerCache::lookup on a hit (one shared_ptr copy, no allocation);
//   * PathService::answer_view on a hit (handle + telemetry only).
//
// The measured regions contain no gtest assertions (the assertion machinery
// allocates); deltas are captured first and checked after. If one of these
// tests starts failing, some step of the hot path regressed to heap traffic
// — find it with e.g. a breakpoint on the counting operator new.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/container_cache.hpp"
#include "core/disjoint.hpp"
#include "core/metrics.hpp"
#include "core/scratch.hpp"
#include "query/path_service.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};

}  // namespace

// Counting global allocator. Covers the throwing, nothrow, and sized/array
// forms so no allocation path in the process escapes the counter.
void* operator new(std::size_t size) {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc{};
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p != nullptr) g_allocations.fetch_add(1, std::memory_order_relaxed);
  return p;
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace hhc::core {
namespace {

std::size_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(AllocationFree, ScratchConstructionSteadyState) {
  const HhcTopology net{3};
  const auto pairs = sample_pairs(net, 200, 0xA110C);
  auto& scratch = tls_construction_scratch();

  // Warm-up: grows the arena chunks, fan workspaces, flow network, and
  // route buffers to this working set's high-water mark.
  for (int round = 0; round < 2; ++round) {
    for (const auto& [s, t] : pairs) {
      const auto set = node_disjoint_paths(net, s, t, {}, scratch);
      ASSERT_EQ(set.paths.size(), net.m() + 1);
    }
  }

  const std::size_t before = allocation_count();
  std::size_t paths_built = 0;
  for (const auto& [s, t] : pairs) {
    const auto set = node_disjoint_paths(net, s, t, {}, scratch);
    paths_built += set.paths.size();
  }
  const std::size_t delta = allocation_count() - before;

  EXPECT_EQ(delta, 0u) << "steady-state construction performed " << delta
                       << " heap allocations across " << pairs.size()
                       << " queries";
  EXPECT_EQ(paths_built, pairs.size() * (net.m() + 1));
}

TEST(AllocationFree, ScratchConstructionSteadyStateAllOptionSets) {
  const HhcTopology net{3};
  const auto pairs = sample_pairs(net, 100, 0xA110D);
  auto& scratch = tls_construction_scratch();
  const ConstructionOptions option_sets[] = {
      {DimensionOrdering::kGrayCycle, RouteSelectionPolicy::kCanonical},
      {DimensionOrdering::kAscending, RouteSelectionPolicy::kCanonical},
      {DimensionOrdering::kGrayCycle, RouteSelectionPolicy::kBalanced},
  };

  for (int round = 0; round < 2; ++round) {
    for (const auto& options : option_sets) {
      for (const auto& [s, t] : pairs) {
        const auto set = node_disjoint_paths(net, s, t, options, scratch);
        ASSERT_EQ(set.paths.size(), net.m() + 1);
      }
    }
  }

  const std::size_t before = allocation_count();
  for (const auto& options : option_sets) {
    for (const auto& [s, t] : pairs) {
      const auto set = node_disjoint_paths(net, s, t, options, scratch);
      volatile std::size_t sink = set.paths.size();
      (void)sink;
    }
  }
  EXPECT_EQ(allocation_count() - before, 0u);
}

TEST(AllocationFree, ArenaHeapAllocationsStabilize) {
  const HhcTopology net{4};
  const auto pairs = sample_pairs(net, 100, 0xA110E);
  auto& scratch = tls_construction_scratch();
  for (const auto& [s, t] : pairs) {
    (void)node_disjoint_paths(net, s, t, {}, scratch);
  }
  // The arena's own bookkeeping agrees with the global counter: after the
  // first full pass no further chunk is ever requested.
  const std::size_t chunks = scratch.arena.heap_allocations();
  for (int round = 0; round < 3; ++round) {
    for (const auto& [s, t] : pairs) {
      (void)node_disjoint_paths(net, s, t, {}, scratch);
    }
  }
  EXPECT_EQ(scratch.arena.heap_allocations(), chunks);
}

TEST(AllocationFree, CacheHitLookup) {
  const HhcTopology net{3};
  ContainerCache cache{net};
  const auto pairs = sample_pairs(net, 64, 0xA110F);
  for (const auto& [s, t] : pairs) (void)cache.lookup(s, t);  // populate
  // This thread's first HIT lazily registers its striped hit-counter cell
  // (one allocation per thread, ever); warm it so the loop below measures
  // the steady-state hit path.
  (void)cache.lookup(pairs[0].s, pairs[0].t);

  const std::size_t before = allocation_count();
  std::size_t total_paths = 0;
  for (const auto& [s, t] : pairs) {
    const ContainerHandle handle = cache.lookup(s, t);
    total_paths += handle.path_count();
  }
  const std::size_t delta = allocation_count() - before;

  EXPECT_EQ(delta, 0u) << "cache hits performed " << delta << " allocations";
  EXPECT_EQ(total_paths, pairs.size() * (net.m() + 1));
  EXPECT_EQ(cache.hits(), pairs.size() + 1);
}

TEST(AllocationFree, AnswerViewOnHit) {
  const HhcTopology net{3};
  query::PathService service{net};
  const auto pairs = sample_pairs(net, 64, 0xA1110);
  for (const auto& [s, t] : pairs) {
    (void)service.answer_view({.s = s, .t = t});  // populate
  }

  const std::size_t before = allocation_count();
  std::size_t total_paths = 0;
  for (const auto& [s, t] : pairs) {
    const query::RouteView view = service.answer_view({.s = s, .t = t});
    total_paths += view.container.path_count();
  }
  const std::size_t delta = allocation_count() - before;

  EXPECT_EQ(delta, 0u) << "answer_view hits performed " << delta
                       << " allocations";
  EXPECT_EQ(total_paths, pairs.size() * (net.m() + 1));
}

}  // namespace
}  // namespace hhc::core
