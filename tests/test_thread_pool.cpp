#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace hhc::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool{4};
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool{3};
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool{2};
  bool touched = false;
  pool.parallel_for(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForPartialRange) {
  ThreadPool pool{2};
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(10, 20, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 10 && i < 20) ? 1 : 0);
  }
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool{2};
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, ExceptionInParallelForPropagates) {
  ThreadPool pool{4};
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 42) throw std::logic_error("x");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, WaitIdleClearsErrorAfterRethrow) {
  // Reuse across campaign batches: once wait_idle has rethrown a batch's
  // error, the pool must be clean — an immediate second wait_idle returns
  // normally instead of resurrecting the stale exception.
  ThreadPool pool{2};
  pool.submit([] { throw std::runtime_error("stale"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, ConsecutiveFailingBatchesRethrowTheirOwnError) {
  ThreadPool pool{2};
  pool.submit([] { throw std::runtime_error("batch-1"); });
  try {
    pool.wait_idle();
    FAIL() << "batch 1 error not rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "batch-1");
  }
  pool.submit([] { throw std::runtime_error("batch-2"); });
  try {
    pool.wait_idle();
    FAIL() << "batch 2 error not rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "batch-2");  // not the cleared batch-1 error
  }
}

TEST(ThreadPool, ParallelForUsableAfterExceptionBatch) {
  // The campaign runner drives many parallel_for batches through one pool;
  // a failed batch must not poison the following ones.
  ThreadPool pool{4};
  EXPECT_THROW(pool.parallel_for(0, 50,
                                 [](std::size_t i) {
                                   if (i % 2 == 0) {
                                     throw std::runtime_error("bad batch");
                                   }
                                 }),
               std::runtime_error);
  std::vector<std::atomic<int>> hits(200);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool{2};
  pool.submit([] { throw std::runtime_error("first"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  // Shutdown semantics pin: tasks already queued when the destructor runs
  // are executed, not dropped — the worker predicate keeps draining until
  // the queue is empty even after stopping_ is set. A service that sheds
  // at submit time (try_submit) relies on this: once a task is accepted it
  // WILL run, so an accepted query can never get stuck.
  std::atomic<int> ran{0};
  {
    ThreadPool pool{1};
    std::atomic<bool> release{false};
    pool.submit([&] {
      while (!release.load()) std::this_thread::yield();
    });
    // These queue up behind the blocker and must still run during ~ThreadPool.
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    release.store(true);
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, ConsecutiveFailingParallelForBatchesRethrowTheirOwnError) {
  // parallel_for flavor of the clean-first_error_ pin: each failing batch
  // surfaces ITS error, not a stale one from the previous batch.
  ThreadPool pool{2};
  try {
    pool.parallel_for(0, 10, [](std::size_t) {
      throw std::runtime_error("pf-batch-1");
    });
    FAIL() << "batch 1 error not rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "pf-batch-1");
  }
  try {
    pool.parallel_for(0, 10, [](std::size_t) {
      throw std::runtime_error("pf-batch-2");
    });
    FAIL() << "batch 2 error not rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "pf-batch-2");
  }
}

TEST(ThreadPool, TrySubmitRefusesBeyondTheQueueBound) {
  ThreadPool pool{1};
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  pool.submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();  // queue is empty now
  // The single worker is parked, so accepted tasks stay queued and the
  // bound is exact: 3 fit, the 4th is refused.
  int accepted = 0;
  for (int i = 0; i < 6; ++i) {
    if (pool.try_submit([&] { ran.fetch_add(1); }, 2)) ++accepted;
  }
  EXPECT_EQ(accepted, 3);
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 3);  // refused tasks never run
}

TEST(ThreadPool, TrySubmitZeroBoundAdmitsOnlyIntoAnEmptyQueue) {
  ThreadPool pool{1};
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  pool.submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();  // queue is empty now
  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.try_submit([&] { ran.fetch_add(1); }, 0));
  EXPECT_FALSE(pool.try_submit([&] { ran.fetch_add(1); }, 0));
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool{4};
  std::vector<long> values(10000);
  std::iota(values.begin(), values.end(), 0L);
  std::atomic<long> total{0};
  pool.parallel_for(0, values.size(), [&](std::size_t i) {
    total.fetch_add(values[i], std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 10000L * 9999 / 2);
}

}  // namespace
}  // namespace hhc::util
