#include <gtest/gtest.h>

#include <algorithm>

#include "core/fault_routing.hpp"
#include "core/metrics.hpp"
#include "core/routing.hpp"

namespace hhc::core {
namespace {

TEST(FaultRouting, NoFaultsAlwaysSucceeds) {
  const HhcTopology net{2};
  const FaultSet none;
  for (const auto& [s, t] : sample_pairs(net, 100, 2)) {
    const auto r = route_avoiding(net, s, t, none);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(is_valid_path(net, r.path, s, t));
    EXPECT_EQ(r.paths_blocked, 0u);
  }
}

TEST(FaultRouting, GuaranteedUnderMFaults) {
  // The core guarantee: any fault set of size <= m (excluding endpoints)
  // leaves at least one of the m+1 disjoint paths intact.
  for (unsigned m = 1; m <= 4; ++m) {
    const HhcTopology net{m};
    util::Xoshiro256 rng{77};
    for (const auto& [s, t] : sample_pairs(net, 150, m)) {
      const auto faults = FaultSet::random(net, m, s, t, rng);
      const auto r = route_avoiding(net, s, t, faults);
      ASSERT_TRUE(r.ok()) << "m=" << m << " s=" << s << " t=" << t;
      EXPECT_TRUE(is_valid_path(net, r.path, s, t));
      for (const Node v : r.path) EXPECT_FALSE(faults.is_faulty(v));
    }
  }
}

TEST(FaultRouting, AdversarialFaultsOnNeighbors) {
  // Worst case: block m of the m+1 source neighbors; the remaining path
  // must still get through.
  const HhcTopology net{3};
  const Node s = net.encode(5, 0b010);
  const Node t = net.encode(200, 0b101);
  const auto nbrs = net.neighbors(s);
  FaultSet faults;
  for (unsigned i = 0; i < net.m(); ++i) faults.mark_faulty(nbrs[i]);
  const auto r = route_avoiding(net, s, t, faults);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.paths_blocked, net.m());
  // The surviving path must leave via the external edge.
  EXPECT_EQ(r.path[1], net.external_neighbor(s));
}

TEST(FaultRouting, ReportsBlockedCount) {
  const HhcTopology net{2};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(15, 3);
  const auto container = node_disjoint_paths(net, s, t);
  FaultSet faults;
  faults.mark_faulty(container.paths[0][1]);  // break exactly one path
  const auto r = route_avoiding(net, s, t, faults);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.paths_blocked, 1u);
}

TEST(FaultRouting, PicksShortestSurvivingPath) {
  const HhcTopology net{2};
  const Node s = net.encode(3, 1);
  const Node t = net.encode(12, 2);
  const auto container = node_disjoint_paths(net, s, t);
  // Block every path except the longest one; then block nothing: result
  // must never be longer than the unblocked shortest member.
  const auto unblocked = route_avoiding(net, s, t, FaultSet{});
  EXPECT_EQ(unblocked.path.size() - 1, container.min_length());
}

TEST(FaultRouting, ThrowsOnFaultyEndpoint) {
  const HhcTopology net{2};
  FaultSet faults;
  faults.mark_faulty(0);
  EXPECT_THROW((void)route_avoiding(net, 0, 5, faults), std::invalid_argument);
  EXPECT_THROW((void)route_avoiding(net, 5, 0, faults), std::invalid_argument);
}

TEST(FaultRouting, RandomFaultSetProperties) {
  const HhcTopology net{3};
  util::Xoshiro256 rng{5};
  const auto faults = FaultSet::random(net, 50, 1, 2, rng);
  EXPECT_EQ(faults.size(), 50u);
  EXPECT_FALSE(faults.is_faulty(1));
  EXPECT_FALSE(faults.is_faulty(2));
  for (const Node v : faults.nodes()) EXPECT_TRUE(net.contains(v));
}

TEST(FaultRouting, RandomFaultSetRejectsOverfill) {
  const HhcTopology net{1};  // 8 nodes
  util::Xoshiro256 rng{5};
  EXPECT_THROW((void)FaultSet::random(net, 7, 0, 1, rng),
               std::invalid_argument);
}

TEST(FaultRouting, RandomFaultSetCanExhaustNonEndpointPopulation) {
  // count == every node except the two endpoints: the sampler must collect
  // the full population and terminate.
  const HhcTopology net{1};  // 8 nodes
  util::Xoshiro256 rng{5};
  const Node s = 0;
  const Node t = 5;
  const auto faults = FaultSet::random(net, net.node_count() - 2, s, t, rng);
  EXPECT_EQ(faults.size(), net.node_count() - 2);
  for (Node v = 0; v < net.node_count(); ++v) {
    EXPECT_EQ(faults.is_faulty(v), v != s && v != t);
  }
}

TEST(FaultRouting, RandomFaultSetSupportsEqualEndpoints) {
  // s == t excludes only one node, so count may reach N - 1.
  const HhcTopology net{1};
  util::Xoshiro256 rng{6};
  const auto faults = FaultSet::random(net, net.node_count() - 1, 3, 3, rng);
  EXPECT_EQ(faults.size(), net.node_count() - 1);
  EXPECT_FALSE(faults.is_faulty(3));
}

TEST(FaultRouting, RandomFaultSetOverRequestThrowsForEqualEndpoints) {
  const HhcTopology net{1};
  util::Xoshiro256 rng{7};
  EXPECT_THROW((void)FaultSet::random(net, net.node_count(), 3, 3, rng),
               std::invalid_argument);
}

TEST(FaultRouting, CanFailBeyondGuarantee) {
  // With enough faults it must be possible to cut every path; the router
  // then reports failure rather than returning something invalid.
  const HhcTopology net{1};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(3, 1);
  FaultSet faults;
  for (const Node v : net.neighbors(s)) faults.mark_faulty(v);
  const auto r = route_avoiding(net, s, t, faults);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.paths_blocked, net.degree());
}

}  // namespace
}  // namespace hhc::core
