#include <gtest/gtest.h>

#include "core/disjoint.hpp"
#include "core/routing.hpp"
#include "sim/network.hpp"

namespace hhc::sim {
namespace {

using core::HhcTopology;
using core::Node;
using core::Path;

TEST(SimNetwork, SinglePacketLatencyEqualsPathLength) {
  const HhcTopology net{2};
  NetworkSimulator sim{net};
  const auto path = core::route(net, net.encode(0, 0), net.encode(15, 3));
  sim.inject(path, 0);
  const auto report = sim.run();
  EXPECT_EQ(report.delivered, 1u);
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.latency.max, path.size() - 1);
}

TEST(SimNetwork, ZeroLengthRouteDeliversInstantly) {
  const HhcTopology net{2};
  NetworkSimulator sim{net};
  sim.inject({net.encode(3, 1)}, 5);
  const auto report = sim.run();
  EXPECT_EQ(report.delivered, 1u);
  EXPECT_EQ(report.latency.max, 0u);
}

TEST(SimNetwork, InjectRejectsInvalidRoute) {
  const HhcTopology net{2};
  NetworkSimulator sim{net};
  EXPECT_THROW(sim.inject({}, 0), std::invalid_argument);
  EXPECT_THROW(sim.inject({net.encode(0, 0), net.encode(5, 3)}, 0),
               std::invalid_argument);
}

TEST(SimNetwork, DisjointPathsDoNotContend) {
  // Packets over node-disjoint paths share no link, so each arrives in
  // exactly its own path length.
  const HhcTopology net{3};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(200, 5);
  const auto container = core::node_disjoint_paths(net, s, t);
  NetworkSimulator sim{net};
  for (const auto& p : container.paths) sim.inject(p, 0);
  const auto report = sim.run();
  EXPECT_EQ(report.delivered, container.paths.size());
  EXPECT_EQ(report.latency.max, container.max_length());
  EXPECT_EQ(report.latency.min, container.min_length());
}

TEST(SimNetwork, SharedRouteSerializesOnLinks) {
  // Two packets with the identical route: the second waits one cycle at
  // every hop behind the first, arriving exactly one cycle later.
  const HhcTopology net{2};
  const auto path = core::route(net, net.encode(0, 0), net.encode(15, 3));
  NetworkSimulator sim{net};
  sim.inject(path, 0);
  sim.inject(path, 0);
  const auto report = sim.run();
  EXPECT_EQ(report.delivered, 2u);
  EXPECT_EQ(report.latency.min, path.size() - 1);
  EXPECT_EQ(report.latency.max, path.size());  // one cycle of queueing
}

TEST(SimNetwork, FaultyNodeLosesPacket) {
  const HhcTopology net{2};
  const auto path = core::route(net, net.encode(0, 0), net.encode(15, 3));
  core::FaultSet faults;
  faults.mark_faulty(path[1]);
  NetworkSimulator sim{net};
  sim.set_faults(faults);
  sim.inject(path, 0);
  const auto report = sim.run();
  EXPECT_EQ(report.delivered, 0u);
  EXPECT_EQ(report.lost, 1u);
}

TEST(SimNetwork, FaultySourceLosesImmediately) {
  const HhcTopology net{2};
  const auto path = core::route(net, net.encode(0, 0), net.encode(15, 3));
  core::FaultSet faults;
  faults.mark_faulty(path[0]);
  NetworkSimulator sim{net};
  sim.set_faults(faults);
  sim.inject(path, 0);
  const auto report = sim.run();
  EXPECT_EQ(report.lost, 1u);
}

TEST(SimNetwork, ScheduledFaultSparesEarlierTraffic) {
  const HhcTopology net{2};
  const auto path = core::route(net, net.encode(0, 0), net.encode(15, 3));
  ASSERT_GE(path.size(), 3u);
  // Node path[1] fails far in the future: the packet crosses it first.
  NetworkSimulator sim{net};
  sim.schedule_fault(path[1], 1000);
  sim.inject(path, 0);
  const auto report = sim.run();
  EXPECT_EQ(report.delivered, 1u);
}

TEST(SimNetwork, ScheduledFaultKillsLaterTraffic) {
  const HhcTopology net{2};
  const auto path = core::route(net, net.encode(0, 0), net.encode(15, 3));
  NetworkSimulator sim{net};
  sim.schedule_fault(path[1], 0);  // fails immediately
  sim.inject(path, 0);
  const auto report = sim.run();
  EXPECT_EQ(report.lost, 1u);
}

TEST(SimNetwork, MidFlightFailureCutsPacket) {
  const HhcTopology net{2};
  const auto path = core::route(net, net.encode(0, 0), net.encode(15, 3));
  ASSERT_GE(path.size(), 4u);
  // A node halfway along the route fails exactly when the packet is about
  // to enter it (the packet reaches hop h at cycle h; entering node at
  // index i happens during cycle i-1 -> lost if the node fails at i-1).
  NetworkSimulator sim{net};
  const std::size_t victim = path.size() / 2;
  sim.schedule_fault(path[victim], victim - 1);
  sim.inject(path, 0);
  const auto report = sim.run();
  EXPECT_EQ(report.lost, 1u);
  EXPECT_EQ(sim.packets()[0].hop, victim - 1);
}

TEST(SimNetwork, TwoPacketsStraddlingAFailure) {
  const HhcTopology net{2};
  const auto path = core::route(net, net.encode(0, 0), net.encode(15, 3));
  ASSERT_GE(path.size(), 3u);
  NetworkSimulator sim{net};
  // Early packet passes node path[1] during cycle 0; it fails at cycle 2,
  // so the late packet (injected at 2) is lost there.
  sim.schedule_fault(path[1], 2);
  sim.inject(path, 0);
  sim.inject(path, 2);
  const auto report = sim.run();
  EXPECT_EQ(report.delivered, 1u);
  EXPECT_EQ(report.lost, 1u);
}

TEST(SimNetwork, LinkFaultLosesPacketButNodesStayUp) {
  const HhcTopology net{2};
  const auto path = core::route(net, net.encode(0, 0), net.encode(15, 3));
  ASSERT_GE(path.size(), 3u);
  NetworkSimulator sim{net};
  sim.schedule_link_fault(path[1], path[2]);
  sim.inject(path, 0);
  const auto report = sim.run();
  EXPECT_EQ(report.delivered, 0u);
  EXPECT_EQ(report.lost, 1u);
  // The packet made it across the first (healthy) link before dying.
  EXPECT_EQ(sim.packets()[0].hop, 1u);
}

TEST(SimNetwork, LinkFaultOnlyAffectsRoutesUsingIt) {
  const HhcTopology net{2};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(15, 3);
  const auto container = core::node_disjoint_paths(net, s, t);
  ASSERT_GE(container.paths.size(), 2u);
  NetworkSimulator sim{net};
  // Kill one link of path 0; path 1 is node-disjoint so it cannot use it.
  sim.schedule_link_fault(container.paths[0][0], container.paths[0][1]);
  sim.inject(container.paths[0], 0);
  sim.inject(container.paths[1], 0);
  const auto report = sim.run();
  EXPECT_EQ(report.delivered, 1u);
  EXPECT_EQ(report.lost, 1u);
}

TEST(SimNetwork, ScheduleLinkFaultRejectsNonEdges) {
  const HhcTopology net{2};
  NetworkSimulator sim{net};
  EXPECT_THROW(sim.schedule_link_fault(net.encode(0, 0), net.encode(5, 3)),
               std::invalid_argument);
  EXPECT_THROW(sim.schedule_link_fault(3, 3), std::invalid_argument);
}

TEST(SimNetwork, RepairedNodeDeliversLaterTraffic) {
  // The acceptance scenario: a packet sent during the outage is lost, a
  // packet sent after the scheduled repair goes through on the same route.
  const HhcTopology net{2};
  const auto path = core::route(net, net.encode(0, 0), net.encode(15, 3));
  NetworkSimulator sim{net};
  sim.schedule_fault(path[1], /*time=*/0, /*repair=*/50);
  sim.inject(path, 0);    // lost entering the dead node
  sim.inject(path, 100);  // injected well after repair
  const auto report = sim.run();
  EXPECT_EQ(report.lost, 1u);
  EXPECT_EQ(report.delivered, 1u);
  EXPECT_FALSE(sim.packets()[0].delivered);
  EXPECT_TRUE(sim.packets()[1].delivered);
}

TEST(SimNetwork, RepairedLinkDeliversLaterTraffic) {
  const HhcTopology net{2};
  const auto path = core::route(net, net.encode(0, 0), net.encode(15, 3));
  ASSERT_GE(path.size(), 3u);
  NetworkSimulator sim{net};
  sim.schedule_link_fault(path[1], path[2], /*time=*/0, /*repair=*/40);
  sim.inject(path, 0);   // hits the dead link at cycle 1
  sim.inject(path, 60);  // link already repaired
  const auto report = sim.run();
  EXPECT_EQ(report.lost, 1u);
  EXPECT_EQ(report.delivered, 1u);
}

TEST(SimNetwork, FaultModelDrivesTransientOutage) {
  // Same scenario expressed through set_fault_model directly.
  const HhcTopology net{2};
  const auto path = core::route(net, net.encode(0, 0), net.encode(15, 3));
  core::FaultModel faults;
  faults.fail_node(path[1], /*fail_time=*/0, /*repair_time=*/30);
  NetworkSimulator sim{net};
  sim.set_fault_model(faults);
  sim.inject(path, 0);
  sim.inject(path, 30);  // the half-open window has just closed
  const auto report = sim.run();
  EXPECT_EQ(report.lost, 1u);
  EXPECT_EQ(report.delivered, 1u);
}

TEST(SimNetwork, InjectionTimeDelaysStart) {
  const HhcTopology net{2};
  const auto path = core::route(net, net.encode(0, 0), net.encode(15, 3));
  NetworkSimulator sim{net};
  sim.inject(path, 10);
  const auto report = sim.run();
  EXPECT_EQ(report.delivered, 1u);
  // Latency excludes injection delay by definition.
  EXPECT_EQ(report.latency.max, path.size() - 1);
  EXPECT_GE(report.cycles, 10u + path.size() - 1);
}

TEST(SimNetwork, HorizonStrandsUndeliveredPackets) {
  const HhcTopology net{2};
  const auto path = core::route(net, net.encode(0, 0), net.encode(15, 3));
  NetworkSimulator sim{net};
  sim.inject(path, 0);
  const auto report = sim.run(/*max_cycles=*/1);
  EXPECT_EQ(report.delivered, 0u);
  EXPECT_EQ(report.stranded, 1u);
}

TEST(SimNetwork, ConservationUnderRandomFaultsAndLoads) {
  // Fuzz: every injected packet must be accounted for exactly once, for
  // any seed, fault count, and horizon.
  const HhcTopology net{2};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Xoshiro256 rng{seed};
    core::FaultSet faults;
    for (int f = 0; f < 5; ++f) faults.mark_faulty(rng.below(net.node_count()));
    NetworkSimulator sim{net};
    sim.set_faults(faults);
    std::size_t injected = 0;
    for (int p = 0; p < 200; ++p) {
      const Node s = rng.below(net.node_count());
      const Node t = rng.below(net.node_count());
      if (s == t || faults.is_faulty(s) || faults.is_faulty(t)) continue;
      sim.inject(core::route(net, s, t), rng.below(20));
      ++injected;
    }
    const auto tight = sim.run(/*max_cycles=*/5);
    EXPECT_EQ(tight.delivered + tight.lost + tight.stranded, injected)
        << "seed=" << seed;
  }
}

TEST(SimNetwork, ManyPacketsAllRetire) {
  const HhcTopology net{2};
  NetworkSimulator sim{net};
  std::size_t injected = 0;
  for (Node s = 0; s < net.node_count(); s += 7) {
    for (Node t = 0; t < net.node_count(); t += 11) {
      if (s == t) continue;
      sim.inject(core::route(net, s, t), s % 5);
      ++injected;
    }
  }
  const auto report = sim.run();
  EXPECT_EQ(report.delivered, injected);
  EXPECT_EQ(report.stranded, 0u);
}

}  // namespace
}  // namespace hhc::sim
