#include <gtest/gtest.h>

#include "graph/bfs.hpp"

namespace hhc::graph {
namespace {

// Path graph 0 - 1 - 2 - 3 - 4.
AdjacencyList path_graph(std::size_t n) {
  AdjacencyList g{n};
  for (Vertex v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

// 4-cycle plus an isolated vertex.
AdjacencyList cycle_plus_isolated() {
  AdjacencyList g{5};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  return g;
}

TEST(Bfs, DistancesOnPathGraph) {
  const auto g = path_graph(5);
  const auto dist = bfs_distances(g, 0);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, DistancesFromMiddle) {
  const auto g = path_graph(5);
  const auto dist = bfs_distances(g, 2);
  EXPECT_EQ(dist[0], 2u);
  EXPECT_EQ(dist[4], 2u);
  EXPECT_EQ(dist[2], 0u);
}

TEST(Bfs, UnreachableMarked) {
  const auto g = cycle_plus_isolated();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(Bfs, ShortestPathEndpoints) {
  const auto g = path_graph(6);
  const auto p = bfs_shortest_path(g, 1, 4);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.front(), 1u);
  EXPECT_EQ(p.back(), 4u);
}

TEST(Bfs, ShortestPathTrivial) {
  const auto g = path_graph(3);
  const auto p = bfs_shortest_path(g, 2, 2);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 2u);
}

TEST(Bfs, ShortestPathUnreachableIsEmpty) {
  const auto g = cycle_plus_isolated();
  EXPECT_TRUE(bfs_shortest_path(g, 0, 4).empty());
}

TEST(Bfs, ShortestPathPicksMinimumLength) {
  // Two routes 0->3: direct edge vs a long path; BFS must take the short one.
  AdjacencyList g{4};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 3);
  EXPECT_EQ(bfs_shortest_path(g, 0, 3).size(), 2u);
}

TEST(Bfs, EccentricityAndDiameter) {
  const auto g = path_graph(7);
  EXPECT_EQ(eccentricity(g, 0), 6u);
  EXPECT_EQ(eccentricity(g, 3), 3u);
  EXPECT_EQ(diameter(g), 6u);
}

TEST(Bfs, DiameterDisconnected) {
  const auto g = cycle_plus_isolated();
  EXPECT_EQ(diameter(g), kUnreachable);
  EXPECT_FALSE(is_connected(g));
}

TEST(Bfs, ConnectedGraph) {
  EXPECT_TRUE(is_connected(path_graph(4)));
  EXPECT_TRUE(is_connected(AdjacencyList{}));
}

TEST(Bfs, RejectsBadSource) {
  const auto g = path_graph(3);
  EXPECT_THROW((void)bfs_distances(g, 9), std::invalid_argument);
  EXPECT_THROW((void)bfs_shortest_path(g, 0, 9), std::invalid_argument);
}

}  // namespace
}  // namespace hhc::graph
