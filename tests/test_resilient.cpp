#include <gtest/gtest.h>

#include <utility>

#include "core/disjoint.hpp"
#include "sim/resilient.hpp"
#include "util/rng.hpp"

namespace hhc::sim {
namespace {

using core::FaultSet;
using core::HhcTopology;
using core::Node;

TEST(Resilient, AllStrategiesSucceedFaultFree) {
  const HhcTopology net{2};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(13, 2);
  using TransferFn = TransferOutcome (*)(const HhcTopology&, Node, Node,
                                         const FaultSet&);
  for (const TransferFn outcome : {TransferFn{&serial_retry_transfer},
                                   TransferFn{&dispersal_transfer},
                                   TransferFn{&flooding_transfer}}) {
    const auto r = outcome(net, s, t, FaultSet{});
    EXPECT_TRUE(r.delivered);
    EXPECT_GT(r.completion_cycles, 0u);
  }
}

TEST(Resilient, SerialRetrySucceedsFirstTryWithoutFaults) {
  const HhcTopology net{2};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(13, 2);
  const auto r = serial_retry_transfer(net, s, t, FaultSet{});
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_EQ(r.wasted_transmissions, 0u);
  const auto container = core::node_disjoint_paths(net, s, t);
  EXPECT_EQ(r.completion_cycles, container.paths.front().size() - 1);
}

TEST(Resilient, SerialRetryPaysTimeoutPerBlockedPath) {
  const HhcTopology net{2};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(13, 2);
  const auto container = core::node_disjoint_paths(net, s, t);
  FaultSet faults;
  faults.mark_faulty(container.paths[0][1]);  // block the first path
  const auto r = serial_retry_transfer(net, s, t, faults);
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.attempts, 2u);
  const std::uint64_t timeout = 2 * (container.paths[0].size() - 1);
  EXPECT_EQ(r.completion_cycles,
            timeout + container.paths[1].size() - 1);
}

TEST(Resilient, SerialRetryFailsOnlyWhenAllBlocked) {
  const HhcTopology net{1};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(3, 1);
  FaultSet faults;
  for (const Node v : net.neighbors(s)) faults.mark_faulty(v);
  const auto r = serial_retry_transfer(net, s, t, faults);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.attempts, net.degree());
}

TEST(Resilient, DispersalToleratesOneLoss) {
  const HhcTopology net{3};
  const Node s = net.encode(7, 1);
  const Node t = net.encode(200, 6);
  const auto container = core::node_disjoint_paths(net, s, t);
  FaultSet faults;
  // Cut one path in its middle: the fragment covers some hops (wasted
  // work) before being dropped, and the other m fragments reconstruct.
  const auto& victim = container.paths[2];
  ASSERT_GE(victim.size(), 4u);
  faults.mark_faulty(victim[victim.size() / 2]);
  const auto r = dispersal_transfer(net, s, t, faults);
  EXPECT_TRUE(r.delivered);
  EXPECT_GT(r.wasted_transmissions, 0u);
}

TEST(Resilient, DispersalFailsWithTwoFragmentLosses) {
  const HhcTopology net{2};  // m = 2: needs 2 of 3 fragments
  const Node s = net.encode(0, 0);
  const Node t = net.encode(13, 2);
  const auto container = core::node_disjoint_paths(net, s, t);
  FaultSet faults;
  faults.mark_faulty(container.paths[0][1]);
  faults.mark_faulty(container.paths[1][1]);
  const auto r = dispersal_transfer(net, s, t, faults);
  EXPECT_FALSE(r.delivered);
}

TEST(Resilient, FloodingSurvivesAllButOneCut) {
  const HhcTopology net{2};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(13, 2);
  const auto container = core::node_disjoint_paths(net, s, t);
  FaultSet faults;
  faults.mark_faulty(container.paths[0][1]);
  faults.mark_faulty(container.paths[1][1]);
  const auto r = flooding_transfer(net, s, t, faults);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.completion_cycles, container.paths[2].size() - 1);
}

TEST(Resilient, FloodingIsNeverSlowerThanDispersal) {
  const HhcTopology net{3};
  util::Xoshiro256 rng{4};
  for (int trial = 0; trial < 50; ++trial) {
    const Node s = rng.below(net.node_count());
    const Node t = rng.below(net.node_count());
    if (s == t) continue;
    const auto faults = FaultSet::random(net, net.m(), s, t, rng);
    const auto flood = flooding_transfer(net, s, t, faults);
    const auto disp = dispersal_transfer(net, s, t, faults);
    ASSERT_TRUE(flood.delivered);
    if (disp.delivered) {
      EXPECT_LE(flood.completion_cycles, disp.completion_cycles);
    }
  }
}

TEST(Resilient, BackoffSucceedsFirstTryWithoutFaults) {
  const HhcTopology net{2};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(13, 2);
  const auto r = backoff_retry_transfer(net, s, t, core::FaultModel{});
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_EQ(r.wasted_transmissions, 0u);
  const auto container = core::node_disjoint_paths(net, s, t);
  EXPECT_EQ(r.completion_cycles, container.paths.front().size() - 1);
}

TEST(Resilient, BackoffRidesOutTransientOutageSerialCannot) {
  // Every container path is blocked during [0, 16): serial retry burns its
  // m+1 attempts inside the outage and gives up; backoff's growing waits
  // carry it past the repair and a retried path goes through.
  const HhcTopology net{2};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(13, 2);
  const auto container = core::node_disjoint_paths(net, s, t);
  core::FaultModel faults;
  for (const auto& path : container.paths) {
    // Mid-path victims: a lost packet covers some hops first, so the
    // retries also show up as wasted transmissions.
    faults.fail_node(path[path.size() / 2], /*fail_time=*/0,
                     /*repair_time=*/16);
  }
  const auto serial = serial_retry_transfer(net, s, t, faults.node_view(0));
  EXPECT_FALSE(serial.delivered);
  const auto backoff = backoff_retry_transfer(net, s, t, faults);
  ASSERT_TRUE(backoff.delivered);
  EXPECT_GT(backoff.attempts, 1u);
  EXPECT_GT(backoff.wasted_transmissions, 0u);
  // Success can only happen once the outage is over.
  EXPECT_GE(backoff.completion_cycles, 16u);
}

TEST(Resilient, BackoffGivesUpAfterMaxAttemptsWhenPermanentlyCut) {
  const HhcTopology net{1};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(3, 1);
  core::FaultModel faults;
  for (const Node v : net.neighbors(s)) faults.fail_node(v);
  const auto r = backoff_retry_transfer(net, s, t, faults, /*max_attempts=*/4);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.attempts, 4u);
}

TEST(Resilient, BackoffSurvivesTransientLinkFault) {
  // A link-only outage: the node-disjoint container has no defense, but a
  // retry after the repair window uses the same path successfully.
  const HhcTopology net{2};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(13, 2);
  const auto container = core::node_disjoint_paths(net, s, t);
  core::FaultModel faults;
  for (const auto& path : container.paths) {
    faults.fail_link(path[0], path[1], /*fail_time=*/0, /*repair_time=*/12);
  }
  const auto r = backoff_retry_transfer(net, s, t, faults);
  ASSERT_TRUE(r.delivered);
  EXPECT_GT(r.attempts, 1u);
}

TEST(Resilient, JitteredWaitStaysInTheHalfJitterWindow) {
  util::Xoshiro256 rng{123};
  EXPECT_EQ(jittered_wait(0, rng), 0u);
  for (const std::uint64_t wait : {1ULL, 2ULL, 7ULL, 64ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t jittered = jittered_wait(wait, rng);
      EXPECT_GE(jittered, wait - wait / 2);
      EXPECT_LE(jittered, wait);
    }
  }
}

TEST(Resilient, JitterSeedZeroKeepsTheHistoricalSchedule) {
  // jitter_seed = 0 is the compatibility contract: the attempt schedule is
  // bit-identical to what the un-jittered protocol always produced, so old
  // callers (and old experiment numbers) are untouched by the new knob.
  const HhcTopology net{2};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(13, 2);
  const auto container = core::node_disjoint_paths(net, s, t);
  core::FaultModel faults;
  for (const auto& path : container.paths) {
    faults.fail_node(path[path.size() / 2], /*fail_time=*/0,
                     /*repair_time=*/16);
  }
  const auto legacy = backoff_retry_transfer(net, s, t, faults);
  const auto pinned = backoff_retry_transfer(net, s, t, faults,
                                             /*max_attempts=*/8,
                                             /*jitter_seed=*/0);
  EXPECT_EQ(legacy.delivered, pinned.delivered);
  EXPECT_EQ(legacy.completion_cycles, pinned.completion_cycles);
  EXPECT_EQ(legacy.attempts, pinned.attempts);
  EXPECT_EQ(legacy.wasted_transmissions, pinned.wasted_transmissions);
}

TEST(Resilient, JitteredBackoffIsAPureFunctionOfTheSeed) {
  const HhcTopology net{2};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(13, 2);
  const auto container = core::node_disjoint_paths(net, s, t);
  core::FaultModel faults;
  for (const auto& path : container.paths) {
    faults.fail_node(path[path.size() / 2], /*fail_time=*/0,
                     /*repair_time=*/16);
  }
  const auto plain = backoff_retry_transfer(net, s, t, faults);
  const auto a = backoff_retry_transfer(net, s, t, faults,
                                        /*max_attempts=*/8,
                                        /*jitter_seed=*/42);
  const auto b = backoff_retry_transfer(net, s, t, faults,
                                        /*max_attempts=*/8,
                                        /*jitter_seed=*/42);
  // Same seed, same schedule — cycle for cycle.
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.completion_cycles, b.completion_cycles);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.wasted_transmissions, b.wasted_transmissions);
  // Half-jitter only ever shortens waits, so the jittered sender can't
  // finish later than the deterministic one — and the outage window still
  // gates success.
  ASSERT_TRUE(a.delivered);
  EXPECT_LE(a.completion_cycles, plain.completion_cycles);
  EXPECT_GE(a.completion_cycles, 16u);
}

TEST(Resilient, DispersalFasterThanSerialUnderFaults) {
  // When the first path is cut, serial retry pays a timeout; dispersal
  // completes in one shot.
  const HhcTopology net{3};
  const Node s = net.encode(3, 0);
  const Node t = net.encode(99, 5);
  const auto container = core::node_disjoint_paths(net, s, t);
  FaultSet faults;
  faults.mark_faulty(container.paths[0][1]);
  const auto serial = serial_retry_transfer(net, s, t, faults);
  const auto disp = dispersal_transfer(net, s, t, faults);
  ASSERT_TRUE(serial.delivered);
  ASSERT_TRUE(disp.delivered);
  EXPECT_LT(disp.completion_cycles, serial.completion_cycles);
}

TEST(Resilient, ServiceRoutedFlavorsMatchDirectOnes) {
  // The PathService overloads must produce the exact same outcomes as the
  // direct-construction ones (the service answers bit-identically), while
  // repeated transfers turn into cache hits.
  const HhcTopology net{2};
  query::PathService service{net};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(13, 2);
  const auto container = core::node_disjoint_paths(net, s, t);
  FaultSet faults;
  faults.mark_faulty(container.paths[0][1]);
  core::FaultModel model;
  model.fail_link(container.paths[1][0], container.paths[1][1],
                  /*fail_time=*/0, /*repair_time=*/9);

  const auto pairs = {
      std::pair{serial_retry_transfer(net, s, t, faults),
                serial_retry_transfer(service, s, t, faults)},
      std::pair{dispersal_transfer(net, s, t, faults),
                dispersal_transfer(service, s, t, faults)},
      std::pair{flooding_transfer(net, s, t, faults),
                flooding_transfer(service, s, t, faults)},
      std::pair{backoff_retry_transfer(net, s, t, model),
                backoff_retry_transfer(service, s, t, model)},
  };
  for (const auto& [direct, routed] : pairs) {
    EXPECT_EQ(direct.delivered, routed.delivered);
    EXPECT_EQ(direct.completion_cycles, routed.completion_cycles);
    EXPECT_EQ(direct.attempts, routed.attempts);
    EXPECT_EQ(direct.wasted_transmissions, routed.wasted_transmissions);
  }
  EXPECT_EQ(service.cache().misses(), 1u);  // one pair, four transfers
  EXPECT_EQ(service.cache().hits(), 3u);
}

}  // namespace
}  // namespace hhc::sim
