#include <gtest/gtest.h>

#include "sim/stats.hpp"

namespace hhc::sim {
namespace {

TEST(SimStats, SummaryOfEmptyIsZeros) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0u);
}

TEST(SimStats, SummaryOfSingleton) {
  const auto s = summarize({42});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_EQ(s.min, 42u);
  EXPECT_EQ(s.p50, 42u);
  EXPECT_EQ(s.p95, 42u);
  EXPECT_EQ(s.max, 42u);
}

TEST(SimStats, SummaryOfRange) {
  std::vector<std::uint64_t> values;
  for (std::uint64_t i = 1; i <= 100; ++i) values.push_back(i);
  const auto s = summarize(values);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_NEAR(static_cast<double>(s.p50), 50.0, 1.0);
  EXPECT_NEAR(static_cast<double>(s.p95), 95.0, 1.0);
}

TEST(SimStats, SummaryUnsortedInput) {
  const auto s = summarize({9, 1, 5, 3, 7});
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 9u);
  EXPECT_EQ(s.p50, 5u);
}

TEST(SimStats, PercentileBoundsChecked) {
  const std::vector<std::uint64_t> v{1, 2, 3};
  EXPECT_THROW((void)percentile(v, -0.1), std::invalid_argument);
  EXPECT_THROW((void)percentile(v, 1.1), std::invalid_argument);
  EXPECT_THROW((void)percentile({}, 0.5), std::invalid_argument);
}

TEST(SimStats, PercentileEndpoints) {
  const std::vector<std::uint64_t> v{10, 20, 30, 40};
  EXPECT_EQ(percentile(v, 0.0), 10u);
  EXPECT_EQ(percentile(v, 1.0), 40u);
}

}  // namespace
}  // namespace hhc::sim
