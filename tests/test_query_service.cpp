#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/disjoint.hpp"
#include "core/io.hpp"
#include "core/metrics.hpp"
#include "core/routing.hpp"
#include "fault/adaptive_router.hpp"
#include "obs/metrics.hpp"
#include "obs/stages.hpp"
#include "query/path_service.hpp"
#include "util/deadline.hpp"
#include "util/rng.hpp"

namespace hhc::query {
namespace {

using core::HhcTopology;
using core::Node;

TEST(PathService, PristineAnswersBitIdenticalToDirectConstruction) {
  const HhcTopology net{3};
  PathService service{net};
  for (const auto& [s, t] : core::sample_pairs(net, 300, 77)) {
    const auto direct = core::node_disjoint_paths(net, s, t);
    const auto answer = service.answer(PairQuery{.s = s, .t = t});
    EXPECT_EQ(answer.level, DegradationLevel::kGuaranteed);
    EXPECT_FALSE(answer.used_fallback);
    ASSERT_EQ(answer.paths.size(), direct.paths.size());
    for (std::size_t i = 0; i < direct.paths.size(); ++i) {
      EXPECT_EQ(answer.paths[i], direct.paths[i]) << "s=" << s << " t=" << t;
    }
  }
}

TEST(PathService, OptionsThreadThroughToTheConstruction) {
  const HhcTopology net{3};
  PathService service{net};
  const core::ConstructionOptions balanced{
      .selection = core::RouteSelectionPolicy::kBalanced};
  for (const auto& [s, t] : core::sample_pairs(net, 100, 5)) {
    const auto direct = core::node_disjoint_paths(net, s, t, balanced);
    const auto answer =
        service.answer(PairQuery{.s = s, .t = t, .options = balanced});
    EXPECT_EQ(answer.paths, direct.paths);
  }
}

TEST(PathService, SelfQueryIsTrivialNotAnError) {
  const HhcTopology net{2};
  PathService service{net};
  const auto answer = service.answer(PairQuery{.s = 9, .t = 9});
  EXPECT_EQ(answer.level, DegradationLevel::kGuaranteed);
  ASSERT_EQ(answer.paths.size(), 1u);
  EXPECT_EQ(answer.paths[0], core::Path{9});
}

TEST(PathService, OutOfRangeNodesThrow) {
  const HhcTopology net{2};
  PathService service{net};
  EXPECT_THROW((void)service.answer(PairQuery{.s = 0, .t = net.node_count()}),
               std::invalid_argument);
  EXPECT_THROW((void)service.answer(PairQuery{.s = net.node_count(), .t = 0}),
               std::invalid_argument);
}

TEST(PathService, FaultAwareAnswersMatchTheAdaptiveRouter) {
  const HhcTopology net{2};
  PathService service{net};
  const fault::AdaptiveRouter router{net};
  util::Xoshiro256 rng{404};
  for (const auto& [s, t] : core::sample_pairs(net, 120, 21)) {
    core::FaultModel::RandomSpec spec;
    spec.node_faults = rng.below(net.m() + 2);
    spec.external_link_faults = rng.below(2);
    const auto faults = core::FaultModel::random(net, spec, s, t, rng);
    const auto expected = router.route(s, t, faults);
    const auto answer =
        service.answer(PairQuery{.s = s, .t = t, .faults = &faults});
    ASSERT_EQ(answer.level, expected.level);
    EXPECT_EQ(answer.paths, expected.paths);
    EXPECT_EQ(answer.container_paths_blocked,
              expected.container_paths_blocked);
    EXPECT_EQ(answer.used_fallback, expected.used_fallback);
  }
}

TEST(PathService, BatchAnswersInInputOrder) {
  const HhcTopology net{3};
  PathService service{net, {.threads = 4}};
  const auto pairs = core::sample_pairs(net, 200, 31);
  std::vector<PairQuery> queries;
  for (const auto& [s, t] : pairs) queries.push_back({.s = s, .t = t});
  const auto results = service.answer(queries);
  ASSERT_EQ(results.size(), queries.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto direct =
        core::node_disjoint_paths(net, queries[i].s, queries[i].t);
    EXPECT_EQ(results[i].paths, direct.paths) << "batch slot " << i;
  }
}

TEST(PathService, BatchIsDeterministicForAnyThreadCount) {
  const HhcTopology net{3};
  const auto pairs = core::sample_pairs(net, 150, 47);
  util::Xoshiro256 rng{48};
  core::FaultModel::RandomSpec spec;
  spec.node_faults = 2;
  const auto faults =
      core::FaultModel::random(net, spec, pairs[0].s, pairs[0].t, rng);
  std::vector<PairQuery> queries;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    // Mix pristine and fault-aware queries in one batch.
    queries.push_back(PairQuery{.s = pairs[i].s,
                                .t = pairs[i].t,
                                .faults = i % 3 == 0 ? &faults : nullptr});
  }

  PathService reference{net, {.threads = 1}};
  const auto expected = reference.answer(queries);
  for (const std::size_t threads : {2u, 3u, 8u}) {
    PathService service{net, {.threads = threads}};
    const auto results = service.answer(queries);
    ASSERT_EQ(results.size(), expected.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].paths, expected[i].paths)
          << "threads=" << threads << " slot " << i;
      EXPECT_EQ(results[i].level, expected[i].level);
      EXPECT_EQ(results[i].used_fallback, expected[i].used_fallback);
    }
  }
}

TEST(PathService, MalformedBatchElementDoesNotPoisonSiblings) {
  // Old semantics rethrew the element's std::invalid_argument and threw the
  // whole batch away. Now the bad element alone reports kInvalid and every
  // sibling answers normally — one typo must not cost a 10k-query batch.
  const HhcTopology net{2};
  PathService service{net, {.threads = 2}};
  const std::vector<PairQuery> queries{{.s = 0, .t = 5},
                                       {.s = 0, .t = net.node_count()},
                                       {.s = 3, .t = 60}};
  const auto results = service.answer(queries);
  ASSERT_EQ(results.size(), 3u);

  EXPECT_EQ(results[0].outcome, RouteOutcome::kOk);
  EXPECT_EQ(results[0].paths, core::node_disjoint_paths(net, 0, 5).paths);
  EXPECT_EQ(results[1].outcome, RouteOutcome::kInvalid);
  EXPECT_TRUE(results[1].paths.empty());
  EXPECT_EQ(results[2].outcome, RouteOutcome::kOk);
  EXPECT_EQ(results[2].paths, core::node_disjoint_paths(net, 3, 60).paths);

  const auto stats = service.stats();
  EXPECT_EQ(stats.invalid, 1u);
  EXPECT_EQ(stats.guaranteed + stats.best_effort + stats.disconnected +
                stats.shed + stats.timed_out + stats.invalid,
            stats.queries);
}

TEST(PathService, EmptyBatchIsANoop) {
  const HhcTopology net{2};
  PathService service{net, {.threads = 2}};
  const std::vector<PairQuery> queries;
  EXPECT_TRUE(service.answer(queries).empty());
  EXPECT_EQ(service.stats().queries, 0u);
}

TEST(PathService, SelfQueryWithFaultViewAcrossEveryEntryPoint) {
  // s == t stays the trivial answer under a fault view as long as the node
  // itself is alive; a dead node is an authoritative disconnect, not an
  // error. answer_view stays pristine-only and rejects the view either way.
  const HhcTopology net{2};
  PathService service{net};
  core::FaultModel faults;
  faults.fail_node(7);

  const auto alive = service.answer(PairQuery{.s = 9, .t = 9, .faults = &faults});
  EXPECT_EQ(alive.outcome, RouteOutcome::kOk);
  EXPECT_EQ(alive.level, DegradationLevel::kGuaranteed);
  ASSERT_EQ(alive.paths.size(), 1u);
  EXPECT_EQ(alive.paths[0], core::Path{9});

  const auto dead = service.answer(PairQuery{.s = 7, .t = 7, .faults = &faults});
  EXPECT_EQ(dead.outcome, RouteOutcome::kOk);
  EXPECT_EQ(dead.level, DegradationLevel::kDisconnected);
  EXPECT_TRUE(dead.paths.empty());

  const std::vector<PairQuery> queries{{.s = 9, .t = 9, .faults = &faults},
                                       {.s = 7, .t = 7, .faults = &faults}};
  const auto batch = service.answer(queries);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].paths, alive.paths);
  EXPECT_EQ(batch[0].level, alive.level);
  EXPECT_EQ(batch[1].level, dead.level);

  EXPECT_THROW(
      (void)service.answer_view(PairQuery{.s = 9, .t = 9, .faults = &faults}),
      std::invalid_argument);
}

TEST(PathService, StatsCountQueriesLevelsAndLatency) {
  const HhcTopology net{2};
  PathService service{net};
  for (const auto& [s, t] : core::sample_pairs(net, 40, 3)) {
    (void)service.answer(PairQuery{.s = s, .t = t});
  }
  core::FaultModel faults;
  faults.fail_node(1);
  (void)service.answer(PairQuery{.s = 0, .t = 60, .faults = &faults});

  const auto stats = service.stats();
  EXPECT_EQ(stats.queries, 41u);
  EXPECT_EQ(stats.pristine, 40u);
  EXPECT_EQ(stats.fault_aware, 1u);
  EXPECT_EQ(stats.guaranteed + stats.best_effort + stats.disconnected,
            stats.queries);
  EXPECT_EQ(stats.latency.count, stats.queries);
  EXPECT_GT(stats.latency.max_micros, 0.0);
  EXPECT_GE(stats.latency.percentile(0.99), stats.latency.percentile(0.50));
  // Every non-self query performs one cache lookup: 40 pristine + 1 via the
  // router's shared-cache container fetch.
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, 41u);
}

TEST(LatencyHistogram, PercentileSkipsEmptyLeadingBuckets) {
  // The pre-obs implementation computed target = ceil(p * count), which is
  // 0 at p = 0 — "satisfied" by the empty bucket 0, reporting a phantom
  // 1µs. The rewrapped histogram skips empty leading buckets.
  LatencyHistogram latency;
  latency.record(100.0);  // bucket [64, 128)
  const auto snap = latency.snapshot();
  EXPECT_EQ(snap.percentile(0.0), 128.0);
  EXPECT_EQ(snap.percentile(1.0), 128.0);
}

TEST(LatencyHistogram, ErrorSemanticsMatchSimPercentile) {
  LatencyHistogram latency;
  // Empty histograms and out-of-range p throw, exactly like
  // sim::percentile, instead of silently returning a bogus 0 or 1.
  EXPECT_THROW((void)latency.snapshot().percentile(0.5),
               std::invalid_argument);
  latency.record(1.0);
  const auto snap = latency.snapshot();
  EXPECT_THROW((void)snap.percentile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)snap.percentile(1.5), std::invalid_argument);
}

TEST(LatencyHistogram, SubMicrosecondAndHugeSamples) {
  LatencyHistogram latency;
  latency.record(0.25);   // bucket 0
  latency.record(-3.0);   // clamps to bucket 0, ignored for max
  latency.record(1e30);   // saturates the top bucket
  const auto snap = latency.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.buckets.front(), 2u);
  EXPECT_EQ(snap.buckets.back(), 1u);
  EXPECT_EQ(snap.max_micros, 1e30);
  EXPECT_EQ(snap.percentile(0.5), 1.0);  // bucket 0's upper edge
}

TEST(PathService, EmptyStatsRenderWithoutThrowing) {
  // A service that has answered nothing must still render: the CSV/JSON/
  // table emitters substitute 0 for percentiles of an empty histogram
  // rather than tripping its empty-throw contract.
  const HhcTopology net{2};
  const PathService service{net};
  const auto stats = service.stats();
  EXPECT_EQ(stats.latency.count, 0u);
  EXPECT_NE(stats.to_csv().find("service,queries,0"), std::string::npos);
  // The empty latency distribution renders count/max but no percentiles.
  EXPECT_NE(stats.to_csv().find("latency,answer_us,,0,,,"),
            std::string::npos);
  EXPECT_NE(stats.to_json().find("\"name\":\"queries\",\"value\":0"),
            std::string::npos);
}

TEST(PathService, StatsResetKeepsCacheContents) {
  const HhcTopology net{2};
  PathService service{net};
  (void)service.answer(PairQuery{.s = 0, .t = 60});
  service.reset_stats();
  const auto stats = service.stats();
  EXPECT_EQ(stats.queries, 0u);
  EXPECT_EQ(stats.latency.count, 0u);
  EXPECT_EQ(stats.cache.entries, 1u);  // cache untouched by reset_stats
}

TEST(PathService, EmitsWellFormedCsvAndJson) {
  const HhcTopology net{2};
  PathService service{net, {.cache_shards = 4}};
  for (const auto& [s, t] : core::sample_pairs(net, 25, 8)) {
    (void)service.answer(PairQuery{.s = s, .t = t});
  }
  const auto stats = service.stats();

  const auto csv = stats.to_csv();
  EXPECT_NE(csv.find("section,name,value,count,p50,p90,p99,max"),
            std::string::npos);
  EXPECT_NE(csv.find("service,queries,25"), std::string::npos);
  EXPECT_NE(csv.find("cache,hits,"), std::string::npos);
  EXPECT_NE(csv.find("cache.shard0,entries,"), std::string::npos);
  EXPECT_NE(csv.find("cache.shard3,evictions,"), std::string::npos);
  EXPECT_NE(csv.find("latency,answer_us,"), std::string::npos);
  // The registry metrics ride along in the same table (the per-outcome
  // answer histogram records once per successful query).
  EXPECT_NE(csv.find("histogram,query.answer.ok,"), std::string::npos);
  // Header + one line per row, nothing else.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            1 + stats.rows().size());

  const auto json = stats.to_json();  // JsonWriter throws on malformed output
  EXPECT_NE(json.find("\"name\":\"queries\",\"value\":25"), std::string::npos);
  EXPECT_NE(json.find("\"section\":\"latency\""), std::string::npos);
  EXPECT_NE(json.find("\"section\":\"cache.shard0\""), std::string::npos);
}

TEST(PathService, FaultAwareQueriesShareThePristineCache) {
  // One service, same pair queried pristine then fault-aware: the router's
  // container lookup must hit the entry the pristine query populated.
  const HhcTopology net{2};
  PathService service{net};
  (void)service.answer(PairQuery{.s = 0, .t = 60});
  EXPECT_EQ(service.cache().misses(), 1u);
  core::FaultModel faults;
  faults.fail_node(33);
  const auto answer =
      service.answer(PairQuery{.s = 0, .t = 60, .faults = &faults});
  EXPECT_TRUE(answer.cache_hit);
  EXPECT_EQ(service.cache().misses(), 1u);
  EXPECT_EQ(service.cache().hits(), 1u);
}

TEST(PathService, AnswerViewMatchesAnswer) {
  const HhcTopology net{3};
  PathService service{net};
  for (const auto& [s, t] : core::sample_pairs(net, 40, 31)) {
    const RouteView view = service.answer_view(PairQuery{.s = s, .t = t});
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(view.level, DegradationLevel::kGuaranteed);
    const auto direct = service.answer(PairQuery{.s = s, .t = t});
    EXPECT_EQ(view.container.materialize().paths, direct.paths);
  }
}

TEST(PathService, AnswerViewSelfQueryIsTrivial) {
  const HhcTopology net{2};
  PathService service{net};
  const RouteView view = service.answer_view(PairQuery{.s = 42, .t = 42});
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view.cache_hit);
  EXPECT_EQ(view.container.path_count(), 1u);
  EXPECT_EQ(view.container.path_size(0), 1u);
  EXPECT_EQ(view.container.node(0, 0), 42u);
  EXPECT_EQ(view.level, DegradationLevel::kGuaranteed);
}

TEST(PathService, AnswerViewCountsInTelemetry) {
  const HhcTopology net{2};
  PathService service{net};
  (void)service.answer_view(PairQuery{.s = 0, .t = 60});
  (void)service.answer_view(PairQuery{.s = 0, .t = 60});
  const auto stats = service.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.pristine, 2u);
  EXPECT_EQ(stats.guaranteed, 2u);
  EXPECT_EQ(stats.latency.count, 2u);
  EXPECT_EQ(service.cache().hits(), 1u);
  EXPECT_EQ(service.cache().misses(), 1u);
}

TEST(PathService, AnswerViewRejectsBadInput) {
  const HhcTopology net{2};
  PathService service{net};
  EXPECT_THROW((void)service.answer_view(PairQuery{.s = 0, .t = net.node_count()}),
               std::invalid_argument);
  // The zero-copy path is pristine-only by contract: degraded routes must
  // be materialized through answer().
  core::FaultModel faults;
  faults.fail_node(33);
  EXPECT_THROW(
      (void)service.answer_view(PairQuery{.s = 0, .t = 60, .faults = &faults}),
      std::invalid_argument);
}

TEST(PathService, ExpiredDeadlineAnswersTimedOutNotWrong) {
  const HhcTopology net{2};
  PathService service{net};
  PairQuery query{.s = 0, .t = 60};
  query.deadline = util::Deadline::after_micros(0.0);
  const auto result = service.answer(query);
  EXPECT_EQ(result.outcome, RouteOutcome::kTimedOut);
  EXPECT_TRUE(result.paths.empty());

  const auto stats = service.stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.guaranteed + stats.best_effort + stats.disconnected +
                stats.shed + stats.timed_out + stats.invalid,
            stats.queries);
}

TEST(PathService, CancellationTokenAbandonsTheQuery) {
  const HhcTopology net{2};
  PathService service{net};
  util::CancellationToken token;
  token.cancel();
  PairQuery query{.s = 0, .t = 60};
  query.cancel = &token;
  EXPECT_EQ(service.answer(query).outcome, RouteOutcome::kTimedOut);

  token.reset();
  EXPECT_EQ(service.answer(query).outcome, RouteOutcome::kOk);
}

TEST(PathService, NoDeadlineAnswersAreBitIdenticalToTheUnlimitedService) {
  // The acceptance pin for the whole overload layer: with no deadline and
  // an inert admission config, answers are bit-identical to a service
  // without the layer (the construction itself is untouched).
  const HhcTopology net{2};
  PathService plain{net};
  PathService gated{net, {.admission = {.max_in_flight = 64,
                                        .policy = AdmissionPolicy::kQueue,
                                        .breaker_threshold = 8}}};
  for (const auto& [s, t] : core::sample_pairs(net, 150, 66)) {
    const auto expected = plain.answer(PairQuery{.s = s, .t = t});
    const auto actual = gated.answer(PairQuery{.s = s, .t = t});
    ASSERT_EQ(actual.outcome, RouteOutcome::kOk);
    EXPECT_EQ(actual.paths, expected.paths);
    EXPECT_EQ(actual.level, expected.level);
  }
}

TEST(PathService, AnswerViewHonorsDeadlines) {
  const HhcTopology net{2};
  PathService service{net};
  PairQuery query{.s = 0, .t = 60};
  query.deadline = util::Deadline::after_micros(0.0);
  const RouteView view = service.answer_view(query);
  EXPECT_EQ(view.outcome, RouteOutcome::kTimedOut);
  EXPECT_FALSE(view.ok());
  EXPECT_EQ(service.stats().timed_out, 1u);
}

TEST(PathService, OverloadDegradesFaultAwareAnswersToShed) {
  // EWMA overload + blocked container: the survivor BFS is skipped, and
  // the non-authoritative "couldn't check" is reported as kShed — never as
  // an authoritative kOk/kDisconnected.
  const HhcTopology net{2};
  PathServiceConfig config;
  config.admission.ewma_alpha = 1.0;
  config.admission.overload_latency_us = 1e-3;  // any sample overloads
  PathService service{net, config};

  // A completed answer seeds the EWMA past the threshold.
  (void)service.answer(PairQuery{.s = 0, .t = 60});
  ASSERT_TRUE(service.gate().overloaded());

  // Block every container path via its SECOND edge (link faults, so every
  // node stays alive and s keeps its full neighborhood); without overload
  // this pair would get a BFS fallback around the three dead links.
  const auto container = core::node_disjoint_paths(net, 0, 60);
  core::FaultModel faults;
  for (const auto& path : container.paths) {
    ASSERT_GE(path.size(), 3u);
    faults.fail_link(path[1], path[2]);
  }

  const auto degraded =
      service.answer(PairQuery{.s = 0, .t = 60, .faults = &faults});
  EXPECT_EQ(degraded.outcome, RouteOutcome::kShed);
  EXPECT_TRUE(degraded.paths.empty());

  const auto stats = service.stats();
  EXPECT_GE(stats.degraded_admissions, 1u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_GT(stats.ewma_latency_us, 0.0);

  // The same query on a non-overloaded service proves the fallback was
  // what got skipped.
  PathService relaxed{net};
  const auto full =
      relaxed.answer(PairQuery{.s = 0, .t = 60, .faults = &faults});
  EXPECT_EQ(full.outcome, RouteOutcome::kOk);
  EXPECT_EQ(full.level, DegradationLevel::kBestEffort);
}

TEST(PathService, BreakerShortCircuitsRepeatedDisconnectsUntilEpochAdvance) {
  const HhcTopology net{2};
  PathServiceConfig config;
  config.admission.breaker_threshold = 2;
  PathService service{net, config};

  core::FaultModel faults;
  faults.fail_node(60);  // dead endpoint: authoritative disconnect
  const PairQuery query{.s = 0, .t = 60, .faults = &faults};

  EXPECT_EQ(service.answer(query).level, DegradationLevel::kDisconnected);
  EXPECT_EQ(service.answer(query).level, DegradationLevel::kDisconnected);
  // Streak hit the threshold: the third query is shed, not re-swept.
  EXPECT_EQ(service.answer(query).outcome, RouteOutcome::kShed);
  EXPECT_EQ(service.answer(query).outcome, RouteOutcome::kShed);

  auto stats = service.stats();
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.breaker_short_circuits, 2u);
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.disconnected, 2u);

  // The fault landscape changed (say, the node was repaired): every pair
  // gets a fresh authoritative check.
  service.advance_fault_epoch();
  core::FaultModel repaired;
  const auto back =
      service.answer(PairQuery{.s = 0, .t = 60, .faults = &repaired});
  EXPECT_EQ(back.outcome, RouteOutcome::kOk);
  EXPECT_NE(back.level, DegradationLevel::kDisconnected);
}

TEST(PathService, OutcomeCountersLandInServiceStatsNotTheRegistry) {
  // PR 8 shed-fast contract: shed/timed-out totals are per-thread striped
  // ServiceStats tallies — the rejection path writes NO registry counters
  // and NO histograms. Breaker events happen on the (already admitted)
  // fault-aware path, so those registry counters remain.
  const HhcTopology net{2};
  auto& registry = obs::MetricRegistry::global();

  PathServiceConfig config;
  config.admission.breaker_threshold = 1;
  PathService service{net, config};

  PairQuery expired{.s = 0, .t = 60};
  expired.deadline = util::Deadline::after_micros(0.0);
  (void)service.answer(expired);  // admission-time expiry: kTimedOut once

  core::FaultModel faults;
  faults.fail_node(60);
  const PairQuery dead{.s = 0, .t = 60, .faults = &faults};
  (void)service.answer(dead);  // trips the breaker (threshold 1)
  (void)service.answer(dead);  // short-circuits to kShed

  const auto stats = service.stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.queries, 3u);
  // The admission-time expiry did no admitted work: only the two
  // fault-aware answers show up in the service-time histogram.
  EXPECT_EQ(stats.latency.count, 2u);
  EXPECT_GE(registry.counter(obs::stages::kBreakerTripCount).get(), 1u);
  EXPECT_GE(registry.counter(obs::stages::kBreakerShortCircuitCount).get(),
            1u);
}

}  // namespace
}  // namespace hhc::query
