// Differential regression suite: the arena-backed construction against
// recorded pre-rework snapshots and against the max-flow baseline.
//
// The allocation-free hot path (ConstructionScratch + PathArena) was
// required to be *bit-identical* to the construction that preceded it, not
// merely "also correct". The snapshot hashes below were recorded from the
// pre-rework implementation (FNV-1a over every container: path count, then
// per path its node count and nodes, little-endian byte order); the suite
// recomputes them through the scratch overload, so ANY behavioral drift in
// route selection, tie-breaking, fan assignment, or walk realization shows
// up as a one-line hash mismatch. Coverage: every ordered pair at m = 1 and
// m = 2 under all three option sets, plus 2000 sampled pairs at m = 3 and
// m = 4 (seed 0xD1FF + m, the seed the snapshots were recorded with —
// changing it invalidates the constants).
//
// A hash can only say "something changed"; the deep-equality sweep pins the
// two live entry points (copying API vs scratch + materialize) node-for-node
// so a mismatch points at the diverging pair. The max-flow cross-check then
// ties the arena path's cardinality to an independent algorithm entirely.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "baseline/maxflow_paths.hpp"
#include "core/disjoint.hpp"
#include "core/metrics.hpp"
#include "core/scratch.hpp"

namespace hhc::core {
namespace {

struct Fnv1a {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
};

struct Snapshot {
  DimensionOrdering ordering;
  RouteSelectionPolicy selection;
  std::uint64_t expected;
};

// Hashes one scratch-built container into the running digest.
void hash_pair(const HhcTopology& net, Node s, Node t,
               const ConstructionOptions& options, ConstructionScratch& scratch,
               Fnv1a& fnv) {
  const DisjointPathSetRef set =
      node_disjoint_paths(net, s, t, options, scratch);
  fnv.mix(set.paths.size());
  for (const PathRef path : set.paths) {
    fnv.mix(path.size());
    for (const Node v : path) fnv.mix(v);
  }
}

void check_exhaustive_snapshot(unsigned m, const Snapshot& snap) {
  const HhcTopology net{m};
  const ConstructionOptions options{snap.ordering, snap.selection};
  auto& scratch = tls_construction_scratch();
  Fnv1a fnv;
  for (Node s = 0; s < net.node_count(); ++s) {
    for (Node t = 0; t < net.node_count(); ++t) {
      if (s != t) hash_pair(net, s, t, options, scratch, fnv);
    }
  }
  EXPECT_EQ(fnv.h, snap.expected)
      << "m=" << m << ": arena construction drifted from pre-rework snapshot";
}

void check_sampled_snapshot(unsigned m, const Snapshot& snap) {
  const HhcTopology net{m};
  const ConstructionOptions options{snap.ordering, snap.selection};
  auto& scratch = tls_construction_scratch();
  Fnv1a fnv;
  for (const auto& [s, t] : sample_pairs(net, 2000, 0xD1FF + m)) {
    hash_pair(net, s, t, options, scratch, fnv);
  }
  EXPECT_EQ(fnv.h, snap.expected)
      << "m=" << m << ": arena construction drifted from pre-rework snapshot";
}

// Recorded from the pre-rework implementation; do not regenerate casually —
// a mismatch means routed containers changed, which breaks cache/bench
// comparability and must be an explicit, documented decision.
constexpr Snapshot kM1[] = {
    {DimensionOrdering::kGrayCycle, RouteSelectionPolicy::kCanonical,
     0xe58585aecc242da5ULL},
    {DimensionOrdering::kAscending, RouteSelectionPolicy::kCanonical,
     0xe58585aecc242da5ULL},  // one differing dim: orderings coincide
    {DimensionOrdering::kGrayCycle, RouteSelectionPolicy::kBalanced,
     0xe58585aecc242da5ULL},  // no free slots at m=1: policies coincide
};
constexpr Snapshot kM2[] = {
    {DimensionOrdering::kGrayCycle, RouteSelectionPolicy::kCanonical,
     0x1b109c83d4155f25ULL},
    {DimensionOrdering::kAscending, RouteSelectionPolicy::kCanonical,
     0x8d0a6792a7fa3025ULL},
    {DimensionOrdering::kGrayCycle, RouteSelectionPolicy::kBalanced,
     0x8718a22af7b426a5ULL},
};
constexpr Snapshot kM3[] = {
    {DimensionOrdering::kGrayCycle, RouteSelectionPolicy::kCanonical,
     0x5ca2a59203eee95dULL},
    {DimensionOrdering::kAscending, RouteSelectionPolicy::kCanonical,
     0xeaab775cbb9c33c1ULL},
    {DimensionOrdering::kGrayCycle, RouteSelectionPolicy::kBalanced,
     0xf43247dd2f370279ULL},
};
constexpr Snapshot kM4[] = {
    {DimensionOrdering::kGrayCycle, RouteSelectionPolicy::kCanonical,
     0x5c5ecd2f64ed61a6ULL},
    {DimensionOrdering::kAscending, RouteSelectionPolicy::kCanonical,
     0x4294dd5330a3f251ULL},
    {DimensionOrdering::kGrayCycle, RouteSelectionPolicy::kBalanced,
     0x2657748f56c603f7ULL},
};

TEST(Differential, SnapshotExhaustiveM1) {
  for (const Snapshot& snap : kM1) check_exhaustive_snapshot(1, snap);
}

TEST(Differential, SnapshotExhaustiveM2) {
  for (const Snapshot& snap : kM2) check_exhaustive_snapshot(2, snap);
}

TEST(Differential, SnapshotSampledM3) {
  for (const Snapshot& snap : kM3) check_sampled_snapshot(3, snap);
}

TEST(Differential, SnapshotSampledM4) {
  for (const Snapshot& snap : kM4) check_sampled_snapshot(4, snap);
}

// The copying API and the scratch overload must agree node for node: the
// legacy entry point is DEFINED as scratch + materialize, and this pins
// that equivalence from the outside (exhaustive at m=2, sampled above).
TEST(Differential, LegacyEqualsScratchExhaustiveM2) {
  const HhcTopology net{2};
  auto& scratch = tls_construction_scratch();
  for (Node s = 0; s < net.node_count(); ++s) {
    for (Node t = 0; t < net.node_count(); ++t) {
      if (s == t) continue;
      const DisjointPathSet legacy = node_disjoint_paths(net, s, t);
      const DisjointPathSetRef ref =
          node_disjoint_paths(net, s, t, {}, scratch);
      ASSERT_EQ(legacy.paths.size(), ref.paths.size());
      for (std::size_t i = 0; i < ref.paths.size(); ++i) {
        ASSERT_TRUE(std::ranges::equal(legacy.paths[i], ref.paths[i]))
            << "s=" << s << " t=" << t << " path " << i;
      }
    }
  }
}

// Arena-path cardinality against an independent algorithm: max flow on the
// explicit split network. Exhaustive at m=2, sampled at m=3.
TEST(Differential, ArenaCountMatchesMaxflowM2Exhaustive) {
  const HhcTopology net{2};
  const baseline::MaxflowBaseline exact{net};
  auto& scratch = tls_construction_scratch();
  for (Node s = 0; s < net.node_count(); ++s) {
    for (Node t = 0; t < net.node_count(); ++t) {
      if (s == t) continue;
      const DisjointPathSetRef set =
          node_disjoint_paths(net, s, t, {}, scratch);
      ASSERT_EQ(set.paths.size(), exact.connectivity(s, t))
          << "s=" << s << " t=" << t;
    }
  }
}

TEST(Differential, ArenaCountMatchesMaxflowM3Sampled) {
  const HhcTopology net{3};
  const baseline::MaxflowBaseline exact{net};
  auto& scratch = tls_construction_scratch();
  for (const auto& [s, t] : sample_pairs(net, 60, 0xD1FF)) {
    const DisjointPathSetRef set = node_disjoint_paths(net, s, t, {}, scratch);
    ASSERT_EQ(set.paths.size(), exact.connectivity(s, t))
        << "s=" << s << " t=" << t;
  }
}

}  // namespace
}  // namespace hhc::core
