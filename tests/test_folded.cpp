#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cube/folded.hpp"
#include "graph/bfs.hpp"
#include "graph/path_utils.hpp"
#include "graph/vertex_disjoint.hpp"
#include "util/rng.hpp"

namespace hhc::cube {
namespace {

void check_container(const FoldedHypercube& fq, CubeNode s, CubeNode t) {
  const auto paths = fq.disjoint_paths(s, t);
  ASSERT_EQ(paths.size(), fq.degree()) << "s=" << s << " t=" << t;
  const auto g = fq.explicit_graph();
  std::vector<graph::VertexPath> vpaths;
  for (const auto& p : paths) {
    graph::VertexPath vp;
    for (const auto v : p) vp.push_back(static_cast<graph::Vertex>(v));
    ASSERT_TRUE(graph::validate_path_between(g, vp,
                                             static_cast<graph::Vertex>(s),
                                             static_cast<graph::Vertex>(t))
                    .ok)
        << "n=" << fq.dimension() << " s=" << s << " t=" << t;
    vpaths.push_back(std::move(vp));
  }
  const std::vector<graph::Vertex> shared{static_cast<graph::Vertex>(s),
                                          static_cast<graph::Vertex>(t)};
  EXPECT_TRUE(graph::validate_internally_disjoint(g, vpaths, shared).ok)
      << "n=" << fq.dimension() << " s=" << s << " t=" << t;
}

TEST(FoldedHypercube, RejectsBadDimension) {
  EXPECT_THROW(FoldedHypercube{1}, std::invalid_argument);
  EXPECT_THROW(FoldedHypercube{64}, std::invalid_argument);
}

TEST(FoldedHypercube, BasicStructure) {
  const FoldedHypercube fq{3};
  EXPECT_EQ(fq.node_count(), 8u);
  EXPECT_EQ(fq.degree(), 4u);
  EXPECT_EQ(fq.complement(0b000), 0b111u);
  EXPECT_EQ(fq.neighbors(0b000).size(), 4u);
  EXPECT_TRUE(fq.is_edge(0b000, 0b111));
  EXPECT_TRUE(fq.is_edge(0b000, 0b010));
  EXPECT_FALSE(fq.is_edge(0b000, 0b011));
}

TEST(FoldedHypercube, Fq2IsComplete) {
  const FoldedHypercube fq{2};
  const auto g = fq.explicit_graph();
  EXPECT_EQ(g.edge_count(), 6u);  // K_4
  EXPECT_EQ(graph::diameter(g), 1u);
}

TEST(FoldedHypercube, DiameterMatchesFormula) {
  for (unsigned n = 2; n <= 9; ++n) {
    const FoldedHypercube fq{n};
    EXPECT_EQ(graph::diameter(fq.explicit_graph()), fq.theoretical_diameter())
        << "n=" << n;
  }
}

TEST(FoldedHypercube, DistanceMatchesBfs) {
  const FoldedHypercube fq{6};
  const auto g = fq.explicit_graph();
  const auto dist = graph::bfs_distances(g, 0);
  for (CubeNode v = 0; v < fq.node_count(); ++v) {
    EXPECT_EQ(fq.distance(0, v), dist[static_cast<graph::Vertex>(v)])
        << "v=" << v;
  }
}

TEST(FoldedHypercube, ShortestPathIsValidAndMinimal) {
  const FoldedHypercube fq{7};
  util::Xoshiro256 rng{3};
  for (int trial = 0; trial < 200; ++trial) {
    const CubeNode s = rng.below(fq.node_count());
    const CubeNode t = rng.below(fq.node_count());
    if (s == t) continue;
    const auto p = fq.shortest_path(s, t);
    EXPECT_EQ(p.size() - 1, fq.distance(s, t));
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      EXPECT_TRUE(fq.is_edge(p[i], p[i + 1]));
    }
  }
}

TEST(FoldedHypercube, ConnectivityIsDegree) {
  for (unsigned n = 2; n <= 6; ++n) {
    const FoldedHypercube fq{n};
    const auto g = fq.explicit_graph();
    util::Xoshiro256 rng{n};
    for (int trial = 0; trial < 20; ++trial) {
      const auto s = static_cast<graph::Vertex>(rng.below(fq.node_count()));
      const auto t = static_cast<graph::Vertex>(rng.below(fq.node_count()));
      if (s == t) continue;
      EXPECT_EQ(graph::vertex_connectivity_between(g, s, t), fq.degree());
    }
  }
}

TEST(FoldedDisjoint, AllPairsN2ToN5) {
  for (unsigned n = 2; n <= 5; ++n) {
    const FoldedHypercube fq{n};
    for (CubeNode s = 0; s < fq.node_count(); ++s) {
      for (CubeNode t = 0; t < fq.node_count(); ++t) {
        if (s != t) check_container(fq, s, t);
      }
    }
  }
}

TEST(FoldedDisjoint, RandomPairsN8) {
  const FoldedHypercube fq{8};
  util::Xoshiro256 rng{17};
  for (int trial = 0; trial < 60; ++trial) {
    const CubeNode s = rng.below(fq.node_count());
    const CubeNode t = rng.below(fq.node_count());
    if (s != t) check_container(fq, s, t);
  }
}

TEST(FoldedDisjoint, ComplementPairGetsDirectEdgePath) {
  const FoldedHypercube fq{5};
  const auto paths = fq.disjoint_paths(0b00000, 0b11111);
  bool direct = false;
  for (const auto& p : paths) direct |= (p.size() == 2);
  EXPECT_TRUE(direct);
  EXPECT_EQ(paths.size(), 6u);
}

TEST(FoldedDisjoint, AlmostComplementPairUsesTwoShortMixedPaths) {
  const FoldedHypercube fq{4};
  // k = n-1 = 3: s and t agree only in dimension 2.
  const CubeNode s = 0b0000;
  const CubeNode t = 0b1011;
  const auto paths = fq.disjoint_paths(s, t);
  std::size_t two_hop = 0;
  for (const auto& p : paths) {
    if (p.size() == 3) ++two_hop;
  }
  EXPECT_GE(two_hop, 2u);  // comp+e and e+comp
}

class FoldedContainerSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(FoldedContainerSweep, RandomContainersAreDisjoint) {
  const unsigned n = GetParam();
  const FoldedHypercube fq{n};
  util::Xoshiro256 rng{n * 17u};
  for (int trial = 0; trial < 20; ++trial) {
    const CubeNode s = rng.below(fq.node_count());
    const CubeNode t = rng.below(fq.node_count());
    if (s != t) check_container(fq, s, t);
  }
}

INSTANTIATE_TEST_SUITE_P(Dimensions, FoldedContainerSweep,
                         ::testing::Range(2u, 9u),
                         [](const ::testing::TestParamInfo<unsigned>& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

TEST(FoldedDisjoint, MaxLengthBounded) {
  // Every constructed path has length <= k + 2 <= n + 2.
  const FoldedHypercube fq{9};
  util::Xoshiro256 rng{23};
  for (int trial = 0; trial < 100; ++trial) {
    const CubeNode s = rng.below(fq.node_count());
    const CubeNode t = rng.below(fq.node_count());
    if (s == t) continue;
    for (const auto& p : fq.disjoint_paths(s, t)) {
      EXPECT_LE(p.size() - 1, fq.dimension() + 2);
    }
  }
}

}  // namespace
}  // namespace hhc::cube
