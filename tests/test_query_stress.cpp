// Concurrency stress for the path-query engine: many threads hammering one
// PathService (and one ContainerCache underneath) while every answer is
// checked against the serial construction. Run under ThreadSanitizer in CI
// (the dedicated tsan job builds exactly this subset); the assertions prove
// bit-identity, TSan proves the absence of data races.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/container_cache.hpp"
#include "core/disjoint.hpp"
#include "core/metrics.hpp"
#include "query/path_service.hpp"
#include "util/rng.hpp"

namespace hhc::query {
namespace {

using core::HhcTopology;
using core::Node;

constexpr std::size_t kThreads = 8;

TEST(QueryStress, ConcurrentPristineAnswersMatchSerial) {
  const HhcTopology net{3};
  // Few shards on purpose: more threads per shard, more lock contention,
  // better race coverage.
  PathService service{net, {.cache_shards = 4}};

  // Zipf-skewed pair workload: heavy repetition of hot pairs maximizes
  // concurrent hits on the same shard entries.
  const auto pairs = core::sample_pairs(net, 64, 2024);
  std::vector<core::DisjointPathSet> expected;
  expected.reserve(pairs.size());
  for (const auto& [s, t] : pairs) {
    expected.push_back(core::node_disjoint_paths(net, s, t));
  }

  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t id = 0; id < kThreads; ++id) {
    threads.emplace_back([&, id] {
      util::Xoshiro256 rng{1000 + id};
      const util::ZipfianSampler zipf{pairs.size(), 0.9};
      for (std::size_t i = 0; i < 300; ++i) {
        const std::size_t k = zipf(rng);
        const auto answer =
            service.answer(PairQuery{.s = pairs[k].s, .t = pairs[k].t});
        if (answer.paths != expected[k].paths ||
            answer.level != DegradationLevel::kGuaranteed) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.queries, kThreads * 300);
  EXPECT_EQ(stats.guaranteed, stats.queries);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, stats.queries);
  // The workload repeats 64 canonical pairs thousands of times: virtually
  // everything after warmup must be a hit.
  EXPECT_GT(stats.hit_rate(), 0.8);
}

TEST(QueryStress, ConcurrentMixedFaultAndPristineTraffic) {
  const HhcTopology net{2};
  PathService service{net, {.cache_shards = 2}};
  const fault::AdaptiveRouter reference{net};

  const auto pairs = core::sample_pairs(net, 32, 7);
  // A fixed fault set shared by every thread (the FaultModel is read-only
  // during routing — this is exactly the aliasing a real deployment does).
  core::FaultModel faults;
  faults.fail_node(net.encode(1, 1));
  faults.fail_link(net.encode(0, 0), net.encode(0, 1));

  std::vector<RouteResult> expected;
  for (const auto& [s, t] : pairs) {
    expected.push_back(reference.route(s, t, faults));
  }

  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t id = 0; id < kThreads; ++id) {
    threads.emplace_back([&, id] {
      util::Xoshiro256 rng{55 + id};
      for (std::size_t i = 0; i < 200; ++i) {
        const std::size_t k = rng.below(pairs.size());
        const bool pristine = rng.chance(0.5);
        const auto answer =
            service.answer(PairQuery{.s = pairs[k].s,
                                     .t = pairs[k].t,
                                     .faults = pristine ? nullptr : &faults});
        const bool good =
            pristine
                ? answer.paths ==
                      core::node_disjoint_paths(net, pairs[k].s, pairs[k].t)
                          .paths
                : answer.paths == expected[k].paths &&
                      answer.level == expected[k].level;
        if (!good) mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(service.stats().queries, kThreads * 200);
}

TEST(QueryStress, ConcurrentCacheWithEvictionStaysCorrect) {
  // Tiny capacity forces constant eviction -> constant re-construction and
  // entry churn under every shard lock, the worst case for the relabel path.
  const HhcTopology net{3};
  core::ContainerCache cache{net, {.shards = 2, .max_entries_per_shard = 4}};
  const auto pairs = core::sample_pairs(net, 48, 99);
  std::vector<core::DisjointPathSet> expected;
  for (const auto& [s, t] : pairs) {
    expected.push_back(core::node_disjoint_paths(net, s, t));
  }

  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t id = 0; id < kThreads; ++id) {
    threads.emplace_back([&, id] {
      util::Xoshiro256 rng{7000 + id};
      for (std::size_t i = 0; i < 150; ++i) {
        const std::size_t k = rng.below(pairs.size());
        const auto set = cache.lookup(pairs[k].s, pairs[k].t).materialize();
        if (set.paths != expected[k].paths) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_LE(cache.size(), 8u);
  EXPECT_EQ(cache.hits() + cache.misses(), kThreads * 150);
}

TEST(QueryStress, ConcurrentBatchesOnOneService) {
  // Multiple caller threads each issuing whole batches (the service's own
  // pool fans each batch out further) — nested parallelism must neither
  // race nor reorder results.
  const HhcTopology net{2};
  PathService service{net, {.threads = 2}};
  const auto pairs = core::sample_pairs(net, 40, 5);
  std::vector<PairQuery> queries;
  for (const auto& [s, t] : pairs) queries.push_back({.s = s, .t = t});
  std::vector<RouteResult> expected;
  for (const auto& q : queries) {
    expected.push_back(RouteResult{
        .paths = core::node_disjoint_paths(net, q.s, q.t).paths,
        .level = DegradationLevel::kGuaranteed});
  }

  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> callers;
  for (std::size_t id = 0; id < 4; ++id) {
    callers.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        const auto results = service.answer(queries);
        for (std::size_t i = 0; i < results.size(); ++i) {
          if (results[i].paths != expected[i].paths) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& thread : callers) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace hhc::query
