#include <gtest/gtest.h>

#include "util/bitops.hpp"

namespace hhc::bits {
namespace {

TEST(Bitops, Popcount) {
  EXPECT_EQ(popcount(0), 0);
  EXPECT_EQ(popcount(1), 1);
  EXPECT_EQ(popcount(0b1011), 3);
  EXPECT_EQ(popcount(~std::uint64_t{0}), 64);
}

TEST(Bitops, TestSetClearFlip) {
  std::uint64_t v = 0;
  v = set(v, 5);
  EXPECT_TRUE(test(v, 5));
  EXPECT_FALSE(test(v, 4));
  v = flip(v, 5);
  EXPECT_FALSE(test(v, 5));
  v = set(v, 63);
  EXPECT_TRUE(test(v, 63));
  v = clear(v, 63);
  EXPECT_EQ(v, 0u);
}

TEST(Bitops, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(8), 0xFFu);
  EXPECT_EQ(low_mask(64), ~std::uint64_t{0});
}

TEST(Bitops, Extract) {
  const std::uint64_t v = 0b110101101;
  EXPECT_EQ(extract(v, 0, 3), 0b101u);
  EXPECT_EQ(extract(v, 3, 3), 0b101u);
  EXPECT_EQ(extract(v, 6, 3), 0b110u);
}

TEST(Bitops, LowestHighestSet) {
  EXPECT_EQ(lowest_set(0b1000), 3u);
  EXPECT_EQ(highest_set(0b1000), 3u);
  EXPECT_EQ(lowest_set(0b101000), 3u);
  EXPECT_EQ(highest_set(0b101000), 5u);
  EXPECT_EQ(lowest_set(std::uint64_t{1} << 63), 63u);
}

TEST(Bitops, Hamming) {
  EXPECT_EQ(hamming(0, 0), 0);
  EXPECT_EQ(hamming(0b1010, 0b0101), 4);
  EXPECT_EQ(hamming(0b1111, 0b1110), 1);
}

TEST(Bitops, IsPow2AndPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(6));
  EXPECT_EQ(pow2(0), 1u);
  EXPECT_EQ(pow2(10), 1024u);
  EXPECT_EQ(pow2(63), std::uint64_t{1} << 63);
}

TEST(Bitops, ConstexprUsable) {
  static_assert(popcount(0b111) == 3);
  static_assert(flip(0b100, 2) == 0);
  static_assert(hamming(0b1100, 0b0011) == 4);
  SUCCEED();
}

}  // namespace
}  // namespace hhc::bits
