// Structural tests of the hierarchical hypercube topology: address
// arithmetic, degree, neighbor symmetry, and edge classification.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/topology.hpp"

namespace hhc::core {
namespace {

TEST(HhcTopology, RejectsBadM) {
  EXPECT_THROW(HhcTopology{0}, std::invalid_argument);
  EXPECT_THROW(HhcTopology{6}, std::invalid_argument);
  EXPECT_NO_THROW(HhcTopology{1});
  EXPECT_NO_THROW(HhcTopology{5});
}

TEST(HhcTopology, BasicParameters) {
  const HhcTopology net{2};
  EXPECT_EQ(net.m(), 2u);
  EXPECT_EQ(net.cluster_dimensions(), 4u);
  EXPECT_EQ(net.address_bits(), 6u);
  EXPECT_EQ(net.degree(), 3u);
  EXPECT_EQ(net.node_count(), 64u);
  EXPECT_EQ(net.cluster_count(), 16u);
  EXPECT_EQ(net.cluster_size(), 4u);
  EXPECT_EQ(net.theoretical_diameter(), 8u);  // 2^(m+1), exact for m <= 4
}

TEST(HhcTopology, NodeCountsPerM) {
  EXPECT_EQ(HhcTopology{1}.node_count(), 8u);           // 2^3
  EXPECT_EQ(HhcTopology{2}.node_count(), 64u);          // 2^6
  EXPECT_EQ(HhcTopology{3}.node_count(), 2048u);        // 2^11
  EXPECT_EQ(HhcTopology{4}.node_count(), 1048576u);     // 2^20
  EXPECT_EQ(HhcTopology{5}.node_count(), 1ull << 37);   // 2^37
}

TEST(HhcTopology, EncodeDecodeRoundTrip) {
  const HhcTopology net{3};
  for (std::uint64_t x = 0; x < net.cluster_count(); x += 37) {
    for (std::uint64_t y = 0; y < net.cluster_size(); ++y) {
      const Node v = net.encode(x, y);
      EXPECT_EQ(net.cluster_of(v), x);
      EXPECT_EQ(net.position_of(v), y);
    }
  }
}

TEST(HhcTopology, EncodeRejectsOutOfRange) {
  const HhcTopology net{2};
  EXPECT_THROW((void)net.encode(16, 0), std::invalid_argument);
  EXPECT_THROW((void)net.encode(0, 4), std::invalid_argument);
}

TEST(HhcTopology, InternalNeighborsFlipPositionBits) {
  const HhcTopology net{3};
  const Node v = net.encode(5, 0b101);
  for (unsigned i = 0; i < 3; ++i) {
    const Node u = net.internal_neighbor(v, i);
    EXPECT_EQ(net.cluster_of(u), 5u);
    EXPECT_EQ(net.position_of(u), 0b101u ^ (1u << i));
  }
}

TEST(HhcTopology, ExternalNeighborFlipsGatewayDimension) {
  const HhcTopology net{3};
  const Node v = net.encode(0b10110, 0b011);  // gateway for X-dimension 3
  const Node u = net.external_neighbor(v);
  EXPECT_EQ(net.position_of(u), 0b011u);
  EXPECT_EQ(net.cluster_of(u), 0b10110u ^ (1u << 3));
}

TEST(HhcTopology, NeighborRelationIsSymmetric) {
  const HhcTopology net{2};
  for (Node v = 0; v < net.node_count(); ++v) {
    for (const Node u : net.neighbors(v)) {
      const auto back = net.neighbors(u);
      EXPECT_NE(std::find(back.begin(), back.end(), v), back.end())
          << "asymmetric edge " << v << " -- " << u;
    }
  }
}

TEST(HhcTopology, DegreeIsExactlyMPlusOne) {
  for (unsigned m = 1; m <= 3; ++m) {
    const HhcTopology net{m};
    for (Node v = 0; v < net.node_count(); ++v) {
      const auto nbrs = net.neighbors(v);
      const std::set<Node> distinct(nbrs.begin(), nbrs.end());
      EXPECT_EQ(distinct.size(), m + 1) << "m=" << m << " v=" << v;
      EXPECT_EQ(distinct.count(v), 0u) << "self-loop at " << v;
    }
  }
}

TEST(HhcTopology, EdgeClassificationMatchesNeighborLists) {
  const HhcTopology net{2};
  for (Node v = 0; v < net.node_count(); ++v) {
    for (Node u = 0; u < net.node_count(); ++u) {
      const auto nbrs = net.neighbors(v);
      const bool adjacent =
          std::find(nbrs.begin(), nbrs.end(), u) != nbrs.end();
      EXPECT_EQ(net.is_edge(v, u), adjacent) << v << " -- " << u;
      // Internal and external classification must partition edges.
      if (adjacent) {
        EXPECT_NE(net.is_internal_edge(v, u), net.is_external_edge(v, u));
      }
    }
  }
}

TEST(HhcTopology, ExternalEdgeRequiresMatchingGateway) {
  const HhcTopology net{3};
  // Nodes in adjacent clusters but at the wrong position are NOT adjacent.
  const Node v = net.encode(0, 0b001);        // gateway for dimension 1
  const Node wrong = net.encode(1, 0b001);    // cluster differs in dim 0
  EXPECT_FALSE(net.is_edge(v, wrong));
  const Node right = net.encode(2, 0b001);    // cluster differs in dim 1
  EXPECT_TRUE(net.is_edge(v, right));
}

TEST(HhcTopology, ExplicitGraphMatchesImplicitNeighbors) {
  const HhcTopology net{2};
  const auto g = net.explicit_graph();
  ASSERT_EQ(g.vertex_count(), net.node_count());
  // Every node has degree m+1, so the edge count is N*(m+1)/2.
  EXPECT_EQ(g.edge_count(), net.node_count() * net.degree() / 2);
  for (Node v = 0; v < net.node_count(); ++v) {
    EXPECT_EQ(g.degree(static_cast<graph::Vertex>(v)), net.degree());
    for (const Node u : net.neighbors(v)) {
      EXPECT_TRUE(g.has_edge(static_cast<graph::Vertex>(v),
                             static_cast<graph::Vertex>(u)));
    }
  }
}

TEST(HhcTopology, ClusterTranslationIsAutomorphism) {
  // (X, Y) -> (X ^ A, Y) preserves adjacency for every cluster offset A —
  // the symmetry exact_diameter() relies on.
  const HhcTopology net{2};
  for (const std::uint64_t a : {1ull, 0b0110ull, 0b1111ull}) {
    const auto translate = [&](Node v) {
      return net.encode(net.cluster_of(v) ^ a, net.position_of(v));
    };
    for (Node v = 0; v < net.node_count(); ++v) {
      for (const Node u : net.neighbors(v)) {
        EXPECT_TRUE(net.is_edge(translate(v), translate(u)))
            << "A=" << a << " edge " << v << "--" << u;
      }
    }
  }
}

TEST(HhcTopology, PositionTranslationIsNotAutomorphism) {
  // Shifting Y breaks the gateway assignment: find at least one edge that
  // does not survive (X, Y) -> (X, Y ^ 1).
  const HhcTopology net{2};
  bool broken = false;
  for (Node v = 0; v < net.node_count() && !broken; ++v) {
    const Node u = net.external_neighbor(v);
    const Node tv = net.encode(net.cluster_of(v), net.position_of(v) ^ 1);
    const Node tu = net.encode(net.cluster_of(u), net.position_of(u) ^ 1);
    broken = !net.is_edge(tv, tu);
  }
  EXPECT_TRUE(broken);
}

TEST(HhcTopology, ExplicitGraphRejectsLargeM) {
  const HhcTopology net{5};
  EXPECT_THROW((void)net.explicit_graph(), std::invalid_argument);
}

}  // namespace
}  // namespace hhc::core
