#include <gtest/gtest.h>

#include <array>

#include "graph/path_utils.hpp"

namespace hhc::graph {
namespace {

AdjacencyList square() {
  AdjacencyList g{4};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  return g;
}

TEST(PathUtils, ValidSimplePath) {
  const auto g = square();
  EXPECT_TRUE(validate_simple_path(g, {0, 1, 2}).ok);
  EXPECT_TRUE(validate_simple_path(g, {3}).ok);
}

TEST(PathUtils, RejectsEmptyPath) {
  const auto g = square();
  const auto r = validate_simple_path(g, {});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("empty"), std::string::npos);
}

TEST(PathUtils, RejectsNonEdge) {
  const auto g = square();
  EXPECT_FALSE(validate_simple_path(g, {0, 2}).ok);
}

TEST(PathUtils, RejectsRepeatedVertex) {
  const auto g = square();
  EXPECT_FALSE(validate_simple_path(g, {0, 1, 0}).ok);
}

TEST(PathUtils, RejectsOutOfRangeVertex) {
  const auto g = square();
  EXPECT_FALSE(validate_simple_path(g, {0, 9}).ok);
}

TEST(PathUtils, ValidatesEndpoints) {
  const auto g = square();
  EXPECT_TRUE(validate_path_between(g, {0, 1, 2}, 0, 2).ok);
  EXPECT_FALSE(validate_path_between(g, {0, 1, 2}, 1, 2).ok);
  EXPECT_FALSE(validate_path_between(g, {0, 1, 2}, 0, 3).ok);
}

TEST(PathUtils, InternallyDisjointAcceptsSharedEndpoints) {
  const auto g = square();
  const std::vector<VertexPath> paths{{0, 1, 2}, {0, 3, 2}};
  const std::array<Vertex, 2> shared{0, 2};
  EXPECT_TRUE(validate_internally_disjoint(g, paths, shared).ok);
}

TEST(PathUtils, InternallyDisjointDetectsOverlap) {
  const auto g = square();
  const std::vector<VertexPath> paths{{0, 1, 2}, {0, 1, 2}};
  const std::array<Vertex, 2> shared{0, 2};
  const auto r = validate_internally_disjoint(g, paths, shared);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("shared"), std::string::npos);
}

TEST(PathUtils, InternallyDisjointReportsBrokenMember) {
  const auto g = square();
  const std::vector<VertexPath> paths{{0, 2}};
  const std::array<Vertex, 1> shared{0};
  const auto r = validate_internally_disjoint(g, paths, shared);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("path 0"), std::string::npos);
}

TEST(PathUtils, CheckResultBoolConversion) {
  EXPECT_TRUE(static_cast<bool>(CheckResult::success()));
  EXPECT_FALSE(static_cast<bool>(CheckResult::failure("x")));
}

}  // namespace
}  // namespace hhc::graph
