#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>

#include "core/dispersal.hpp"

namespace hhc::core {
namespace {

std::vector<std::uint8_t> make_message(std::size_t n) {
  std::vector<std::uint8_t> msg(n);
  std::iota(msg.begin(), msg.end(), std::uint8_t{1});
  return msg;
}

TEST(Dispersal, ProducesMPlusOneFragments) {
  const HhcTopology net{3};
  const auto msg = make_message(100);
  const auto plan = disperse(net, net.encode(0, 0), net.encode(100, 5), msg);
  EXPECT_EQ(plan.fragments.size(), 4u);
  EXPECT_EQ(plan.message_size, 100u);
  EXPECT_EQ(plan.block_size, 34u);  // ceil(100 / 3)
}

TEST(Dispersal, FragmentsTravelDisjointPaths) {
  const HhcTopology net{2};
  const Node s = net.encode(1, 1);
  const Node t = net.encode(14, 2);
  const auto plan = disperse(net, s, t, make_message(64));
  std::string why;
  DisjointPathSet set;
  for (const auto& f : plan.fragments) set.paths.push_back(f.path);
  EXPECT_TRUE(verify_disjoint_path_set(net, set, s, t, &why)) << why;
}

TEST(Dispersal, ReassembleFromAllFragments) {
  const HhcTopology net{3};
  const auto msg = make_message(77);
  const auto plan = disperse(net, net.encode(2, 2), net.encode(50, 1), msg);
  const auto out =
      reassemble(net.m(), plan.block_size, plan.message_size, plan.fragments);
  EXPECT_EQ(out, msg);
}

TEST(Dispersal, ReassembleSurvivesAnySingleLoss) {
  const HhcTopology net{3};
  const auto msg = make_message(101);
  const auto plan = disperse(net, net.encode(9, 0), net.encode(77, 7), msg);
  for (std::size_t drop = 0; drop < plan.fragments.size(); ++drop) {
    std::vector<Fragment> received;
    for (std::size_t i = 0; i < plan.fragments.size(); ++i) {
      if (i != drop) received.push_back(plan.fragments[i]);
    }
    const auto out =
        reassemble(net.m(), plan.block_size, plan.message_size, received);
    EXPECT_EQ(out, msg) << "dropped fragment " << drop;
  }
}

TEST(Dispersal, FailsWithTwoLosses) {
  const HhcTopology net{2};
  const auto msg = make_message(40);
  const auto plan = disperse(net, net.encode(0, 0), net.encode(5, 1), msg);
  std::vector<Fragment> received{plan.fragments[0]};  // only 1 of 3
  EXPECT_THROW(
      (void)reassemble(net.m(), plan.block_size, plan.message_size, received),
      std::invalid_argument);
}

TEST(Dispersal, EmptyMessageRoundTrips) {
  const HhcTopology net{2};
  const auto plan = disperse(net, net.encode(0, 0), net.encode(3, 3), {});
  const auto out =
      reassemble(net.m(), plan.block_size, plan.message_size, plan.fragments);
  EXPECT_TRUE(out.empty());
}

TEST(Dispersal, MessageShorterThanM) {
  const HhcTopology net{3};  // m = 3 blocks, 2-byte message
  const auto msg = make_message(2);
  const auto plan = disperse(net, net.encode(1, 0), net.encode(2, 1), msg);
  const auto out =
      reassemble(net.m(), plan.block_size, plan.message_size, plan.fragments);
  EXPECT_EQ(out, msg);
}

TEST(Dispersal, ParityBlockIsXorOfDataBlocks) {
  const HhcTopology net{2};
  const auto msg = make_message(10);
  const auto plan = disperse(net, net.encode(0, 0), net.encode(9, 1), msg);
  ASSERT_EQ(plan.fragments.size(), 3u);
  for (std::size_t j = 0; j < plan.block_size; ++j) {
    const std::uint8_t expected = static_cast<std::uint8_t>(
        plan.fragments[0].block[j] ^ plan.fragments[1].block[j]);
    EXPECT_EQ(plan.fragments[2].block[j], expected);
  }
}

TEST(Dispersal, CompletionStepsIsMthSmallestLength) {
  const HhcTopology net{2};
  const auto plan =
      disperse(net, net.encode(0, 0), net.encode(15, 3), make_message(30));
  std::vector<std::size_t> lengths;
  for (const auto& f : plan.fragments) lengths.push_back(f.path.size() - 1);
  std::sort(lengths.begin(), lengths.end());
  EXPECT_EQ(plan.parallel_completion_steps(), lengths[lengths.size() - 2]);
}

TEST(Dispersal, ReassembleRejectsMalformedFragments) {
  const HhcTopology net{2};
  const auto plan =
      disperse(net, net.encode(0, 0), net.encode(7, 2), make_message(16));
  auto bad = plan.fragments;
  bad[0].index = 99;
  EXPECT_THROW((void)reassemble(net.m(), plan.block_size, plan.message_size, bad),
               std::invalid_argument);
  auto wrong_size = plan.fragments;
  wrong_size[1].block.pop_back();
  EXPECT_THROW((void)reassemble(net.m(), plan.block_size, plan.message_size,
                                wrong_size),
               std::invalid_argument);
}

}  // namespace
}  // namespace hhc::core
