#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hpp"

namespace hhc::util {
namespace {

TEST(Table, PrintsHeaderAndRows) {
  Table t{{"m", "nodes", "ratio"}};
  t.row().add(1).add(std::uint64_t{8}).add(0.5, 2);
  t.row().add(2).add(std::uint64_t{64}).add(1.25, 2);
  std::ostringstream os;
  t.print(os, "T1");
  const std::string out = os.str();
  EXPECT_NE(out.find("T1"), std::string::npos);
  EXPECT_NE(out.find("m"), std::string::npos);
  EXPECT_NE(out.find("nodes"), std::string::npos);
  EXPECT_NE(out.find("64"), std::string::npos);
  EXPECT_NE(out.find("1.25"), std::string::npos);
}

TEST(Table, CountsRows) {
  Table t{{"a"}};
  EXPECT_EQ(t.rows(), 0u);
  t.row().add("x");
  t.row().add("y");
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, AlignsColumns) {
  Table t{{"col", "v"}};
  t.row().add("short").add(1);
  t.row().add("a-much-longer-cell").add(2);
  std::ostringstream os;
  t.print(os);
  std::istringstream is{os.str()};
  std::string header;
  std::getline(is, header);
  std::string rule;
  std::getline(is, rule);
  std::string row1;
  std::getline(is, row1);
  std::string row2;
  std::getline(is, row2);
  // The numeric column must start at the same offset in both rows.
  EXPECT_EQ(row1.find('1'), row2.find('2'));
}

TEST(Table, DoublePrecisionControl) {
  Table t{{"v"}};
  t.row().add(3.14159, 1);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.1"), std::string::npos);
  EXPECT_EQ(os.str().find("3.14"), std::string::npos);
}

TEST(Table, EmptyTitleOmitted) {
  Table t{{"a"}};
  t.row().add("v");
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str().find("\n\n"), std::string::npos);
}

}  // namespace
}  // namespace hhc::util
