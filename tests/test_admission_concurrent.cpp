// Concurrent admission suite (PR 8) — TSan's view of the shed-fast path.
//
// The lock-free gate redesign moved admission decisions onto relaxed
// atomics and per-thread striped cells; these tests race every combination
// that matters — answers against sheds, epoch advances against breaker
// records, stats() folds against completion feedback — and then assert the
// EXACT accounting invariants once the writers quiesce:
//
//   * no leaked in-flight credits: in_flight() == 0 after every admitted
//     verdict has been released, across all policies, bounds, and the
//     half-open probe path;
//   * the outcome partition stays exact under concurrency;
//   * equal-sample EWMA folds converge to the sample exactly (the batch
//     fold's closed form is an identity for constant inputs).
//
// Runs under the CI TSan job (ctest -L stress).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/fault_model.hpp"
#include "core/topology.hpp"
#include "query/path_service.hpp"
#include "util/rng.hpp"

namespace hhc::query {
namespace {

using core::HhcTopology;
using util::Deadline;

// One seeded mixed run against a bare gate: every thread admits with its
// own RNG-driven think pattern and releases every slot it was granted.
// Returns the number of admitted (slot-holding) verdicts.
std::uint64_t hammer_gate(AdmissionGate& gate, std::size_t threads,
                          int rounds, std::uint64_t seed) {
  std::atomic<std::uint64_t> admitted{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng{seed + t};
      for (int i = 0; i < rounds; ++i) {
        const AdmissionVerdict verdict = gate.admit(Deadline{}, nullptr);
        if (verdict == AdmissionVerdict::kAdmitted ||
            verdict == AdmissionVerdict::kAdmittedDegraded) {
          admitted.fetch_add(1, std::memory_order_relaxed);
          if (rng.chance(0.5)) {
            gate.record_latency(static_cast<double>(1 + rng.below(200)));
          }
          gate.release();
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  return admitted.load();
}

TEST(AdmissionConcurrent, NoLeakedCreditsAcrossPoliciesAndBounds) {
  for (const AdmissionPolicy policy :
       {AdmissionPolicy::kReject, AdmissionPolicy::kDegrade}) {
    for (const std::size_t bound : {std::size_t{1}, std::size_t{4}}) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        AdmissionConfig config;
        config.policy = policy;
        config.max_in_flight = bound;
        AdmissionGate gate{config};
        const std::uint64_t admitted = hammer_gate(gate, 8, 500, seed);
        EXPECT_GT(admitted, 0u);
        EXPECT_EQ(gate.in_flight(), 0u)
            << "leaked credits: policy=" << to_string(policy)
            << " bound=" << bound << " seed=" << seed;
      }
    }
  }
}

TEST(AdmissionConcurrent, NoLeakedCreditsOnTheProbePath) {
  // An overloaded shed_on_overload gate sheds without shared writes but
  // admits every probe_interval-th decision, CLAIMING a slot — the probe
  // path must balance its credits exactly like a normal admission.
  AdmissionConfig config;
  config.max_in_flight = 2;
  config.policy = AdmissionPolicy::kReject;
  config.ewma_alpha = 1.0;
  config.overload_latency_us = 10.0;
  config.shed_on_overload = true;
  config.probe_interval = 8;
  AdmissionGate gate{config};
  gate.record_latency(1000.0);
  ASSERT_TRUE(gate.overloaded());

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        const AdmissionVerdict verdict = gate.admit(Deadline{}, nullptr);
        if (verdict == AdmissionVerdict::kAdmitted ||
            verdict == AdmissionVerdict::kAdmittedDegraded) {
          // Keep the gate overloaded: probes report slow completions.
          gate.record_latency(1000.0);
          gate.release();
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(gate.in_flight(), 0u);
  EXPECT_TRUE(gate.overloaded());  // 1000 us probes kept it shut
}

TEST(AdmissionConcurrent, ConcurrentEqualSamplesFoldToTheSampleExactly) {
  // Every completion reports exactly 100 us. The decision-epoch batch fold
  // applies ewma' = u + (ewma - u)(1-a)^n, which is an identity at u = 100
  // once seeded — so ANY interleaving of folds must read back exactly 100.
  AdmissionConfig config;
  config.ewma_alpha = 0.25;
  config.overload_latency_us = 500.0;  // armed: folds race on real traffic
  AdmissionGate gate{config};

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) gate.record_latency(100.0);
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_DOUBLE_EQ(gate.ewma_latency_us(), 100.0);
  EXPECT_FALSE(gate.overloaded());
}

TEST(AdmissionConcurrent, BreakerRacesRecordShortCircuitAndEpochAdvance) {
  CircuitBreaker breaker{2};
  std::atomic<bool> stop{false};
  std::thread advancer{[&] {
    while (!stop.load(std::memory_order_relaxed)) {
      breaker.advance_fault_epoch();
      std::this_thread::yield();
    }
  }};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 6; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng{100 + t};
      for (int i = 0; i < 3000; ++i) {
        const core::Node s = t % 3;
        breaker.record(s, s + 1, rng.chance(0.7));
        (void)breaker.should_short_circuit(s, s + 1);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  stop.store(true, std::memory_order_relaxed);
  advancer.join();
  // Liveness/sanity under the wait-free advance: the epoch moved, and a
  // fresh epoch leaves every pair un-short-circuited.
  EXPECT_GT(breaker.fault_epoch(), 0u);
  breaker.advance_fault_epoch();
  for (core::Node s = 0; s < 3; ++s) {
    EXPECT_FALSE(breaker.should_short_circuit(s, s + 1));
  }
}

TEST(AdmissionConcurrent, ServicePartitionStaysExactUnderRacingTraffic) {
  const HhcTopology net{1};
  PathServiceConfig config;
  config.threads = 1;  // answers come from OUR racing threads, not a pool
  config.admission.max_in_flight = 4;
  config.admission.policy = AdmissionPolicy::kReject;
  config.admission.breaker_threshold = 2;
  config.admission.ewma_alpha = 0.5;
  config.admission.overload_latency_us = 50.0;
  config.admission.shed_on_overload = true;
  config.admission.probe_interval = 4;
  PathService service{net, config};

  core::FaultModel faults;
  faults.fail_node(net.node_count() - 1);

  constexpr std::size_t kThreads = 8;
  constexpr int kRounds = 400;
  std::atomic<std::uint64_t> sent{0};
  std::atomic<bool> stop{false};

  std::thread chaos{[&] {
    // Epoch advances and stats() folds racing the answer threads: the
    // fold-side mutexes and striped cells must tolerate mid-flight reads.
    while (!stop.load(std::memory_order_relaxed)) {
      service.advance_fault_epoch();
      const ServiceStats mid = service.stats();
      EXPECT_LE(mid.pristine + mid.fault_aware,
                sent.load(std::memory_order_relaxed) + kThreads);
      std::this_thread::yield();
    }
  }};

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng{42 + t};
      for (int i = 0; i < kRounds; ++i) {
        PairQuery query;
        query.s = rng.below(net.node_count());
        query.t = rng.below(net.node_count());
        if (rng.chance(0.3)) query.faults = &faults;
        if (i % 16 == 15) {
          query.deadline = util::Deadline::after_micros(0.0);  // pre-expired
        }
        sent.fetch_add(1, std::memory_order_relaxed);
        (void)service.answer(query);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  stop.store(true, std::memory_order_relaxed);
  chaos.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, kThreads * kRounds);
  EXPECT_EQ(stats.pristine + stats.fault_aware, stats.queries);
  EXPECT_EQ(stats.guaranteed + stats.best_effort + stats.disconnected +
                stats.shed + stats.timed_out + stats.invalid,
            stats.queries);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_GE(stats.timed_out, kThreads * (kRounds / 16));  // the pre-expired
}

}  // namespace
}  // namespace hhc::query
