#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.hpp"

namespace hhc::util {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Xoshiro256 a{42};
  Xoshiro256 b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a{1};
  Xoshiro256 b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng{7};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    EXPECT_LT(rng.below(1), 1u);
    EXPECT_LT(rng.below(1ull << 40), 1ull << 40);
  }
}

TEST(Rng, BelowPowerOfTwoFastPath) {
  Xoshiro256 rng{9};
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(64), 64u);
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values should appear
}

TEST(Rng, Uniform01Bounds) {
  Xoshiro256 rng{13};
  double sum = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kTrials, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability) {
  Xoshiro256 rng{17};
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.25, 0.02);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Xoshiro256 rng{19};
  constexpr std::uint64_t kBuckets = 10;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kTrials / 10.0, kTrials * 0.01);
  }
}

TEST(SplitMix, KnownSequenceIsStable) {
  SplitMix64 sm{0};
  const auto first = sm.next();
  SplitMix64 sm2{0};
  EXPECT_EQ(sm2.next(), first);
  EXPECT_NE(sm.next(), first);
}

}  // namespace
}  // namespace hhc::util
