#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.hpp"

namespace hhc::util {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Xoshiro256 a{42};
  Xoshiro256 b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a{1};
  Xoshiro256 b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng{7};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    EXPECT_LT(rng.below(1), 1u);
    EXPECT_LT(rng.below(1ull << 40), 1ull << 40);
  }
}

TEST(Rng, BelowPowerOfTwoFastPath) {
  Xoshiro256 rng{9};
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(64), 64u);
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values should appear
}

TEST(Rng, Uniform01Bounds) {
  Xoshiro256 rng{13};
  double sum = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kTrials, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability) {
  Xoshiro256 rng{17};
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.25, 0.02);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Xoshiro256 rng{19};
  constexpr std::uint64_t kBuckets = 10;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kTrials / 10.0, kTrials * 0.01);
  }
}

TEST(SplitMix, KnownSequenceIsStable) {
  SplitMix64 sm{0};
  const auto first = sm.next();
  SplitMix64 sm2{0};
  EXPECT_EQ(sm2.next(), first);
  EXPECT_NE(sm.next(), first);
}

TEST(Zipfian, StaysInRangeAndIsDeterministic) {
  const ZipfianSampler zipf{10, 1.0};
  EXPECT_EQ(zipf.size(), 10u);
  Xoshiro256 a{23};
  Xoshiro256 b{23};
  for (int i = 0; i < 5000; ++i) {
    const auto r = zipf(a);
    EXPECT_LT(r, 10u);
    EXPECT_EQ(r, zipf(b));
  }
}

TEST(Zipfian, ZeroSkewIsUniform) {
  const ZipfianSampler zipf{8, 0.0};
  Xoshiro256 rng{29};
  std::vector<int> counts(8, 0);
  constexpr int kTrials = 80000;
  for (int i = 0; i < kTrials; ++i) ++counts[zipf(rng)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kTrials / 8.0, kTrials * 0.01);
  }
}

TEST(Zipfian, SkewConcentratesMassOnTheHead) {
  // With skew 1 over n = 100, rank 0 carries 1/H(100) ~ 19% of the mass and
  // the head ranks dominate; check monotone-ish head frequencies and that
  // the top 10 ranks carry well over half the draws.
  const ZipfianSampler zipf{100, 1.0};
  Xoshiro256 rng{31};
  std::vector<int> counts(100, 0);
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[0], kTrials / 8);
  int head = 0;
  for (std::size_t i = 0; i < 10; ++i) head += counts[i];
  EXPECT_GT(head, kTrials / 2);
}

TEST(Zipfian, HigherSkewMeansHotterHead) {
  Xoshiro256 mild_rng{37};
  Xoshiro256 hot_rng{37};
  const ZipfianSampler mild{50, 0.5};
  const ZipfianSampler hot{50, 1.5};
  int mild_zero = 0;
  int hot_zero = 0;
  for (int i = 0; i < 30000; ++i) {
    if (mild(mild_rng) == 0) ++mild_zero;
    if (hot(hot_rng) == 0) ++hot_zero;
  }
  EXPECT_GT(hot_zero, mild_zero);
}

TEST(Zipfian, SingleElementAlwaysDrawsRankZero) {
  const ZipfianSampler zipf{1, 2.0};
  Xoshiro256 rng{41};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf(rng), 0u);
}

}  // namespace
}  // namespace hhc::util
