#include <gtest/gtest.h>

#include <array>
#include <set>

#include "cube/hypercube.hpp"
#include "graph/path_utils.hpp"
#include "graph/vertex_disjoint.hpp"

namespace hhc::graph {
namespace {

// K4: every pair of distinct vertices has connectivity 3.
AdjacencyList complete4() {
  AdjacencyList g{4};
  for (Vertex u = 0; u < 4; ++u) {
    for (Vertex v = u + 1; v < 4; ++v) g.add_edge(u, v);
  }
  return g;
}

TEST(VertexDisjoint, CompleteGraphConnectivity) {
  const auto g = complete4();
  EXPECT_EQ(vertex_connectivity_between(g, 0, 3), 3u);
}

TEST(VertexDisjoint, PathsAreValidAndDisjoint) {
  const auto g = complete4();
  const auto paths = max_vertex_disjoint_paths(g, 0, 3);
  ASSERT_EQ(paths.size(), 3u);
  for (const auto& p : paths) {
    EXPECT_TRUE(validate_path_between(g, p, 0, 3).ok);
  }
  const std::array<Vertex, 2> shared{0, 3};
  EXPECT_TRUE(validate_internally_disjoint(g, paths, shared).ok);
}

TEST(VertexDisjoint, LimitCapsPathCount) {
  const auto g = complete4();
  const auto paths = max_vertex_disjoint_paths(g, 0, 3, 2);
  EXPECT_EQ(paths.size(), 2u);
}

TEST(VertexDisjoint, BridgeGraphHasSinglePath) {
  // Two triangles joined by a cut vertex: connectivity 1 through vertex 2.
  AdjacencyList g{5};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  EXPECT_EQ(vertex_connectivity_between(g, 0, 4), 1u);
  const auto paths = max_vertex_disjoint_paths(g, 0, 4);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(validate_path_between(g, paths[0], 0, 4).ok);
}

TEST(VertexDisjoint, AdjacentVerticesCountTheDirectEdge) {
  const auto g = complete4();
  const auto paths = max_vertex_disjoint_paths(g, 0, 1);
  EXPECT_EQ(paths.size(), 3u);
  bool has_direct = false;
  for (const auto& p : paths) has_direct |= (p.size() == 2);
  EXPECT_TRUE(has_direct);
}

TEST(VertexDisjoint, HypercubeConnectivityEqualsDimension) {
  for (unsigned n = 2; n <= 5; ++n) {
    const auto g = cube::Hypercube{n}.explicit_graph();
    EXPECT_EQ(vertex_connectivity_between(g, 0, (1u << n) - 1), n);
    EXPECT_EQ(vertex_connectivity_between(g, 0, 1), n);
  }
}

TEST(VertexDisjoint, FanReachesEachTargetExactly) {
  const auto g = cube::Hypercube{3}.explicit_graph();
  const std::vector<Vertex> targets{0b001, 0b010, 0b111};
  const auto fans = vertex_disjoint_fan(g, 0b000, targets);
  ASSERT_EQ(fans.size(), targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_TRUE(validate_path_between(g, fans[i], 0b000, targets[i]).ok);
    // No fan path may pass through another target.
    for (std::size_t j = 0; j + 1 < fans[i].size(); ++j) {
      for (const Vertex other : targets) {
        if (other != targets[i]) {
          EXPECT_NE(fans[i][j + 1], other);
        }
      }
    }
  }
  const std::array<Vertex, 1> shared{0b000};
  EXPECT_TRUE(validate_internally_disjoint(g, fans, shared).ok);
}

TEST(VertexDisjoint, FanWithMaximumTargets) {
  // Q_4 from a corner to 4 arbitrary targets: a full fan must exist.
  const auto g = cube::Hypercube{4}.explicit_graph();
  const std::vector<Vertex> targets{1, 2, 4, 8};
  const auto fans = vertex_disjoint_fan(g, 0, targets);
  const std::array<Vertex, 1> shared{0};
  EXPECT_TRUE(validate_internally_disjoint(g, fans, shared).ok);
}

TEST(VertexDisjoint, FanEmptyTargets) {
  const auto g = complete4();
  EXPECT_TRUE(vertex_disjoint_fan(g, 0, {}).empty());
}

TEST(VertexDisjoint, FanRejectsBadTargets) {
  const auto g = complete4();
  const std::vector<Vertex> self{0};
  EXPECT_THROW((void)vertex_disjoint_fan(g, 0, self), std::invalid_argument);
  const std::vector<Vertex> dup{1, 1};
  EXPECT_THROW((void)vertex_disjoint_fan(g, 0, dup), std::invalid_argument);
}

TEST(VertexDisjoint, FanThrowsWhenNoCompleteFan) {
  // Star graph: center 0, leaves 1..3; from leaf 1 only one path exists.
  AdjacencyList g{4};
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  const std::vector<Vertex> targets{2, 3};
  EXPECT_THROW((void)vertex_disjoint_fan(g, 1, targets), std::runtime_error);
}

TEST(VertexDisjoint, ReverseFanStartsAtSources) {
  const auto g = cube::Hypercube{3}.explicit_graph();
  const std::vector<Vertex> sources{0b001, 0b100};
  const auto fans = vertex_disjoint_reverse_fan(g, sources, 0b111);
  ASSERT_EQ(fans.size(), 2u);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_TRUE(validate_path_between(g, fans[i], sources[i], 0b111).ok);
  }
  const std::array<Vertex, 1> shared{0b111};
  EXPECT_TRUE(validate_internally_disjoint(g, fans, shared).ok);
}

TEST(SetToSet, ClusterToClusterInHhcStyleCube) {
  // Q_4: sources = one face, sinks = the opposite face; a perfect matching
  // of 8 totally disjoint paths exists (dimension-0 edges).
  const auto g = cube::Hypercube{4}.explicit_graph();
  std::vector<Vertex> sources;
  std::vector<Vertex> sinks;
  for (Vertex v = 0; v < 16; ++v) {
    ((v & 1) == 0 ? sources : sinks).push_back(v);
  }
  const auto paths = set_to_set_disjoint_paths(g, sources, sinks);
  EXPECT_EQ(paths.size(), 8u);
  std::set<Vertex> used;
  for (const auto& p : paths) {
    ASSERT_FALSE(p.empty());
    EXPECT_TRUE((p.front() & 1) == 0);
    EXPECT_TRUE((p.back() & 1) == 1);
    EXPECT_TRUE(validate_simple_path(g, p).ok);
    for (const Vertex v : p) {
      EXPECT_TRUE(used.insert(v).second) << "vertex " << v << " reused";
    }
  }
}

TEST(SetToSet, BottleneckLimitsPathCount) {
  // Two triangles joined by one bridge: at most one totally disjoint path
  // between the triangles regardless of set sizes.
  AdjacencyList g{6};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  const std::vector<Vertex> sources{0, 1};
  const std::vector<Vertex> sinks{4, 5};
  const auto paths = set_to_set_disjoint_paths(g, sources, sinks);
  EXPECT_EQ(paths.size(), 1u);
}

TEST(SetToSet, SharedVertexYieldsTrivialPath) {
  const auto g = complete4();
  const std::vector<Vertex> sources{0, 1};
  const std::vector<Vertex> sinks{1, 2};
  const auto paths = set_to_set_disjoint_paths(g, sources, sinks);
  EXPECT_EQ(paths.size(), 2u);
  bool has_trivial = false;
  for (const auto& p : paths) has_trivial |= (p.size() == 1 && p[0] == 1);
  EXPECT_TRUE(has_trivial);
}

TEST(SetToSet, EmptySetsAndBadInput) {
  const auto g = complete4();
  EXPECT_TRUE(set_to_set_disjoint_paths(g, {}, {}).empty());
  const std::vector<Vertex> dup{1, 1};
  const std::vector<Vertex> ok{2};
  EXPECT_THROW((void)set_to_set_disjoint_paths(g, dup, ok),
               std::invalid_argument);
  const std::vector<Vertex> oob{9};
  EXPECT_THROW((void)set_to_set_disjoint_paths(g, ok, oob),
               std::invalid_argument);
}

TEST(VertexDisjoint, RejectsDegenerateEndpoints) {
  const auto g = complete4();
  EXPECT_THROW((void)max_vertex_disjoint_paths(g, 2, 2),
               std::invalid_argument);
  EXPECT_THROW((void)max_vertex_disjoint_paths(g, 0, 9),
               std::invalid_argument);
}

}  // namespace
}  // namespace hhc::graph
