#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/deadline.hpp"

namespace hhc::util {
namespace {

TEST(Deadline, DefaultIsUnarmedAndNeverExpires) {
  const Deadline none;
  EXPECT_FALSE(none.armed());
  EXPECT_FALSE(none.expired());
  EXPECT_EQ(none.remaining_micros(),
            std::numeric_limits<double>::infinity());
}

TEST(Deadline, ZeroBudgetIsAlreadyExpired) {
  const Deadline now = Deadline::after_micros(0.0);
  EXPECT_TRUE(now.armed());
  EXPECT_TRUE(now.expired());
}

TEST(Deadline, FutureDeadlineHasPositiveBudget) {
  const Deadline later = Deadline::after_micros(60e6);  // a minute out
  EXPECT_TRUE(later.armed());
  EXPECT_FALSE(later.expired());
  EXPECT_GT(later.remaining_micros(), 0.0);
}

TEST(Deadline, RemainingGoesNegativePastExpiry) {
  const Deadline past = Deadline::after_micros(0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds{1});
  EXPECT_LT(past.remaining_micros(), 0.0);
}

TEST(Deadline, CopyPreservesTheInstant) {
  const Deadline original = Deadline::after_micros(60e6);
  const Deadline copy = original;
  EXPECT_EQ(copy.instant(), original.instant());
  EXPECT_TRUE(copy.armed());
}

TEST(CancellationToken, StartsClearTripsSticky) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(ShouldStop, CombinesDeadlineAndToken) {
  const Deadline none;
  const Deadline expired = Deadline::after_micros(0.0);
  CancellationToken token;

  EXPECT_FALSE(should_stop(none, nullptr));
  EXPECT_FALSE(should_stop(none, &token));
  EXPECT_TRUE(should_stop(expired, nullptr));

  token.cancel();
  EXPECT_TRUE(should_stop(none, &token));    // token alone suffices
  EXPECT_TRUE(should_stop(expired, &token)); // both is still stop
}

TEST(ShouldStop, NullTokenMeansNeverCancelled) {
  EXPECT_FALSE(should_stop(Deadline{}, nullptr));
}

}  // namespace
}  // namespace hhc::util
