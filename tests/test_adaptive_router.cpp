#include <gtest/gtest.h>

#include "core/disjoint.hpp"
#include "core/metrics.hpp"
#include "core/routing.hpp"
#include "fault/adaptive_router.hpp"
#include "graph/adjacency_list.hpp"
#include "graph/bfs.hpp"

namespace hhc::fault {
namespace {

using core::FaultModel;
using core::HhcTopology;
using core::Node;
using core::Path;

// Independent reachability oracle: explicit survivor subgraph + graph BFS.
bool reachable_in_survivor(const HhcTopology& net, Node s, Node t,
                           const FaultModel& faults, std::uint64_t time = 0) {
  graph::AdjacencyList g{net.node_count()};
  for (Node v = 0; v < net.node_count(); ++v) {
    for (const Node u : net.neighbors(v)) {
      if (u > v && faults.edge_usable_at(v, u, time)) {
        g.add_edge(static_cast<graph::Vertex>(v),
                   static_cast<graph::Vertex>(u));
      }
    }
  }
  return !graph::bfs_shortest_path(g, static_cast<graph::Vertex>(s),
                                   static_cast<graph::Vertex>(t))
              .empty();
}

bool path_avoids_faults(const Path& path, const FaultModel& faults,
                        std::uint64_t time = 0) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!faults.edge_usable_at(path[i], path[i + 1], time)) return false;
  }
  return true;
}

TEST(AdaptiveRouter, FaultFreeIsGuaranteed) {
  const HhcTopology net{2};
  const AdaptiveRouter router{net};
  for (const auto& [s, t] : core::sample_pairs(net, 60, 3)) {
    const auto r = router.route(s, t, FaultModel{});
    EXPECT_EQ(r.level, DegradationLevel::kGuaranteed);
    EXPECT_FALSE(r.used_fallback);
    EXPECT_EQ(r.container_paths_blocked, 0u);
    EXPECT_TRUE(core::is_valid_path(net, r.primary(), s, t));
  }
}

TEST(AdaptiveRouter, UnderMNodeFaultsStaysGuaranteed) {
  for (unsigned m = 1; m <= 3; ++m) {
    const HhcTopology net{m};
    const AdaptiveRouter router{net};
    util::Xoshiro256 rng{101 + m};
    for (const auto& [s, t] : core::sample_pairs(net, 120, m)) {
      FaultModel::RandomSpec spec;
      spec.node_faults = m;
      const auto faults = FaultModel::random(net, spec, s, t, rng);
      const auto r = router.route(s, t, faults);
      ASSERT_EQ(r.level, DegradationLevel::kGuaranteed)
          << "m=" << m << " s=" << s << " t=" << t;
      EXPECT_TRUE(core::is_valid_path(net, r.primary(), s, t));
      EXPECT_TRUE(path_avoids_faults(r.primary(), faults));
    }
  }
}

TEST(AdaptiveRouter, FallsBackWhenAllContainerPathsBlocked) {
  // Block one interior node on every container path: route_avoiding would
  // return empty here, but the survivor subgraph is still well connected.
  const HhcTopology net{2};
  const AdaptiveRouter router{net};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(13, 2);
  const auto container = core::node_disjoint_paths(net, s, t);
  FaultModel faults;
  for (const auto& path : container.paths) {
    faults.fail_node(path[path.size() / 2]);
  }
  const auto r = router.route(s, t, faults);
  ASSERT_EQ(r.level, DegradationLevel::kBestEffort);
  EXPECT_TRUE(r.used_fallback);
  EXPECT_EQ(r.container_paths_blocked, container.paths.size());
  EXPECT_TRUE(core::is_valid_path(net, r.primary(), s, t));
  EXPECT_TRUE(path_avoids_faults(r.primary(), faults));
}

TEST(AdaptiveRouter, LinkFaultsAloneCanForceFallback) {
  // One dead link per container path defeats the node-disjoint guarantee
  // without a single node fault — exactly the regime the container's
  // argument does not cover and the fallback exists for.
  const HhcTopology net{2};
  const AdaptiveRouter router{net};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(13, 2);
  const auto container = core::node_disjoint_paths(net, s, t);
  FaultModel faults;
  for (const auto& path : container.paths) {
    const std::size_t cut = path.size() / 2;
    faults.fail_link(path[cut], path[cut + 1]);
  }
  EXPECT_EQ(faults.node_fault_count(), 0u);
  const auto r = router.route(s, t, faults);
  ASSERT_EQ(r.level, DegradationLevel::kBestEffort);
  EXPECT_TRUE(core::is_valid_path(net, r.primary(), s, t));
  EXPECT_TRUE(path_avoids_faults(r.primary(), faults));
}

TEST(AdaptiveRouter, ReportsDisconnectionInsteadOfSilentEmpty) {
  const HhcTopology net{1};
  const AdaptiveRouter router{net};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(3, 1);
  FaultModel faults;
  for (const Node v : net.neighbors(t)) faults.fail_node(v);
  const auto r = router.route(s, t, faults);
  EXPECT_EQ(r.level, DegradationLevel::kDisconnected);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.used_fallback);
  EXPECT_FALSE(reachable_in_survivor(net, s, t, faults));
}

TEST(AdaptiveRouter, FaultyEndpointIsDisconnectedNotAnError) {
  const HhcTopology net{2};
  const AdaptiveRouter router{net};
  FaultModel faults;
  faults.fail_node(0);
  EXPECT_EQ(router.route(0, 5, faults).level,
            DegradationLevel::kDisconnected);
  EXPECT_EQ(router.route(5, 0, faults).level,
            DegradationLevel::kDisconnected);
}

TEST(AdaptiveRouter, TrivialSelfRouteIsGuaranteed) {
  const HhcTopology net{2};
  const AdaptiveRouter router{net};
  const auto r = router.route(9, 9, FaultModel{});
  EXPECT_EQ(r.level, DegradationLevel::kGuaranteed);
  EXPECT_EQ(r.primary(), Path{9});
}

TEST(AdaptiveRouter, TransientFaultOnlyBlocksDuringItsWindow) {
  const HhcTopology net{2};
  const AdaptiveRouter router{net};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(13, 2);
  const auto container = core::node_disjoint_paths(net, s, t);
  FaultModel faults;
  faults.fail_node(container.paths[0][1], /*fail_time=*/5, /*repair_time=*/10);
  EXPECT_EQ(router.route(s, t, faults, 0).container_paths_blocked, 0u);
  EXPECT_EQ(router.route(s, t, faults, 7).container_paths_blocked, 1u);
  EXPECT_EQ(router.route(s, t, faults, 10).container_paths_blocked, 0u);
}

TEST(AdaptiveRouter, MatchesBfsReachabilityUnderRandomMixedFaults) {
  // The acceptance property: whenever the survivor subgraph connects s and
  // t the router must return a path (guaranteed or best-effort), and when
  // it does not, the router must report disconnection — never a silent
  // empty result while a path exists.
  util::Xoshiro256 rng{2024};
  std::size_t fallbacks = 0;
  std::size_t disconnections = 0;
  for (unsigned m = 1; m <= 2; ++m) {
    // m = 1 (8 nodes, degree 2) disconnects easily; m = 2 mostly survives
    // and exercises the fallback instead.
    const HhcTopology net{m};
    const AdaptiveRouter router{net};
    for (int trial = 0; trial < 300; ++trial) {
      const Node s = rng.below(net.node_count());
      Node t = rng.below(net.node_count());
      while (t == s) t = rng.below(net.node_count());
      FaultModel::RandomSpec spec;
      spec.node_faults = rng.below(net.m() + 2);
      spec.internal_link_faults = rng.below(net.m() + 2);
      spec.external_link_faults = rng.below(net.m() + 2);
      const auto faults = FaultModel::random(net, spec, s, t, rng);
      const auto r = router.route(s, t, faults);
      ASSERT_EQ(r.ok(), reachable_in_survivor(net, s, t, faults))
          << "m=" << m << " trial " << trial;
      if (r.ok()) {
        EXPECT_TRUE(core::is_valid_path(net, r.primary(), s, t));
        EXPECT_TRUE(path_avoids_faults(r.primary(), faults));
      } else {
        EXPECT_EQ(r.level, DegradationLevel::kDisconnected);
      }
      if (r.used_fallback && r.ok()) ++fallbacks;
      if (!r.ok()) ++disconnections;
    }
  }
  // The sweep must actually exercise both degraded regimes.
  EXPECT_GT(fallbacks, 0u);
  EXPECT_GT(disconnections, 0u);
}

TEST(AdaptiveRouter, DegradationLevelNames) {
  EXPECT_STREQ(to_string(DegradationLevel::kGuaranteed), "guaranteed");
  EXPECT_STREQ(to_string(DegradationLevel::kBestEffort), "best-effort");
  EXPECT_STREQ(to_string(DegradationLevel::kDisconnected), "disconnected");
}

TEST(AdaptiveRouter, SharedCacheChangesNothingButCounts) {
  // Wiring a ContainerCache in must be invisible in the answers — only the
  // cost profile changes (second identical query is a hit).
  const HhcTopology net{2};
  const AdaptiveRouter direct{net};
  core::ContainerCache cache{net};
  const AdaptiveRouter cached{net, &cache};
  util::Xoshiro256 rng{77};
  for (const auto& [s, t] : core::sample_pairs(net, 80, 9)) {
    FaultModel::RandomSpec spec;
    spec.node_faults = rng.below(net.m() + 2);
    spec.internal_link_faults = rng.below(2);
    const auto faults = FaultModel::random(net, spec, s, t, rng);
    const auto a = direct.route(s, t, faults);
    const auto b = cached.route(s, t, faults);
    ASSERT_EQ(a.level, b.level);
    EXPECT_EQ(a.paths, b.paths);
    EXPECT_EQ(a.container_paths_blocked, b.container_paths_blocked);
    EXPECT_EQ(a.used_fallback, b.used_fallback);
  }
  EXPECT_GT(cache.misses(), 0u);
}

TEST(AdaptiveRouter, PairQueryFormMatchesConvenienceForm) {
  const HhcTopology net{2};
  const AdaptiveRouter router{net};
  FaultModel faults;
  faults.fail_node(7);
  const auto a = router.route(3, 60, faults, /*time=*/2);
  const auto b = router.route(query::PairQuery{
      .s = 3, .t = 60, .faults = &faults, .time = 2});
  EXPECT_EQ(a.paths, b.paths);
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.container_paths_blocked, b.container_paths_blocked);
}

}  // namespace
}  // namespace hhc::fault
