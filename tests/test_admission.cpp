#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "query/admission.hpp"
#include "util/deadline.hpp"

namespace hhc::query {
namespace {

using util::CancellationToken;
using util::Deadline;

TEST(AdmissionGate, DefaultConfigAdmitsEverything) {
  AdmissionGate gate{AdmissionConfig{}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gate.admit(Deadline{}, nullptr), AdmissionVerdict::kAdmitted);
  }
  // No release() calls needed: the unlimited gate never claimed a slot.
  EXPECT_FALSE(gate.overloaded());
}

TEST(AdmissionGate, RejectPolicyShedsBeyondTheBound) {
  AdmissionConfig config;
  config.max_in_flight = 2;
  config.policy = AdmissionPolicy::kReject;
  AdmissionGate gate{config};

  EXPECT_EQ(gate.admit(Deadline{}, nullptr), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(gate.admit(Deadline{}, nullptr), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(gate.admit(Deadline{}, nullptr), AdmissionVerdict::kShed);
  EXPECT_EQ(gate.in_flight(), 2u);

  gate.release();
  EXPECT_EQ(gate.admit(Deadline{}, nullptr), AdmissionVerdict::kAdmitted);
  gate.release();
  gate.release();
  EXPECT_EQ(gate.in_flight(), 0u);
}

TEST(AdmissionGate, DegradePolicyAdmitsDegradedBeyondTheBound) {
  AdmissionConfig config;
  config.max_in_flight = 1;
  config.policy = AdmissionPolicy::kDegrade;
  AdmissionGate gate{config};

  EXPECT_EQ(gate.admit(Deadline{}, nullptr), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(gate.admit(Deadline{}, nullptr),
            AdmissionVerdict::kAdmittedDegraded);
  EXPECT_EQ(gate.in_flight(), 2u);  // degraded admissions still hold slots
  gate.release();
  gate.release();
}

TEST(AdmissionGate, QueuePolicyTimesOutOnExpiredDeadline) {
  AdmissionConfig config;
  config.max_in_flight = 1;
  config.policy = AdmissionPolicy::kQueue;
  AdmissionGate gate{config};

  ASSERT_EQ(gate.admit(Deadline{}, nullptr), AdmissionVerdict::kAdmitted);
  // The slot is taken and the deadline has already passed: the queued
  // admit must give up rather than wait forever.
  EXPECT_EQ(gate.admit(Deadline::after_micros(0.0), nullptr),
            AdmissionVerdict::kTimedOut);
  gate.release();
}

TEST(AdmissionGate, QueuePolicyHonorsCancellation) {
  AdmissionConfig config;
  config.max_in_flight = 1;
  config.policy = AdmissionPolicy::kQueue;
  AdmissionGate gate{config};
  ASSERT_EQ(gate.admit(Deadline{}, nullptr), AdmissionVerdict::kAdmitted);

  CancellationToken token;
  token.cancel();
  EXPECT_EQ(gate.admit(Deadline{}, &token), AdmissionVerdict::kTimedOut);
  gate.release();
}

TEST(AdmissionGate, QueuePolicyGetsTheSlotWhenReleased) {
  AdmissionConfig config;
  config.max_in_flight = 1;
  config.policy = AdmissionPolicy::kQueue;
  AdmissionGate gate{config};
  ASSERT_EQ(gate.admit(Deadline{}, nullptr), AdmissionVerdict::kAdmitted);

  std::atomic<bool> admitted{false};
  std::thread waiter{[&] {
    // Unarmed deadline: waits however long the release takes.
    const AdmissionVerdict verdict = gate.admit(Deadline{}, nullptr);
    EXPECT_EQ(verdict, AdmissionVerdict::kAdmitted);
    admitted.store(true);
    gate.release();
  }};
  gate.release();  // frees the slot; the waiter must take it
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(gate.in_flight(), 0u);
}

TEST(AdmissionGate, EwmaTracksLatencyAndFlagsOverload) {
  AdmissionConfig config;
  config.ewma_alpha = 1.0;  // EWMA == last sample, exact assertions
  config.overload_latency_us = 100.0;
  AdmissionGate gate{config};

  EXPECT_FALSE(gate.overloaded());
  gate.record_latency(50.0);
  EXPECT_DOUBLE_EQ(gate.ewma_latency_us(), 50.0);
  EXPECT_FALSE(gate.overloaded());

  gate.record_latency(500.0);
  EXPECT_DOUBLE_EQ(gate.ewma_latency_us(), 500.0);
  EXPECT_TRUE(gate.overloaded());

  // Overload degrades admission even though no in-flight bound is set.
  EXPECT_EQ(gate.admit(Deadline{}, nullptr),
            AdmissionVerdict::kAdmittedDegraded);

  gate.record_latency(1.0);
  EXPECT_FALSE(gate.overloaded());
  EXPECT_EQ(gate.admit(Deadline{}, nullptr), AdmissionVerdict::kAdmitted);
}

TEST(AdmissionGate, EwmaSmoothingFollowsAlpha) {
  AdmissionConfig config;
  config.ewma_alpha = 0.5;
  AdmissionGate gate{config};
  gate.record_latency(100.0);  // first sample seeds the average
  gate.record_latency(200.0);
  EXPECT_DOUBLE_EQ(gate.ewma_latency_us(), 150.0);
  gate.record_latency(50.0);
  EXPECT_DOUBLE_EQ(gate.ewma_latency_us(), 100.0);
}

TEST(AdmissionGate, ConcurrentAdmitsNeverExceedTheBound) {
  constexpr std::size_t kBound = 4;
  constexpr std::size_t kThreads = 8;
  constexpr int kRounds = 2000;

  AdmissionConfig config;
  config.max_in_flight = kBound;
  config.policy = AdmissionPolicy::kReject;
  AdmissionGate gate{config};

  std::atomic<std::size_t> active{0};
  std::atomic<std::size_t> peak{0};
  std::atomic<std::size_t> admitted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        if (gate.admit(Deadline{}, nullptr) != AdmissionVerdict::kAdmitted) {
          continue;
        }
        const std::size_t now = active.fetch_add(1) + 1;
        std::size_t seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        admitted.fetch_add(1);
        active.fetch_sub(1);
        gate.release();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_GT(admitted.load(), 0u);
  EXPECT_LE(peak.load(), kBound);
  EXPECT_EQ(gate.in_flight(), 0u);
}

TEST(AdmissionGate, ShedOnOverloadShedsAndProbesReopenTheGate) {
  AdmissionConfig config;
  config.ewma_alpha = 1.0;  // EWMA == last sample, exact assertions
  config.overload_latency_us = 10.0;
  config.shed_on_overload = true;
  config.probe_interval = 4;
  AdmissionGate gate{config};

  // Healthy gate admits normally (not degraded).
  EXPECT_EQ(gate.admit(Deadline{}, nullptr), AdmissionVerdict::kAdmitted);

  gate.record_latency(1000.0);
  ASSERT_TRUE(gate.overloaded());

  // Overloaded + shed_on_overload: decisions shed instead of degrading...
  EXPECT_EQ(gate.admit(Deadline{}, nullptr), AdmissionVerdict::kShed);
  EXPECT_EQ(gate.admit(Deadline{}, nullptr), AdmissionVerdict::kShed);
  EXPECT_EQ(gate.admit(Deadline{}, nullptr), AdmissionVerdict::kShed);
  // ...except every probe_interval-th consecutive shed decision, which is
  // admitted degraded as the half-open probe. This is the recovery path:
  // without it a 100%-shedding gate would never see another completion.
  EXPECT_EQ(gate.admit(Deadline{}, nullptr),
            AdmissionVerdict::kAdmittedDegraded);
  gate.release();

  // The probe completed fast: the gate must reopen off that one completion
  // alone — no overloaded() read in between, pinning the eager fold on the
  // completion path while the overload flag is set.
  gate.record_latency(1.0);
  EXPECT_EQ(gate.admit(Deadline{}, nullptr), AdmissionVerdict::kAdmitted);
  EXPECT_FALSE(gate.overloaded());
}

TEST(AdmissionGate, ProbeIntervalZeroDisablesProbing) {
  AdmissionConfig config;
  config.ewma_alpha = 1.0;
  config.overload_latency_us = 10.0;
  config.shed_on_overload = true;
  config.probe_interval = 0;
  AdmissionGate gate{config};
  gate.record_latency(1000.0);
  ASSERT_TRUE(gate.overloaded());
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(gate.admit(Deadline{}, nullptr), AdmissionVerdict::kShed);
  }
}

TEST(CircuitBreaker, DisabledBreakerNeverShortCircuits) {
  CircuitBreaker breaker{0};
  EXPECT_FALSE(breaker.enabled());
  for (int i = 0; i < 10; ++i) breaker.record(1, 2, /*disconnected=*/true);
  EXPECT_FALSE(breaker.should_short_circuit(1, 2));
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreaker, OpensAtTheThresholdWithinOneEpoch) {
  CircuitBreaker breaker{3};
  breaker.record(1, 2, true);
  breaker.record(1, 2, true);
  EXPECT_FALSE(breaker.should_short_circuit(1, 2));  // streak 2 < 3
  breaker.record(1, 2, true);
  EXPECT_TRUE(breaker.should_short_circuit(1, 2));
  EXPECT_EQ(breaker.trips(), 1u);
  // A different pair is unaffected.
  EXPECT_FALSE(breaker.should_short_circuit(2, 1));
}

TEST(CircuitBreaker, SuccessResetsTheStreak) {
  CircuitBreaker breaker{2};
  breaker.record(7, 9, true);
  breaker.record(7, 9, false);  // connectivity came back mid-streak
  breaker.record(7, 9, true);
  EXPECT_FALSE(breaker.should_short_circuit(7, 9));
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreaker, EpochAdvanceGivesThePairAFreshChance) {
  CircuitBreaker breaker{2};
  breaker.record(3, 4, true);
  breaker.record(3, 4, true);
  ASSERT_TRUE(breaker.should_short_circuit(3, 4));
  // The fault landscape changed: the open breaker from the old epoch must
  // not short-circuit new queries, and the streak restarts. The advance is
  // wait-free; the stale entry resets lazily on its next touch.
  breaker.advance_fault_epoch();
  EXPECT_EQ(breaker.fault_epoch(), 1u);
  EXPECT_FALSE(breaker.should_short_circuit(3, 4));
  breaker.record(3, 4, true);
  EXPECT_FALSE(breaker.should_short_circuit(3, 4));
  breaker.record(3, 4, true);
  EXPECT_TRUE(breaker.should_short_circuit(3, 4));
  EXPECT_EQ(breaker.trips(), 2u);
}

TEST(CircuitBreaker, ConcurrentRecordsReachTheThresholdOnce) {
  CircuitBreaker breaker{1};  // every disconnect opens
  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        breaker.record(t, t + 1, true);
        (void)breaker.should_short_circuit(t, t + 1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // One trip per pair: the open breaker must not re-trip on every record.
  EXPECT_EQ(breaker.trips(), kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(breaker.should_short_circuit(t, t + 1));
  }
}

}  // namespace
}  // namespace hhc::query
