#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/routing.hpp"

namespace hhc::core {
namespace {

TEST(HhcRouting, TrivialRoute) {
  const HhcTopology net{2};
  const auto p = route(net, 5, 5);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 5u);
}

TEST(HhcRouting, SameClusterRouteIsHammingShort) {
  const HhcTopology net{3};
  const Node s = net.encode(9, 0b000);
  const Node t = net.encode(9, 0b110);
  const auto p = route(net, s, t);
  EXPECT_TRUE(is_valid_path(net, p, s, t));
  EXPECT_EQ(p.size() - 1, 2u);
}

TEST(HhcRouting, CrossClusterRouteIsValid) {
  for (unsigned m = 1; m <= 5; ++m) {
    const HhcTopology net{m};
    const Node s = net.encode(0, 0);
    const Node t = net.encode(net.cluster_count() - 1, net.cluster_size() - 1);
    const auto p = route(net, s, t);
    EXPECT_TRUE(is_valid_path(net, p, s, t)) << "m=" << m;
  }
}

TEST(HhcRouting, RouteWithinLengthBound) {
  // Constructive bound: 2^m + k + 2m edges is a generous envelope.
  for (unsigned m = 2; m <= 5; ++m) {
    const HhcTopology net{m};
    for (const auto& [s, t] : sample_pairs(net, 300, /*seed=*/3)) {
      const auto p = route(net, s, t);
      ASSERT_TRUE(is_valid_path(net, p, s, t));
      const auto k = static_cast<std::size_t>(
          bits::popcount(net.cluster_of(s) ^ net.cluster_of(t)));
      EXPECT_LE(p.size() - 1, net.cluster_dimensions() + k + 2 * m)
          << "m=" << m;
    }
  }
}

TEST(HhcRouting, RouteMatchesBfsOnAdjacentNodes) {
  const HhcTopology net{2};
  for (Node v = 0; v < net.node_count(); ++v) {
    for (const Node u : net.neighbors(v)) {
      EXPECT_EQ(route(net, v, u).size(), 2u) << v << "->" << u;
    }
  }
}

TEST(HhcRouting, RouteNearOptimalOnSmallNetworks) {
  // The constructive route must stay within a small additive margin of the
  // exact BFS distance (it is not always optimal, but close).
  const HhcTopology net{2};
  for (Node s = 0; s < net.node_count(); s += 3) {
    const auto dist = bfs_distances(net, s);
    for (Node t = 0; t < net.node_count(); ++t) {
      if (s == t) continue;
      const auto p = route(net, s, t);
      ASSERT_TRUE(is_valid_path(net, p, s, t));
      EXPECT_LE(p.size() - 1, dist[t] + 4u) << "s=" << s << " t=" << t;
    }
  }
}

TEST(HhcRouting, GrayOrderedDimensionsCoverXorMask) {
  const HhcTopology net{3};
  const Node s = net.encode(0b00111100, 1);
  const Node t = net.encode(0b11000011, 2);
  const auto dims = differing_x_dimensions_gray_ordered(net, s, t);
  std::uint64_t acc = 0;
  for (const unsigned d : dims) acc |= (1ull << d);
  EXPECT_EQ(acc, net.cluster_of(s) ^ net.cluster_of(t));
  EXPECT_EQ(dims.size(), 8u);
}

TEST(HhcRouting, RouteLengthMatchesRealizedRoute) {
  // route_length() must predict route()'s size exactly — the local router
  // and the balanced selection policy both rely on it.
  for (unsigned m = 1; m <= 5; ++m) {
    const HhcTopology net{m};
    for (const auto& [s, t] : sample_pairs(net, 200, 31 + m)) {
      EXPECT_EQ(route_length(net, s, t), route(net, s, t).size() - 1)
          << "m=" << m << " s=" << s << " t=" << t;
    }
    EXPECT_EQ(route_length(net, 5, 5), 0u);
  }
}

TEST(HhcRouting, RouteLengthSameCluster) {
  const HhcTopology net{3};
  const Node s = net.encode(4, 0b000);
  const Node t = net.encode(4, 0b111);
  EXPECT_EQ(route_length(net, s, t), 3u);
}

TEST(HhcRouting, RealizeClusterRouteValidatesInput) {
  const HhcTopology net{2};
  const std::vector<std::uint64_t> exit_walk{0};
  const std::vector<unsigned> dims{1};
  const std::vector<std::uint64_t> entry_walk{1};
  // exit walk must end at the first gateway (position 1, not 0).
  EXPECT_THROW((void)realize_cluster_route(net, 0, exit_walk, dims, entry_walk),
               std::invalid_argument);
}

TEST(HhcRouting, IsValidPathRejectsBadPaths) {
  const HhcTopology net{2};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(0, 1);
  EXPECT_FALSE(is_valid_path(net, {}, s, t));
  EXPECT_FALSE(is_valid_path(net, {s}, s, t));
  EXPECT_TRUE(is_valid_path(net, {s, t}, s, t));
  EXPECT_FALSE(is_valid_path(net, {s, s, t}, s, t));
  EXPECT_FALSE(is_valid_path(net, {s, net.encode(5, 3)}, s, net.encode(5, 3)));
}

}  // namespace
}  // namespace hhc::core
