#include <gtest/gtest.h>

#include "core/disjoint.hpp"
#include "core/routing.hpp"
#include "sim/traffic.hpp"
#include "sim/wormhole.hpp"

namespace hhc::sim {
namespace {

using core::HhcTopology;
using core::Node;
using core::Path;

WormholeConfig quick_config(unsigned vcs, std::size_t length) {
  WormholeConfig config;
  config.virtual_channels = vcs;
  config.packet_length = length;
  config.stall_threshold = 64;
  return config;
}

TEST(Wormhole, RejectsBadConfig) {
  const HhcTopology net{2};
  EXPECT_THROW(WormholeSimulator(net, quick_config(0, 4)),
               std::invalid_argument);
  EXPECT_THROW(WormholeSimulator(net, quick_config(17, 4)),
               std::invalid_argument);
  EXPECT_THROW(WormholeSimulator(net, quick_config(2, 0)),
               std::invalid_argument);
}

TEST(Wormhole, SingleWormLatencyModel) {
  // Uncontended worm: R head advances + min(R, L) drain cycles.
  const HhcTopology net{2};
  const auto route = core::route(net, net.encode(0, 0), net.encode(15, 3));
  const std::size_t R = route.size() - 1;
  for (const std::size_t L : {1u, 3u, 16u}) {
    WormholeSimulator sim{net, quick_config(2, L)};
    sim.inject(route, 0);
    const auto report = sim.run();
    ASSERT_EQ(report.delivered, 1u) << "L=" << L;
    EXPECT_EQ(report.latency.max, R + std::min(R, L)) << "L=" << L;
  }
}

TEST(Wormhole, SingleNodeRouteDeliversInstantly) {
  const HhcTopology net{2};
  WormholeSimulator sim{net, quick_config(2, 4)};
  sim.inject({net.encode(1, 1)}, 7);
  const auto report = sim.run();
  EXPECT_EQ(report.delivered, 1u);
  EXPECT_EQ(report.latency.max, 0u);
}

TEST(Wormhole, InjectValidatesRoutes) {
  const HhcTopology net{2};
  WormholeSimulator sim{net, quick_config(2, 4)};
  EXPECT_THROW(sim.inject({}, 0), std::invalid_argument);
  EXPECT_THROW(sim.inject({net.encode(0, 0), net.encode(5, 3)}, 0),
               std::invalid_argument);
}

TEST(Wormhole, DisjointPathsDoNotInterfere) {
  const HhcTopology net{3};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(200, 5);
  const auto container = core::node_disjoint_paths(net, s, t);
  WormholeSimulator sim{net, quick_config(1, 4)};
  for (const auto& p : container.paths) sim.inject(p, 0);
  const auto report = sim.run();
  EXPECT_EQ(report.delivered, container.paths.size());
  EXPECT_FALSE(report.deadlock_detected);
  EXPECT_EQ(report.mean_blocked_cycles, 0.0);
}

TEST(Wormhole, ClassicCyclicDeadlockAtOneVC) {
  // Four 2-hop worms chasing each other around a cluster's 4-cycle: with
  // one VC each holds its first link and waits for the next forever.
  const HhcTopology net{2};
  const std::uint64_t X = 3;
  const auto node = [&](std::uint64_t y) { return net.encode(X, y); };
  const Path ring{node(0b00), node(0b01), node(0b11), node(0b10)};
  WormholeSimulator sim{net, quick_config(1, 2)};
  for (std::size_t i = 0; i < 4; ++i) {
    sim.inject({ring[i], ring[(i + 1) % 4], ring[(i + 2) % 4]}, 0);
  }
  const auto report = sim.run();
  EXPECT_TRUE(report.deadlock_detected);
  EXPECT_EQ(report.deadlocked, 4u);
  EXPECT_EQ(report.delivered, 0u);
}

TEST(Wormhole, SecondVirtualChannelBreaksTheDeadlock) {
  const HhcTopology net{2};
  const std::uint64_t X = 3;
  const auto node = [&](std::uint64_t y) { return net.encode(X, y); };
  const Path ring{node(0b00), node(0b01), node(0b11), node(0b10)};
  WormholeSimulator sim{net, quick_config(2, 2)};
  for (std::size_t i = 0; i < 4; ++i) {
    sim.inject({ring[i], ring[(i + 1) % 4], ring[(i + 2) % 4]}, 0);
  }
  const auto report = sim.run();
  EXPECT_FALSE(report.deadlock_detected);
  EXPECT_EQ(report.delivered, 4u);
}

TEST(Wormhole, SharedLinkSerializesWorms) {
  const HhcTopology net{2};
  const auto route = core::route(net, net.encode(0, 0), net.encode(15, 3));
  WormholeSimulator sim{net, quick_config(1, 2)};
  sim.inject(route, 0);
  sim.inject(route, 0);
  const auto report = sim.run();
  EXPECT_EQ(report.delivered, 2u);
  EXPECT_FALSE(report.deadlock_detected);
  // The second worm must have waited behind the first.
  EXPECT_GT(report.latency.max, report.latency.min);
}

TEST(Wormhole, RandomTrafficDrainsWithEnoughVCs) {
  const HhcTopology net{2};
  WormholeSimulator sim{net, quick_config(4, 3)};
  for (const auto& f : uniform_random_traffic(net, 100, 50, 5)) {
    sim.inject(core::route(net, f.s, f.t), f.inject_time);
  }
  const auto report = sim.run();
  EXPECT_EQ(report.delivered + report.deadlocked + report.stranded, 100u);
  EXPECT_EQ(report.stranded, 0u);
}

TEST(Wormhole, DeterministicAcrossRuns) {
  const HhcTopology net{2};
  const auto run_once = [&]() {
    WormholeSimulator sim{net, quick_config(2, 3)};
    for (const auto& f : uniform_random_traffic(net, 60, 30, 9)) {
      sim.inject(core::route(net, f.s, f.t), f.inject_time);
    }
    return sim.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.latency.max, b.latency.max);
}

}  // namespace
}  // namespace hhc::sim
