// Unit tests of the disjoint-path construction: route selection structure,
// endpoint-edge usage, and representative constructions across all the
// case-analysis branches (a/b inside or outside D, same cluster, k = 1).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "core/disjoint.hpp"
#include "core/metrics.hpp"
#include "core/routing.hpp"

namespace hhc::core {
namespace {

// Convenience: construct and fully verify, returning the container.
DisjointPathSet build_checked(const HhcTopology& net, Node s, Node t) {
  const auto set = node_disjoint_paths(net, s, t);
  std::string why;
  EXPECT_TRUE(verify_disjoint_path_set(net, set, s, t, &why)) << why;
  return set;
}

TEST(HhcDisjoint, RejectsDegenerateInputs) {
  const HhcTopology net{2};
  EXPECT_THROW((void)node_disjoint_paths(net, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)node_disjoint_paths(net, 0, net.node_count()),
               std::invalid_argument);
}

TEST(HhcDisjoint, ProducesExactlyDegreePaths) {
  for (unsigned m = 1; m <= 4; ++m) {
    const HhcTopology net{m};
    const Node s = net.encode(0, 0);
    const Node t = net.encode(net.cluster_count() - 1, net.cluster_size() - 1);
    const auto set = build_checked(net, s, t);
    EXPECT_EQ(set.paths.size(), m + 1) << "m=" << m;
  }
}

TEST(HhcDisjoint, UsesAllEdgesOfSourceAndDestination) {
  // Disjointness forces the m+1 paths to leave s over m+1 distinct edges
  // and enter t over m+1 distinct edges — including both external edges.
  const HhcTopology net{3};
  const Node s = net.encode(0b0101, 0b010);
  const Node t = net.encode(0b1010, 0b110);
  const auto set = build_checked(net, s, t);

  std::set<Node> first_hops;
  std::set<Node> last_hops;
  for (const auto& p : set.paths) {
    ASSERT_GE(p.size(), 2u);
    first_hops.insert(p[1]);
    last_hops.insert(p[p.size() - 2]);
  }
  EXPECT_EQ(first_hops.size(), net.degree());
  EXPECT_EQ(last_hops.size(), net.degree());
  EXPECT_TRUE(first_hops.count(net.external_neighbor(s)) > 0)
      << "some path must use the source's external edge";
  EXPECT_TRUE(last_hops.count(net.external_neighbor(t)) > 0)
      << "some path must use the destination's external edge";
}

TEST(HhcDisjoint, SameClusterCase) {
  const HhcTopology net{3};
  const Node s = net.encode(7, 0b000);
  const Node t = net.encode(7, 0b101);
  const auto set = build_checked(net, s, t);
  EXPECT_EQ(set.paths.size(), 4u);
  // Exactly one path (the external detour) leaves the shared cluster.
  std::size_t leaving = 0;
  for (const auto& p : set.paths) {
    const bool leaves = std::any_of(p.begin(), p.end(), [&](Node v) {
      return net.cluster_of(v) != 7;
    });
    leaving += leaves ? 1 : 0;
  }
  EXPECT_EQ(leaving, 1u);
}

TEST(HhcDisjoint, SameClusterDetourLengthBound) {
  // The detour's length is 3 * H(Ys, Yt) + 4 <= 3m + 4.
  const HhcTopology net{3};
  const Node s = net.encode(3, 0b000);
  const Node t = net.encode(3, 0b111);
  const auto set = build_checked(net, s, t);
  EXPECT_LE(set.max_length(), 3u * 3u + 4u);
}

TEST(HhcDisjoint, AdjacentAcrossExternalEdge) {
  // s and t adjacent via an external edge: one path has length 1.
  const HhcTopology net{2};
  const Node s = net.encode(0b0000, 0b01);  // gateway for X-dim 1
  const Node t = net.external_neighbor(s);
  ASSERT_EQ(net.cluster_of(t), 0b0010u);
  const auto set = build_checked(net, s, t);
  EXPECT_EQ(set.min_length(), 1u);
}

TEST(HhcDisjoint, AdjacentWithinCluster) {
  const HhcTopology net{2};
  const Node s = net.encode(5, 0b00);
  const Node t = net.encode(5, 0b01);
  const auto set = build_checked(net, s, t);
  EXPECT_EQ(set.min_length(), 1u);
}

TEST(HhcDisjoint, SingleDifferingDimensionBranches) {
  const HhcTopology net{2};
  // k = 1 with a in D, b not in D.
  {
    const Node s = net.encode(0b0000, 0b10);  // a = 2
    const Node t = net.encode(0b0100, 0b01);  // differs in X-dim 2, b = 1
    (void)build_checked(net, s, t);
  }
  // k = 1 with a not in D, b not in D, a != b.
  {
    const Node s = net.encode(0b0000, 0b01);  // a = 1
    const Node t = net.encode(0b1000, 0b10);  // D = {3}, b = 2
    (void)build_checked(net, s, t);
  }
  // k = 1 with a = b, both outside D.
  {
    const Node s = net.encode(0b0000, 0b01);  // a = 1
    const Node t = net.encode(0b0001, 0b01);  // D = {0}, b = 1
    (void)build_checked(net, s, t);
  }
}

TEST(HhcDisjoint, RouteSelectionHasDistinctFirstsAndLasts) {
  const HhcTopology net{3};
  const Node s = net.encode(0b00001111, 0b011);
  const Node t = net.encode(0b11110000, 0b100);
  const auto routes = select_cluster_routes(net, s, t);
  ASSERT_EQ(routes.size(), net.degree());
  std::set<unsigned> firsts;
  std::set<unsigned> lasts;
  for (const auto& r : routes) {
    ASSERT_FALSE(r.empty());
    firsts.insert(r.front());
    lasts.insert(r.back());
  }
  EXPECT_EQ(firsts.size(), routes.size());
  EXPECT_EQ(lasts.size(), routes.size());
  EXPECT_TRUE(firsts.count(net.gateway_dimension(s)) > 0);
  EXPECT_TRUE(lasts.count(net.gateway_dimension(t)) > 0);
}

TEST(HhcDisjoint, EveryRouteFlipsExactlyTheDifferingDimensions) {
  const HhcTopology net{3};
  const Node s = net.encode(0b00110011, 0b000);
  const Node t = net.encode(0b01010101, 0b111);
  const std::uint64_t expected = net.cluster_of(s) ^ net.cluster_of(t);
  for (const auto& r : select_cluster_routes(net, s, t)) {
    std::uint64_t acc = 0;
    for (const unsigned d : r) acc ^= (1ull << d);
    EXPECT_EQ(acc, expected);
  }
}

TEST(HhcDisjoint, MaxLengthWithinTheoreticalBound) {
  // The construction guarantees max length <= 2^m + k + O(m); we check the
  // concrete bound 2^m + k + 3m + 4 on a deterministic sample.
  for (unsigned m = 1; m <= 4; ++m) {
    const HhcTopology net{m};
    const auto pairs = sample_pairs(net, 200, /*seed=*/42);
    for (const auto& [s, t] : pairs) {
      const auto set = node_disjoint_paths(net, s, t);
      const auto k = static_cast<std::size_t>(
          bits::popcount(net.cluster_of(s) ^ net.cluster_of(t)));
      EXPECT_LE(set.max_length(), net.cluster_dimensions() + k + 3 * m + 4)
          << "m=" << m << " s=" << s << " t=" << t;
    }
  }
}

TEST(HhcDisjoint, DeterministicAcrossCalls) {
  const HhcTopology net{3};
  const Node s = net.encode(100, 2);
  const Node t = net.encode(200, 5);
  const auto first = node_disjoint_paths(net, s, t);
  const auto second = node_disjoint_paths(net, s, t);
  ASSERT_EQ(first.paths.size(), second.paths.size());
  for (std::size_t i = 0; i < first.paths.size(); ++i) {
    EXPECT_EQ(first.paths[i], second.paths[i]);
  }
}

TEST(HhcDisjoint, ConstructionCommutesWithClusterTranslation) {
  // Metamorphic property: XOR-translating the cluster labels is an
  // automorphism, and every step of the algorithm depends on Xs, Xt only
  // through their difference — so translating the inputs must translate
  // the output container node-for-node.
  const HhcTopology net{3};
  const Node s = net.encode(0b00101100, 0b011);
  const Node t = net.encode(0b11000110, 0b101);
  const auto base = node_disjoint_paths(net, s, t);
  for (const std::uint64_t a : {0b1ull, 0b10101010ull, 0b11111111ull}) {
    const auto translate = [&](Node v) {
      return net.encode(net.cluster_of(v) ^ a, net.position_of(v));
    };
    const auto shifted = node_disjoint_paths(net, translate(s), translate(t));
    ASSERT_EQ(shifted.paths.size(), base.paths.size());
    for (std::size_t i = 0; i < base.paths.size(); ++i) {
      ASSERT_EQ(shifted.paths[i].size(), base.paths[i].size()) << "A=" << a;
      for (std::size_t j = 0; j < base.paths[i].size(); ++j) {
        EXPECT_EQ(shifted.paths[i][j], translate(base.paths[i][j]))
            << "A=" << a << " path " << i << " hop " << j;
      }
    }
  }
}

TEST(HhcDisjoint, LengthStatisticsAreConsistent) {
  const HhcTopology net{2};
  const auto set = node_disjoint_paths(net, net.encode(0, 0), net.encode(9, 3));
  EXPECT_LE(set.min_length(), set.average_length());
  EXPECT_LE(set.average_length(), static_cast<double>(set.max_length()));
}

TEST(HhcDisjoint, VerifierCatchesTampering) {
  const HhcTopology net{2};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(13, 2);
  const auto good = node_disjoint_paths(net, s, t);
  std::string why;
  ASSERT_TRUE(verify_disjoint_path_set(net, good, s, t, &why));

  // Wrong cardinality.
  auto fewer = good;
  fewer.paths.pop_back();
  EXPECT_FALSE(verify_disjoint_path_set(net, fewer, s, t, &why));
  EXPECT_NE(why.find("expected"), std::string::npos);

  // Duplicate a path: shared interior nodes.
  auto dup = good;
  dup.paths.back() = dup.paths.front();
  EXPECT_FALSE(verify_disjoint_path_set(net, dup, s, t, &why));
  EXPECT_NE(why.find("shared"), std::string::npos);

  // Break an edge in one path.
  auto broken = good;
  ASSERT_GE(broken.paths[0].size(), 3u);
  std::swap(broken.paths[0][1], broken.paths[0][2]);
  EXPECT_FALSE(verify_disjoint_path_set(net, broken, s, t, &why));

  // Wrong endpoints.
  EXPECT_FALSE(verify_disjoint_path_set(net, good, t, s, &why));
}

}  // namespace
}  // namespace hhc::core
