// Overload-invariant property suite (PR 8).
//
// Three contracts, swept across every gate policy x in-flight bound x
// breaker state x deadline x shed posture combination with seeded traffic
// (>= 1000 cases):
//
//   1. The outcome partition is EXACT:
//        guaranteed + best_effort + disconnected + shed + timed_out +
//        invalid == queries   and   pristine + fault_aware == queries
//      — no overload mechanism may lose or double-count a query.
//   2. A shed decision performs no per-query work: cache counters and the
//      service-time histogram are bit-unchanged across any number of
//      gate sheds (the shed-fast contract).
//   3. Admission-time deadline expiry classifies kTimedOut EXACTLY once,
//      in single and batch form (the PR 8 double-count fix).
//
// Plus the end-to-end plateau property: closed-loop goodput under 4x
// overload stays >= 0.9x the uncontended peak. Traffic and fault schedules
// are pure functions of the seed; only wall-clock-derived fields vary.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/fault_model.hpp"
#include "core/topology.hpp"
#include "query/path_service.hpp"
#include "sim/soak.hpp"
#include "util/rng.hpp"

namespace hhc::query {
namespace {

using core::HhcTopology;

struct CaseConfig {
  AdmissionPolicy policy = AdmissionPolicy::kReject;
  std::size_t max_in_flight = 0;
  std::size_t breaker_threshold = 0;
  bool shed_on_overload = false;
  int deadline_kind = 0;  // 0 = none, 1 = generous, 2 = already expired
};

// Replays one seeded traffic mix against a service built from `cc` and
// asserts the outcome partition. Single-threaded by design: the partition
// must be exact when writers are quiescent, and a 1-thread sweep over 1000+
// cases is what makes the property suite deterministic.
void check_partition_case(const HhcTopology& net, const CaseConfig& cc,
                          std::uint64_t seed) {
  PathServiceConfig config;
  config.threads = 1;
  config.admission.policy = cc.policy;
  config.admission.max_in_flight = cc.max_in_flight;
  config.admission.breaker_threshold = cc.breaker_threshold;
  config.admission.shed_on_overload = cc.shed_on_overload;
  // Armed low enough that cold constructions trip the detector and warm
  // answers recover it — both overload branches get real traffic.
  config.admission.ewma_alpha = 0.5;
  config.admission.overload_latency_us = 50.0;
  config.admission.probe_interval = 4;
  PathService service{net, config};

  util::Xoshiro256 rng{seed};
  core::FaultModel faults;
  faults.fail_node(1 + rng.below(net.node_count() - 1));

  std::uint64_t sent = 0;
  const auto make_query = [&](bool allow_invalid) {
    PairQuery query;
    query.s = rng.below(net.node_count());
    query.t = rng.below(net.node_count());
    if (allow_invalid && rng.chance(0.1)) query.t = net.node_count();  // bad
    if (rng.chance(0.4)) query.faults = &faults;
    if (cc.deadline_kind == 1) {
      query.deadline = util::Deadline::after_micros(50000.0);
    } else if (cc.deadline_kind == 2) {
      query.deadline = util::Deadline::after_micros(0.0);
    }
    return query;
  };

  // Half singles (malformed ones throw and are NOT counted as received),
  // half batch (malformed elements isolate as kInvalid and ARE counted).
  for (int i = 0; i < 12; ++i) {
    try {
      (void)service.answer(make_query(false));
      ++sent;
    } catch (const std::invalid_argument&) {
    }
  }
  std::vector<PairQuery> batch;
  for (int i = 0; i < 12; ++i) batch.push_back(make_query(true));
  (void)service.answer(std::span<const PairQuery>{batch});
  sent += batch.size();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, sent);
  EXPECT_EQ(stats.pristine + stats.fault_aware, stats.queries);
  EXPECT_EQ(stats.guaranteed + stats.best_effort + stats.disconnected +
                stats.shed + stats.timed_out + stats.invalid,
            stats.queries)
      << "partition broken: policy=" << to_string(cc.policy)
      << " bound=" << cc.max_in_flight
      << " breaker=" << cc.breaker_threshold
      << " shed_on_overload=" << cc.shed_on_overload
      << " deadline_kind=" << cc.deadline_kind << " seed=" << seed;
  EXPECT_EQ(stats.in_flight, 0u);
}

TEST(OverloadInvariants, OutcomePartitionHoldsAcrossEveryGateCombination) {
  const HhcTopology net{1};
  std::size_t cases = 0;
  for (const AdmissionPolicy policy :
       {AdmissionPolicy::kReject, AdmissionPolicy::kQueue,
        AdmissionPolicy::kDegrade}) {
    for (const std::size_t bound : {std::size_t{0}, std::size_t{2}}) {
      for (const std::size_t breaker : {std::size_t{0}, std::size_t{2}}) {
        for (const bool shed_on_overload : {false, true}) {
          for (const int deadline_kind : {0, 1, 2}) {
            for (std::uint64_t seed = 1; seed <= 15; ++seed) {
              check_partition_case(
                  net,
                  CaseConfig{policy, bound, breaker, shed_on_overload,
                             deadline_kind},
                  seed);
              ++cases;
            }
          }
        }
      }
    }
  }
  EXPECT_GE(cases, 1000u);  // the suite's advertised floor
}

TEST(OverloadInvariants, ShedDecisionsNeverTouchCacheOrHistograms) {
  const HhcTopology net{2};
  PathServiceConfig config;
  config.admission.ewma_alpha = 1.0;
  config.admission.overload_latency_us = 1e-3;  // any completion overloads
  config.admission.shed_on_overload = true;
  config.admission.probe_interval = 0;  // pure sheds: no probes mid-assert
  PathService service{net, config};

  // One completed answer warms the cache and trips the detector.
  (void)service.answer(PairQuery{.s = 0, .t = 60});
  ASSERT_TRUE(service.gate().overloaded());

  const ServiceStats before = service.stats();
  ASSERT_EQ(before.latency.count, 1u);

  constexpr std::uint64_t kSheds = 1000;
  for (std::uint64_t i = 0; i < kSheds; ++i) {
    const RouteResult result = service.answer(PairQuery{.s = 0, .t = 60});
    ASSERT_EQ(result.outcome, RouteOutcome::kShed);
    ASSERT_TRUE(result.paths.empty());
  }
  for (std::uint64_t i = 0; i < kSheds; ++i) {
    const RouteView view = service.answer_view(PairQuery{.s = 0, .t = 60});
    ASSERT_EQ(view.outcome, RouteOutcome::kShed);
    ASSERT_FALSE(view.ok());
  }

  const ServiceStats after = service.stats();
  // The shed-fast contract: no cache traffic, no histogram samples, no
  // EWMA movement — only the striped shed/pristine tallies moved.
  EXPECT_EQ(after.cache.hits, before.cache.hits);
  EXPECT_EQ(after.cache.misses, before.cache.misses);
  EXPECT_EQ(after.cache.entries, before.cache.entries);
  EXPECT_EQ(after.latency.count, before.latency.count);
  EXPECT_EQ(after.ewma_latency_us, before.ewma_latency_us);
  EXPECT_EQ(after.shed, before.shed + 2 * kSheds);
  EXPECT_EQ(after.queries, before.queries + 2 * kSheds);
  EXPECT_EQ(after.guaranteed + after.best_effort + after.disconnected +
                after.shed + after.timed_out + after.invalid,
            after.queries);
}

TEST(OverloadInvariants, AdmissionExpiryClassifiesTimedOutExactlyOnce) {
  const HhcTopology net{2};
  // kQueue + bound is the original double-count trigger: an expired
  // element must not be counted by the queue wait AND the dispatch check.
  PathServiceConfig config;
  config.threads = 1;
  config.admission.max_in_flight = 1;
  config.admission.policy = AdmissionPolicy::kQueue;
  PathService service{net, config};

  PairQuery expired{.s = 0, .t = 60};
  expired.deadline = util::Deadline::after_micros(0.0);

  const RouteResult single = service.answer(expired);
  EXPECT_EQ(single.outcome, RouteOutcome::kTimedOut);
  {
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.queries, 1u);
    EXPECT_EQ(stats.timed_out, 1u);
    EXPECT_EQ(stats.shed, 0u);
  }

  constexpr std::size_t kBatch = 32;
  std::vector<PairQuery> batch(kBatch, expired);
  const std::vector<RouteResult> results =
      service.answer(std::span<const PairQuery>{batch});
  for (const RouteResult& result : results) {
    EXPECT_EQ(result.outcome, RouteOutcome::kTimedOut);
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, 1u + kBatch);
  EXPECT_EQ(stats.timed_out, 1u + kBatch);  // exactly once per element
  EXPECT_EQ(stats.shed, 0u);
  // Admission-time expiries did no admitted work: the histogram is empty.
  EXPECT_EQ(stats.latency.count, 0u);
  EXPECT_EQ(stats.guaranteed + stats.best_effort + stats.disconnected +
                stats.shed + stats.timed_out + stats.invalid,
            stats.queries);
}

// Best-of-3 closed-loop goodput: wall-clock measurements on a shared CI
// box are noisy; the max over three runs is the machine's actual capacity.
double best_goodput(const sim::SoakConfig& config) {
  double best = 0.0;
  for (int i = 0; i < 3; ++i) {
    const sim::SoakReport report = sim::run_soak(config);
    EXPECT_EQ(report.stuck, 0u);
    EXPECT_EQ(report.door_shed, 0u);  // closed loop never door-sheds
    if (report.goodput_qps() > best) best = report.goodput_qps();
  }
  return best;
}

// Wall-clock performance contracts are meaningless under sanitizer
// instrumentation: TSan/ASan interceptors multiply the cost of the shed
// path's relaxed atomics by orders of magnitude, so "rejection is free" —
// the very property under test — does not hold in those builds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define HHC_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define HHC_UNDER_SANITIZER 1
#endif
#endif

TEST(OverloadInvariants, ClosedLoopGoodputSurvivesFourTimesOverload) {
#ifdef HHC_UNDER_SANITIZER
  GTEST_SKIP() << "goodput ratio is a wall-clock contract; sanitizer "
                  "builds distort the shed path it measures";
#endif
  // Uncontended peak: capacity-matched streams, no gate. 4x overload:
  // four times the streams AND four times the traffic against a shed-fast
  // kReject bound. The plateau property: rejection is cheap enough that
  // goodput keeps >= 0.9x the uncontended peak instead of collapsing.
  sim::SoakConfig peak;
  peak.m = 1;
  peak.epochs = 2;
  peak.queries_per_epoch = 4096;
  peak.workers = 4;
  peak.closed_loop = true;
  peak.fault_rate = 0.0;  // pure pristine warm-cache traffic
  peak.seed = 7;

  sim::SoakConfig overload = peak;
  overload.queries_per_epoch = 4 * peak.queries_per_epoch;
  overload.workers = 16;
  overload.admission.max_in_flight = 4;
  overload.admission.policy = AdmissionPolicy::kReject;

  // Warm-up run (thread pool spawn, TLS striped cells, code paging) so
  // neither measured config pays first-run costs.
  { (void)sim::run_soak(peak); }

  const double peak_qps = best_goodput(peak);
  const double overload_qps = best_goodput(overload);
  ASSERT_GT(peak_qps, 0.0);
  EXPECT_GE(overload_qps, 0.9 * peak_qps)
      << "goodput collapsed under 4x overload: " << overload_qps << " vs "
      << peak_qps << " qps uncontended";
}

}  // namespace
}  // namespace hhc::query
