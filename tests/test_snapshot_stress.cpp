// Concurrency regression suite for the lock-free ContainerCache read path
// (labelled `stress`: the TSan CI job builds and runs this binary).
//
// Each shard publishes its index as an immutable snapshot behind
// std::atomic<std::shared_ptr<const ShardIndex>>; readers load-acquire the
// pointer and never take a lock, while writers build-then-swap replacement
// snapshots under a per-shard mutex. These tests drive lookups concurrently
// against every writer-side event — insert (publication), eviction, and
// clear() — asserting that readers always observe a coherent snapshot
// (bit-identical answers to direct construction) and that handles pin their
// containers across arbitrary churn. They are exactly the interleavings the
// snapshot swap must make safe, so they double as the TSan proof obligation
// for the design in DESIGN.md §9.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/container_cache.hpp"
#include "core/metrics.hpp"
#include "util/rng.hpp"
#include "util/striped.hpp"

namespace hhc::core {
namespace {

constexpr std::size_t kThreads = 8;

TEST(SnapshotStress, LookupsRaceInsertionsAndEvictions) {
  // Tiny shards + more keys than capacity: every thread's lookup stream is
  // a mix of lock-free hits, constructing misses, and displacing inserts,
  // so index snapshots are republished constantly while other threads read
  // them. Any torn read or stale-index use shows up as a path mismatch.
  const HhcTopology net{3};
  ContainerCache cache{net, {.shards = 2, .max_entries_per_shard = 4}};
  const auto pairs = sample_pairs(net, 64, 7);
  std::vector<DisjointPathSet> expected;
  expected.reserve(pairs.size());
  for (const auto& [s, t] : pairs) {
    expected.push_back(node_disjoint_paths(net, s, t));
  }

  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t id = 0; id < kThreads; ++id) {
    threads.emplace_back([&, id] {
      util::Xoshiro256 rng{1000 + id};
      for (std::size_t i = 0; i < 200; ++i) {
        const std::size_t k = rng.below(pairs.size());
        const ContainerHandle handle = cache.lookup(pairs[k].s, pairs[k].t);
        if (handle.materialize().paths != expected[k].paths) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_EQ(cache.hits() + cache.misses(), kThreads * 200);
}

TEST(SnapshotStress, HandlesOutliveConcurrentChurn) {
  // The handle-lifetime contract under contention: handles taken before a
  // storm of evictions/republications (and a final clear()) must keep
  // reading their original containers byte-for-byte. A handle shares
  // ownership of the flat container, so the churn can only retire the
  // *index* snapshots, never the containers a reader still holds.
  const HhcTopology net{3};
  ContainerCache cache{net, {.shards = 1, .max_entries_per_shard = 2}};
  const auto pairs = sample_pairs(net, 48, 29);

  std::vector<ContainerHandle> handles;
  std::vector<DisjointPathSet> before;
  for (std::size_t k = 0; k < 8; ++k) {
    handles.push_back(cache.lookup(pairs[k].s, pairs[k].t));
    before.push_back(handles.back().materialize());
  }

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t id = 0; id < kThreads; ++id) {
    threads.emplace_back([&, id] {
      util::Xoshiro256 rng{5000 + id};
      for (std::size_t i = 0; i < 100; ++i) {
        const std::size_t k = rng.below(pairs.size());
        (void)cache.lookup(pairs[k].s, pairs[k].t);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GT(cache.evictions(), 0u);
  cache.clear();

  for (std::size_t k = 0; k < handles.size(); ++k) {
    ASSERT_TRUE(handles[k].valid());
    EXPECT_EQ(handles[k].materialize().paths, before[k].paths);
  }
}

TEST(SnapshotStress, ClearRacesLookupsWithoutTearing) {
  // clear() unpublishes every shard's snapshot while readers run. A reader
  // either sees the old snapshot (hit) or none (miss + reconstruction) —
  // both must yield the canonical container; nothing may crash or tear.
  const HhcTopology net{2};
  ContainerCache cache{net, {.shards = 2}};
  const auto pairs = sample_pairs(net, 16, 3);
  std::vector<DisjointPathSet> expected;
  expected.reserve(pairs.size());
  for (const auto& [s, t] : pairs) {
    expected.push_back(node_disjoint_paths(net, s, t));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> readers;
  for (std::size_t id = 0; id < kThreads - 1; ++id) {
    readers.emplace_back([&, id] {
      util::Xoshiro256 rng{9000 + id};
      for (std::size_t i = 0; i < 300; ++i) {
        const std::size_t k = rng.below(pairs.size());
        const auto set = cache.lookup(pairs[k].s, pairs[k].t).materialize();
        if (set.paths != expected[k].paths) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread clearer{[&] {
    while (!stop.load(std::memory_order_relaxed)) {
      cache.clear();
      std::this_thread::yield();
    }
  }};
  for (auto& thread : readers) thread.join();
  stop.store(true, std::memory_order_relaxed);
  clearer.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(StripedCounter, FoldIsExactAfterWritersJoin) {
  util::StripedCounter counter;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t id = 0; id < kThreads; ++id) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.fold(), kThreads * kPerThread);
  counter.reset();
  EXPECT_EQ(counter.fold(), 0u);
  counter.add(3);
  EXPECT_EQ(counter.fold(), 3u);
}

TEST(StripedCounter, InstancesAreIndependent) {
  // Two counters incremented from the same threads must not share cells
  // (the TLS cache is keyed by each counter's process-unique id).
  util::StripedCounter a;
  util::StripedCounter b;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t id = 0; id < kThreads; ++id) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        a.add(2);
        b.add();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(a.fold(), kThreads * 2000u);
  EXPECT_EQ(b.fold(), kThreads * 1000u);
}

}  // namespace
}  // namespace hhc::core
