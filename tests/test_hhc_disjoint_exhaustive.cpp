// Exhaustive and statistical verification of the disjoint-path construction.
//
// m = 1 and m = 2 are verified over EVERY ordered node pair (8 and 64
// nodes); m = 3 over every pair from a fixed source plus a random sample;
// m = 4 and m = 5 over random samples. Each container is checked for
// validity, disjointness, and cardinality m+1; for small m the cardinality
// is also cross-checked against the independent max-flow baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "baseline/maxflow_paths.hpp"
#include "core/disjoint.hpp"
#include "core/metrics.hpp"
#include "core/scratch.hpp"
#include "util/rng.hpp"

namespace hhc::core {
namespace {

void check_pair(const HhcTopology& net, Node s, Node t,
                DimensionOrdering ordering = DimensionOrdering::kGrayCycle) {
  const ConstructionOptions options{.ordering = ordering};
  const auto set = node_disjoint_paths(net, s, t, options);
  std::string why;
  ASSERT_TRUE(verify_disjoint_path_set(net, set, s, t, &why))
      << "m=" << net.m() << " s=" << s << " t=" << t << ": " << why;

  // Differential: the arena-backed scratch overload must agree node for
  // node with the copying entry point on every pair this suite touches.
  const DisjointPathSetRef ref =
      node_disjoint_paths(net, s, t, options, tls_construction_scratch());
  ASSERT_EQ(ref.paths.size(), set.paths.size());
  for (std::size_t i = 0; i < ref.paths.size(); ++i) {
    ASSERT_TRUE(std::ranges::equal(set.paths[i], ref.paths[i]))
        << "m=" << net.m() << " s=" << s << " t=" << t << " path " << i
        << ": scratch overload diverged from copying API";
  }
}

TEST(HhcDisjointExhaustive, AllPairsM1) {
  const HhcTopology net{1};
  for (Node s = 0; s < net.node_count(); ++s) {
    for (Node t = 0; t < net.node_count(); ++t) {
      if (s != t) check_pair(net, s, t);
    }
  }
}

TEST(HhcDisjointExhaustive, AllPairsM2) {
  const HhcTopology net{2};
  for (Node s = 0; s < net.node_count(); ++s) {
    for (Node t = 0; t < net.node_count(); ++t) {
      if (s != t) check_pair(net, s, t);
    }
  }
}

TEST(HhcDisjointExhaustive, AllPairsM2AscendingOrdering) {
  // Disjointness must hold for ANY cyclic ordering of the differing
  // dimensions; the ablation ordering gets the same exhaustive treatment.
  const HhcTopology net{2};
  for (Node s = 0; s < net.node_count(); ++s) {
    for (Node t = 0; t < net.node_count(); ++t) {
      if (s != t) check_pair(net, s, t, DimensionOrdering::kAscending);
    }
  }
}

TEST(HhcDisjointExhaustive, RandomPairsAscendingOrderingM3M4M5) {
  for (unsigned m = 3; m <= 5; ++m) {
    const HhcTopology net{m};
    for (const auto& [s, t] : sample_pairs(net, 400, 19 + m)) {
      check_pair(net, s, t, DimensionOrdering::kAscending);
    }
  }
}

TEST(HhcDisjointExhaustive, AllPairsM2BalancedSelection) {
  const HhcTopology net{2};
  const ConstructionOptions options{DimensionOrdering::kGrayCycle,
                                    RouteSelectionPolicy::kBalanced};
  for (Node s = 0; s < net.node_count(); ++s) {
    for (Node t = 0; t < net.node_count(); ++t) {
      if (s == t) continue;
      const auto set = node_disjoint_paths(net, s, t, options);
      std::string why;
      ASSERT_TRUE(verify_disjoint_path_set(net, set, s, t, &why))
          << "s=" << s << " t=" << t << ": " << why;
    }
  }
}

TEST(HhcDisjointExhaustive, BalancedSelectionShorterInAggregate) {
  // The balanced policy minimizes *estimated* lengths over the free slots.
  // The estimate ignores how endpoint fans stretch (fan paths may be
  // longer than the straight-line walk), so a per-pair inequality does not
  // hold — but the aggregate must: over a sample, balanced containers are
  // no longer on average, and per pair never longer by more than the fan
  // slack 2m.
  for (unsigned m = 3; m <= 5; ++m) {
    const HhcTopology net{m};
    double canon_total = 0;
    double balanced_total = 0;
    for (const auto& [s, t] : sample_pairs(net, 300, 77 + m)) {
      const auto canon = node_disjoint_paths(net, s, t);
      const auto balanced = node_disjoint_paths(
          net, s, t,
          ConstructionOptions{DimensionOrdering::kGrayCycle,
                              RouteSelectionPolicy::kBalanced});
      std::string why;
      ASSERT_TRUE(verify_disjoint_path_set(net, balanced, s, t, &why)) << why;
      EXPECT_LE(balanced.max_length(), canon.max_length() + 2 * m)
          << "m=" << m << " s=" << s << " t=" << t;
      canon_total += static_cast<double>(canon.max_length());
      balanced_total += static_cast<double>(balanced.max_length());
    }
    EXPECT_LE(balanced_total, canon_total) << "m=" << m;
  }
}

TEST(HhcDisjointExhaustive, AllTargetsFromFixedSourcesM3) {
  const HhcTopology net{3};
  // Sources covering distinct gateway positions and cluster patterns.
  const Node sources[] = {net.encode(0, 0), net.encode(0b10110101, 0b101),
                          net.encode(0b11111111, 0b111)};
  for (const Node s : sources) {
    for (Node t = 0; t < net.node_count(); ++t) {
      if (s != t) check_pair(net, s, t);
    }
  }
}

TEST(HhcDisjointExhaustive, RandomPairsM4) {
  const HhcTopology net{4};
  for (const auto& [s, t] : sample_pairs(net, 3000, /*seed=*/7)) {
    check_pair(net, s, t);
  }
}

TEST(HhcDisjointExhaustive, RandomPairsM5) {
  const HhcTopology net{5};  // 2^37 nodes: implicit-only regime
  for (const auto& [s, t] : sample_pairs(net, 1000, /*seed=*/11)) {
    check_pair(net, s, t);
  }
}

TEST(HhcDisjointExhaustive, CountMatchesMaxflowConnectivityM2) {
  const HhcTopology net{2};
  const baseline::MaxflowBaseline exact{net};
  util::Xoshiro256 rng{123};
  for (int trial = 0; trial < 200; ++trial) {
    const Node s = rng.below(net.node_count());
    const Node t = rng.below(net.node_count());
    if (s == t) continue;
    const auto constructed = node_disjoint_paths(net, s, t);
    EXPECT_EQ(constructed.paths.size(), exact.connectivity(s, t))
        << "s=" << s << " t=" << t;
  }
}

TEST(HhcDisjointExhaustive, CountMatchesMaxflowConnectivityM3) {
  const HhcTopology net{3};
  const baseline::MaxflowBaseline exact{net};
  util::Xoshiro256 rng{321};
  for (int trial = 0; trial < 50; ++trial) {
    const Node s = rng.below(net.node_count());
    const Node t = rng.below(net.node_count());
    if (s == t) continue;
    EXPECT_EQ(node_disjoint_paths(net, s, t).paths.size(),
              exact.connectivity(s, t));
  }
}

// Parameterized sweep: every (m, seed) cell runs an independent sample, so
// a regression in one branch of the case analysis shows up as a specific
// failing cell rather than a diffuse failure.
class DisjointSweep : public ::testing::TestWithParam<std::tuple<unsigned, int>> {};

TEST_P(DisjointSweep, RandomSampleIsDisjoint) {
  const auto [m, seed] = GetParam();
  const HhcTopology net{m};
  for (const auto& [s, t] :
       sample_pairs(net, 150, static_cast<std::uint64_t>(seed))) {
    check_pair(net, s, t);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScales, DisjointSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<DisjointSweep::ParamType>& param_info) {
      return "m" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace hhc::core
