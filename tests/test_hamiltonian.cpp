#include <gtest/gtest.h>

#include "core/topology.hpp"
#include "cube/folded.hpp"
#include "cube/gray.hpp"
#include "cube/hypercube.hpp"
#include "graph/hamiltonian.hpp"

namespace hhc::graph {
namespace {

AdjacencyList cycle_graph(std::size_t n) {
  AdjacencyList g{n};
  for (Vertex v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<Vertex>((v + 1) % n));
  }
  return g;
}

TEST(Hamiltonian, FindsCycleGraphItself) {
  const auto g = cycle_graph(6);
  const auto r = find_hamiltonian_cycle(g);
  ASSERT_EQ(r.status, HamiltonianStatus::kFound);
  EXPECT_TRUE(is_hamiltonian_cycle(g, r.cycle));
}

TEST(Hamiltonian, ProvesAbsenceOnTree) {
  AdjacencyList g{4};  // star: no cycle at all
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_EQ(find_hamiltonian_cycle(g).status, HamiltonianStatus::kNone);
}

TEST(Hamiltonian, ProvesAbsenceOnBipartiteOddTrap) {
  // K_{1,2} plus an edge: a path of 3; no Hamiltonian cycle.
  AdjacencyList g{3};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(find_hamiltonian_cycle(g).status, HamiltonianStatus::kNone);
}

TEST(Hamiltonian, StepBudgetReportsExhausted) {
  const auto g = cube::Hypercube{6}.explicit_graph();
  const auto r = find_hamiltonian_cycle(g, /*max_steps=*/3);
  EXPECT_EQ(r.status, HamiltonianStatus::kExhausted);
}

TEST(Hamiltonian, HypercubesAreHamiltonian) {
  for (unsigned n = 2; n <= 6; ++n) {
    const auto g = cube::Hypercube{n}.explicit_graph();
    const auto r = find_hamiltonian_cycle(g);
    ASSERT_EQ(r.status, HamiltonianStatus::kFound) << "n=" << n;
    EXPECT_TRUE(is_hamiltonian_cycle(g, r.cycle)) << "n=" << n;
  }
}

TEST(Hamiltonian, GrayCycleIsAHamiltonianWitness) {
  // Independent witness: the reflected Gray cycle is a Hamiltonian cycle
  // of Q_n — validating both gray_cycle() and the verifier.
  const auto g = cube::Hypercube{5}.explicit_graph();
  auto cycle = cube::gray_cycle(5);
  VertexPath vp;
  for (const auto v : cycle) vp.push_back(static_cast<Vertex>(v));
  vp.push_back(vp.front());
  EXPECT_TRUE(is_hamiltonian_cycle(g, vp));
}

TEST(Hamiltonian, FoldedHypercubeIsHamiltonian) {
  const auto g = cube::FoldedHypercube{4}.explicit_graph();
  const auto r = find_hamiltonian_cycle(g);
  ASSERT_EQ(r.status, HamiltonianStatus::kFound);
  EXPECT_TRUE(is_hamiltonian_cycle(g, r.cycle));
}

TEST(Hamiltonian, HhcIsHamiltonianUpToM2) {
  // Ring embedding of the HHC, established by exact search: m = 1 is a
  // plain 8-cycle (the network is 2-regular and connected), m = 2 (64
  // nodes) is found within the budget. m >= 3 is beyond exact search.
  for (unsigned m = 1; m <= 2; ++m) {
    const core::HhcTopology net{m};
    const auto g = net.explicit_graph();
    const auto r = find_hamiltonian_cycle(g);
    ASSERT_EQ(r.status, HamiltonianStatus::kFound) << "m=" << m;
    EXPECT_TRUE(is_hamiltonian_cycle(g, r.cycle)) << "m=" << m;
  }
}

TEST(Hamiltonian, VerifierRejectsBadCycles) {
  const auto g = cycle_graph(5);
  const auto r = find_hamiltonian_cycle(g);
  ASSERT_EQ(r.status, HamiltonianStatus::kFound);
  auto open = r.cycle;
  open.pop_back();
  EXPECT_FALSE(is_hamiltonian_cycle(g, open));
  auto repeat = r.cycle;
  repeat[1] = repeat[3];
  EXPECT_FALSE(is_hamiltonian_cycle(g, repeat));
  EXPECT_FALSE(is_hamiltonian_cycle(g, {}));
}

TEST(Hamiltonian, RejectsEmptyGraph) {
  EXPECT_THROW((void)find_hamiltonian_cycle(AdjacencyList{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace hhc::graph
