#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/dinic.hpp"

namespace hhc::graph {
namespace {

TEST(Dinic, SingleEdge) {
  Dinic net{2};
  net.add_edge(0, 1, 5);
  EXPECT_EQ(net.max_flow(0, 1), 5);
}

TEST(Dinic, SeriesTakesMinimum) {
  Dinic net{3};
  net.add_edge(0, 1, 7);
  net.add_edge(1, 2, 3);
  EXPECT_EQ(net.max_flow(0, 2), 3);
}

TEST(Dinic, ParallelPathsSum) {
  Dinic net{4};
  net.add_edge(0, 1, 2);
  net.add_edge(1, 3, 2);
  net.add_edge(0, 2, 3);
  net.add_edge(2, 3, 3);
  EXPECT_EQ(net.max_flow(0, 3), 5);
}

TEST(Dinic, ClassicTextbookNetwork) {
  // CLRS-style example with a known max flow of 23.
  Dinic net{6};
  net.add_edge(0, 1, 16);
  net.add_edge(0, 2, 13);
  net.add_edge(1, 3, 12);
  net.add_edge(2, 1, 4);
  net.add_edge(2, 4, 14);
  net.add_edge(3, 2, 9);
  net.add_edge(3, 5, 20);
  net.add_edge(4, 3, 7);
  net.add_edge(4, 5, 4);
  EXPECT_EQ(net.max_flow(0, 5), 23);
}

TEST(Dinic, DisconnectedIsZero) {
  Dinic net{4};
  net.add_edge(0, 1, 10);
  net.add_edge(2, 3, 10);
  EXPECT_EQ(net.max_flow(0, 3), 0);
}

TEST(Dinic, RequiresAugmentingThroughReverseEdges) {
  // The greedy path 0-1-2-3 blocks the naive algorithm; max flow needs the
  // residual reverse edge. Classic "flow cancellation" diamond.
  Dinic net{4};
  net.add_edge(0, 1, 1);
  net.add_edge(0, 2, 1);
  net.add_edge(1, 2, 1);
  net.add_edge(1, 3, 1);
  net.add_edge(2, 3, 1);
  EXPECT_EQ(net.max_flow(0, 3), 2);
}

TEST(Dinic, FlowOnReportsPerEdgeFlow) {
  Dinic net{3};
  const auto e01 = net.add_edge(0, 1, 4);
  const auto e12 = net.add_edge(1, 2, 2);
  EXPECT_EQ(net.max_flow(0, 2), 2);
  EXPECT_EQ(net.flow_on(e01), 2);
  EXPECT_EQ(net.flow_on(e12), 2);
}

TEST(Dinic, RejectsBadInput) {
  Dinic net{2};
  EXPECT_THROW(net.add_edge(0, 5, 1), std::invalid_argument);
  EXPECT_THROW(net.add_edge(0, 1, -1), std::invalid_argument);
  EXPECT_THROW((void)net.max_flow(0, 0), std::invalid_argument);
  EXPECT_THROW((void)net.max_flow(0, 9), std::invalid_argument);
}

TEST(Dinic, ZeroCapacityEdgeCarriesNothing) {
  Dinic net{2};
  net.add_edge(0, 1, 0);
  EXPECT_EQ(net.max_flow(0, 1), 0);
}

TEST(Dinic, LargeUnitBipartiteMatching) {
  // Complete bipartite K_{8,8} with unit capacities: max flow = 8.
  constexpr std::uint32_t n = 8;
  Dinic net{2 * n + 2};
  const std::uint32_t s = 2 * n;
  const std::uint32_t t = 2 * n + 1;
  for (std::uint32_t i = 0; i < n; ++i) {
    net.add_edge(s, i, 1);
    net.add_edge(n + i, t, 1);
    for (std::uint32_t j = 0; j < n; ++j) net.add_edge(i, n + j, 1);
  }
  EXPECT_EQ(net.max_flow(s, t), 8);
}

}  // namespace
}  // namespace hhc::graph
