#include <gtest/gtest.h>

#include <stdexcept>

#include "util/options.hpp"

namespace hhc::util {
namespace {

Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Options{static_cast<int>(argv.size()), argv.data()};
}

TEST(Options, ParsesKeyValuePairs) {
  const auto o = parse({"--m", "3", "--pairs", "100"});
  EXPECT_EQ(o.get_int("m", 0), 3);
  EXPECT_EQ(o.get_int("pairs", 0), 100);
}

TEST(Options, ParsesEqualsForm) {
  const auto o = parse({"--m=4", "--name=test"});
  EXPECT_EQ(o.get_int("m", 0), 4);
  EXPECT_EQ(o.get("name", ""), "test");
}

TEST(Options, BooleanFlags) {
  const auto o = parse({"--verbose", "--m", "2"});
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_FALSE(o.get_bool("quiet", false));
  EXPECT_TRUE(o.has("verbose"));
  EXPECT_FALSE(o.has("quiet"));
}

TEST(Options, FallbacksWhenAbsent) {
  const auto o = parse({});
  EXPECT_EQ(o.get_int("m", 7), 7);
  EXPECT_DOUBLE_EQ(o.get_double("rate", 0.5), 0.5);
  EXPECT_EQ(o.get("name", "dflt"), "dflt");
}

TEST(Options, RejectsPositionalArguments) {
  EXPECT_THROW(parse({"stray"}), std::invalid_argument);
}

TEST(Options, RejectsMalformedNumbers) {
  const auto o = parse({"--m", "abc"});
  EXPECT_THROW((void)o.get_int("m", 0), std::invalid_argument);
}

TEST(Options, ParsesDoubles) {
  const auto o = parse({"--rate", "0.125"});
  EXPECT_DOUBLE_EQ(o.get_double("rate", 0), 0.125);
}

TEST(Options, RejectUnknownFlagsUndescribedKeys) {
  auto o = parse({"--typo", "1"});
  o.describe("m", "cluster dimension");
  EXPECT_THROW(o.reject_unknown(), std::invalid_argument);
}

TEST(Options, RejectUnknownAcceptsDescribedKeys) {
  auto o = parse({"--m", "1"});
  o.describe("m", "cluster dimension");
  EXPECT_NO_THROW(o.reject_unknown());
}

TEST(Options, NegativeValuesViaEquals) {
  // `--key value` treats a leading -- as the next option, so negative
  // numbers must use the = form; plain negatives still work as values.
  const auto o = parse({"--delta", "-3"});
  EXPECT_EQ(o.get_int("delta", 0), -3);
}

}  // namespace
}  // namespace hhc::util
