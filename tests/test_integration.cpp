// End-to-end scenarios crossing every module boundary: construct disjoint
// paths, disperse a message over them, push it through the simulator under
// faults, and reassemble — the full pipeline the paper's construction
// enables.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>

#include "baseline/maxflow_paths.hpp"
#include "baseline/single_path.hpp"
#include "core/dispersal.hpp"
#include "core/fault_routing.hpp"
#include "core/metrics.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"

namespace hhc {
namespace {

using core::HhcTopology;
using core::Node;

TEST(Integration, DispersalThroughSimulatorWithOnePathCut) {
  const HhcTopology net{3};
  const Node s = net.encode(11, 0b001);
  const Node t = net.encode(222, 0b110);

  std::vector<std::uint8_t> message(257);
  std::iota(message.begin(), message.end(), std::uint8_t{0});
  const auto plan = core::disperse(net, s, t, message);

  // Cut one fragment's path at its second node.
  core::FaultSet faults;
  faults.mark_faulty(plan.fragments[1].path[1]);

  sim::NetworkSimulator simulator{net};
  simulator.set_faults(faults);
  for (const auto& f : plan.fragments) simulator.inject(f.path, 0);
  const auto report = simulator.run();

  EXPECT_EQ(report.lost, 1u);
  EXPECT_EQ(report.delivered, plan.fragments.size() - 1);

  // Reassemble from the delivered fragments only.
  std::vector<core::Fragment> received;
  for (std::size_t i = 0; i < plan.fragments.size(); ++i) {
    if (simulator.packets()[i].delivered) received.push_back(plan.fragments[i]);
  }
  const auto out =
      core::reassemble(net.m(), plan.block_size, plan.message_size, received);
  EXPECT_EQ(out, message);
}

TEST(Integration, FaultRoutingBeatsFixedSinglePathUnderFaults) {
  // Statistical comparison on m=2: with exactly m faults the disjoint-path
  // router succeeds always; the fixed single-path router must fail at
  // least sometimes across the sample.
  const HhcTopology net{2};
  util::Xoshiro256 rng{2024};
  std::size_t single_failures = 0;
  const auto pairs = core::sample_pairs(net, 300, 8);
  for (const auto& [s, t] : pairs) {
    const auto faults = core::FaultSet::random(net, net.m(), s, t, rng);
    const auto multi = core::route_avoiding(net, s, t, faults);
    ASSERT_TRUE(multi.ok());
    if (baseline::fixed_single_route(net, s, t, faults).empty()) {
      ++single_failures;
    }
  }
  EXPECT_GT(single_failures, 0u);
}

TEST(Integration, ConstructiveContainerCloseToOptimalLongest) {
  // The max-flow baseline can pick globally shorter path systems; the
  // constructive container must stay within the additive O(m) envelope of
  // the optimal longest member.
  const HhcTopology net{2};
  const baseline::MaxflowBaseline exact{net};
  for (const auto& [s, t] : core::sample_pairs(net, 80, 77)) {
    const auto ours = core::node_disjoint_paths(net, s, t);
    const auto best = exact.disjoint_paths(s, t);
    EXPECT_LE(ours.max_length(),
              best.max_length() + net.cluster_dimensions() + 3 * net.m())
        << "s=" << s << " t=" << t;
  }
}

TEST(Integration, PermutationWorkloadDeliversEverythingFaultFree) {
  const HhcTopology net{3};
  sim::NetworkSimulator simulator{net};
  const auto flows = sim::permutation_traffic(net, 200, 55);
  for (const auto& f : flows) {
    simulator.inject(core::route(net, f.s, f.t), f.inject_time);
  }
  const auto report = simulator.run();
  EXPECT_EQ(report.delivered, flows.size());
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.stranded, 0u);
}

TEST(Integration, WideDiameterSampleBoundedByDiameterPlusMargin) {
  // Empirical wide-diameter check on m=2: the longest container member
  // over every node pair must stay within diameter + 2m + 2.
  const HhcTopology net{2};
  const unsigned diameter = core::exact_diameter(net);
  std::size_t worst = 0;
  for (Node s = 0; s < net.node_count(); ++s) {
    for (Node t = 0; t < net.node_count(); ++t) {
      if (s == t) continue;
      worst = std::max(worst,
                       core::node_disjoint_paths(net, s, t).max_length());
    }
  }
  EXPECT_LE(worst, diameter + 2 * net.m() + 2);
  EXPECT_GE(worst, diameter);  // a container cannot beat the diameter
}

TEST(Integration, BatchParallelConstructionOverAllScales) {
  util::ThreadPool pool{4};
  for (unsigned m = 1; m <= 5; ++m) {
    const HhcTopology net{m};
    const auto pairs = core::sample_pairs(net, 200, m * 13);
    const auto measures = core::measure_containers(net, pairs, &pool);
    ASSERT_EQ(measures.size(), pairs.size());
    for (const auto& meas : measures) {
      EXPECT_GT(meas.longest, 0u);
      EXPECT_LE(meas.shortest, meas.longest);
    }
  }
}

}  // namespace
}  // namespace hhc
