#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/maxflow_paths.hpp"
#include "baseline/single_path.hpp"
#include "core/metrics.hpp"
#include "core/routing.hpp"

namespace hhc::baseline {
namespace {

using core::FaultSet;
using core::HhcTopology;
using core::Node;

TEST(FixedSingleRoute, SucceedsWithoutFaults) {
  const HhcTopology net{2};
  for (const auto& [s, t] : core::sample_pairs(net, 50, 1)) {
    const auto p = fixed_single_route(net, s, t, FaultSet{});
    ASSERT_FALSE(p.empty());
    EXPECT_TRUE(core::is_valid_path(net, p, s, t));
  }
}

TEST(FixedSingleRoute, FailsWhenRouteBlocked) {
  const HhcTopology net{2};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(15, 3);
  const auto p = core::route(net, s, t);
  ASSERT_GE(p.size(), 3u);
  FaultSet faults;
  faults.mark_faulty(p[1]);
  EXPECT_TRUE(fixed_single_route(net, s, t, faults).empty());
}

TEST(FixedSingleRoute, UnrelatedFaultsDoNotBlock) {
  const HhcTopology net{2};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(15, 3);
  const auto p = core::route(net, s, t);
  FaultSet faults;
  // Pick a node not on the route.
  for (Node v = 0; v < net.node_count(); ++v) {
    if (std::find(p.begin(), p.end(), v) == p.end()) {
      faults.mark_faulty(v);
      break;
    }
  }
  EXPECT_FALSE(fixed_single_route(net, s, t, faults).empty());
}

TEST(AdaptiveBfsRoute, FindsDetourAroundFaults) {
  const HhcTopology net{2};
  const MaxflowBaseline base{net};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(15, 3);
  // Block the fixed route's second node; the oracle should still succeed.
  const auto fixed = core::route(net, s, t);
  FaultSet faults;
  faults.mark_faulty(fixed[1]);
  const auto p = adaptive_bfs_route(base.explicit_graph(), s, t, faults);
  ASSERT_FALSE(p.empty());
  EXPECT_TRUE(core::is_valid_path(net, p, s, t));
  for (const Node v : p) EXPECT_FALSE(faults.is_faulty(v));
}

TEST(AdaptiveBfsRoute, FailsOnlyWhenDisconnected) {
  const HhcTopology net{1};
  const MaxflowBaseline base{net};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(3, 1);
  FaultSet faults;
  for (const Node v : net.neighbors(s)) faults.mark_faulty(v);
  EXPECT_TRUE(adaptive_bfs_route(base.explicit_graph(), s, t, faults).empty());
}

TEST(AdaptiveBfsRoute, HandlesFaultyEndpoints) {
  const HhcTopology net{1};
  const MaxflowBaseline base{net};
  FaultSet faults;
  faults.mark_faulty(0);
  EXPECT_TRUE(adaptive_bfs_route(base.explicit_graph(), 0, 3, faults).empty());
  EXPECT_TRUE(adaptive_bfs_route(base.explicit_graph(), 3, 0, faults).empty());
}

TEST(AdaptiveBfsRoute, ReturnsShortestDetour) {
  const HhcTopology net{2};
  const MaxflowBaseline base{net};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(15, 3);
  const auto free_path = adaptive_bfs_route(base.explicit_graph(), s, t, {});
  const auto exact = core::bfs_shortest_path(net, s, t);
  EXPECT_EQ(free_path.size(), exact.size());
}

}  // namespace
}  // namespace hhc::baseline
