#include <gtest/gtest.h>

#include <set>

#include "sim/traffic.hpp"

namespace hhc::sim {
namespace {

using core::HhcTopology;
using core::Node;

TEST(Traffic, UniformRandomBasics) {
  const HhcTopology net{3};
  const auto flows = uniform_random_traffic(net, 500, 100, 42);
  ASSERT_EQ(flows.size(), 500u);
  for (const auto& f : flows) {
    EXPECT_NE(f.s, f.t);
    EXPECT_TRUE(net.contains(f.s));
    EXPECT_TRUE(net.contains(f.t));
    EXPECT_LE(f.inject_time, 100u);
  }
}

TEST(Traffic, UniformRandomDeterministic) {
  const HhcTopology net{2};
  const auto a = uniform_random_traffic(net, 100, 50, 7);
  const auto b = uniform_random_traffic(net, 100, 50, 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].s, b[i].s);
    EXPECT_EQ(a[i].t, b[i].t);
    EXPECT_EQ(a[i].inject_time, b[i].inject_time);
  }
}

TEST(Traffic, UniformZeroHorizonInjectsAtZero) {
  const HhcTopology net{2};
  for (const auto& f : uniform_random_traffic(net, 50, 0, 3)) {
    EXPECT_EQ(f.inject_time, 0u);
  }
}

TEST(Traffic, PermutationEndpointsAllDistinct) {
  const HhcTopology net{3};
  const auto flows = permutation_traffic(net, 100, 9);
  ASSERT_EQ(flows.size(), 100u);
  std::set<Node> endpoints;
  for (const auto& f : flows) {
    endpoints.insert(f.s);
    endpoints.insert(f.t);
    EXPECT_EQ(f.inject_time, 0u);
  }
  EXPECT_EQ(endpoints.size(), 200u);  // no endpoint reused anywhere
}

TEST(Traffic, PermutationRejectsOversubscription) {
  const HhcTopology net{1};  // 8 nodes
  EXPECT_THROW((void)permutation_traffic(net, 5, 1), std::invalid_argument);
  EXPECT_NO_THROW((void)permutation_traffic(net, 4, 1));
}

TEST(Traffic, HotspotAllTargetsAgree) {
  const HhcTopology net{2};
  const Node target = net.encode(7, 2);
  const auto flows = hotspot_traffic(net, 64, target, 5);
  for (const auto& f : flows) {
    EXPECT_EQ(f.t, target);
    EXPECT_NE(f.s, target);
  }
}

TEST(Traffic, HotspotRejectsBadTarget) {
  const HhcTopology net{1};
  EXPECT_THROW((void)hotspot_traffic(net, 4, 999, 5), std::invalid_argument);
}

}  // namespace
}  // namespace hhc::sim
