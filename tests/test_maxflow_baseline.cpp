#include <gtest/gtest.h>

#include <set>
#include <string>
#include "util/rng.hpp"

#include "baseline/maxflow_paths.hpp"
#include "core/metrics.hpp"

namespace hhc::baseline {
namespace {

using core::HhcTopology;
using core::Node;

TEST(MaxflowBaseline, ConnectivityIsAlwaysDegree) {
  // The HHC is (m+1)-connected: the baseline must report exactly m+1 for
  // every distinct pair. Exhaustive on m=1, sampled on m=2,3.
  {
    const HhcTopology net{1};
    const MaxflowBaseline exact{net};
    for (Node s = 0; s < net.node_count(); ++s) {
      for (Node t = s + 1; t < net.node_count(); ++t) {
        EXPECT_EQ(exact.connectivity(s, t), net.degree());
      }
    }
  }
  for (unsigned m = 2; m <= 3; ++m) {
    const HhcTopology net{m};
    const MaxflowBaseline exact{net};
    for (const auto& [s, t] : core::sample_pairs(net, 40, m)) {
      EXPECT_EQ(exact.connectivity(s, t), net.degree());
    }
  }
}

TEST(MaxflowBaseline, PathsVerifyAsDisjointContainer) {
  const HhcTopology net{2};
  const MaxflowBaseline exact{net};
  for (const auto& [s, t] : core::sample_pairs(net, 60, 4)) {
    const auto set = exact.disjoint_paths(s, t);
    std::string why;
    EXPECT_TRUE(core::verify_disjoint_path_set(net, set, s, t, &why))
        << "s=" << s << " t=" << t << ": " << why;
  }
}

TEST(MaxflowBaseline, OptimalContainerNeverLargerThanConstructive) {
  // Max flow finds a *maximum* system; the constructive algorithm must
  // produce the same cardinality (both equal m+1 by Menger).
  const HhcTopology net{3};
  const MaxflowBaseline exact{net};
  for (const auto& [s, t] : core::sample_pairs(net, 25, 9)) {
    EXPECT_EQ(exact.disjoint_paths(s, t).paths.size(),
              core::node_disjoint_paths(net, s, t).paths.size());
  }
}

TEST(MaxflowBaseline, OneToManyFanCoversAllTargets) {
  const HhcTopology net{2};
  const MaxflowBaseline exact{net};
  const Node s = net.encode(3, 1);
  // m+1 = 3 arbitrary distinct targets: a complete fan must exist by the
  // fan lemma in an (m+1)-connected graph.
  const std::vector<Node> targets{net.encode(9, 0), net.encode(12, 3),
                                  net.encode(0, 2)};
  const auto fans = exact.one_to_many(s, targets);
  ASSERT_EQ(fans.size(), targets.size());
  std::set<Node> interior;
  for (std::size_t i = 0; i < fans.size(); ++i) {
    ASSERT_FALSE(fans[i].empty());
    EXPECT_EQ(fans[i].front(), s);
    EXPECT_EQ(fans[i].back(), targets[i]);
    for (std::size_t j = 0; j + 1 < fans[i].size(); ++j) {
      EXPECT_TRUE(net.is_edge(fans[i][j], fans[i][j + 1]));
      if (j > 0) {
        EXPECT_TRUE(interior.insert(fans[i][j]).second)
            << "interior node shared across fan paths";
      }
    }
    // No fan path may pass through another target.
    for (std::size_t j = 1; j + 1 < fans[i].size(); ++j) {
      for (const Node other : targets) EXPECT_NE(fans[i][j], other);
    }
  }
}

TEST(MaxflowBaseline, OneToManyRandomizedM2) {
  const HhcTopology net{2};
  const MaxflowBaseline exact{net};
  util::Xoshiro256 rng{31};
  for (int trial = 0; trial < 40; ++trial) {
    const Node s = rng.below(net.node_count());
    std::set<Node> target_set;
    while (target_set.size() < net.degree()) {
      const Node t = rng.below(net.node_count());
      if (t != s) target_set.insert(t);
    }
    const std::vector<Node> targets(target_set.begin(), target_set.end());
    const auto fans = exact.one_to_many(s, targets);
    ASSERT_EQ(fans.size(), targets.size());
    std::set<Node> interior;
    for (const auto& p : fans) {
      for (std::size_t j = 1; j + 1 < p.size(); ++j) {
        EXPECT_TRUE(interior.insert(p[j]).second);
      }
    }
  }
}

TEST(MaxflowBaseline, OneToManyRejectsBadTargets) {
  const HhcTopology net{1};
  const MaxflowBaseline exact{net};
  const std::vector<Node> oob{net.node_count()};
  EXPECT_THROW((void)exact.one_to_many(0, oob), std::invalid_argument);
  const std::vector<Node> self{0};
  EXPECT_THROW((void)exact.one_to_many(0, self), std::invalid_argument);
}

TEST(MaxflowBaseline, RejectsOutOfRange) {
  const HhcTopology net{1};
  const MaxflowBaseline exact{net};
  EXPECT_THROW((void)exact.connectivity(0, 99), std::invalid_argument);
  EXPECT_THROW((void)exact.disjoint_paths(99, 0), std::invalid_argument);
}

TEST(MaxflowBaseline, ExplicitGraphExposed) {
  const HhcTopology net{2};
  const MaxflowBaseline exact{net};
  EXPECT_EQ(exact.explicit_graph().vertex_count(), net.node_count());
  EXPECT_EQ(exact.topology().m(), 2u);
}

}  // namespace
}  // namespace hhc::baseline
