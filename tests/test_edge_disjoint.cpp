#include <gtest/gtest.h>

#include "core/topology.hpp"
#include "cube/hypercube.hpp"
#include "graph/edge_disjoint.hpp"

namespace hhc::graph {
namespace {

AdjacencyList complete(std::size_t n) {
  AdjacencyList g{n};
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

TEST(EdgeDisjoint, CompleteGraphConnectivity) {
  const auto g = complete(5);
  EXPECT_EQ(edge_connectivity_between(g, 0, 4), 4u);
}

TEST(EdgeDisjoint, PathsAreEdgeDisjointAndValid) {
  const auto g = complete(5);
  const auto paths = max_edge_disjoint_paths(g, 0, 4);
  ASSERT_EQ(paths.size(), 4u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.front(), 0u);
    EXPECT_EQ(p.back(), 4u);
  }
  EXPECT_TRUE(paths_are_edge_disjoint(g, paths));
}

TEST(EdgeDisjoint, LimitRespected) {
  const auto g = complete(6);
  EXPECT_EQ(max_edge_disjoint_paths(g, 0, 5, 2).size(), 2u);
}

TEST(EdgeDisjoint, BridgeGivesOne) {
  // Two triangles joined by a single bridge edge.
  AdjacencyList g{6};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);  // bridge
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  EXPECT_EQ(edge_connectivity_between(g, 0, 5), 1u);
  const auto paths = max_edge_disjoint_paths(g, 0, 5);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths_are_edge_disjoint(g, paths));
}

TEST(EdgeDisjoint, EdgeVsVertexConnectivityOnCutVertex) {
  // A graph where the vertex cut is 1 but the edge cut is 2: two triangles
  // sharing vertex 2.
  AdjacencyList g{5};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  EXPECT_EQ(edge_connectivity_between(g, 0, 4), 2u);
  const auto paths = max_edge_disjoint_paths(g, 0, 4);
  EXPECT_EQ(paths.size(), 2u);
  EXPECT_TRUE(paths_are_edge_disjoint(g, paths));
}

TEST(EdgeDisjoint, HypercubeEdgeConnectivityEqualsN) {
  for (unsigned n = 2; n <= 5; ++n) {
    const auto g = cube::Hypercube{n}.explicit_graph();
    EXPECT_EQ(edge_connectivity_between(g, 0, (1u << n) - 1), n);
    const auto paths = max_edge_disjoint_paths(g, 0, (1u << n) - 1);
    EXPECT_EQ(paths.size(), n);
    EXPECT_TRUE(paths_are_edge_disjoint(g, paths));
  }
}

TEST(EdgeDisjoint, HhcEdgeConnectivityEqualsDegree) {
  // For the (m+1)-regular HHC, edge connectivity also equals m+1.
  for (unsigned m = 1; m <= 2; ++m) {
    const core::HhcTopology net{m};
    const auto g = net.explicit_graph();
    for (Vertex s = 0; s < net.node_count(); s += 5) {
      for (Vertex t = 0; t < net.node_count(); t += 7) {
        if (s == t) continue;
        EXPECT_EQ(edge_connectivity_between(g, s, t), net.degree())
            << "m=" << m << " s=" << s << " t=" << t;
      }
    }
  }
}

TEST(EdgeDisjoint, TwoCycleFlowsCancelled) {
  // A diamond where naive decomposition could route through both
  // directions of the middle edge; the result must still be edge-disjoint.
  AdjacencyList g{4};
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const auto paths = max_edge_disjoint_paths(g, 0, 3);
  EXPECT_EQ(paths.size(), 2u);
  EXPECT_TRUE(paths_are_edge_disjoint(g, paths));
}

TEST(EdgeDisjoint, ValidatorCatchesReuse) {
  const auto g = complete(4);
  const std::vector<VertexPath> good{{0, 1, 3}, {0, 2, 3}};
  EXPECT_TRUE(paths_are_edge_disjoint(g, good));
  const std::vector<VertexPath> reuse{{0, 1, 3}, {0, 1, 2, 3}};
  EXPECT_FALSE(paths_are_edge_disjoint(g, reuse));
  const std::vector<VertexPath> nonedge{{0, 1}, {1, 1}};
  EXPECT_FALSE(paths_are_edge_disjoint(g, nonedge));
}

TEST(EdgeDisjoint, RejectsDegenerate) {
  const auto g = complete(3);
  EXPECT_THROW((void)max_edge_disjoint_paths(g, 1, 1), std::invalid_argument);
  EXPECT_THROW((void)edge_connectivity_between(g, 0, 7),
               std::invalid_argument);
}

}  // namespace
}  // namespace hhc::graph
