#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "fault/campaign.hpp"

namespace hhc::fault {
namespace {

CampaignConfig small_config() {
  CampaignConfig config;
  config.m = 2;
  config.trials = 40;
  config.max_faults = 5;  // past m + 1 = 3
  config.seed = 7;
  return config;
}

TEST(FaultCampaign, GuaranteeHoldsUpToMFaults) {
  const auto report = CampaignRunner{small_config()}.run();
  ASSERT_EQ(report.rows.size(), 6u);
  for (const auto& row : report.rows) {
    if (row.faults <= 2) {  // |F| <= m: the paper's regime
      EXPECT_EQ(row.guaranteed, row.trials) << "f=" << row.faults;
      EXPECT_DOUBLE_EQ(row.success_rate(), 1.0);
      EXPECT_EQ(row.best_effort, 0u);
      EXPECT_EQ(row.disconnected, 0u);
    }
  }
}

TEST(FaultCampaign, EveryTrialIsAccountedFor) {
  const auto report = CampaignRunner{small_config()}.run();
  for (const auto& row : report.rows) {
    EXPECT_EQ(row.guaranteed + row.best_effort + row.disconnected, row.trials);
    EXPECT_EQ(row.node_faults + row.link_faults, row.faults);
  }
}

TEST(FaultCampaign, BeyondGuaranteeDegradesGracefully) {
  auto config = small_config();
  config.trials = 150;
  config.max_faults = 8;
  const auto report = CampaignRunner{config}.run();
  std::size_t fallbacks = 0;
  for (const auto& row : report.rows) {
    if (row.faults > 2) fallbacks += row.best_effort;
    if (row.delivered() > 0) {
      EXPECT_GT(row.avg_inflation, 0.0);
    }
  }
  // Past the guarantee the BFS fallback must actually rescue some trials
  // (blocked container but connected survivor subgraph).
  EXPECT_GT(fallbacks, 0u);
}

TEST(FaultCampaign, LinkFaultsEngageFallbackEarly) {
  auto config = small_config();
  config.trials = 120;
  config.link_fault_fraction = 1.0;  // every fault is a link fault
  const auto report = CampaignRunner{config}.run();
  std::size_t fallbacks = 0;
  for (const auto& row : report.rows) {
    EXPECT_EQ(row.node_faults, 0u);
    EXPECT_EQ(row.link_faults, row.faults);
    fallbacks += row.best_effort;
  }
  EXPECT_GT(fallbacks, 0u);
}

TEST(FaultCampaign, DeterministicAcrossThreadCounts) {
  auto serial = small_config();
  serial.threads = 1;
  auto parallel = small_config();
  parallel.threads = 4;
  const auto a = CampaignRunner{serial}.run();
  const auto b = CampaignRunner{parallel}.run();
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].guaranteed, b.rows[i].guaranteed) << "row " << i;
    EXPECT_EQ(a.rows[i].best_effort, b.rows[i].best_effort) << "row " << i;
    EXPECT_EQ(a.rows[i].disconnected, b.rows[i].disconnected) << "row " << i;
    EXPECT_DOUBLE_EQ(a.rows[i].avg_inflation, b.rows[i].avg_inflation)
        << "row " << i;
  }
}

TEST(FaultCampaign, CsvHasHeaderAndOneLinePerRow) {
  const auto report = CampaignRunner{small_config()}.run();
  const auto csv = report.to_csv();
  std::istringstream lines{csv};
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("faults,node_faults,link_faults", 0), 0u);
  std::size_t rows = 0;
  while (std::getline(lines, line)) ++rows;
  EXPECT_EQ(rows, report.rows.size());
}

TEST(FaultCampaign, JsonIsBalancedAndCarriesConfig) {
  const auto report = CampaignRunner{small_config()}.run();
  const auto json = report.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"rows\":["), std::string::npos);
  EXPECT_NE(json.find("\"guaranteed_rate\":"), std::string::npos);
  EXPECT_NE(json.find("\"m\":2"), std::string::npos);
  std::size_t depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      ASSERT_GT(depth, 0u);
      --depth;
    }
  }
  EXPECT_EQ(depth, 0u);
}

TEST(FaultCampaign, PrintsOneTableLinePerBudget) {
  const auto report = CampaignRunner{small_config()}.run();
  std::ostringstream os;
  report.print(os);
  EXPECT_NE(os.str().find("fault campaign: m=2"), std::string::npos);
  EXPECT_NE(os.str().find("guaranteed %"), std::string::npos);
}

TEST(FaultCampaign, DefaultSweepEndsPastThePlusOne) {
  CampaignConfig config;
  config.m = 1;
  config.trials = 10;
  config.seed = 3;
  const auto report = CampaignRunner{config}.run();
  // degree + 2 = m + 3 budgets, plus the zero-fault row.
  EXPECT_EQ(report.rows.size(), config.m + 4u);
  EXPECT_EQ(report.config.max_faults, config.m + 3u);
}

TEST(FaultCampaign, RejectsBadConfig) {
  CampaignConfig config;
  config.trials = 0;
  EXPECT_THROW(CampaignRunner{config}, std::invalid_argument);
  config = CampaignConfig{};
  config.link_fault_fraction = 1.5;
  EXPECT_THROW(CampaignRunner{config}, std::invalid_argument);
}

}  // namespace
}  // namespace hhc::fault
