#include <gtest/gtest.h>

#include <algorithm>

#include "core/local_routing.hpp"
#include "core/metrics.hpp"
#include "core/routing.hpp"

namespace hhc::core {
namespace {

TEST(LocalRouting, HeuristicIsZeroIffEqual) {
  const HhcTopology net{3};
  EXPECT_EQ(distance_heuristic(net, 42, 42), 0u);
  EXPECT_GT(distance_heuristic(net, 42, 43), 0u);
}

TEST(LocalRouting, HeuristicNeverExceedsDistance) {
  // Admissibility on a small instance: heuristic <= BFS distance.
  const HhcTopology net{2};
  for (Node s = 0; s < net.node_count(); s += 3) {
    const auto dist = bfs_distances(net, s);
    for (Node t = 0; t < net.node_count(); ++t) {
      EXPECT_LE(distance_heuristic(net, t, s), dist[t]) << s << "->" << t;
    }
  }
}

TEST(LocalRouting, TrivialAndFaultFree) {
  const HhcTopology net{2};
  const auto self = local_fault_route(net, 7, 7, FaultSet{});
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self.path, Path{7});

  for (const auto& [s, t] : sample_pairs(net, 100, 3)) {
    const auto r = local_fault_route(net, s, t, FaultSet{});
    ASSERT_TRUE(r.ok()) << s << "->" << t;
    EXPECT_TRUE(is_valid_path(net, r.path, s, t));
  }
}

TEST(LocalRouting, GreedyIsShortWithoutFaults) {
  // With no faults the greedy heuristic descends monotonically most of the
  // time; require at most 2x the constructive route length.
  const HhcTopology net{3};
  for (const auto& [s, t] : sample_pairs(net, 200, 5)) {
    const auto local = local_fault_route(net, s, t, FaultSet{});
    ASSERT_TRUE(local.ok());
    const auto constructive = route(net, s, t);
    EXPECT_LE(local.path.size(), 2 * constructive.size())
        << s << "->" << t;
  }
}

TEST(LocalRouting, GuaranteedUnderMFaults) {
  // f <= m cannot disconnect the (m+1)-connected HHC, and the DFS explores
  // exhaustively, so it must succeed.
  for (unsigned m = 1; m <= 4; ++m) {
    const HhcTopology net{m};
    util::Xoshiro256 rng{44 + m};
    for (const auto& [s, t] : sample_pairs(net, 100, 10 + m)) {
      const auto faults = FaultSet::random(net, m, s, t, rng);
      const auto r = local_fault_route(net, s, t, faults);
      ASSERT_TRUE(r.ok()) << "m=" << m << " s=" << s << " t=" << t;
      EXPECT_TRUE(is_valid_path(net, r.path, s, t));
      for (const Node v : r.path) EXPECT_FALSE(faults.is_faulty(v));
    }
  }
}

TEST(LocalRouting, BacktracksAroundBlockedNeighborhood) {
  const HhcTopology net{3};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(255, 7);
  // Block the m most-promising neighbors of s, forcing detours.
  auto nbrs = net.neighbors(s);
  std::sort(nbrs.begin(), nbrs.end(), [&](Node a, Node b) {
    return distance_heuristic(net, a, t) < distance_heuristic(net, b, t);
  });
  FaultSet faults;
  for (unsigned i = 0; i < net.m(); ++i) faults.mark_faulty(nbrs[i]);
  const auto r = local_fault_route(net, s, t, faults);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.path[1], nbrs.back());  // only the worst neighbor survives
}

TEST(LocalRouting, FailsWhenDisconnected) {
  const HhcTopology net{1};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(3, 1);
  FaultSet faults;
  for (const Node v : net.neighbors(s)) faults.mark_faulty(v);
  const auto r = local_fault_route(net, s, t, faults);
  EXPECT_FALSE(r.ok());
}

TEST(LocalRouting, StepBudgetRespected) {
  const HhcTopology net{4};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(net.cluster_count() - 1, net.cluster_size() - 1);
  const auto r = local_fault_route(net, s, t, FaultSet{}, /*max_steps=*/3);
  EXPECT_FALSE(r.ok());
  EXPECT_LE(r.steps, 3u);
}

TEST(LocalRouting, ScratchOverloadMatchesLegacy) {
  // Identical walk, not merely an equivalent one: the scratch overload must
  // reproduce the legacy path AND the step/backtrack telemetry, with and
  // without faults and under a step budget.
  LocalRouteScratch scratch;
  for (unsigned m = 2; m <= 3; ++m) {
    const HhcTopology net{m};
    util::Xoshiro256 rng{0x10CA1 + m};
    for (const auto& [s, t] : sample_pairs(net, 120, 55 + m)) {
      const auto faults = FaultSet::random(net, m, s, t, rng);
      const auto legacy = local_fault_route(net, s, t, faults);
      const auto view = local_fault_route(net, s, t, faults, 0, scratch);
      ASSERT_EQ(view.ok(), legacy.ok()) << "m=" << m << " " << s << "->" << t;
      ASSERT_TRUE(std::equal(view.path.begin(), view.path.end(),
                             legacy.path.begin(), legacy.path.end()));
      EXPECT_EQ(view.steps, legacy.steps);
      EXPECT_EQ(view.backtracks, legacy.backtracks);
    }
  }
  // Budget-capped failure agrees too.
  const HhcTopology net{4};
  const Node s = net.encode(0, 0);
  const Node t = net.encode(net.cluster_count() - 1, net.cluster_size() - 1);
  const auto capped = local_fault_route(net, s, t, FaultSet{}, 3, scratch);
  EXPECT_FALSE(capped.ok());
  EXPECT_LE(capped.steps, 3u);
}

TEST(LocalRouting, RejectsFaultyEndpoints) {
  const HhcTopology net{2};
  FaultSet faults;
  faults.mark_faulty(5);
  EXPECT_THROW((void)local_fault_route(net, 5, 9, faults),
               std::invalid_argument);
  EXPECT_THROW((void)local_fault_route(net, 9, 5, faults),
               std::invalid_argument);
}

TEST(LocalRouting, WorksAtImplicitScaleM5) {
  const HhcTopology net{5};
  util::Xoshiro256 rng{77};
  for (const auto& [s, t] : sample_pairs(net, 30, 21)) {
    const auto faults = FaultSet::random(net, net.m(), s, t, rng);
    const auto r = local_fault_route(net, s, t, faults);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(is_valid_path(net, r.path, s, t));
  }
}

}  // namespace
}  // namespace hhc::core
