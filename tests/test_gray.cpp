#include <gtest/gtest.h>

#include <set>

#include "cube/gray.hpp"
#include "util/bitops.hpp"

namespace hhc::cube {
namespace {

TEST(Gray, FirstCodewords) {
  EXPECT_EQ(gray(0), 0u);
  EXPECT_EQ(gray(1), 1u);
  EXPECT_EQ(gray(2), 3u);
  EXPECT_EQ(gray(3), 2u);
  EXPECT_EQ(gray(4), 6u);
}

TEST(Gray, RankInvertsGray) {
  for (std::uint64_t i = 0; i < 4096; ++i) {
    EXPECT_EQ(gray_rank(gray(i)), i);
    EXPECT_EQ(gray(gray_rank(i)), i);
  }
}

TEST(Gray, CycleVisitsEveryWordOnce) {
  const auto cycle = gray_cycle(5);
  ASSERT_EQ(cycle.size(), 32u);
  const std::set<std::uint64_t> distinct(cycle.begin(), cycle.end());
  EXPECT_EQ(distinct.size(), 32u);
  for (const auto v : cycle) EXPECT_LT(v, 32u);
}

TEST(Gray, ConsecutiveCodewordsDifferByOneBit) {
  const auto cycle = gray_cycle(6);
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const auto next = cycle[(i + 1) % cycle.size()];
    EXPECT_EQ(bits::hamming(cycle[i], next), 1)
        << "at index " << i << ": " << cycle[i] << " -> " << next;
  }
}

TEST(Gray, CycleRejectsBadM) {
  EXPECT_THROW((void)gray_cycle(0), std::invalid_argument);
  EXPECT_THROW((void)gray_cycle(21), std::invalid_argument);
}

TEST(Gray, OrderAlongCycleSortsByRank) {
  const std::vector<std::uint64_t> values{2, 1, 3, 0};
  const auto ordered = order_along_gray_cycle(values);
  // Ranks: gray_rank(0)=0, (1)=1, (3)=2, (2)=3.
  const std::vector<std::uint64_t> expected{0, 1, 3, 2};
  EXPECT_EQ(ordered, expected);
}

TEST(Gray, OrderedSubsetHammingSumBounded) {
  // Key property used by the length analysis: for any subset of m-bit
  // words ordered along the Gray cycle, the cyclic sum of Hamming
  // distances between consecutive elements is at most 2^m.
  constexpr unsigned m = 5;
  const std::vector<std::uint64_t> subset{3, 17, 9, 30, 12, 5, 24};
  const auto ordered = order_along_gray_cycle(subset);
  int total = 0;
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    total += bits::hamming(ordered[i], ordered[(i + 1) % ordered.size()]);
  }
  EXPECT_LE(total, 1 << m);
}

TEST(Gray, EmptyAndSingletonOrder) {
  EXPECT_TRUE(order_along_gray_cycle({}).empty());
  const auto one = order_along_gray_cycle({7});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 7u);
}

}  // namespace
}  // namespace hhc::cube
