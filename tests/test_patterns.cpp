#include <gtest/gtest.h>

#include <set>

#include "sim/patterns.hpp"

namespace hhc::sim {
namespace {

using core::HhcTopology;
using core::Node;

constexpr Pattern kAll[] = {Pattern::kComplement, Pattern::kReverse,
                            Pattern::kRotate, Pattern::kShuffle,
                            Pattern::kTornado};

TEST(Patterns, EveryPatternIsAPermutation) {
  for (unsigned m = 1; m <= 3; ++m) {
    const HhcTopology net{m};
    for (const Pattern p : kAll) {
      std::set<Node> images;
      for (Node v = 0; v < net.node_count(); ++v) {
        const Node dest = apply_pattern(net, p, v);
        EXPECT_TRUE(net.contains(dest));
        EXPECT_TRUE(images.insert(dest).second)
            << pattern_name(p) << " not injective at v=" << v;
      }
      EXPECT_EQ(images.size(), net.node_count());
    }
  }
}

TEST(Patterns, ComplementHasNoFixedPoints) {
  const HhcTopology net{2};
  for (Node v = 0; v < net.node_count(); ++v) {
    EXPECT_NE(apply_pattern(net, Pattern::kComplement, v), v);
  }
}

TEST(Patterns, ComplementIsInvolution) {
  const HhcTopology net{3};
  for (Node v = 0; v < net.node_count(); v += 17) {
    const Node w = apply_pattern(net, Pattern::kComplement, v);
    EXPECT_EQ(apply_pattern(net, Pattern::kComplement, w), v);
  }
}

TEST(Patterns, ReverseIsInvolution) {
  const HhcTopology net{3};
  for (Node v = 0; v < net.node_count(); v += 13) {
    const Node w = apply_pattern(net, Pattern::kReverse, v);
    EXPECT_EQ(apply_pattern(net, Pattern::kReverse, w), v);
  }
}

TEST(Patterns, ShuffleUndoneByRepetition) {
  // n rotations by 1 return to the original value.
  const HhcTopology net{2};
  const unsigned n = net.address_bits();
  for (Node v = 0; v < net.node_count(); v += 7) {
    Node w = v;
    for (unsigned i = 0; i < n; ++i) w = apply_pattern(net, Pattern::kShuffle, w);
    EXPECT_EQ(w, v);
  }
}

TEST(Patterns, KnownValues) {
  const HhcTopology net{2};  // n = 6 bits
  EXPECT_EQ(apply_pattern(net, Pattern::kComplement, 0b000000), 0b111111u);
  EXPECT_EQ(apply_pattern(net, Pattern::kReverse, 0b000001), 0b100000u);
  EXPECT_EQ(apply_pattern(net, Pattern::kRotate, 0b000111), 0b111000u);
  EXPECT_EQ(apply_pattern(net, Pattern::kShuffle, 0b100000), 0b000001u);
  EXPECT_EQ(apply_pattern(net, Pattern::kTornado, 0), 31u);  // N/2 - 1
}

TEST(Patterns, TrafficSkipsFixedPoints) {
  const HhcTopology net{2};
  for (const Pattern p : kAll) {
    const auto flows = pattern_traffic(net, p);
    for (const auto& f : flows) {
      EXPECT_NE(f.s, f.t);
      EXPECT_EQ(f.inject_time, 0u);
      EXPECT_EQ(apply_pattern(net, p, f.s), f.t);
    }
    EXPECT_LE(flows.size(), net.node_count());
    EXPECT_GE(flows.size(), net.node_count() - 16);  // few palindromes
  }
}

TEST(Patterns, RejectsBadInput) {
  const HhcTopology net{2};
  EXPECT_THROW((void)apply_pattern(net, Pattern::kReverse, net.node_count()),
               std::invalid_argument);
  const HhcTopology big{4};
  EXPECT_THROW((void)pattern_traffic(big, Pattern::kShuffle),
               std::invalid_argument);
}

}  // namespace
}  // namespace hhc::sim
