// The scoped-tracing machinery: disabled spans record nothing, enabled
// spans land on per-thread rings (bounded, drop-oldest), drains merge and
// sort across threads, and the Chrome exporter emits the structure
// chrome://tracing expects. The multi-thread tests run under
// ThreadSanitizer in CI. All tests share the process-global Tracer, so
// each one starts with enable() (which drops prior events) and ends
// disabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hhc::obs {
namespace {

class ObsTrace : public ::testing::Test {
 protected:
  void TearDown() override {
    Tracer::disable();
    Tracer::clear();
  }
};

TEST_F(ObsTrace, DisabledSpansRecordNothing) {
  Tracer::enable();
  Tracer::disable();
  Tracer::clear();
  { TraceSpan span{"quiet"}; }
  EXPECT_TRUE(Tracer::drain().empty());
  EXPECT_EQ(Tracer::dropped(), 0u);
}

TEST_F(ObsTrace, EnabledSpanRecordsNameAndDuration) {
  Tracer::enable();
  {
    TraceSpan span{"work"};
  }
  Tracer::disable();
  const auto events = Tracer::drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "work");
}

TEST_F(ObsTrace, NestedSpansAreContained) {
  Tracer::enable();
  {
    TraceSpan outer{"outer"};
    { TraceSpan inner{"inner"}; }
  }
  Tracer::disable();
  auto events = Tracer::drain();
  ASSERT_EQ(events.size(), 2u);
  // Inner destructs first, so it appears first only after sorting by start;
  // find each by name instead of relying on order.
  const auto by_name = [&](const char* name) {
    return std::find_if(events.begin(), events.end(), [&](const TraceEvent& e) {
      return std::string{e.name} == name;
    });
  };
  const auto outer = by_name("outer");
  const auto inner = by_name("inner");
  ASSERT_NE(outer, events.end());
  ASSERT_NE(inner, events.end());
  EXPECT_GE(inner->start_nanos, outer->start_nanos);
  EXPECT_LE(inner->start_nanos + inner->dur_nanos,
            outer->start_nanos + outer->dur_nanos);
}

TEST_F(ObsTrace, RingDropsOldestWhenFull) {
  Tracer::enable(/*events_per_thread=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span{"s"};
  }
  Tracer::disable();
  EXPECT_EQ(Tracer::drain().size(), 4u);
  EXPECT_EQ(Tracer::dropped(), 6u);

  // The survivors are the NEWEST events: their start times must all be at
  // or after every dropped one's — verified by re-filling with two phases.
  Tracer::enable(/*events_per_thread=*/2);
  { TraceSpan span{"old"}; }
  { TraceSpan span{"old"}; }
  { TraceSpan span{"new"}; }
  { TraceSpan span{"new"}; }
  Tracer::disable();
  const auto events = Tracer::drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "new");
  EXPECT_STREQ(events[1].name, "new");
}

TEST_F(ObsTrace, EnableResetsBufferedEventsAndEpoch) {
  Tracer::enable();
  { TraceSpan span{"before"}; }
  Tracer::enable();  // restart: drops "before"
  { TraceSpan span{"after"}; }
  Tracer::disable();
  const auto events = Tracer::drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "after");
}

TEST_F(ObsTrace, ThreadsGetDistinctTids) {
  constexpr std::size_t kThreads = 4;
  Tracer::enable();
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([] {
      for (int j = 0; j < 50; ++j) {
        TraceSpan span{"worker"};
      }
    });
  }
  for (auto& t : threads) t.join();
  Tracer::disable();

  const auto events = Tracer::drain();
  EXPECT_EQ(events.size(), kThreads * 50);
  std::vector<std::uint32_t> tids;
  for (const auto& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), kThreads);

  // Drains are sorted by start time across all rings.
  const bool sorted = std::is_sorted(
      events.begin(), events.end(), [](const TraceEvent& a, const TraceEvent& b) {
        return a.start_nanos < b.start_nanos;
      });
  EXPECT_TRUE(sorted);
}

TEST_F(ObsTrace, SpanFeedsStageHistogram) {
  Histogram hist;
  Tracer::enable();
  {
    TraceSpan span{"timed", &hist};
  }
  Tracer::disable();
  EXPECT_EQ(hist.snapshot().count, 1u);

  // Disabled spans must not touch the histogram either.
  {
    TraceSpan span{"timed", &hist};
  }
  EXPECT_EQ(hist.snapshot().count, 1u);
}

TEST_F(ObsTrace, ChromeExportShapesEvents) {
  Tracer::enable();
  { TraceSpan span{"alpha"}; }
  { TraceSpan span{"beta"}; }
  Tracer::disable();
  const auto events = Tracer::drain();
  const std::string json = to_chrome_trace_json(events);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);

  const std::string csv = to_trace_csv(events);
  EXPECT_NE(csv.find("name,tid,start_us,dur_us"), std::string::npos);
  EXPECT_NE(csv.find("alpha"), std::string::npos);
}

TEST_F(ObsTrace, ConcurrentSpansWhileDraining) {
  constexpr std::size_t kThreads = 4;
  Tracer::enable(/*events_per_thread=*/256);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (std::size_t i = 0; i < kThreads; ++i) {
    writers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        TraceSpan span{"hot"};
      }
    });
  }
  for (int i = 0; i < 100; ++i) {
    const auto events = Tracer::drain();
    EXPECT_LE(events.size(), kThreads * 256 + kThreads);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
  Tracer::disable();
}

}  // namespace
}  // namespace hhc::obs
