// Short deterministic soak runs (< 60 s even under sanitizers) asserting
// the overload contract end to end: no stuck queries, bounded deadline
// overrun, deterministic breaker sheds on the hostile pair, and recovery
// after scheduled repairs. Timing-derived fields (percentiles, EWMA) are
// machine-dependent, so every assertion here is an invariant, not an exact
// latency value.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "sim/soak.hpp"

namespace hhc::sim {
namespace {

SoakConfig base_config() {
  SoakConfig config;
  config.m = 1;  // 8-node clusters keep sanitizer runs well under a minute
  config.epochs = 6;
  config.queries_per_epoch = 64;
  config.workers = 2;
  config.max_queued = 1024;  // no door sheds unless a test wants them
  config.fault_rate = 0.5;
  config.seed = 11;
  return config;
}

TEST(Soak, EveryArrivalIsAccountedForAndNoneGetStuck) {
  const SoakReport report = run_soak(base_config());
  EXPECT_EQ(report.stuck, 0u);
  EXPECT_EQ(report.completed + report.door_shed, report.offered);
  // Outcome partition over completed queries.
  EXPECT_EQ(report.ok + report.shed + report.timed_out, report.completed);
  EXPECT_EQ(report.epochs.size(), base_config().epochs);
}

TEST(Soak, DeadlinesNeverOverrunByMoreThanTheContractSlack) {
  SoakConfig config = base_config();
  config.deadline_us = 2000.0;
  config.admission.max_in_flight = 2;
  config.admission.policy = query::AdmissionPolicy::kQueue;
  const SoakReport report = run_soak(config);

  EXPECT_EQ(report.stuck, 0u);
  // The cooperative-cancellation contract: completion past a deadline is
  // bounded by one stage-check interval. The slack here is generous (far
  // beyond 64 BFS expansions) because sanitizer builds and CI preemption
  // stretch wall time, but a service that parks a query past its deadline
  // blows through even this.
  EXPECT_LT(report.max_overrun_us, 100000.0);  // 100 ms
}

TEST(Soak, HostilePairTripsTheBreakerDeterministically) {
  SoakConfig config = base_config();
  config.fault_rate = 1.0;  // every epoch severs the hostile node
  config.queries_per_epoch = 0;  // hostile traffic only: exact counts below
  config.hostile_per_epoch = 6;
  config.admission.breaker_threshold = 3;
  const SoakReport report = run_soak(config);

  // Each epoch: 3 authoritative disconnects open the breaker, the other 3
  // hostile queries short-circuit to kShed.
  EXPECT_EQ(report.breaker_trips, config.epochs);
  EXPECT_EQ(report.breaker_short_circuits, 3 * config.epochs);
  EXPECT_GE(report.shed, report.breaker_short_circuits);
  EXPECT_EQ(report.stuck, 0u);
}

TEST(Soak, OkRateRecoversAfterRepairs) {
  SoakConfig config = base_config();
  config.hostile_per_epoch = 4;
  config.admission.breaker_threshold = 2;
  config.repair_after = 1;  // every outage heals before the next epoch
  const SoakReport report = run_soak(config);

  std::size_t faulted = 0, healed = 0;
  for (const SoakEpoch& epoch : report.epochs) {
    (epoch.faults_active > 0 ? faulted : healed) += 1;
  }
  ASSERT_GT(faulted, 0u) << "seed produced no outage epochs; pick another";
  ASSERT_GT(healed, 0u) << "seed produced no healed epochs; pick another";
  // Repairs restore full service: healed epochs answer everything
  // authoritatively, so recovery is monotone across the repair boundary.
  EXPECT_DOUBLE_EQ(report.healed_ok_rate, 1.0);
  EXPECT_GE(report.healed_ok_rate, report.faulted_ok_rate);
}

TEST(Soak, SingleWorkerRunsAreFullyDeterministic) {
  SoakConfig config = base_config();
  config.workers = 1;  // serial consumption: even breaker streaks replay
  config.admission.breaker_threshold = 2;
  const SoakReport a = run_soak(config);
  const SoakReport b = run_soak(config);

  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.timed_out, b.timed_out);
  EXPECT_EQ(a.disconnected, b.disconnected);
  EXPECT_EQ(a.breaker_trips, b.breaker_trips);
  EXPECT_EQ(a.breaker_short_circuits, b.breaker_short_circuits);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].faults_active, b.epochs[i].faults_active);
    EXPECT_EQ(a.epochs[i].ok, b.epochs[i].ok);
    EXPECT_EQ(a.epochs[i].shed, b.epochs[i].shed);
    EXPECT_EQ(a.epochs[i].disconnected, b.epochs[i].disconnected);
  }
}

TEST(Soak, DoorShedsKickInWhenTheArrivalQueueIsBounded) {
  SoakConfig config = base_config();
  config.queries_per_epoch = 512;
  config.workers = 1;
  config.max_queued = 0;  // admit only into an empty queue: sheds guaranteed
  const SoakReport report = run_soak(config);
  EXPECT_GT(report.door_shed, 0u);
  EXPECT_EQ(report.completed + report.door_shed, report.offered);
  EXPECT_EQ(report.stuck, 0u);
}

TEST(Soak, ClosedLoopAccountsEveryArrivalWithNoDoorSheds) {
  SoakConfig config = base_config();
  config.closed_loop = true;
  config.workers = 4;
  const SoakReport report = run_soak(config);
  EXPECT_EQ(report.stuck, 0u);
  EXPECT_EQ(report.door_shed, 0u);  // issue-on-completion never door-sheds
  EXPECT_EQ(report.completed, report.offered);
  EXPECT_EQ(report.ok + report.shed + report.timed_out, report.completed);
  EXPECT_GT(report.goodput_qps(), 0.0);
}

TEST(Soak, ClosedLoopConsumesTheSameSeededQueryStream) {
  // Both arrival models draw (s, t) pairs from the seeded RNG in the same
  // order, so single-stream closed-loop and single-worker open-loop runs
  // of one seed answer the SAME queries — the outcome mix (which ignores
  // timing) must match exactly when nothing sheds or expires.
  SoakConfig open = base_config();
  open.workers = 1;
  open.admission.breaker_threshold = 2;
  SoakConfig closed = open;
  closed.closed_loop = true;

  const SoakReport a = run_soak(open);
  const SoakReport b = run_soak(closed);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.disconnected, b.disconnected);
  EXPECT_EQ(a.breaker_trips, b.breaker_trips);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].faults_active, b.epochs[i].faults_active);
    EXPECT_EQ(a.epochs[i].ok, b.epochs[i].ok);
    EXPECT_EQ(a.epochs[i].disconnected, b.epochs[i].disconnected);
  }
}

TEST(Soak, ReportRendersCsvAndJson) {
  SoakConfig config = base_config();
  config.epochs = 2;
  config.queries_per_epoch = 16;
  const SoakReport report = run_soak(config);

  const std::string csv = report.to_csv();
  EXPECT_NE(csv.find("epoch,faults,offered"), std::string::npos);
  // Header + one row per epoch + the total row.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            config.epochs + 1);

  const std::string json = report.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"stuck\":0"), std::string::npos);
  EXPECT_NE(json.find("\"healed_ok_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"closed_loop\":false"), std::string::npos);
  EXPECT_NE(json.find("\"goodput_qps\""), std::string::npos);
}

}  // namespace
}  // namespace hhc::sim
