// The metric registry and its lock-free primitives. The histogram tests pin
// the exact power-of-two bucket geometry (bucket b = [2^(b-1), 2^b)) and the
// percentile semantics that PR'd alongside the telemetry fixes: p = 0 skips
// empty leading buckets, out-of-range p and empty histograms throw — the
// pre-obs LatencyHistogram silently reported 1µs for both. The concurrent
// tests run under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace hhc::obs {
namespace {

TEST(ObsCounter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.get(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.get(), 42u);
  c.reset();
  EXPECT_EQ(c.get(), 0u);
}

TEST(ObsGauge, SetAddNegative) {
  Gauge g;
  g.set(-7);
  EXPECT_EQ(g.get(), -7);
  g.add(10);
  EXPECT_EQ(g.get(), 3);
  g.reset();
  EXPECT_EQ(g.get(), 0);
}

// ---------------------------------------------------------------------------
// Histogram bucket geometry
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BucketBoundaries) {
  // Bucket 0: everything below 1. Bucket b >= 1: [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::bucket_of(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(0.999), 0u);
  EXPECT_EQ(Histogram::bucket_of(1.0), 1u);
  EXPECT_EQ(Histogram::bucket_of(1.999), 1u);
  EXPECT_EQ(Histogram::bucket_of(2.0), 2u);
  EXPECT_EQ(Histogram::bucket_of(3.999), 2u);
  EXPECT_EQ(Histogram::bucket_of(4.0), 3u);
  for (std::size_t b = 1; b + 1 < Histogram::kBuckets; ++b) {
    const double edge = std::ldexp(1.0, static_cast<int>(b - 1));
    EXPECT_EQ(Histogram::bucket_of(edge), b) << "lower edge of bucket " << b;
    EXPECT_EQ(Histogram::bucket_of(std::nextafter(edge * 2.0, 0.0)), b)
        << "upper edge of bucket " << b;
  }
}

TEST(ObsHistogram, NanAndNegativeClampToBucketZero) {
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<double>::quiet_NaN()), 0u);
  EXPECT_EQ(Histogram::bucket_of(-1.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(-std::numeric_limits<double>::infinity()), 0u);

  Histogram h;
  h.record(std::numeric_limits<double>::quiet_NaN());
  h.record(-123.0);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.max_value, 0.0);  // NaN/negatives never become the max
}

TEST(ObsHistogram, TopBucketSaturates) {
  const std::size_t top = Histogram::kBuckets - 1;
  EXPECT_EQ(Histogram::bucket_of(std::ldexp(1.0, 62)), top);
  EXPECT_EQ(Histogram::bucket_of(std::ldexp(1.0, 200)), top);
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<double>::infinity()), top);

  Histogram h;
  h.record(std::ldexp(1.0, 100));
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.buckets[top], 1u);
  EXPECT_EQ(snap.max_value, std::ldexp(1.0, 100));
}

// ---------------------------------------------------------------------------
// Percentile semantics
// ---------------------------------------------------------------------------

TEST(ObsHistogram, PercentileSkipsEmptyLeadingBuckets) {
  // The historical bug: with nothing in bucket 0, p = 0 computed target = 0,
  // which the empty bucket 0 "satisfied", reporting a phantom 1µs.
  Histogram h;
  h.record(100.0);  // bucket 7: [64, 128)
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.percentile(0.0), 128.0);
  EXPECT_EQ(snap.percentile(0.5), 128.0);
  EXPECT_EQ(snap.percentile(1.0), 128.0);
}

TEST(ObsHistogram, PercentileAtMedianAndTail) {
  Histogram h;
  for (int i = 0; i < 50; ++i) h.record(1.5);    // bucket 1, edge 2
  for (int i = 0; i < 49; ++i) h.record(10.0);   // bucket 4, edge 16
  h.record(1000.0);                              // bucket 10, edge 1024
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.percentile(0.0), 2.0);    // first non-empty bucket's edge
  EXPECT_EQ(snap.percentile(0.5), 2.0);    // sample 50 still in bucket 1
  EXPECT_EQ(snap.percentile(0.51), 16.0);  // sample 51 is in bucket 4
  EXPECT_EQ(snap.percentile(0.99), 16.0);
  EXPECT_EQ(snap.percentile(1.0), 1024.0);
}

TEST(ObsHistogram, PercentileErrorSemantics) {
  Histogram empty;
  EXPECT_THROW((void)empty.snapshot().percentile(0.5), std::invalid_argument);

  Histogram h;
  h.record(1.0);
  const auto snap = h.snapshot();
  EXPECT_THROW((void)snap.percentile(-0.01), std::invalid_argument);
  EXPECT_THROW((void)snap.percentile(1.01), std::invalid_argument);
  EXPECT_THROW(
      (void)snap.percentile(std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
}

TEST(ObsHistogram, ResetZeroesEverything) {
  Histogram h;
  h.record(5.0);
  h.reset();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.max_value, 0.0);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ObsRegistry, ReturnsStableReferencesPerName) {
  MetricRegistry registry;
  Counter& a = registry.counter("alpha");
  Counter& b = registry.counter("alpha");
  EXPECT_EQ(&a, &b);
  // Kinds have separate namespaces: a histogram may share a counter's name.
  (void)registry.histogram("alpha");
  a.inc(3);
  EXPECT_EQ(registry.counter("alpha").get(), 3u);
}

TEST(ObsRegistry, SnapshotIsNameSortedAndComplete) {
  MetricRegistry registry;
  registry.counter("zeta").inc(1);
  registry.counter("beta").inc(2);
  registry.gauge("depth").set(-4);
  registry.histogram("lat").record(3.0);

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "beta");
  EXPECT_EQ(snap.counters[0].second, 2u);
  EXPECT_EQ(snap.counters[1].first, "zeta");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -4);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
}

TEST(ObsRegistry, ResetKeepsRegistrationsAndReferences) {
  MetricRegistry registry;
  Counter& c = registry.counter("events");
  c.inc(9);
  registry.reset();
  EXPECT_EQ(c.get(), 0u);  // same object, zeroed
  c.inc();
  EXPECT_EQ(registry.counter("events").get(), 1u);
  EXPECT_EQ(registry.snapshot().counters.size(), 1u);
}

TEST(ObsRegistry, GlobalIsASingleInstance) {
  EXPECT_EQ(&MetricRegistry::global(), &MetricRegistry::global());
  EXPECT_EQ(&stage_histogram("test.stage"), &stage_histogram("test.stage"));
}

TEST(ObsRegistry, RenderersIncludeEveryMetric) {
  MetricRegistry registry;
  registry.counter("hits").inc(7);
  registry.gauge("level").set(2);
  registry.histogram("lat").record(100.0);
  (void)registry.histogram("empty");  // registered, never recorded

  const MetricsSnapshot snap = registry.snapshot();
  const std::string csv = snap.to_csv();
  EXPECT_NE(csv.find("counter,hits,7"), std::string::npos);
  EXPECT_NE(csv.find("gauge,level,2"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat"), std::string::npos);
  EXPECT_NE(csv.find("histogram,empty"), std::string::npos);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"hits\""), std::string::npos);
  EXPECT_NE(json.find("\"level\""), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  // An empty histogram must render without percentile keys (they'd throw).
  EXPECT_NE(json.find("\"empty\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan job builds this binary)
// ---------------------------------------------------------------------------

TEST(ObsStress, ConcurrentRecordingLosesNothing) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 5000;
  MetricRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t id = 0; id < kThreads; ++id) {
    threads.emplace_back([&registry, id] {
      // Half the threads race the registration lookup itself.
      Counter& c = registry.counter(id % 2 == 0 ? "even" : "odd");
      Histogram& h = registry.histogram("latency");
      for (std::size_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record(static_cast<double>(i % 512));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(registry.counter("even").get(), kThreads / 2 * kPerThread);
  EXPECT_EQ(registry.counter("odd").get(), kThreads / 2 * kPerThread);
  EXPECT_EQ(registry.histogram("latency").snapshot().count,
            kThreads * kPerThread);
}

TEST(ObsStress, SnapshotWhileRecording) {
  MetricRegistry registry;
  std::atomic<bool> stop{false};
  std::thread writer{[&] {
    Histogram& h = registry.histogram("h");
    Counter& c = registry.counter("c");
    while (!stop.load(std::memory_order_relaxed)) {
      h.record(3.0);
      c.inc();
    }
  }};
  for (int i = 0; i < 200; ++i) {
    const auto snap = registry.snapshot();
    // Counts only ever grow; the snapshot must be internally consistent
    // enough that the histogram count equals the sum of its buckets.
    if (!snap.histograms.empty()) {
      std::uint64_t sum = 0;
      for (const auto b : snap.histograms[0].second.buckets) sum += b;
      EXPECT_EQ(sum, snap.histograms[0].second.count);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

}  // namespace
}  // namespace hhc::obs
