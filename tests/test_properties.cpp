// Property-based correctness harness for the disjoint-path construction.
//
// ~10k randomized cases over m in {2, 3}, driven by one seeded Xoshiro256
// stream (override with HHC_PROPERTY_SEED to replay a failure; every assert
// carries the seed and case index via SCOPED_TRACE). Each case asserts the
// paper's container properties directly, rather than trusting the library's
// own verifier alone:
//
//   P1  exactly m+1 paths (the connectivity of HHC(n));
//   P2  every path starts at s and ends at t;
//   P3  paths are pairwise internally node-disjoint (only s, t shared);
//   P4  every hop is an edge of the network;
//   P5  gray-cycle containers respect the length bound 2^(m+1) + 2m + 3.
//
// On P5: the issue's nominal bound 2^m + m + 1 is below the network
// diameter 2^(m+1) (HhcTopology::theoretical_diameter), so no construction
// can meet it; the asserted bound is the measured-and-argued one — the
// longest route is a detour (<= 2 external hops + two cluster walks of
// <= 2^m - 1 ... bounded by 2^(m+1) - 2 internal hops) stretched by at most
// one fan hop at each endpoint plus the gateway-walk slack, giving
// 2^(m+1) + 2m + 3. Measured maxima: 7 (m=1), 13 (m=2), 25 (m=3) against
// bounds 9, 15, 25. The kAscending ablation ordering violates even that
// (max 28 at m=3 — its non-cyclic rotations stack walks), so ascending
// cases assert P1-P4 only.
//
// Both entry points are exercised: cases alternate between the legacy
// copying API and the arena-backed scratch overload (materialized), so the
// harness would catch a property violation introduced in either path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <unordered_set>

#include "core/disjoint.hpp"
#include "core/metrics.hpp"
#include "core/scratch.hpp"
#include "core/topology.hpp"
#include "util/rng.hpp"

namespace hhc::core {
namespace {

std::uint64_t harness_seed() {
  if (const char* env = std::getenv("HHC_PROPERTY_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xA11CE5EED;  // fixed default: runs are reproducible by default
}

bool nodes_adjacent(const HhcTopology& net, Node u, Node v) {
  for (const Node w : net.neighbors(u)) {
    if (w == v) return true;
  }
  return false;
}

void check_properties(const HhcTopology& net, Node s, Node t,
                      const DisjointPathSet& set, bool assert_length_bound) {
  const unsigned m = net.m();

  // P1: cardinality equals the connectivity m + 1.
  ASSERT_EQ(set.paths.size(), m + 1);

  std::unordered_set<Node> internals;
  for (const Path& path : set.paths) {
    // P2: endpoints.
    ASSERT_GE(path.size(), 2u);
    ASSERT_EQ(path.front(), s);
    ASSERT_EQ(path.back(), t);

    // P4: every hop is an edge.
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      ASSERT_TRUE(nodes_adjacent(net, path[i], path[i + 1]))
          << "hop " << i << ": " << path[i] << " -> " << path[i + 1];
    }

    // P3: internal nodes distinct within the path and across paths, and
    // never equal to an endpoint.
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      ASSERT_NE(path[i], s);
      ASSERT_NE(path[i], t);
      ASSERT_TRUE(internals.insert(path[i]).second)
          << "node " << path[i] << " appears on two paths (or twice)";
    }

    // P5: length bound (gray-cycle ordering only; see header comment).
    if (assert_length_bound) {
      const std::size_t bound = (std::size_t{1} << (m + 1)) + 2 * m + 3;
      ASSERT_LE(path.size() - 1, bound);
    }
  }
}

void run_cases(unsigned m, std::size_t cases, DimensionOrdering ordering) {
  const std::uint64_t seed = harness_seed();
  const HhcTopology net{m};
  const ConstructionOptions options{.ordering = ordering};
  const bool bound = ordering == DimensionOrdering::kGrayCycle;
  util::Xoshiro256 rng{seed ^ (std::uint64_t{m} << 32) ^
                       static_cast<std::uint64_t>(ordering)};
  auto& scratch = tls_construction_scratch();

  for (std::size_t c = 0; c < cases; ++c) {
    const Node s = rng.below(net.node_count());
    Node t = rng.below(net.node_count());
    if (s == t) t = s ^ 1;  // flip the low position bit: always in range

    std::ostringstream trace;
    trace << "seed=0x" << std::hex << seed << std::dec << " m=" << m
          << " case=" << c << " s=" << s << " t=" << t
          << " (rerun with HHC_PROPERTY_SEED)";
    SCOPED_TRACE(trace.str());

    // Alternate entry points: even cases copy, odd cases go through the
    // arena scratch and materialize the borrowed views.
    if (c % 2 == 0) {
      check_properties(net, s, t, node_disjoint_paths(net, s, t, options),
                       bound);
    } else {
      const DisjointPathSetRef ref =
          node_disjoint_paths(net, s, t, options, scratch);
      check_properties(net, s, t, ref.materialize(), bound);
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DisjointProperties, RandomCasesM2Gray) {
  run_cases(2, 3500, DimensionOrdering::kGrayCycle);
}

TEST(DisjointProperties, RandomCasesM3Gray) {
  run_cases(3, 3500, DimensionOrdering::kGrayCycle);
}

TEST(DisjointProperties, RandomCasesM2Ascending) {
  run_cases(2, 1500, DimensionOrdering::kAscending);
}

TEST(DisjointProperties, RandomCasesM3Ascending) {
  run_cases(3, 1500, DimensionOrdering::kAscending);
}

// The bound in P5 is tight at m=3 (a measured container reaches exactly
// 25 = 2^4 + 6 + 3): if this ever fails, the bound was tightened by an
// algorithm change and the harness comment should be updated, not loosened.
TEST(DisjointProperties, LengthBoundIsAttainedM3) {
  const HhcTopology net{3};
  std::size_t longest = 0;
  for (const auto& [s, t] : sample_pairs(net, 2000, 0xBEEF)) {
    longest = std::max(longest, node_disjoint_paths(net, s, t).max_length());
  }
  EXPECT_GE(longest, 20u);  // sampled maximum sits near the bound
  EXPECT_LE(longest, 25u);
}

}  // namespace
}  // namespace hhc::core
