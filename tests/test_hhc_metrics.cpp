#include <gtest/gtest.h>

#include <algorithm>

#include "core/metrics.hpp"
#include "core/routing.hpp"
#include "graph/bfs.hpp"

namespace hhc::core {
namespace {

TEST(HhcMetrics, BfsDistancesAgreeWithExplicitGraph) {
  const HhcTopology net{2};
  const auto implicit = bfs_distances(net, 0);
  const auto explicit_dist =
      graph::bfs_distances(net.explicit_graph(), 0);
  ASSERT_EQ(implicit.size(), explicit_dist.size());
  for (std::size_t v = 0; v < implicit.size(); ++v) {
    EXPECT_EQ(implicit[v], explicit_dist[v]) << "node " << v;
  }
}

TEST(HhcMetrics, BfsShortestPathIsValidAndMinimal) {
  const HhcTopology net{2};
  const auto dist = bfs_distances(net, 3);
  for (Node t = 0; t < net.node_count(); ++t) {
    const auto p = bfs_shortest_path(net, 3, t);
    ASSERT_FALSE(p.empty());
    EXPECT_TRUE(is_valid_path(net, p, 3, t));
    EXPECT_EQ(p.size() - 1, dist[t]);
  }
}

TEST(HhcMetrics, ExactDiameterMatchesFormulaM1) {
  const HhcTopology net{1};
  // HHC(3) on 8 nodes: diameter = 2^1 + 1 + 1 = 4... verified exactly.
  EXPECT_EQ(exact_diameter(net), graph::diameter(net.explicit_graph()));
}

TEST(HhcMetrics, ExactDiameterMatchesExplicitAllPairsM2) {
  const HhcTopology net{2};
  EXPECT_EQ(exact_diameter(net), graph::diameter(net.explicit_graph()));
}

TEST(HhcMetrics, DiameterWithinTheoreticalBoundSmallM) {
  for (unsigned m = 1; m <= 3; ++m) {
    const HhcTopology net{m};
    const unsigned d = exact_diameter(net);
    EXPECT_LE(d, net.theoretical_diameter()) << "m=" << m;
    EXPECT_GE(d, net.cluster_dimensions()) << "m=" << m;
  }
}

TEST(HhcMetrics, RejectsLargeMForExactMetrics) {
  const HhcTopology net{5};
  EXPECT_THROW((void)bfs_distances(net, 0), std::invalid_argument);
  EXPECT_THROW((void)exact_diameter(net), std::invalid_argument);
}

TEST(HhcMetrics, SamplePairsAreDistinctEndpointsAndDeterministic) {
  const HhcTopology net{3};
  const auto a = sample_pairs(net, 500, 99);
  const auto b = sample_pairs(net, 500, 99);
  ASSERT_EQ(a.size(), 500u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NE(a[i].s, a[i].t);
    EXPECT_TRUE(net.contains(a[i].s));
    EXPECT_TRUE(net.contains(a[i].t));
    EXPECT_EQ(a[i].s, b[i].s);
    EXPECT_EQ(a[i].t, b[i].t);
  }
}

TEST(HhcMetrics, MeasureContainersSequentialMatchesParallel) {
  const HhcTopology net{3};
  const auto pairs = sample_pairs(net, 200, 1);
  const auto serial = measure_containers(net, pairs, nullptr);
  util::ThreadPool pool{4};
  const auto parallel = measure_containers(net, pairs, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].longest, parallel[i].longest);
    EXPECT_EQ(serial[i].shortest, parallel[i].shortest);
    EXPECT_DOUBLE_EQ(serial[i].average, parallel[i].average);
  }
}

TEST(HhcMetrics, ContainerLongestAtLeastDistance) {
  // Any path system's longest member is at least the s-t distance.
  const HhcTopology net{2};
  const auto pairs = sample_pairs(net, 100, 5);
  const auto measures = measure_containers(net, pairs);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto exact = bfs_shortest_path(net, pairs[i].s, pairs[i].t);
    EXPECT_GE(measures[i].longest, exact.size() - 1);
    EXPECT_GE(measures[i].shortest, exact.size() - 1);
  }
}

}  // namespace
}  // namespace hhc::core
