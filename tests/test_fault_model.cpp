#include <gtest/gtest.h>

#include <stdexcept>

#include "core/fault_model.hpp"

namespace hhc::core {
namespace {

TEST(FaultModel, EmptyModelReportsNothing) {
  const FaultModel model;
  EXPECT_TRUE(model.empty());
  EXPECT_FALSE(model.node_faulty_at(0));
  EXPECT_FALSE(model.link_faulty_at(0, 1));
  EXPECT_TRUE(model.edge_usable_at(0, 1));
  EXPECT_EQ(model.fault_count(), 0u);
}

TEST(FaultModel, PermanentNodeFaultMatchesFaultSetSemantics) {
  FaultModel model;
  model.fail_node(7);
  EXPECT_TRUE(model.node_faulty_at(7));
  EXPECT_TRUE(model.node_faulty_at(7, 1u << 30));
  EXPECT_FALSE(model.node_faulty_at(8));
  EXPECT_FALSE(model.edge_usable_at(7, 8));
  EXPECT_FALSE(model.has_transient());
  EXPECT_EQ(model.node_fault_count(), 1u);
  EXPECT_EQ(model.link_fault_count(), 0u);
}

TEST(FaultModel, TransientWindowIsHalfOpen) {
  FaultModel model;
  model.fail_node(3, /*fail_time=*/10, /*repair_time=*/20);
  EXPECT_FALSE(model.node_faulty_at(3, 9));
  EXPECT_TRUE(model.node_faulty_at(3, 10));
  EXPECT_TRUE(model.node_faulty_at(3, 19));
  EXPECT_FALSE(model.node_faulty_at(3, 20));  // repaired
  EXPECT_TRUE(model.has_transient());
  EXPECT_EQ(model.node_fault_count(15), 1u);
  EXPECT_EQ(model.node_fault_count(25), 0u);
}

TEST(FaultModel, RepeatedOutagesOnOneNodeAccumulate) {
  FaultModel model;
  model.fail_node(5, 0, 10);
  model.fail_node(5, 30, 40);
  EXPECT_TRUE(model.node_faulty_at(5, 5));
  EXPECT_FALSE(model.node_faulty_at(5, 20));
  EXPECT_TRUE(model.node_faulty_at(5, 35));
  EXPECT_EQ(model.node_fault_count(20), 0u);
}

TEST(FaultModel, LinkFaultIsUndirectedAndLeavesNodesUsable) {
  FaultModel model;
  model.fail_link(4, 12);
  EXPECT_TRUE(model.link_faulty_at(4, 12));
  EXPECT_TRUE(model.link_faulty_at(12, 4));  // normalized
  EXPECT_FALSE(model.node_faulty_at(4));
  EXPECT_FALSE(model.node_faulty_at(12));
  EXPECT_FALSE(model.edge_usable_at(4, 12));
  EXPECT_TRUE(model.edge_usable_at(4, 5));
  EXPECT_EQ(model.link_fault_count(), 1u);
}

TEST(FaultModel, TransientLinkRepairs) {
  FaultModel model;
  model.fail_link(0, 1, 5, 8);
  EXPECT_TRUE(model.edge_usable_at(0, 1, 4));
  EXPECT_FALSE(model.edge_usable_at(0, 1, 6));
  EXPECT_TRUE(model.edge_usable_at(0, 1, 8));
}

TEST(FaultModel, RejectsDegenerateInput) {
  FaultModel model;
  EXPECT_THROW(model.fail_link(3, 3), std::invalid_argument);
  EXPECT_THROW(model.fail_node(1, 10, 10), std::invalid_argument);
  EXPECT_THROW(model.fail_link(0, 1, 10, 5), std::invalid_argument);
}

TEST(FaultModel, ConvertsFromAndToFaultSet) {
  FaultSet set;
  set.mark_faulty(2);
  set.mark_faulty(9);
  const FaultModel model{set};
  EXPECT_TRUE(model.node_faulty_at(2));
  EXPECT_TRUE(model.node_faulty_at(9));
  const FaultSet view = model.node_view();
  EXPECT_EQ(view.size(), 2u);
  EXPECT_TRUE(view.is_faulty(2));
  EXPECT_TRUE(view.is_faulty(9));
}

TEST(FaultModel, NodeViewRespectsTime) {
  FaultModel model;
  model.fail_node(1);          // permanent
  model.fail_node(2, 10, 20);  // transient
  EXPECT_EQ(model.node_view(0).size(), 1u);
  EXPECT_EQ(model.node_view(15).size(), 2u);
  EXPECT_EQ(model.node_view(25).size(), 1u);
}

TEST(FaultModel, RandomHonorsSpecCounts) {
  const HhcTopology net{2};
  util::Xoshiro256 rng{11};
  FaultModel::RandomSpec spec;
  spec.node_faults = 4;
  spec.internal_link_faults = 3;
  spec.external_link_faults = 2;
  const Node s = 0;
  const Node t = net.node_count() - 1;
  const auto model = FaultModel::random(net, spec, s, t, rng);
  EXPECT_EQ(model.node_fault_count(), 4u);
  EXPECT_EQ(model.link_fault_count(), 5u);
  EXPECT_FALSE(model.node_faulty_at(s));
  EXPECT_FALSE(model.node_faulty_at(t));
}

TEST(FaultModel, RandomLinkFaultsLieOnRealEdges) {
  const HhcTopology net{2};
  util::Xoshiro256 rng{13};
  FaultModel::RandomSpec spec;
  spec.internal_link_faults = 10;
  spec.external_link_faults = 10;
  const auto model = FaultModel::random(net, spec, 0, 1, rng);
  // Every sampled link must be an edge of the topology: count the faulty
  // ones among real edges and confirm all 20 are found.
  std::size_t found = 0;
  for (Node v = 0; v < net.node_count(); ++v) {
    for (const Node u : net.neighbors(v)) {
      if (u > v && model.link_faulty_at(v, u)) ++found;
    }
  }
  EXPECT_EQ(found, 20u);
}

TEST(FaultModel, RandomAppliesTransientWindow) {
  const HhcTopology net{2};
  util::Xoshiro256 rng{17};
  FaultModel::RandomSpec spec;
  spec.node_faults = 3;
  spec.fail_time = 100;
  spec.repair_time = 200;
  const auto model = FaultModel::random(net, spec, 0, 1, rng);
  EXPECT_EQ(model.node_fault_count(50), 0u);
  EXPECT_EQ(model.node_fault_count(150), 3u);
  EXPECT_EQ(model.node_fault_count(250), 0u);
  EXPECT_TRUE(model.has_transient());
}

TEST(FaultModel, RandomCanExhaustEveryPopulation) {
  const HhcTopology net{1};  // 8 nodes, 4 internal links, 4 external links
  util::Xoshiro256 rng{19};
  FaultModel::RandomSpec spec;
  spec.node_faults = net.node_count() - 2;
  spec.internal_link_faults = net.node_count() * net.m() / 2;
  spec.external_link_faults = net.node_count() / 2;
  const auto model = FaultModel::random(net, spec, 0, 1, rng);
  EXPECT_EQ(model.node_fault_count(), net.node_count() - 2);
  EXPECT_EQ(model.link_fault_count(),
            net.node_count() * net.m() / 2 + net.node_count() / 2);
}

TEST(FaultModel, RandomRejectsOverRequests) {
  const HhcTopology net{1};
  util::Xoshiro256 rng{23};
  FaultModel::RandomSpec nodes;
  nodes.node_faults = net.node_count() - 1;  // population is N - 2
  EXPECT_THROW((void)FaultModel::random(net, nodes, 0, 1, rng),
               std::invalid_argument);
  FaultModel::RandomSpec internal;
  internal.internal_link_faults = net.node_count() * net.m() / 2 + 1;
  EXPECT_THROW((void)FaultModel::random(net, internal, 0, 1, rng),
               std::invalid_argument);
  FaultModel::RandomSpec external;
  external.external_link_faults = net.node_count() / 2 + 1;
  EXPECT_THROW((void)FaultModel::random(net, external, 0, 1, rng),
               std::invalid_argument);
}

TEST(FaultModel, RandomIsDeterministicInSeed) {
  const HhcTopology net{2};
  FaultModel::RandomSpec spec;
  spec.node_faults = 5;
  spec.internal_link_faults = 2;
  util::Xoshiro256 rng_a{42};
  util::Xoshiro256 rng_b{42};
  const auto a = FaultModel::random(net, spec, 0, 1, rng_a);
  const auto b = FaultModel::random(net, spec, 0, 1, rng_b);
  for (Node v = 0; v < net.node_count(); ++v) {
    EXPECT_EQ(a.node_faulty_at(v), b.node_faulty_at(v));
    for (const Node u : net.neighbors(v)) {
      EXPECT_EQ(a.link_faulty_at(v, u), b.link_faulty_at(v, u));
    }
  }
}

}  // namespace
}  // namespace hhc::core
