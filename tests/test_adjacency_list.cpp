#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/adjacency_list.hpp"

namespace hhc::graph {
namespace {

TEST(AdjacencyList, EmptyGraph) {
  const AdjacencyList g;
  EXPECT_EQ(g.vertex_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.min_degree(), 0u);
}

TEST(AdjacencyList, AddEdgeBothDirections) {
  AdjacencyList g{4};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(AdjacencyList, RejectsSelfLoop) {
  AdjacencyList g{2};
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(AdjacencyList, RejectsDuplicateEdge) {
  AdjacencyList g{3};
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);
}

TEST(AdjacencyList, RejectsOutOfRange) {
  AdjacencyList g{3};
  EXPECT_THROW(g.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(g.add_edge(7, 0), std::invalid_argument);
}

TEST(AdjacencyList, HasEdgeOutOfRangeIsFalse) {
  AdjacencyList g{2};
  g.add_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 5));
}

TEST(AdjacencyList, NeighborsSpanReflectsInsertions) {
  AdjacencyList g{4};
  g.add_edge(2, 0);
  g.add_edge(2, 1);
  g.add_edge(2, 3);
  const auto nbrs = g.neighbors(2);
  EXPECT_EQ(nbrs.size(), 3u);
}

TEST(AdjacencyList, MinDegree) {
  AdjacencyList g{4};
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_EQ(g.min_degree(), 0u);  // vertex 3 is isolated
  g.add_edge(3, 0);
  EXPECT_EQ(g.min_degree(), 1u);
}

TEST(AdjacencyList, FromImplicitBuildsCycle) {
  const auto g = AdjacencyList::from_implicit(5, [](Vertex v) {
    return std::vector<Vertex>{(v + 1) % 5, (v + 4) % 5};
  });
  EXPECT_EQ(g.vertex_count(), 5u);
  EXPECT_EQ(g.edge_count(), 5u);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 2u);
}

}  // namespace
}  // namespace hhc::graph
