// Experiment T2 — lengths of the m+1 node-disjoint paths per m.
//
// For every m this regenerates the paper's central table: the maximal and
// average container length over node pairs (exhaustive for m <= 2, sampled
// above), compared against the network diameter and the constructive bound
// 2^m + k + 3m + 4. The observed maximum over all pairs upper-bounds the
// (m+1)-wide diameter.
#include <algorithm>
#include <iostream>

#include "core/disjoint.hpp"
#include "core/metrics.hpp"
#include "graph/brute_force.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace hhc;
  util::ThreadPool pool;

  util::Table table{{"m", "pairs", "coverage", "avg-longest", "max-longest",
                     "avg-mean", "diameter", "bound(2^m+2^m+3m+4)"}};

  for (unsigned m = 1; m <= 5; ++m) {
    const core::HhcTopology net{m};
    std::vector<core::PairSample> pairs;
    const char* coverage = "sampled";
    if (m <= 2) {
      for (core::Node s = 0; s < net.node_count(); ++s) {
        for (core::Node t = 0; t < net.node_count(); ++t) {
          if (s != t) pairs.push_back({s, t});
        }
      }
      coverage = "exhaustive";
    } else {
      pairs = core::sample_pairs(net, 2000, /*seed=*/1234);
    }

    const auto measures = core::measure_containers(net, pairs, &pool);
    std::size_t max_longest = 0;
    double sum_longest = 0;
    double sum_mean = 0;
    for (const auto& meas : measures) {
      max_longest = std::max(max_longest, meas.longest);
      sum_longest += static_cast<double>(meas.longest);
      sum_mean += meas.average;
    }
    const double n = static_cast<double>(measures.size());
    const unsigned diameter = net.theoretical_diameter();
    // Worst-case constructive bound with k = 2^m.
    const std::size_t bound = 2ull * net.cluster_dimensions() + 3 * m + 4;

    table.row()
        .add(static_cast<int>(m))
        .add(pairs.size())
        .add(coverage)
        .add(sum_longest / n, 2)
        .add(max_longest)
        .add(sum_mean / n, 2)
        .add(static_cast<int>(diameter))
        .add(bound);
  }
  table.print(std::cout,
              "T2: node-disjoint container lengths (upper-bounds the "
              "(m+1)-wide diameter)");
  std::cout << "\nExpected shape: max-longest stays within a small additive "
               "margin of the diameter\n(wide diameter ~ diameter + O(m)), "
               "far below the worst-case bound column.\n";

  // Exactness check at m = 1 (8 nodes): brute-force the optimal container
  // per pair and compare with the construction.
  {
    const core::HhcTopology net{1};
    const auto g = net.explicit_graph();
    std::size_t optimal_wd = 0;
    std::size_t constructed_wd = 0;
    for (core::Node s = 0; s < net.node_count(); ++s) {
      for (core::Node t = 0; t < net.node_count(); ++t) {
        if (s == t) continue;
        const auto opt = graph::optimal_container_max_length(
            g, static_cast<graph::Vertex>(s), static_cast<graph::Vertex>(t),
            net.degree(), net.node_count());
        optimal_wd = std::max(optimal_wd, *opt);
        constructed_wd = std::max(
            constructed_wd, core::node_disjoint_paths(net, s, t).max_length());
      }
    }
    std::cout << "\nExactness (m=1, brute force over all containers): "
                 "optimal 2-wide diameter = "
              << optimal_wd << ", constructed = " << constructed_wd
              << (optimal_wd == constructed_wd ? " -> construction is TIGHT"
                                               : "")
              << '\n';
  }
  return 0;
}
