// Experiment T4 — single-path routing quality vs exact shortest paths.
//
// The constructive route (Gray-ordered gateway tour) is not always optimal;
// this table quantifies how close it gets: exhaustive comparison against
// BFS for m <= 2, sampled for m = 3, 4.
#include <algorithm>
#include <iostream>

#include "core/metrics.hpp"
#include "core/routing.hpp"
#include "util/table.hpp"

int main() {
  using namespace hhc;

  util::Table table{{"m", "pairs", "coverage", "optimal %", "avg stretch",
                     "max extra hops"}};
  for (unsigned m = 1; m <= 4; ++m) {
    const core::HhcTopology net{m};

    std::vector<core::PairSample> pairs;
    const char* coverage = "sampled";
    if (m <= 2) {
      for (core::Node s = 0; s < net.node_count(); ++s) {
        for (core::Node t = 0; t < net.node_count(); ++t) {
          if (s != t) pairs.push_back({s, t});
        }
      }
      coverage = "exhaustive";
    } else {
      pairs = core::sample_pairs(net, m == 3 ? 2000 : 300, /*seed=*/88);
    }

    std::size_t optimal = 0;
    std::size_t max_extra = 0;
    double stretch_sum = 0;
    for (const auto& [s, t] : pairs) {
      const std::size_t constructive = core::route(net, s, t).size() - 1;
      const std::size_t exact = core::bfs_shortest_path(net, s, t).size() - 1;
      if (constructive == exact) ++optimal;
      max_extra = std::max(max_extra, constructive - exact);
      stretch_sum +=
          static_cast<double>(constructive) / static_cast<double>(exact);
    }
    table.row()
        .add(static_cast<int>(m))
        .add(pairs.size())
        .add(coverage)
        .add(100.0 * static_cast<double>(optimal) /
                 static_cast<double>(pairs.size()),
             1)
        .add(stretch_sum / static_cast<double>(pairs.size()), 3)
        .add(max_extra);
  }
  table.print(std::cout,
              "T4: constructive single-path route vs exact BFS shortest path");
  std::cout << "\nExpected shape: the Gray-tour route is optimal for most "
               "pairs and within a few\nhops otherwise — consistent with the "
               "2^m + k + O(m) analysis.\n";
  return 0;
}
