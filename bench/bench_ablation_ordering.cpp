// Ablation A1 — Gray-cycle gateway ordering vs naive ascending ordering.
//
// The construction is disjoint under ANY cyclic order of the differing
// X-dimensions; the Gray-cycle choice is purely a length optimization
// (total intra-cluster walking <= 2^m instead of O(m * 2^m)). This bench
// isolates that design decision, per DESIGN.md's ablation index.
#include <algorithm>
#include <iostream>
#include <string>

#include "core/disjoint.hpp"
#include "core/metrics.hpp"
#include "util/table.hpp"

int main() {
  using namespace hhc;

  util::Table table{{"m", "pairs", "gray avg-longest", "asc avg-longest",
                     "gray max", "asc max", "saving %"}};
  for (unsigned m = 2; m <= 5; ++m) {
    const core::HhcTopology net{m};
    const auto pairs = core::sample_pairs(net, 2000, /*seed=*/606);

    double gray_sum = 0;
    double asc_sum = 0;
    std::size_t gray_max = 0;
    std::size_t asc_max = 0;
    for (const auto& [s, t] : pairs) {
      const auto gray = core::node_disjoint_paths(
          net, s, t,
          core::ConstructionOptions{.ordering =
                                        core::DimensionOrdering::kGrayCycle});
      const auto asc = core::node_disjoint_paths(
          net, s, t,
          core::ConstructionOptions{.ordering =
                                        core::DimensionOrdering::kAscending});
      gray_sum += static_cast<double>(gray.max_length());
      asc_sum += static_cast<double>(asc.max_length());
      gray_max = std::max(gray_max, gray.max_length());
      asc_max = std::max(asc_max, asc.max_length());
    }
    const double n = static_cast<double>(pairs.size());
    table.row()
        .add(static_cast<int>(m))
        .add(pairs.size())
        .add(gray_sum / n, 2)
        .add(asc_sum / n, 2)
        .add(gray_max)
        .add(asc_max)
        .add(100.0 * (1.0 - gray_sum / asc_sum), 1);
  }
  table.print(std::cout,
              "A1: container longest-path length, Gray-cycle vs ascending "
              "dimension order");
  std::cout << "\nExpected shape: the gap widens with m — ascending ordering "
               "pays ~H(g_i, g_i+1)\nper crossing (up to m), the Gray tour "
               "amortizes the whole walk to <= 2^m total.\n";
  return 0;
}
