// Experiment T7 — the gateway bottleneck under dimension-cut traffic.
//
// The HHC's price for degree m+1 is that all traffic crossing cluster
// dimension j funnels through ONE gateway node per cluster. This
// experiment makes the cost visible: every node in the clusters with
// X-bit j = 0 sends one packet straight across the cut to its mirror
// cluster, and the simulator measures how long the cut takes to drain —
// compared against a same-size hypercube, where the cut has one link per
// node pair instead of one link per cluster.
#include <iostream>

#include "core/routing.hpp"
#include "cube/hypercube.hpp"
#include "sim/network.hpp"
#include "util/table.hpp"

namespace {

using namespace hhc;

// HHC: every node of every cluster with bit `dim` of X clear sends to the
// same position in the mirror cluster across the cut.
sim::SimReport run_hhc_cut(const core::HhcTopology& net, unsigned dim) {
  sim::NetworkSimulator simulator{net};
  for (std::uint64_t x = 0; x < net.cluster_count(); ++x) {
    if (((x >> dim) & 1) != 0) continue;
    for (std::uint64_t y = 0; y < net.cluster_size(); ++y) {
      const core::Node s = net.encode(x, y);
      const core::Node t = net.encode(x | (1ull << dim), y);
      simulator.inject(core::route(net, s, t), 0);
    }
  }
  return simulator.run();
}

}  // namespace

int main() {
  util::Table table{{"network", "cut", "packets", "p50 lat", "p95 lat",
                     "max lat", "drain cycles"}};

  for (unsigned m = 2; m <= 3; ++m) {
    const core::HhcTopology net{m};
    const auto report = run_hhc_cut(net, 0);
    table.row()
        .add("HHC(m=" + std::to_string(m) + ")")
        .add("X-dim 0")
        .add(static_cast<std::uint64_t>(net.node_count() / 2))
        .add(report.latency.p50)
        .add(report.latency.p95)
        .add(report.latency.max)
        .add(static_cast<std::uint64_t>(report.cycles));

    // Reference: Q_n of the same size, same mirror-pair traffic across
    // dimension 0 — every pair has a private cut link.
    // In Q_n each mirror pair crosses over its own private link, so the
    // whole cut drains in a single cycle — no simulation needed.
    const cube::Hypercube q{net.address_bits()};
    table.row()
        .add("Q_" + std::to_string(net.address_bits()))
        .add("dim 0")
        .add(static_cast<std::uint64_t>(q.node_count() / 2))
        .add(std::uint64_t{1})
        .add(std::uint64_t{1})
        .add(std::uint64_t{1})
        .add(std::uint64_t{1});
  }

  table.print(std::cout,
              "T7: dimension-cut drain — every node on one side sends to its "
              "mirror across the cut");
  std::cout << "\nExpected shape: in Q_n the cut has N/2 private links (1 "
               "cycle); in the HHC all\n2^m packets of a cluster squeeze "
               "through its single gateway, so the drain takes\n~2^m * "
               "(walk + crossing) cycles — the degree/bandwidth tradeoff "
               "made concrete.\n";
  return 0;
}
