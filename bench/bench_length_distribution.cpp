// Experiment F1 — distribution of the container's longest path length.
//
// Regenerates the figure plotting percentiles of the longest disjoint path
// over random node pairs, per m. The series shows the whole distribution
// hugging the diameter: path diversity is nearly free in length.
#include <algorithm>
#include <iostream>

#include "core/metrics.hpp"
#include "sim/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace hhc;
  util::ThreadPool pool;

  util::Table table{{"m", "pairs", "p10", "p50", "p90", "p99", "max",
                     "diameter"}};
  for (unsigned m = 2; m <= 5; ++m) {
    const core::HhcTopology net{m};
    const std::size_t count = m <= 4 ? 10000 : 4000;
    const auto pairs = core::sample_pairs(net, count, /*seed=*/2026);
    const auto measures = core::measure_containers(net, pairs, &pool);

    std::vector<std::uint64_t> longest;
    longest.reserve(measures.size());
    for (const auto& meas : measures) longest.push_back(meas.longest);
    std::sort(longest.begin(), longest.end());

    table.row()
        .add(static_cast<int>(m))
        .add(pairs.size())
        .add(sim::percentile(longest, 0.10))
        .add(sim::percentile(longest, 0.50))
        .add(sim::percentile(longest, 0.90))
        .add(sim::percentile(longest, 0.99))
        .add(longest.back())
        .add(static_cast<int>(net.theoretical_diameter()));
  }
  table.print(std::cout,
              "F1: percentiles of the longest disjoint path over random pairs");
  std::cout << "\nExpected shape: the distribution is tight; even p99 sits "
               "near the diameter, so\nthe redundancy of m+1 paths costs only "
               "an additive O(m) in worst-path length.\n";
  return 0;
}
