// Experiment F2 — routing success rate under random node faults.
//
// Sweeps the number of faulty nodes f and measures the fraction of sampled
// (s, t) pairs each router still connects:
//   disjoint : the constructive m+1-path container (paper's router)
//   fixed    : one deterministic route, no diversity
//   oracle   : BFS on the fault-free subgraph (upper bound; m <= 3)
// The paper's guarantee shows as a flat 100% disjoint-router line for
// f <= m, degrading gracefully beyond, while the fixed router decays
// immediately.
#include <iostream>

#include "baseline/maxflow_paths.hpp"
#include "baseline/single_path.hpp"
#include "core/fault_routing.hpp"
#include "core/metrics.hpp"
#include "util/table.hpp"

int main() {
  using namespace hhc;
  constexpr std::size_t kTrials = 600;

  for (unsigned m = 2; m <= 3; ++m) {
    const core::HhcTopology net{m};
    const baseline::MaxflowBaseline base{net};

    util::Table table{{"faults f", "disjoint %", "fixed-single %", "oracle %",
                       "guarantee"}};
    for (std::size_t f = 0; f <= 3 * m; ++f) {
      std::size_t ok_disjoint = 0;
      std::size_t ok_fixed = 0;
      std::size_t ok_oracle = 0;
      util::Xoshiro256 rng{9000 + f};
      const auto pairs = core::sample_pairs(net, kTrials, 40 + f);
      for (const auto& [s, t] : pairs) {
        const auto faults = core::FaultSet::random(net, f, s, t, rng);
        if (core::route_avoiding(net, s, t, faults).ok()) ++ok_disjoint;
        if (!baseline::fixed_single_route(net, s, t, faults).empty()) {
          ++ok_fixed;
        }
        if (!baseline::adaptive_bfs_route(base.explicit_graph(), s, t, faults)
                 .empty()) {
          ++ok_oracle;
        }
      }
      const auto pct = [&](std::size_t okay) {
        return 100.0 * static_cast<double>(okay) / kTrials;
      };
      table.row()
          .add(f)
          .add(pct(ok_disjoint), 1)
          .add(pct(ok_fixed), 1)
          .add(pct(ok_oracle), 1)
          .add(f <= m ? "100% guaranteed" : "best effort");
    }
    table.print(std::cout, "F2 (m=" + std::to_string(m) +
                               "): routing success rate vs faulty nodes, " +
                               std::to_string(kTrials) + " trials per row");
    std::cout << '\n';
  }
  std::cout << "Expected shape: disjoint-path routing is exact-100% for "
               "f <= m (the paper's\nguarantee) and tracks the oracle "
               "closely beyond; fixed single-path routing\ndecays as soon "
               "as f > 0.\n";
  return 0;
}
