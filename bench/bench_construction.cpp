// Experiment T3 — construction cost: constructive algorithm vs max flow.
//
// The paper's algorithmic claim is that the container is built in time
// polynomial in the *path length* (i.e. independent of N = 2^(2^m + m)),
// while the generic max-flow alternative must touch the whole network.
// google-benchmark measures both on the same random pair streams; the
// closing table prints the per-pair speedup.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "baseline/maxflow_paths.hpp"
#include "core/disjoint.hpp"
#include "core/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace hhc;

void BM_ConstructiveDisjointPaths(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  const core::HhcTopology net{m};
  const auto pairs = core::sample_pairs(net, 512, 77);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ & 511];
    benchmark::DoNotOptimize(core::node_disjoint_paths(net, s, t));
  }
  state.SetLabel("N=" + std::to_string(net.node_count()));
}
BENCHMARK(BM_ConstructiveDisjointPaths)->DenseRange(1, 5)->Unit(benchmark::kMicrosecond);

void BM_MaxflowDisjointPaths(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  const core::HhcTopology net{m};
  const baseline::MaxflowBaseline exact{net};
  const auto pairs = core::sample_pairs(net, 64, 77);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ & 63];
    benchmark::DoNotOptimize(exact.disjoint_paths(s, t));
  }
  state.SetLabel("N=" + std::to_string(net.node_count()));
}
BENCHMARK(BM_MaxflowDisjointPaths)->DenseRange(1, 3)->Unit(benchmark::kMicrosecond);
// m = 4 max flow runs for seconds per query; one sample is enough.
BENCHMARK(BM_MaxflowDisjointPaths)->Arg(4)->Iterations(3)->Unit(benchmark::kMillisecond);

void print_speedup_table() {
  util::Table table{
      {"m", "constructive us/pair", "maxflow us/pair", "speedup"}};
  for (unsigned m = 1; m <= 4; ++m) {
    const core::HhcTopology net{m};
    const auto pairs = core::sample_pairs(net, 64, 99);

    // Warm up allocators/caches so the first timed call is representative.
    benchmark::DoNotOptimize(
        core::node_disjoint_paths(net, pairs[0].s, pairs[0].t));

    util::Stopwatch sw;
    for (const auto& [s, t] : pairs) {
      benchmark::DoNotOptimize(core::node_disjoint_paths(net, s, t));
    }
    const double constructive_us =
        sw.micros() / static_cast<double>(pairs.size());

    const baseline::MaxflowBaseline exact{net};
    const std::size_t flow_queries = m >= 4 ? 3 : pairs.size();
    sw.reset();
    for (std::size_t i = 0; i < flow_queries; ++i) {
      benchmark::DoNotOptimize(exact.disjoint_paths(pairs[i].s, pairs[i].t));
    }
    const double maxflow_us = sw.micros() / static_cast<double>(flow_queries);

    table.row()
        .add(static_cast<int>(m))
        .add(constructive_us, 2)
        .add(maxflow_us, 2)
        .add(maxflow_us / constructive_us, 1);
  }
  table.print(std::cout, "\nT3: per-pair construction cost (summary)");
  std::cout << "Expected shape: the constructive algorithm's cost is flat in "
               "N; max flow grows\nwith the network and becomes unusable "
               "beyond m = 4 (the constructive algorithm\nstill runs at m = 5 "
               "on 2^37 nodes).\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_speedup_table();
  return 0;
}
