// Experiment T3 — construction cost: constructive algorithm vs max flow.
//
// The paper's algorithmic claim is that the container is built in time
// polynomial in the *path length* (i.e. independent of N = 2^(2^m + m)),
// while the generic max-flow alternative must touch the whole network.
// google-benchmark measures both on the same random pair streams; the
// closing tables print the per-pair speedup, including the arena-backed
// zero-allocation hot path (node_disjoint_paths with a ConstructionScratch)
// against the legacy copying entry point.
//
// `--smoke` runs a seconds-long subset (no google-benchmark registry, no
// m=4 max flow) — enough for CI to catch a structural perf regression.
// Both modes write machine-readable results to BENCH_construction.json;
// REPRODUCING.md describes the baseline-comparison workflow.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "baseline/maxflow_paths.hpp"
#include "core/disjoint.hpp"
#include "core/io.hpp"
#include "core/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace hhc;

void BM_ConstructiveDisjointPaths(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  const core::HhcTopology net{m};
  const auto pairs = core::sample_pairs(net, 512, 77);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ & 511];
    benchmark::DoNotOptimize(core::node_disjoint_paths(net, s, t));
  }
  state.SetLabel("N=" + std::to_string(net.node_count()));
}
BENCHMARK(BM_ConstructiveDisjointPaths)->DenseRange(1, 5)->Unit(benchmark::kMicrosecond);

void BM_ArenaDisjointPaths(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  const core::HhcTopology net{m};
  const auto pairs = core::sample_pairs(net, 512, 77);
  auto& scratch = core::tls_construction_scratch();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ & 511];
    const auto set = core::node_disjoint_paths(net, s, t, {}, scratch);
    benchmark::DoNotOptimize(set.paths.data());
  }
  state.SetLabel("N=" + std::to_string(net.node_count()));
}
BENCHMARK(BM_ArenaDisjointPaths)->DenseRange(1, 5)->Unit(benchmark::kMicrosecond);

void BM_MaxflowDisjointPaths(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  const core::HhcTopology net{m};
  const baseline::MaxflowBaseline exact{net};
  const auto pairs = core::sample_pairs(net, 64, 77);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ & 63];
    benchmark::DoNotOptimize(exact.disjoint_paths(s, t));
  }
  state.SetLabel("N=" + std::to_string(net.node_count()));
}
BENCHMARK(BM_MaxflowDisjointPaths)->DenseRange(1, 3)->Unit(benchmark::kMicrosecond);
// m = 4 max flow runs for seconds per query; one sample is enough.
BENCHMARK(BM_MaxflowDisjointPaths)->Arg(4)->Iterations(3)->Unit(benchmark::kMillisecond);

struct ConstructionRow {
  unsigned m = 0;
  double legacy_us = 0.0;  // copying entry point, per pair
  double arena_us = 0.0;   // scratch-backed entry point, per pair
};

// Per-pair cost of both construction entry points on the same pair stream.
ConstructionRow measure_construction(unsigned m, std::size_t pair_count,
                                     std::size_t reps) {
  const core::HhcTopology net{m};
  const auto pairs = core::sample_pairs(net, pair_count, 77);
  auto& scratch = core::tls_construction_scratch();

  // Warm up: fills arena chunks, fan workspaces, and the cluster-graph
  // cache so the timed loops see the steady state.
  for (const auto& [s, t] : pairs) {
    benchmark::DoNotOptimize(core::node_disjoint_paths(net, s, t));
    const auto set = core::node_disjoint_paths(net, s, t, {}, scratch);
    benchmark::DoNotOptimize(set.paths.data());
  }

  // Best-of-reps: each rep times one full pass over the pair stream and the
  // minimum wins, so scheduler noise on a busy box inflates neither column.
  ConstructionRow row;
  row.m = m;
  const double per_pass = static_cast<double>(pair_count);
  row.legacy_us = std::numeric_limits<double>::infinity();
  row.arena_us = std::numeric_limits<double>::infinity();
  util::Stopwatch sw;
  for (std::size_t r = 0; r < reps; ++r) {
    sw.reset();
    for (const auto& [s, t] : pairs) {
      benchmark::DoNotOptimize(core::node_disjoint_paths(net, s, t));
    }
    row.legacy_us = std::min(row.legacy_us, sw.micros() / per_pass);
  }
  for (std::size_t r = 0; r < reps; ++r) {
    sw.reset();
    for (const auto& [s, t] : pairs) {
      const auto set = core::node_disjoint_paths(net, s, t, {}, scratch);
      benchmark::DoNotOptimize(set.paths.data());
    }
    row.arena_us = std::min(row.arena_us, sw.micros() / per_pass);
  }
  return row;
}

void emit_json(const std::vector<ConstructionRow>& rows, bool smoke) {
  core::JsonWriter json;
  json.begin_object()
      .key("bench").value("construction")
      .key("mode").value(smoke ? "smoke" : "full")
      .key("results").begin_array();
  for (const ConstructionRow& row : rows) {
    json.begin_object()
        .key("m").value(static_cast<std::uint64_t>(row.m))
        .key("legacy_us_per_pair").value(row.legacy_us)
        .key("arena_us_per_pair").value(row.arena_us)
        .key("arena_pairs_per_s").value(1e6 / row.arena_us)
        .key("arena_speedup").value(row.legacy_us / row.arena_us)
        .end_object();
  }
  json.end_array().end_object();
  std::ofstream out{"BENCH_construction.json"};
  out << json.str() << '\n';
  std::cout << "wrote BENCH_construction.json\n";
}

void print_arena_table(bool smoke) {
  const unsigned max_m = smoke ? 4 : 5;
  std::vector<ConstructionRow> rows;
  util::Table table{{"m", "legacy us/pair", "arena us/pair", "arena speedup",
                     "arena pairs/s"}};
  for (unsigned m = 1; m <= max_m; ++m) {
    const std::size_t pair_count = smoke ? 128 : 512;
    const std::size_t reps = smoke ? (m >= 4 ? 2 : 6) : (m >= 4 ? 8 : 30);
    const ConstructionRow row = measure_construction(m, pair_count, reps);
    rows.push_back(row);
    table.row()
        .add(static_cast<int>(m))
        .add(row.legacy_us, 2)
        .add(row.arena_us, 2)
        .add(row.legacy_us / row.arena_us, 2)
        .add(1e6 / row.arena_us, 0);
  }
  table.print(std::cout,
              "\nT3a: per-pair construction cost, copying vs arena-backed");
  std::cout << "Expected shape: the arena path wins at every m (no heap "
               "traffic in the steady\nstate); the gap widens with m as the "
               "containers grow.\n";
  emit_json(rows, smoke);
}

void print_speedup_table() {
  util::Table table{
      {"m", "constructive us/pair", "maxflow us/pair", "speedup"}};
  for (unsigned m = 1; m <= 4; ++m) {
    const core::HhcTopology net{m};
    const auto pairs = core::sample_pairs(net, 64, 99);

    // Warm up allocators/caches so the first timed call is representative.
    benchmark::DoNotOptimize(
        core::node_disjoint_paths(net, pairs[0].s, pairs[0].t));

    util::Stopwatch sw;
    for (const auto& [s, t] : pairs) {
      benchmark::DoNotOptimize(core::node_disjoint_paths(net, s, t));
    }
    const double constructive_us =
        sw.micros() / static_cast<double>(pairs.size());

    const baseline::MaxflowBaseline exact{net};
    const std::size_t flow_queries = m >= 4 ? 3 : pairs.size();
    sw.reset();
    for (std::size_t i = 0; i < flow_queries; ++i) {
      benchmark::DoNotOptimize(exact.disjoint_paths(pairs[i].s, pairs[i].t));
    }
    const double maxflow_us = sw.micros() / static_cast<double>(flow_queries);

    table.row()
        .add(static_cast<int>(m))
        .add(constructive_us, 2)
        .add(maxflow_us, 2)
        .add(maxflow_us / constructive_us, 1);
  }
  table.print(std::cout, "\nT3: per-pair construction cost (summary)");
  std::cout << "Expected shape: the constructive algorithm's cost is flat in "
               "N; max flow grows\nwith the network and becomes unusable "
               "beyond m = 4 (the constructive algorithm\nstill runs at m = 5 "
               "on 2^37 nodes).\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  if (smoke) {
    // CI-sized run: summary loops only, no google-benchmark registry and no
    // m=4 max flow (seconds per query).
    print_arena_table(/*smoke=*/true);
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_arena_table(/*smoke=*/false);
  print_speedup_table();
  return 0;
}
