// Experiment T1 — topology properties of HHC(2^m + m) per m.
//
// Regenerates the parameter table every HHC paper opens with: node count,
// degree, cluster structure, and diameter. The diameter column is computed
// exactly by BFS up to m = 4 and compared against the closed form 2^(m+1);
// m = 5 (2^37 nodes) reports the closed form only.
#include <iostream>

#include "core/metrics.hpp"
#include "core/topology.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace hhc;

  util::Table table{{"m", "n=2^m+m", "nodes", "clusters", "degree",
                     "diameter(BFS)", "2^(m+1)", "match"}};
  for (unsigned m = 1; m <= 5; ++m) {
    const core::HhcTopology net{m};
    table.row()
        .add(static_cast<int>(m))
        .add(static_cast<int>(net.address_bits()))
        .add(static_cast<std::uint64_t>(net.node_count()))
        .add(static_cast<std::uint64_t>(net.cluster_count()))
        .add(static_cast<int>(net.degree()));
    if (m <= 4) {
      const unsigned d = core::exact_diameter(net);
      table.add(static_cast<int>(d))
          .add(static_cast<int>(net.theoretical_diameter()))
          .add(d == net.theoretical_diameter() ? "yes" : "NO");
    } else {
      table.add("-")
          .add(static_cast<int>(net.theoretical_diameter()))
          .add("(formula)");
    }
  }
  table.print(std::cout,
              "T1: hierarchical hypercube topology properties per m");
  std::cout << "\nExpected shape: diameter grows as 2^(m+1) while the degree "
               "stays m+1 —\nthe HHC trades a small diameter increase over "
               "Q_n for exponentially lower degree.\n";
  return 0;
}
