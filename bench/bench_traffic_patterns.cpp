// Experiment F9 — synthetic traffic patterns on the HHC.
//
// One packet per node, all injected at cycle 0, destinations given by the
// classic patterns. Bit-complement is the HHC's adversarial case (every
// cluster dimension differs -> full gateway tours and gateway contention);
// shuffle keeps traffic near-local. The drain time spread quantifies how
// pattern-sensitive the hierarchical design is.
#include <iostream>

#include "core/routing.hpp"
#include "sim/network.hpp"
#include "sim/patterns.hpp"
#include "util/table.hpp"

int main() {
  using namespace hhc;

  for (unsigned m = 2; m <= 3; ++m) {
    const core::HhcTopology net{m};
    util::Table table{{"pattern", "flows", "avg hops", "p50 lat", "p95 lat",
                       "max lat", "drain cycles"}};
    for (const sim::Pattern p :
         {sim::Pattern::kShuffle, sim::Pattern::kRotate,
          sim::Pattern::kReverse, sim::Pattern::kTornado,
          sim::Pattern::kComplement}) {
      const auto flows = sim::pattern_traffic(net, p);
      sim::NetworkSimulator simulator{net};
      double hops = 0;
      for (const auto& f : flows) {
        const auto route = core::route(net, f.s, f.t);
        hops += static_cast<double>(route.size() - 1);
        simulator.inject(route, 0);
      }
      const auto report = simulator.run();
      table.row()
          .add(sim::pattern_name(p))
          .add(flows.size())
          .add(hops / static_cast<double>(flows.size()), 2)
          .add(report.latency.p50)
          .add(report.latency.p95)
          .add(report.latency.max)
          .add(static_cast<std::uint64_t>(report.cycles));
    }
    table.print(std::cout, "F9 (m=" + std::to_string(m) +
                               "): synthetic patterns, one packet per node "
                               "at cycle 0");
    std::cout << '\n';
  }
  std::cout << "Expected shape: shuffle stays near the average route length; "
               "bit-complement pays\nboth the longest routes (all cluster "
               "dimensions differ) and the worst gateway\ncontention — the "
               "drain-time spread is the pattern sensitivity of the HHC.\n";
  return 0;
}
