// Experiment F6 — latency vs offered load (the classic saturation curve).
//
// Uniform random traffic is injected over a fixed horizon at increasing
// rates; the simulator's single-packet-per-link-per-cycle contention model
// produces the textbook hockey stick: flat latency up to saturation, then
// queueing blow-up. Reported for the HHC at m = 3 (2048 nodes).
#include <iostream>

#include "core/routing.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"
#include "util/table.hpp"

int main() {
  using namespace hhc;
  const core::HhcTopology net{3};
  constexpr std::uint64_t kHorizon = 100;

  util::Table table{{"packets", "load (pkts/cycle)", "delivered", "p50 lat",
                     "p95 lat", "max lat", "drain cycles"}};
  for (const std::size_t packets : {200u, 1000u, 4000u, 16000u, 64000u}) {
    sim::NetworkSimulator simulator{net};
    const auto flows =
        sim::uniform_random_traffic(net, packets, kHorizon, 99);
    for (const auto& f : flows) {
      simulator.inject(core::route(net, f.s, f.t), f.inject_time);
    }
    const auto report = simulator.run(1u << 22);
    table.row()
        .add(packets)
        .add(static_cast<double>(packets) / kHorizon, 2)
        .add(report.delivered)
        .add(report.latency.p50)
        .add(report.latency.p95)
        .add(report.latency.max)
        .add(static_cast<std::uint64_t>(report.cycles));
  }
  table.print(std::cout,
              "F6 (m=3, 2048 nodes): latency vs offered load, uniform random "
              "traffic over 100 cycles");
  std::cout << "\nExpected shape: p50 stays near the average route length at "
               "low load; the tail\n(p95/max) grows once per-link contention "
               "sets in — the saturation hockey stick.\n";
  return 0;
}
