// Experiment F6 — latency vs offered load (the classic saturation curve).
//
// Part 1: uniform random traffic is injected over a fixed horizon at
// increasing rates; the simulator's single-packet-per-link-per-cycle
// contention model produces the textbook hockey stick: flat latency up to
// saturation, then queueing blow-up. Reported for the HHC at m = 3 (2048
// nodes).
//
// Part 2 (overload sweep): the same question asked of the QUERY ENGINE
// instead of the packet network. Offered load is swept past the service's
// capacity with admission control and per-query deadlines armed; reported
// per level: goodput (authoritative answers per second), p99 latency, and
// the shed rate. A healthy overload posture keeps p99 bounded and goodput
// flat past saturation while the shed rate absorbs the excess — the
// unhealthy alternative (unbounded queueing) shows up as p99 blowing up
// instead. The sweep is appended to BENCH_query.json next to
// bench_query_throughput's output so both engine-level curves live in one
// machine-readable file.
//
// Part 3 (closed-loop sweep + shed cost, PR 8): the acceptance curve for
// the shed-fast path. A fixed set of streams (4x the in-flight bound)
// issue-on-completion against a kReject gate, so offered load self-
// regulates and every excess arrival exercises the striped rejection path;
// goodput must PLATEAU as queries/epoch rises (the old sweep collapsed
// 575k -> 296k qps because rejections paid per-query allocation + stats).
// A micro-measurement of answer() against a fully-shedding gate reports
// the rejection cost itself (shed_cost_p50/p99_us; the contract is < 1 µs
// p99).
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "core/io.hpp"
#include "core/routing.hpp"
#include "query/path_service.hpp"
#include "sim/network.hpp"
#include "sim/soak.hpp"
#include "sim/traffic.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

struct OverloadRow {
  std::size_t offered_per_epoch = 0;
  std::size_t offered = 0;
  std::size_t ok = 0;
  std::size_t shed = 0;       // door + service sheds
  std::size_t timed_out = 0;
  double goodput_qps = 0.0;   // authoritative answers per second
  double p99_us = 0.0;        // worst per-epoch p99
  double shed_rate = 0.0;
};

OverloadRow run_level(std::size_t offered_per_epoch, std::size_t epochs) {
  hhc::sim::SoakConfig config;
  config.m = 2;
  config.epochs = epochs;
  config.queries_per_epoch = offered_per_epoch;
  config.workers = 4;
  config.max_queued = 512;
  config.deadline_us = 2000.0;
  config.fault_rate = 0.5;
  config.seed = 99;
  config.admission.max_in_flight = 8;
  config.admission.policy = hhc::query::AdmissionPolicy::kQueue;
  const hhc::sim::SoakReport report = hhc::sim::run_soak(config);

  OverloadRow row;
  row.offered_per_epoch = offered_per_epoch;
  row.offered = report.offered;
  row.ok = report.ok;
  row.shed = report.shed + report.door_shed;
  row.timed_out = report.timed_out;
  row.goodput_qps = report.wall_seconds > 0.0
                        ? static_cast<double>(report.ok) / report.wall_seconds
                        : 0.0;
  for (const auto& epoch : report.epochs) {
    if (epoch.p99_us > row.p99_us) row.p99_us = epoch.p99_us;
  }
  row.shed_rate = report.offered > 0
                      ? static_cast<double>(row.shed) /
                            static_cast<double>(report.offered)
                      : 0.0;
  return row;
}

// Closed-loop variant: the same network and seed, but `workers` fixed
// streams (4x the in-flight bound) issuing on completion against a
// shed-fast kReject gate — offered load self-regulates, door_shed is 0 by
// construction, and the excess arrivals all take the rejection path.
OverloadRow run_closed_level(std::size_t offered_per_epoch,
                             std::size_t epochs) {
  hhc::sim::SoakConfig config;
  config.m = 2;
  config.epochs = epochs;
  config.queries_per_epoch = offered_per_epoch;
  config.workers = 32;
  config.closed_loop = true;
  config.deadline_us = 2000.0;
  config.fault_rate = 0.5;
  config.seed = 99;
  config.admission.max_in_flight = 8;
  config.admission.policy = hhc::query::AdmissionPolicy::kReject;
  const hhc::sim::SoakReport report = hhc::sim::run_soak(config);

  OverloadRow row;
  row.offered_per_epoch = offered_per_epoch;
  row.offered = report.offered;
  row.ok = report.ok;
  row.shed = report.shed + report.door_shed;
  row.timed_out = report.timed_out;
  row.goodput_qps = report.goodput_qps();
  for (const auto& epoch : report.epochs) {
    if (epoch.p99_us > row.p99_us) row.p99_us = epoch.p99_us;
  }
  row.shed_rate = report.offered > 0
                      ? static_cast<double>(row.shed) /
                            static_cast<double>(report.offered)
                      : 0.0;
  return row;
}

struct ShedCost {
  double p50_us = 0.0;
  double p99_us = 0.0;
};

// Times answer() against a gate shedding 100% of traffic (overloaded +
// shed_on_overload, probing disabled): the per-call cost of the rejection
// fast path itself, clock overhead included.
ShedCost measure_shed_cost(std::size_t samples) {
  using namespace hhc;
  const core::HhcTopology net{2};
  query::PathServiceConfig config;
  config.admission.ewma_alpha = 1.0;
  config.admission.overload_latency_us = 1e-3;  // any completion overloads
  config.admission.shed_on_overload = true;
  config.admission.probe_interval = 0;  // pure sheds for the measurement
  query::PathService service{net, config};
  (void)service.answer(query::PairQuery{.s = 0, .t = 60});  // seed the EWMA
  if (!service.gate().overloaded()) return {};  // can't happen; belt&braces

  const query::PairQuery query{.s = 0, .t = 60};
  std::vector<double> micros(samples);
  for (double& sample : micros) {
    const util::Stopwatch watch;
    (void)service.answer(query);
    sample = watch.micros();
  }
  std::sort(micros.begin(), micros.end());
  return ShedCost{micros[samples / 2], micros[samples * 99 / 100]};
}

void sweep_rows_json(hhc::core::JsonWriter& json,
                     const std::vector<OverloadRow>& rows) {
  for (const OverloadRow& row : rows) {
    json.begin_object();
    json.key("offered_per_epoch").value(std::uint64_t{row.offered_per_epoch});
    json.key("offered").value(std::uint64_t{row.offered});
    json.key("ok").value(std::uint64_t{row.ok});
    json.key("shed").value(std::uint64_t{row.shed});
    json.key("timed_out").value(std::uint64_t{row.timed_out});
    json.key("goodput_qps").value(row.goodput_qps);
    json.key("p99_us").value(row.p99_us);
    json.key("shed_rate").value(row.shed_rate);
    json.end_object();
  }
}

// Both sweeps plus the shed-cost scalars as an inner fragment
// `"overload_sweep":[...],"overload_sweep_closed":[...],...` (no outer
// braces), ready to splice into an existing JSON object.
std::string sweep_fragment(const std::vector<OverloadRow>& open_rows,
                           const std::vector<OverloadRow>& closed_rows,
                           const ShedCost& cost) {
  hhc::core::JsonWriter json;
  json.begin_object();
  json.key("overload_sweep").begin_array();
  sweep_rows_json(json, open_rows);
  json.end_array();
  json.key("overload_sweep_closed").begin_array();
  sweep_rows_json(json, closed_rows);
  json.end_array();
  json.key("shed_cost_p50_us").value(cost.p50_us);
  json.key("shed_cost_p99_us").value(cost.p99_us);
  json.end_object();
  std::string doc = json.str();
  return doc.substr(1, doc.size() - 2);  // strip the outer { }
}

// Splices the sweep into BENCH_query.json beside bench_query_throughput's
// fields (replacing any sweep from an earlier run); starts a fresh document
// when the file is absent or unusable. String surgery, not parsing — the
// repo has no JSON reader and the file is a single flat object.
void merge_into_bench_query(const std::string& fragment) {
  std::string doc;
  {
    std::ifstream in{"BENCH_query.json"};
    doc.assign(std::istreambuf_iterator<char>{in},
               std::istreambuf_iterator<char>{});
  }
  while (!doc.empty() && (doc.back() == '\n' || doc.back() == ' ')) {
    doc.pop_back();
  }
  const std::string::size_type old_sweep = doc.find(",\"overload_sweep\"");
  if (old_sweep != std::string::npos) {
    // Drops everything this bench wrote before (both sweeps + shed cost —
    // they always trail the throughput fields) and the closing brace.
    doc.erase(old_sweep);
  } else if (!doc.empty() && doc.back() == '}') {
    doc.pop_back();
  } else {
    doc = "{\"bench\":\"load_latency\"";
  }
  doc += ',' + fragment + '}';
  std::ofstream out{"BENCH_query.json"};
  out << doc << '\n';
  std::cout << "wrote overload sweep into BENCH_query.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hhc;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const core::HhcTopology net{3};
  constexpr std::uint64_t kHorizon = 100;

  util::Table table{{"packets", "load (pkts/cycle)", "delivered", "p50 lat",
                     "p95 lat", "max lat", "drain cycles"}};
  for (const std::size_t packets : {200u, 1000u, 4000u, 16000u, 64000u}) {
    sim::NetworkSimulator simulator{net};
    const auto flows =
        sim::uniform_random_traffic(net, packets, kHorizon, 99);
    for (const auto& f : flows) {
      simulator.inject(core::route(net, f.s, f.t), f.inject_time);
    }
    const auto report = simulator.run(1u << 22);
    table.row()
        .add(packets)
        .add(static_cast<double>(packets) / kHorizon, 2)
        .add(report.delivered)
        .add(report.latency.p50)
        .add(report.latency.p95)
        .add(report.latency.max)
        .add(static_cast<std::uint64_t>(report.cycles));
  }
  table.print(std::cout,
              "F6 (m=3, 2048 nodes): latency vs offered load, uniform random "
              "traffic over 100 cycles");
  std::cout << "\nExpected shape: p50 stays near the average route length at "
               "low load; the tail\n(p95/max) grows once per-link contention "
               "sets in — the saturation hockey stick.\n\n";

  // Part 2: the query-engine overload sweep.
  const std::size_t epochs = smoke ? 2 : 4;
  std::vector<std::size_t> levels{256, 1024, 4096};
  if (!smoke) levels.push_back(16384);

  std::vector<OverloadRow> rows;
  util::Table sweep{{"offered/epoch", "offered", "ok", "shed", "timed-out",
                     "goodput q/s", "p99 us", "shed rate"}};
  for (const std::size_t level : levels) {
    const OverloadRow row = run_level(level, epochs);
    sweep.row()
        .add(std::uint64_t{row.offered_per_epoch})
        .add(std::uint64_t{row.offered})
        .add(std::uint64_t{row.ok})
        .add(std::uint64_t{row.shed})
        .add(std::uint64_t{row.timed_out})
        .add(row.goodput_qps, 0)
        .add(row.p99_us, 1)
        .add(row.shed_rate, 3);
    rows.push_back(row);
  }
  sweep.print(std::cout,
              "F6b (m=2): query-engine overload sweep — admission-gated "
              "service, 2 ms deadlines");
  std::cout << "\nExpected shape: goodput plateaus at service capacity while "
               "the shed rate rises\nwith offered load; p99 stays bounded by "
               "the deadline instead of blowing up.\n\n";

  // Part 3: the closed-loop goodput plateau + the shed-path cost itself.
  std::vector<OverloadRow> closed_rows;
  util::Table closed_sweep{{"offered/epoch", "offered", "ok", "shed",
                            "timed-out", "goodput q/s", "p99 us",
                            "shed rate"}};
  for (const std::size_t level : levels) {
    const OverloadRow row = run_closed_level(level, epochs);
    closed_sweep.row()
        .add(std::uint64_t{row.offered_per_epoch})
        .add(std::uint64_t{row.offered})
        .add(std::uint64_t{row.ok})
        .add(std::uint64_t{row.shed})
        .add(std::uint64_t{row.timed_out})
        .add(row.goodput_qps, 0)
        .add(row.p99_us, 1)
        .add(row.shed_rate, 3);
    closed_rows.push_back(row);
  }
  closed_sweep.print(
      std::cout,
      "F6b closed-loop (m=2): 32 issue-on-completion streams, shed-fast "
      "kReject gate (bound 8)");

  const ShedCost cost = measure_shed_cost(smoke ? 20000 : 100000);
  std::cout << "\nshed-path cost: p50 " << cost.p50_us << " us, p99 "
            << cost.p99_us
            << " us (contract: < 1 us p99 — rejection is effectively "
               "free)\n"
            << "Expected shape: closed-loop goodput FLAT across offered "
               "levels — excess arrivals\nburn nanoseconds on the striped "
               "shed path instead of dragging capacity down.\n";

  merge_into_bench_query(sweep_fragment(rows, closed_rows, cost));
  return 0;
}
