// Experiment T6 — one-to-all broadcast rounds on the HHC.
//
// Reports the two-level binomial broadcast schedule's round count against
// the information-theoretic lower bound ceil(log2 N) = 2^m + m and the
// design envelope m + 2^m (m + 1), plus the transmission count (always
// exactly N - 1: a spanning broadcast, nothing resent).
#include <iostream>

#include "core/broadcast.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace hhc;

  util::Table table{{"m", "nodes", "rounds", "lower bound", "envelope",
                     "ratio", "messages", "build ms"}};
  for (unsigned m = 1; m <= 4; ++m) {
    const core::HhcTopology net{m};
    util::Stopwatch sw;
    const auto schedule = core::broadcast_schedule(net, 0);
    const double ms = sw.millis();
    if (!core::verify_broadcast_schedule(net, schedule, 0)) {
      std::cerr << "broadcast schedule INVALID for m=" << m << '\n';
      return 1;
    }
    const unsigned lb = core::broadcast_lower_bound(net);
    const std::size_t envelope = m + net.cluster_dimensions() * (m + 1);
    table.row()
        .add(static_cast<int>(m))
        .add(static_cast<std::uint64_t>(net.node_count()))
        .add(schedule.round_count())
        .add(static_cast<int>(lb))
        .add(envelope)
        .add(static_cast<double>(schedule.round_count()) / lb, 2)
        .add(schedule.message_count())
        .add(ms, 2);
  }
  table.print(std::cout,
              "T6: one-to-all broadcast rounds (two-level binomial cascade)");
  std::cout << "\nExpected shape: rounds stay within a small constant factor "
               "of log2(N) = 2^m + m;\nevery node receives the message "
               "exactly once (messages = N - 1).\n";
  return 0;
}
