// Experiment T5 — cost/performance comparison of interconnection topologies.
//
// The comparison table every hierarchical-network paper includes: for a
// given connectivity budget (container size kappa), what degree, diameter,
// and disjoint-path lengths do the hypercube Q_n, the folded hypercube
// FQ_n, and the hierarchical hypercube HHC(2^m + m) pay? The HHC's selling
// point is the exponentially smaller degree at matching scale; its price is
// the larger diameter.
#include <algorithm>
#include <iostream>
#include <string>

#include "core/disjoint.hpp"
#include "core/metrics.hpp"
#include "cube/cube_disjoint.hpp"
#include "cube/folded.hpp"
#include "cube/hcn.hpp"
#include "graph/bfs.hpp"
#include "graph/vertex_disjoint.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace hhc;

struct Row {
  std::string network;
  std::uint64_t nodes;
  unsigned degree;
  unsigned diameter;
  double avg_longest;
  std::size_t max_longest;
};

template <typename BuildContainer>
std::pair<double, std::size_t> container_stats(std::uint64_t node_count,
                                               std::size_t samples,
                                               std::uint64_t seed,
                                               BuildContainer&& build) {
  util::Xoshiro256 rng{seed};
  double sum = 0;
  std::size_t worst = 0;
  std::size_t done = 0;
  while (done < samples) {
    const std::uint64_t s = rng.below(node_count);
    const std::uint64_t t = rng.below(node_count);
    if (s == t) continue;
    const std::size_t longest = build(s, t);
    sum += static_cast<double>(longest);
    worst = std::max(worst, longest);
    ++done;
  }
  return {sum / static_cast<double>(samples), worst};
}

}  // namespace

int main() {
  constexpr std::size_t kSamples = 1500;
  util::Table table{{"network", "nodes", "degree", "diameter", "avg-longest",
                     "max-longest"}};

  // Match scale: HHC(m) has 2^(2^m + m) nodes; compare against Q_n / FQ_n
  // of the same node count n = 2^m + m.
  for (unsigned m = 2; m <= 4; ++m) {
    const core::HhcTopology hhc_net{m};
    const unsigned n = hhc_net.address_bits();

    {
      const cube::Hypercube q{n};
      const auto [avg, worst] = container_stats(
          q.node_count(), kSamples, 100 + m, [&](std::uint64_t s, std::uint64_t t) {
            std::size_t longest = 0;
            for (const auto& p : cube::disjoint_paths(q, s, t, n)) {
              longest = std::max(longest, p.size() - 1);
            }
            return longest;
          });
      table.row()
          .add("Q_" + std::to_string(n))
          .add(q.node_count())
          .add(static_cast<int>(n))
          .add(static_cast<int>(n))
          .add(avg, 2)
          .add(worst);
    }
    {
      const cube::FoldedHypercube fq{n};
      const auto [avg, worst] = container_stats(
          fq.node_count(), kSamples, 200 + m,
          [&](std::uint64_t s, std::uint64_t t) {
            std::size_t longest = 0;
            for (const auto& p : fq.disjoint_paths(s, t)) {
              longest = std::max(longest, p.size() - 1);
            }
            return longest;
          });
      table.row()
          .add("FQ_" + std::to_string(n))
          .add(fq.node_count())
          .add(static_cast<int>(fq.degree()))
          .add(static_cast<int>(fq.theoretical_diameter()))
          .add(avg, 2)
          .add(worst);
    }
    // HCN(n/2) exists only at even n; its containers come from exact max
    // flow (no constructive algorithm in this library), so only the small
    // instance gets container columns.
    if (n % 2 == 0) {
      const cube::HierarchicalCubic hcn{n / 2};
      table.row()
          .add("HCN(" + std::to_string(n / 2) + ")")
          .add(hcn.node_count())
          .add(static_cast<int>(hcn.degree()));
      if (n / 2 <= 6) {
        const auto g = hcn.explicit_graph();
        table.add(static_cast<int>(graph::diameter(g)));
        const auto [avg, worst] = container_stats(
            hcn.node_count(), std::min<std::size_t>(kSamples, 300), 400 + m,
            [&](std::uint64_t s, std::uint64_t t) {
              std::size_t longest = 0;
              for (const auto& p : graph::max_vertex_disjoint_paths(
                       g, static_cast<graph::Vertex>(s),
                       static_cast<graph::Vertex>(t))) {
                longest = std::max(longest, p.size() - 1);
              }
              return longest;
            });
        table.add(avg, 2).add(worst);
      } else {
        table.add("-").add("-").add("-");
      }
    }
    {
      const auto [avg, worst] = container_stats(
          hhc_net.node_count(), kSamples, 300 + m,
          [&](std::uint64_t s, std::uint64_t t) {
            return core::node_disjoint_paths(hhc_net, s, t).max_length();
          });
      table.row()
          .add("HHC(m=" + std::to_string(m) + ")")
          .add(hhc_net.node_count())
          .add(static_cast<int>(hhc_net.degree()))
          .add(static_cast<int>(hhc_net.theoretical_diameter()))
          .add(avg, 2)
          .add(worst);
    }
  }
  table.print(std::cout,
              "T5: topology comparison at equal node count (containers over " +
                  std::to_string(kSamples) + " random pairs)");
  std::cout << "\nExpected shape: at equal node count the HHC cuts the degree "
               "from n (or n+1) to\nm+1 = O(log n); the price is roughly "
               "doubling path lengths (2^(m+1) vs n).\n";
  return 0;
}
