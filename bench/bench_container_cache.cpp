// Ablation A3 — translation-canonical container cache.
//
// Hotspot-style workloads repeat (cluster-difference, positions) triples
// constantly; the cache exploits the verified translation symmetry to
// serve them with an O(container) relabel instead of a fresh construction.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/container_cache.hpp"
#include "core/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace hhc;

void BM_DirectConstruction(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  const core::HhcTopology net{m};
  // Hotspot: many sources, one destination -> few distinct canonical keys
  // per (ys, yt) pair, all sharing yt.
  const auto pairs = core::sample_pairs(net, 256, 5);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ & 255];
    const core::Node hot = net.encode(net.cluster_of(t), 0);
    if (s == hot) continue;
    benchmark::DoNotOptimize(core::node_disjoint_paths(net, s, hot));
  }
}
BENCHMARK(BM_DirectConstruction)->DenseRange(3, 5)->Unit(benchmark::kMicrosecond);

void BM_CachedConstruction(benchmark::State& state) {
  const auto m = static_cast<unsigned>(state.range(0));
  const core::HhcTopology net{m};
  core::ContainerCache cache{net};
  const auto pairs = core::sample_pairs(net, 256, 5);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ & 255];
    const core::Node hot = net.encode(net.cluster_of(t), 0);
    if (s == hot) continue;
    benchmark::DoNotOptimize(cache.lookup(s, hot));
  }
  state.SetLabel("entries=" + std::to_string(cache.size()));
}
BENCHMARK(BM_CachedConstruction)->DenseRange(3, 5)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Summary with a workload that repeats canonical triples heavily.
  using namespace hhc;
  util::Table table{{"m", "queries", "direct ms", "cached ms", "speedup",
                     "hit rate %"}};
  for (unsigned m = 3; m <= 5; ++m) {
    const core::HhcTopology net{m};
    // 64 distinct canonical triples, queried 64x each under translations.
    std::vector<std::pair<core::Node, core::Node>> queries;
    util::Xoshiro256 rng{42};
    for (int base = 0; base < 64; ++base) {
      const std::uint64_t xdiff = rng.below(net.cluster_count() - 1) + 1;
      const std::uint64_t ys = rng.below(net.cluster_size());
      const std::uint64_t yt = rng.below(net.cluster_size());
      for (int rep = 0; rep < 64; ++rep) {
        const std::uint64_t a = rng.below(net.cluster_count());
        queries.emplace_back(net.encode(a, ys), net.encode(a ^ xdiff, yt));
      }
    }
    util::Stopwatch sw;
    for (const auto& [s, t] : queries) {
      benchmark::DoNotOptimize(core::node_disjoint_paths(net, s, t));
    }
    const double direct_ms = sw.millis();
    core::ContainerCache cache{net};
    sw.reset();
    for (const auto& [s, t] : queries) {
      benchmark::DoNotOptimize(cache.lookup(s, t));
    }
    const double cached_ms = sw.millis();
    table.row()
        .add(static_cast<int>(m))
        .add(queries.size())
        .add(direct_ms, 1)
        .add(cached_ms, 1)
        .add(direct_ms / cached_ms, 2)
        .add(100.0 * static_cast<double>(cache.hits()) /
                 static_cast<double>(queries.size()),
             1);
  }
  table.print(std::cout, "\nA3: container cache on translation-heavy workload "
                         "(64 triples x 64 translations)");
  std::cout << "Expected shape: ~98% hit rate; speedup grows with m since the "
               "construction cost\nrises while the relabel stays linear in "
               "the (smaller) output.\n";
  return 0;
}
