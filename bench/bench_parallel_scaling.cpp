// Experiment F4 — strong scaling of batch container construction.
//
// Constructing containers for a batch of pairs is embarrassingly parallel;
// this regenerates the throughput-vs-threads figure using the in-repo
// thread pool on a fixed m = 4 workload.
#include <iostream>
#include <thread>

#include "core/metrics.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

int main() {
  using namespace hhc;
  const core::HhcTopology net{4};
  const auto pairs = core::sample_pairs(net, 20000, /*seed=*/31);

  // Baseline: sequential.
  util::Stopwatch sw;
  const auto serial = core::measure_containers(net, pairs, nullptr);
  const double serial_s = sw.seconds();

  util::Table table{{"threads", "seconds", "pairs/s", "speedup",
                     "efficiency %"}};
  table.row()
      .add(1)
      .add(serial_s, 3)
      .add(static_cast<double>(pairs.size()) / serial_s, 0)
      .add(1.0, 2)
      .add(100.0, 1);

  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  for (unsigned threads = 2; threads <= hw; threads *= 2) {
    util::ThreadPool pool{threads};
    sw.reset();
    const auto parallel = core::measure_containers(net, pairs, &pool);
    const double t = sw.seconds();
    // Sanity: parallel results must match the serial ones.
    for (std::size_t i = 0; i < serial.size(); ++i) {
      if (serial[i].longest != parallel[i].longest) {
        std::cerr << "MISMATCH at pair " << i << '\n';
        return 1;
      }
    }
    const double speedup = serial_s / t;
    table.row()
        .add(static_cast<int>(threads))
        .add(t, 3)
        .add(static_cast<double>(pairs.size()) / t, 0)
        .add(speedup, 2)
        .add(100.0 * speedup / threads, 1);
  }
  table.print(std::cout,
              "F4 (m=4): strong scaling of batch disjoint-path construction, "
              "20000 pairs");
  std::cout << "\nExpected shape: near-linear speedup until memory bandwidth "
               "saturates; results\nare bit-identical across thread counts "
               "(the construction is deterministic).\n";
  return 0;
}
