// Experiment F3 — delivered-message latency in the flit simulator.
//
// Compares, under a sweep of random node faults, two ways of moving a
// message from s to t:
//   single    : the whole message as one packet over the constructive route
//               (fails whenever the route hits a fault);
//   dispersal : m+1 erasure-coded fragments over the disjoint container
//               (completes when any m fragments arrive).
// Completion latency for dispersal is the m-th fastest fragment's delivery
// time; reliability is measured as the fraction of messages completed.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/dispersal.hpp"
#include "core/fault_routing.hpp"
#include "core/metrics.hpp"
#include "core/routing.hpp"
#include "sim/network.hpp"
#include "sim/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace hhc;
  const core::HhcTopology net{3};
  constexpr std::size_t kMessages = 400;

  util::Table table{{"faults f", "single ok%", "single p50", "single p95",
                     "dispersal ok%", "dispersal p50", "dispersal p95"}};

  for (std::size_t f = 0; f <= 2 * net.m(); f += 2) {
    std::size_t single_ok = 0;
    std::size_t dispersal_ok = 0;
    std::vector<std::uint64_t> single_lat;
    std::vector<std::uint64_t> dispersal_lat;
    util::Xoshiro256 rng{500 + f};

    const auto pairs = core::sample_pairs(net, kMessages, 7000 + f);
    for (const auto& [s, t] : pairs) {
      const auto faults = core::FaultSet::random(net, f, s, t, rng);

      // Single-packet transfer over the deterministic route.
      {
        sim::NetworkSimulator simulator{net};
        simulator.set_faults(faults);
        simulator.inject(core::route(net, s, t), 0);
        const auto report = simulator.run();
        if (report.delivered == 1) {
          ++single_ok;
          single_lat.push_back(report.latency.max);
        }
      }

      // Dispersal over the disjoint container: completes with any m of m+1.
      {
        const std::vector<std::uint8_t> message(64, 0xAB);
        const auto plan = core::disperse(net, s, t, message);
        sim::NetworkSimulator simulator{net};
        simulator.set_faults(faults);
        for (const auto& frag : plan.fragments) simulator.inject(frag.path, 0);
        const auto report = simulator.run();
        if (report.delivered >= net.m()) {
          ++dispersal_ok;
          // Completion = m-th smallest fragment latency.
          std::vector<std::uint64_t> arrivals;
          for (const auto& p : simulator.packets()) {
            if (p.delivered) {
              arrivals.push_back(p.completion_time - p.inject_time);
            }
          }
          std::sort(arrivals.begin(), arrivals.end());
          dispersal_lat.push_back(arrivals[net.m() - 1]);
        }
      }
    }

    const auto s_sum = sim::summarize(std::move(single_lat));
    const auto d_sum = sim::summarize(std::move(dispersal_lat));
    table.row()
        .add(f)
        .add(100.0 * static_cast<double>(single_ok) / kMessages, 1)
        .add(s_sum.p50)
        .add(s_sum.p95)
        .add(100.0 * static_cast<double>(dispersal_ok) / kMessages, 1)
        .add(d_sum.p50)
        .add(d_sum.p95);
  }
  table.print(std::cout,
              "F3 (m=3): message completion in the flit simulator, " +
                  std::to_string(kMessages) + " messages per row");
  std::cout << "\nExpected shape: dispersal completion stays ~100% across the "
               "fault sweep with\nlatency close to the single-path case "
               "(longest-of-m paths ~ diameter + O(m));\nsingle-packet "
               "success decays with f.\n";
  return 0;
}
