// Ablation A2 — canonical vs balanced route-selection policy.
//
// The canonical fill takes the remaining rotations in offset order and
// detours in ascending dimension; the balanced fill ranks every remaining
// candidate by its estimated realized length. Same disjointness guarantee
// (any subset with distinct first/last dimensions works); this bench
// quantifies what the cheap greedy ranking buys in container length.
#include <algorithm>
#include <iostream>

#include "core/disjoint.hpp"
#include "core/metrics.hpp"
#include "util/table.hpp"

int main() {
  using namespace hhc;

  util::Table table{{"m", "pairs", "canon avg-longest", "balanced avg-longest",
                     "canon max", "balanced max", "avg saving %"}};
  for (unsigned m = 2; m <= 5; ++m) {
    const core::HhcTopology net{m};
    const auto pairs = core::sample_pairs(net, 2000, /*seed=*/909);

    double canon_sum = 0;
    double balanced_sum = 0;
    std::size_t canon_max = 0;
    std::size_t balanced_max = 0;
    for (const auto& [s, t] : pairs) {
      const auto canon = core::node_disjoint_paths(
          net, s, t,
          core::ConstructionOptions{core::DimensionOrdering::kGrayCycle,
                                    core::RouteSelectionPolicy::kCanonical});
      const auto balanced = core::node_disjoint_paths(
          net, s, t,
          core::ConstructionOptions{core::DimensionOrdering::kGrayCycle,
                                    core::RouteSelectionPolicy::kBalanced});
      canon_sum += static_cast<double>(canon.max_length());
      balanced_sum += static_cast<double>(balanced.max_length());
      canon_max = std::max(canon_max, canon.max_length());
      balanced_max = std::max(balanced_max, balanced.max_length());
    }
    const double n = static_cast<double>(pairs.size());
    table.row()
        .add(static_cast<int>(m))
        .add(pairs.size())
        .add(canon_sum / n, 2)
        .add(balanced_sum / n, 2)
        .add(canon_max)
        .add(balanced_max)
        .add(100.0 * (1.0 - balanced_sum / canon_sum), 1);
  }
  table.print(std::cout,
              "A2: container longest path, canonical vs balanced route "
              "selection (Gray ordering fixed)");
  std::cout << "\nExpected shape: modest but consistent savings — most routes "
               "are forced (all k\nrotations are needed when k >= m+1); the "
               "policy only bites when detours compete.\n";
  return 0;
}
