// Experiment F5 — end-to-end transfer strategies under faults.
//
// Compares the three resilient-transfer protocols built on the disjoint
// container (serial retry with timeouts, erasure-coded dispersal, full
// flooding) across a fault sweep: completion probability, completion
// cycles, and bandwidth overhead (wasted hop-transmissions).
#include <iostream>

#include "core/metrics.hpp"
#include "sim/resilient.hpp"
#include "sim/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace hhc;
  const core::HhcTopology net{3};
  constexpr std::size_t kMessages = 400;

  util::Table table{{"faults f", "strategy", "ok %", "p50 cycles",
                     "p95 cycles", "wasted hops/msg"}};

  for (std::size_t f = 0; f <= 2 * net.m(); f += 3) {
    struct Acc {
      const char* name;
      sim::TransferOutcome (*run)(const core::HhcTopology&, core::Node,
                                  core::Node, const core::FaultSet&);
      std::size_t ok = 0;
      double wasted = 0;
      std::vector<std::uint64_t> cycles;
    };
    Acc accs[3] = {{"serial-retry", &sim::serial_retry_transfer, 0, 0.0, {}},
                   {"dispersal", &sim::dispersal_transfer, 0, 0.0, {}},
                   {"flooding", &sim::flooding_transfer, 0, 0.0, {}}};

    util::Xoshiro256 rng{811 + f};
    const auto pairs = core::sample_pairs(net, kMessages, 4000 + f);
    for (const auto& [s, t] : pairs) {
      const auto faults = core::FaultSet::random(net, f, s, t, rng);
      for (auto& acc : accs) {
        const auto outcome = acc.run(net, s, t, faults);
        if (outcome.delivered) {
          ++acc.ok;
          acc.cycles.push_back(outcome.completion_cycles);
        }
        acc.wasted += static_cast<double>(outcome.wasted_transmissions);
      }
    }
    for (auto& acc : accs) {
      const auto summary = sim::summarize(std::move(acc.cycles));
      table.row()
          .add(f)
          .add(acc.name)
          .add(100.0 * static_cast<double>(acc.ok) / kMessages, 1)
          .add(summary.p50)
          .add(summary.p95)
          .add(acc.wasted / kMessages, 2);
    }
  }
  table.print(std::cout,
              "F5 (m=3): end-to-end transfer strategies over the disjoint "
              "container, " + std::to_string(kMessages) + " messages per cell");
  std::cout << "\nExpected shape: serial retry degrades in latency as faults "
               "rise (timeouts);\ndispersal keeps one-shot latency at ~zero "
               "extra bandwidth; flooding buys the\nfastest completion for "
               "m x bandwidth.\n";
  return 0;
}
