// Experiment F8 — wormhole switching: virtual channels vs deadlock and
// latency across a load sweep.
//
// Random traffic over source routes. Adaptive wormhole routing over
// arbitrary source routes has cyclic channel dependencies, so under enough
// pressure it deadlocks; the experiment locates the deadlock threshold for
// each VC count (the threshold moves up with V) and reports latency where
// runs survive. Store-and-forward rows give the reference behavior (no
// deadlock by construction, higher per-hop cost for multi-flit packets).
#include <iostream>
#include <string>

#include "core/routing.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"
#include "sim/wormhole.hpp"
#include "util/table.hpp"

int main() {
  using namespace hhc;
  const core::HhcTopology net{2};  // 64 nodes: dense enough to contend
  constexpr std::uint64_t kHorizon = 100;
  constexpr std::size_t kLength = 8;  // flits per packet
  constexpr int kTrials = 5;

  util::Table table{{"packets", "VCs", "deadlock runs", "delivered %",
                     "p50 lat", "p95 lat", "blocked cyc/worm"}};

  for (const std::size_t packets : {100u, 300u, 900u}) {
    for (unsigned vcs = 1; vcs <= 4; ++vcs) {
      std::size_t deadlock_runs = 0;
      std::size_t delivered = 0;
      double blocked = 0;
      std::vector<std::uint64_t> p50s;
      std::vector<std::uint64_t> p95s;
      for (int trial = 0; trial < kTrials; ++trial) {
        sim::WormholeConfig config;
        config.virtual_channels = vcs;
        config.packet_length = kLength;
        config.stall_threshold = 1024;
        sim::WormholeSimulator sim{net, config};
        const auto flows = sim::uniform_random_traffic(
            net, packets, kHorizon,
            static_cast<std::uint64_t>(1000 + trial));
        for (const auto& f : flows) {
          sim.inject(core::route(net, f.s, f.t), f.inject_time);
        }
        const auto report = sim.run();
        deadlock_runs += report.deadlock_detected ? 1 : 0;
        delivered += report.delivered;
        blocked += report.mean_blocked_cycles;
        if (report.delivered > 0) {
          p50s.push_back(report.latency.p50);
          p95s.push_back(report.latency.p95);
        }
      }
      table.row()
          .add(packets)
          .add(static_cast<int>(vcs))
          .add(std::to_string(deadlock_runs) + "/" + std::to_string(kTrials))
          .add(100.0 * static_cast<double>(delivered) /
                   static_cast<double>(packets * kTrials),
               1)
          .add(p50s.empty() ? 0 : sim::summarize(p50s).p50)
          .add(p95s.empty() ? 0 : sim::summarize(p95s).p50)
          .add(blocked / kTrials, 2);
    }
  }

  // Store-and-forward reference (multi-flit packet charged per hop would
  // scale latency by kLength; shown with 1-flit packets as the baseline).
  {
    sim::NetworkSimulator sim{net};
    const auto flows = sim::uniform_random_traffic(net, 900, kHorizon, 1000);
    for (const auto& f : flows) {
      sim.inject(core::route(net, f.s, f.t), f.inject_time);
    }
    const auto report = sim.run();
    table.row()
        .add(std::size_t{900})
        .add("SAF")
        .add("0/1")
        .add(100.0 * static_cast<double>(report.delivered) / 900.0, 1)
        .add(report.latency.p50)
        .add(report.latency.p95)
        .add(0.0, 2);
  }

  table.print(std::cout,
              "F8 (m=2, 64 nodes, 8-flit worms over 100 cycles): virtual "
              "channels vs deadlock threshold");
  std::cout << "\nExpected shape: at low load all VC counts survive; as load "
               "rises, V=1 deadlocks\nfirst and higher V pushes the "
               "threshold up — the textbook argument for virtual\nchannels. "
               "Store-and-forward (SAF) never deadlocks.\n";
  return 0;
}
