// Experiment F10 — fault-injection campaign: delivery guarantees and
// graceful degradation past the m+1 bound.
//
// Runs the deterministic Monte-Carlo campaign (fault::CampaignRunner) for
// m = 2 and m = 3 in two regimes:
//   nodes only : the paper's fault model — the container guarantees 100%
//                delivery for f <= m, and every delivery is "guaranteed"
//                (a surviving container path, no fallback).
//   mixed      : half the budget becomes link faults, which the
//                node-disjoint argument does not cover; the BFS fallback
//                absorbs them as best-effort deliveries at a path-length
//                inflation cost.
// The interesting shape: success rate stays near 100% well past f = m
// (random faults rarely cut all m+1 paths *and* the survivor subgraph),
// but the guaranteed fraction falls off — the container alone stops being
// enough exactly where the theory says it must.
#include <iostream>

#include "fault/campaign.hpp"

int main() {
  using namespace hhc;

  for (unsigned m = 2; m <= 3; ++m) {
    fault::CampaignConfig nodes_only;
    nodes_only.m = m;
    nodes_only.trials = 400;
    nodes_only.max_faults = 2 * (m + 1);
    nodes_only.seed = 42;
    nodes_only.threads = 0;  // use the hardware
    fault::CampaignRunner{nodes_only}.run().print(std::cout);
    std::cout << '\n';

    fault::CampaignConfig mixed = nodes_only;
    mixed.link_fault_fraction = 0.5;
    fault::CampaignRunner{mixed}.run().print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected shape: guaranteed-% is exactly 100 for f <= m in "
               "the nodes-only sweep\n(the paper's bound) and decays past "
               "it, while success-% degrades much more\nslowly: the BFS "
               "fallback converts would-be failures into best-effort\n"
               "deliveries, paying a modest length inflation. Link faults "
               "shift deliveries\nfrom guaranteed to best-effort earlier, "
               "since the container has no defense\nagainst them.\n";
  return 0;
}
