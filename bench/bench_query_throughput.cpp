// Experiment F11 — aggregate throughput of the concurrent path-query engine.
//
// A Zipf-skewed stream of pair queries (the standard model for repeated
// routing lookups) is answered by one shared PathService while the number of
// worker threads hammering it doubles. The sharded translation-canonical
// cache is the point: the hot head of the distribution collapses onto a few
// canonical entries, so concurrent readers should scale until lock
// contention on the shards, not construction cost, is the ceiling. The
// acceptance target is >= 4x aggregate queries/s at 8 threads over 1 on the
// hot (skew 0.99) workload — measurable only on a machine with >= 8 cores.
#include <atomic>
#include <cstddef>
#include <iostream>
#include <thread>
#include <vector>

#include "core/metrics.hpp"
#include "query/path_service.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace hhc;

constexpr std::size_t kPairPool = 4096;
// Fixed TOTAL work split across the callers: every row answers the same
// number of queries and pays the same cold-cache miss cost, so the speedup
// column isolates parallelism instead of miss-cost amortization.
constexpr std::size_t kQueriesTotal = 160000;

struct RunResult {
  double seconds = 0.0;
  query::ServiceStats stats;
};

// `threads` independent callers, together issuing kQueriesTotal Zipfian
// draws from the shared pair pool against the one shared service.
RunResult hammer(query::PathService& service,
                 const std::vector<core::PairSample>& pairs, double skew,
                 std::size_t threads) {
  service.reset_stats();
  service.cache().clear();
  const util::ZipfianSampler zipf{pairs.size(), skew};
  const std::size_t per_thread = kQueriesTotal / threads;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t id = 0; id < threads; ++id) {
    workers.emplace_back([&, id] {
      util::Xoshiro256 rng{0xF11 + id};
      while (!go.load(std::memory_order_acquire)) {}
      for (std::size_t i = 0; i < per_thread; ++i) {
        const std::size_t k = zipf(rng);
        (void)service.answer(
            query::PairQuery{.s = pairs[k].s, .t = pairs[k].t});
      }
    });
  }
  util::Stopwatch sw;
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  RunResult result;
  result.seconds = sw.seconds();
  result.stats = service.stats();
  return result;
}

void sweep(const core::HhcTopology& net,
           const std::vector<core::PairSample>& pairs, double skew,
           const char* label) {
  // Capacity (16 shards x 64 = 1024 entries) is deliberately smaller than
  // the 4096-pair pool: a Zipf-hot head stays resident while uniform
  // traffic thrashes, so the hit-rate column actually separates the
  // workloads instead of converging to ~100% once everything is cached.
  query::PathService service{net,
                             {.cache_shards = 16, .max_entries_per_shard = 64}};
  // Discarded warm-up: lets the shard hash tables reach their steady-state
  // bucket counts so the first measured row sees the same eviction dynamics
  // as the rest (clear() keeps buckets, only drops entries).
  (void)hammer(service, pairs, skew, 1);
  util::Table table{{"threads", "seconds", "queries/s", "speedup", "hit %",
                     "p50 us", "p99 us"}};
  double base_qps = 0.0;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (std::size_t threads = 1; threads <= std::max(8u, hw); threads *= 2) {
    const auto run = hammer(service, pairs, skew, threads);
    const double qps = static_cast<double>(run.stats.queries) / run.seconds;
    if (threads == 1) base_qps = qps;
    table.row()
        .add(static_cast<int>(threads))
        .add(run.seconds, 3)
        .add(qps, 0)
        .add(qps / base_qps, 2)
        .add(100.0 * run.stats.hit_rate(), 1)
        .add(run.stats.latency.percentile(0.50), 1)
        .add(run.stats.latency.percentile(0.99), 1);
  }
  table.print(std::cout, label);
  std::cout << '\n';
}

}  // namespace

int main() {
  const core::HhcTopology net{4};
  const auto pairs = core::sample_pairs(net, kPairPool, /*seed=*/0xF11);
  std::cout << "F11: PathService aggregate throughput, m=4, " << kPairPool
            << "-pair pool, " << kQueriesTotal
            << " total queries split across callers, "
            << std::thread::hardware_concurrency() << " hardware threads\n\n";

  sweep(net, pairs, 0.99, "hot workload (Zipf skew 0.99)");
  sweep(net, pairs, 0.0, "cold workload (uniform, skew 0)");

  std::cout
      << "Expected shape: the Zipf head stays resident in the capacity-bound\n"
         "cache, so the hot workload runs at a far higher hit rate and\n"
         "throughput than the uniform one (which thrashes the 1024-entry\n"
         "capacity and keeps paying construction, outside any lock).\n"
         "Aggregate queries/s scales with threads (target: >= 4x at 8\n"
         "threads on an >= 8-core machine; a single-core box reports\n"
         "speedup ~1x by construction). Answers are bit-identical to serial\n"
         "node_disjoint_paths at every thread count.\n";
  return 0;
}
