// Experiment F11 — aggregate throughput of the concurrent path-query engine.
//
// A Zipf-skewed stream of pair queries (the standard model for repeated
// routing lookups) is answered by one shared PathService while the number of
// worker threads hammering it doubles. The sharded translation-canonical
// cache is the point: the hot head of the distribution collapses onto a few
// canonical entries, so concurrent readers should scale until lock
// contention on the shards, not construction cost, is the ceiling. The
// acceptance target is >= 4x aggregate queries/s at 8 threads over 1 on the
// hot (skew 0.99) workload — measurable only on a machine with >= 8 cores.
//
// The workers drive answer_view(), the zero-copy pristine fast path: a
// cache hit hands back a borrowed ContainerHandle (one shared_ptr copy, no
// node copying, no allocation), which is what a routing data plane would
// consume. materialize() on the view reproduces answer()'s paths bit for
// bit, so the throughput here is the handle path, not a different answer.
//
// `--smoke` shrinks the pool/total for a seconds-long CI run. Both modes
// write machine-readable rows to BENCH_query.json; REPRODUCING.md describes
// the baseline-comparison workflow.
#include <atomic>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/fault_model.hpp"
#include "core/fault_routing.hpp"
#include "core/io.hpp"
#include "core/metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "query/path_service.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace hhc;

// Fixed TOTAL work split across the callers: every row answers the same
// number of queries and pays the same cold-cache miss cost, so the speedup
// column isolates parallelism instead of miss-cost amortization.
std::size_t g_pair_pool = 4096;
std::size_t g_queries_total = 160000;

struct RunResult {
  double seconds = 0.0;
  query::ServiceStats stats;
};

struct SweepRow {
  double skew = 0.0;
  std::size_t threads = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double hit_rate = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

// `threads` independent callers, together issuing g_queries_total Zipfian
// draws from the shared pair pool against the one shared service.
RunResult hammer(query::PathService& service,
                 const std::vector<core::PairSample>& pairs, double skew,
                 std::size_t threads) {
  service.reset_stats();
  service.cache().clear();
  const util::ZipfianSampler zipf{pairs.size(), skew};
  const std::size_t per_thread = g_queries_total / threads;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t id = 0; id < threads; ++id) {
    workers.emplace_back([&, id] {
      util::Xoshiro256 rng{0xF11 + id};
      while (!go.load(std::memory_order_acquire)) {}
      for (std::size_t i = 0; i < per_thread; ++i) {
        const std::size_t k = zipf(rng);
        const auto view = service.answer_view(
            query::PairQuery{.s = pairs[k].s, .t = pairs[k].t});
        // Touch the handle so the relabeling XOR isn't optimized away.
        volatile core::Node sink = view.container.source();
        (void)sink;
      }
    });
  }
  util::Stopwatch sw;
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  RunResult result;
  result.seconds = sw.seconds();
  result.stats = service.stats();
  return result;
}

void sweep(const core::HhcTopology& net,
           const std::vector<core::PairSample>& pairs, double skew,
           const char* label, std::size_t max_threads,
           std::vector<SweepRow>& rows) {
  // Capacity (16 shards x 64 = 1024 entries) is deliberately smaller than
  // the 4096-pair pool: a Zipf-hot head stays resident while uniform
  // traffic thrashes, so the hit-rate column actually separates the
  // workloads instead of converging to ~100% once everything is cached.
  query::PathService service{net,
                             {.cache_shards = 16, .max_entries_per_shard = 64}};
  // Discarded warm-up: lets the shard hash tables reach their steady-state
  // bucket counts so the first measured row sees the same eviction dynamics
  // as the rest (clear() keeps buckets, only drops entries).
  (void)hammer(service, pairs, skew, 1);
  util::Table table{{"threads", "seconds", "queries/s", "speedup", "hit %",
                     "p50 us", "p99 us"}};
  double base_qps = 0.0;
  for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
    const auto run = hammer(service, pairs, skew, threads);
    const double qps = static_cast<double>(run.stats.queries) / run.seconds;
    if (threads == 1) base_qps = qps;
    const SweepRow row{.skew = skew,
                       .threads = threads,
                       .seconds = run.seconds,
                       .qps = qps,
                       .hit_rate = run.stats.hit_rate(),
                       .p50_us = run.stats.latency.percentile(0.50),
                       .p99_us = run.stats.latency.percentile(0.99)};
    rows.push_back(row);
    table.row()
        .add(static_cast<int>(threads))
        .add(row.seconds, 3)
        .add(row.qps, 0)
        .add(row.qps / base_qps, 2)
        .add(100.0 * row.hit_rate, 1)
        .add(row.p50_us, 1)
        .add(row.p99_us, 1);
  }
  table.print(std::cout, label);
  std::cout << '\n';
}

struct StageRow {
  std::string stage;
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

struct TracingOverhead {
  double disabled_qps = 0.0;
  double enabled_qps = 0.0;
};

// Per-stage latency breakdown: one traced single-thread pass of the hot
// workload (cache lookup / construct / answer_view stages) plus a
// fault-aware pass (container scan / BFS fallback), read back from the
// registry's stage histograms. Also measures the cost of leaving the
// instrumentation resident: the same hammer pass with tracing disabled vs
// enabled (disabled is the production configuration the < 2% overhead
// acceptance is about).
void stage_breakdown(const core::HhcTopology& net,
                     const std::vector<core::PairSample>& pairs, bool smoke,
                     std::vector<StageRow>& stages, TracingOverhead& tracing) {
  query::PathService service{net,
                             {.cache_shards = 16, .max_entries_per_shard = 64}};
  (void)hammer(service, pairs, 0.99, 1);  // warm-up, discarded

  const auto off = hammer(service, pairs, 0.99, 1);
  tracing.disabled_qps =
      static_cast<double>(off.stats.queries) / off.seconds;

  obs::MetricRegistry::global().reset();
  obs::Tracer::enable(/*events_per_thread=*/1 << 10);
  const auto on = hammer(service, pairs, 0.99, 1);
  tracing.enabled_qps = static_cast<double>(on.stats.queries) / on.seconds;

  // Fault-aware pass while still tracing: lights up the router stages.
  const std::size_t fault_queries = smoke ? 500 : 4000;
  util::Xoshiro256 rng{0xF11D};
  for (std::size_t i = 0; i < fault_queries; ++i) {
    const auto& p = pairs[i % pairs.size()];
    const core::FaultModel faults{
        core::FaultSet::random(net, /*count=*/3, p.s, p.t, rng)};
    (void)service.answer(
        query::PairQuery{.s = p.s, .t = p.t, .faults = &faults});
  }
  obs::Tracer::disable();

  util::Table table{{"stage", "count", "p50 us", "p99 us", "max us"}};
  for (const auto& [name, hist] :
       obs::MetricRegistry::global().snapshot().histograms) {
    if (hist.count == 0) continue;
    const StageRow row{.stage = name,
                       .count = hist.count,
                       .p50_us = hist.percentile(0.50),
                       .p99_us = hist.percentile(0.99),
                       .max_us = hist.max_value};
    stages.push_back(row);
    table.row()
        .add(row.stage)
        .add(row.count)
        .add(row.p50_us, 1)
        .add(row.p99_us, 1)
        .add(row.max_us, 1);
  }
  table.print(std::cout, "per-stage latency breakdown (traced passes)");
  std::cout << "tracing overhead: " << static_cast<std::uint64_t>(
                   tracing.disabled_qps)
            << " qps disabled vs "
            << static_cast<std::uint64_t>(tracing.enabled_qps)
            << " qps enabled (disabled is the production default)\n\n";
}

void emit_json(const std::vector<SweepRow>& rows,
               const std::vector<StageRow>& stages,
               const TracingOverhead& tracing, bool smoke) {
  core::JsonWriter json;
  json.begin_object()
      .key("bench").value("query_throughput")
      .key("mode").value(smoke ? "smoke" : "full")
      .key("pair_pool").value(static_cast<std::uint64_t>(g_pair_pool))
      .key("queries_total").value(static_cast<std::uint64_t>(g_queries_total))
      // Lets consumers (the CI scaling assert) judge whether the thread
      // sweep could physically scale on the machine that produced it.
      .key("hardware_threads")
      .value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .key("results").begin_array();
  for (const SweepRow& row : rows) {
    json.begin_object()
        .key("skew").value(row.skew)
        .key("threads").value(static_cast<std::uint64_t>(row.threads))
        .key("seconds").value(row.seconds)
        .key("queries_per_s").value(row.qps)
        .key("hit_rate").value(row.hit_rate)
        .key("p50_us").value(row.p50_us)
        .key("p99_us").value(row.p99_us)
        .end_object();
  }
  json.end_array();
  json.key("stages").begin_array();
  for (const StageRow& row : stages) {
    json.begin_object()
        .key("stage").value(row.stage)
        .key("count").value(row.count)
        .key("p50_us").value(row.p50_us)
        .key("p99_us").value(row.p99_us)
        .key("max_us").value(row.max_us)
        .end_object();
  }
  json.end_array();
  json.key("tracing").begin_object()
      .key("disabled_qps").value(tracing.disabled_qps)
      .key("enabled_qps").value(tracing.enabled_qps)
      .end_object();
  json.end_object();
  std::ofstream out{"BENCH_query.json"};
  out << json.str() << '\n';
  std::cout << "wrote BENCH_query.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::size_t max_threads = std::max(8u, std::max(1u, std::thread::hardware_concurrency()));
  if (smoke) {
    g_pair_pool = 1024;
    g_queries_total = 20000;
    // The full 1..8 sweep even in smoke mode: the CI scaling assert needs
    // the 8-thread hot-skew row, and 20k queries keep each row sub-second.
    max_threads = 8;
  }

  const core::HhcTopology net{4};
  const auto pairs = core::sample_pairs(net, g_pair_pool, /*seed=*/0xF11);
  std::cout << "F11: PathService aggregate throughput (answer_view), m=4, "
            << g_pair_pool << "-pair pool, " << g_queries_total
            << " total queries split across callers, "
            << std::thread::hardware_concurrency() << " hardware threads\n\n";

  std::vector<SweepRow> rows;
  sweep(net, pairs, 0.99, "hot workload (Zipf skew 0.99)", max_threads, rows);
  sweep(net, pairs, 0.0, "cold workload (uniform, skew 0)", max_threads, rows);

  std::vector<StageRow> stages;
  TracingOverhead tracing;
  stage_breakdown(net, pairs, smoke, stages, tracing);

  std::cout
      << "Expected shape: the Zipf head stays resident in the capacity-bound\n"
         "cache, so the hot workload runs at a far higher hit rate and\n"
         "throughput than the uniform one (which thrashes the 1024-entry\n"
         "capacity and keeps paying construction, outside any lock).\n"
         "Aggregate queries/s scales with threads (target: >= 4x at 8\n"
         "threads on an >= 8-core machine; a single-core box reports\n"
         "speedup ~1x by construction). Handle answers materialize to the\n"
         "same bits as serial node_disjoint_paths at every thread count.\n";
  emit_json(rows, stages, tracing, smoke);
  return 0;
}
