// Experiment F7 — local-knowledge routing vs the global container router.
//
// The container router (route_avoiding) sees the whole fault set; the
// local router only probes neighbor liveness and backtracks. Both inherit
// the f <= m guarantee from connectivity; this table prices the missing
// knowledge in path length and wasted expansions.
#include <iostream>

#include "core/fault_routing.hpp"
#include "core/local_routing.hpp"
#include "core/metrics.hpp"
#include "sim/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace hhc;
  const core::HhcTopology net{3};
  constexpr std::size_t kTrials = 500;

  util::Table table{{"faults f", "local ok %", "global ok %", "local p50 len",
                     "global p50 len", "local p95 len", "backtracks/msg"}};
  // Sparse faults barely touch either router on 2048 nodes; the sweep goes
  // deep into massive-failure territory (up to 25% of the network dead)
  // where the difference in knowledge models shows.
  for (const std::size_t f : {0u, 3u, 32u, 128u, 512u}) {
    std::size_t local_ok = 0;
    std::size_t global_ok = 0;
    double backtracks = 0;
    std::vector<std::uint64_t> local_len;
    std::vector<std::uint64_t> global_len;
    util::Xoshiro256 rng{650 + f};
    for (const auto& [s, t] : core::sample_pairs(net, kTrials, 60 + f)) {
      const auto faults = core::FaultSet::random(net, f, s, t, rng);
      const auto local = core::local_fault_route(net, s, t, faults);
      if (local.ok()) {
        ++local_ok;
        local_len.push_back(local.path.size() - 1);
      }
      backtracks += static_cast<double>(local.backtracks);
      const auto global = core::route_avoiding(net, s, t, faults);
      if (global.ok()) {
        ++global_ok;
        global_len.push_back(global.path.size() - 1);
      }
    }
    const auto local_sum = sim::summarize(std::move(local_len));
    const auto global_sum = sim::summarize(std::move(global_len));
    table.row()
        .add(f)
        .add(100.0 * static_cast<double>(local_ok) / kTrials, 1)
        .add(100.0 * static_cast<double>(global_ok) / kTrials, 1)
        .add(local_sum.p50)
        .add(global_sum.p50)
        .add(local_sum.p95)
        .add(backtracks / kTrials, 2);
  }
  table.print(std::cout,
              "F7 (m=3): local-knowledge DFS routing vs global disjoint-"
              "container routing, " + std::to_string(kTrials) + " trials/row");
  std::cout << "\nExpected shape: both are 100% for f <= m; the local router "
               "stays successful even\nbeyond (it explores exhaustively) at "
               "the cost of longer paths and backtracking,\nwhile the global "
               "router fails once all m+1 fixed paths are cut.\n";
  return 0;
}
